// Tests for the proposed reduction circuit (Sec 4.3) and the baseline
// circuits: correctness of sums, the paper's latency and buffer claims, and
// the no-stall property for the workload classes the BLAS designs generate.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>
#include <numeric>
#include <vector>

#include "common/random.hpp"
#include "fp/softfloat.hpp"
#include "reduce/baselines.hpp"
#include "reduce/reduction_circuit.hpp"

using namespace xd;
using reduce::Input;
using reduce::ReductionCircuit;
using reduce::ReductionCircuitBase;
using reduce::SetResult;

namespace {

struct RunOutcome {
  std::vector<double> sums;  ///< indexed by set id
  u64 total_cycles = 0;
  u64 stalls = 0;
};

/// Stream `sets` into the circuit one element per cycle (re-offering on
/// stalls), then run it dry; returns per-set sums in arrival order.
RunOutcome run_reduction(ReductionCircuitBase& c,
                         const std::vector<std::vector<double>>& sets) {
  RunOutcome out;
  out.sums.assign(sets.size(), std::nan(""));
  std::size_t done = 0;

  auto drain_result = [&] {
    if (auto r = c.take_result()) {
      EXPECT_LT(r->set_id, sets.size());
      EXPECT_TRUE(std::isnan(out.sums[r->set_id])) << "duplicate set result";
      out.sums[r->set_id] = fp::from_bits(r->bits);
      ++done;
    }
  };

  const u64 budget = 10'000'000;
  std::size_t si = 0, ei = 0;
  while (si < sets.size()) {
    Input in{fp::to_bits(sets[si][ei]), ei + 1 == sets[si].size()};
    const bool consumed = c.cycle(in);
    ++out.total_cycles;
    drain_result();
    if (consumed) {
      if (++ei == sets[si].size()) {
        ei = 0;
        ++si;
      }
    }
    if (out.total_cycles >= budget) throw std::runtime_error("input stream wedged");
  }
  while (done < sets.size()) {
    c.cycle(std::nullopt);
    ++out.total_cycles;
    drain_result();
    if (out.total_cycles >= budget) throw std::runtime_error("drain wedged");
  }
  out.stalls = c.stall_cycles();
  EXPECT_FALSE(c.busy());
  return out;
}

/// Accurate reference sum (long double accumulate).
double ref_sum(const std::vector<double>& v) {
  long double s = 0.0L;
  for (double x : v) s += static_cast<long double>(x);
  return static_cast<double>(s);
}

double abs_tolerance(const std::vector<double>& v) {
  long double mag = 0.0L;
  for (double x : v) mag += std::fabs(static_cast<long double>(x));
  return std::max(1e-18, static_cast<double>(mag) * 1e-12);
}

std::vector<std::vector<double>> make_sets(Rng& rng,
                                           const std::vector<std::size_t>& sizes) {
  std::vector<std::vector<double>> sets;
  sets.reserve(sizes.size());
  for (std::size_t s : sizes) sets.push_back(rng.vector(s, -10.0, 10.0));
  return sets;
}

void expect_sums_match(const RunOutcome& out,
                       const std::vector<std::vector<double>>& sets) {
  for (std::size_t i = 0; i < sets.size(); ++i) {
    ASSERT_FALSE(std::isnan(out.sums[i])) << "set " << i << " never completed";
    EXPECT_NEAR(out.sums[i], ref_sum(sets[i]), abs_tolerance(sets[i]))
        << "set " << i << " (size " << sets[i].size() << ")";
  }
}

u64 total_inputs(const std::vector<std::vector<double>>& sets) {
  u64 n = 0;
  for (const auto& s : sets) n += s.size();
  return n;
}

}  // namespace

// ---------------------------------------------------------------------------
// Proposed circuit: correctness across set-size regimes.

class ProposedUniformSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ProposedUniformSizes, CorrectSums) {
  const std::size_t s = GetParam();
  Rng rng(1000 + s);
  ReductionCircuit c;
  const auto sets = make_sets(rng, std::vector<std::size_t>(40, s));
  const auto out = run_reduction(c, sets);
  expect_sums_match(out, sets);
}

TEST_P(ProposedUniformSizes, BufferNeverExceedsAlphaSquared) {
  const std::size_t s = GetParam();
  Rng rng(2000 + s);
  ReductionCircuit c;
  const auto sets = make_sets(rng, std::vector<std::size_t>(40, s));
  run_reduction(c, sets);
  EXPECT_LE(c.stats().peak_buffer_words,
            static_cast<std::size_t>(c.alpha()) * c.alpha());
}

INSTANTIATE_TEST_SUITE_P(SetSizes, ProposedUniformSizes,
                         ::testing::Values(1, 2, 3, 7, 13, 14, 15, 17, 28, 50,
                                           100, 333, 1024));

// The paper's headline claims, checked for the BLAS-shaped workloads
// (uniform sizes >= alpha): no stall, and p sets reduced in fewer than
// sum(s_i) + 2*alpha^2 cycles.
class ProposedClaims : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ProposedClaims, NoStallAndLatencyBound) {
  const std::size_t s = GetParam();
  Rng rng(3000 + s);
  ReductionCircuit c;
  const auto sets = make_sets(rng, std::vector<std::size_t>(60, s));
  const auto out = run_reduction(c, sets);
  expect_sums_match(out, sets);
  EXPECT_EQ(out.stalls, 0u) << "uniform sets of size " << s << " stalled";
  const u64 alpha2 = static_cast<u64>(c.alpha()) * c.alpha();
  EXPECT_LT(out.total_cycles, total_inputs(sets) + 2 * alpha2);
}

INSTANTIATE_TEST_SUITE_P(SizesAtLeastAlpha, ProposedClaims,
                         ::testing::Values(14, 15, 20, 27, 64, 100, 500));

TEST(Proposed, SingleLargeSetLatency) {
  // One set of size n: the circuit should finish in n + O(alpha^2) cycles.
  Rng rng(42);
  ReductionCircuit c;
  const auto sets = make_sets(rng, {4096});
  const auto out = run_reduction(c, sets);
  expect_sums_match(out, sets);
  EXPECT_EQ(out.stalls, 0u);
  const u64 alpha2 = static_cast<u64>(c.alpha()) * c.alpha();
  EXPECT_LT(out.total_cycles, 4096 + 2 * alpha2);
}

TEST(Proposed, ArbitraryMixedSizesAreCorrect) {
  Rng rng(77);
  std::vector<std::size_t> sizes;
  for (int i = 0; i < 200; ++i) sizes.push_back(rng.uniform_int(1, 60));
  ReductionCircuit c;
  const auto sets = make_sets(rng, sizes);
  const auto out = run_reduction(c, sets);
  expect_sums_match(out, sets);
  // Arbitrary tiny sets may stall (the drain needs alpha^2-ish cycles per
  // batch); correctness and bounded buffers must hold regardless.
  EXPECT_LE(c.stats().peak_buffer_words,
            static_cast<std::size_t>(c.alpha()) * c.alpha());
}

TEST(Proposed, ManySingleElementSets) {
  Rng rng(78);
  ReductionCircuit c;
  const auto sets = make_sets(rng, std::vector<std::size_t>(100, 1));
  const auto out = run_reduction(c, sets);
  expect_sums_match(out, sets);
}

TEST(Proposed, AlternatingTinyAndHuge) {
  Rng rng(79);
  std::vector<std::size_t> sizes;
  for (int i = 0; i < 30; ++i) sizes.push_back(i % 2 == 0 ? 1 : 200);
  ReductionCircuit c;
  const auto sets = make_sets(rng, sizes);
  const auto out = run_reduction(c, sets);
  expect_sums_match(out, sets);
}

TEST(Proposed, DeterministicBits) {
  Rng rng(80);
  const auto sets = make_sets(rng, {100, 37, 14, 1, 250});
  auto run_bits = [&] {
    ReductionCircuit c;
    std::vector<u64> bits(sets.size());
    std::size_t done = 0, si = 0, ei = 0;
    u64 guard = 0;
    while (done < sets.size()) {
      std::optional<Input> in;
      if (si < sets.size()) {
        in = Input{fp::to_bits(sets[si][ei]), ei + 1 == sets[si].size()};
      }
      const bool consumed = c.cycle(in);
      if (consumed) {
        if (++ei == sets[si].size()) {
          ei = 0;
          ++si;
        }
      }
      if (auto r = c.take_result()) {
        bits[r->set_id] = r->bits;
        ++done;
      }
      if (++guard > 1'000'000) throw std::runtime_error("wedged");
    }
    return bits;
  };
  EXPECT_EQ(run_bits(), run_bits());
}

TEST(Proposed, AdderUtilizationIsHighForLargeSets) {
  Rng rng(81);
  ReductionCircuit c;
  const auto sets = make_sets(rng, std::vector<std::size_t>(50, 64));
  run_reduction(c, sets);
  // s=64 >> alpha: nearly every element needs one addition.
  EXPECT_GT(c.adder_utilization(), 0.8);
}

TEST(Proposed, SpecialValuesPropagate) {
  ReductionCircuit c;
  std::vector<std::vector<double>> sets = {
      {1.0, std::numeric_limits<double>::infinity(), 2.0},
      {1e308, 1e308, -1e308},  // transient overflow stays inf
      {5.0, -5.0, 0.0}};
  const auto out = run_reduction(c, sets);
  EXPECT_TRUE(std::isinf(out.sums[0]));
  EXPECT_TRUE(std::isinf(out.sums[1]));  // inf once produced is sticky
  EXPECT_EQ(out.sums[2], 0.0);
}

// ---------------------------------------------------------------------------
// Two-adder ablation: same correctness, no stalls even for adversarial sizes.

TEST(TwoAdderVariant, CorrectAndFewerStalls) {
  Rng rng(90);
  std::vector<std::size_t> sizes;
  for (int i = 0; i < 150; ++i) sizes.push_back(rng.uniform_int(1, 40));
  const auto sets = make_sets(rng, sizes);

  ReductionCircuit one(fp::kAdderStages, /*dedicated_drain_adder=*/false);
  ReductionCircuit two(fp::kAdderStages, /*dedicated_drain_adder=*/true);
  const auto out1 = run_reduction(one, sets);
  const auto out2 = run_reduction(two, sets);
  expect_sums_match(out1, sets);
  expect_sums_match(out2, sets);
  EXPECT_LE(out2.stalls, out1.stalls);
  EXPECT_LE(out2.total_cycles, out1.total_cycles);
}

// ---------------------------------------------------------------------------
// Baselines: correctness and characteristic costs.

class BaselineCorrectness
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(BaselineCorrectness, SumsMatch) {
  const auto [kind, s] = GetParam();
  Rng rng(500 + static_cast<u64>(kind) * 31 + s);
  std::vector<std::size_t> sizes(25, s);
  const auto sets = make_sets(rng, sizes);

  std::unique_ptr<ReductionCircuitBase> c;
  switch (kind) {
    case 0:
      c = std::make_unique<reduce::StallingAccumulator>();
      break;
    case 1:
      c = std::make_unique<reduce::KoggeTree>(log2_ceil(std::max<u64>(s, 2)));
      break;
    default:
      c = std::make_unique<reduce::SingleAdderGreedy>();
      break;
  }
  const auto out = run_reduction(*c, sets);
  expect_sums_match(out, sets);
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndSizes, BaselineCorrectness,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(1, 2, 3, 5, 14, 17, 64, 200)));

TEST(Baselines, StallingAccumulatorPaysAlphaPerElement) {
  Rng rng(91);
  reduce::StallingAccumulator c;
  const auto sets = make_sets(rng, std::vector<std::size_t>(10, 100));
  const auto out = run_reduction(c, sets);
  expect_sums_match(out, sets);
  // ~alpha cycles per element (minus the free first element of each set).
  EXPECT_GT(out.total_cycles, 10ull * 99ull * (fp::kAdderStages - 1));
}

TEST(Baselines, KoggeTreeMatchesProposedThroughputWithMoreAdders) {
  Rng rng(92);
  const auto sets = make_sets(rng, std::vector<std::size_t>(30, 128));
  reduce::KoggeTree tree(7);  // 2^7 = 128
  ReductionCircuit proposed;
  const auto out_t = run_reduction(tree, sets);
  const auto out_p = run_reduction(proposed, sets);
  expect_sums_match(out_t, sets);
  expect_sums_match(out_p, sets);
  EXPECT_EQ(tree.adders_used(), 7u);
  EXPECT_EQ(proposed.adders_used(), 1u);
  // Both accept one element per cycle; total cycles within ~2 alpha^2.
  EXPECT_NEAR(static_cast<double>(out_t.total_cycles),
              static_cast<double>(out_p.total_cycles),
              2.0 * fp::kAdderStages * fp::kAdderStages + 100.0);
}

TEST(Baselines, KoggeTreeUndersizedThrows) {
  Rng rng(93);
  reduce::KoggeTree tree(2);  // handles sets up to 4 elements
  const auto sets = make_sets(rng, {8});
  EXPECT_THROW(run_reduction(tree, sets), ConfigError);
}

TEST(Baselines, GreedyBufferGrowsPastAlphaSquaredOnAdversarialStream) {
  // Many tiny sets followed by interleaving forces the greedy design's
  // unbounded buffer up; the proposed circuit holds at alpha^2 (with stalls).
  Rng rng(94);
  std::vector<std::size_t> sizes(3000, 2);
  const auto sets = make_sets(rng, sizes);
  reduce::SingleAdderGreedy greedy;
  const auto out = run_reduction(greedy, sets);
  expect_sums_match(out, sets);
  EXPECT_GT(greedy.peak_buffer_words(), 0u);
}

// ---------------------------------------------------------------------------
// The circuit is parametric in the adder depth alpha; the paper's claims must
// hold for any pipelined adder, not just the 14-stage core.

class AlphaSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(AlphaSweep, ClaimsHoldAcrossPipelineDepths) {
  const unsigned alpha = GetParam();
  Rng rng(4000 + alpha);
  ReductionCircuit c(alpha);
  EXPECT_EQ(c.alpha(), alpha);
  // Uniform sets of size exactly alpha (the tight case) and of 3*alpha.
  for (std::size_t mult : {1ul, 3ul}) {
    ReductionCircuit circuit(alpha);
    const auto sets =
        make_sets(rng, std::vector<std::size_t>(40, alpha * mult));
    const auto out = run_reduction(circuit, sets);
    expect_sums_match(out, sets);
    EXPECT_EQ(out.stalls, 0u) << "alpha=" << alpha << " mult=" << mult;
    const u64 alpha2 = static_cast<u64>(alpha) * alpha;
    EXPECT_LT(out.total_cycles, total_inputs(sets) + 2 * alpha2);
    EXPECT_LE(circuit.stats().peak_buffer_words, alpha2);
  }
}

TEST_P(AlphaSweep, RandomSizesCorrectAtAnyDepth) {
  const unsigned alpha = GetParam();
  Rng rng(5000 + alpha);
  std::vector<std::size_t> sizes;
  for (int i = 0; i < 80; ++i) sizes.push_back(rng.uniform_int(1, 4 * alpha));
  ReductionCircuit c(alpha);
  const auto sets = make_sets(rng, sizes);
  const auto out = run_reduction(c, sets);
  expect_sums_match(out, sets);
  EXPECT_LE(c.stats().peak_buffer_words,
            static_cast<std::size_t>(alpha) * alpha);
}

INSTANTIATE_TEST_SUITE_P(Depths, AlphaSweep,
                         ::testing::Values(2, 3, 4, 5, 8, 11, 14, 16, 24));

TEST(Proposed, SumInvariantUnderSetPermutation) {
  // Delivering the same sets in a different order must give the same sums
  // (each set reduces independently; only which buffer row it lands in
  // changes).
  Rng rng(6001);
  const auto sets = make_sets(rng, {37, 14, 100, 5, 64, 1, 29});
  ReductionCircuit c1, c2;
  const auto fwd = run_reduction(c1, sets);
  std::vector<std::vector<double>> rev(sets.rbegin(), sets.rend());
  const auto bwd = run_reduction(c2, rev);
  for (std::size_t i = 0; i < sets.size(); ++i) {
    EXPECT_NEAR(fwd.sums[i], bwd.sums[sets.size() - 1 - i],
                abs_tolerance(sets[i]));
  }
}

TEST(Proposed, ExhaustiveTinyAlphaSweep) {
  // alpha = 3: enumerate EVERY sequence of up to 5 sets with sizes 1..6 and
  // verify sums, the buffer bound, and termination. 6^1+...+6^5 = 9330
  // complete simulations — an exhaustive check of the control logic at a
  // scale where all row/column interleavings occur.
  const unsigned alpha = 3;
  const std::size_t max_size = 6;
  u64 runs = 0;
  std::vector<std::size_t> sizes;

  std::function<void()> recurse = [&] {
    if (!sizes.empty()) {
      Rng rng(7000 + runs);
      ReductionCircuit c(alpha);
      const auto sets = make_sets(rng, sizes);
      const auto out = run_reduction(c, sets);
      for (std::size_t i = 0; i < sets.size(); ++i) {
        ASSERT_NEAR(out.sums[i], ref_sum(sets[i]), abs_tolerance(sets[i]))
            << "sizes[" << i << "]=" << sizes[i] << " run " << runs;
      }
      ASSERT_LE(c.stats().peak_buffer_words,
                static_cast<std::size_t>(alpha) * alpha);
      ++runs;
    }
    if (sizes.size() == 5) return;
    for (std::size_t s = 1; s <= max_size; ++s) {
      sizes.push_back(s);
      recurse();
      sizes.pop_back();
    }
  };
  recurse();
  EXPECT_EQ(runs, 6u + 36 + 216 + 1296 + 7776);
}

TEST(Baselines, NiHwangCorrectButStallsBetweenSets) {
  Rng rng(95);
  reduce::NiHwangReducer c;
  const auto sets = make_sets(rng, std::vector<std::size_t>(20, 50));
  const auto out = run_reduction(c, sets);
  expect_sums_match(out, sets);
  // Every set but the first waits for the previous drain: stalls pile up.
  EXPECT_GT(out.stalls, 19u);
  // The proposed circuit handles the same stream with zero stalls.
  ReductionCircuit proposed;
  const auto out_p = run_reduction(proposed, sets);
  expect_sums_match(out_p, sets);
  EXPECT_EQ(out_p.stalls, 0u);
  EXPECT_LT(out_p.total_cycles, out.total_cycles);
}

TEST(Baselines, NiHwangSingleSetIsEfficient) {
  // For its designed use case (one vector) the method is fine: ~s cycles.
  Rng rng(96);
  reduce::NiHwangReducer c;
  const auto sets = make_sets(rng, {2000});
  const auto out = run_reduction(c, sets);
  expect_sums_match(out, sets);
  EXPECT_EQ(out.stalls, 0u);
  EXPECT_LT(out.total_cycles, 2000 + 20 * fp::kAdderStages);
}

TEST(Proposed, InputBubblesDoNotDisturbCorrectness) {
  // Real datapaths deliver bubbles (idle cycles) inside a set whenever the
  // upstream stalls; the circuit must absorb them. Deliver every element
  // with a random 0-3 cycle gap.
  Rng rng(6100);
  const auto sets = make_sets(rng, {50, 14, 1, 200, 33, 7});
  ReductionCircuit c;
  std::vector<double> sums(sets.size(), std::nan(""));
  std::size_t done = 0, si = 0, ei = 0;
  u64 guard = 0;
  while (done < sets.size()) {
    std::optional<Input> in;
    const bool bubble = rng.uniform_int(0, 3) != 0 || si >= sets.size();
    if (!bubble && si < sets.size()) {
      in = Input{fp::to_bits(sets[si][ei]), ei + 1 == sets[si].size()};
    }
    const bool consumed = c.cycle(in);
    if (in && consumed && ++ei == sets[si].size()) {
      ei = 0;
      ++si;
    }
    if (auto r = c.take_result()) {
      sums[r->set_id] = fp::from_bits(r->bits);
      ++done;
    }
    ASSERT_LT(++guard, 1'000'000u);
  }
  for (std::size_t i = 0; i < sets.size(); ++i) {
    EXPECT_NEAR(sums[i], ref_sum(sets[i]), abs_tolerance(sets[i])) << i;
  }
  EXPECT_LE(c.stats().peak_buffer_words,
            static_cast<std::size_t>(c.alpha()) * c.alpha());
}

TEST(Proposed, BurstThenSilence) {
  // Alternating dense bursts and long silences across set boundaries.
  Rng rng(6101);
  const auto sets = make_sets(rng, std::vector<std::size_t>(12, 40));
  ReductionCircuit c;
  std::size_t done = 0, si = 0, ei = 0;
  u64 t = 0, guard = 0;
  while (done < sets.size()) {
    const bool silent = (t / 64) % 2 == 1;  // every other 64-cycle window
    std::optional<Input> in;
    if (!silent && si < sets.size()) {
      in = Input{fp::to_bits(sets[si][ei]), ei + 1 == sets[si].size()};
    }
    const bool consumed = c.cycle(in);
    ++t;
    if (in && consumed && ++ei == sets[si].size()) {
      ei = 0;
      ++si;
    }
    if (auto r = c.take_result()) {
      EXPECT_NEAR(fp::from_bits(r->bits), ref_sum(sets[r->set_id]),
                  abs_tolerance(sets[r->set_id]));
      ++done;
    }
    ASSERT_LT(++guard, 1'000'000u);
  }
}
