// Serving-layer concurrency + lifecycle tests (src/serve/server.hpp): an
// in-process Server on an ephemeral loopback port, exercised by real TCP
// clients. The load-bearing claims from docs/serving.md are each pinned
// here: N concurrent clients get responses BYTE-identical to a sequential
// local Runtime (values and cycles — the soak), admission control sheds
// with explicit records instead of stalling, a tiny reply queue only slows
// clients down (backpressure, no deadlock), drain under load answers every
// admitted op, a client that vanishes mid-batch harms nobody else, and the
// golden corpus streamed in adversarial chunk sizes gets exactly one valid
// JSON response per record line. Runs under the TSan CI job.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <chrono>
#include <cstddef>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/socket.hpp"
#include "host/runtime.hpp"
#include "serve/proto.hpp"
#include "serve/server.hpp"
#include "telemetry/json.hpp"

using namespace xd;

namespace {

/// A Server plus its accept-loop thread; drains and joins on destruction so
/// every test body reads top-to-bottom.
struct TestServer {
  explicit TestServer(serve::ServerConfig cfg = {})
      : server(cfg), thread([this] { server.serve(); }) {}
  ~TestServer() {
    server.drain();
    thread.join();
  }
  serve::Server server;
  std::thread thread;
};

/// Connect, send `payload` (in `chunk`-byte pieces when nonzero), half-close,
/// and collect every framed response line until EOF.
std::vector<std::string> roundtrip(std::uint16_t port,
                                   const std::string& payload,
                                   std::size_t chunk = 0) {
  Socket s = tcp_connect("127.0.0.1", port);
  if (chunk == 0) {
    EXPECT_TRUE(s.send_all(payload));
  } else {
    for (std::size_t i = 0; i < payload.size(); i += chunk) {
      EXPECT_TRUE(s.send_all(payload.substr(i, chunk)));
    }
  }
  s.shutdown_write();
  LineFramer framer(1 << 20);
  char buf[4096];
  for (;;) {
    const long got = s.recv_some(buf, sizeof buf);
    if (got <= 0) break;
    framer.feed(buf, static_cast<std::size_t>(got));
  }
  std::vector<std::string> records;
  std::string line;
  bool truncated = false;
  while (framer.next(line, truncated)) records.push_back(line);
  return records;
}

std::string join_lines(const std::vector<std::string>& lines) {
  std::string out;
  for (const auto& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

/// What a fresh sequential local Runtime answers for `lines` — the
/// bit-identity reference for everything the server streams back. Both
/// endpoints share the codec, so comparisons are on whole record strings
/// (values_fnv, cycles, every report field, line numbers).
std::vector<std::string> expected_records_copy(
    const std::vector<std::string>& lines) {
  host::Runtime rt({});
  std::vector<std::string> out;
  std::size_t line_no = 0;
  for (const auto& text : lines) {
    ++line_no;
    if (!serve::is_record_line(text)) continue;
    serve::Request req;
    serve::parse_record(text, line_no, rt.config(), req);
    out.push_back(req.is_graph
                      ? serve::graph_record(req, rt.run_graph(req.graph))
                      : serve::outcome_record(req, rt.run(req.desc)));
  }
  return out;
}

/// One client's worth of mixed op + graph lines, shapes and seeds varied so
/// different clients stress different plans in the shared cache.
std::vector<std::string> mixed_lines(unsigned client, std::size_t count) {
  std::vector<std::string> lines;
  for (std::size_t i = 0; i < count; ++i) {
    const u64 seed = 100 * client + i;
    std::ostringstream os;
    switch (i % 5) {
      case 0: os << "dot --n 1024 --seed " << seed; break;
      case 1: os << "gemv --n 96 --seed " << seed; break;
      case 2: os << "spmxv --n 128 --nnz-per-row 8 --seed " << seed; break;
      case 3: os << "gemm --n 32 --seed " << seed; break;
      default:
        os << "graph ap=gemv:n=96 pap=dot:n=96,b=@ap --from-dram --seed "
           << seed;
    }
    lines.push_back(os.str());
  }
  return lines;
}

std::string validate_error;
bool is_valid_json(const std::string& text) {
  return telemetry::json_validate(text, &validate_error);
}

}  // namespace

// Eight concurrent clients, mixed op/graph records, every response record
// byte-identical to a single-threaded local Runtime answering the same
// lines — values AND cycles, via whole-record comparison. This is the
// determinism contract the serving layer is allowed to exist under.
TEST(Serve, SoakConcurrentClientsBitIdenticalToSequential) {
  constexpr unsigned kClients = 8;
  constexpr std::size_t kOps = 10;
  TestServer ts;

  std::vector<std::vector<std::string>> got(kClients);
  std::vector<std::thread> clients;
  for (unsigned c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      got[c] = roundtrip(ts.server.port(), join_lines(mixed_lines(c, kOps)));
    });
  }
  for (auto& t : clients) t.join();

  for (unsigned c = 0; c < kClients; ++c) {
    const auto want = expected_records_copy(mixed_lines(c, kOps));
    ASSERT_EQ(got[c].size(), want.size()) << "client " << c;
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[c][i], want[i]) << "client " << c << " record " << i;
    }
  }
  const auto counters = ts.server.counters();
  EXPECT_EQ(counters.accepted, kClients);
  EXPECT_EQ(counters.completed, u64{kClients} * kOps);
  EXPECT_EQ(counters.errors, 0u);
  EXPECT_EQ(counters.shed, 0u);
}

// max_inflight=1 with a burst of slow ops: admission control must shed with
// explicit {"error":"overloaded"} records — in order, without stalling the
// reader — and every line still gets exactly one response.
TEST(Serve, AdmissionControlShedsInsteadOfStalling) {
  serve::ServerConfig cfg;
  cfg.max_inflight = 1;
  TestServer ts(cfg);

  constexpr std::size_t kLines = 48;
  std::vector<std::string> lines(kLines, "gemm --n 64");
  const auto records = roundtrip(ts.server.port(), join_lines(lines));
  ASSERT_EQ(records.size(), kLines);

  std::size_t completed = 0, shed = 0;
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_TRUE(is_valid_json(records[i])) << validate_error;
    if (records[i].find("\"error\":\"overloaded\"") != std::string::npos) {
      ++shed;
      // Shed records still carry the right line number (submission order).
      EXPECT_NE(records[i].find("\"line\":" + std::to_string(i + 1)),
                std::string::npos);
    } else {
      ++completed;
      EXPECT_NE(records[i].find("\"values_fnv\""), std::string::npos);
    }
  }
  EXPECT_GE(completed, 1u);  // the first op is always admitted
  EXPECT_GE(shed, 1u);       // a 1-deep window cannot absorb a 48-op burst
  const auto counters = ts.server.counters();
  EXPECT_EQ(counters.completed, completed);
  EXPECT_EQ(counters.shed, shed);
  EXPECT_EQ(counters.completed + counters.shed, kLines);
}

// A 2-deep reply queue against a client that writes everything before
// reading anything: backpressure must slow the reader (bounding server
// memory) without deadlocking — all responses arrive, in order.
TEST(Serve, TinyReplyQueueBackpressuresWithoutDeadlock) {
  serve::ServerConfig cfg;
  cfg.reply_queue = 2;
  TestServer ts(cfg);

  std::vector<std::string> lines;
  for (int i = 0; i < 40; ++i) {
    lines.push_back("dot --n 256 --seed " + std::to_string(i));
  }
  const auto records = roundtrip(ts.server.port(), join_lines(lines));
  const auto want = expected_records_copy(lines);
  ASSERT_EQ(records.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(records[i], want[i]) << "record " << i;
  }
}

// drain() while a batch is streaming: the server stops reading, but every
// op admitted before the cut is finished and flushed before the connection
// closes — the client sees a clean prefix of the expected records, all
// valid JSON, never a torn line.
TEST(Serve, GracefulDrainUnderLoadFlushesAdmittedOps) {
  TestServer ts;

  std::vector<std::string> lines;
  for (int i = 0; i < 32; ++i) {
    lines.push_back("gemm --n 48 --seed " + std::to_string(i));
  }
  const auto want = expected_records_copy(lines);

  Socket s = tcp_connect("127.0.0.1", ts.server.port());
  ASSERT_TRUE(s.send_all(join_lines(lines)));
  // No half-close: the connection stays open so only drain() can end it.
  LineFramer framer(1 << 20);
  char buf[4096];
  std::vector<std::string> records;
  std::string line;
  bool truncated = false;
  bool drained = false;
  for (;;) {
    const long got = s.recv_some(buf, sizeof buf);
    if (got <= 0) break;
    framer.feed(buf, static_cast<std::size_t>(got));
    while (framer.next(line, truncated)) records.push_back(line);
    if (!drained && !records.empty()) {
      drained = true;
      ts.server.drain();  // idempotent; TestServer drains again at scope end
    }
  }
  while (framer.next(line, truncated)) records.push_back(line);

  ASSERT_GE(records.size(), 1u);
  ASSERT_LE(records.size(), want.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_TRUE(is_valid_json(records[i])) << validate_error;
    EXPECT_EQ(records[i], want[i]) << "record " << i;
  }
  EXPECT_EQ(framer.pending(), 0u);  // never a torn line
}

// A client that sends a batch and disappears without reading anything must
// not take the server (or anyone else) down: its futures are still
// consumed, and a well-behaved client right after gets bit-exact answers.
TEST(Serve, ClientDisconnectMidBatchHarmsNobody) {
  TestServer ts;
  {
    Socket s = tcp_connect("127.0.0.1", ts.server.port());
    std::vector<std::string> lines;
    for (int i = 0; i < 20; ++i) {
      lines.push_back("gemv --n 96 --seed " + std::to_string(i));
    }
    ASSERT_TRUE(s.send_all(join_lines(lines)));
  }  // socket closed: no half-close, no reads, peer just vanishes

  const std::vector<std::string> lines = mixed_lines(9, 10);
  const auto records = roundtrip(ts.server.port(), join_lines(lines));
  const auto want = expected_records_copy(lines);
  ASSERT_EQ(records.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(records[i], want[i]) << "record " << i;
  }
}

// Per-line engine knobs: the server runs ONE shared Runtime, so a line
// whose explicit flags disagree with it is shed with an error record that
// names the flag; an explicit flag equal to the server's configuration is
// not an override and executes normally.
TEST(Serve, EngineOverridesShedWithExplanation) {
  TestServer ts;
  const auto records = roundtrip(
      ts.server.port(), "dot --n 256 --k 4\ndot --n 256 --k 2\n");
  ASSERT_EQ(records.size(), 2u);
  EXPECT_NE(records[0].find("\"error\""), std::string::npos);
  EXPECT_NE(records[0].find("--k"), std::string::npos);
  EXPECT_EQ(records[1].find("\"error\""), std::string::npos);
  EXPECT_NE(records[1].find("\"values_fnv\""), std::string::npos);
}

// Oversized line (bounded framing) and an unterminated final record: the
// first is consumed and answered with the shared oversize error, the second
// is still executed at EOF — every record line gets its response.
TEST(Serve, OversizedAndUnterminatedLinesAnswered) {
  TestServer ts;
  std::string payload(serve::kMaxLineBytes + 1000, 'a');
  payload += "\ndot --n 64 --seed 3";  // no trailing newline
  const auto records = roundtrip(ts.server.port(), payload);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_NE(records[0].find(serve::oversize_error()), std::string::npos);
  const auto want = expected_records_copy({"", "dot --n 64 --seed 3"});
  ASSERT_EQ(want.size(), 1u);
  EXPECT_EQ(records[1], want[0]);
}

// A hostile one-liner requesting ~8 TB of operands (gemv materializes an
// n x n matrix host-side) must be answered with an error record — nothing
// allocated, reader thread alive — and the next line still executes
// bit-identically. This is the remote-OOM/DoS hole the ParseLimits bound
// closes.
TEST(Serve, HugeProblemSizeAnsweredWithErrorRecordNotOOM) {
  TestServer ts;
  const auto records =
      roundtrip(ts.server.port(), "gemv --n 1000000\ndot --n 64 --seed 3\n");
  ASSERT_EQ(records.size(), 2u);
  EXPECT_TRUE(is_valid_json(records[0])) << validate_error;
  EXPECT_NE(records[0].find("\"error\""), std::string::npos);
  EXPECT_NE(records[0].find("limit"), std::string::npos);
  const auto want = expected_records_copy({"", "dot --n 64 --seed 3"});
  ASSERT_EQ(want.size(), 1u);
  EXPECT_EQ(records[1], want[0]);
  EXPECT_EQ(ts.server.counters().errors, 1u);
}

// drain() against a client that writes a burst and never reads a byte: the
// reader may be blocked on a full reply queue and the writer against a
// full TCP window. Drain must still complete — the draining flag lifts the
// enqueue bound and the per-send timeout bounds a stuck writer — instead
// of hanging SIGTERM forever.
TEST(Serve, DrainCompletesAgainstNonReadingClient) {
  serve::ServerConfig cfg;
  cfg.reply_queue = 2;
  cfg.send_timeout_ms = 250;
  TestServer ts(cfg);

  Socket s = tcp_connect("127.0.0.1", ts.server.port());
  std::string payload;
  for (int i = 0; i < 64; ++i) {
    payload += "gemm --n 48 --seed " + std::to_string(i) + "\n";
  }
  ASSERT_TRUE(s.send_all(payload));
  // Let the 2-deep reply queue fill so the reader is parked in enqueue.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const auto t0 = std::chrono::steady_clock::now();
  ts.server.drain();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(secs, 30.0);  // finite (generous bound for slow CI hosts)
}

// Socket::set_send_timeout_ms is what makes the above finite when the
// writer itself is mid-send: with a tiny kernel send buffer and a peer
// that never reads, send_all must fail within the timeout, not block.
TEST(Serve, SendTimeoutFailsBlockedSendInsteadOfHanging) {
  std::uint16_t port = 0;
  Socket listener = tcp_listen("127.0.0.1", 0, 4, &port);
  Socket client = tcp_connect("127.0.0.1", port);
  Socket accepted = tcp_accept(listener);
  ASSERT_TRUE(accepted.valid());
  const int small = 4096;
  ::setsockopt(accepted.fd(), SOL_SOCKET, SO_SNDBUF, &small, sizeof small);
  accepted.set_send_timeout_ms(200);
  const std::string big(64u << 20, 'x');  // client never reads any of it
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(accepted.send_all(big));
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(secs, 10.0);
}

// The `stats` control line: a JSON snapshot with runtime counters and
// host.runtime.* latency percentiles once ops have completed.
TEST(Serve, StatsControlLineReportsCountersAndPercentiles) {
  TestServer ts;
  roundtrip(ts.server.port(), join_lines(mixed_lines(2, 8)));

  const auto records = roundtrip(ts.server.port(), "stats\n");
  ASSERT_EQ(records.size(), 1u);
  const std::string& rec = records[0];
  EXPECT_TRUE(is_valid_json(rec)) << validate_error;
  for (const char* field :
       {"\"op\":\"stats\"", "\"completed\":", "\"shed\":", "\"inflight\":",
        "\"max_inflight\":", "\"connections\":", "\"workers\":",
        "\"e2e_p50_us\":", "\"e2e_p99_us\":", "\"exec_p50_us\":",
        "\"queue_wait_p99_us\":", "\"plan_hits\":", "\"plan_misses\":",
        "\"plan_hit_rate\":", "\"plan_pinned\":", "\"pool_steals\":",
        "\"pool_local_pops\":"}) {
    EXPECT_NE(rec.find(field), std::string::npos) << field;
  }
  // The mixed traffic repeated shapes, so the server interned pinned plans
  // for them.
  EXPECT_GE(ts.server.runtime().plan_cache().pinned_count(), 1u);
  EXPECT_EQ(rec.find("\"plan_pinned\":0,"), std::string::npos);
}

// The golden corpus, streamed over a live connection in adversarial chunk
// sizes (1-byte writes up through block writes): exactly one valid-JSON
// response per record line, same answers for every chunking, and the
// server is alive and correct afterwards.
TEST(Serve, SocketCorpusReplayAdversarialChunking) {
  std::ifstream in(XD_SERVE_CORPUS);
  ASSERT_TRUE(in.is_open()) << XD_SERVE_CORPUS;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string corpus = ss.str();

  std::size_t record_lines = 0;
  {
    std::istringstream count(corpus);
    std::string line;
    bool truncated = false;
    while (serve::read_bounded_line(count, line, truncated)) {
      if (serve::is_record_line(line)) ++record_lines;
    }
  }
  ASSERT_GE(record_lines, 30u);

  TestServer ts;
  std::vector<std::string> first;
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{7}, corpus.size()}) {
    const auto records = roundtrip(ts.server.port(), corpus, chunk);
    ASSERT_EQ(records.size(), record_lines) << "chunk=" << chunk;
    for (const auto& rec : records) {
      EXPECT_TRUE(is_valid_json(rec)) << validate_error << ": " << rec;
    }
    if (first.empty()) {
      first = records;
    } else {
      EXPECT_EQ(records, first) << "chunk=" << chunk;  // framing-independent
    }
  }

  // Server still healthy: a normal client gets bit-exact answers.
  const std::vector<std::string> lines = mixed_lines(5, 5);
  EXPECT_EQ(roundtrip(ts.server.port(), join_lines(lines)),
            expected_records_copy(lines));
}
