// The umbrella header must compile standalone and expose the full API.
#include <gtest/gtest.h>

#include "xdblas.hpp"

#include "common/random.hpp"

using namespace xd;

TEST(Umbrella, EndToEndThroughSingleInclude) {
  Rng rng(1);
  host::Context ctx;
  const auto u = rng.vector(64);
  EXPECT_NEAR(ctx.dot(u, u).value, host::ref_dot(u, u), 1e-10);

  reduce::ReductionCircuit circuit;
  EXPECT_EQ(circuit.adders_used(), 1u);

  const auto point = model::gemm_sc05(64, 8, 8);
  EXPECT_DOUBLE_EQ(point.words_per_cycle, 3.0);
}

TEST(Umbrella, GemmAutoPanelEdge) {
  // n = 96 is not a multiple of the default b = 512; gemm picks b = 96.
  Rng rng(2);
  host::Context ctx;
  EXPECT_EQ(ctx.choose_panel_edge(96), 96u);
  const auto a = rng.matrix(96, 96);
  const auto b = rng.matrix(96, 96);
  const auto out = ctx.gemm(a, b, 96);
  EXPECT_LT(host::max_abs_diff(out.c, host::ref_gemm(a, b, 96)), 1e-9);
  // n = 40: multiple of m = 8, b = 40 works.
  EXPECT_EQ(ctx.choose_panel_edge(40), 40u);
  // n = 12: not a multiple of m = 8 in any legal b.
  EXPECT_THROW(ctx.choose_panel_edge(12), ConfigError);
}
