// Multi-FPGA GEMM pipeline tests: numerics, the n^3/(k l) latency model,
// scaling across l, link starvation, load imbalance, and consistency with
// the single-FPGA cycle-accurate array.
#include <gtest/gtest.h>

#include <cmath>

#include "blas3/mm_array.hpp"
#include "blas3/mm_multi.hpp"
#include "common/random.hpp"
#include "host/reference.hpp"

using namespace xd;
using blas3::MmMultiConfig;
using blas3::MmMultiEngine;

namespace {

MmMultiConfig cfg(unsigned l, unsigned k = 4, unsigned m = 4, std::size_t b = 16) {
  MmMultiConfig c;
  c.l = l;
  c.k = k;
  c.m = m;
  c.b = b;
  c.dram_words_per_cycle = 4.0;
  c.link_words_per_cycle = 4.0;
  return c;
}

}  // namespace

TEST(MmMulti, MatchesReference) {
  Rng rng(1);
  const std::size_t n = 32;
  const auto a = rng.matrix(n, n);
  const auto b = rng.matrix(n, n);
  for (unsigned l : {1u, 2u, 3u, 4u}) {
    MmMultiEngine engine(cfg(l));
    const auto out = engine.run(a, b, n);
    EXPECT_LT(host::max_abs_diff(out.c, host::ref_gemm(a, b, n)), 1e-10 * n)
        << "l=" << l;
  }
}

TEST(MmMulti, BitIdenticalToSingleFpgaArray) {
  Rng rng(2);
  const std::size_t n = 16;
  const auto a = rng.matrix(n, n);
  const auto b = rng.matrix(n, n);

  blas3::MmArrayConfig ac;
  ac.k = 4;
  ac.m = 4;
  ac.adder_stages = 4;
  ac.mem_words_per_cycle = 8.0;
  const auto ca = blas3::MmArrayEngine(ac).run(a, b, n);
  const auto cm = MmMultiEngine(cfg(2)).run(a, b, n);
  EXPECT_EQ(ca.c, cm.c);  // same accumulation order => same bits
}

TEST(MmMulti, LatencyTracksModelWhenBandwidthAmple) {
  Rng rng(3);
  const std::size_t n = 48;
  const auto a = rng.matrix(n, n);
  const auto b = rng.matrix(n, n);
  for (unsigned l : {1u, 2u, 4u}) {
    auto c = cfg(l, 4, 4, 16);
    c.dram_words_per_cycle = 16.0;
    c.link_words_per_cycle = 16.0;
    MmMultiEngine engine(c);
    const auto out = engine.run(a, b, n);
    const double model = static_cast<double>(engine.model_cycles(n));
    EXPECT_NEAR(static_cast<double>(out.report.cycles) / model, 1.0, 0.15)
        << "l=" << l;
  }
}

TEST(MmMulti, NearLinearSpeedupAcrossFpgas) {
  Rng rng(4);
  const std::size_t n = 64;
  const auto a = rng.matrix(n, n);
  const auto b = rng.matrix(n, n);
  auto c1 = cfg(1, 4, 4, 32);
  auto c4 = cfg(4, 4, 4, 32);
  c1.dram_words_per_cycle = c4.dram_words_per_cycle = 8.0;
  c1.link_words_per_cycle = c4.link_words_per_cycle = 8.0;
  const auto o1 = MmMultiEngine(c1).run(a, b, n);
  const auto o4 = MmMultiEngine(c4).run(a, b, n);
  const double speedup = static_cast<double>(o1.report.cycles) /
                         static_cast<double>(o4.report.cycles);
  EXPECT_GT(speedup, 3.3);
  EXPECT_LE(speedup, 4.2);
}

TEST(MmMulti, StarvedLinksStallTheChain) {
  Rng rng(5);
  const std::size_t n = 32;
  const auto a = rng.matrix(n, n);
  const auto b = rng.matrix(n, n);
  auto fast = cfg(4, 4, 4, 16);
  auto slow = fast;
  slow.dram_words_per_cycle = 0.05;  // well below 3kl/b
  const auto of = MmMultiEngine(fast).run(a, b, n);
  const auto os = MmMultiEngine(slow).run(a, b, n);
  EXPECT_EQ(of.c, os.c);  // numerics independent of timing
  EXPECT_GT(os.report.cycles, 4 * of.report.cycles);
  EXPECT_GT(os.report.stall_cycles, 0u);
}

TEST(MmMulti, LoadBalanceAcrossFpgas) {
  Rng rng(6);
  const std::size_t n = 64;
  const auto a = rng.matrix(n, n);
  const auto b = rng.matrix(n, n);
  auto c = cfg(4, 4, 4, 32);  // beta = 8, evenly divisible by l = 4
  const auto out = MmMultiEngine(c).run(a, b, n);
  ASSERT_EQ(out.per_fpga.size(), 4u);
  const u64 blocks0 = out.per_fpga[0].blocks_computed;
  for (const auto& s : out.per_fpga) {
    EXPECT_EQ(s.blocks_computed, blocks0);  // even ownership
    EXPECT_GT(s.busy_cycles, 0u);
  }
}

TEST(MmMulti, UnevenOwnershipWhenBetaNotDivisible) {
  Rng rng(7);
  const std::size_t n = 24;
  const auto a = rng.matrix(n, n);
  const auto b = rng.matrix(n, n);
  auto c = cfg(3, 2, 4, 24);  // beta = 6 across l = 3: even (2 each)
  const auto even = MmMultiEngine(c).run(a, b, n);
  EXPECT_EQ(even.per_fpga[0].blocks_computed, even.per_fpga[2].blocks_computed);

  auto c2 = cfg(4, 2, 4, 24);  // beta = 6 across l = 4: 2/2/1/1 columns
  const auto uneven = MmMultiEngine(c2).run(a, b, n);
  EXPECT_GT(uneven.per_fpga[0].blocks_computed,
            uneven.per_fpga[3].blocks_computed);
  EXPECT_LT(host::max_abs_diff(uneven.c, host::ref_gemm(a, b, n)), 1e-10 * n);
}

TEST(MmMulti, DramTrafficIsThetaN3OverB) {
  Rng rng(8);
  const std::size_t n = 64;
  const auto a = rng.matrix(n, n);
  const auto b = rng.matrix(n, n);
  for (std::size_t bb : {16ul, 32ul, 64ul}) {
    const auto out = MmMultiEngine(cfg(2, 4, 4, bb)).run(a, b, n);
    const double expect =
        2.0 * std::pow(static_cast<double>(n), 3) / static_cast<double>(bb) +
        static_cast<double>(n) * n;
    EXPECT_NEAR(out.dram_words, expect, expect * 0.01) << "b=" << bb;
  }
}

TEST(MmMulti, InvalidConfigsRejected) {
  EXPECT_THROW(MmMultiEngine{cfg(5, 4, 4, 16)}, ConfigError);  // b < m*l
  auto c = cfg(2);
  c.b = 18;  // not a multiple of m
  EXPECT_THROW(MmMultiEngine{c}, ConfigError);
  c = cfg(2);
  c.m = 6;  // not divisible by k = 4
  EXPECT_THROW(MmMultiEngine{c}, ConfigError);
}
