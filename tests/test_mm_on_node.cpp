// Node-level GEMM tests: the full Table 4 Level 3 pipeline against the real
// machine model — SRAM C' port traffic, DRAM link sharing between prefetch
// and C output, and the measured bandwidth rows.
#include <gtest/gtest.h>

#include "blas3/mm_on_node.hpp"
#include "common/random.hpp"
#include "host/reference.hpp"
#include "machine/node.hpp"

using namespace xd;
using blas3::MmOnNodeConfig;
using blas3::MmOnNodeEngine;

namespace {

machine::NodeConfig xd1_node() {
  machine::NodeConfig cfg;
  cfg.clock_mhz = 130.0;
  cfg.dram_bytes_per_s = 3.2e9;
  cfg.dram_words = 8u << 20;
  return cfg;
}

MmOnNodeConfig small_cfg(std::size_t b) {
  MmOnNodeConfig cfg;
  cfg.k = 8;
  cfg.m = 8;
  cfg.b = b;
  return cfg;
}

}  // namespace

TEST(MmOnNode, MatchesReference) {
  Rng rng(1);
  const std::size_t n = 64;
  const auto a = rng.matrix(n, n);
  const auto b = rng.matrix(n, n);
  machine::ComputeNode node(xd1_node());
  MmOnNodeEngine engine(node, small_cfg(32));
  const auto out = engine.run(a, b, n);
  EXPECT_LT(host::max_abs_diff(out.c, host::ref_gemm(a, b, n)), 1e-10 * n);
}

TEST(MmOnNode, ComputeBoundWithTinyIoFraction) {
  // The Table 4 shape: I/O is under ~2% of the total latency at the paper's
  // bandwidths (the paper reports 0.7% at n = b = 512).
  Rng rng(2);
  const std::size_t n = 128;
  const auto a = rng.matrix(n, n);
  const auto b = rng.matrix(n, n);
  machine::ComputeNode node(xd1_node());
  MmOnNodeEngine engine(node, small_cfg(128));
  const auto out = engine.run(a, b, n);
  const double io_frac = static_cast<double>(out.report.stall_cycles) /
                         static_cast<double>(out.report.cycles);
  EXPECT_LT(io_frac, 0.02);
  // Effective cycles ~ n^3/k plus the final C-panel drain (n^2 words leave
  // at one word per cycle after the last product; at the paper's n = b = 512
  // this tail is the ~2 ms gap between 129 and 131 ms).
  const double expect = static_cast<double>(n) * n * n / 8.0 +
                        static_cast<double>(n) * n;
  EXPECT_NEAR(static_cast<double>(out.report.cycles), expect, 0.02 * expect);
}

TEST(MmOnNode, SramTrafficIsTwoWordsPerComputeCycle) {
  // k = m: one C' read + one C' write every cycle (the 2.1 GB/s row).
  Rng rng(3);
  const std::size_t n = 64;
  machine::ComputeNode node(xd1_node());
  MmOnNodeEngine engine(node, small_cfg(64));
  const auto out = engine.run(rng.matrix(n, n), rng.matrix(n, n), n);
  const double words_per_compute_cycle =
      out.report.sram_words / static_cast<double>(out.report.compute_cycles);
  EXPECT_NEAR(words_per_compute_cycle, 2.0, 0.01);
  // At 130 MHz that is the paper's 2.08 GB/s.
  EXPECT_NEAR(words_per_compute_cycle * 8 * 130e6, 2.08e9, 0.02e9);
}

TEST(MmOnNode, DramTrafficMatchesTheFetchPattern) {
  // 2 b^2 words in per panel-q + b^2 out per panel: 2n^3/b + n^2 total.
  Rng rng(4);
  const std::size_t n = 128;
  machine::ComputeNode node(xd1_node());
  MmOnNodeEngine engine(node, small_cfg(64));
  const auto out = engine.run(rng.matrix(n, n), rng.matrix(n, n), n);
  const double expect =
      2.0 * static_cast<double>(n) * n * n / 64.0 + static_cast<double>(n) * n;
  EXPECT_NEAR(out.report.dram_words, expect, expect * 0.02);
}

TEST(MmOnNode, StarvedLinkBecomesIoBound) {
  Rng rng(5);
  const std::size_t n = 64;
  const auto a = rng.matrix(n, n);
  const auto b = rng.matrix(n, n);
  machine::NodeConfig slow = xd1_node();
  slow.dram_bytes_per_s = 40e6;  // ~0.04 words/cycle, far below the need
  machine::ComputeNode node(slow);
  MmOnNodeEngine engine(node, small_cfg(32));
  const auto out = engine.run(a, b, n);
  EXPECT_GT(out.report.stall_cycles, out.report.compute_cycles);
  EXPECT_LT(host::max_abs_diff(out.c, host::ref_gemm(a, b, n)), 1e-10 * n);
}

TEST(MmOnNode, InvalidConfigsRejected) {
  machine::ComputeNode node(xd1_node());
  MmOnNodeConfig bad;
  bad.m = 12;  // m % k != 0 (k = 8)
  EXPECT_THROW(MmOnNodeEngine(node, bad), ConfigError);
  bad = MmOnNodeConfig{};
  bad.b = 20;  // not a multiple of m
  EXPECT_THROW(MmOnNodeEngine(node, bad), ConfigError);
  bad = MmOnNodeConfig{};
  bad.b = 4096;  // C' panel exceeds two 4 MB banks
  EXPECT_THROW(MmOnNodeEngine(node, bad), ConfigError);
}
