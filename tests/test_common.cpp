// Tests for the common utilities: streaming statistics, histogram,
// deterministic RNG, table rendering, and the integer helpers.
#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/util.hpp"

using namespace xd;

TEST(Util, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0u);
  EXPECT_EQ(ceil_div(1, 4), 1u);
  EXPECT_EQ(ceil_div(4, 4), 1u);
  EXPECT_EQ(ceil_div(5, 4), 2u);
  EXPECT_EQ(ceil_div(1023, 512), 2u);
}

TEST(Util, Pow2AndLogs) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(6));
  EXPECT_EQ(log2_floor(1), 0u);
  EXPECT_EQ(log2_floor(7), 2u);
  EXPECT_EQ(log2_floor(8), 3u);
  EXPECT_EQ(log2_ceil(1), 0u);
  EXPECT_EQ(log2_ceil(7), 3u);
  EXPECT_EQ(log2_ceil(8), 3u);
  EXPECT_EQ(log2_ceil(9), 4u);
}

TEST(Util, CatAndRequire) {
  EXPECT_EQ(cat("a", 1, "b", 2.5), "a1b2.5");
  EXPECT_NO_THROW(require(true, "fine"));
  EXPECT_THROW(require(false, "boom"), ConfigError);
}

TEST(RunningStats, MomentsAndExtremes) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.0, 1e-12);  // classic textbook set
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeEqualsCombinedStream) {
  Rng rng(1);
  RunningStats a, b, all;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal();
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(Histogram, BucketsQuantilesOverflow) {
  Histogram h(10);
  for (std::size_t v = 0; v < 20; ++v) h.add(v);  // 10..19 overflow
  EXPECT_EQ(h.total(), 20u);
  EXPECT_EQ(h.overflow(), 10u);
  EXPECT_EQ(h.max_value(), 19u);
  EXPECT_DOUBLE_EQ(h.mean(), 9.5);
  EXPECT_EQ(h.count(3), 1u);
  EXPECT_LE(h.quantile(0.25), 5u);
  EXPECT_EQ(h.quantile(1.0), 10u);  // overflow bucket
}

TEST(Histogram, RejectsZeroBuckets) {
  // Regression: Histogram(0) used to construct with only the overflow slot,
  // so add()'s bucket clamp (min(value, size - 1)) misfiled every sample
  // into bucket 0 while buckets() reported zero. Zero buckets is now a
  // configuration error.
  EXPECT_THROW(Histogram(0), ConfigError);
  // One bucket stays the smallest valid configuration: bucket 0 + overflow.
  Histogram h(1);
  h.add(0);
  h.add(5);
  EXPECT_EQ(h.buckets(), 1u);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.overflow(), 1u);
}

TEST(QuantileSketch, ExactForPowersOfTwoAndIntegers) {
  // Bucket lower edges are exact for short-mantissa values, so a stream of
  // small integers answers its quantiles exactly.
  QuantileSketch s;
  for (double v : {1.0, 2.0, 4.0, 8.0, 16.0}) s.add(v);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.2), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 4.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 16.0);
}

TEST(QuantileSketch, RelativeErrorBound) {
  // 16 sub-buckets per octave: any positive sample's bucket lower edge is
  // within ~3.2% below the sample.
  QuantileSketch s;
  Rng rng(77);
  std::vector<double> vals;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(0.001, 1e6);
    vals.push_back(v);
    s.add(v);
  }
  std::sort(vals.begin(), vals.end());
  for (double q : {0.5, 0.95, 0.99}) {
    const double est = s.quantile(q);
    const double exact =
        vals[static_cast<std::size_t>(q * (vals.size() - 1))];
    EXPECT_NEAR(est, exact, exact * 0.04) << "q=" << q;
  }
}

TEST(QuantileSketch, MergeMatchesCombinedStreamBitwise) {
  // Integer-count buckets: merging shards is bit-identical to one stream,
  // regardless of interleaving — the property concurrent telemetry relies
  // on.
  QuantileSketch a, b, all;
  Rng rng(78);
  for (int i = 0; i < 500; ++i) {
    const double v = rng.uniform(0.1, 1e4);
    ((i % 3 == 0) ? a : b).add(v);
    all.add(v);
  }
  QuantileSketch merged_ab = a, merged_ba = b;
  merged_ab.merge(b);
  merged_ba.merge(a);
  EXPECT_EQ(merged_ab.count(), all.count());
  EXPECT_EQ(merged_ab.buckets(), all.buckets());
  for (double q : {0.0, 0.1, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(merged_ab.quantile(q), all.quantile(q)) << "q=" << q;
    EXPECT_EQ(merged_ba.quantile(q), all.quantile(q)) << "q=" << q;
  }
}

TEST(QuantileSketch, NonPositiveAndNonFiniteSamples) {
  QuantileSketch s;
  s.add(-5.0);
  s.add(0.0);
  s.add(std::nan(""));
  s.add(std::numeric_limits<double>::infinity());
  s.add(2.0);
  EXPECT_EQ(s.count(), 5u);
  // Negatives sort below zero/NaN, which sort below positives; callers clamp
  // with a tracked min/max (RunningStats) for hard bounds.
  EXPECT_LT(s.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.6), 0.0);
  EXPECT_GE(s.quantile(1.0), 2.0);
  QuantileSketch empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
  s.reset();
  EXPECT_TRUE(s.empty());
}

TEST(Utilization, Fraction) {
  Utilization u;
  for (int i = 0; i < 10; ++i) u.tick(i % 4 == 0);
  EXPECT_EQ(u.cycles(), 10u);
  EXPECT_EQ(u.busy_cycles(), 3u);
  EXPECT_NEAR(u.fraction(), 0.3, 1e-12);
  u.reset();
  EXPECT_EQ(u.cycles(), 0u);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42), c(43);
  bool all_equal = true, any_diff = false;
  for (int i = 0; i < 100; ++i) {
    const u64 va = a.next_u64();
    all_equal &= (va == b.next_u64());
    any_diff |= (va != c.next_u64());
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformBoundsAndMoments) {
  Rng rng(7);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.uniform(-2.0, 3.0);
    ASSERT_GE(x, -2.0);
    ASSERT_LT(x, 3.0);
    s.add(x);
  }
  EXPECT_NEAR(s.mean(), 0.5, 0.02);
  EXPECT_NEAR(s.variance(), 25.0 / 12.0, 0.05);
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(8);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const u64 v = rng.uniform_int(3, 7);
    ASSERT_GE(v, 3u);
    ASSERT_LE(v, 7u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 7);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng rng(9);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.normal());
  EXPECT_NEAR(s.mean(), 0.0, 0.01);
  EXPECT_NEAR(s.stddev(), 1.0, 0.01);
}

TEST(TextTable, RendersAlignedMarkdown) {
  TextTable t({"a", "bee"});
  t.row("x", 1);
  t.row("longer", 2.5);
  const auto s = t.render();
  EXPECT_NE(s.find("| a      | bee |"), std::string::npos);
  EXPECT_NE(s.find("| longer | 2.5 |"), std::string::npos);
}

TEST(TextTable, NumFormatting) {
  EXPECT_EQ(TextTable::num(1.0), "1");
  EXPECT_EQ(TextTable::num(2.5), "2.5");
  EXPECT_EQ(TextTable::num(0.125, 3), "0.125");
  EXPECT_EQ(TextTable::num(0.0), "0");
  // Very large/small switch to scientific.
  EXPECT_NE(TextTable::num(1.5e9).find("e"), std::string::npos);
  EXPECT_NE(TextTable::num(1.5e-9).find("e"), std::string::npos);
}

TEST(TextTable, RowWidthMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ConfigError);
}

#include "common/parallel.hpp"

TEST(ParallelFor, CoversRangeExactlyOnce) {
  std::vector<int> hits(1000, 0);
  parallel_for(0, 1000, [&](std::size_t i) { hits[i]++; }, 7);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelFor, EmptyAndSingleWorker) {
  int calls = 0;
  parallel_for(5, 5, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::vector<int> hits(10, 0);
  parallel_for(0, 10, [&](std::size_t i) { hits[i]++; }, 1);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelFor, DeterministicResults) {
  // Same per-index computation regardless of worker count.
  auto run = [](unsigned workers) {
    std::vector<double> v(256);
    parallel_for(0, 256, [&](std::size_t i) {
      v[i] = std::sin(static_cast<double>(i)) * 3.0;
    }, workers);
    return v;
  };
  EXPECT_EQ(run(1), run(8));
}

// ---- work-stealing pool and its environment knob ---------------------------

#include <cstdlib>
#include <future>
#include <thread>

#include "common/thread_pool.hpp"

namespace {

/// RAII guard: set XDBLAS_WORKERS for one test, restore the prior value.
struct WorkersEnv {
  std::string saved;
  bool had;
  WorkersEnv() {
    const char* old = std::getenv("XDBLAS_WORKERS");
    had = old != nullptr;
    if (had) saved = old;
  }
  ~WorkersEnv() {
    if (had) {
      ::setenv("XDBLAS_WORKERS", saved.c_str(), 1);
    } else {
      ::unsetenv("XDBLAS_WORKERS");
    }
  }
  static void set(const char* v) { ::setenv("XDBLAS_WORKERS", v, 1); }
};

}  // namespace

TEST(DefaultWorkers, AcceptsExactPositiveIntegers) {
  WorkersEnv env;
  WorkersEnv::set("17");
  EXPECT_EQ(default_workers(), 17u);
  WorkersEnv::set("1");
  EXPECT_EQ(default_workers(), 1u);
  WorkersEnv::set("4096");  // the cap itself is legal
  EXPECT_EQ(default_workers(), 4096u);
}

TEST(DefaultWorkers, RejectsGarbageWithFallback) {
  WorkersEnv env;
  ::unsetenv("XDBLAS_WORKERS");
  const unsigned fallback = default_workers();  // hardware concurrency
  // strtol would silently accept "4abc" as 4; the parser must not.
  for (const char* bad :
       {"4abc", "abc", "-2", "0", "4097", "0x10", "99999999999999999999"}) {
    WorkersEnv::set(bad);
    EXPECT_EQ(default_workers(), fallback) << "XDBLAS_WORKERS=" << bad;
  }
  WorkersEnv::set("");  // empty counts as unset, no warning
  EXPECT_EQ(default_workers(), fallback);
}

TEST(ThreadPool, CountsEveryExecutedTask) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 200; ++i) {
    futs.push_back(pool.submit([&] { ran.fetch_add(1); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(ran.load(), 200);
  // local_pops + steals tallies exactly the tasks executed, however the
  // deques split them.
  EXPECT_EQ(pool.local_pops() + pool.steals(), 200u);
}

TEST(ThreadPool, IdleWorkerStealsFromBusyWorkersDeque) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  // The outer job posts 50 tasks — worker-local, so they all land on ITS
  // deque — then blocks until they finish. It never pops while blocked, so
  // every one of the 50 must be stolen by the other worker.
  auto fut = pool.submit([&] {
    for (int i = 0; i < 50; ++i) pool.post([&] { done.fetch_add(1); });
    while (done.load() < 50) std::this_thread::yield();
  });
  fut.get();
  EXPECT_EQ(done.load(), 50);
  EXPECT_GE(pool.steals(), 50u);
}

TEST(ThreadPool, NestedParallelForInsidePooledJobsIsDeterministic) {
  // Pool jobs that each run a parallel_for (which fans chunks onto the
  // SHARED pool while the caller participates): no deadlock, and every
  // job's result matches the sequential computation exactly.
  ThreadPool pool(4);
  auto golden = [](int j) {
    double s = 0.0;
    for (std::size_t i = 0; i < 512; ++i) {
      s += std::sin(static_cast<double>(i + 31 * j));
    }
    return s;
  };
  std::vector<std::future<double>> futs;
  for (int j = 0; j < 16; ++j) {
    futs.push_back(pool.submit([j] {
      std::vector<double> v(512);
      parallel_for(0, v.size(), [&](std::size_t i) {
        v[i] = std::sin(static_cast<double>(i + 31 * j));
      }, 4);
      double s = 0.0;
      for (double x : v) s += x;
      return s;
    }));
  }
  for (int j = 0; j < 16; ++j) EXPECT_EQ(futs[j].get(), golden(j)) << j;
}
