// Solver-layer tests: Jacobi (dense + sparse) and CG on the simulated FPGA
// BLAS converge to the known solution and account FPGA time sensibly.
#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hpp"
#include "host/reference.hpp"
#include "solver/cg.hpp"
#include "solver/jacobi.hpp"

using namespace xd;

namespace {

/// Random diagonally dominant matrix (Jacobi converges).
std::vector<double> diag_dominant(std::size_t n, u64 seed) {
  Rng rng(seed);
  auto a = rng.matrix(n, n, -1.0, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    double off = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i) off += std::fabs(a[i * n + j]);
    }
    a[i * n + i] = off + 1.0;
  }
  return a;
}

/// Random SPD matrix: M^T M + n I.
std::vector<double> spd(std::size_t n, u64 seed) {
  Rng rng(seed);
  const auto m = rng.matrix(n, n, -1.0, 1.0);
  std::vector<double> a(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::size_t q = 0; q < n; ++q) s += m[q * n + i] * m[q * n + j];
      a[i * n + j] = s + (i == j ? static_cast<double>(n) : 0.0);
    }
  }
  return a;
}

double max_err(const std::vector<double>& x, const std::vector<double>& y) {
  double e = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) e = std::max(e, std::fabs(x[i] - y[i]));
  return e;
}

}  // namespace

TEST(JacobiDense, ConvergesToKnownSolution) {
  const std::size_t n = 96;
  const auto a = diag_dominant(n, 1);
  Rng rng(2);
  const auto x_true = rng.vector(n);
  const auto b = host::ref_gemv(a, n, n, x_true);

  host::Context ctx;
  const auto res = solver::jacobi_dense(ctx, a, n, b);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(res.iterations, 60);
  EXPECT_LT(max_err(res.x, x_true), 1e-9);
  EXPECT_GT(res.fpga_cycles, 0u);
  EXPECT_GT(res.sustained_mflops(), 100.0);
}

TEST(JacobiDense, RespectsIterationCap) {
  const std::size_t n = 64;
  const auto a = diag_dominant(n, 3);
  Rng rng(4);
  const auto b = rng.vector(n);
  host::Context ctx;
  solver::SolveOptions opts;
  opts.max_iterations = 2;
  opts.tolerance = 0.0;  // unattainable
  const auto res = solver::jacobi_dense(ctx, a, n, b, opts);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.iterations, 2);
}

TEST(JacobiDense, ZeroDiagonalRejected) {
  std::vector<double> a = {0.0, 1.0, 1.0, 2.0};
  host::Context ctx;
  EXPECT_THROW(solver::jacobi_dense(ctx, a, 2, {1.0, 1.0}), ConfigError);
}

TEST(JacobiDense, BatchMatchesSequentialBitForBit) {
  const std::size_t n = 48;
  const auto a = diag_dominant(n, 5);
  Rng rng(6);
  // Spread of convergence speeds: a consistent system, a random one, and a
  // near-zero one (converges immediately-ish).
  std::vector<std::vector<double>> bs;
  bs.push_back(host::ref_gemv(a, n, n, rng.vector(n)));
  bs.push_back(rng.vector(n));
  bs.push_back(std::vector<double>(n, 1e-14));

  host::Context ctx;
  solver::SolveOptions opts;
  opts.max_iterations = 200;
  opts.tolerance = 1e-10;
  const auto batch = solver::jacobi_dense_batch(ctx, a, n, bs, opts);
  ASSERT_EQ(batch.size(), bs.size());

  for (std::size_t s = 0; s < bs.size(); ++s) {
    const auto one = solver::jacobi_dense(ctx, a, n, bs[s], opts);
    EXPECT_EQ(batch[s].converged, one.converged) << "system " << s;
    EXPECT_EQ(batch[s].iterations, one.iterations) << "system " << s;
    EXPECT_EQ(batch[s].fpga_cycles, one.fpga_cycles) << "system " << s;
    EXPECT_EQ(batch[s].residual_norm, one.residual_norm) << "system " << s;
    ASSERT_EQ(batch[s].x.size(), one.x.size());
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(batch[s].x[i], one.x[i]) << "system " << s << " x[" << i << "]";
    }
  }
}

TEST(JacobiSparse, ConvergesOnIrregularMatrix) {
  // Irregular sparse system (the [18] use case): power-law off-diagonal
  // pattern plus a dominant diagonal.
  const std::size_t n = 128;
  auto pattern = blas2::make_power_law(n, n, 20, 5);
  // Build A = pattern + dominant diagonal in CRS form via dense assembly.
  auto dense = pattern.to_dense();
  for (std::size_t i = 0; i < n; ++i) {
    double off = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i) off += std::fabs(dense[i * n + j]);
    }
    dense[i * n + i] = off + 1.0;
  }
  const auto a = blas2::CrsMatrix::from_dense(dense, n, n);

  Rng rng(6);
  const auto x_true = rng.vector(n);
  const auto b = host::ref_gemv(dense, n, n, x_true);

  const auto res = solver::jacobi_sparse(a, b);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(max_err(res.x, x_true), 1e-9);
  // Sparse flops count nonzeros only: far fewer than the dense 2n^2/iter.
  EXPECT_LT(res.fpga_flops,
            static_cast<u64>(res.iterations) * 2 * n * n / 2);
}

TEST(JacobiSparse, MissingDiagonalRejected) {
  blas2::CrsMatrix m;
  m.rows = m.cols = 2;
  m.row_ptr = {0, 1, 2};
  m.values = {1.0, 1.0};
  m.col_idx = {1, 0};  // no diagonal entries
  EXPECT_THROW(solver::jacobi_sparse(m, {1.0, 1.0}), ConfigError);
}

TEST(CgDense, ConvergesOnSpdSystem) {
  const std::size_t n = 64;
  const auto a = spd(n, 7);
  Rng rng(8);
  const auto x_true = rng.vector(n);
  const auto b = host::ref_gemv(a, n, n, x_true);

  host::Context ctx;
  const auto res = solver::cg_dense(ctx, a, n, b);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(max_err(res.x, x_true), 1e-8);
}

TEST(CgDense, JacobiPreconditionerHelpsIllConditioned) {
  // Strongly varying diagonal: D^{-1} preconditioning should cut iterations.
  const std::size_t n = 96;
  auto a = spd(n, 9);
  for (std::size_t i = 0; i < n; ++i) {
    const double s = 1.0 + 50.0 * static_cast<double>(i) / n;
    for (std::size_t j = 0; j < n; ++j) {
      a[i * n + j] *= s;
      a[j * n + i] *= s;
    }
  }
  Rng rng(10);
  const auto x_true = rng.vector(n);
  const auto b = host::ref_gemv(a, n, n, x_true);

  host::Context ctx;
  solver::SolveOptions opts;
  opts.max_iterations = 400;
  opts.tolerance = 1e-8;
  const auto plain = solver::cg_dense(ctx, a, n, b, opts, false);
  const auto pre = solver::cg_dense(ctx, a, n, b, opts, true);
  EXPECT_TRUE(pre.converged);
  EXPECT_LE(pre.iterations, plain.iterations);
  EXPECT_LT(max_err(pre.x, x_true), 1e-6);
}

TEST(CgDense, FpgaTimeAccumulatesAcrossIterations) {
  const std::size_t n = 64;
  const auto a = spd(n, 11);
  Rng rng(12);
  const auto b = rng.vector(n);
  host::Context ctx;
  const auto res = solver::cg_dense(ctx, a, n, b);
  // Each iteration: >= n^2/k GEMV cycles plus dot cycles.
  EXPECT_GT(res.fpga_cycles,
            static_cast<u64>(res.iterations) * n * n / 4);
  EXPECT_GT(res.fpga_seconds(), 0.0);
}
