// Cross-module integration and property tests: consistency between engines
// that implement the same math, exact algebraic properties that survive
// IEEE-754 (power-of-two scaling, row permutation), timing-independence of
// the systolic GEMM numerics, and failure injection on the output path.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "blas1/dot_engine.hpp"
#include "blas2/mxv_tree.hpp"
#include "blas2/spmxv.hpp"
#include "blas3/mm_array.hpp"
#include "common/random.hpp"
#include "host/blas_compat.hpp"
#include "host/context.hpp"
#include "host/reference.hpp"
#include "solver/jacobi.hpp"

using namespace xd;

namespace {

std::vector<double> scale(const std::vector<double>& v, double s) {
  auto r = v;
  for (auto& x : r) x *= s;
  return r;
}

}  // namespace

// ---------------------------------------------------------------------------
// Engine-consistency: the same product through different architectures.

TEST(Consistency, DotEqualsOneRowGemv) {
  Rng rng(1);
  const std::size_t n = 512;
  const auto u = rng.vector(n);
  const auto v = rng.vector(n);

  host::Context ctx;
  const double d = ctx.dot(u, v).value;
  // One-row GEMV computes the same dot product (different engine).
  const auto y = ctx.gemv(u, 1, n, v);
  EXPECT_NEAR(d, y.y[0], 1e-10 * n);
}

TEST(Consistency, GemmArrayVsCompatVsReference) {
  Rng rng(2);
  const std::size_t n = 32;
  const auto a = rng.matrix(n, n);
  const auto b = rng.matrix(n, n);

  host::Context ctx;
  const auto direct = ctx.gemm_array(a, b, n);
  std::vector<double> via_compat(n * n, 0.0);
  host::compat_dgemm(ctx, host::Transpose::No, host::Transpose::No, n, n, n,
                     1.0, a.data(), n, b.data(), n, 0.0, via_compat.data(), n);
  const auto ref = host::ref_gemm(a, b, n);
  EXPECT_LT(host::max_abs_diff(direct.c, ref), 1e-10 * n);
  EXPECT_LT(host::max_abs_diff(via_compat, ref), 1e-10 * n);
  // Both run the identical accumulation order: bit-equal to each other.
  EXPECT_EQ(direct.c, via_compat);
}

TEST(Consistency, JacobiDenseAndSparseAgree) {
  const std::size_t n = 64;
  Rng rng(3);
  auto dense = rng.matrix(n, n, -1.0, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    double off = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i) off += std::fabs(dense[i * n + j]);
    }
    dense[i * n + i] = off + 1.0;
  }
  const auto sparse = blas2::CrsMatrix::from_dense(dense, n, n);
  const auto b = rng.vector(n);

  host::Context ctx;
  const auto rd = solver::jacobi_dense(ctx, dense, n, b);
  const auto rs = solver::jacobi_sparse(sparse, b);
  ASSERT_TRUE(rd.converged);
  ASSERT_TRUE(rs.converged);
  EXPECT_LT(host::max_abs_diff(rd.x, rs.x), 1e-9);
}

// ---------------------------------------------------------------------------
// Exact algebraic properties (power-of-two scaling is exact in IEEE-754).

TEST(ExactProperties, DotScalesByPowersOfTwoExactly) {
  Rng rng(4);
  const auto u = rng.vector(777);
  const auto v = rng.vector(777);
  host::Context ctx;
  const double base = ctx.dot(u, v).value;
  EXPECT_EQ(ctx.dot(scale(u, 4.0), v).value, 4.0 * base);
  EXPECT_EQ(ctx.dot(u, scale(v, 0.5)).value, 0.5 * base);
}

TEST(ExactProperties, GemvScalesByPowersOfTwoExactly) {
  Rng rng(5);
  const std::size_t n = 128;
  const auto a = rng.matrix(n, n);
  const auto x = rng.vector(n);
  host::Context ctx;
  const auto y1 = ctx.gemv(a, n, n, x).y;
  const auto y2 = ctx.gemv(a, n, n, scale(x, 2.0)).y;
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(y2[i], 2.0 * y1[i]) << i;
}

TEST(ExactProperties, GemmRowPermutationIsExact) {
  // Swapping two rows of A swaps the same rows of C bit-for-bit (each C row
  // accumulates independently, in the same inner order).
  Rng rng(6);
  const std::size_t n = 16;
  auto a = rng.matrix(n, n);
  const auto b = rng.matrix(n, n);
  blas3::MmArrayConfig cfg;
  cfg.k = 4;
  cfg.m = 4;
  cfg.adder_stages = 4;
  cfg.mem_words_per_cycle = 8.0;
  blas3::MmArrayEngine engine(cfg);

  const auto c1 = engine.run(a, b, n).c;
  for (std::size_t j = 0; j < n; ++j) std::swap(a[2 * n + j], a[5 * n + j]);
  const auto c2 = engine.run(a, b, n).c;
  for (std::size_t j = 0; j < n; ++j) {
    EXPECT_EQ(c1[2 * n + j], c2[5 * n + j]);
    EXPECT_EQ(c1[5 * n + j], c2[2 * n + j]);
    EXPECT_EQ(c1[8 * n + j], c2[8 * n + j]);  // untouched rows identical
  }
}

TEST(ExactProperties, GemvNegationIsExact) {
  Rng rng(7);
  const std::size_t n = 96;
  const auto a = rng.matrix(n, n);
  const auto x = rng.vector(n);
  host::Context ctx;
  const auto y1 = ctx.gemv(a, n, n, x).y;
  const auto y2 = ctx.gemv(a, n, n, scale(x, -1.0)).y;
  for (std::size_t i = 0; i < n; ++i) {
    // -0.0 == 0.0 compares equal, which is the right semantics here.
    EXPECT_EQ(y2[i], -y1[i]) << i;
  }
}

// ---------------------------------------------------------------------------
// Timing independence / dependence of numerics.

TEST(Timing, SystolicGemmNumericsIndependentOfBandwidth) {
  // Stalls freeze the whole array, so the accumulation schedule (and hence
  // every rounding) is identical at any memory rate.
  Rng rng(8);
  const std::size_t n = 16;
  const auto a = rng.matrix(n, n);
  const auto b = rng.matrix(n, n);
  std::vector<double> first;
  for (double rate : {8.0, 3.0, 1.0}) {
    blas3::MmArrayConfig cfg;
    cfg.k = 4;
    cfg.m = 4;
    cfg.adder_stages = 4;
    cfg.mem_words_per_cycle = rate;
    const auto c = blas3::MmArrayEngine(cfg).run(a, b, n).c;
    if (first.empty()) {
      first = c;
    } else {
      EXPECT_EQ(first, c) << "rate " << rate;
    }
  }
}

TEST(Timing, ReductionBasedGemvStaysWithinToleranceAcrossBandwidth) {
  // The reduction circuit's combination order depends on arrival timing, so
  // different rates may round differently — but always within the
  // reassociation tolerance.
  Rng rng(9);
  const std::size_t n = 128;
  const auto a = rng.matrix(n, n);
  const auto x = rng.vector(n);
  blas2::MxvTreeConfig c1, c2;
  c1.mem_words_per_cycle = 4.0;
  c2.mem_words_per_cycle = 1.5;
  const auto y1 = blas2::MxvTreeEngine(c1).run(a, n, n, x).y;
  const auto y2 = blas2::MxvTreeEngine(c2).run(a, n, n, x).y;
  EXPECT_LT(host::max_abs_diff(y1, y2), 1e-11 * n);
}

// ---------------------------------------------------------------------------
// Failure injection.

TEST(FailureInjection, TinyCStorageStallsButStaysCorrect) {
  Rng rng(10);
  const std::size_t n = 16;
  const auto a = rng.matrix(n, n);
  const auto b = rng.matrix(n, n);
  blas3::MmArrayConfig cfg;
  cfg.k = 4;
  cfg.m = 4;
  cfg.adder_stages = 4;
  cfg.mem_words_per_cycle = 2.0;   // output port competes with input
  cfg.c_storage_words = 4;         // almost no C buffering
  blas3::MmArrayEngine engine(cfg);
  const auto out = engine.run(a, b, n);
  EXPECT_LT(host::max_abs_diff(out.c, host::ref_gemm(a, b, n)), 1e-10 * n);
  EXPECT_GT(out.report.stall_cycles, 0u);
}

TEST(FailureInjection, GemvColumnHazardDetectedWhenForced) {
  // Bypass the constructor check by a config whose rows make groups exactly
  // one short of the adder depth — must throw ConfigError before any
  // mis-simulation happens.
  blas2::MxvColConfig cfg;
  cfg.k = 4;
  cfg.adder_stages = 14;
  blas2::MxvColEngine engine(cfg);
  Rng rng(11);
  const std::size_t rows = 4 * 13;  // groups = 13 < 14
  const auto a = rng.matrix(rows, 32);
  EXPECT_THROW(engine.run(a, rows, 32, rng.vector(32)), ConfigError);
}

TEST(FailureInjection, SpmxvRejectsCorruptMatrix) {
  auto m = blas2::make_uniform_sparse(16, 16, 4, 12);
  m.col_idx[3] = 16;  // out of range
  blas2::SpmxvEngine engine{blas2::SpmxvConfig{}};
  Rng rng(13);
  EXPECT_THROW(engine.run(m, rng.vector(16)), ConfigError);
}

// ---------------------------------------------------------------------------
// Randomized shape sweep through the whole Context surface.

class RandomShapes : public ::testing::TestWithParam<int> {};

TEST_P(RandomShapes, GemvAndDotAgainstReference) {
  Rng rng(100 + GetParam());
  host::Context ctx;
  for (int trial = 0; trial < 3; ++trial) {
    const std::size_t rows = rng.uniform_int(1, 160);
    const std::size_t cols = rng.uniform_int(1, 160);
    const auto a = rng.matrix(rows, cols);
    const auto x = rng.vector(cols);
    const auto y = ctx.gemv(a, rows, cols, x);
    const auto ref = host::ref_gemv(a, rows, cols, x);
    ASSERT_LT(host::max_abs_diff(y.y, ref), 1e-11 * cols)
        << rows << "x" << cols;

    const std::size_t n = rng.uniform_int(1, 3000);
    const auto u = rng.vector(n);
    const auto v = rng.vector(n);
    ASSERT_NEAR(ctx.dot(u, v).value, host::ref_dot(u, v), 1e-11 * n);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomShapes, ::testing::Range(0, 8));

// ---------------------------------------------------------------------------
// IEEE special values flow through entire engines, not just the FP units.

TEST(SpecialValues, NanPropagatesThroughGemv) {
  Rng rng(20);
  const std::size_t n = 64;
  auto a = rng.matrix(n, n);
  a[5 * n + 7] = std::numeric_limits<double>::quiet_NaN();
  const auto x = rng.vector(n);
  host::Context ctx;
  const auto out = ctx.gemv(a, n, n, x);
  EXPECT_TRUE(std::isnan(out.y[5]));  // only the poisoned row
  EXPECT_FALSE(std::isnan(out.y[4]));
  EXPECT_FALSE(std::isnan(out.y[6]));
}

TEST(SpecialValues, InfPropagatesThroughGemmArray) {
  Rng rng(21);
  const std::size_t n = 16;
  auto a = rng.matrix(n, n);
  auto b = rng.matrix(n, n);
  a[3 * n + 0] = std::numeric_limits<double>::infinity();
  blas3::MmArrayConfig cfg;
  cfg.k = 4;
  cfg.m = 4;
  cfg.adder_stages = 4;
  cfg.mem_words_per_cycle = 8.0;
  const auto out = blas3::MmArrayEngine(cfg).run(a, b, n);
  for (std::size_t j = 0; j < n; ++j) {
    EXPECT_FALSE(std::isfinite(out.c[3 * n + j])) << j;  // inf or nan
    EXPECT_TRUE(std::isfinite(out.c[2 * n + j])) << j;
  }
}

TEST(SpecialValues, NanThroughReductionBasedDot) {
  host::Context ctx;
  std::vector<double> u(100, 1.0), v(100, 1.0);
  u[50] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(std::isnan(ctx.dot(u, v).value));
}

// ---------------------------------------------------------------------------
// Bandwidth x C-storage sweep: the GEMM array stays correct in every corner.

class MmArrayCorners
    : public ::testing::TestWithParam<std::tuple<double, std::size_t>> {};

TEST_P(MmArrayCorners, CorrectUnderAnyPressure) {
  const auto [rate, cstore] = GetParam();
  Rng rng(31);
  const std::size_t n = 16;
  const auto a = rng.matrix(n, n);
  const auto b = rng.matrix(n, n);
  blas3::MmArrayConfig cfg;
  cfg.k = 4;
  cfg.m = 4;
  cfg.adder_stages = 4;
  cfg.mem_words_per_cycle = rate;
  cfg.c_storage_words = cstore;
  const auto out = blas3::MmArrayEngine(cfg).run(a, b, n);
  EXPECT_LT(host::max_abs_diff(out.c, host::ref_gemm(a, b, n)), 1e-10 * n);
}

INSTANTIATE_TEST_SUITE_P(
    Corners, MmArrayCorners,
    ::testing::Combine(::testing::Values(0.5, 1.0, 3.0, 8.0),
                       ::testing::Values(2, 8, 16, 0)));

TEST(ExactProperties, GemmBilinearPowerOfTwoScaling) {
  // (2A)(4B) = 8(AB) exactly in IEEE-754 — through the full PE array.
  Rng rng(40);
  const std::size_t n = 16;
  const auto a = rng.matrix(n, n);
  const auto b = rng.matrix(n, n);
  blas3::MmArrayConfig cfg;
  cfg.k = 4;
  cfg.m = 4;
  cfg.adder_stages = 4;
  cfg.mem_words_per_cycle = 8.0;
  blas3::MmArrayEngine engine(cfg);
  const auto base = engine.run(a, b, n).c;
  auto a2 = a, b4 = b;
  for (auto& x : a2) x *= 2.0;
  for (auto& x : b4) x *= 4.0;
  const auto scaled = engine.run(a2, b4, n).c;
  for (std::size_t i = 0; i < n * n; ++i) {
    ASSERT_EQ(scaled[i], 8.0 * base[i]) << i;
  }
}
