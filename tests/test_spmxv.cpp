// Sparse matrix-vector multiply tests: CRS structure, the tree-based SpMXV
// engine against dense references, irregular-row stress on the reduction
// circuit, and the workload generators.
#include <gtest/gtest.h>

#include <cmath>

#include "blas2/spmxv.hpp"
#include "common/random.hpp"
#include "host/reference.hpp"

using namespace xd;
using blas2::CrsMatrix;
using blas2::SpmxvConfig;
using blas2::SpmxvEngine;

namespace {

void expect_close(const std::vector<double>& got, const std::vector<double>& want,
                  double scale) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    const double tol = std::max(1e-12, std::fabs(want[i]) * 1e-12 * scale);
    EXPECT_NEAR(got[i], want[i], tol) << "row " << i;
  }
}

void check_against_dense(const CrsMatrix& a, u64 seed, unsigned k = 4) {
  Rng rng(seed);
  const auto x = rng.vector(a.cols);
  SpmxvConfig cfg;
  cfg.k = k;
  SpmxvEngine engine(cfg);
  const auto out = engine.run(a, x);
  const auto ref = host::ref_gemv(a.to_dense(), a.rows, a.cols, x);
  expect_close(out.y, ref, static_cast<double>(a.cols));
}

}  // namespace

TEST(Crs, FromDenseRoundTrip) {
  Rng rng(1);
  auto dense = rng.matrix(13, 17);
  // Punch holes.
  for (std::size_t i = 0; i < dense.size(); i += 3) dense[i] = 0.0;
  const auto crs = CrsMatrix::from_dense(dense, 13, 17);
  crs.validate();
  EXPECT_EQ(crs.to_dense(), dense);
  EXPECT_LT(crs.density(), 0.7);
}

TEST(Crs, ValidateCatchesCorruption) {
  auto m = blas2::make_uniform_sparse(8, 8, 3, 2);
  m.validate();
  auto bad = m;
  bad.col_idx[0] = 99;
  EXPECT_THROW(bad.validate(), ConfigError);
  bad = m;
  bad.row_ptr.back() += 1;
  EXPECT_THROW(bad.validate(), ConfigError);
  bad = m;
  bad.row_ptr.pop_back();
  EXPECT_THROW(bad.validate(), ConfigError);
}

TEST(SpmxvGenerators, ShapesAndDensities) {
  const auto u = blas2::make_uniform_sparse(50, 80, 6, 3);
  u.validate();
  EXPECT_EQ(u.nnz(), 50u * 6);
  EXPECT_NEAR(u.density(), 6.0 / 80.0, 1e-12);

  const auto b = blas2::make_banded(40, 2, 4);
  b.validate();
  EXPECT_EQ(b.row_ptr[1] - b.row_ptr[0], 3u);   // first row: diag + 2 right
  EXPECT_EQ(b.row_ptr[21] - b.row_ptr[20], 5u); // interior row: full band

  const auto p = blas2::make_power_law(100, 200, 50, 5);
  p.validate();
  std::size_t max_row = 0, min_row = SIZE_MAX;
  for (std::size_t i = 0; i < p.rows; ++i) {
    const std::size_t len = p.row_ptr[i + 1] - p.row_ptr[i];
    max_row = std::max(max_row, len);
    min_row = std::min(min_row, len);
  }
  EXPECT_GE(min_row, 1u);
  EXPECT_LE(max_row, 50u);
  EXPECT_GT(max_row, min_row);  // genuinely irregular
}

TEST(Spmxv, UniformSparseMatchesDense) {
  check_against_dense(blas2::make_uniform_sparse(64, 64, 8, 10), 100);
}

TEST(Spmxv, TridiagonalMatchesDense) {
  check_against_dense(blas2::make_banded(128, 1, 11), 101);
}

TEST(Spmxv, WideBandMatchesDense) {
  check_against_dense(blas2::make_banded(96, 10, 12), 102);
}

TEST(Spmxv, PowerLawIrregularRowsMatchDense) {
  // Row lengths from 1 to 60: arbitrary reduction-set sizes, the case the
  // proposed circuit exists for.
  check_against_dense(blas2::make_power_law(120, 150, 60, 13), 103);
}

TEST(Spmxv, EmptyRowsYieldZero) {
  CrsMatrix m;
  m.rows = 4;
  m.cols = 4;
  m.row_ptr = {0, 1, 1, 1, 2};  // rows 1 and 2 are empty
  m.values = {2.0, 3.0};
  m.col_idx = {0, 3};
  m.validate();
  SpmxvEngine engine{SpmxvConfig{}};
  const auto out = engine.run(m, {1.0, 1.0, 1.0, 4.0});
  EXPECT_EQ(out.y[0], 2.0);
  EXPECT_EQ(out.y[1], 0.0);
  EXPECT_EQ(out.y[2], 0.0);
  EXPECT_EQ(out.y[3], 12.0);
}

TEST(Spmxv, SingleElementRows) {
  check_against_dense(blas2::make_uniform_sparse(200, 64, 1, 14), 104);
}

class SpmxvLanes : public ::testing::TestWithParam<unsigned> {};

TEST_P(SpmxvLanes, LaneSweep) {
  check_against_dense(blas2::make_power_law(80, 100, 30, 15), 105, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Lanes, SpmxvLanes, ::testing::Values(1, 2, 4, 8));

TEST(Spmxv, FlopsCountNonzerosOnly) {
  const auto m = blas2::make_uniform_sparse(32, 64, 4, 16);
  Rng rng(17);
  SpmxvEngine engine{SpmxvConfig{}};
  const auto out = engine.run(m, rng.vector(64));
  EXPECT_EQ(out.report.flops, 2ull * m.nnz());
}

TEST(Spmxv, DenseEquivalentAgreesWithGemvEngine) {
  // A fully dense CRS matrix must produce the same values as the dense tree
  // engine (same architecture, same reduction order).
  Rng rng(18);
  const std::size_t n = 48;
  const auto dense = rng.matrix(n, n);
  const auto crs = CrsMatrix::from_dense(dense, n, n);
  const auto x = rng.vector(n);

  // The reduction circuit's combination order depends on arrival timing, so
  // bit-identity requires the same feed rate as the dense engine (4/cycle).
  SpmxvConfig scfg;
  scfg.mem_elements_per_cycle = 4.0;
  SpmxvEngine se{scfg};
  const auto ys = se.run(crs, x);
  blas2::MxvTreeEngine de{blas2::MxvTreeConfig{}};
  const auto yd = de.run(dense, n, n, x);
  ASSERT_EQ(ys.y.size(), yd.y.size());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(ys.y[i], yd.y[i]) << "row " << i;  // bit-identical
  }
}

TEST(Spmxv, ThroughputTracksNnzNotDimension) {
  // I/O-bound shape: cycles ~ nnz / min(k, elements-per-cycle), independent
  // of the dense dimension.
  Rng rng(19);
  SpmxvConfig cfg;
  cfg.k = 4;
  cfg.mem_elements_per_cycle = 4.0;
  SpmxvEngine engine(cfg);
  const auto small_dim = blas2::make_uniform_sparse(256, 256, 16, 20);
  const auto large_dim = blas2::make_uniform_sparse(256, 2048, 16, 21);
  const auto c1 = engine.run(small_dim, rng.vector(256)).report.cycles;
  const auto c2 = engine.run(large_dim, rng.vector(2048)).report.cycles;
  EXPECT_NEAR(static_cast<double>(c1) / static_cast<double>(c2), 1.0, 0.05);
}
