// Op-graph fusion tests: GraphDesc structural validation, the chain
// partitioner's fusion decisions (CG-step and Jacobi-sweep chains, the
// SRAM capacity fallback), bit-identity of fused execution against per-op
// runs, cross-validation of the analytic fused-chain staging model against
// the cycle simulation, the separate graph-plan cache accounting, and
// submit_graph() concurrency.
#include <gtest/gtest.h>

#include <vector>

#include "common/random.hpp"
#include "fp/softfloat.hpp"
#include "host/graph.hpp"
#include "host/plan.hpp"
#include "host/runtime.hpp"
#include "model/perf_model.hpp"
#include "telemetry/session.hpp"

using namespace xd;
using host::ContextConfig;
using host::GraphDesc;
using host::GraphOutcome;
using host::OpDesc;
using host::OperandSlot;
using host::Placement;
using host::Runtime;

namespace {

bool bits_equal(double a, double b) {
  return fp::to_bits(a) == fp::to_bits(b);
}

/// The CG step chain: y = A p on the GEMV engine feeding p . Ap on the dot
/// engine over slot B, with p shared as the dot's first operand — the graph
/// solver::cg_dense runs every iteration.
struct CgStepCase {
  std::vector<double> a, p;
  GraphDesc g;

  explicit CgStepCase(std::size_t n, Placement place, u64 seed = 42) {
    Rng rng(seed);
    a = rng.matrix(n, n);
    p = rng.vector(n);
    g.nodes.push_back({"ap", OpDesc::gemv(a, n, n, p, place), true});
    OpDesc pap;
    pap.kind = host::OpKind::Dot;
    pap.placement = place;
    pap.cols = n;
    pap.a = &p;  // b edge-fed from the GEMV
    g.nodes.push_back({"pap", pap, true});
    g.edges.push_back({0, 1, OperandSlot::B});
  }
};

}  // namespace

// ---- validation ------------------------------------------------------------

TEST(GraphDesc, ValidationRejectsStructuralErrors) {
  Rng rng(7);
  const auto u = rng.vector(8);
  const auto v = rng.vector(8);

  {
    GraphDesc g;  // empty
    EXPECT_THROW(g.validate(), ConfigError);
  }
  {
    GraphDesc g;  // edge index out of range
    g.nodes.push_back({"d", OpDesc::dot(u, v), true});
    g.edges.push_back({0, 3, OperandSlot::A});
    EXPECT_THROW(g.validate(), ConfigError);
  }
  {
    GraphDesc g;  // self-edge
    g.nodes.push_back({"d", OpDesc::dot(u, v), true});
    g.edges.push_back({0, 0, OperandSlot::A});
    EXPECT_THROW(g.validate(), ConfigError);
  }
  {
    GraphDesc g;  // cycle between two dots
    OpDesc d;
    d.kind = host::OpKind::Dot;
    d.cols = 1;
    d.a = &u;
    g.nodes.push_back({"x", d, true});
    g.nodes.push_back({"y", d, true});
    g.edges.push_back({0, 1, OperandSlot::B});
    g.edges.push_back({1, 0, OperandSlot::B});
    EXPECT_THROW(g.validate(), ConfigError);
  }
  {
    GraphDesc g;  // duplicate (to, slot)
    g.nodes.push_back({"p", OpDesc::dot(u, v), true});
    OpDesc d;
    d.kind = host::OpKind::Dot;
    d.cols = 1;
    d.a = &u;  // wrong length too, but the duplicate check fires first
    g.nodes.push_back({"c", d, true});
    g.edges.push_back({0, 1, OperandSlot::B});
    g.edges.push_back({0, 1, OperandSlot::B});
    EXPECT_THROW(g.validate(), ConfigError);
  }
  {
    GraphDesc g;  // producer length 8 into a length-4 slot
    g.nodes.push_back({"ap", OpDesc::gemv(u, 8, 1, v, Placement::Sram), true});
    OpDesc d;
    d.kind = host::OpKind::Dot;
    d.cols = 4;
    d.a = &u;
    g.nodes.push_back({"c", d, true});
    g.edges.push_back({0, 1, OperandSlot::B});
    EXPECT_THROW(g.validate(), ConfigError);
  }
  {
    GraphDesc g;  // edge into a slot the consumer does not have (dot has no X)
    g.nodes.push_back({"p", OpDesc::gemv(u, 8, 1, v, Placement::Sram), true});
    g.nodes.push_back({"c", OpDesc::dot(u, v), true});
    g.edges.push_back({0, 1, OperandSlot::X});
    EXPECT_THROW(g.validate(), ConfigError);
  }
  {
    GraphDesc g;  // non-edge-fed operand missing
    OpDesc d;
    d.kind = host::OpKind::Dot;
    d.cols = 8;
    d.a = &u;  // b neither set nor edge-fed
    g.nodes.push_back({"d", d, true});
    EXPECT_THROW(g.validate(), ConfigError);
  }
  {
    GraphDesc g;  // well-formed two-node chain passes
    CgStepCase c(8, Placement::Dram);
    EXPECT_NO_THROW(c.g.validate());
  }
}

TEST(GraphDesc, TopoOrderIsStableLowestIndexFirst) {
  // Diamond: 0 -> {1, 2} -> 3, plus an independent node 4.
  Rng rng(9);
  const auto a = rng.matrix(6, 6);
  const auto x = rng.vector(6);
  GraphDesc g;
  for (int i = 0; i < 5; ++i) {
    OpDesc d;
    d.kind = host::OpKind::Gemv;
    d.rows = d.cols = 6;
    d.a = &a;
    d.x = (i == 0 || i == 4) ? &x : nullptr;
    g.nodes.push_back({"", d, true});
  }
  g.edges.push_back({0, 1, OperandSlot::X});
  g.edges.push_back({0, 2, OperandSlot::X});
  g.edges.push_back({1, 3, OperandSlot::X});
  const auto order = g.topo_order();
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(GraphDesc, SignatureKeysOperandSharing) {
  // dot(u, v) and dot(u, u) have identical shapes but different sharing
  // patterns, so they must plan (and cache) separately.
  Rng rng(11);
  const auto u = rng.vector(16);
  const auto v = rng.vector(16);
  GraphDesc g1, g2;
  g1.nodes.push_back({"d", OpDesc::dot(u, v, Placement::Dram), true});
  g2.nodes.push_back({"d", OpDesc::dot(u, u, Placement::Dram), true});
  EXPECT_NE(g1.signature(), g2.signature());

  // Same sharing structure with different vectors: identical signatures.
  GraphDesc g3;
  g3.nodes.push_back({"d", OpDesc::dot(v, v, Placement::Dram), true});
  EXPECT_EQ(g2.signature(), g3.signature());
}

// ---- fusion: CG step chain -------------------------------------------------

TEST(GraphFusion, CgStepChainFusesAndMatchesPerOpBits) {
  const std::size_t n = 96;
  CgStepCase c(n, Placement::Dram);
  ContextConfig cfg;
  Runtime rt(cfg);
  const GraphOutcome go = rt.run_graph(c.g);

  ASSERT_EQ(go.nodes.size(), 2u);
  EXPECT_EQ(go.fused_edges, 1u);       // ap forwarded over SRAM
  EXPECT_EQ(go.shared_operands, 1u);   // p chain-resident for the dot
  EXPECT_GT(go.staging_saved_cycles, 0u);

  // Per-op reference: the same two ops, standalone.
  Runtime single(cfg);
  const auto gemv_ref = single.run(OpDesc::gemv(c.a, n, n, c.p, Placement::Dram));
  const auto dot_ref = single.run(OpDesc::dot(c.p, go.nodes[0].values,
                                              Placement::Dram));

  // Values bit-identical.
  ASSERT_EQ(go.nodes[0].values.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(bits_equal(go.nodes[0].values[i], gemv_ref.values[i]));
  }
  ASSERT_EQ(go.nodes[1].values.size(), 1u);
  EXPECT_TRUE(bits_equal(go.nodes[1].values[0], dot_ref.values[0]));

  // The GEMV still streams A and writes ap back (kept); the dot's staging
  // vanishes entirely — B is edge-fed, A (= p) is chain-resident.
  EXPECT_EQ(go.nodes[0].report.staging_cycles, gemv_ref.report.staging_cycles);
  EXPECT_EQ(go.nodes[1].report.staging_cycles, 0u);
  EXPECT_GT(dot_ref.report.staging_cycles, 0u);
  EXPECT_EQ(go.node_staging_saved[0], 0u);
  EXPECT_EQ(go.node_staging_saved[1], dot_ref.report.staging_cycles);

  // Engine compute untouched by fusion.
  EXPECT_EQ(go.nodes[0].report.cycles, gemv_ref.report.cycles);
  EXPECT_EQ(go.nodes[1].report.cycles - go.nodes[1].report.staging_cycles,
            dot_ref.report.cycles - dot_ref.report.staging_cycles);
}

TEST(GraphFusion, CgStepChainMatchesAnalyticModel) {
  const std::size_t n = 96;
  CgStepCase c(n, Placement::Dram);
  ContextConfig cfg;
  Runtime rt(cfg);
  const GraphOutcome go = rt.run_graph(c.g);

  Runtime single(cfg);
  const auto gemv_ref = single.run(OpDesc::gemv(c.a, n, n, c.p, Placement::Dram));
  const auto dot_ref = single.run(OpDesc::dot(c.p, go.nodes[0].values,
                                              Placement::Dram));

  // The analytic chain formulas (src/model) and the cycle simulation must
  // agree exactly on both the fused and the unfused staging budget.
  const double wpc_gemv =
      host::words_per_cycle(cfg.gemv_dram_bytes_per_s, cfg.gemv_clock_mhz);
  const double wpc_dot =
      host::words_per_cycle(cfg.gemv_dram_bytes_per_s, cfg.dot_clock_mhz);
  const auto chain = model::cg_step_chain(n, wpc_gemv, wpc_dot);

  const u64 sim_unfused =
      gemv_ref.report.staging_cycles + dot_ref.report.staging_cycles;
  const u64 sim_fused =
      go.nodes[0].report.staging_cycles + go.nodes[1].report.staging_cycles;
  EXPECT_EQ(model::unfused_chain_staging_cycles(chain), sim_unfused);
  EXPECT_EQ(model::fused_chain_staging_cycles(chain), sim_fused);
  EXPECT_EQ(sim_unfused - sim_fused,
            go.node_staging_saved[0] + go.node_staging_saved[1]);
  EXPECT_LT(model::fused_chain_staging_cycles(chain),
            model::unfused_chain_staging_cycles(chain));
}

// ---- fusion: Jacobi sweep --------------------------------------------------

TEST(GraphFusion, JacobiSweepSharesTheMatrixAndMatchesModel) {
  const std::size_t n = 64;
  const std::size_t systems = 4;
  Rng rng(5);
  const auto r = rng.matrix(n, n);
  std::vector<std::vector<double>> xs;
  for (std::size_t s = 0; s < systems; ++s) xs.push_back(rng.vector(n));

  GraphDesc g;
  for (std::size_t s = 0; s < systems; ++s) {
    g.nodes.push_back(
        {cat("sys", s), OpDesc::gemv(r, n, n, xs[s], Placement::Dram), true});
  }

  ContextConfig cfg;
  Runtime rt(cfg);
  const GraphOutcome go = rt.run_graph(g);

  // R staged once: systems-1 shared-operand wins, no edges to fuse.
  EXPECT_EQ(go.fused_edges, 0u);
  EXPECT_EQ(go.shared_operands, systems - 1);
  EXPECT_GT(go.staging_saved_cycles, 0u);

  Runtime single(cfg);
  u64 sim_unfused = 0;
  for (std::size_t s = 0; s < systems; ++s) {
    const auto ref = single.run(OpDesc::gemv(r, n, n, xs[s], Placement::Dram));
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(bits_equal(go.nodes[s].values[i], ref.values[i]));
    }
    sim_unfused += ref.report.staging_cycles;
  }
  u64 sim_fused = 0;
  for (const auto& node : go.nodes) sim_fused += node.report.staging_cycles;

  const double wpc =
      host::words_per_cycle(cfg.gemv_dram_bytes_per_s, cfg.gemv_clock_mhz);
  const auto chain = model::jacobi_sweep_chain(n, systems, wpc);
  EXPECT_EQ(model::unfused_chain_staging_cycles(chain), sim_unfused);
  EXPECT_EQ(model::fused_chain_staging_cycles(chain), sim_fused);
}

// ---- capacity fallback -----------------------------------------------------

TEST(GraphFusion, CapacityFallbackStagesEveryEdgeThroughDram) {
  const std::size_t n = 96;
  CgStepCase c(n, Placement::Dram);
  ContextConfig cfg;
  // 64 words of SRAM: the forwarding bank needs 2n = 192 > 64/4 words and
  // nothing can stay resident, so the planner must fall back to per-op
  // DRAM staging — correct values, zero savings.
  cfg.sram_capacity_words = 64;
  Runtime rt(cfg);
  const GraphOutcome go = rt.run_graph(c.g);

  EXPECT_EQ(go.fused_edges, 0u);
  EXPECT_EQ(go.shared_operands, 0u);
  EXPECT_EQ(go.staging_saved_cycles, 0u);

  Runtime single(cfg);
  const auto gemv_ref = single.run(OpDesc::gemv(c.a, n, n, c.p, Placement::Dram));
  const auto dot_ref = single.run(OpDesc::dot(c.p, go.nodes[0].values,
                                              Placement::Dram));
  EXPECT_EQ(go.nodes[0].report.cycles, gemv_ref.report.cycles);
  EXPECT_EQ(go.nodes[1].report.cycles, dot_ref.report.cycles);
  EXPECT_EQ(go.nodes[1].report.staging_cycles, dot_ref.report.staging_cycles);
  EXPECT_TRUE(bits_equal(go.nodes[1].values[0], dot_ref.values[0]));
}

TEST(GraphFusion, SramPlacementHasZeroStagingEitherWay) {
  const std::size_t n = 48;
  CgStepCase c(n, Placement::Sram);
  Runtime rt(ContextConfig{});
  const GraphOutcome go = rt.run_graph(c.g);
  EXPECT_EQ(go.staging_saved_cycles, 0u);
  for (const auto& node : go.nodes) {
    EXPECT_EQ(node.report.staging_cycles, 0u);
  }
}

// ---- plan cache ------------------------------------------------------------

TEST(GraphPlanCache, GraphEntriesAccountedSeparately) {
  CgStepCase c(32, Placement::Dram);
  ContextConfig cfg;
  Runtime rt(cfg);

  rt.run_graph(c.g);
  EXPECT_EQ(rt.plan_cache().graph_misses(), 1u);
  EXPECT_EQ(rt.plan_cache().graph_hits(), 0u);
  EXPECT_EQ(rt.plan_cache().graph_size(), 1u);

  rt.run_graph(c.g);
  EXPECT_EQ(rt.plan_cache().graph_hits(), 1u);
  EXPECT_EQ(rt.plan_cache().graph_size(), 1u);

  // Graph traffic must not dilute the single-op hit-rate telemetry: node
  // plans are built directly, never through the single-op LRU.
  EXPECT_EQ(rt.plan_cache().hits(), 0u);
  EXPECT_EQ(rt.plan_cache().misses(), 0u);
  EXPECT_EQ(rt.plan_cache().size(), 0u);

  // A structurally different graph is a separate entry.
  CgStepCase c2(48, Placement::Dram);
  rt.run_graph(c2.g);
  EXPECT_EQ(rt.plan_cache().graph_misses(), 2u);
  EXPECT_EQ(rt.plan_cache().graph_size(), 2u);
}

TEST(GraphPlanCache, PublishesGraphGauges) {
  CgStepCase c(24, Placement::Dram);
  telemetry::Session tel;
  ContextConfig cfg;
  cfg.telemetry = &tel;
  Runtime rt(cfg);
  rt.run_graph(c.g);
  rt.run_graph(c.g);
  EXPECT_DOUBLE_EQ(tel.metrics().gauge("host.plan.graphs").value(), 1.0);
  EXPECT_DOUBLE_EQ(tel.metrics().gauge("host.plan.graph_misses").value(), 1.0);
  EXPECT_DOUBLE_EQ(tel.metrics().gauge("host.plan.graph_hits").value(), 1.0);
  // Single-op gauges stay untouched by graph traffic.
  EXPECT_DOUBLE_EQ(tel.metrics().gauge("host.plan.misses").value(), 0.0);
}

// ---- concurrency -----------------------------------------------------------

TEST(GraphFusion, SubmitGraphMatchesRunGraph) {
  CgStepCase c(64, Placement::Dram);
  Runtime rt(ContextConfig{});
  const GraphOutcome want = rt.run_graph(c.g);
  auto fut = rt.submit_graph(c.g);
  const GraphOutcome got = fut.get();
  ASSERT_EQ(got.nodes.size(), want.nodes.size());
  for (std::size_t i = 0; i < want.nodes.size(); ++i) {
    ASSERT_EQ(got.nodes[i].values.size(), want.nodes[i].values.size());
    for (std::size_t j = 0; j < want.nodes[i].values.size(); ++j) {
      EXPECT_TRUE(bits_equal(got.nodes[i].values[j], want.nodes[i].values[j]));
    }
    EXPECT_EQ(got.nodes[i].report.cycles, want.nodes[i].report.cycles);
  }
  EXPECT_EQ(got.staging_saved_cycles, want.staging_saved_cycles);
}
