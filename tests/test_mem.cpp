// Memory-hierarchy model tests: capacities, port discipline, bandwidth
// throttling and DMA staging times.
#include <gtest/gtest.h>

#include <cmath>

#include "machine/device.hpp"
#include "mem/bram.hpp"
#include "mem/channel.hpp"
#include "mem/dma.hpp"
#include "mem/dram.hpp"
#include "mem/hierarchy.hpp"
#include "mem/memory.hpp"
#include "mem/sram_bank.hpp"

using namespace xd;
using mem::Channel;
using mem::DmaEngine;
using mem::Dram;
using mem::SramBank;
using mem::WordMemory;

TEST(WordMemory, ReadWriteAndBounds) {
  WordMemory m(16, "t");
  m.write(3, 77);
  EXPECT_EQ(m.read(3), 77u);
  EXPECT_THROW(m.read(16), SimError);
  EXPECT_THROW(m.write(100, 0), SimError);
  EXPECT_EQ(m.words_read(), 1u);
  EXPECT_EQ(m.words_written(), 1u);
}

TEST(WordMemory, BulkLoadDumpNotCounted) {
  WordMemory m(8, "t");
  m.load(2, {1, 2, 3});
  EXPECT_EQ(m.dump(2, 3), (std::vector<u64>{1, 2, 3}));
  EXPECT_EQ(m.total_traffic_words(), 0u);  // host-side init is free
  EXPECT_THROW(m.load(7, {1, 2}), ConfigError);
  EXPECT_THROW(m.dump(7, 2), ConfigError);
}

TEST(Channel, SustainedRateEnforced) {
  Channel c(0.5, "t");  // one word every two cycles
  int transferred = 0;
  for (int cyc = 0; cyc < 100; ++cyc) {
    c.tick();
    if (c.can_transfer(1.0)) {
      c.transfer(1.0);
      ++transferred;
    }
  }
  EXPECT_EQ(transferred, 50);
  EXPECT_NEAR(c.utilization(), 1.0, 1e-9);
}

TEST(Channel, CreditDoesNotBankUnbounded) {
  Channel c(1.0, "t");  // burst cap defaults to rate + 2
  for (int cyc = 0; cyc < 100; ++cyc) c.tick();
  EXPECT_TRUE(c.can_transfer(3.0));
  EXPECT_FALSE(c.can_transfer(3.5));  // idle bandwidth is not banked
}

TEST(Channel, OverSubscriptionThrows) {
  Channel c(1.0, "t");
  c.tick();
  c.transfer(1.0);
  EXPECT_THROW(c.transfer(1.0), SimError);
}

TEST(Channel, WordsPerCycleConversion) {
  // 5.9 GB/s at 164 MHz ~= 4.497 words/cycle (the Table 4 GEMV numbers).
  const double wpc = Channel::words_per_cycle_for(5.9e9, 164e6);
  EXPECT_NEAR(wpc, 5.9e9 / (8.0 * 164e6), 1e-12);
  Channel c(wpc, "t");
  for (int cyc = 0; cyc < 1000; ++cyc) {
    c.tick();
    while (c.can_transfer(1.0)) c.transfer(1.0);
  }
  EXPECT_NEAR(c.achieved_bytes_per_s(164e6), 5.9e9, 0.01e9);
}

TEST(SramBank, OnePortEachPerCycle) {
  SramBank b(64, "t");
  b.tick();
  b.write(0, 5);
  EXPECT_THROW(b.write(1, 6), SimError);  // one write port
  EXPECT_EQ(b.read(0), 5u);
  EXPECT_THROW(b.read(1), SimError);  // one read port
  b.tick();  // ports reopen
  EXPECT_NO_THROW(b.read(0));
  EXPECT_NO_THROW(b.write(1, 7));
}

TEST(SramBank, PeakBandwidthIsTwoWordsPerCycle) {
  SramBank b(64, "t");
  for (int cyc = 0; cyc < 100; ++cyc) {
    b.tick();
    b.read(0);
    b.write(1, 0);
  }
  EXPECT_NEAR(b.achieved_bytes_per_s(130e6), SramBank::peak_bytes_per_s(130e6),
              1.0);
  EXPECT_NEAR(SramBank::peak_bytes_per_s(130e6), 2.08e9, 0.01e9);
}

TEST(Dram, LinkThrottlesAccesses) {
  Dram d(128, 0.25, "t");  // one word every four cycles
  int reads = 0;
  for (int cyc = 0; cyc < 100; ++cyc) {
    d.tick();
    if (d.can_read()) {
      d.read(0);
      ++reads;
    }
  }
  EXPECT_EQ(reads, 25);
}

TEST(Dma, StagingTimeMatchesBandwidth) {
  // Stage 1024 words over a 0.99 words/cycle link (Table 4's GEMV staging):
  // ~1034 cycles expected.
  WordMemory src(2048, "src");
  WordMemory dst(2048, "dst");
  for (std::size_t i = 0; i < 1024; ++i) src.load(i, {i * 3 + 1});
  Channel link(0.99, "link");
  DmaEngine dma(link, /*port_cap=*/4);
  dma.start(src, 0, dst, 0, 1024);
  u64 cycles = 0;
  while (dma.active()) {
    link.tick();
    dma.tick();
    ++cycles;
    ASSERT_LT(cycles, 10'000u);
  }
  EXPECT_NEAR(static_cast<double>(cycles), 1024.0 / 0.99, 8.0);
  EXPECT_EQ(dst.dump(0, 1024), src.dump(0, 1024));
}

TEST(Dma, PortCapLimitsBurst) {
  WordMemory src(64, "src");
  WordMemory dst(64, "dst");
  Channel link(16.0, "fat-link");  // faster than the ports
  DmaEngine dma(link, /*port_cap=*/4);
  dma.start(src, 0, dst, 0, 32);
  u64 cycles = 0;
  while (dma.active()) {
    link.tick();
    dma.tick();
    ++cycles;
  }
  EXPECT_EQ(cycles, 8u);  // 32 words / 4 per cycle
}

TEST(Dma, CountersResetPerTransfer) {
  // Regression: start() used to keep the previous transfer's moved_ and
  // busy_cycles_, so a reused engine reported cumulative totals and the
  // second transfer's words_moved() never matched its size.
  WordMemory src(64, "src");
  WordMemory dst(64, "dst");
  Channel link(4.0, "link");
  DmaEngine dma(link);
  for (int pass = 0; pass < 2; ++pass) {
    dma.start(src, 0, dst, 0, 32);
    u64 cycles = 0;
    while (dma.active()) {
      link.tick();
      dma.tick();
      ++cycles;
    }
    EXPECT_EQ(dma.words_moved(), 32u) << "pass " << pass;
    EXPECT_EQ(dma.busy_cycles(), cycles) << "pass " << pass;
  }
}

TEST(Dma, OverlappingForwardCopyGetsMemmoveSemantics) {
  // Regression: a same-memory transfer whose destination starts inside the
  // source range (dst > src) used to re-read already-written words — the
  // word-by-word forward copy smeared src[0..3] across the whole range.
  WordMemory m(64, "m");
  for (std::size_t i = 0; i < 16; ++i) m.load(i, {100 + i});
  Channel link(2.0, "link");  // slow link: the overlap spans many cycles
  DmaEngine dma(link);
  dma.start(m, 0, m, 4, 16);  // shift [0, 16) up by 4
  while (dma.active()) {
    link.tick();
    dma.tick();
  }
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(m.read(4 + i), 100 + i) << "offset " << i;
  }
  EXPECT_EQ(dma.words_moved(), 16u);
}

TEST(Dma, OverlapShiftDownStaysForward) {
  // dst < src overlap is safe front-to-back; make sure the reverse path
  // does not kick in and corrupt it.
  WordMemory m(64, "m");
  for (std::size_t i = 0; i < 16; ++i) m.load(4 + i, {200 + i});
  Channel link(3.0, "link");
  DmaEngine dma(link);
  dma.start(m, 4, m, 0, 16);  // shift [4, 20) down by 4
  while (dma.active()) {
    link.tick();
    dma.tick();
  }
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(m.read(i), 200 + i) << "offset " << i;
  }
}

TEST(Hierarchy, Table1Constants) {
  const auto cray = mem::cray_xd1();
  EXPECT_EQ(cray.level(mem::Level::A).name, "BRAM");
  EXPECT_NEAR(cray.level(mem::Level::A).bytes, 522.0 * 1024, 1.0);
  EXPECT_NEAR(cray.level(mem::Level::A).bytes_per_s, 209e9, 1e6);
  EXPECT_NEAR(cray.level(mem::Level::B).bytes, 16.0 * 1024 * 1024, 1.0);
  EXPECT_NEAR(cray.level(mem::Level::B).bytes_per_s, 12.8e9, 1e6);
  EXPECT_NEAR(cray.level(mem::Level::C).bytes, 8.0 * 1024 * 1024 * 1024, 1.0);
  EXPECT_NEAR(cray.level(mem::Level::C).bytes_per_s, 3.2e9, 1e6);

  const auto src = mem::src_mapstation();
  EXPECT_NEAR(src.level(mem::Level::B).bytes, 24.0 * 1024 * 1024, 1.0);
  EXPECT_NEAR(src.level(mem::Level::C).bytes_per_s, 1.4e9, 1e6);
}

TEST(BramBudget, AllocateReleaseAndCapacity) {
  mem::BramBudget b(1000, "test");
  b.allocate("x", 600);
  EXPECT_EQ(b.used_words(), 600u);
  EXPECT_TRUE(b.fits(400));
  EXPECT_FALSE(b.fits(401));
  EXPECT_THROW(b.allocate("y", 401), ConfigError);
  EXPECT_TRUE(b.try_allocate("y", 400));
  EXPECT_FALSE(b.try_allocate("z", 1));
  b.release("x");
  EXPECT_EQ(b.free_words(), 600u);
  EXPECT_THROW(b.release("x"), ConfigError);
  EXPECT_THROW(b.allocate("y", 1), ConfigError);  // duplicate name
}

TEST(BramBudget, MaxSquareBlockEdgeMatchesFig9Choice) {
  // XC2VP50: ~4 Mb BRAM = 65536 words; the largest m with 2 m^2 <= capacity
  // is 181, and the paper picks the power-of-two m = 128 below it.
  mem::BramBudget b(machine::xc2vp50());
  EXPECT_EQ(b.capacity_words(), 65536u);
  EXPECT_EQ(b.max_square_block_edge(), 181u);
  EXPECT_GE(b.max_square_block_edge(), 128u);
}

TEST(BramBudget, ReportListsRegions) {
  mem::BramBudget b(100, "dev");
  b.allocate("alpha", 10);
  b.allocate("beta", 20);
  const auto rep = b.report();
  EXPECT_NE(rep.find("alpha: 10"), std::string::npos);
  EXPECT_NE(rep.find("beta: 20"), std::string::npos);
  EXPECT_NE(rep.find("30/100"), std::string::npos);
}
