// Public-API tests: the Context facade end-to-end, Table 3/4 behaviour at
// test scale, placement (SRAM vs DRAM staging), and the reference BLAS.
#include <gtest/gtest.h>

#include <cmath>

#include "host/context.hpp"
#include "host/reference.hpp"
#include "common/random.hpp"

using namespace xd;
using host::Context;
using host::ContextConfig;
using host::GemvArch;
using host::Placement;

TEST(Reference, BlockedGemmMatchesNaive) {
  Rng rng(1);
  for (std::size_t n : {1u, 7u, 64u, 100u, 130u}) {
    const auto a = rng.matrix(n, n);
    const auto b = rng.matrix(n, n);
    const auto c1 = host::ref_gemm(a, b, n);
    const auto c2 = host::blocked_gemm(a, b, n, 32);
    EXPECT_LT(host::max_abs_diff(c1, c2), 1e-10 * static_cast<double>(n))
        << "n=" << n;
  }
}

TEST(Reference, DotAndGemv) {
  Rng rng(2);
  const auto u = rng.vector(100);
  const auto v = rng.vector(100);
  double expect = 0;
  for (int i = 0; i < 100; ++i) expect += u[i] * v[i];
  EXPECT_NEAR(host::ref_dot(u, v), expect, 1e-12);

  const auto a = rng.matrix(3, 2);
  const auto y = host::ref_gemv(a, 3, 2, {1.0, 2.0});
  EXPECT_NEAR(y[0], a[0] + 2 * a[1], 1e-15);
  EXPECT_NEAR(y[2], a[4] + 2 * a[5], 1e-15);
}

TEST(Context, DotEndToEnd) {
  Rng rng(3);
  Context ctx;
  const auto u = rng.vector(2048);
  const auto v = rng.vector(2048);
  const auto r = ctx.dot(u, v);
  EXPECT_NEAR(r.value, host::ref_dot(u, v), 1e-9);
  EXPECT_GT(r.report.sustained_mflops(), 0.0);
  // Table 3: the dot design sustains >= 80% of the I/O-bound peak (bw words/s
  // = 687.5 MFLOPS at 5.5 GB/s).
  EXPECT_GT(r.report.sustained_mflops(), 0.80 * 687.5);
  EXPECT_LE(r.report.sustained_mflops(), 687.5 * 1.001);
}

TEST(Context, GemvSramMatchesReferenceAndIsNearPeak) {
  Rng rng(4);
  Context ctx;
  const std::size_t n = 256;
  const auto a = rng.matrix(n, n);
  const auto x = rng.vector(n);
  const auto out = ctx.gemv(a, n, n, x);
  const auto ref = host::ref_gemv(a, n, n, x);
  EXPECT_LT(host::max_abs_diff(out.y, ref), 1e-10 * static_cast<double>(n));
  // SRAM-resident GEMV: ~2 flops per streamed word at 4 words/cycle.
  const double fpc = out.report.flops_per_cycle();
  EXPECT_GT(fpc, 7.5);  // 8 = perfect 2*k
  EXPECT_LE(fpc, 8.0);
}

TEST(Context, GemvDramStagingDominates) {
  // Table 4: from DRAM the staging phase dominates (6.4 of 8.0 ms at
  // n = 1024); sustained performance collapses to ~80% of the DRAM-bound
  // peak of 2 * bw.
  Rng rng(5);
  Context ctx;
  const std::size_t n = 256;
  const auto a = rng.matrix(n, n);
  const auto x = rng.vector(n);
  const auto sram = ctx.gemv(a, n, n, x, Placement::Sram);
  const auto dram = ctx.gemv(a, n, n, x, Placement::Dram);
  EXPECT_EQ(sram.y, dram.y);  // numerics unchanged
  EXPECT_GT(dram.report.staging_cycles, 3 * sram.report.cycles);
  const double frac_staging = static_cast<double>(dram.report.staging_cycles) /
                              static_cast<double>(dram.report.cycles);
  EXPECT_GT(frac_staging, 0.75);
  EXPECT_LT(frac_staging, 0.85);
}

TEST(Context, GemvColumnArchAgrees) {
  Rng rng(6);
  Context ctx;
  const std::size_t n = 128;
  const auto a = rng.matrix(n, n);
  const auto x = rng.vector(n);
  const auto tree = ctx.gemv(a, n, n, x, Placement::Sram, GemvArch::Tree);
  const auto col = ctx.gemv(a, n, n, x, Placement::Sram, GemvArch::Column);
  EXPECT_LT(host::max_abs_diff(tree.y, col.y), 1e-10 * static_cast<double>(n));
}

TEST(Context, GemmMatchesReference) {
  Rng rng(7);
  ContextConfig cfg;
  cfg.mm_b = 32;  // small panels for test scale
  Context ctx(cfg);
  const std::size_t n = 64;
  const auto a = rng.matrix(n, n);
  const auto b = rng.matrix(n, n);
  const auto out = ctx.gemm(a, b, n);
  const auto ref = host::ref_gemm(a, b, n);
  EXPECT_LT(host::max_abs_diff(out.c, ref), 1e-9 * static_cast<double>(n));
  // 2k flops/cycle at k = 8: 16 flops/cycle compute-bound.
  EXPECT_GT(out.report.flops_per_cycle(), 15.0);
}

TEST(Context, GemmSustainedGflopsMatchesTable4Shape) {
  // The Table 4 figure: 2.06 GFLOPS at 130 MHz — i.e. ~2 flops/PE/cycle x 8
  // PEs. The sustained number is independent of n (compute bound), so the
  // test-scale run must land on the same figure.
  Rng rng(8);
  ContextConfig cfg;
  cfg.mm_b = 64;
  Context ctx(cfg);
  const std::size_t n = 64;
  const auto out = ctx.gemm(rng.matrix(n, n), rng.matrix(n, n), n);
  EXPECT_NEAR(out.report.sustained_gflops(), 2.06, 0.06);
}

TEST(Context, GemmArrayCycleAccurateAgrees) {
  Rng rng(9);
  ContextConfig cfg;
  Context ctx(cfg);
  const std::size_t n = 24;
  const auto a = rng.matrix(n, n);
  const auto b = rng.matrix(n, n);
  const auto out = ctx.gemm_array(a, b, n);
  EXPECT_LT(host::max_abs_diff(out.c, host::ref_gemm(a, b, n)),
            1e-10 * static_cast<double>(n));
}

TEST(Context, DesignAreasMatchTables) {
  Context ctx;
  EXPECT_EQ(ctx.dot_design_area().slices, 5210u);
  EXPECT_EQ(ctx.gemv_design_area().slices, 13772u);
  EXPECT_DOUBLE_EQ(ctx.gemv_design_area().clock_mhz, 164.0);
  EXPECT_EQ(ctx.gemm_design_area().slices, 21029u);
  EXPECT_DOUBLE_EQ(ctx.gemm_design_area().clock_mhz, 130.0);
}

TEST(Context, ReportConversions) {
  host::PerfReport r;
  r.cycles = 130'000'000;
  r.flops = 2ull * 512 * 512 * 512;
  r.clock_mhz = 130.0;
  EXPECT_NEAR(r.seconds(), 1.0, 1e-9);
  EXPECT_NEAR(r.sustained_gflops(), 0.268, 0.001);
}

TEST(Context, GemvBramPlanMatchesPaperLimits) {
  Context ctx;
  // n = 2048 fits comfortably (Table 3's experiment size)...
  EXPECT_NO_THROW(ctx.gemv_bram_plan(2048));
  // ...and the capacity bound is the device's 65536 words minus buffers.
  EXPECT_GT(ctx.gemv_onchip_x_capacity(), 60000u);
  EXPECT_THROW(ctx.gemv_bram_plan(70000), ConfigError);
}

TEST(Context, GemvAutoFallsBackToBlockedWhenXTooLarge) {
  // Shrink the device BRAM so blocking triggers at test scale.
  ContextConfig cfg;
  cfg.device.bram_bits = 64 * 600;  // 600 words on chip
  Context ctx(cfg);
  EXPECT_LT(ctx.gemv_onchip_x_capacity(), 300u);

  Rng rng(21);
  const std::size_t rows = 64, cols = 900;  // x cannot fit
  const auto a = rng.matrix(rows, cols);
  const auto x = rng.vector(cols);
  const auto out = ctx.gemv_auto(a, rows, cols, x);
  EXPECT_LT(host::max_abs_diff(out.y, host::ref_gemv(a, rows, cols, x)),
            1e-10 * cols);
  EXPECT_NE(out.report.design.find("blocked"), std::string::npos);

  // Small x takes the unblocked path.
  const auto small_a = rng.matrix(rows, 64);
  const auto small = ctx.gemv_auto(small_a, rows, 64, rng.vector(64));
  EXPECT_EQ(small.report.design.find("blocked"), std::string::npos);
}

TEST(Context, GemmBramPlanFitsDefaultConfig) {
  Context ctx;
  const auto plan = ctx.gemm_bram_plan();
  EXPECT_LE(plan.used_words(), plan.capacity_words());
  EXPECT_EQ(plan.used_words(), 2u * 8 * 8 + 16);
}

TEST(Context, GemmMultiScalesAcrossFpgas) {
  Rng rng(22);
  const std::size_t n = 32;
  const auto a = rng.matrix(n, n);
  const auto b = rng.matrix(n, n);

  ContextConfig one;
  one.mm_b = 32;
  ContextConfig two = one;
  two.mm_l = 2;
  const auto o1 = Context(one).gemm_multi(a, b, n);
  const auto o2 = Context(two).gemm_multi(a, b, n);
  EXPECT_EQ(o1.c, o2.c);  // same accumulation order at any l
  EXPECT_LT(host::max_abs_diff(o1.c, host::ref_gemm(a, b, n)), 1e-10 * n);
  EXPECT_LT(o2.report.cycles, o1.report.cycles);
  EXPECT_EQ(o2.per_fpga.size(), 2u);
}

TEST(Context, SpmxvThroughApi) {
  Rng rng(23);
  const std::size_t n = 128;
  const auto m = blas2::make_uniform_sparse(n, n, 8, 44);
  const auto x = rng.vector(n);
  Context ctx;
  const auto out = ctx.spmxv(m, x);
  EXPECT_LT(host::max_abs_diff(out.y, host::ref_gemv(m.to_dense(), n, n, x)),
            1e-10 * n);
  EXPECT_EQ(out.report.flops, 2 * m.nnz());

  // x beyond the on-chip capacity is rejected.
  ContextConfig tiny;
  tiny.device.bram_bits = 64 * 500;
  Context small(tiny);
  EXPECT_THROW(small.spmxv(m, x), ConfigError);
}
