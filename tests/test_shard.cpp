// Shard-scheduler tests (host/shard.hpp, docs/sharding.md): the determinism
// contract — GEMM values bit-identical to single-device execution at every
// l, GEMV bit-identical at l = 1 and reproducible at every l, l = 1 costing
// exactly the single-device run — plus the PR-5 discipline at the
// multi-FPGA level: the channel-driven simulation must land on the analytic
// GEMM model cycle-for-cycle, and the machine's link counters must account
// for every word the store-and-forward legs moved.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/random.hpp"
#include "fp/softfloat.hpp"
#include "host/context.hpp"
#include "host/runtime.hpp"
#include "host/shard.hpp"
#include "model/perf_model.hpp"

using namespace xd;
using host::ContextConfig;
using host::OpDesc;
using host::Outcome;
using host::Placement;
using host::Runtime;
using host::ShardOutcome;
using host::ShardScheduler;

namespace {

/// 3 chassis x 2 nodes: six FPGAs, so l = 3 and l = 6 cross chassis
/// boundaries while l = 2 stays on one chassis's RocketIO chain.
machine::SystemConfig small_system() {
  machine::SystemConfig sys;
  sys.chassis_count = 3;
  sys.chassis.nodes = 2;
  return sys;
}

bool bits_equal(double a, double b) {
  return fp::to_bits(a) == fp::to_bits(b);
}

void expect_bitwise(const std::vector<double>& want,
                    const std::vector<double>& got, const char* what) {
  ASSERT_EQ(want.size(), got.size()) << what;
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_TRUE(bits_equal(want[i], got[i]))
        << what << ": values[" << i << "] " << got[i] << " != " << want[i];
  }
}

}  // namespace

// ---- row partition --------------------------------------------------------

TEST(ShardModel, RowPartitionIsContiguousBalancedAndComplete) {
  for (std::size_t rows : {1u, 2u, 5u, 6u, 7u, 48u, 193u}) {
    for (unsigned l = 1; l <= std::min<std::size_t>(rows, 8); ++l) {
      std::size_t sum = 0;
      for (unsigned i = 0; i < l; ++i) {
        EXPECT_EQ(model::shard_row0(rows, l, i), sum);
        const std::size_t ri = model::shard_rows(rows, l, i);
        EXPECT_GE(ri, rows / l);
        EXPECT_LE(ri, rows / l + 1);
        sum += ri;
      }
      EXPECT_EQ(sum, rows);
    }
  }
}

TEST(ShardModel, GemmModelAtL1IsThePanelModel) {
  model::ShardGemmModel m;
  m.l = 1;
  m.k = 8;
  m.engine_l = 1;
  m.b = 48;
  m.engine_wpc = 1.0;
  EXPECT_EQ(model::shard_gemm_model_cycles(48, m),
            model::mm_hier_panel_cycles(48, 48, 8, 1, 48, 1.0));
}

// ---- GEMM -----------------------------------------------------------------

TEST(ShardGemm, BitIdenticalToSingleDeviceAtEveryL) {
  const std::size_t n = 48;
  Rng rng(7);
  const auto a = rng.matrix(n, n);
  const auto b = rng.matrix(n, n);

  ContextConfig cfg;
  Runtime rt(cfg);
  const Outcome base = rt.run(OpDesc::gemm(a, b, n));

  for (unsigned l = 1; l <= 6; ++l) {
    ShardScheduler sched(rt, small_system());
    const ShardOutcome out = sched.run(OpDesc::gemm(a, b, n), l);
    EXPECT_EQ(out.plan.l, l);
    expect_bitwise(base.values, out.values, "sharded GEMM");
  }
}

TEST(ShardGemm, BitIdenticalWithNansAndInfinities) {
  // Extreme values: sharding must not change any element's accumulation
  // order, so NaN payloads and inf - inf outcomes reproduce exactly.
  const std::size_t n = 8;
  Rng rng(11);
  auto a = rng.matrix(n, n);
  auto b = rng.matrix(n, n);
  a[3] = std::numeric_limits<double>::quiet_NaN();
  a[10] = std::numeric_limits<double>::infinity();
  a[17] = -std::numeric_limits<double>::infinity();
  b[5] = std::numeric_limits<double>::infinity();
  b[12] = 0.0;

  ContextConfig cfg;
  Runtime rt(cfg);
  const Outcome base = rt.run(OpDesc::gemm(a, b, n));
  for (unsigned l : {2u, 3u, 6u}) {
    ShardScheduler sched(rt, small_system());
    expect_bitwise(base.values, sched.run(OpDesc::gemm(a, b, n), l).values,
                   "extreme-value sharded GEMM");
  }
}

TEST(ShardGemm, L1CostsExactlyTheSingleDeviceRun) {
  const std::size_t n = 32;
  Rng rng(3);
  const auto a = rng.matrix(n, n);
  const auto b = rng.matrix(n, n);
  ContextConfig cfg;
  Runtime rt(cfg);
  const Outcome base = rt.run(OpDesc::gemm(a, b, n));

  ShardScheduler sched(rt, small_system());
  const ShardOutcome out = sched.run(OpDesc::gemm(a, b, n), 1);
  EXPECT_EQ(out.report.cycles, base.report.cycles);
  EXPECT_EQ(out.report.staging_cycles, 0u);
  EXPECT_EQ(out.link_words, 0.0);
  EXPECT_EQ(out.interchassis_words, 0.0);
}

TEST(ShardGemm, SimulationMatchesAnalyticModelCycleForCycle) {
  // The multi-FPGA extension of the PR-5 model/sim cross-validation: the
  // channel-driven scatter/compute/gather timeline must equal
  // model::shard_gemm_model_cycles exactly, for every shard count.
  const std::size_t n = 48;
  Rng rng(5);
  const auto a = rng.matrix(n, n);
  const auto b = rng.matrix(n, n);
  ContextConfig cfg;
  Runtime rt(cfg);
  for (unsigned l = 1; l <= 6; ++l) {
    ShardScheduler sched(rt, small_system());
    const ShardOutcome out = sched.run(OpDesc::gemm(a, b, n), l);
    EXPECT_EQ(out.report.cycles, out.plan.model_cycles) << "l=" << l;
  }
}

TEST(ShardGemm, LinkCountersAccountForEveryLegWord) {
  // Store-and-forward conservation: shard i's scatter panel (its A rows
  // plus all of B) crosses i hops, its result panel crosses i hops back, and
  // every hop's channel records the whole panel.
  const std::size_t n = 24;
  Rng rng(13);
  const auto a = rng.matrix(n, n);
  const auto b = rng.matrix(n, n);
  ContextConfig cfg;
  Runtime rt(cfg);
  for (unsigned l : {2u, 4u, 6u}) {
    ShardScheduler sched(rt, small_system());
    const ShardOutcome out = sched.run(OpDesc::gemm(a, b, n), l);
    double want = 0.0;
    for (unsigned i = 1; i < l; ++i) {
      const std::size_t rows_i = model::shard_rows(n, l, i);
      want += static_cast<double>(i) *
              static_cast<double>(rows_i * n + n * n + rows_i * n);
    }
    EXPECT_EQ(out.link_words + out.interchassis_words, want) << "l=" << l;
  }
}

TEST(ShardGemm, InterChassisTrafficOnlyWhenTheChainCrossesAChassis) {
  const std::size_t n = 24;
  Rng rng(17);
  const auto a = rng.matrix(n, n);
  const auto b = rng.matrix(n, n);
  ContextConfig cfg;
  Runtime rt(cfg);

  // l = 2 on a 2-node chassis: both shards share one chassis.
  ShardScheduler two(rt, small_system());
  const ShardOutcome on_chassis = two.run(OpDesc::gemm(a, b, n), 2);
  EXPECT_GT(on_chassis.link_words, 0.0);
  EXPECT_EQ(on_chassis.interchassis_words, 0.0);

  // l = 6 over 3 chassis of 2: hops 1->2 and 3->4 cross chassis.
  ShardScheduler six(rt, small_system());
  const ShardOutcome crossing = six.run(OpDesc::gemm(a, b, n), 6);
  EXPECT_GT(crossing.interchassis_words, 0.0);

  // The same six shards on one 6-node chassis never leave its RocketIO.
  machine::SystemConfig wide;
  wide.chassis_count = 1;
  wide.chassis.nodes = 6;
  ShardScheduler flat(rt, wide);
  const ShardOutcome local = flat.run(OpDesc::gemm(a, b, n), 6);
  EXPECT_GT(local.link_words, 0.0);
  EXPECT_EQ(local.interchassis_words, 0.0);
  expect_bitwise(crossing.values, local.values, "topology-independent values");
}

// ---- GEMV -----------------------------------------------------------------

TEST(ShardGemv, L1IsBitIdenticalAndCostsTheSingleDeviceRun) {
  const std::size_t rows = 48, cols = 40;
  Rng rng(23);
  const auto a = rng.matrix(rows, cols);
  const auto x = rng.vector(cols);
  ContextConfig cfg;
  Runtime rt(cfg);
  const Outcome base = rt.run(OpDesc::gemv(a, rows, cols, x));

  ShardScheduler sched(rt, small_system());
  const ShardOutcome out = sched.run(OpDesc::gemv(a, rows, cols, x), 1);
  expect_bitwise(base.values, out.values, "l=1 GEMV");
  EXPECT_EQ(out.report.cycles, base.report.cycles);
}

TEST(ShardGemv, ShardedValuesMatchTheSingleDeviceRunNumerically) {
  // At l > 1 the reduction circuit pairs each row's chunk sums in an order
  // that depends on which other rows share Buf_red (see host/shard.hpp), so
  // the comparison is numerical, not bitwise.
  const std::size_t rows = 47, cols = 88;
  Rng rng(29);
  const auto a = rng.matrix(rows, cols);
  const auto x = rng.vector(cols);
  ContextConfig cfg;
  Runtime rt(cfg);
  const Outcome base = rt.run(OpDesc::gemv(a, rows, cols, x));

  for (unsigned l : {2u, 3u, 6u}) {
    ShardScheduler sched(rt, small_system());
    const ShardOutcome out = sched.run(OpDesc::gemv(a, rows, cols, x), l);
    ASSERT_EQ(out.values.size(), base.values.size());
    for (std::size_t i = 0; i < base.values.size(); ++i) {
      EXPECT_NEAR(out.values[i], base.values[i],
                  1e-12 * std::max(1.0, std::fabs(base.values[i])))
          << "l=" << l << " row " << i;
    }
  }
}

TEST(ShardGemv, RerunsAreBitIdenticalWithIdenticalTimelines) {
  const std::size_t rows = 31, cols = 64;
  Rng rng(31);
  const auto a = rng.matrix(rows, cols);
  const auto x = rng.vector(cols);
  ContextConfig cfg;
  Runtime rt(cfg);

  for (unsigned l : {2u, 6u}) {
    ShardScheduler first(rt, small_system());
    const ShardOutcome one = first.run(OpDesc::gemv(a, rows, cols, x), l);
    ShardScheduler second(rt, small_system());
    const ShardOutcome two = second.run(OpDesc::gemv(a, rows, cols, x), l);
    expect_bitwise(one.values, two.values, "rerun values");
    EXPECT_EQ(one.report.cycles, two.report.cycles);
    for (unsigned s = 0; s < l; ++s) {
      EXPECT_EQ(one.plan.pieces[s].done, two.plan.pieces[s].done);
      EXPECT_EQ(one.plan.pieces[s].scatter_ready,
                two.plan.pieces[s].scatter_ready);
      EXPECT_EQ(one.shards[s].report.cycles, two.shards[s].report.cycles);
    }
  }
}

// ---- planning -------------------------------------------------------------

TEST(ShardPlan, AutoChoiceScoresEveryFeasibleLAndPicksTheModeledBest) {
  const std::size_t n = 48;
  Rng rng(37);
  const auto a = rng.matrix(n, n);
  const auto b = rng.matrix(n, n);
  ContextConfig cfg;
  Runtime rt(cfg);
  ShardScheduler sched(rt, small_system());
  const host::ShardPlan sp = sched.plan(OpDesc::gemm(a, b, n));

  ASSERT_EQ(sp.candidates.size(), 6u);  // min(6 FPGAs, 48 rows)
  u64 best = sp.candidates.front().model_cycles;
  for (const auto& c : sp.candidates) best = std::min(best, c.model_cycles);
  EXPECT_EQ(sp.model_cycles, best);
  for (const auto& c : sp.candidates) {
    if (c.l == sp.l) EXPECT_EQ(c.model_cycles, sp.model_cycles);
    // Ties go to the smaller l: every strictly smaller candidate is slower.
    if (c.l < sp.l) EXPECT_GT(c.model_cycles, sp.model_cycles);
  }

  ASSERT_EQ(sp.pieces.size(), sp.l);
  for (unsigned i = 0; i < sp.l; ++i) {
    EXPECT_EQ(sp.pieces[i].chassis, i / 2);
    EXPECT_EQ(sp.pieces[i].node, i % 2);
  }
}

TEST(ShardPlan, MaxLIsBoundedByRowsAndByTheMachine) {
  Rng rng(41);
  ContextConfig cfg;
  Runtime rt(cfg);

  // 4 rows on a 6-FPGA machine: rows bound.
  const auto a4 = rng.matrix(4, 32);
  const auto x4 = rng.vector(32);
  ShardScheduler sched(rt, small_system());
  EXPECT_EQ(sched.plan(OpDesc::gemv(a4, 4, 32, x4)).candidates.size(), 4u);
  EXPECT_THROW(sched.plan(OpDesc::gemv(a4, 4, 32, x4), 5), ConfigError);

  // 48 rows on a 2-FPGA machine: machine bound.
  machine::SystemConfig tiny;
  tiny.chassis_count = 1;
  tiny.chassis.nodes = 2;
  const auto a48 = rng.matrix(48, 32);
  const auto x48 = rng.vector(32);
  ShardScheduler small(rt, tiny);
  EXPECT_EQ(small.plan(OpDesc::gemv(a48, 48, 32, x48)).candidates.size(), 2u);
  EXPECT_THROW(small.plan(OpDesc::gemv(a48, 48, 32, x48), 3), ConfigError);
}

TEST(ShardPlan, RejectsUnshardableDescriptors) {
  Rng rng(43);
  ContextConfig cfg;
  Runtime rt(cfg);
  ShardScheduler sched(rt, small_system());

  const auto a = rng.matrix(16, 16);
  const auto x = rng.vector(16);
  // DRAM placement: the scatter legs are the staging.
  EXPECT_THROW(
      sched.plan(OpDesc::gemv(a, 16, 16, x, Placement::Dram)), ConfigError);
  // Column GEMV: the rows/k hazard bound breaks under row splitting.
  EXPECT_THROW(sched.plan(OpDesc::gemv(a, 16, 16, x, Placement::Sram,
                                       host::GemvArch::Column)),
               ConfigError);
  // Only GEMM and GEMV shard.
  EXPECT_THROW(sched.plan(OpDesc::dot(x, x)), ConfigError);
  // Panel GEMM descriptors are derived by the scheduler, not passed in.
  EXPECT_THROW(sched.plan(OpDesc::gemm_panel(a, 16, a, 16)), ConfigError);

  // Degenerate machine shapes are rejected at construction.
  machine::SystemConfig broken;
  broken.chassis_count = 0;
  EXPECT_THROW(ShardScheduler bad(rt, broken), ConfigError);
}
