// Bit-exactness tests for the from-scratch IEEE-754 binary64 implementation.
//
// The host x86-64 FPU (SSE2) implements IEEE-754 round-to-nearest-even for
// double, so native arithmetic serves as the oracle: every softfloat result
// must match the hardware bit pattern (NaNs compare as "both NaN").
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/random.hpp"
#include "fp/softfloat.hpp"

namespace sf = xd::fp;
using xd::u64;

namespace {

u64 native_add(u64 a, u64 b) {
  volatile double x = sf::from_bits(a);
  volatile double y = sf::from_bits(b);
  volatile double z = x + y;
  return sf::to_bits(z);
}

u64 native_mul(u64 a, u64 b) {
  volatile double x = sf::from_bits(a);
  volatile double y = sf::from_bits(b);
  volatile double z = x * y;
  return sf::to_bits(z);
}

void expect_add_matches(u64 a, u64 b) {
  const u64 ours = sf::add(a, b);
  const u64 host = native_add(a, b);
  EXPECT_TRUE(sf::same_value(ours, host))
      << std::hexfloat << sf::from_bits(a) << " + " << sf::from_bits(b)
      << " -> ours=" << sf::from_bits(ours) << " host=" << sf::from_bits(host);
}

void expect_mul_matches(u64 a, u64 b) {
  const u64 ours = sf::mul(a, b);
  const u64 host = native_mul(a, b);
  EXPECT_TRUE(sf::same_value(ours, host))
      << std::hexfloat << sf::from_bits(a) << " * " << sf::from_bits(b)
      << " -> ours=" << sf::from_bits(ours) << " host=" << sf::from_bits(host);
}

}  // namespace

TEST(SoftFloatAdd, SimpleValues) {
  expect_add_matches(sf::to_bits(1.0), sf::to_bits(1.0));
  expect_add_matches(sf::to_bits(1.0), sf::to_bits(2.0));
  expect_add_matches(sf::to_bits(0.1), sf::to_bits(0.2));
  expect_add_matches(sf::to_bits(-1.0), sf::to_bits(1.0));
  expect_add_matches(sf::to_bits(1e308), sf::to_bits(1e308));
  expect_add_matches(sf::to_bits(1e-308), sf::to_bits(1e-308));
  expect_add_matches(sf::to_bits(3.14159), sf::to_bits(-2.71828));
}

TEST(SoftFloatAdd, SignedZeros) {
  EXPECT_EQ(sf::add(sf::kPosZero, sf::kPosZero), sf::kPosZero);
  EXPECT_EQ(sf::add(sf::kNegZero, sf::kNegZero), sf::kNegZero);
  EXPECT_EQ(sf::add(sf::kPosZero, sf::kNegZero), sf::kPosZero);
  EXPECT_EQ(sf::add(sf::kNegZero, sf::kPosZero), sf::kPosZero);
  // x + (-x) is +0 under round-to-nearest.
  EXPECT_EQ(sf::add(sf::to_bits(5.5), sf::to_bits(-5.5)), sf::kPosZero);
  // 0 + x preserves x exactly (including -0).
  EXPECT_EQ(sf::add(sf::kPosZero, sf::to_bits(-3.0)), sf::to_bits(-3.0));
  EXPECT_EQ(sf::add(sf::to_bits(7.0), sf::kNegZero), sf::to_bits(7.0));
}

TEST(SoftFloatAdd, Infinities) {
  EXPECT_EQ(sf::add(sf::kPosInf, sf::to_bits(1.0)), sf::kPosInf);
  EXPECT_EQ(sf::add(sf::to_bits(1.0), sf::kNegInf), sf::kNegInf);
  EXPECT_EQ(sf::add(sf::kPosInf, sf::kPosInf), sf::kPosInf);
  EXPECT_TRUE(sf::is_nan(sf::add(sf::kPosInf, sf::kNegInf)));
  // Overflow to infinity.
  const u64 maxfin = sf::to_bits(std::numeric_limits<double>::max());
  expect_add_matches(maxfin, maxfin);
}

TEST(SoftFloatAdd, NaNPropagation) {
  const u64 nan = sf::to_bits(std::numeric_limits<double>::quiet_NaN());
  EXPECT_TRUE(sf::is_nan(sf::add(nan, sf::to_bits(1.0))));
  EXPECT_TRUE(sf::is_nan(sf::add(sf::to_bits(1.0), nan)));
  EXPECT_TRUE(sf::is_nan(sf::sub(nan, nan)));
}

TEST(SoftFloatAdd, Subnormals) {
  const u64 min_sub = 1;                      // smallest positive subnormal
  const u64 max_sub = sf::kFracMask;          // largest subnormal
  const u64 min_norm = sf::kHiddenBit;        // smallest normal
  expect_add_matches(min_sub, min_sub);
  expect_add_matches(max_sub, min_sub);       // carries into normal range
  expect_add_matches(min_norm, sf::neg(min_sub));  // falls back to subnormal
  expect_add_matches(max_sub, max_sub);
  expect_add_matches(min_norm, min_sub);
}

TEST(SoftFloatAdd, CancellationAndRounding) {
  // Massive cancellation.
  expect_add_matches(sf::to_bits(1.0 + 1e-15), sf::to_bits(-1.0));
  // Rounding ties.
  expect_add_matches(sf::to_bits(1.0), sf::to_bits(0x1.0p-53));       // tie
  expect_add_matches(sf::to_bits(1.0), sf::to_bits(0x1.0000001p-53));  // above tie
  expect_add_matches(sf::to_bits(1.5), sf::to_bits(0x1.0p-53));
  // One-bit-apart exponents (the exact-alignment path).
  expect_add_matches(sf::to_bits(2.0), sf::to_bits(-0x1.fffffffffffffp0));
}

TEST(SoftFloatMul, SimpleValues) {
  expect_mul_matches(sf::to_bits(1.0), sf::to_bits(1.0));
  expect_mul_matches(sf::to_bits(1.5), sf::to_bits(1.5));
  expect_mul_matches(sf::to_bits(0.1), sf::to_bits(0.2));
  expect_mul_matches(sf::to_bits(-3.0), sf::to_bits(7.0));
  expect_mul_matches(sf::to_bits(1e200), sf::to_bits(1e-200));
}

TEST(SoftFloatMul, SpecialValues) {
  EXPECT_EQ(sf::mul(sf::to_bits(2.0), sf::kPosInf), sf::kPosInf);
  EXPECT_EQ(sf::mul(sf::to_bits(-2.0), sf::kPosInf), sf::kNegInf);
  EXPECT_TRUE(sf::is_nan(sf::mul(sf::kPosZero, sf::kPosInf)));
  EXPECT_EQ(sf::mul(sf::to_bits(2.0), sf::kNegZero), sf::kNegZero);
  EXPECT_EQ(sf::mul(sf::to_bits(-2.0), sf::kPosZero), sf::kNegZero);
  const u64 nan = sf::to_bits(std::numeric_limits<double>::quiet_NaN());
  EXPECT_TRUE(sf::is_nan(sf::mul(nan, sf::kPosZero)));
}

TEST(SoftFloatMul, OverflowUnderflow) {
  const u64 maxfin = sf::to_bits(std::numeric_limits<double>::max());
  expect_mul_matches(maxfin, sf::to_bits(2.0));      // overflow -> inf
  expect_mul_matches(maxfin, sf::to_bits(1.0 + 1e-16));
  expect_mul_matches(sf::to_bits(1e-308), sf::to_bits(1e-10));  // deep underflow
  expect_mul_matches(sf::to_bits(5e-324), sf::to_bits(0.5));    // half min subnormal
  expect_mul_matches(sf::to_bits(5e-324), sf::to_bits(0.75));
  expect_mul_matches(sf::to_bits(1.5e-323), sf::to_bits(0.5));
}

TEST(SoftFloatMul, SubnormalOperands) {
  const u64 min_sub = 1;
  const u64 max_sub = sf::kFracMask;
  expect_mul_matches(min_sub, sf::to_bits(2.0));
  expect_mul_matches(max_sub, sf::to_bits(4.0));   // renormalizes
  expect_mul_matches(max_sub, sf::to_bits(0.5));
  expect_mul_matches(min_sub, sf::to_bits(1e308));  // subnormal * huge
}

// ---------------------------------------------------------------------------
// Randomized bit-pattern fuzzing, stratified by operand class.

class SoftFloatFuzz : public ::testing::TestWithParam<int> {};

namespace {

/// Draw a value whose class depends on the strategy index so exponent-aligned,
/// far-apart, subnormal and special operands all get dense coverage.
u64 draw(xd::Rng& rng, int strategy) {
  switch (strategy) {
    case 0:  // completely random bit pattern (includes NaN/Inf/subnormals)
      return rng.raw_bits();
    case 1: {  // moderate range values
      return sf::to_bits(rng.uniform(-1e3, 1e3));
    }
    case 2: {  // close exponents (stress cancellation paths)
      const u64 base = sf::to_bits(1.0);
      return base + (rng.next_u64() & 0xFFFFF);
    }
    case 3: {  // subnormal-heavy
      return rng.next_u64() & (sf::kFracMask | sf::kSignMask);
    }
    default: {  // wide exponent spread
      const u64 sign = rng.next_u64() & sf::kSignMask;
      const u64 exp = (rng.uniform_int(1, 2046)) << 52;
      const u64 frac = rng.next_u64() & sf::kFracMask;
      return sign | exp | frac;
    }
  }
}

}  // namespace

TEST_P(SoftFloatFuzz, AddMatchesHardware) {
  const int strategy = GetParam();
  xd::Rng rng(0xadd0 + static_cast<xd::u64>(strategy));
  for (int i = 0; i < 20000; ++i) {
    const u64 a = draw(rng, strategy);
    const u64 b = draw(rng, (strategy + i) % 5);
    const u64 ours = sf::add(a, b);
    const u64 host = native_add(a, b);
    ASSERT_TRUE(sf::same_value(ours, host))
        << "iteration " << i << ": " << std::hexfloat << sf::from_bits(a) << " + "
        << sf::from_bits(b) << " ours=" << sf::from_bits(ours)
        << " host=" << sf::from_bits(host);
  }
}

TEST_P(SoftFloatFuzz, MulMatchesHardware) {
  const int strategy = GetParam();
  xd::Rng rng(0x3171 + static_cast<xd::u64>(strategy) * 77);
  for (int i = 0; i < 20000; ++i) {
    const u64 a = draw(rng, strategy);
    const u64 b = draw(rng, (strategy + 2 + i) % 5);
    const u64 ours = sf::mul(a, b);
    const u64 host = native_mul(a, b);
    ASSERT_TRUE(sf::same_value(ours, host))
        << "iteration " << i << ": " << std::hexfloat << sf::from_bits(a) << " * "
        << sf::from_bits(b) << " ours=" << sf::from_bits(ours)
        << " host=" << sf::from_bits(host);
  }
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, SoftFloatFuzz, ::testing::Range(0, 5));

TEST(SoftFloatSub, MatchesHardware) {
  xd::Rng rng(0x5ab);
  for (int i = 0; i < 20000; ++i) {
    const u64 a = draw(rng, i % 5);
    const u64 b = draw(rng, (i + 3) % 5);
    volatile double x = sf::from_bits(a);
    volatile double y = sf::from_bits(b);
    volatile double z = x - y;
    ASSERT_TRUE(sf::same_value(sf::sub(a, b), sf::to_bits(z)))
        << std::hexfloat << sf::from_bits(a) << " - " << sf::from_bits(b);
  }
}

// ---------------------------------------------------------------------------
// Exhaustive cross product over the format's boundary values: every pair of
// ~40 hand-picked extremes through add and mul, compared bit-for-bit with
// the host FPU. Catches edge interactions that random fuzzing can miss.

TEST(SoftFloatBoundary, AllPairsOfExtremes) {
  std::vector<u64> specials = {
      sf::kPosZero, sf::kNegZero, sf::kPosInf, sf::kNegInf, sf::kDefaultNaN,
      sf::to_bits(std::numeric_limits<double>::quiet_NaN()),
      1,                                // min subnormal
      sf::kFracMask,                    // max subnormal
      sf::kHiddenBit,                   // min normal
      sf::kHiddenBit | 1,               // min normal + 1 ulp
      sf::to_bits(std::numeric_limits<double>::max()),
      sf::to_bits(std::numeric_limits<double>::max()) - 1,
      sf::to_bits(1.0), sf::to_bits(-1.0),
      sf::to_bits(2.0), sf::to_bits(0.5),
      sf::to_bits(1.0) + 1, sf::to_bits(1.0) - 1,  // 1 +- 1 ulp
      sf::to_bits(0x1.0p-53), sf::to_bits(0x1.0p-52), sf::to_bits(0x1.0p52),
      sf::to_bits(0x1.0p53), sf::to_bits(0x1.fffffffffffffp52),
      sf::to_bits(3.0), sf::to_bits(-3.0), sf::to_bits(1.5),
      sf::to_bits(2.0) | sf::kSignMask,
      sf::to_bits(1e308), sf::to_bits(-1e308), sf::to_bits(1e-308),
      sf::to_bits(5e-324), sf::to_bits(1.5e-323),
      sf::to_bits(0x1.0p511), sf::to_bits(0x1.0p512),
      sf::to_bits(0x1.0p-511), sf::to_bits(0x1.0p-512),
      sf::to_bits(M_PI), sf::to_bits(-M_E),
      sf::to_bits(0.1), sf::to_bits(0.2),
  };
  for (const u64 a : specials) {
    for (const u64 b : specials) {
      ASSERT_TRUE(sf::same_value(sf::add(a, b), native_add(a, b)))
          << std::hexfloat << sf::from_bits(a) << " + " << sf::from_bits(b);
      ASSERT_TRUE(sf::same_value(sf::mul(a, b), native_mul(a, b)))
          << std::hexfloat << sf::from_bits(a) << " * " << sf::from_bits(b);
      // add is commutative in IEEE-754 (up to NaN payloads, covered by
      // same_value); verify our implementation agrees with itself too.
      ASSERT_TRUE(sf::same_value(sf::add(a, b), sf::add(b, a)));
      ASSERT_TRUE(sf::same_value(sf::mul(a, b), sf::mul(b, a)));
    }
  }
}

TEST(SoftFloatBoundary, AdditiveIdentityAndNegation) {
  xd::Rng rng(0xb0dee5);
  for (int i = 0; i < 5000; ++i) {
    const u64 a = rng.raw_bits();
    if (sf::is_nan(a)) continue;
    // a + 0 == a for any non-NaN a except -0 + 0 == +0.
    if (!sf::is_zero(a)) {
      EXPECT_EQ(sf::add(a, sf::kPosZero), a);
    }
    // a - a == +0 for finite a.
    if (sf::is_finite(a)) {
      EXPECT_EQ(sf::sub(a, a), sf::kPosZero);
    }
    // a * 1 == a (exact).
    EXPECT_EQ(sf::mul(a, sf::to_bits(1.0)), a);
    // a * -1 flips the sign bit exactly.
    EXPECT_EQ(sf::mul(a, sf::to_bits(-1.0)), sf::neg(a));
  }
}
