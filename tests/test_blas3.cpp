// Level 3 BLAS (GEMM) tests: the cycle-accurate PE array against the
// reference, the n^3/k latency model, hazard/bandwidth behaviour, I/O
// complexity, and the hierarchical engine's consistency with the array.
#include <gtest/gtest.h>

#include <cmath>

#include "blas3/mm_array.hpp"
#include "blas3/mm_hier.hpp"
#include "common/random.hpp"
#include "host/reference.hpp"
#include "model/perf_model.hpp"

using namespace xd;
using blas3::MmArrayConfig;
using blas3::MmArrayEngine;
using blas3::MmHierConfig;
using blas3::MmHierEngine;

namespace {

void expect_close(const std::vector<double>& got, const std::vector<double>& want,
                  double scale) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    const double tol = std::max(1e-12, std::fabs(want[i]) * 1e-13 * scale);
    ASSERT_NEAR(got[i], want[i], tol) << "element " << i;
  }
}

MmArrayConfig small_cfg(unsigned k, unsigned m) {
  MmArrayConfig cfg;
  cfg.k = k;
  cfg.m = m;
  // Small m stresses the hazard margin; use a shallow adder to keep
  // m^2/k >= stages legal in the small sweeps.
  cfg.adder_stages = 4;
  cfg.multiplier_stages = 3;
  cfg.mem_words_per_cycle = 8.0;
  return cfg;
}

}  // namespace

struct MmCase {
  unsigned k, m;
  std::size_t n;
};

class ArrayCases : public ::testing::TestWithParam<MmCase> {};

TEST_P(ArrayCases, MatchesReference) {
  const auto [k, m, n] = GetParam();
  Rng rng(k * 1000 + m * 10 + n);
  const auto a = rng.matrix(n, n);
  const auto b = rng.matrix(n, n);
  MmArrayEngine engine(small_cfg(k, m));
  const auto out = engine.run(a, b, n);
  expect_close(out.c, host::ref_gemm(a, b, n), static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ArrayCases,
    ::testing::Values(MmCase{1, 4, 8}, MmCase{2, 4, 8}, MmCase{4, 4, 16},
                      MmCase{2, 8, 16}, MmCase{4, 8, 24}, MmCase{8, 8, 32},
                      MmCase{4, 16, 32}, MmCase{8, 16, 48}));

TEST(MmArray, PaperConfigMatchesReference) {
  // The Table 4 configuration (k = 8, m = 8, full 14/11-stage units) at a
  // test-sized n.
  Rng rng(77);
  const std::size_t n = 32;
  const auto a = rng.matrix(n, n);
  const auto b = rng.matrix(n, n);
  MmArrayConfig cfg;  // defaults: k=8, m=8, 14-stage adder
  MmArrayEngine engine(cfg);
  const auto out = engine.run(a, b, n);
  expect_close(out.c, host::ref_gemm(a, b, n), static_cast<double>(n));
}

TEST(MmArray, EffectiveLatencyIsNCubedOverK) {
  Rng rng(78);
  for (const auto& [k, m, n] :
       {MmCase{2, 4, 16}, MmCase{4, 8, 32}, MmCase{8, 8, 32}}) {
    const auto a = rng.matrix(n, n);
    const auto b = rng.matrix(n, n);
    MmArrayEngine engine(small_cfg(k, m));
    const auto out = engine.run(a, b, n);
    const double model = static_cast<double>(engine.model_cycles(n));
    const double measured = static_cast<double>(out.report.cycles);
    // Within a few percent: the difference is array skew + pipeline drain.
    EXPECT_GT(measured, model * 0.999);
    EXPECT_LT(measured, model * 1.05 + 200.0)
        << "k=" << k << " m=" << m << " n=" << n;
    EXPECT_EQ(out.report.stall_cycles, 0u);
  }
}

TEST(MmArray, HazardConditionEnforced) {
  // m^2/k < adder depth: the C' slot would be re-read mid-pipeline.
  MmArrayConfig cfg;
  cfg.k = 8;
  cfg.m = 8;
  cfg.adder_stages = 9;  // m^2/k = 8 < 9
  EXPECT_THROW(MmArrayEngine{cfg}, ConfigError);
}

TEST(MmArray, BandwidthStarvationStallsButStaysCorrect) {
  Rng rng(79);
  const std::size_t n = 16;
  const auto a = rng.matrix(n, n);
  const auto b = rng.matrix(n, n);
  auto cfg = small_cfg(4, 4);  // needs 3k/m = 3 words/cycle
  cfg.mem_words_per_cycle = 1.0;
  MmArrayEngine engine(cfg);
  const auto out = engine.run(a, b, n);
  expect_close(out.c, host::ref_gemm(a, b, n), static_cast<double>(n));
  EXPECT_GT(out.report.stall_cycles, 0u);
  EXPECT_GT(out.report.cycles, engine.model_cycles(n) * 2);
}

TEST(MmArray, RequiredBandwidthFormula) {
  MmArrayEngine e(small_cfg(4, 16));
  EXPECT_DOUBLE_EQ(e.required_words_per_cycle(), 3.0 * 4 / 16);
  EXPECT_EQ(e.storage_words(), 2ull * 16 * 16);
}

TEST(MmArray, IoComplexityMatchesTheta_N3_over_m) {
  Rng rng(80);
  const std::size_t n = 32;
  const auto a = rng.matrix(n, n);
  const auto b = rng.matrix(n, n);
  for (unsigned m : {4u, 8u, 16u}) {
    MmArrayEngine engine(small_cfg(4, m));
    const auto out = engine.run(a, b, n);
    const double expected = model::mm_io_words(n, m);
    EXPECT_NEAR(out.report.sram_words, expected, expected * 0.01)
        << "m=" << m;
  }
}

TEST(MmArray, InvalidConfigsRejected) {
  MmArrayConfig cfg;
  cfg.k = 3;
  cfg.m = 8;  // m % k != 0
  EXPECT_THROW(MmArrayEngine{cfg}, ConfigError);
  cfg = MmArrayConfig{};
  MmArrayEngine ok(cfg);
  Rng rng(1);
  EXPECT_THROW(ok.run(rng.matrix(12, 12), rng.matrix(12, 12), 12),
               ConfigError);  // n not a multiple of m
}

// ---------------------------------------------------------------------------
// Hierarchical engine.

TEST(MmHier, NumericsBitIdenticalToArray) {
  // The hierarchical engine promises the exact accumulation order of the PE
  // array; verify bit-for-bit at l = 1.
  Rng rng(90);
  const std::size_t n = 16;
  const auto a = rng.matrix(n, n);
  const auto b = rng.matrix(n, n);

  MmArrayEngine array(small_cfg(4, 4));
  const auto ca = array.run(a, b, n);

  MmHierConfig hc;
  hc.l = 1;
  hc.k = 4;
  hc.m = 4;
  hc.b = 8;
  hc.adder_stages = 4;
  MmHierEngine hier(hc);
  const auto ch = hier.run(a, b, n);

  ASSERT_EQ(ca.c.size(), ch.c.size());
  for (std::size_t i = 0; i < ca.c.size(); ++i) {
    EXPECT_EQ(ca.c[i], ch.c[i]) << "element " << i;
  }
}

TEST(MmHier, CycleModelConsistentWithArrayAtL1) {
  Rng rng(91);
  const std::size_t n = 32;
  const auto a = rng.matrix(n, n);
  const auto b = rng.matrix(n, n);

  MmArrayEngine array(small_cfg(8, 8));
  const auto ca = array.run(a, b, n);

  MmHierConfig hc;
  hc.l = 1;
  hc.k = 8;
  hc.m = 8;
  hc.b = 16;
  hc.adder_stages = 4;
  hc.dram_words_per_cycle = 8.0;
  MmHierEngine hier(hc);
  const auto ch = hier.run(a, b, n);

  const double ratio = static_cast<double>(ca.report.cycles) /
                       static_cast<double>(ch.report.cycles);
  EXPECT_NEAR(ratio, 1.0, 0.05);
}

TEST(MmHier, MoreFpgasCutLatencyLinearly) {
  MmHierConfig base;
  base.k = 8;
  base.m = 8;
  base.b = 128;
  base.dram_words_per_cycle = 8.0;
  base.link_words_per_cycle = 8.0;

  MmHierEngine l1(base);
  base.l = 2;
  MmHierEngine l2(base);
  base.l = 4;  // b = 128 is a multiple of m*l = 32
  MmHierEngine l4(base);

  const std::size_t n = 1024;
  const double c1 = static_cast<double>(l1.project(n).report.cycles);
  const double c2 = static_cast<double>(l2.project(n).report.cycles);
  const double c4 = static_cast<double>(l4.project(n).report.cycles);
  EXPECT_NEAR(c1 / c2, 2.0, 0.01);
  EXPECT_NEAR(c1 / c4, 4.0, 0.01);
}

TEST(MmHier, DramTrafficIsThetaN3OverB) {
  MmHierConfig cfg;
  cfg.k = 8;
  cfg.m = 8;
  cfg.b = 64;
  MmHierEngine engine(cfg);
  const std::size_t n = 512;
  const auto out = engine.project(n);
  const double expected = 2.0 * std::pow(static_cast<double>(n), 3) / 64.0 +
                          static_cast<double>(n) * n;
  EXPECT_NEAR(out.report.dram_words, expected, 1.0);
  EXPECT_DOUBLE_EQ(out.required_dram_words_per_cycle, 3.0 * 8 * 1 / 64.0);
}

TEST(MmHier, StallsWhenDramTooSlow) {
  MmHierConfig cfg;
  cfg.k = 8;
  cfg.m = 8;
  cfg.b = 64;
  cfg.dram_words_per_cycle = 0.05;  // below the 3kl/b = 0.375 requirement
  MmHierEngine engine(cfg);
  const auto out = engine.project(512);
  EXPECT_GT(out.report.stall_cycles, 0u);
  EXPECT_GT(out.report.cycles, out.report.compute_cycles);
}

TEST(MmHier, SmallEndToEndMatchesReference) {
  Rng rng(92);
  const std::size_t n = 24;
  const auto a = rng.matrix(n, n);
  const auto b = rng.matrix(n, n);
  MmHierConfig cfg;
  cfg.l = 3;
  cfg.k = 2;
  cfg.m = 4;
  cfg.b = 12;
  cfg.adder_stages = 4;
  MmHierEngine engine(cfg);
  const auto out = engine.run(a, b, n);
  expect_close(out.c, host::ref_gemm(a, b, n), static_cast<double>(n));
  EXPECT_DOUBLE_EQ(out.sram_panel_words, 2.0 * 12 * 12);
}

TEST(MmHier, InvalidConfigsRejected) {
  MmHierConfig cfg;
  cfg.b = 100;  // not a multiple of m*l = 8
  EXPECT_THROW(MmHierEngine{cfg}, ConfigError);
  cfg = MmHierConfig{};
  cfg.m = 6;  // m % k != 0 (k = 8)
  EXPECT_THROW(MmHierEngine{cfg}, ConfigError);
}
