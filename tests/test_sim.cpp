// Simulation-kernel semantics: registered visibility, FIFO bounds, engine
// stepping and cycle budgets.
#include <gtest/gtest.h>

#include "sim/component.hpp"
#include "sim/engine.hpp"

using namespace xd;
using sim::Component;
using sim::Cycle;
using sim::Engine;
using sim::Fifo;
using sim::Reg;

namespace {

/// Counts its own invocations and optionally stays busy for a while.
class Counter final : public Component {
 public:
  explicit Counter(u64 busy_until = 0)
      : Component("counter"), busy_until_(busy_until) {}
  void cycle(Cycle now) override {
    last_now_ = now;
    ++calls_;
  }
  bool busy() const override { return calls_ < busy_until_; }

  u64 calls() const { return calls_; }
  Cycle last_now() const { return last_now_; }

 private:
  u64 busy_until_;
  u64 calls_ = 0;
  Cycle last_now_ = 0;
};

}  // namespace

TEST(Reg, WriteVisibleAfterCommitOnly) {
  Reg<int> r(5);
  EXPECT_EQ(r.read(), 5);
  r.write(9);
  EXPECT_EQ(r.read(), 5);  // flip-flop: not yet visible
  r.commit();
  EXPECT_EQ(r.read(), 9);
  r.commit();  // no write this cycle: holds value
  EXPECT_EQ(r.read(), 9);
}

TEST(Fifo, RegisteredVisibility) {
  Fifo<int> f(4, "t");
  f.push(1);
  EXPECT_FALSE(f.can_pop());  // pushed this cycle, visible next
  EXPECT_EQ(f.occupancy(), 1u);
  f.commit();
  ASSERT_TRUE(f.can_pop());
  EXPECT_EQ(f.front(), 1);
  EXPECT_EQ(f.pop(), 1);
  EXPECT_FALSE(f.can_pop());
}

TEST(Fifo, CapacityEnforced) {
  Fifo<int> f(2, "t");
  f.push(1);
  f.push(2);
  EXPECT_FALSE(f.can_push());
  EXPECT_THROW(f.push(3), SimError);
  f.commit();
  EXPECT_EQ(f.pop(), 1);
  EXPECT_TRUE(f.can_push());
}

TEST(Fifo, UnderflowThrows) {
  Fifo<int> f(2, "t");
  EXPECT_THROW(f.pop(), SimError);
  EXPECT_THROW(f.front(), SimError);
}

TEST(Fifo, PeakOccupancyTracked) {
  Fifo<int> f(0, "t");  // unbounded
  for (int i = 0; i < 7; ++i) f.push(i);
  f.commit();
  for (int i = 0; i < 3; ++i) f.pop();
  f.commit();
  EXPECT_EQ(f.peak_occupancy(), 7u);
}

TEST(Engine, StepsComponentsInOrderWithSharedNow) {
  Engine e;
  Counter a, b;
  e.add(a);
  e.add(b);
  e.run(5);
  EXPECT_EQ(a.calls(), 5u);
  EXPECT_EQ(b.calls(), 5u);
  EXPECT_EQ(a.last_now(), 4u);
  EXPECT_EQ(e.now(), 5u);
}

TEST(Engine, RunUntilIdleStopsWhenAllIdle) {
  Engine e;
  Counter a(3), b(7);
  e.add(a);
  e.add(b);
  const Cycle used = e.run_until_idle(100);
  EXPECT_EQ(used, 7u);
}

TEST(Engine, BudgetExceededThrows) {
  Engine e;
  Counter a(1000);
  e.add(a);
  EXPECT_THROW(e.run_until_idle(10), SimError);
}

TEST(Engine, CommitHooksRunAfterComponents) {
  Engine e;
  Counter a;
  Reg<u64> r(0);
  e.add(a);
  e.add_commit([&] { r.commit(); });
  // A component writing the reg each cycle sees last cycle's value.
  // (Emulated here by interleaving manually.)
  r.write(1);
  e.step();
  EXPECT_EQ(r.read(), 1u);
}

// ---------------------------------------------------------------------------
// Trace infrastructure.

#include "fp/softfloat.hpp"
#include "reduce/reduction_circuit.hpp"
#include "sim/trace.hpp"

TEST(Trace, RingBufferCapsRetention) {
  sim::Trace t(4);
  for (u64 c = 0; c < 10; ++c) t.emit(c, "src", "e");
  EXPECT_EQ(t.events().size(), 4u);
  EXPECT_EQ(t.total_emitted(), 10u);
  EXPECT_EQ(t.events().front().cycle, 6u);
}

TEST(Trace, FilterAndRender) {
  sim::Trace t;
  t.emit(1, "alpha", "one");
  t.emit(2, "beta", "two");
  t.emit(3, "alphabet", "three");
  EXPECT_EQ(t.filter("alpha").size(), 2u);
  EXPECT_EQ(t.count_containing("two"), 1u);
  const auto s = t.render();
  EXPECT_NE(s.find("2  beta  two"), std::string::npos);
  t.clear();
  EXPECT_TRUE(t.events().empty());
}

TEST(Trace, ReductionCircuitEmitsLifecycleEvents) {
  sim::Trace trace;
  reduce::ReductionCircuit c;
  c.attach_trace(&trace);
  // Stream enough uniform sets to force at least one swap and emissions.
  const std::size_t sets = 30, s = 20;
  std::size_t done = 0, si = 0, ei = 0;
  u64 guard = 0;
  while (done < sets) {
    std::optional<reduce::Input> in;
    if (si < sets) in = reduce::Input{fp::to_bits(1.0), ei + 1 == s};
    const bool consumed = c.cycle(in);
    if (in && consumed && ++ei == s) {
      ei = 0;
      ++si;
    }
    if (c.take_result()) ++done;
    ASSERT_LT(++guard, 100'000u);
  }
  EXPECT_GE(trace.count_containing("swap"), 2u);
  EXPECT_EQ(trace.count_containing("emit"), sets);
  EXPECT_EQ(trace.count_containing("stall"), 0u);
}
