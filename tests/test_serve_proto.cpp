// Serve-protocol codec tests (src/serve/proto.hpp, common/socket.hpp's
// LineFramer): framing is byte-chunk-independent and bounded, parsing never
// throws (malformed lines become error records, identically for the CLI and
// the server), engine-knob overrides are detected exactly, response records
// are valid JSON, and the golden corpus replays clean. The deterministic
// fuzz sections (seeded Rng, no wall-clock) are the in-process half of the
// malformed-frame hardening; test_serve.cpp replays the same corpus over a
// live socket.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/random.hpp"
#include "common/socket.hpp"
#include "host/runtime.hpp"
#include "serve/proto.hpp"
#include "telemetry/json.hpp"

using namespace xd;

namespace {

/// Collect every line the framer yields for one feed pattern.
struct Framed {
  std::string text;
  bool truncated;
};

std::vector<Framed> drain(LineFramer& f) {
  std::vector<Framed> out;
  std::string line;
  bool truncated = false;
  while (f.next(line, truncated)) out.push_back({line, truncated});
  return out;
}

serve::Request parse(const std::string& line, std::size_t line_no = 1) {
  serve::Request req;
  serve::parse_record(line, line_no, host::ContextConfig{}, req);
  return req;
}

std::string valid_error;
bool is_valid_json(const std::string& text) {
  return telemetry::json_validate(text, &valid_error);
}

}  // namespace

// ---- LineFramer ------------------------------------------------------------

TEST(LineFramer, ReassemblesAcrossArbitraryChunks) {
  const std::string stream = "dot --n 4\ngemv --n 8\r\n\n# c\ngemm --n 2\n";
  // Feed the same stream in every chunk size from 1 byte up; the framed
  // lines must be identical each time (recv boundaries never matter).
  for (std::size_t chunk = 1; chunk <= stream.size(); ++chunk) {
    LineFramer f(serve::kMaxLineBytes);
    for (std::size_t i = 0; i < stream.size(); i += chunk) {
      f.feed(stream.substr(i, chunk));
    }
    const auto lines = drain(f);
    ASSERT_EQ(lines.size(), 5u) << "chunk=" << chunk;
    EXPECT_EQ(lines[0].text, "dot --n 4");
    EXPECT_EQ(lines[1].text, "gemv --n 8");  // CR stripped
    EXPECT_EQ(lines[2].text, "");
    EXPECT_EQ(lines[3].text, "# c");
    EXPECT_EQ(lines[4].text, "gemm --n 2");
    for (const auto& l : lines) EXPECT_FALSE(l.truncated);
    EXPECT_EQ(f.pending(), 0u);
  }
}

TEST(LineFramer, BoundsLineLengthAndFlagsTruncation) {
  LineFramer f(8);
  f.feed("0123456789abcdef\nshort\n");
  const auto lines = drain(f);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].text, "01234567");  // capped prefix, tail discarded
  EXPECT_TRUE(lines[0].truncated);
  EXPECT_EQ(lines[1].text, "short");
  EXPECT_FALSE(lines[1].truncated);
}

TEST(LineFramer, BoundedMemoryOnEndlessUnterminatedLine) {
  LineFramer f(16);
  for (int i = 0; i < 10000; ++i) f.feed("xxxxxxxxxx");
  EXPECT_EQ(f.pending(), 16u);  // never grows past the cap
  EXPECT_TRUE(f.pending_truncated());
  f.feed("\n");
  const auto lines = drain(f);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_TRUE(lines[0].truncated);
}

TEST(LineFramer, FuzzSplitFeedsMatchWholeFeed) {
  // Deterministic fuzz: random printable streams with interleaved newlines,
  // fed whole vs in random-sized chunks, must frame identically.
  Rng rng(2005);
  for (int round = 0; round < 50; ++round) {
    std::string stream;
    const int len = 1 + static_cast<int>(rng.uniform(0, 1) * 400);
    for (int i = 0; i < len; ++i) {
      const double r = rng.uniform(0, 1);
      stream += r < 0.12 ? '\n' : static_cast<char>(' ' + static_cast<int>(r * 94));
    }
    LineFramer whole(32);
    whole.feed(stream);
    LineFramer split(32);
    std::size_t i = 0;
    while (i < stream.size()) {
      const std::size_t chunk =
          1 + static_cast<std::size_t>(rng.uniform(0, 1) * 7);
      split.feed(stream.substr(i, chunk));
      i += chunk;
    }
    std::string a, b;
    bool ta = false, tb = false;
    for (;;) {
      const bool ha = whole.next(a, ta);
      const bool hb = split.next(b, tb);
      ASSERT_EQ(ha, hb);
      if (!ha) break;
      EXPECT_EQ(a, b);
      EXPECT_EQ(ta, tb);
    }
    EXPECT_EQ(whole.pending(), split.pending());
  }
}

// ---- bounded reads / record classification ---------------------------------

TEST(ReadBoundedLine, CapsAndConsumesOversizedLines) {
  std::istringstream in(std::string(100, 'a') +
                        "\ndot --n 4\ntail-no-newline");
  std::string line;
  bool truncated = false;
  ASSERT_TRUE(serve::read_bounded_line(in, line, truncated, 10));
  EXPECT_EQ(line, std::string(10, 'a'));
  EXPECT_TRUE(truncated);  // overflow consumed, not buffered
  ASSERT_TRUE(serve::read_bounded_line(in, line, truncated, 10));
  EXPECT_EQ(line, "dot --n 4");
  EXPECT_FALSE(truncated);
  ASSERT_TRUE(serve::read_bounded_line(in, line, truncated, 100));
  EXPECT_EQ(line, "tail-no-newline");  // final unterminated line still read
  EXPECT_FALSE(serve::read_bounded_line(in, line, truncated, 100));
}

TEST(IsRecordLine, SkipsBlanksAndComments) {
  EXPECT_FALSE(serve::is_record_line(""));
  EXPECT_FALSE(serve::is_record_line("   \t "));
  EXPECT_FALSE(serve::is_record_line("# comment"));
  EXPECT_FALSE(serve::is_record_line("   # indented comment"));
  EXPECT_TRUE(serve::is_record_line("dot --n 4"));
  EXPECT_TRUE(serve::is_record_line("  garbage"));
}

// ---- parse_record ----------------------------------------------------------

TEST(ParseRecord, DotDefaultsAndSeededOperands) {
  auto req = parse("dot");
  EXPECT_TRUE(req.parse_error.empty()) << req.parse_error;
  EXPECT_EQ(req.command, "dot");
  EXPECT_EQ(req.n, 4096u);
  EXPECT_EQ(req.seed, 2005u);
  EXPECT_FALSE(req.cfg_override);
  ASSERT_EQ(req.pool.size(), 2u);
  // Same line, same seed => bit-identical operands (the protocol ships
  // shapes, both endpoints must materialize the same payloads).
  auto req2 = parse("dot");
  EXPECT_EQ(serve::values_fnv(req.pool.front()),
            serve::values_fnv(req2.pool.front()));
}

TEST(ParseRecord, MalformedLinesBecomeErrorsNotThrows) {
  for (const char* line :
       {"frobnicate", "dot --n", "dot --n abc", "dot --n -4",
        "dot --n 99999999999999999999", "dot --bw-gbs fast", "dot --what 3",
        "gemv --arch diag", "--n 4", "dot stray", "graph",
        "graph a=dot:n=0", "graph a=dot:n=4,b=@missing"}) {
    serve::Request req;
    EXPECT_NO_THROW(serve::parse_record(line, 1, host::ContextConfig{}, req))
        << line;
    EXPECT_FALSE(req.parse_error.empty()) << line;
    EXPECT_TRUE(is_valid_json(serve::error_record(req, req.parse_error)))
        << line << ": " << valid_error;
  }
}

TEST(ParseRecord, PerProcessFlagsRejectedPerLine) {
  for (const char* line : {"dot --json", "dot --metrics-out m.json",
                           "gemv --trace-out t.json", "graph a=dot:n=4 --json"}) {
    const auto req = parse(line);
    EXPECT_NE(req.parse_error.find("per-process"), std::string::npos) << line;
  }
}

TEST(ParseRecord, EngineOverridesDetectedExactly) {
  // Explicit values that differ from the shared config are overrides...
  EXPECT_TRUE(parse("dot --k 4").cfg_override);
  EXPECT_TRUE(parse("dot --bw-gbs 2.5").cfg_override);
  EXPECT_TRUE(parse("gemm --n 32 --b 17").cfg_override);
  EXPECT_TRUE(parse("gemm --n 32 --l 2").cfg_override);
  EXPECT_TRUE(parse("spmxv --n 64 --k 8").cfg_override);
  // ...explicit values equal to the derived default are not.
  EXPECT_FALSE(parse("dot --k 2").cfg_override);
  EXPECT_FALSE(parse("dot --bw-gbs 5.5").cfg_override);
  EXPECT_FALSE(parse("gemm --n 32 --b 32").cfg_override);  // min(512, n)
  EXPECT_FALSE(parse("gemv --n 64 --k 4").cfg_override);
  // The flag that moved is named, so the server's error record says why.
  EXPECT_NE(parse("dot --k 4").cfg_override_why.find("--k"),
            std::string::npos);
}

TEST(ParseRecord, GraphEdgesAndPools) {
  const auto req = parse("graph ap=gemv:n=96 pap=dot:n=96,b=@ap --from-dram");
  ASSERT_TRUE(req.parse_error.empty()) << req.parse_error;
  EXPECT_TRUE(req.is_graph);
  ASSERT_EQ(req.graph.nodes.size(), 2u);
  ASSERT_EQ(req.graph.edges.size(), 1u);
  EXPECT_EQ(req.graph.edges[0].from, 0u);
  EXPECT_EQ(req.graph.edges[0].to, 1u);
  EXPECT_EQ(req.graph.nodes[1].desc.b, nullptr);  // patched by the runtime
}

TEST(ParseRecord, ProblemSizeLimitsRejectBeforeMaterializing) {
  // A few protocol bytes must not be able to request terabytes of seeded
  // operands: `gemv --n 1000000` asks for an n*n matrix (~8 TB). Every
  // oversized shape is a parse error with NOTHING materialized.
  for (const char* line :
       {"gemv --n 1000000", "gemm --n 99999999", "dot --n 123456789",
        "spmxv --n 1024 --nnz-per-row 99999999", "graph a=gemv:n=1000000",
        "graph a=spmxv:n=256,nnz=123456789"}) {
    const auto req = parse(line);
    EXPECT_FALSE(req.parse_error.empty()) << line;
    EXPECT_NE(req.parse_error.find("limit"), std::string::npos) << line;
    EXPECT_TRUE(req.pool.empty()) << line;
    EXPECT_TRUE(req.sparse_pool.empty()) << line;
    EXPECT_TRUE(is_valid_json(serve::error_record(req, req.parse_error)))
        << line << ": " << valid_error;
  }
  // Within max_n but past the per-line operand budget: gemm materializes
  // 2*n*n doubles (1 GiB at n=8192), caught by the aggregate bound.
  const auto big = parse("gemm --n 8192");
  EXPECT_NE(big.parse_error.find("operand limit"), std::string::npos);
  EXPECT_TRUE(big.pool.empty());
}

TEST(ParseRecord, CustomLimitsBoundDimsElemsAndGraphNodes) {
  serve::ParseLimits tight;
  tight.max_n = 64;
  tight.max_elems = 100;
  tight.max_graph_nodes = 2;
  const host::ContextConfig base;
  auto parse_tight = [&](const std::string& line) {
    serve::Request req;
    serve::parse_record(line, 1, base, req, tight);
    return req;
  };
  // Dimension bound (inclusive), then the elems budget (dot wants 2n).
  EXPECT_NE(parse_tight("dot --n 65").parse_error.find("problem-size limit 64"),
            std::string::npos);
  EXPECT_NE(parse_tight("dot --n 64").parse_error.find("operand limit 100"),
            std::string::npos);
  EXPECT_TRUE(parse_tight("dot --n 32").parse_error.empty());
  // Node-count bound fires before any node parses...
  EXPECT_NE(parse_tight("graph a=dot:n=8 b=dot:n=8 c=dot:n=8")
                .parse_error.find("per-line limit 2"),
            std::string::npos);
  // ...and the elems budget accumulates ACROSS nodes (2*32 + 2*32 > 100).
  EXPECT_NE(parse_tight("graph a=dot:n=32 b=dot:n=32")
                .parse_error.find("operand limit 100"),
            std::string::npos);
  EXPECT_TRUE(parse_tight("graph a=dot:n=16 b=dot:n=16").parse_error.empty());
}

TEST(ParseRecord, FuzzGarbageNeverThrows) {
  // Seeded garbage lines assembled from protocol-looking fragments: the
  // codec must classify every one (ok or parse_error) without throwing.
  static const char* frag[] = {"dot",   "gemv",  "graph", "--n",   "--k",
                               "4",     "-1",    "@a",    "a=dot", ":n=",
                               "#",     "--",    "=",     "…",     "\t",
                               "stats", "999999999999999999999", "x=gemv:n=8"};
  Rng rng(42);
  for (int i = 0; i < 500; ++i) {
    std::string line;
    const int toks = 1 + static_cast<int>(rng.uniform(0, 1) * 6);
    for (int t = 0; t < toks; ++t) {
      line += frag[static_cast<std::size_t>(rng.uniform(0, 1) * 17.999)];
      line += ' ';
    }
    serve::Request req;
    ASSERT_NO_THROW(serve::parse_record(line, 1, host::ContextConfig{}, req))
        << line;
    if (!req.parse_error.empty()) {
      EXPECT_TRUE(is_valid_json(serve::error_record(req, req.parse_error)))
          << line << ": " << valid_error;
    }
  }
}

// ---- digests and response records ------------------------------------------

TEST(ValuesFnv, GoldenAndChaining) {
  // FNV-1a 64 of one 1.0 double (bits 0x3ff0000000000000, little-endian
  // byte order) — pinned so both endpoints and external clients agree.
  EXPECT_EQ(serve::values_fnv({1.0}), 0xaab1693229ba1db8ull);
  EXPECT_EQ(serve::values_fnv({}), serve::kFnvBasis);
  // Chaining from the basis equals hashing the concatenation.
  const std::vector<double> a{1.5, -2.25}, b{0.0, 1e300};
  std::vector<double> ab = a;
  ab.insert(ab.end(), b.begin(), b.end());
  EXPECT_EQ(serve::values_fnv(b, serve::values_fnv(a)), serve::values_fnv(ab));
  // Bit-sensitivity: +0.0 and -0.0 compare equal but hash differently.
  EXPECT_NE(serve::values_fnv({0.0}), serve::values_fnv({-0.0}));
}

TEST(Records, OutcomeErrorAndOverloadShapes) {
  auto req = parse("dot --n 64", 3);
  ASSERT_TRUE(req.parse_error.empty());
  host::Runtime rt({});
  const auto out = rt.run(req.desc);
  const std::string rec = serve::outcome_record(req, out);
  EXPECT_TRUE(is_valid_json(rec)) << valid_error;
  EXPECT_NE(rec.find("\"op\":\"dot\""), std::string::npos);
  EXPECT_NE(rec.find("\"line\":3"), std::string::npos);
  EXPECT_NE(rec.find("\"value\":"), std::string::npos);
  EXPECT_NE(rec.find("\"values_fnv\":\""), std::string::npos);
  EXPECT_NE(rec.find("\"report\":{"), std::string::npos);
  EXPECT_EQ(rec.find("\"error\""), std::string::npos);

  const std::string err = serve::error_record(req, "boom");
  EXPECT_TRUE(is_valid_json(err)) << valid_error;
  EXPECT_NE(err.find("\"error\":\"boom\""), std::string::npos);

  EXPECT_EQ(serve::overload_record(7), "{\"line\":7,\"error\":\"overloaded\"}");
}

TEST(Records, GraphRecordDigestChainsNodes) {
  auto req = parse("graph g=gemv:n=64 d=dot:n=64,a=@g");
  ASSERT_TRUE(req.parse_error.empty()) << req.parse_error;
  host::Runtime rt({});
  const auto go = rt.run_graph(req.graph);
  const std::string rec = serve::graph_record(req, go);
  EXPECT_TRUE(is_valid_json(rec)) << valid_error;
  u64 all = serve::kFnvBasis;
  for (const auto& node : go.nodes) all = serve::values_fnv(node.values, all);
  char buf[32];
  std::snprintf(buf, sizeof buf, "\"values_fnv\":\"%016llx\"",
                static_cast<unsigned long long>(all));
  // The record-level digest (last values_fnv in the record) is the chain.
  EXPECT_NE(rec.rfind(buf), std::string::npos);
}

// ---- golden corpus ---------------------------------------------------------

TEST(CorpusReplay, EveryLineParsesOrErrorsCleanly) {
  std::ifstream in(XD_SERVE_CORPUS);
  ASSERT_TRUE(in.is_open()) << XD_SERVE_CORPUS;
  std::string line;
  bool truncated = false;
  std::size_t line_no = 0, records = 0, errors = 0;
  while (serve::read_bounded_line(in, line, truncated)) {
    ++line_no;
    ASSERT_FALSE(truncated);
    if (!serve::is_record_line(line)) continue;
    ++records;
    serve::Request req;
    ASSERT_NO_THROW(
        serve::parse_record(line, line_no, host::ContextConfig{}, req))
        << line;
    if (!req.parse_error.empty()) {
      ++errors;
      EXPECT_TRUE(is_valid_json(serve::error_record(req, req.parse_error)))
          << line << ": " << valid_error;
    } else {
      EXPECT_FALSE(req.command.empty());
      if (req.is_graph) {
        EXPECT_FALSE(req.graph.nodes.empty()) << line;
      } else {
        EXPECT_FALSE(req.pool.empty() && req.sparse_pool.empty()) << line;
      }
    }
  }
  // The corpus must keep exercising both halves of the contract.
  EXPECT_GE(records, 30u);
  EXPECT_GE(errors, 15u);
}
