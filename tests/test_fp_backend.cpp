// Backend-selection tests: the conformance gate does its job (native passes
// on an IEEE-754 RNE host and a deliberately broken backend is rejected),
// the XDBLAS_FP_BACKEND modes resolve as documented, the batched mul_n /
// fold_n entry points agree bitwise with softfloat on adversarial operands,
// and the regression corpus replays clean under BOTH backends.
#include <gtest/gtest.h>

#include <vector>

#include "common/random.hpp"
#include "common/ring_fifo.hpp"
#include "fp/backend.hpp"
#include "fp/fpu.hpp"
#include "fp/softfloat.hpp"
#include "host/plan.hpp"
#include "testing/fuzz.hpp"

using namespace xd;
using fp::Backend;
using fp::BackendKind;

#ifndef XD_CORPUS_FILE
#define XD_CORPUS_FILE "tests/corpus/regressions.fz"
#endif

namespace {

/// True on every host this project supports in CI (x86-64 SSE2 / AArch64).
/// If this ever fails, the suite should say so loudly rather than silently
/// skip the native coverage.
bool native_ok() {
  static const bool ok = fp::run_conformance(fp::native_backend()).passed;
  return ok;
}

}  // namespace

TEST(Conformance, NativePassesOnThisHost) {
  const auto rep = fp::run_conformance(fp::native_backend());
  EXPECT_TRUE(rep.passed) << rep.first_failure;
  // Hard-case vector plus the randomized cross-check actually ran.
  EXPECT_GT(rep.cases, 4096u);
  EXPECT_TRUE(rep.first_failure.empty());
}

TEST(Conformance, SoftBackendTriviallyConforms) {
  const auto rep = fp::run_conformance(fp::soft_backend(), 256);
  EXPECT_TRUE(rep.passed) << rep.first_failure;
}

namespace {

// A backend that is subtly wrong: correct except that it flushes subnormal
// results to zero (the classic FTZ failure mode the gate exists to catch).
u64 ftz_add(u64 a, u64 b) {
  const u64 r = fp::add(a, b);
  return fp::is_subnormal(r) ? (r & fp::kSignMask) : r;
}

void ftz_mul_n(const u64* a, const u64* b, u64* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = fp::mul(a[i], b[i]);
}

u64 ftz_fold_n(u64* scratch, std::size_t k) {
  for (std::size_t width = k; width > 1; width /= 2) {
    for (std::size_t i = 0; i < width / 2; ++i) {
      scratch[i] = ftz_add(scratch[2 * i], scratch[2 * i + 1]);
    }
  }
  return scratch[0];
}

// A backend whose fold is right at every level but wrong in its wiring:
// it folds first-half-against-second-half instead of adjacent pairs. Every
// individual add is IEEE-correct, so only the fold_n cross-check can see it.
u64 strided_fold_n(u64* scratch, std::size_t k) {
  for (std::size_t width = k; width > 1; width /= 2) {
    for (std::size_t i = 0; i < width / 2; ++i) {
      scratch[i] = fp::add(scratch[i], scratch[i + width / 2]);
    }
  }
  return scratch[0];
}

}  // namespace

TEST(Conformance, FlushToZeroBackendIsRejected) {
  Backend bad = fp::soft_backend();
  bad.add = &ftz_add;
  bad.mul_n = &ftz_mul_n;
  bad.fold_n = &ftz_fold_n;
  const auto rep = fp::run_conformance(bad);
  EXPECT_FALSE(rep.passed);
  EXPECT_FALSE(rep.first_failure.empty());
}

TEST(Conformance, MiswiredFoldIsRejected) {
  Backend bad = fp::soft_backend();
  bad.fold_n = &strided_fold_n;
  const auto rep = fp::run_conformance(bad);
  EXPECT_FALSE(rep.passed);
  EXPECT_NE(rep.first_failure.find("fold_n"), std::string::npos)
      << rep.first_failure;
}

TEST(Selection, SoftModeForcesSoftfloat) {
  const auto sel = fp::resolve_backend("soft");
  EXPECT_EQ(sel.backend->kind, BackendKind::Soft);
  EXPECT_FALSE(sel.fell_back);
  EXPECT_EQ(sel.conformance.cases, 0u);  // nothing to verify
}

TEST(Selection, AutoAndNativeAreConformanceGated) {
  for (const char* mode : {"auto", "native"}) {
    const auto sel = fp::resolve_backend(mode);
    ASSERT_NE(sel.backend, nullptr);
    if (native_ok()) {
      EXPECT_EQ(sel.backend->kind, BackendKind::Native) << mode;
      EXPECT_FALSE(sel.fell_back) << mode;
    } else {
      EXPECT_EQ(sel.backend->kind, BackendKind::Soft) << mode;
      EXPECT_TRUE(sel.fell_back) << mode;
    }
    EXPECT_GT(sel.conformance.cases, 0u) << mode;
  }
}

TEST(Selection, UnknownModeThrows) {
  EXPECT_THROW(fp::resolve_backend("fast"), ConfigError);
  EXPECT_THROW(fp::resolve_backend(""), ConfigError);
}

TEST(Selection, ScopedBackendSwapsAndRestores) {
  const BackendKind before = fp::active_backend().kind;
  {
    fp::ScopedBackend soft(BackendKind::Soft);
    EXPECT_EQ(fp::active_backend().kind, BackendKind::Soft);
    {
      fp::ScopedBackend native(BackendKind::Native);
      EXPECT_EQ(fp::active_backend().kind, BackendKind::Native);
    }
    EXPECT_EQ(fp::active_backend().kind, BackendKind::Soft);
  }
  EXPECT_EQ(fp::active_backend().kind, before);
}

TEST(PlanKey, DistinguishesBackends) {
  host::OpDesc desc;
  desc.kind = host::OpKind::Dot;
  desc.cols = 8;
  host::PlanKey soft_key, native_key;
  {
    fp::ScopedBackend soft(BackendKind::Soft);
    soft_key = host::PlanKey::from(desc);
  }
  {
    fp::ScopedBackend native(BackendKind::Native);
    native_key = host::PlanKey::from(desc);
  }
  EXPECT_FALSE(soft_key == native_key);
  EXPECT_NE(host::PlanKeyHash{}(soft_key), host::PlanKeyHash{}(native_key));
}

// ---- batched entry points vs softfloat -------------------------------------

namespace {

u64 mix(u64 x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Adversarial operand stream: raw patterns, subnormals, near-overflow
/// magnitudes, NaNs/infs, signed zeros.
u64 adversarial(u64 i) {
  const u64 raw = mix(i);
  switch (i % 6) {
    case 0: return raw;
    case 1: return raw & (fp::kSignMask | fp::kFracMask);           // subnormal
    case 2: return (raw & fp::kSignMask) | fp::kPosInf;             // inf
    case 3: return (raw & (fp::kSignMask | fp::kFracMask)) | fp::kExpMask;  // NaN
    case 4: return (raw & (fp::kSignMask | fp::kFracMask)) |
                   (u64{0x7FD} << fp::kFracBits);                   // huge
    default: return raw & fp::kSignMask;                            // +/- 0
  }
}

}  // namespace

TEST(NativeBatched, MulNMatchesSoftfloatOnAdversarialLanes) {
  const Backend& native = fp::native_backend();
  for (std::size_t n : {1u, 3u, 8u, 17u}) {
    std::vector<u64> a(n), b(n), out(n);
    for (u64 trial = 0; trial < 512; ++trial) {
      for (std::size_t i = 0; i < n; ++i) {
        a[i] = adversarial(trial * 131 + i);
        b[i] = adversarial(mix(trial) + 17 * i);
      }
      native.mul_n(a.data(), b.data(), out.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(out[i], fp::mul(a[i], b[i]))
            << "lane " << i << " of " << n << ", trial " << trial;
      }
    }
  }
}

TEST(NativeBatched, FoldNMatchesSoftfloatOnAdversarialTrees) {
  const Backend& native = fp::native_backend();
  for (std::size_t k : {2u, 4u, 8u, 16u}) {
    std::vector<u64> nat(k), soft(k);
    for (u64 trial = 0; trial < 512; ++trial) {
      for (std::size_t i = 0; i < k; ++i) {
        nat[i] = soft[i] = adversarial(trial * 61 + 7 * i);
      }
      const u64 have = native.fold_n(nat.data(), k);
      for (std::size_t width = k; width > 1; width /= 2) {
        for (std::size_t i = 0; i < width / 2; ++i) {
          soft[i] = fp::add(soft[2 * i], soft[2 * i + 1]);
        }
      }
      EXPECT_EQ(have, soft[0]) << "k=" << k << ", trial " << trial;
    }
  }
}

TEST(NativeBatched, FoldNCatchesOppositeInfinityCollision) {
  // Finite inputs whose partial sums overflow to +inf and -inf and then
  // meet: the fast-path redo must kick in and reproduce softfloat's default
  // NaN, not the host's.
  const u64 big = fp::to_bits(1.7e308);
  const u64 neg_big = fp::to_bits(-1.7e308);
  std::vector<u64> in{big, big, neg_big, neg_big};
  std::vector<u64> ref = in;
  const u64 have = fp::native_backend().fold_n(in.data(), 4);
  const u64 want = fp::add(fp::add(ref[0], ref[1]), fp::add(ref[2], ref[3]));
  EXPECT_EQ(have, want);
}

// ---- engine-level equivalence ----------------------------------------------

TEST(BackendEquivalence, AdderTreeIdenticalUnderBothBackends) {
  if (!native_ok()) GTEST_SKIP() << "host FPU not conformant";
  Rng rng(91);
  const auto vals = rng.vector(64, -1e6, 1e6);
  std::vector<u64> results[2];
  const BackendKind kinds[] = {BackendKind::Soft, BackendKind::Native};
  for (int which = 0; which < 2; ++which) {
    fp::ScopedBackend sb(kinds[which]);
    fp::AdderTree tree(4, 3);
    std::vector<u64> group(4);
    std::size_t next = 0;
    for (u64 cycle = 0; cycle < 64; ++cycle) {
      if (next + 4 <= vals.size()) {
        for (std::size_t i = 0; i < 4; ++i) group[i] = fp::to_bits(vals[next + i]);
        tree.issue(group, cycle);
        next += 4;
      }
      tree.tick();
      if (auto r = tree.take_output()) {
        results[which].push_back(r->bits);
        results[which].push_back(r->tag);
      }
    }
  }
  EXPECT_EQ(results[0], results[1]);
}

TEST(BackendEquivalence, CorpusReplaysCleanUnderBothBackends) {
  for (const BackendKind kind : {BackendKind::Soft, BackendKind::Native}) {
    if (kind == BackendKind::Native && !native_ok()) continue;
    fp::ScopedBackend sb(kind);
    std::vector<std::string> lines;
    const auto sum = xd::testing::replay_corpus(
        XD_CORPUS_FILE, [&](const std::string& s) { lines.push_back(s); });
    EXPECT_GT(sum.cases_run, 0u);
    EXPECT_EQ(sum.failures, 0u)
        << "under " << fp::backend_name(kind) << ": "
        << (lines.empty() ? "" : lines.front());
  }
}

// ---- RingFifo --------------------------------------------------------------

TEST(RingFifo, WrapsAndPreservesFifoOrder) {
  RingFifo<int> q(3);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.capacity(), 3u);
  int next_in = 0, next_out = 0;
  // Push/pop around the ring several times so head wraps repeatedly.
  for (int round = 0; round < 5; ++round) {
    while (!q.full()) q.push(next_in++);
    EXPECT_EQ(q.size(), 3u);
    q.pop();  // leave a gap, then refill, forcing unaligned wraps
    ++next_out;
    q.push(next_in++);
    while (!q.empty()) {
      EXPECT_EQ(q.front(), next_out++);
      q.pop();
    }
  }
  EXPECT_EQ(next_in, next_out);
}
