// Tests for the telemetry layer: metrics registry, phase spans, JSON
// emission/validation, exporters, the circular trace buffer, and the
// end-to-end wiring through host::Context.
#include <gtest/gtest.h>

#include <cmath>

#include "host/context.hpp"
#include "common/random.hpp"
#include "telemetry/export.hpp"
#include "telemetry/json.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/session.hpp"
#include "telemetry/span.hpp"

using namespace xd;
using namespace xd::telemetry;

// ---- registry --------------------------------------------------------------

TEST(Metrics, NameValidation) {
  EXPECT_TRUE(MetricsRegistry::valid_name("mem.sram.bank0.stall_cycles"));
  EXPECT_TRUE(MetricsRegistry::valid_name("a"));
  EXPECT_TRUE(MetricsRegistry::valid_name("a-b_c9.d"));
  EXPECT_FALSE(MetricsRegistry::valid_name(""));
  EXPECT_FALSE(MetricsRegistry::valid_name(".leading"));
  EXPECT_FALSE(MetricsRegistry::valid_name("trailing."));
  EXPECT_FALSE(MetricsRegistry::valid_name("dou..ble"));
  EXPECT_FALSE(MetricsRegistry::valid_name("Upper.case"));
  EXPECT_FALSE(MetricsRegistry::valid_name("spa ce"));

  MetricsRegistry reg;
  EXPECT_THROW(reg.counter("Bad.Name"), ConfigError);
}

TEST(Metrics, CounterGaugeHistogramRoundTrip) {
  MetricsRegistry reg;
  auto c = reg.counter("blas1.dot.runs");
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  // Re-requesting the same name returns the same metric.
  EXPECT_EQ(reg.counter("blas1.dot.runs").value(), 42u);

  auto g = reg.gauge("fpu.dot.utilization");
  g.set(0.25);
  g.set(0.75);  // last write wins
  EXPECT_DOUBLE_EQ(reg.gauge("fpu.dot.utilization").value(), 0.75);

  auto h = reg.histogram("blas1.dot.vector_words");
  h.observe(10.0);
  h.observe(20.0);
  h.observe(30.0);
  EXPECT_EQ(h.stats().count(), 3u);
  EXPECT_DOUBLE_EQ(h.stats().mean(), 20.0);
  EXPECT_DOUBLE_EQ(h.stats().min(), 10.0);
  EXPECT_DOUBLE_EQ(h.stats().max(), 30.0);

  EXPECT_EQ(reg.size(), 3u);
  EXPECT_TRUE(reg.contains("blas1.dot.runs"));
  EXPECT_FALSE(reg.contains("blas1.dot.missing"));
}

TEST(Metrics, KindMismatchThrows) {
  MetricsRegistry reg;
  reg.counter("mem.dot.words");
  EXPECT_THROW(reg.gauge("mem.dot.words"), ConfigError);
  EXPECT_THROW(reg.histogram("mem.dot.words"), ConfigError);
}

TEST(Metrics, NamesAreSorted) {
  MetricsRegistry reg;
  reg.counter("z.last");
  reg.counter("a.first");
  reg.counter("m.middle");
  const auto names = reg.names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "a.first");
  EXPECT_EQ(names[1], "m.middle");
  EXPECT_EQ(names[2], "z.last");
}

// ---- spans -----------------------------------------------------------------

TEST(Spans, PhasesTileTheTimeline) {
  SpanRecorder rec;
  rec.phase("staging", 100);
  rec.phase("compute", 250);
  rec.phase("staging", 50);

  EXPECT_EQ(rec.cursor(), 400u);
  EXPECT_EQ(rec.total_cycles("staging"), 150u);
  EXPECT_EQ(rec.total_cycles("compute"), 250u);

  const auto spans = rec.spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "staging");
  EXPECT_EQ(spans[0].begin, 0u);
  EXPECT_EQ(spans[0].end, 100u);
  EXPECT_EQ(spans[1].name, "compute");
  EXPECT_EQ(spans[1].begin, 100u);
  EXPECT_EQ(spans[1].end, 350u);
  EXPECT_EQ(spans[2].begin, 350u);
  EXPECT_EQ(spans[2].end, 400u);
}

TEST(Spans, NestingAssignsDepths) {
  SpanRecorder rec;
  rec.begin_at("run", 0);
  rec.begin_at("staging", 0);
  rec.end_at(100);
  rec.begin_at("compute", 100);
  rec.begin_at("drain", 350);
  rec.end_at(400);
  rec.end_at(400);
  rec.end_at(400);
  EXPECT_EQ(rec.open_depth(), 0u);

  const auto spans = rec.spans();
  ASSERT_EQ(spans.size(), 4u);
  // Timeline order: (begin, depth).
  EXPECT_EQ(spans[0].name, "run");
  EXPECT_EQ(spans[0].depth, 0u);
  EXPECT_EQ(spans[1].name, "staging");
  EXPECT_EQ(spans[1].depth, 1u);
  EXPECT_EQ(spans[2].name, "compute");
  EXPECT_EQ(spans[2].depth, 1u);
  EXPECT_EQ(spans[3].name, "drain");
  EXPECT_EQ(spans[3].depth, 2u);
  EXPECT_EQ(rec.total_cycles("run"), 400u);
}

TEST(Spans, ErrorsOnMisuse) {
  SpanRecorder rec;
  EXPECT_THROW(rec.end_at(10), SimError);  // nothing open
  rec.begin_at("x", 100);
  EXPECT_THROW(rec.end_at(50), SimError);  // end precedes begin
}

TEST(Spans, ScopedSpanClosesOnDestruction) {
  SpanRecorder rec;
  u64 cycle = 0;
  {
    ScopedSpan s(&rec, "compute", cycle);
    cycle = 123;
  }
  const auto spans = rec.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].end, 123u);
  // Null recorder is a no-op.
  ScopedSpan noop(nullptr, "x", cycle);
}

// ---- JSON ------------------------------------------------------------------

TEST(Json, EscapeAndNumbers) {
  EXPECT_EQ(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
  EXPECT_EQ(json_number(0.0), "0");
  EXPECT_EQ(json_number(42.0), "42");
  EXPECT_EQ(json_number(std::nan("")), "0");
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "0");
  // Round-trippable shortest form.
  EXPECT_EQ(std::stod(json_number(0.1)), 0.1);
}

TEST(Json, WriterGoldenOutput) {
  JsonWriter w;
  w.begin_object();
  w.kv("name", "dot");
  w.kv("cycles", static_cast<u64>(1234));
  w.key("nested").begin_object().kv("ok", true).end_object();
  w.key("list").begin_array().value(1).value(2).value(3).end_array();
  w.end_object();
  EXPECT_EQ(w.str(),
            R"({"name":"dot","cycles":1234,"nested":{"ok":true},"list":[1,2,3]})");
}

TEST(Json, WriterRawSplicesValue) {
  JsonWriter w;
  w.begin_object().key("inner").raw(R"({"a":1})").kv("b", 2).end_object();
  EXPECT_EQ(w.str(), R"({"inner":{"a":1},"b":2})");
}

TEST(Json, ValidatorAcceptsAndRejects) {
  EXPECT_TRUE(json_validate(R"({"a":[1,2.5,-3e4],"b":{"c":null},"d":"xé"})"));
  EXPECT_TRUE(json_validate("[]"));
  EXPECT_TRUE(json_validate("42"));
  std::string err;
  EXPECT_FALSE(json_validate("", &err));
  EXPECT_FALSE(json_validate("{", &err));
  EXPECT_FALSE(json_validate("{'a':1}", &err));
  EXPECT_FALSE(json_validate(R"({"a":1,})", &err));
  EXPECT_FALSE(json_validate(R"({"a":1} extra)", &err));
  EXPECT_FALSE(json_validate("[1,2,]", &err));
  EXPECT_FALSE(json_validate("01", &err));
  EXPECT_FALSE(json_validate("\"unterminated", &err));
  EXPECT_FALSE(err.empty());
}

// ---- exporters -------------------------------------------------------------

TEST(Export, MetricsJsonGolden) {
  MetricsRegistry reg;
  reg.counter("blas1.dot.runs").add(2);
  reg.gauge("fpu.dot.utilization").set(0.5);
  auto h = reg.histogram("blas1.dot.vector_words");
  h.observe(4.0);
  h.observe(8.0);

  const std::string json = metrics_to_json(reg);
  EXPECT_TRUE(json_validate(json)) << json;
  // p50 of {4, 8} is the first sample covering half the mass: 4. The
  // samples are powers of two, so the sketch reports them exactly.
  EXPECT_EQ(json,
            R"({"blas1.dot.runs":{"kind":"counter","value":2},)"
            R"("blas1.dot.vector_words":{"kind":"histogram","count":2,"sum":12,)"
            R"("mean":6,"stddev":2,"min":4,"max":8,"p50":4,"p95":8,"p99":8},)"
            R"("fpu.dot.utilization":{"kind":"gauge","value":0.5}})");
}

TEST(Export, MetricsCsv) {
  MetricsRegistry reg;
  reg.counter("a.count").add(3);
  reg.gauge("b.rate").set(1.5);
  const std::string csv = metrics_to_csv(reg);
  EXPECT_EQ(csv,
            "name,kind,count,value,mean,stddev,min,max,p50,p95,p99\n"
            "a.count,counter,3,3,,,,,,,\n"
            "b.rate,gauge,1,1.5,,,,,,,\n");
}

TEST(Export, ReportJsonFiniteOnDegenerateReports) {
  // clock_mhz == 0 and cycles == 0 must not leak NaN/inf into the export.
  host::PerfReport zero;
  const std::string j0 = report_to_json(zero);
  EXPECT_TRUE(json_validate(j0)) << j0;
  EXPECT_EQ(j0.find("nan"), std::string::npos);
  EXPECT_EQ(j0.find("inf"), std::string::npos);

  host::PerfReport no_clock;
  no_clock.cycles = 1000;
  no_clock.flops = 2000;
  no_clock.sram_words = 10.0;
  EXPECT_DOUBLE_EQ(no_clock.seconds(), 0.0);
  EXPECT_DOUBLE_EQ(no_clock.sustained_mflops(), 0.0);
  const std::string j1 = report_to_json(no_clock);
  EXPECT_TRUE(json_validate(j1)) << j1;
  EXPECT_EQ(j1.find("nan"), std::string::npos);
  EXPECT_EQ(j1.find("inf"), std::string::npos);
}

TEST(Export, ChromeTraceFromSessionValidates) {
  Session tel;
  tel.phase("staging", 100);
  tel.phase("compute", 300);
  tel.trace().set_enabled(true);
  tel.trace().emit(5, "reduce.buf", "swap A->B");
  tel.trace().emit(7, "mem.bank0", "stall");

  const std::string trace = chrome_trace_json(tel, 100.0);
  EXPECT_TRUE(json_validate(trace)) << trace;
  EXPECT_NE(trace.find("\"staging\""), std::string::npos);
  EXPECT_NE(trace.find("\"compute\""), std::string::npos);
  EXPECT_NE(trace.find("swap A->B"), std::string::npos);

  // The filter keeps only matching trace events; spans always survive.
  const std::string filtered = chrome_trace_json(tel, 100.0, "reduce");
  EXPECT_TRUE(json_validate(filtered)) << filtered;
  EXPECT_NE(filtered.find("reduce.buf"), std::string::npos);
  EXPECT_EQ(filtered.find("mem.bank0"), std::string::npos);
  EXPECT_NE(filtered.find("\"compute\""), std::string::npos);
}

TEST(Export, SpansJson) {
  SpanRecorder rec;
  rec.phase("compute", 10);
  const std::string json = spans_to_json(rec);
  EXPECT_TRUE(json_validate(json)) << json;
  EXPECT_EQ(json,
            R"([{"name":"compute","begin":0,"end":10,"depth":0,"lane":0}])");
}

// ---- span lane merging -----------------------------------------------------

TEST(SpanMerge, ShardsLandOnTheirLanesAndTile) {
  SpanRecorder main;
  main.phase("staging", 10);  // lane 0, [0, 10)

  SpanRecorder shard_a;
  shard_a.phase("compute", 30);
  SpanRecorder shard_b;
  shard_b.phase("compute", 50);

  main.merge_from(shard_a, 1);  // worker 0 -> lane 1
  main.merge_from(shard_b, 2);  // worker 1 -> lane 2
  main.merge_from(shard_a, 1);  // second op on worker 0 tiles after the first

  EXPECT_EQ(main.lane_cursor(0), 10u);
  EXPECT_EQ(main.lane_cursor(1), 60u);  // 30 + 30
  EXPECT_EQ(main.lane_cursor(2), 50u);

  const auto spans = main.spans();
  ASSERT_EQ(spans.size(), 4u);
  // (begin, lane, depth) order: lane-0 staging, then the three merged runs.
  EXPECT_EQ(spans[0].name, "staging");
  EXPECT_EQ(spans[0].lane, 0u);
  EXPECT_EQ(spans[1].lane, 1u);
  EXPECT_EQ(spans[1].begin, 0u);
  EXPECT_EQ(spans[1].end, 30u);
  EXPECT_EQ(spans[2].lane, 2u);
  EXPECT_EQ(spans[3].lane, 1u);
  EXPECT_EQ(spans[3].begin, 30u);  // tiled after shard_a's first merge
  EXPECT_EQ(spans[3].end, 60u);

  // Per-name totals aggregate across lanes.
  EXPECT_EQ(main.total_cycles("compute"), 110u);
}

TEST(SpanMerge, Lane0EquivalentToDirectRecordingAndOpenSpansThrow) {
  SpanRecorder direct;
  direct.phase("a", 5);
  direct.phase("b", 7);

  SpanRecorder main, shard;
  main.phase("a", 5);
  shard.phase("b", 7);
  main.merge_from(shard, 0);
  EXPECT_EQ(spans_to_json(main), spans_to_json(direct));
  EXPECT_EQ(main.cursor(), direct.cursor());

  SpanRecorder open;
  open.begin("unfinished");
  EXPECT_THROW(main.merge_from(open, 1), SimError);
}

// ---- session merge ---------------------------------------------------------

TEST(SessionMerge, MetricsCombineAcrossShards) {
  Session main;
  main.counter("ops").add(2);
  main.histogram("lat").observe(10.0);

  Session shard;
  shard.counter("ops").add(3);
  shard.gauge("depth").set(4.0);
  shard.histogram("lat").observe(20.0);
  shard.phase("compute", 9);

  main.merge(shard, 1);
  EXPECT_EQ(main.counter("ops").value(), 5u);
  EXPECT_DOUBLE_EQ(main.gauge("depth").value(), 4.0);
  EXPECT_EQ(main.histogram("lat").stats().count(), 2u);
  EXPECT_DOUBLE_EQ(main.histogram("lat").stats().max(), 20.0);
  EXPECT_DOUBLE_EQ(main.histogram("lat").percentile(0.99), 20.0);
  EXPECT_EQ(main.spans().total_cycles("compute"), 9u);

  // Kind mismatch across shards is a configuration error, not silent data.
  Session bad;
  bad.gauge("ops").set(1.0);
  EXPECT_THROW(main.merge(bad, 1), ConfigError);
}

TEST(SessionMerge, TraceEventsReEmitOnlyWhenEnabled) {
  Session shard;
  shard.trace().set_enabled(true);
  shard.trace().emit(3, "reduce.buf", "swap");

  Session off;  // tracing disabled (the default): shard events are dropped
  off.merge(shard, 1);
  EXPECT_EQ(off.trace().size(), 0u);

  Session on;
  on.trace().set_enabled(true);
  on.merge(shard, 1);
  ASSERT_EQ(on.trace().size(), 1u);
  EXPECT_EQ(on.trace().events().front().what, "swap");
}

// ---- flight recorder -------------------------------------------------------

TEST(Flight, RingKeepsNewestAndCountsTotals) {
  FlightRecorder fr(3);
  for (u64 i = 0; i < 5; ++i) {
    TraceContext tc;
    tc.op_id = i;
    tc.failed = (i == 4);
    fr.record(tc);
  }
  EXPECT_EQ(fr.size(), 3u);
  EXPECT_EQ(fr.capacity(), 3u);
  EXPECT_EQ(fr.total(), 5u);
  EXPECT_EQ(fr.errors(), 1u);
  const auto snap = fr.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap.front().op_id, 2u);  // oldest retained
  EXPECT_EQ(snap.back().op_id, 4u);
  EXPECT_TRUE(snap.back().failed);
  fr.clear();
  EXPECT_EQ(fr.size(), 0u);
  EXPECT_EQ(fr.total(), 0u);
}

TEST(Flight, JsonExportValidatesAndCarriesLifecycle) {
  FlightRecorder fr(8);
  TraceContext tc;
  tc.op_id = 7;
  tc.kind = "gemv";
  tc.lane = 2;
  tc.submit_ns = 100;
  tc.dequeue_ns = 150;
  tc.plan_ns = 160;
  tc.exec_ns = 170;
  tc.complete_ns = 300;
  tc.cycles = 1234;
  fr.record(tc);
  TraceContext bad;
  bad.op_id = 8;
  bad.failed = true;
  bad.error = "ConfigError: \"x\" too short";
  fr.record(bad);

  const std::string json = flight_to_json(fr);
  EXPECT_TRUE(json_validate(json)) << json;
  EXPECT_NE(json.find("\"op_id\":7"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"gemv\""), std::string::npos);
  EXPECT_NE(json.find("\"queue_wait_ns\":50"), std::string::npos);
  EXPECT_NE(json.find("\"e2e_ns\":200"), std::string::npos);
  EXPECT_NE(json.find("\"failed\":true"), std::string::npos);
  EXPECT_NE(json.find("too short"), std::string::npos);
}

TEST(Export, ChromeTracePerLaneTids) {
  Session tel;
  tel.phase("staging", 10);  // lane 0
  Session shard;
  shard.phase("compute", 20);
  tel.merge(shard, 3);  // worker 2 -> lane 3

  const std::string trace = chrome_trace_json(tel, 100.0);
  EXPECT_TRUE(json_validate(trace)) << trace;
  // Spans carry their lane both as the tid and in args (the CI smoke greps
  // the args form), and each lane gets a thread_name metadata event.
  EXPECT_NE(trace.find("\"lane\":0"), std::string::npos);
  EXPECT_NE(trace.find("\"lane\":3"), std::string::npos);
  EXPECT_NE(trace.find("\"tid\":3"), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"caller\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"worker 2\""), std::string::npos);
}

// ---- circular trace buffer -------------------------------------------------

TEST(TraceBuffer, EvictsOldestAndCountsTotal) {
  sim::Trace t(3);
  for (u64 i = 0; i < 5; ++i) t.emit(i, "src", cat("e", i));
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.total_emitted(), 5u);
  const auto evs = t.events();
  ASSERT_EQ(evs.size(), 3u);
  EXPECT_EQ(evs.front().cycle, 2u);  // oldest retained
  EXPECT_EQ(evs.back().cycle, 4u);
  EXPECT_EQ(t.render(2), "3  src  e3\n4  src  e4\n");
}

TEST(TraceBuffer, DisabledEmitsNothing) {
  sim::Trace t(8);
  t.set_enabled(false);
  t.emit(1, "src", "dropped");
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.total_emitted(), 0u);
}

// ---- end-to-end through host::Context --------------------------------------

TEST(ContextTelemetry, DotPhasesTileTotalCycles) {
  Rng rng(11);
  Session tel;
  host::ContextConfig cfg;
  cfg.telemetry = &tel;
  host::Context ctx(cfg);

  const auto r = ctx.dot(rng.vector(256), rng.vector(256), host::Placement::Dram);
  EXPECT_EQ(tel.spans().total_cycles("staging") +
                tel.spans().total_cycles("compute"),
            r.report.cycles);
  EXPECT_GT(tel.metrics().size(), 0u);
  EXPECT_TRUE(tel.metrics().contains("blas1.dot.runs"));
  EXPECT_TRUE(tel.metrics().contains("mem.dot.sram.words"));
}

TEST(ContextTelemetry, GemmPhasesAndNamespaces) {
  Rng rng(12);
  Session tel;
  host::ContextConfig cfg;
  cfg.telemetry = &tel;
  host::Context ctx(cfg);

  const std::size_t n = 64;
  const auto out = ctx.gemm(rng.matrix(n, n), rng.matrix(n, n), n);
  EXPECT_EQ(tel.spans().total_cycles("compute") +
                tel.spans().total_cycles("staging"),
            out.report.cycles);

  // The acceptance bar: >= 10 distinct names across mem.*, fpu.* and blas3.*.
  std::size_t mem = 0, fpu = 0, blas3 = 0;
  for (const auto& name : tel.metrics().names()) {
    mem += name.rfind("mem.", 0) == 0;
    fpu += name.rfind("fpu.", 0) == 0;
    blas3 += name.rfind("blas3.", 0) == 0;
  }
  EXPECT_GE(tel.metrics().size(), 10u);
  EXPECT_GE(mem, 1u);
  EXPECT_GE(fpu, 1u);
  EXPECT_GE(blas3, 1u);
}

TEST(ContextTelemetry, DisabledByDefaultRecordsNothing) {
  Rng rng(13);
  host::Context ctx;  // no session attached
  const auto r = ctx.dot(rng.vector(128), rng.vector(128));
  EXPECT_GT(r.report.cycles, 0u);  // ran fine without any telemetry sink
}
