// Timing-model tests for the pipelined FP units: latency is exactly the
// stage count, throughput is one issue per cycle, and structural hazards
// (double issue, unconsumed output) are detected.
#include <gtest/gtest.h>

#include "common/random.hpp"
#include "fp/fpu.hpp"
#include "fp/softfloat.hpp"

using namespace xd;
using fp::AdderTree;
using fp::PipelinedAdder;
using fp::PipelinedMultiplier;

TEST(PipelinedUnit, LatencyIsExactlyStages) {
  for (unsigned stages : {1u, 2u, 5u, fp::kAdderStages}) {
    PipelinedAdder add(stages);
    add.issue(fp::to_bits(1.0), fp::to_bits(2.0), 42);
    for (unsigned c = 0; c + 1 < stages; ++c) {
      add.tick();
      EXPECT_FALSE(add.take_output().has_value()) << "stage " << c;
    }
    add.tick();
    auto r = add.take_output();
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(fp::from_bits(r->bits), 3.0);
    EXPECT_EQ(r->tag, 42u);
  }
}

TEST(PipelinedUnit, OneResultPerCycleAtFullThroughput) {
  PipelinedAdder add(5);
  const int n = 100;
  int results = 0;
  for (int c = 0; c < n + 5; ++c) {
    if (c < n) add.issue(fp::to_bits(double(c)), fp::to_bits(1.0), u64(c));
    add.tick();
    if (auto r = add.take_output()) {
      EXPECT_EQ(fp::from_bits(r->bits), double(results) + 1.0);
      EXPECT_EQ(r->tag, u64(results));
      ++results;
    }
  }
  EXPECT_EQ(results, n);
  EXPECT_DOUBLE_EQ(add.utilization(), double(n) / double(n + 5));
}

TEST(PipelinedUnit, DoubleIssueThrows) {
  PipelinedAdder add;
  add.issue(0, 0);
  EXPECT_THROW(add.issue(0, 0), SimError);
}

TEST(PipelinedUnit, UnconsumedOutputThrows) {
  PipelinedAdder add(1);
  add.issue(fp::to_bits(1.0), fp::to_bits(1.0));
  add.tick();  // result available now
  EXPECT_THROW(add.tick(), SimError);
}

TEST(PipelinedUnit, MultiplierComputesBitExactProducts) {
  Rng rng(7);
  PipelinedMultiplier mul;
  for (int i = 0; i < 200; ++i) {
    const double a = rng.uniform(-100, 100);
    const double b = rng.uniform(-100, 100);
    mul.issue(fp::to_bits(a), fp::to_bits(b));
    for (unsigned c = 0; c < fp::kMultiplierStages; ++c) mul.tick();
    auto r = mul.take_output();
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->bits, fp::to_bits(a * b));
  }
}

TEST(PipelinedUnit, ResetClearsState) {
  PipelinedAdder add(3);
  add.issue(fp::to_bits(1.0), fp::to_bits(1.0));
  add.tick();
  add.reset();
  EXPECT_FALSE(add.busy());
  EXPECT_EQ(add.cycles(), 0u);
  EXPECT_EQ(add.ops_issued(), 0u);
  for (int c = 0; c < 10; ++c) {
    add.tick();
    EXPECT_FALSE(add.take_output().has_value());
  }
}

TEST(AdderTree, RequiresPowerOfTwoFanIn) {
  EXPECT_THROW(AdderTree(3), ConfigError);
  EXPECT_THROW(AdderTree(0), ConfigError);
  EXPECT_THROW(AdderTree(1), ConfigError);
  EXPECT_NO_THROW(AdderTree(2));
  EXPECT_NO_THROW(AdderTree(16));
}

TEST(AdderTree, LatencyIsLevelsTimesStages) {
  AdderTree tree(4, 10);
  EXPECT_EQ(tree.levels(), 2u);
  EXPECT_EQ(tree.latency(), 20u);
  EXPECT_EQ(tree.adders(), 3u);
  tree.issue({fp::to_bits(1.0), fp::to_bits(2.0), fp::to_bits(3.0),
              fp::to_bits(4.0)},
             9);
  for (unsigned c = 0; c + 1 < 20; ++c) {
    tree.tick();
    EXPECT_FALSE(tree.take_output().has_value());
  }
  tree.tick();
  auto r = tree.take_output();
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(fp::from_bits(r->bits), 10.0);
  EXPECT_EQ(r->tag, 9u);
}

TEST(AdderTree, PairwiseAssociationMatchesHardwareWiring) {
  // ((a+b)+(c+d)) — not ((a+b)+c)+d.
  AdderTree tree(4, 1);
  const double a = 1e16, b = 1.0, c = -1e16, d = 1.0;
  tree.issue({fp::to_bits(a), fp::to_bits(b), fp::to_bits(c), fp::to_bits(d)});
  tree.tick();
  tree.tick();
  auto r = tree.take_output();
  ASSERT_TRUE(r.has_value());
  const double expect = fp::addd(fp::addd(a, b), fp::addd(c, d));
  EXPECT_EQ(fp::from_bits(r->bits), expect);
}

TEST(AdderTree, FullThroughput) {
  Rng rng(8);
  AdderTree tree(8);
  const int n = 500;
  int results = 0;
  double expect_sum = 0;
  double got_sum = 0;
  for (int c = 0; c < n + 200; ++c) {
    if (c < n) {
      std::vector<u64> ops(8);
      for (auto& o : ops) {
        const double v = rng.uniform(-1, 1);
        expect_sum += v;
        o = fp::to_bits(v);
      }
      tree.issue(ops);
    }
    tree.tick();
    if (auto r = tree.take_output()) {
      got_sum += fp::from_bits(r->bits);
      ++results;
    }
  }
  EXPECT_EQ(results, n);
  EXPECT_NEAR(got_sum, expect_sum, 1e-9);
}

TEST(AdderTree, WrongOperandCountThrows) {
  AdderTree tree(4);
  EXPECT_THROW(tree.issue({0, 0}), ConfigError);
}
