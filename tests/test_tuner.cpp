// Design-autotuner tests: candidate feasibility agrees with the
// machine::AreaModel budgets exactly, the ranking agrees with the Sec 5
// analytic GEMM models on the paper's shapes, the winners on the pinned
// Table 3/4 shapes are the designs the paper itself chose, tuned plans
// compute bit-identical values to fixed plans, and the tune policy is part
// of the plan-cache key (no cross-policy hits).
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "common/random.hpp"
#include "host/plan.hpp"
#include "host/runtime.hpp"
#include "host/tuner.hpp"
#include "machine/area.hpp"
#include "model/perf_model.hpp"
#include "telemetry/session.hpp"

using namespace xd;
using host::ContextConfig;
using host::OpDesc;
using host::OpKind;
using host::PlanKey;
using host::Runtime;
using host::TuneCandidate;
using host::TuneFamily;
using host::TunePolicy;
using host::TuneResult;

namespace {

PlanKey key_for(OpKind kind, std::size_t rows, std::size_t cols, std::size_t n,
                TunePolicy tune = TunePolicy::Model) {
  PlanKey k;
  k.kind = kind;
  k.rows = rows;
  k.cols = cols;
  k.n = n;
  k.tune = tune;
  return k;
}

/// Operands whose entries are small integers: every product and partial sum
/// stays exactly representable in binary64, so ANY summation order — any
/// engine, any k/m/b — produces bit-identical results. This is the property
/// the tuned-vs-fixed comparison leans on when the tuner picks a different
/// design than the fixed configuration.
std::vector<double> small_int_vector(Rng& rng, std::size_t n) {
  std::vector<double> v(n);
  for (auto& x : v) {
    x = static_cast<double>(static_cast<long long>(rng.uniform_int(0, 8)) - 4);
  }
  return v;
}

}  // namespace

// ---- feasibility mirrors machine::area -------------------------------------

TEST(Tuner, DotFeasibilityMatchesAreaModel) {
  const ContextConfig cfg;
  const machine::AreaModel area;
  const TuneResult tr = host::tune_op(cfg, key_for(OpKind::Dot, 0, 2048, 0));
  ASSERT_GT(tr.considered, 0u);
  for (const TuneCandidate& c : tr.ranked) {
    ASSERT_EQ(c.family, TuneFamily::Dot);
    const machine::DesignArea expect = area.dot_design(c.k);
    EXPECT_EQ(c.area.slices, expect.slices) << c.name();
    EXPECT_DOUBLE_EQ(c.area.clock_mhz, expect.clock_mhz) << c.name();
    // Feasibility is exactly the device budget check, nothing looser.
    const bool fits = expect.slices <= cfg.device.slices &&
                      c.bram_words <= cfg.device.bram_words();
    EXPECT_EQ(c.feasible, fits) << c.name();
    EXPECT_EQ(c.why_not.empty(), c.feasible) << c.name();
  }
}

TEST(Tuner, GemvFeasibilityMatchesAreaModelAndBanks) {
  const ContextConfig cfg;  // 4 SRAM banks
  const machine::AreaModel area;
  const TuneResult tr =
      host::tune_op(cfg, key_for(OpKind::Gemv, 2048, 2048, 0));
  for (const TuneCandidate& c : tr.ranked) {
    if (c.family == TuneFamily::GemvTree) {
      EXPECT_EQ(c.area.slices, area.mxv_design_xd1(c.k).slices) << c.name();
      EXPECT_EQ(c.feasible, c.k <= cfg.sram_banks &&
                                c.area.slices <= cfg.device.slices)
          << c.name();
    } else {
      ASSERT_EQ(c.family, TuneFamily::GemvCol);
      EXPECT_EQ(c.area.slices, area.mxv_col_design(c.k).slices +
                                   area.xd1_interface_slices())
          << c.name();
      // k+1 banks (A lanes + broadcast x) and the accumulation hazard.
      const bool fits = c.k + 1 <= cfg.sram_banks &&
                        ceil_div(2048, c.k) >= cfg.adder_stages &&
                        c.area.slices <= cfg.device.slices;
      EXPECT_EQ(c.feasible, fits) << c.name();
    }
  }
}

TEST(Tuner, GemmPruningMatchesMaxPesAndSram) {
  const ContextConfig cfg;
  const machine::AreaModel area;
  const unsigned max_pes = area.max_mm_pes(cfg.device, true);
  const TuneResult tr = host::tune_op(cfg, key_for(OpKind::Gemm, 0, 0, 2048));
  bool saw_pe_prune = false, saw_sram_prune = false;
  for (const TuneCandidate& c : tr.ranked) {
    EXPECT_EQ(c.area.slices, area.mm_design_xd1(c.k).slices) << c.name();
    if (c.k > max_pes) {
      EXPECT_FALSE(c.feasible) << c.name();
      saw_pe_prune = true;
    }
    // n = 2048 does not fit the resident-operand array: 3 n^2 = 12.6 M
    // words against the 2 Mi-word SRAM (the Sec 5.2 motivation).
    if (c.family == TuneFamily::MmArray) {
      EXPECT_FALSE(c.feasible) << c.name();
      saw_sram_prune = true;
    }
  }
  EXPECT_TRUE(saw_pe_prune);
  EXPECT_TRUE(saw_sram_prune);
}

// ---- ranking agrees with the analytic models -------------------------------

TEST(Tuner, GemmModelCyclesMatchSc05AndHierFormulas) {
  const ContextConfig cfg;
  // n = 512: the array is feasible (3 n^2 = 786 k words fit the SRAM), so
  // both families rank side by side.
  const TuneResult tr = host::tune_op(cfg, key_for(OpKind::Gemm, 0, 0, 512));
  bool saw_array = false, saw_hier = false;
  for (const TuneCandidate& c : tr.ranked) {
    if (!c.feasible) continue;
    if (c.family == TuneFamily::MmArray) {
      const auto point = model::gemm_sc05(512, c.k, c.m);
      // The paper's k=8/m=8 point needs 3k/m = 3 words/cycle < the 4 banks,
      // so no bandwidth throttle applies and the cycles are exactly n^3/k.
      if (point.words_per_cycle <= cfg.sram_banks) {
        EXPECT_EQ(c.model_cycles,
                  static_cast<u64>(std::ceil(point.latency_cycles)))
            << c.name();
      }
      EXPECT_DOUBLE_EQ(c.required_words_per_cycle, point.words_per_cycle)
          << c.name();
      saw_array = true;
    } else if (c.family == TuneFamily::MmHier) {
      const auto point = model::gemm_hier_multi(512, c.k, c.l, c.m, c.b);
      const double avail =
          host::words_per_cycle(cfg.mm_dram_bytes_per_s, c.area.clock_mhz);
      if (point.words_per_cycle <= avail) {
        EXPECT_EQ(c.model_cycles,
                  static_cast<u64>(std::ceil(point.latency_cycles)))
            << c.name();
      }
      saw_hier = true;
    }
  }
  EXPECT_TRUE(saw_array);
  EXPECT_TRUE(saw_hier);
  // Feasible candidates are sorted fastest-first.
  double prev = 0.0;
  for (const TuneCandidate& c : tr.ranked) {
    if (!c.feasible) break;
    EXPECT_GE(c.model_seconds, prev) << c.name();
    prev = c.model_seconds;
  }
}

// ---- pinned paper-consistent winners ---------------------------------------

TEST(Tuner, PinnedWinnerDotIsK2) {
  // Table 3: the paper implements k = 2 because the 5.5 GB/s stream feeds
  // ~4 words/cycle — k = 4 is modeled ~1% faster but costs 3874 more
  // slices; the tie band resolves to the smaller design, as the paper did.
  const ContextConfig cfg;
  const TuneResult tr = host::tune_op(cfg, key_for(OpKind::Dot, 0, 2048, 0));
  ASSERT_NE(tr.winner(), nullptr);
  EXPECT_EQ(tr.winner()->family, TuneFamily::Dot);
  EXPECT_EQ(tr.winner()->k, 2u);
}

TEST(Tuner, PinnedWinnerGemvTreeVsColCrossover) {
  // Table 4 machine (4 SRAM banks): the column design would need k+1 = 5
  // banks at k = 4, so the tree design at k = 4 wins — the configuration
  // the paper implemented on XD1. Grant a fifth bank and the column design
  // at k = 4 matches the tree's latency with 1869 fewer slices (no
  // reduction circuit), flipping the winner.
  ContextConfig cfg;
  const PlanKey key = key_for(OpKind::Gemv, 2048, 2048, 0);

  const TuneResult four = host::tune_op(cfg, key);
  ASSERT_NE(four.winner(), nullptr);
  EXPECT_EQ(four.winner()->family, TuneFamily::GemvTree);
  EXPECT_EQ(four.winner()->k, 4u);

  cfg.sram_banks = 5;
  const TuneResult five = host::tune_op(cfg, key);
  ASSERT_NE(five.winner(), nullptr);
  EXPECT_EQ(five.winner()->family, TuneFamily::GemvCol);
  EXPECT_EQ(five.winner()->k, 4u);
}

TEST(Tuner, PinnedWinnerGemmN2048IsHierarchical) {
  // Sec 5.2's own argument: at n = 2048 the operands cannot stay resident
  // in the 2 Mi-word SRAM, so the hierarchical design with b x b panels is
  // the only feasible k = 8 option; the tuner picks the largest panel that
  // fits (2 b^2 <= capacity -> b = 1024).
  const ContextConfig cfg;
  const TuneResult tr = host::tune_op(cfg, key_for(OpKind::Gemm, 0, 0, 2048));
  ASSERT_NE(tr.winner(), nullptr);
  EXPECT_EQ(tr.winner()->family, TuneFamily::MmHier);
  EXPECT_EQ(tr.winner()->k, 8u);
  EXPECT_EQ(tr.winner()->b, 1024u);
}

TEST(Tuner, PinnedWinnerSmallGemmIsCycleAccurateArray) {
  // When both families tie (small n, resident operands), the cycle-accurate
  // array is preferred over the analytic hierarchical model.
  const ContextConfig cfg;
  const TuneResult tr = host::tune_op(cfg, key_for(OpKind::Gemm, 0, 0, 64));
  ASSERT_NE(tr.winner(), nullptr);
  EXPECT_EQ(tr.winner()->family, TuneFamily::MmArray);
  EXPECT_EQ(tr.winner()->k, 8u);
  EXPECT_EQ(tr.winner()->m, 8u);
}

TEST(Tuner, PinnedWinnerMultiFpgaUsesAllFpgas) {
  // Sec 6.4: with l = 2 FPGAs configured, n^3/(k l) halves the latency and
  // the block-event multi-FPGA engine (cycle-accurate) is preferred over
  // the analytic hierarchical model at equal modeled latency.
  ContextConfig cfg;
  cfg.mm_l = 2;
  const TuneResult tr = host::tune_op(cfg, key_for(OpKind::Gemm, 0, 0, 2048));
  ASSERT_NE(tr.winner(), nullptr);
  EXPECT_EQ(tr.winner()->family, TuneFamily::MmMulti);
  EXPECT_EQ(tr.winner()->l, 2u);
  EXPECT_EQ(tr.winner()->k, 8u);
}

// ---- tuned plans: bit-identical values, probe determinism ------------------

TEST(Tuner, TunedValuesBitIdenticalToFixedOnIntegerOperands) {
  Rng rng(77);
  const std::size_t dot_n = 512, gemv_n = 64, gemm_n = 32;
  const auto u = small_int_vector(rng, dot_n);
  const auto v = small_int_vector(rng, dot_n);
  const auto a2 = small_int_vector(rng, gemv_n * gemv_n);
  const auto x2 = small_int_vector(rng, gemv_n);
  const auto a3 = small_int_vector(rng, gemm_n * gemm_n);
  const auto b3 = small_int_vector(rng, gemm_n * gemm_n);

  ContextConfig fixed_cfg;
  ContextConfig tuned_cfg;
  tuned_cfg.tune = TunePolicy::Model;
  Runtime fixed_rt(fixed_cfg);
  Runtime tuned_rt(tuned_cfg);

  const std::vector<OpDesc> descs = {
      OpDesc::dot(u, v),
      OpDesc::gemv(a2, gemv_n, gemv_n, x2),
      OpDesc::gemm(a3, b3, gemm_n),
  };
  for (const OpDesc& desc : descs) {
    const auto fixed = fixed_rt.run(desc);
    const auto tuned = tuned_rt.run(desc);
    ASSERT_EQ(fixed.values.size(), tuned.values.size())
        << host::op_kind_name(desc.kind);
    for (std::size_t i = 0; i < fixed.values.size(); ++i) {
      EXPECT_EQ(fixed.values[i], tuned.values[i])
          << host::op_kind_name(desc.kind) << " element " << i;
    }
  }
}

TEST(Tuner, SameWinnerGivesBitIdenticalPlan) {
  // The default configuration IS the paper's winning design for GEMV, so
  // the tuned plan must match the fixed plan in every engine parameter —
  // cycles included, not just values.
  const ContextConfig cfg;
  const PlanKey fixed_key =
      key_for(OpKind::Gemv, 2048, 2048, 0, TunePolicy::Fixed);
  const PlanKey tuned_key =
      key_for(OpKind::Gemv, 2048, 2048, 0, TunePolicy::Model);
  const host::Plan fixed = host::build_plan(cfg, fixed_key);
  const host::Plan tuned = host::build_plan(cfg, tuned_key);
  EXPECT_EQ(host::engine_signature(fixed.engine),
            host::engine_signature(tuned.engine));
  const auto& fc = std::get<blas2::MxvTreeConfig>(fixed.engine);
  const auto& tc = std::get<blas2::MxvTreeConfig>(tuned.engine);
  EXPECT_EQ(fc.k, tc.k);
  EXPECT_EQ(fc.adder_stages, tc.adder_stages);
  EXPECT_EQ(fc.multiplier_stages, tc.multiplier_stages);
  EXPECT_DOUBLE_EQ(fc.mem_words_per_cycle, tc.mem_words_per_cycle);
  EXPECT_DOUBLE_EQ(fc.clock_mhz, tc.clock_mhz);
  EXPECT_TRUE(tuned.tune.tuned);
  EXPECT_FALSE(fixed.tune.tuned);
  EXPECT_GT(tuned.tune.candidates, 0u);
}

TEST(Tuner, ProbePolicyIsDeterministicAndCountsProbes) {
  ContextConfig cfg;
  const PlanKey key = key_for(OpKind::Gemv, 512, 512, 0, TunePolicy::Probe);
  const TuneResult a = host::tune_op(cfg, key);
  const TuneResult b = host::tune_op(cfg, key);
  ASSERT_NE(a.winner(), nullptr);
  EXPECT_EQ(a.probed, cfg.tune_probe_top);
  EXPECT_GT(a.probe_cycles, 0u);
  ASSERT_EQ(a.ranked.size(), b.ranked.size());
  for (std::size_t i = 0; i < a.ranked.size(); ++i) {
    EXPECT_EQ(a.ranked[i].name(), b.ranked[i].name());
    EXPECT_EQ(a.ranked[i].model_cycles, b.ranked[i].model_cycles);
    EXPECT_EQ(a.ranked[i].probe_cycles, b.ranked[i].probe_cycles);
    EXPECT_EQ(a.ranked[i].chosen, b.ranked[i].chosen);
  }
  EXPECT_EQ(a.winner_index, b.winner_index);
}

TEST(Tuner, NoFeasibleDesignThrowsConfigError) {
  // n = 0 GEMM is rejected by the fixed path (no panel edge tiles it); the
  // tuned path must agree rather than emit a degenerate winner.
  const ContextConfig cfg;
  EXPECT_THROW(
      host::build_tuned_plan(cfg,
                             key_for(OpKind::Gemm, 0, 0, 0, TunePolicy::Model)),
      ConfigError);
}

// ---- plan cache and telemetry ----------------------------------------------

TEST(Tuner, PlanCacheNeverCrossesPolicies) {
  const ContextConfig cfg;
  host::PlanCache cache(8);
  const PlanKey fixed_key =
      key_for(OpKind::Gemv, 256, 256, 0, TunePolicy::Fixed);
  const PlanKey tuned_key =
      key_for(OpKind::Gemv, 256, 256, 0, TunePolicy::Model);

  const auto p1 = cache.get_or_build(cfg, fixed_key);
  const auto p2 = cache.get_or_build(cfg, tuned_key);
  EXPECT_EQ(cache.misses(), 2u);  // same shape, different policy: two builds
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_FALSE(p1->tune.tuned);
  EXPECT_TRUE(p2->tune.tuned);

  // Round trip: each policy hits its own entry.
  EXPECT_EQ(cache.get_or_build(cfg, fixed_key).get(), p1.get());
  EXPECT_EQ(cache.get_or_build(cfg, tuned_key).get(), p2.get());
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(Tuner, PublishesHostTunerGauges) {
  Rng rng(9);
  ContextConfig cfg;
  cfg.tune = TunePolicy::Model;
  telemetry::Session session;
  cfg.telemetry = &session;
  Runtime rt(cfg);
  const auto a = rng.matrix(96, 96);
  const auto x = rng.vector(96);
  rt.run(OpDesc::gemv(a, 96, 96, x));
  EXPECT_EQ(session.gauge("host.tuner.plans").value(), 1.0);
  EXPECT_GT(session.gauge("host.tuner.candidates").value(), 0.0);
  EXPECT_GT(session.gauge("host.tuner.pruned_area").value(), 0.0);
}

TEST(Tuner, EngineSignatureCoversValueAffectingParams) {
  blas2::MxvTreeConfig t1, t2;
  t1.k = 4;
  t2.k = 8;
  EXPECT_NE(host::engine_signature(host::EngineConfig(t1)),
            host::engine_signature(host::EngineConfig(t2)));
  blas3::MmHierConfig h1, h2;
  h1.b = 512;
  h2.b = 1024;
  EXPECT_NE(host::engine_signature(host::EngineConfig(h1)),
            host::engine_signature(host::EngineConfig(h2)));
  // Non-value-affecting knobs (clock) do not change the signature.
  blas1::DotConfig d1, d2;
  d1.clock_mhz = 170.0;
  d2.clock_mhz = 100.0;
  EXPECT_EQ(host::engine_signature(host::EngineConfig(d1)),
            host::engine_signature(host::EngineConfig(d2)));
}

TEST(Tuner, PolicyNamesRoundTrip) {
  for (const TunePolicy p :
       {TunePolicy::Fixed, TunePolicy::Model, TunePolicy::Probe}) {
    TunePolicy parsed;
    ASSERT_TRUE(host::tune_policy_from_name(host::tune_policy_name(p), parsed));
    EXPECT_EQ(parsed, p);
  }
  TunePolicy out;
  EXPECT_FALSE(host::tune_policy_from_name("frobnicate", out));
}
