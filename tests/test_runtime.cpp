// Runtime-layer tests: concurrent submits are bit-identical to sequential
// runs (values AND cycle counts — the simulations are deterministic and
// self-contained), the plan cache counts hits/misses and evicts LRU-first,
// errors propagate through futures, and the pool-backed parallel_for is
// correct and deadlock-free even when nested inside a pool job.
#include <gtest/gtest.h>

#include <atomic>
#include <type_traits>
#include <vector>

#include "common/parallel.hpp"
#include "common/random.hpp"
#include "host/context.hpp"
#include "host/runtime.hpp"
#include "telemetry/export.hpp"
#include "telemetry/json.hpp"
#include "telemetry/session.hpp"

using namespace xd;
using host::Context;
using host::ContextConfig;
using host::OpDesc;
using host::Outcome;
using host::Placement;
using host::Runtime;

namespace {

struct GemvJob {
  std::vector<double> a;
  std::vector<double> x;
  std::size_t n;
};

std::vector<GemvJob> make_gemv_jobs(std::size_t count, std::size_t n) {
  std::vector<GemvJob> jobs;
  for (std::size_t j = 0; j < count; ++j) {
    Rng rng(100 + j);  // distinct data per job
    jobs.push_back({rng.matrix(n, n), rng.vector(n), n});
  }
  return jobs;
}

}  // namespace

TEST(Runtime, ConcurrentSubmitsBitIdenticalToSequential) {
  const auto jobs = make_gemv_jobs(8, 96);

  // Sequential reference: one op at a time on the calling thread.
  Runtime seq({});
  std::vector<Outcome> expect;
  for (const auto& j : jobs) {
    expect.push_back(seq.run(OpDesc::gemv(j.a, j.n, j.n, j.x)));
  }

  // Concurrent: all eight in flight on the shared pool at once.
  Runtime rt({});
  std::vector<std::future<Outcome>> futs;
  for (const auto& j : jobs) {
    futs.push_back(rt.submit(OpDesc::gemv(j.a, j.n, j.n, j.x)));
  }

  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const Outcome got = futs[j].get();
    ASSERT_EQ(got.values.size(), expect[j].values.size());
    for (std::size_t i = 0; i < got.values.size(); ++i) {
      // Bit-identical, not approximately equal.
      EXPECT_EQ(got.values[i], expect[j].values[i]) << "job " << j << " y[" << i
                                                    << "]";
    }
    EXPECT_EQ(got.report.cycles, expect[j].report.cycles) << "job " << j;
    EXPECT_EQ(got.report.flops, expect[j].report.flops) << "job " << j;
    EXPECT_EQ(got.report.stall_cycles, expect[j].report.stall_cycles)
        << "job " << j;
  }

  const auto stats = rt.stats();
  EXPECT_EQ(stats.submitted, 8u);
  EXPECT_EQ(stats.completed, 8u);
  EXPECT_EQ(stats.failed, 0u);
}

TEST(Runtime, RunBatchPreservesOrderAndMatchesRun) {
  Rng rng(5);
  const auto u = rng.vector(64);
  const auto v = rng.vector(64);
  const auto w = rng.vector(64);

  Runtime rt({});
  const auto outs =
      rt.run_batch({OpDesc::dot(u, v), OpDesc::dot(u, w), OpDesc::dot(v, w)});
  ASSERT_EQ(outs.size(), 3u);
  EXPECT_EQ(outs[0].values.at(0), rt.run(OpDesc::dot(u, v)).values.at(0));
  EXPECT_EQ(outs[1].values.at(0), rt.run(OpDesc::dot(u, w)).values.at(0));
  EXPECT_EQ(outs[2].values.at(0), rt.run(OpDesc::dot(v, w)).values.at(0));
}

TEST(Runtime, PlanCacheCountsHitsAndMisses) {
  Rng rng(6);
  const auto a = rng.matrix(64, 64);
  const auto x = rng.vector(64);

  Runtime rt({});
  const auto& cache = rt.plan_cache();
  EXPECT_EQ(cache.size(), 0u);

  rt.run(OpDesc::gemv(a, 64, 64, x));
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.size(), 1u);

  rt.run(OpDesc::gemv(a, 64, 64, x));  // same key -> hit
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);

  rt.run(OpDesc::gemv(a, 64, 64, x, Placement::Dram));  // placement keys
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(Runtime, PlanCacheEvictsLeastRecentlyUsed) {
  ContextConfig cfg;
  cfg.plan_cache_capacity = 2;
  Runtime rt(cfg);
  const auto& cache = rt.plan_cache();
  EXPECT_EQ(cache.capacity(), 2u);

  Rng rng(7);
  const auto a64 = rng.matrix(64, 64), x64 = rng.vector(64);
  const auto a96 = rng.matrix(96, 96), x96 = rng.vector(96);
  const auto a128 = rng.matrix(128, 128), x128 = rng.vector(128);

  rt.run(OpDesc::gemv(a64, 64, 64, x64));    // miss: {64}
  rt.run(OpDesc::gemv(a96, 96, 96, x96));    // miss: {96, 64}
  rt.run(OpDesc::gemv(a64, 64, 64, x64));    // hit:  {64, 96}
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.evictions(), 0u);

  rt.run(OpDesc::gemv(a128, 128, 128, x128));  // miss, evicts LRU (96)
  EXPECT_EQ(cache.misses(), 3u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.size(), 2u);

  rt.run(OpDesc::gemv(a64, 64, 64, x64));  // still cached — 96 was evicted
  EXPECT_EQ(cache.hits(), 2u);
  rt.run(OpDesc::gemv(a96, 96, 96, x96));  // gone: miss again
  EXPECT_EQ(cache.misses(), 4u);
}

// Malformed descriptors — zero shapes, overflowing shape products,
// structurally broken sparse matrices — must surface as ConfigError through
// run() AND through submit() futures, never as a crash or an engine walk
// past the operands.
namespace {

void expect_config_error_both_paths(Runtime& rt, const OpDesc& desc) {
  EXPECT_THROW(rt.run(desc), ConfigError);
  auto fut = rt.submit(desc);
  EXPECT_THROW(fut.get(), ConfigError);
}

}  // namespace

TEST(Runtime, ZeroShapesAreConfigErrors) {
  Runtime rt({});
  const std::vector<double> empty;
  expect_config_error_both_paths(rt, OpDesc::dot(empty, empty));

  Rng rng(11);
  const auto x = rng.vector(8);
  const std::vector<double> no_rows;  // 0 x 8 matrix
  expect_config_error_both_paths(rt, OpDesc::gemv(no_rows, 0, 8, x));

  expect_config_error_both_paths(rt, OpDesc::gemm_array(empty, empty, 0));

  const auto stats = rt.stats();
  EXPECT_EQ(stats.completed, 0u);
  EXPECT_EQ(stats.failed, 6u);
}

TEST(Runtime, OverflowingShapeProductsAreConfigErrors) {
  Runtime rt({});
  const std::vector<double> empty;
  const std::vector<double> x2{1.0, 2.0};

  // rows * cols wraps size_t to 0 == a.size(): the naive equality check
  // would pass and the engine would walk 2^63 rows of nothing.
  OpDesc wide = OpDesc::gemv(empty, 0, 2, x2);
  wide.rows = std::size_t{1} << 63;
  expect_config_error_both_paths(rt, wide);

  // n * n wraps to 0 on 64-bit for n = 2^32.
  OpDesc huge = OpDesc::gemm(empty, empty, 0);
  huge.n = std::size_t{1} << 32;
  expect_config_error_both_paths(rt, huge);
}

TEST(Runtime, MismatchedSparseStructureIsConfigError) {
  Rng rng(12);
  blas2::CrsMatrix m;
  m.rows = 2;
  m.cols = 2;
  m.row_ptr = {0, 1, 2};
  m.col_idx = {0, 1};
  m.values = {1.0, 2.0};
  const auto x = rng.vector(2);

  Runtime rt({});
  EXPECT_NO_THROW(rt.run(OpDesc::spmxv(m, x)));  // honest matrix is fine

  m.col_idx[0] = 5;  // out-of-range column
  expect_config_error_both_paths(rt, OpDesc::spmxv(m, x));
  m.col_idx[0] = 0;

  m.row_ptr.pop_back();  // rows+1 invariant broken
  expect_config_error_both_paths(rt, OpDesc::spmxv(m, x));
  m.row_ptr = {0, 1, 2};

  // Descriptor shape diverging from the matrix (stale desc after resize).
  OpDesc stale = OpDesc::spmxv(m, x);
  stale.rows = 3;
  expect_config_error_both_paths(rt, stale);
}

TEST(Runtime, PlanCacheConcurrentDistinctShapes) {
  // Eviction racing lookup: capacity 2, four distinct shapes hammered from
  // every pool worker at once. Outcomes must stay bit-identical to the
  // sequential reference, the cache must respect its capacity, and every
  // lookup must be counted exactly once as a hit or a miss.
  ContextConfig cfg;
  cfg.plan_cache_capacity = 2;

  const std::size_t shapes[] = {16, 24, 32, 40};
  std::vector<GemvJob> work;
  for (std::size_t j = 0; j < 4; ++j) {
    Rng rng(200 + j);
    work.push_back({rng.matrix(shapes[j], shapes[j]), rng.vector(shapes[j]),
                    shapes[j]});
  }

  Runtime seq(cfg);
  std::vector<Outcome> expect;
  for (const auto& w : work) {
    expect.push_back(seq.run(OpDesc::gemv(w.a, w.n, w.n, w.x)));
  }

  Runtime rt(cfg);
  constexpr std::size_t kThreads = 8, kRounds = 5;
  std::vector<std::future<Outcome>> futs;
  for (std::size_t t = 0; t < kThreads; ++t) {
    for (std::size_t r = 0; r < kRounds; ++r) {
      for (const auto& w : work) {
        futs.push_back(rt.submit(OpDesc::gemv(w.a, w.n, w.n, w.x)));
      }
    }
  }

  for (std::size_t i = 0; i < futs.size(); ++i) {
    const Outcome got = futs[i].get();
    const Outcome& want = expect[i % work.size()];
    ASSERT_EQ(got.values.size(), want.values.size());
    for (std::size_t v = 0; v < got.values.size(); ++v) {
      ASSERT_EQ(got.values[v], want.values[v]) << "job " << i;
    }
    ASSERT_EQ(got.report.cycles, want.report.cycles) << "job " << i;
  }

  const auto& cache = rt.plan_cache();
  EXPECT_LE(cache.size(), 2u);
  EXPECT_EQ(cache.hits() + cache.misses(), kThreads * kRounds * work.size());
  const auto stats = rt.stats();
  EXPECT_EQ(stats.completed, kThreads * kRounds * work.size());
  EXPECT_EQ(stats.failed, 0u);
}

TEST(Runtime, ConfigErrorPropagatesThroughFuture) {
  Rng rng(8);
  const auto a = rng.matrix(32, 32);
  const auto x_bad = rng.vector(16);  // wrong length for a 32-col A

  Runtime rt({});
  auto fut = rt.submit(OpDesc::gemv(a, 32, 32, x_bad));
  EXPECT_THROW(fut.get(), ConfigError);

  // Plan-level failure (no SRAM panel edge tiles n=6 with the default m=8)
  // takes the same path.
  const auto small_a = rng.matrix(6, 6);
  const auto small_b = rng.matrix(6, 6);
  auto fut2 = rt.submit(OpDesc::gemm(small_a, small_b, 6));
  EXPECT_THROW(fut2.get(), ConfigError);

  const auto stats = rt.stats();
  EXPECT_EQ(stats.failed, 2u);
  EXPECT_EQ(stats.completed, 0u);
}

TEST(Runtime, FailedBatchStillSettlesEveryJob) {
  Rng rng(9);
  const auto u = rng.vector(32);
  const auto v = rng.vector(32);
  const auto bad = rng.vector(31);

  Runtime rt({});
  EXPECT_THROW(rt.run_batch({OpDesc::dot(u, v), OpDesc::dot(u, bad)}),
               ConfigError);
  const auto stats = rt.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.completed + stats.failed, 2u);
  EXPECT_EQ(stats.failed, 1u);
}

// ---- concurrent telemetry --------------------------------------------------
// Submitted jobs used to run with telemetry detached; they now record into
// thread-local shards merged into the shared session. These tests hold the
// new contract: full recording under concurrency, without perturbing
// outcomes.

TEST(RuntimeTelemetry, ConcurrentSubmitsRecordFullTelemetry) {
  const auto jobs = make_gemv_jobs(8, 96);

  telemetry::Session tel;
  ContextConfig cfg;
  cfg.telemetry = &tel;
  Runtime rt(cfg);

  // Detached reference for outcome bit-identity (telemetry-neutrality).
  Runtime detached({});

  std::vector<std::future<Outcome>> futs, futs_ref;
  for (const auto& j : jobs) {
    futs.push_back(rt.submit(OpDesc::gemv(j.a, j.n, j.n, j.x)));
    futs_ref.push_back(detached.submit(OpDesc::gemv(j.a, j.n, j.n, j.x)));
  }
  u64 total_cycles = 0;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const Outcome got = futs[j].get();
    const Outcome want = futs_ref[j].get();
    ASSERT_EQ(got.values.size(), want.values.size());
    for (std::size_t i = 0; i < got.values.size(); ++i) {
      ASSERT_EQ(got.values[i], want.values[i]) << "job " << j;
    }
    ASSERT_EQ(got.report.cycles, want.report.cycles) << "job " << j;
    total_cycles += got.report.cycles;
  }

  // Engine metrics and spans from every job landed in the session.
  EXPECT_TRUE(tel.metrics().contains("fpu.issue"));
  EXPECT_EQ(tel.spans().total_cycles("compute"), total_cycles);

  // Latency attribution histograms carry one sample per op and export
  // percentiles.
  const telemetry::Metric* e2e = tel.metrics().find("host.runtime.e2e");
  ASSERT_NE(e2e, nullptr);
  EXPECT_EQ(e2e->dist.count(), jobs.size());
  EXPECT_GT(telemetry::MetricsRegistry::percentile(*e2e, 0.95), 0.0);
  const telemetry::Metric* qw = tel.metrics().find("host.runtime.queue_wait");
  ASSERT_NE(qw, nullptr);
  EXPECT_EQ(qw->dist.count(), jobs.size());

  // After all futures settled, the sampled gauges must read drained.
  EXPECT_DOUBLE_EQ(tel.metrics().find("host.runtime.queue_depth")->value, 0.0);
  EXPECT_DOUBLE_EQ(tel.metrics().find("host.runtime.in_flight")->value, 0.0);

  // Every op left a flight record, and the exports stay valid JSON.
  EXPECT_EQ(tel.flight().total(), jobs.size());
  EXPECT_EQ(tel.flight().errors(), 0u);
  EXPECT_TRUE(telemetry::json_validate(telemetry::flight_to_json(tel.flight())));
  EXPECT_TRUE(telemetry::json_validate(telemetry::metrics_to_json(tel.metrics())));
  EXPECT_TRUE(telemetry::json_validate(telemetry::chrome_trace_json(tel, 200.0)));
}

TEST(RuntimeTelemetry, ConcurrentCountersMatchSequentialRecording) {
  // Order-independent telemetry (counters, histogram counts, span totals)
  // must come out identical whether the ops ran sequentially through run()
  // or concurrently through submit().
  const auto jobs = make_gemv_jobs(6, 64);

  telemetry::Session seq_tel;
  ContextConfig seq_cfg;
  seq_cfg.telemetry = &seq_tel;
  Runtime seq(seq_cfg);
  for (const auto& j : jobs) seq.run(OpDesc::gemv(j.a, j.n, j.n, j.x));

  telemetry::Session con_tel;
  ContextConfig con_cfg;
  con_cfg.telemetry = &con_tel;
  Runtime con(con_cfg);
  std::vector<std::future<Outcome>> futs;
  for (const auto& j : jobs) {
    futs.push_back(con.submit(OpDesc::gemv(j.a, j.n, j.n, j.x)));
  }
  for (auto& f : futs) f.get();

  con_tel.metrics().for_each([&](const std::string& name,
                                 const telemetry::Metric& m) {
    if (name.rfind("host.runtime.", 0) == 0) return;  // wall-clock metrics
    const telemetry::Metric* s = seq_tel.metrics().find(name);
    ASSERT_NE(s, nullptr) << name;
    if (m.kind == telemetry::MetricKind::Counter) {
      EXPECT_EQ(m.count, s->count) << name;
    } else if (m.kind == telemetry::MetricKind::Histogram) {
      EXPECT_EQ(m.dist.count(), s->dist.count()) << name;
      EXPECT_EQ(m.dist.min(), s->dist.min()) << name;
      EXPECT_EQ(m.dist.max(), s->dist.max()) << name;
    }
  });
  EXPECT_EQ(con_tel.spans().total_cycles("compute"),
            seq_tel.spans().total_cycles("compute"));
  EXPECT_EQ(con_tel.spans().spans().size(), seq_tel.spans().spans().size());
}

TEST(RuntimeTelemetry, RunStampsTraceContextLifecycle) {
  Rng rng(21);
  const auto a = rng.matrix(48, 48);
  const auto x = rng.vector(48);

  telemetry::Session tel;
  ContextConfig cfg;
  cfg.telemetry = &tel;
  Runtime rt(cfg);
  const Outcome out = rt.run(OpDesc::gemv(a, 48, 48, x));

  const auto snap = tel.flight().snapshot();
  ASSERT_EQ(snap.size(), 1u);
  const telemetry::TraceContext& tc = snap.front();
  EXPECT_STREQ(tc.kind, "gemv");
  EXPECT_EQ(tc.lane, 0u);  // synchronous path records on the caller lane
  EXPECT_EQ(tc.dequeue_ns, tc.submit_ns);  // no queue wait on run()
  EXPECT_GE(tc.plan_ns, tc.submit_ns);
  EXPECT_GE(tc.exec_ns, tc.plan_ns);
  EXPECT_GE(tc.complete_ns, tc.exec_ns);
  EXPECT_EQ(tc.cycles, out.report.cycles);
  EXPECT_FALSE(tc.failed);
}

TEST(RuntimeTelemetry, FailuresLandInTheFlightRecorder) {
  Rng rng(22);
  const auto a = rng.matrix(32, 32);
  const auto x_bad = rng.vector(16);

  telemetry::Session tel;
  ContextConfig cfg;
  cfg.telemetry = &tel;
  Runtime rt(cfg);

  EXPECT_THROW(rt.run(OpDesc::gemv(a, 32, 32, x_bad)), ConfigError);
  auto fut = rt.submit(OpDesc::gemv(a, 32, 32, x_bad));
  EXPECT_THROW(fut.get(), ConfigError);

  EXPECT_EQ(tel.flight().total(), 2u);
  EXPECT_EQ(tel.flight().errors(), 2u);
  for (const auto& tc : tel.flight().snapshot()) {
    EXPECT_TRUE(tc.failed);
    EXPECT_FALSE(tc.error.empty());
    EXPECT_GT(tc.complete_ns, 0u);
  }
  // The failed shard was discarded, not merged: no spans recorded.
  EXPECT_TRUE(tel.spans().empty());
}

TEST(RuntimeTelemetry, FlightRingBoundsRetainedHistory) {
  Rng rng(23);
  const auto u = rng.vector(32);
  const auto v = rng.vector(32);

  telemetry::Session tel(/*trace_capacity=*/4096, /*flight_capacity=*/4);
  ContextConfig cfg;
  cfg.telemetry = &tel;
  Runtime rt(cfg);
  for (int i = 0; i < 7; ++i) rt.run(OpDesc::dot(u, v));

  EXPECT_EQ(tel.flight().size(), 4u);
  EXPECT_EQ(tel.flight().total(), 7u);
  const auto snap = tel.flight().snapshot();
  ASSERT_EQ(snap.size(), 4u);
  for (std::size_t i = 1; i < snap.size(); ++i) {
    EXPECT_GT(snap[i].op_id, snap[i - 1].op_id);  // oldest-first, in order
  }
}

TEST(Runtime, ContextFacadeSharesTheRuntime) {
  Rng rng(10);
  const auto u = rng.vector(128);
  const auto v = rng.vector(128);

  Context ctx;
  const auto direct = ctx.dot(u, v);
  const auto via_rt = ctx.runtime().run(OpDesc::dot(u, v));
  EXPECT_EQ(direct.value, via_rt.values.at(0));
  EXPECT_EQ(direct.report.cycles, via_rt.report.cycles);
  // The facade and the runtime share one plan cache.
  EXPECT_GE(ctx.runtime().plan_cache().hits(), 1u);
}

// DotCall is the deprecated source-compatibility alias for DotResult.
static_assert(std::is_same_v<host::DotCall, host::DotResult>);

TEST(ParallelFor, CoversRangeExactlyOnce) {
  for (std::size_t n : {0u, 1u, 7u, 64u, 1000u}) {
    std::vector<std::atomic<int>> hits(n);
    parallel_for(0, n, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "i=" << i << " n=" << n;
    }
  }
}

TEST(ParallelFor, RespectsWorkerCountAndOffsets) {
  std::vector<int> out(100, 0);
  parallel_for(10, 60, [&](std::size_t i) { out[i] = static_cast<int>(i); },
               3);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(out[i], (i >= 10 && i < 60) ? static_cast<int>(i) : 0);
  }
}

TEST(ParallelFor, NestedInsidePoolJobDoesNotDeadlock) {
  // Saturate the pool with jobs that themselves call parallel_for: the
  // caller-participates design means each inner loop can always make
  // progress on its own thread even with every worker busy.
  ThreadPool& pool = ThreadPool::shared();
  const std::size_t jobs = 2 * pool.size() + 2;
  std::vector<std::future<long>> futs;
  for (std::size_t j = 0; j < jobs; ++j) {
    futs.push_back(pool.submit([] {
      std::atomic<long> sum{0};
      parallel_for(0, 1000, [&](std::size_t i) {
        sum.fetch_add(static_cast<long>(i), std::memory_order_relaxed);
      });
      return sum.load();
    }));
  }
  for (auto& f : futs) EXPECT_EQ(f.get(), 999L * 1000L / 2);
}

// ---- small-op executor: pinned plans, slab state, batch fast path ----------

namespace {

/// Full bit-exact outcome equality: every value AND the timing report.
void expect_outcome_eq(const Outcome& got, const Outcome& want,
                       const std::string& what) {
  ASSERT_EQ(got.values.size(), want.values.size()) << what;
  for (std::size_t i = 0; i < got.values.size(); ++i) {
    EXPECT_EQ(got.values[i], want.values[i]) << what << " values[" << i << "]";
  }
  EXPECT_EQ(got.report.cycles, want.report.cycles) << what;
  EXPECT_EQ(got.report.stall_cycles, want.report.stall_cycles) << what;
  EXPECT_EQ(got.report.flops, want.report.flops) << what;
}

}  // namespace

TEST(Runtime, PinnedPlanBitIdenticalToLruPath) {
  Rng rng(21);
  const auto u = rng.vector(48), v = rng.vector(48);
  const auto a = rng.matrix(24, 24);
  const auto x = rng.vector(24);

  Runtime rt({});
  const Outcome dref = rt.run(OpDesc::dot(u, v));
  const Outcome gref = rt.run(OpDesc::gemv(a, 24, 24, x));

  const host::PlanHandle hd = rt.pin_plan(OpDesc::dot(u, v));
  const host::PlanHandle hg = rt.pin_plan(OpDesc::gemv(a, 24, 24, x));
  ASSERT_TRUE(hd.valid());
  ASSERT_TRUE(hg.valid());

  expect_outcome_eq(rt.run(OpDesc::dot(u, v), hd), dref, "pinned dot run");
  expect_outcome_eq(rt.submit(OpDesc::dot(u, v), hd).get(), dref,
                    "pinned dot submit");
  expect_outcome_eq(rt.run(OpDesc::gemv(a, 24, 24, x), hg), gref,
                    "pinned gemv run");
  // A handle for the wrong shape is detected, not trusted: the mismatch
  // falls back to the ordinary cache probe and still computes the right op.
  expect_outcome_eq(rt.run(OpDesc::dot(u, v), hg), dref, "mismatched handle");
  // A default-constructed (invalid) handle behaves like no handle at all.
  expect_outcome_eq(rt.run(OpDesc::dot(u, v), host::PlanHandle{}), dref,
                    "invalid handle");
}

TEST(Runtime, PinnedPlansExemptFromEviction) {
  ContextConfig cfg;
  cfg.plan_cache_capacity = 2;
  Runtime rt(cfg);
  const auto& cache = rt.plan_cache();

  Rng rng(22);
  const auto a16 = rng.matrix(16, 16);
  const auto x16 = rng.vector(16);

  rt.run(OpDesc::gemv(a16, 16, 16, x16));  // builds an LRU entry
  EXPECT_EQ(cache.size(), 1u);
  const host::PlanHandle h = rt.pin_plan(OpDesc::gemv(a16, 16, 16, x16));
  ASSERT_TRUE(h.valid());
  // Pinning promotes the existing LRU entry rather than rebuilding it.
  EXPECT_EQ(cache.pinned_count(), 1u);
  EXPECT_EQ(cache.size(), 0u);

  // Churn far past the LRU capacity: the pinned plan must survive.
  for (std::size_t n : {24, 32, 40, 48, 56, 64}) {
    Rng r(100 + n);
    const auto a = r.matrix(n, n);
    const auto xx = r.vector(n);
    rt.run(OpDesc::gemv(a, n, n, xx));
  }
  EXPECT_LE(cache.size(), 2u);
  EXPECT_EQ(cache.pinned_count(), 1u);

  const u64 h0 = cache.hits();
  rt.run(OpDesc::gemv(a16, 16, 16, x16));  // pinned probe counts as a hit
  EXPECT_EQ(cache.hits(), h0 + 1);

  rt.pin_plan(OpDesc::gemv(a16, 16, 16, x16));  // idempotent
  EXPECT_EQ(cache.pinned_count(), 1u);
}

TEST(Runtime, PinnedCountPublishedAsGauge) {
  telemetry::Session tel;
  ContextConfig cfg;
  cfg.telemetry = &tel;
  Runtime rt(cfg);

  Rng rng(26);
  const auto u = rng.vector(32), v = rng.vector(32);
  rt.pin_plan(OpDesc::dot(u, v));
  rt.run(OpDesc::dot(u, v));  // run publishes the host.plan.* gauges

  auto lock = tel.lock();
  const telemetry::Metric* m = tel.metrics().find("host.plan.pinned");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->value, 1.0);
}

TEST(Runtime, RunBatchFastPathMatchesPerOpRuns) {
  Rng rng(23);
  // Long same-shape runs (the staged fast path) with distinct data per op,
  // plus a shape switch and a trailing singleton — every outcome must be
  // bit-identical to a sequential per-op run, cycles included.
  std::vector<std::vector<double>> us, vs, xs;
  for (int i = 0; i < 12; ++i) {
    us.push_back(rng.vector(40));
    vs.push_back(rng.vector(40));
  }
  const auto a = rng.matrix(20, 20);
  for (int i = 0; i < 6; ++i) xs.push_back(rng.vector(20));

  std::vector<OpDesc> descs;
  for (int i = 0; i < 12; ++i) descs.push_back(OpDesc::dot(us[i], vs[i]));
  for (int i = 0; i < 6; ++i) descs.push_back(OpDesc::gemv(a, 20, 20, xs[i]));
  descs.push_back(OpDesc::dot(us[0], vs[0]));

  Runtime rt({});
  Runtime seq({});
  const auto outs = rt.run_batch(descs);
  ASSERT_EQ(outs.size(), descs.size());
  for (std::size_t i = 0; i < descs.size(); ++i) {
    expect_outcome_eq(outs[i], seq.run(descs[i]), cat("batch[", i, "]"));
  }
}

TEST(Runtime, RunBatchFastPathPropagatesMidGroupErrors) {
  Rng rng(24);
  const auto u = rng.vector(32), v = rng.vector(32);
  const auto bad = rng.vector(16);  // wrong length, same PlanKey as dot(u,v)

  Runtime rt({});
  EXPECT_THROW(
      rt.run_batch({OpDesc::dot(u, v), OpDesc::dot(u, bad), OpDesc::dot(u, v)}),
      ConfigError);
  // Every job settled: the two good ops completed, the bad one failed.
  const auto stats = rt.stats();
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.failed, 1u);
}

TEST(Runtime, TinySubmitStormAcrossShapesWithTinyCache) {
  // The small-op soak the executor was rebuilt for: 10k tiny submits across
  // four shapes through a capacity-2 plan cache, two shapes pinned, so the
  // two unpinned shapes continuously evict each other while pinned handles
  // bypass the churn. Every single future must be bit-identical (values and
  // cycles) to a sequential reference run.
  ContextConfig cfg;
  cfg.plan_cache_capacity = 2;
  Runtime rt(cfg);

  Rng rng(25);
  const auto u = rng.vector(24), v = rng.vector(24);
  const auto u2 = rng.vector(48), v2 = rng.vector(48);
  const auto a = rng.matrix(12, 12);
  const auto x = rng.vector(12);
  const auto a2 = rng.matrix(16, 16);
  const auto x2 = rng.vector(16);
  const OpDesc shapes[4] = {OpDesc::dot(u, v), OpDesc::dot(u2, v2),
                            OpDesc::gemv(a, 12, 12, x),
                            OpDesc::gemv(a2, 16, 16, x2)};
  const host::PlanHandle pins[2] = {rt.pin_plan(shapes[0]),
                                    rt.pin_plan(shapes[2])};

  Runtime seq({});
  Outcome want[4];
  for (int s = 0; s < 4; ++s) want[s] = seq.run(shapes[s]);

  const auto pool_work0 =
      ThreadPool::shared().local_pops() + ThreadPool::shared().steals();

  constexpr int kOps = 10000;
  std::vector<std::future<Outcome>> futs;
  futs.reserve(kOps);
  for (int i = 0; i < kOps; ++i) {
    const int s = i & 3;
    if (s == 0) {
      futs.push_back(rt.submit(shapes[0], pins[0]));
    } else if (s == 2) {
      futs.push_back(rt.submit(shapes[2], pins[1]));
    } else {
      futs.push_back(rt.submit(shapes[s]));
    }
  }

  int value_mismatches = 0, cycle_mismatches = 0;
  for (int i = 0; i < kOps; ++i) {
    const Outcome got = futs[i].get();
    const Outcome& ref = want[i & 3];
    if (got.values != ref.values) ++value_mismatches;
    if (got.report.cycles != ref.report.cycles) ++cycle_mismatches;
  }
  EXPECT_EQ(value_mismatches, 0);
  EXPECT_EQ(cycle_mismatches, 0);
  EXPECT_EQ(rt.stats().completed, static_cast<u64>(kOps));
  EXPECT_EQ(rt.stats().failed, 0u);
  EXPECT_EQ(rt.plan_cache().pinned_count(), 2u);
  // Every op was executed off a worker deque (locally popped or stolen).
  const auto pool_work1 =
      ThreadPool::shared().local_pops() + ThreadPool::shared().steals();
  EXPECT_GE(pool_work1 - pool_work0, static_cast<unsigned long long>(kOps));
}
