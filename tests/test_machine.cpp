// Machine-model tests: the area/clock model must reproduce the paper's
// reported configurations exactly (Tables 2/3/4, Fig 9) and extrapolate
// sensibly.
#include <gtest/gtest.h>

#include "machine/area.hpp"
#include "machine/chassis.hpp"
#include "machine/device.hpp"
#include "machine/node.hpp"
#include "machine/system.hpp"

using namespace xd;
using machine::AreaModel;
using machine::ComputeNode;
using machine::NodeConfig;

TEST(Device, Catalog) {
  const auto vp50 = machine::xc2vp50();
  EXPECT_EQ(vp50.slices, 23616u);
  EXPECT_EQ(vp50.io_pins, 852u);
  EXPECT_EQ(vp50.bram_words(), 4ull * 1024 * 1024 / 64);
  const auto vp100 = machine::xc2vp100();
  EXPECT_EQ(vp100.slices, 44096u);
  EXPECT_EQ(machine::device_by_name("XC2VP100").slices, 44096u);
  EXPECT_THROW(machine::device_by_name("XC7V2000T"), ConfigError);
}

TEST(AreaModel, Table2Constants) {
  AreaModel area;
  EXPECT_EQ(area.cores().adder_slices, 892u);
  EXPECT_EQ(area.cores().multiplier_slices, 835u);
  EXPECT_EQ(area.cores().adder_stages, 14u);
  EXPECT_EQ(area.cores().multiplier_stages, 11u);
  EXPECT_DOUBLE_EQ(area.cores().clock_mhz, 170.0);
  EXPECT_EQ(area.reduction_circuit_slices(), 1658u);
}

TEST(AreaModel, Table3DesignAreas) {
  AreaModel area;
  const auto dot = area.dot_design(2);
  EXPECT_EQ(dot.slices, 5210u);  // Table 3 Level 1 row
  EXPECT_DOUBLE_EQ(dot.clock_mhz, 170.0);
  const auto mxv = area.mxv_tree_design(4);
  EXPECT_EQ(mxv.slices, 9669u);  // Table 3 Level 2 row
  EXPECT_DOUBLE_EQ(mxv.clock_mhz, 170.0);

  const auto vp50 = machine::xc2vp50();
  EXPECT_NEAR(dot.fraction_of(vp50), 0.22, 0.005);
  EXPECT_NEAR(mxv.fraction_of(vp50), 0.41, 0.005);
}

TEST(AreaModel, Table4Xd1Designs) {
  AreaModel area;
  const auto mxv = area.mxv_design_xd1(4);
  EXPECT_EQ(mxv.slices, 13772u);  // Table 4 Level 2 row
  EXPECT_DOUBLE_EQ(mxv.clock_mhz, 164.0);
  const auto mm = area.mm_design_xd1(8);
  EXPECT_EQ(mm.slices, 21029u);  // Table 4 Level 3 row
  EXPECT_DOUBLE_EQ(mm.clock_mhz, 130.0);

  const auto vp50 = machine::xc2vp50();
  EXPECT_NEAR(mxv.fraction_of(vp50), 0.58, 0.005);
  EXPECT_NEAR(mm.fraction_of(vp50), 0.89, 0.005);
}

TEST(AreaModel, Fig9ClockDegradation) {
  AreaModel area;
  EXPECT_DOUBLE_EQ(area.mm_clock_mhz(1), 155.0);
  EXPECT_DOUBLE_EQ(area.mm_clock_mhz(10), 125.0);
  EXPECT_EQ(area.mm_design(1).slices, 2158u);
  EXPECT_EQ(area.mm_design(10).slices, 21580u);
  // Monotone degradation.
  for (unsigned k = 2; k <= 10; ++k) {
    EXPECT_LT(area.mm_clock_mhz(k), area.mm_clock_mhz(k - 1));
  }
}

TEST(AreaModel, MaxPEs) {
  AreaModel area;
  const auto vp50 = machine::xc2vp50();
  EXPECT_EQ(area.max_mm_pes(vp50, /*with_xd1_interface=*/false), 10u);
  EXPECT_EQ(area.max_mm_pes(vp50, /*with_xd1_interface=*/true), 8u);
  const auto vp100 = machine::xc2vp100();
  EXPECT_GE(area.max_mm_pes(vp100, false), 19u);  // ~2x the VP50
}

TEST(AreaModel, ProjectedPEsForImprovedUnits) {
  AreaModel area;
  const auto vp50 = machine::xc2vp50();
  const auto vp100 = machine::xc2vp100();
  // Implied by the paper's quoted chassis projections (Sec 6.4.1).
  EXPECT_EQ(area.projected_pes(vp50, 1600), 15u);
  EXPECT_EQ(area.projected_pes(vp100, 1600), 28u);
  EXPECT_EQ(area.projected_pes(vp50, 2000), 12u);
}

TEST(Node, StructureAndBandwidth) {
  NodeConfig cfg;
  cfg.clock_mhz = 164.0;
  ComputeNode node(cfg);
  EXPECT_EQ(node.sram_bank_count(), 4u);
  EXPECT_EQ(node.sram_total_words(), 16ull * 1024 * 1024 / 8);
  EXPECT_DOUBLE_EQ(node.clock_mhz(), 164.0);

  // Stream one word from each bank per cycle: achieved SRAM bandwidth is the
  // paper's 5.9 GB/s (4 banks x 9 bytes... modeled as 8-byte words: 5.25;
  // with the parity byte the hardware moves 5.9 — we check the word rate).
  for (int cyc = 0; cyc < 1000; ++cyc) {
    node.tick();
    for (unsigned b = 0; b < 4; ++b) node.sram(b).read(0);
  }
  EXPECT_NEAR(node.sram_achieved_bytes_per_s(), 4.0 * 8 * 164e6, 1e6);
}

TEST(Node, DmaStagesThroughRapidArray) {
  NodeConfig cfg;
  cfg.clock_mhz = 164.0;
  cfg.dram_bytes_per_s = 1.3e9;  // the measured Table 4 staging rate
  cfg.dram_words = 1 << 16;
  ComputeNode node(cfg);
  node.dram().storage().load(0, std::vector<u64>(4096, 7));
  node.dma().start(node.dram().storage(), 0, node.sram(0).storage(), 0, 4096);
  u64 cycles = 0;
  while (node.dma().active()) {
    node.tick();
    ++cycles;
    ASSERT_LT(cycles, 100'000u);
  }
  // 4096 words * 8 B at 1.3 GB/s at 164 MHz -> ~4135 cycles.
  const double expect = 4096.0 / (1.3e9 / (8 * 164e6));
  EXPECT_NEAR(static_cast<double>(cycles), expect, expect * 0.02);
}

TEST(Chassis, SixNodesRingLinks) {
  machine::ChassisConfig cfg;
  machine::Chassis ch(cfg);
  EXPECT_EQ(ch.node_count(), 6u);
  EXPECT_NO_THROW(ch.forward_link(4));
  EXPECT_NO_THROW(ch.backward_link(0));
  EXPECT_THROW(ch.forward_link(5), std::out_of_range);
  ch.tick();
  EXPECT_TRUE(ch.forward_link(0).can_transfer(1.0));
}

TEST(System, TwelveChassisInstallation) {
  machine::SystemConfig cfg;
  cfg.chassis.node.dram_words = 1024;  // keep the test allocation small
  cfg.chassis.node.sram_bank_words = 1024;
  machine::System sys(cfg);
  EXPECT_EQ(sys.chassis_count(), 12u);
  EXPECT_EQ(sys.total_fpgas(), 72u);
  sys.tick();
  EXPECT_NO_THROW(sys.chassis_link(10));
  EXPECT_THROW(sys.chassis_link(11), std::out_of_range);
}

#include "machine/status_regs.hpp"

TEST(StatusRegisters, HandshakeCostsLinkRoundTrips) {
  NodeConfig cfg;
  cfg.dram_words = 1024;
  ComputeNode node(cfg);
  machine::StatusRegisters regs(node, /*round_trip_cycles=*/40);

  u64 cycles = regs.host_write(machine::StatusRegisters::Reg::ProblemSize, 1024);
  EXPECT_GE(cycles, 40u);
  EXPECT_EQ(regs.fpga_read(machine::StatusRegisters::Reg::ProblemSize), 1024u);

  regs.fpga_write(machine::StatusRegisters::Reg::Status,
                  machine::StatusRegisters::kStatusDone);
  u64 v = 0;
  regs.host_read(machine::StatusRegisters::Reg::Status, v);
  EXPECT_EQ(v, machine::StatusRegisters::kStatusDone);
  EXPECT_EQ(regs.host_accesses(), 2u);
}

TEST(StatusRegisters, PollUntilDoneAndBudget) {
  NodeConfig cfg;
  cfg.dram_words = 1024;
  ComputeNode node(cfg);
  machine::StatusRegisters regs(node, 40);
  regs.fpga_write(machine::StatusRegisters::Reg::Status,
                  machine::StatusRegisters::kStatusBusy);
  // Never completes: budget trips.
  EXPECT_THROW(regs.host_poll_until(machine::StatusRegisters::kStatusDone, 100,
                                    5000),
               SimError);
  // Completes immediately once the design raises Done.
  regs.fpga_write(machine::StatusRegisters::Reg::Status,
                  machine::StatusRegisters::kStatusDone);
  const u64 cycles = regs.host_poll_until(
      machine::StatusRegisters::kStatusDone, 100, 5000);
  EXPECT_GE(cycles, 40u);
  EXPECT_LT(cycles, 200u);
}

TEST(StatusRegisters, HandshakeOverheadIsNegligibleVsGemv) {
  // Sec 6.2's protocol: a handful of register accesses around a 262k-cycle
  // computation — the control overhead the paper silently absorbs.
  NodeConfig cfg;
  cfg.dram_words = 1024;
  ComputeNode node(cfg);
  machine::StatusRegisters regs(node, 40);
  u64 overhead = 0;
  overhead += regs.host_write(machine::StatusRegisters::Reg::ProblemSize, 1024);
  overhead += regs.host_write(machine::StatusRegisters::Reg::Command,
                              machine::StatusRegisters::kCmdInit);
  regs.fpga_write(machine::StatusRegisters::Reg::Status,
                  machine::StatusRegisters::kStatusDone);
  overhead += regs.host_poll_until(machine::StatusRegisters::kStatusDone, 200,
                                   100000);
  EXPECT_LT(static_cast<double>(overhead), 0.01 * 262144.0);
}

TEST(System, TickAdvancesEveryLinkInLockstepAfterProducers) {
  // The tick-ordering contract of machine/system.hpp: no channel has credit
  // before the system's first tick, and after N ticks every link — intra-
  // and inter-chassis — reports exactly N cycles.
  machine::SystemConfig cfg;
  cfg.chassis_count = 3;
  cfg.chassis.nodes = 2;
  cfg.chassis.node.dram_words = 1024;
  cfg.chassis.node.sram_bank_words = 1024;
  machine::System sys(cfg);

  EXPECT_FALSE(sys.chassis(0).forward_link(0).can_transfer(1.0));
  EXPECT_FALSE(sys.chassis_link(0).can_transfer(1.0));

  for (int t = 0; t < 5; ++t) sys.tick();
  for (unsigned c = 0; c < sys.chassis_count(); ++c) {
    auto& ch = sys.chassis(c);
    for (unsigned i = 0; i + 1 < ch.node_count(); ++i) {
      EXPECT_EQ(ch.forward_link(i).cycles(), 5u);
      EXPECT_EQ(ch.backward_link(i).cycles(), 5u);
    }
  }
  for (unsigned c = 0; c + 1 < sys.chassis_count(); ++c)
    EXPECT_EQ(sys.chassis_link(c).cycles(), 5u);

  // Credit has accrued: a word can now cross any link in either layer.
  EXPECT_TRUE(sys.chassis(1).forward_link(0).can_transfer(1.0));
  EXPECT_TRUE(sys.chassis_link(1).can_transfer(1.0));
}
