// CBLAS-compatibility layer tests: strides, transposes, alpha/beta,
// non-square shapes and the zero-padding path into the GEMM engine.
#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hpp"
#include "host/blas_compat.hpp"
#include "host/reference.hpp"

using namespace xd;
using host::compat_ddot;
using host::compat_dgemm;
using host::compat_dgemv;
using host::Context;
using host::Transpose;

namespace {
const Context& ctx() {
  static Context c;
  return c;
}
}  // namespace

TEST(CompatDot, UnitStrides) {
  Rng rng(1);
  const auto x = rng.vector(100);
  const auto y = rng.vector(100);
  EXPECT_NEAR(compat_ddot(ctx(), 100, x.data(), 1, y.data(), 1),
              host::ref_dot(x, y), 1e-12);
}

TEST(CompatDot, PositiveStrides) {
  Rng rng(2);
  const auto x = rng.vector(300);
  const auto y = rng.vector(200);
  // x stride 3, y stride 2, n = 100.
  double expect = 0.0;
  for (int i = 0; i < 100; ++i) expect += x[3 * i] * y[2 * i];
  EXPECT_NEAR(compat_ddot(ctx(), 100, x.data(), 3, y.data(), 2), expect, 1e-12);
}

TEST(CompatDot, NegativeStrideWalksBackwards) {
  const std::vector<double> x = {1.0, 2.0, 3.0};
  const std::vector<double> y = {10.0, 20.0, 30.0};
  // BLAS: incx = -1 pairs x[2] with y[0], x[1] with y[1], x[0] with y[2].
  const double got = compat_ddot(ctx(), 3, x.data(), -1, y.data(), 1);
  EXPECT_NEAR(got, 3.0 * 10 + 2.0 * 20 + 1.0 * 30, 1e-12);
}

TEST(CompatDot, ZeroLength) {
  EXPECT_EQ(compat_ddot(ctx(), 0, nullptr, 1, nullptr, 1), 0.0);
}

TEST(CompatGemv, PlainAndScaled) {
  Rng rng(3);
  const std::size_t m = 40, n = 56;
  const auto a = rng.matrix(m, n);
  const auto x = rng.vector(n);
  auto y = rng.vector(m);
  const auto y0 = y;
  compat_dgemv(ctx(), Transpose::No, m, n, 2.0, a.data(), n, x.data(), 1, 0.5,
               y.data(), 1);
  const auto ax = host::ref_gemv(a, m, n, x);
  for (std::size_t i = 0; i < m; ++i) {
    EXPECT_NEAR(y[i], 2.0 * ax[i] + 0.5 * y0[i], 1e-9) << i;
  }
}

TEST(CompatGemv, TransposedOperand) {
  Rng rng(4);
  const std::size_t m = 32, n = 48;
  const auto a = rng.matrix(m, n);
  const auto x = rng.vector(m);
  std::vector<double> y(n, 0.0);
  compat_dgemv(ctx(), Transpose::Yes, m, n, 1.0, a.data(), n, x.data(), 1, 0.0,
               y.data(), 1);
  // Reference A^T x.
  for (std::size_t j = 0; j < n; ++j) {
    double s = 0.0;
    for (std::size_t i = 0; i < m; ++i) s += a[i * n + j] * x[i];
    EXPECT_NEAR(y[j], s, 1e-9) << j;
  }
}

TEST(CompatGemv, LeadingDimensionSubmatrix) {
  Rng rng(5);
  const std::size_t lda = 64, m = 20, n = 30;
  const auto big = rng.matrix(m, lda);
  const auto x = rng.vector(n);
  std::vector<double> y(m, 0.0);
  compat_dgemv(ctx(), Transpose::No, m, n, 1.0, big.data(), lda, x.data(), 1,
               0.0, y.data(), 1);
  for (std::size_t i = 0; i < m; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < n; ++j) s += big[i * lda + j] * x[j];
    EXPECT_NEAR(y[i], s, 1e-9) << i;
  }
}

TEST(CompatGemv, AlphaZeroSkipsCompute) {
  std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
  std::vector<double> x = {1.0, 1.0};
  std::vector<double> y = {5.0, 7.0};
  compat_dgemv(ctx(), Transpose::No, 2, 2, 0.0, a.data(), 2, x.data(), 1, 3.0,
               y.data(), 1);
  EXPECT_EQ(y[0], 15.0);
  EXPECT_EQ(y[1], 21.0);
}

TEST(CompatGemm, SquareMultipleOfBlock) {
  Rng rng(6);
  const std::size_t n = 32;
  const auto a = rng.matrix(n, n);
  const auto b = rng.matrix(n, n);
  std::vector<double> c(n * n, 0.0);
  compat_dgemm(ctx(), Transpose::No, Transpose::No, n, n, n, 1.0, a.data(), n,
               b.data(), n, 0.0, c.data(), n);
  EXPECT_LT(host::max_abs_diff(c, host::ref_gemm(a, b, n)), 1e-9);
}

TEST(CompatGemm, NonSquarePaddedShapes) {
  Rng rng(7);
  const std::size_t m = 13, n = 21, k = 17;
  const auto a = rng.matrix(m, k);
  const auto b = rng.matrix(k, n);
  std::vector<double> c(m * n, 0.0);
  compat_dgemm(ctx(), Transpose::No, Transpose::No, m, n, k, 1.0, a.data(), k,
               b.data(), n, 0.0, c.data(), n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::size_t q = 0; q < k; ++q) s += a[i * k + q] * b[q * n + j];
      ASSERT_NEAR(c[i * n + j], s, 1e-10) << i << "," << j;
    }
  }
}

TEST(CompatGemm, TransposesAndScaling) {
  Rng rng(8);
  const std::size_t m = 16, n = 12, k = 20;
  const auto a = rng.matrix(k, m);  // op(A) = A^T: m x k
  const auto b = rng.matrix(n, k);  // op(B) = B^T: k x n
  auto c = rng.matrix(m, n);
  const auto c0 = c;
  compat_dgemm(ctx(), Transpose::Yes, Transpose::Yes, m, n, k, -1.5, a.data(),
               m, b.data(), k, 2.0, c.data(), n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::size_t q = 0; q < k; ++q) s += a[q * m + i] * b[j * k + q];
      ASSERT_NEAR(c[i * n + j], -1.5 * s + 2.0 * c0[i * n + j], 1e-9)
          << i << "," << j;
    }
  }
}

TEST(CompatGemm, KZeroScalesCOnly) {
  std::vector<double> c = {1.0, 2.0, 3.0, 4.0};
  compat_dgemm(ctx(), Transpose::No, Transpose::No, 2, 2, 0, 1.0, nullptr, 1,
               nullptr, 1, 0.5, c.data(), 2);
  EXPECT_EQ(c, (std::vector<double>{0.5, 1.0, 1.5, 2.0}));
}

TEST(CompatFreeFunctions, DefaultContext) {
  Rng rng(9);
  const auto x = rng.vector(64);
  const auto y = rng.vector(64);
  EXPECT_NEAR(host::xd_ddot(64, x.data(), 1, y.data(), 1), host::ref_dot(x, y),
              1e-12);
}

TEST(CompatGemm, StridedCLeavesPaddingUntouched) {
  Rng rng(10);
  const std::size_t m = 8, n = 6, k = 8, ldc = 10;
  const auto a = rng.matrix(m, k);
  const auto b = rng.matrix(k, n);
  std::vector<double> c(m * ldc, -7.0);  // sentinel in the gutter columns
  compat_dgemm(ctx(), Transpose::No, Transpose::No, m, n, k, 1.0, a.data(), k,
               b.data(), n, 0.0, c.data(), ldc);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::size_t q = 0; q < k; ++q) s += a[i * k + q] * b[q * n + j];
      ASSERT_NEAR(c[i * ldc + j], s, 1e-10);
    }
    for (std::size_t j = n; j < ldc; ++j) {
      ASSERT_EQ(c[i * ldc + j], -7.0) << "gutter corrupted at " << i << "," << j;
    }
  }
}
