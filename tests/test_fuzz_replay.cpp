// Golden replay of the differential-fuzz corpus plus harness self-tests:
// the corpus cases must keep passing every invariant, the case serializer
// must round-trip, generation must be deterministic per (seed, index), and
// the shrinker must keep reproducing the same invariant it started from.
#include <gtest/gtest.h>

#include <cmath>

#include "testing/fuzz.hpp"

using namespace xd;
using namespace xd::testing;

#ifndef XD_CORPUS_FILE
#define XD_CORPUS_FILE "tests/corpus/regressions.fz"
#endif

TEST(FuzzReplay, CorpusPassesEveryInvariant) {
  std::vector<std::string> lines;
  const auto sum = replay_corpus(XD_CORPUS_FILE,
                                 [&](const std::string& s) { lines.push_back(s); });
  EXPECT_GT(sum.cases_run, 0u) << "corpus file missing or empty";
  EXPECT_EQ(sum.failures, 0u) << (lines.empty() ? "" : lines.front());
}

TEST(FuzzReplay, SeededSweepIsClean) {
  FuzzOptions opts;
  opts.seed = 2005;
  opts.ops = 60;
  opts.log = [](const std::string&) {};
  EXPECT_EQ(run_fuzz(opts).failures, 0u);

  opts.seed = 42;
  opts.ops = 40;
  EXPECT_EQ(run_fuzz(opts).failures, 0u);
}

// The hand-minimized boundary regressions, pinned in code as well as in the
// corpus so a corpus edit cannot silently drop them.
TEST(FuzzReplay, HandMinimizedRegressions) {
  const char* lines[] = {
      "xdfuzz1 kind=dot err=zero_shape vseed=1",       // empty vector dot
      "xdfuzz1 kind=gemv rows=1 cols=64 vseed=1",      // 1 x N
      "xdfuzz1 kind=gemv rows=64 cols=1 vseed=1",      // N x 1
      "xdfuzz1 kind=gemm_array n=8 vseed=1 mm_k=1 mm_m=8",  // single-PE MM
      "xdfuzz1 kind=spmxv rows=8 cols=8 vseed=1",      // all-zero sparse
  };
  for (const char* line : lines) {
    const auto fail = check_case(FuzzCase::from_line(line));
    EXPECT_FALSE(fail.has_value())
        << line << " -> [" << fail->invariant << "] " << fail->detail;
  }
}

TEST(FuzzCaseIo, LineRoundTripsEveryField) {
  for (u64 i = 0; i < 200; ++i) {
    const FuzzCase fc = generate_case(7, i);
    const FuzzCase back = FuzzCase::from_line(fc.to_line());
    EXPECT_EQ(back.to_line(), fc.to_line());
    EXPECT_EQ(back.kind, fc.kind);
    EXPECT_EQ(back.placement, fc.placement);
    EXPECT_EQ(back.arch, fc.arch);
    EXPECT_EQ(back.mode, fc.mode);
    EXPECT_EQ(back.sabotage, fc.sabotage);
    EXPECT_EQ(back.rows, fc.rows);
    EXPECT_EQ(back.cols, fc.cols);
    EXPECT_EQ(back.n, fc.n);
    EXPECT_EQ(back.batch, fc.batch);
    EXPECT_EQ(back.nnz_per_row, fc.nnz_per_row);
    EXPECT_EQ(back.vseed, fc.vseed);
    EXPECT_EQ(back.dot_k, fc.dot_k);
    EXPECT_EQ(back.gemv_k, fc.gemv_k);
    EXPECT_EQ(back.mm_k, fc.mm_k);
    EXPECT_EQ(back.mm_m, fc.mm_m);
    EXPECT_EQ(back.mm_b, fc.mm_b);
    EXPECT_EQ(back.mm_l, fc.mm_l);
  }
}

TEST(FuzzCaseIo, MalformedLinesThrow) {
  EXPECT_THROW(FuzzCase::from_line("kind=dot cols=4"), ConfigError);  // no header
  EXPECT_THROW(FuzzCase::from_line("xdfuzz1 cols=4"), ConfigError);   // no kind
  EXPECT_THROW(FuzzCase::from_line("xdfuzz1 kind=quux"), ConfigError);
  EXPECT_THROW(FuzzCase::from_line("xdfuzz1 kind=dot cols=abc"), ConfigError);
  EXPECT_THROW(FuzzCase::from_line("xdfuzz1 kind=dot frob=1"), ConfigError);
}

TEST(FuzzGenerate, DeterministicPerSeedAndIndex) {
  for (u64 i = 0; i < 100; ++i) {
    EXPECT_EQ(generate_case(11, i).to_line(), generate_case(11, i).to_line());
  }
  // Different seeds decorrelate: at least some of the first 20 cases differ.
  int differing = 0;
  for (u64 i = 0; i < 20; ++i) {
    if (generate_case(1, i).to_line() != generate_case(2, i).to_line()) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 10);
}

TEST(FuzzGenerate, MaterializedCasesAreHonestUnlessSabotaged) {
  // Every non-sabotaged generated case must pass validation: OpDesc::validate
  // for single-op kinds, GraphDesc::validate for graph kinds (whose node
  // descs legitimately carry null edge-fed slots). Solver kinds have no
  // descriptor and are skipped.
  for (u64 i = 0; i < 150; ++i) {
    const FuzzCase fc = generate_case(13, i);
    if (fc.kind == FuzzKind::JacobiBatch || fc.kind == FuzzKind::Cg) continue;
    CaseData data;
    materialize(fc, data);
    if (fc.sabotage == Sabotage::None) {
      if (fc.kind == FuzzKind::Graph) {
        EXPECT_NO_THROW(data.graph.validate()) << fc.to_line();
      } else {
        EXPECT_NO_THROW(data.desc.validate()) << fc.to_line();
      }
    }
  }
}

TEST(FuzzValues, ExactModeDrawsNonzeroSmallIntegers) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    const double v = draw_value(rng, ValueMode::Exact);
    EXPECT_NE(v, 0.0);
    EXPECT_LE(std::fabs(v), 32.0);
    EXPECT_EQ(v, std::nearbyint(v)) << "Exact mode must draw integers";
  }
}

TEST(FuzzShrink, KeepsFailingTheSameInvariant) {
  // A case the harness genuinely rejects: the column GEMV's RAW-hazard
  // constraint (ceil(rows/k) >= adder stages) fails without being marked
  // expect_error, so check_case reports unexpected-exception.
  const FuzzCase failing =
      FuzzCase::from_line("xdfuzz1 kind=gemv rows=6 cols=40 arch=col vseed=9");
  const auto fail = check_case(failing);
  ASSERT_TRUE(fail.has_value());

  const ShrinkResult res = shrink_case(failing, *fail);
  EXPECT_GT(res.steps, 0);
  EXPECT_EQ(res.failure.invariant, fail->invariant);
  EXPECT_LE(res.minimal.rows, failing.rows);
  EXPECT_LE(res.minimal.cols, failing.cols);
  // The shrunk case must still reproduce on its own.
  const auto again = check_case(res.minimal);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->invariant, fail->invariant);
}
