// Analytical model & projection tests against the numbers the paper quotes.
#include <gtest/gtest.h>

#include "model/perf_model.hpp"
#include "model/projections.hpp"

using namespace xd;

TEST(PerfModel, IoBoundPeaks) {
  // Sec 4.4: dot peak = bw words/s; GEMV peak = 2 bw.
  EXPECT_NEAR(model::dot_peak_flops(5.5e9), 687.5e6, 1e3);
  EXPECT_NEAR(model::gemv_peak_flops(5.6e9), 1.4e9, 1e3);
  // Table 4: 1.3 GB/s DRAM -> 325 MFLOPS GEMV peak.
  EXPECT_NEAR(model::gemv_peak_flops(1.3e9), 325e6, 1e3);
}

TEST(PerfModel, DevicePeak) {
  // Sec 6.3: XC2VP50 peak with the paper's units is 4.42 GFLOPS.
  machine::AreaModel area;
  const double peak = model::mm_device_peak_flops(machine::xc2vp50(), area.cores());
  EXPECT_NEAR(peak, 4.42e9, 0.01e9);
}

TEST(PerfModel, LatencyFormulas) {
  EXPECT_EQ(model::mm_model_cycles(512, 8), 512ull * 512 * 512 / 8);
  EXPECT_EQ(model::mm_hier_model_cycles(2048, 8, 6),
            2048ull * 2048 * 2048 / 48);
  EXPECT_EQ(model::gemv_model_cycles(1024, 1024, 4), 1024ull * 1024 / 4);
}

TEST(PerfModel, BandwidthRequirements) {
  // Sec 6.3, l = 1, k = m = 8, b = 512: DRAM requirement 3k/b words/cycle
  // = 48.8 MB/s at 130 MHz.
  const double wpc = model::mm_hier_dram_words_per_cycle(8, 1, 512);
  EXPECT_NEAR(wpc * 8 * 130e6, 48.75e6, 0.1e6);
  // Sec 6.4.1, l = 6, b = 2048: 73.1 MB/s.
  const double wpc6 = model::mm_hier_dram_words_per_cycle(8, 6, 2048);
  EXPECT_NEAR(wpc6 * 8 * 130e6, 73.1e6, 0.2e6);
  // Sec 6.4.2, l = 72: 877.5 MB/s.
  const double wpc72 = model::mm_hier_dram_words_per_cycle(8, 72, 2048);
  EXPECT_NEAR(wpc72 * 8 * 130e6, 877.5e6, 0.5e6);
}

TEST(PerfModel, SramRequirement) {
  // Sec 6.3: C' takes 2 words/cycle (2.1 GB/s at 130 MHz); the C-panel
  // stream adds 2k/b words/cycle (32.5 MB/s).
  const double wpc = model::mm_hier_sram_words_per_cycle(8, 1, 512);
  EXPECT_NEAR(2.0 * 8 * 130e6, 2.08e9, 0.01e9);
  EXPECT_NEAR((wpc - 2.0) * 8 * 130e6, 32.5e6, 0.1e6);
}

TEST(Projections, Figure9Series) {
  machine::AreaModel area;
  const auto pts = model::figure9(area, machine::xc2vp50());
  ASSERT_EQ(pts.size(), 10u);  // "we can configure at most 10 PEs"
  EXPECT_EQ(pts.front().k, 1u);
  EXPECT_EQ(pts.front().slices, 2158u);
  EXPECT_DOUBLE_EQ(pts.front().clock_mhz, 155.0);
  EXPECT_DOUBLE_EQ(pts.back().clock_mhz, 125.0);
  // "maximum sustained performance ... is 2.5 GFLOPS" at 10 PEs / 125 MHz.
  EXPECT_NEAR(pts.back().gflops, 2.5, 0.01);
  // Area grows linearly; clock decreases monotonically.
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_EQ(pts[i].slices - pts[i - 1].slices, 2158u);
    EXPECT_LT(pts[i].clock_mhz, pts[i - 1].clock_mhz);
  }
}

TEST(Projections, Figure11BestCell) {
  machine::AreaModel area;
  const auto p =
      model::project_chassis(area, machine::xc2vp50(), 1600, 200.0, 6, 2048);
  EXPECT_EQ(p.pes_per_fpga, 15u);
  // "one chassis can achieve more than 27 GFLOPS".
  EXPECT_NEAR(p.gflops, 27.0, 0.01);
  EXPECT_GT(p.gflops, 26.9);
}

TEST(Projections, Figure11GridShape) {
  machine::AreaModel area;
  const auto grid = model::figure11_grid(area, machine::xc2vp50(), 6, 2048);
  EXPECT_EQ(grid.size(), 25u);  // 5 areas x 5 clocks
  // GFLOPS increase with clock at fixed area and with smaller PEs at fixed
  // clock (monotone along the grid axes).
  for (const auto& cell : grid) {
    EXPECT_GT(cell.gflops, 10.0);
    EXPECT_LT(cell.gflops, 30.0);
  }
}

TEST(Projections, Figure12AboutDoubleOfVp50) {
  machine::AreaModel area;
  const auto p50 = model::project_chassis(area, machine::xc2vp50(), 1600, 200.0, 6, 2048);
  const auto p100 =
      model::project_chassis(area, machine::xc2vp100(), 1600, 200.0, 6, 2048);
  EXPECT_EQ(p100.pes_per_fpga, 28u);
  // "a chassis in XD1 can achieve about 50 GFLOPS".
  EXPECT_NEAR(p100.gflops, 50.4, 0.1);
  EXPECT_NEAR(p100.gflops / p50.gflops, 2.0, 0.15);
}

TEST(Projections, TwelveChassisInstallation) {
  // Sec 6.4.2: 2.06 GFLOPS x 72 FPGAs = 148.3 GFLOPS; DRAM requirement
  // 877.5 MB/s; all requirements met by XD1.
  const auto s = model::project_system(12, 8, 2048, 130.0, 2.06);
  EXPECT_EQ(s.total_fpgas, 72u);
  EXPECT_NEAR(s.gflops, 148.3, 0.05);
  EXPECT_NEAR(s.dram_bytes_per_s, 877.5e6, 1e6);
  EXPECT_NEAR(s.interchassis_bytes_per_s, 877.5e6, 1e6);
  EXPECT_TRUE(s.bandwidth_met);
}

TEST(Projections, SingleChassis) {
  // Sec 6.4.1: 2.06 x 6 = 12.4 GFLOPS; DRAM/interconnect 73.1 MB/s.
  const auto s = model::project_system(1, 8, 2048, 130.0, 2.06);
  EXPECT_NEAR(s.gflops, 12.36, 0.05);
  EXPECT_NEAR(s.dram_bytes_per_s, 73.1e6, 0.2e6);
  EXPECT_TRUE(s.bandwidth_met);
}

TEST(Projections, BandwidthNotMetWhenScaledAbsurdly) {
  // Requirements grow with l; a hypothetical 4000-FPGA array with a tiny b
  // must trip the bandwidth check.
  const auto s = model::project_system(700, 8, 2048, 130.0, 2.06);
  EXPECT_FALSE(s.bandwidth_met);
}

TEST(PerfModel, NaiveMultiFpgaBlowsTheBandwidthBudget) {
  // The Sec 5.2 motivation: stretching the Sec 5.1 array across a chassis
  // multiplies the DRAM requirement by l, while the hierarchy divides it by
  // b/m. At 12 chassis the naive mapping needs ~b/m * more than available.
  const auto naive = model::gemm_naive_multi(8192, 8, 72, 8);
  const auto hier = model::gemm_hier_multi(8192, 8, 72, 8, 2048);
  EXPECT_DOUBLE_EQ(naive.latency_cycles, hier.latency_cycles);
  EXPECT_NEAR(naive.words_per_cycle / hier.words_per_cycle, 2048.0 / 8.0,
              1e-9);
  const double naive_bps = naive.words_per_cycle * kWordBytes * 130e6;
  EXPECT_GT(naive_bps, 3.2e9);  // breaks the XD1 DRAM budget
  const double hier_bps = hier.words_per_cycle * kWordBytes * 130e6;
  EXPECT_LT(hier_bps, 3.2e9);
}

TEST(PerfModel, RelatedWorkDesignPoints) {
  const auto z04 = model::gemm_zhuo04(1024);
  EXPECT_DOUBLE_EQ(z04.latency_cycles, 1024.0 * 1024);
  EXPECT_DOUBLE_EQ(z04.storage_words, 2.0 * 1024 * 1024);
  const auto d05 = model::gemm_dou05(1024, 8, 32);
  EXPECT_DOUBLE_EQ(d05.latency_cycles, 1024.0 * 1024 * 1024 / 8);
  EXPECT_NEAR(d05.words_per_cycle, 1.5 / 32, 1e-12);
  const auto sc = model::gemm_sc05(1024, 8, 8);
  EXPECT_DOUBLE_EQ(sc.storage_words, 128.0);
  EXPECT_DOUBLE_EQ(sc.words_per_cycle, 3.0);
}

TEST(Projections, SystemProjectionTracksTheMachineConfig) {
  // The projection reads FPGA count and inter-chassis bandwidth from the
  // same SystemConfig the executable machine is built from, so the two can
  // never disagree — including at non-default node counts.
  machine::SystemConfig cfg;
  cfg.chassis_count = 3;
  cfg.chassis.nodes = 4;
  cfg.chassis.node.dram_words = 1024;  // keep the machine allocation small
  cfg.chassis.node.sram_bank_words = 1024;
  machine::System sys(cfg);
  const auto s = model::project_system(cfg, 8, 2048, 130.0, 2.06);
  EXPECT_EQ(s.total_fpgas, sys.total_fpgas());
  EXPECT_EQ(s.total_fpgas, 12u);
  EXPECT_EQ(s.chassis, 3u);
}

TEST(Projections, RejectsDegenerateChassisParameters) {
  // fpgas == 0 or b == 0 would divide the bandwidth formulas by zero; both
  // must surface as ConfigError, from the single projection and the grid.
  machine::AreaModel area;
  const auto dev = machine::xc2vp50();
  EXPECT_THROW(model::project_chassis(area, dev, 1600, 200.0, 0, 2048),
               ConfigError);
  EXPECT_THROW(model::project_chassis(area, dev, 1600, 200.0, 6, 0),
               ConfigError);
  EXPECT_THROW(model::figure11_grid(area, dev, 0, 2048), ConfigError);
  EXPECT_THROW(model::figure11_grid(area, dev, 6, 0), ConfigError);
}
