// Level 1 BLAS (dot product) engine tests: numerics against the reference,
// I/O-bound timing behaviour, and bandwidth sensitivity (Sec 4.1 / 4.4).
#include <gtest/gtest.h>

#include <cmath>

#include "blas1/dot_engine.hpp"
#include "common/random.hpp"
#include "host/reference.hpp"
#include "model/perf_model.hpp"

using namespace xd;
using blas1::DotConfig;
using blas1::DotEngine;

namespace {

double tol_for(const std::vector<double>& u, const std::vector<double>& v) {
  double mag = 0.0;
  for (std::size_t i = 0; i < u.size(); ++i) mag += std::fabs(u[i] * v[i]);
  return std::max(1e-15, mag * 1e-12);
}

}  // namespace

class DotSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DotSizes, MatchesReference) {
  const std::size_t n = GetParam();
  Rng rng(100 + n);
  const auto u = rng.vector(n);
  const auto v = rng.vector(n);
  DotEngine engine(DotConfig{});
  const auto out = engine.run({u}, {v});
  EXPECT_NEAR(out.results[0], host::ref_dot(u, v), tol_for(u, v));
}

INSTANTIATE_TEST_SUITE_P(Sizes, DotSizes,
                         ::testing::Values(1, 2, 3, 5, 16, 17, 100, 1000, 2048,
                                           4097));

class DotLanes : public ::testing::TestWithParam<unsigned> {};

TEST_P(DotLanes, AllLaneCountsCorrect) {
  const unsigned k = GetParam();
  Rng rng(200 + k);
  DotConfig cfg;
  cfg.k = k;
  cfg.mem_words_per_cycle = 2.0 * k;  // bandwidth-matched
  DotEngine engine(cfg);
  const auto u = rng.vector(777);
  const auto v = rng.vector(777);
  const auto out = engine.run({u}, {v});
  EXPECT_NEAR(out.results[0], host::ref_dot(u, v), tol_for(u, v));
}

INSTANTIATE_TEST_SUITE_P(Lanes, DotLanes, ::testing::Values(1, 2, 4, 8, 16));

TEST(DotEngine, NonPowerOfTwoLanesRejected) {
  DotConfig cfg;
  cfg.k = 3;
  EXPECT_THROW(DotEngine{cfg}, ConfigError);
}

TEST(DotEngine, BatchOfDots) {
  Rng rng(42);
  std::vector<std::vector<double>> us, vs;
  for (std::size_t n : {5u, 100u, 1u, 64u, 33u, 256u}) {
    us.push_back(rng.vector(n));
    vs.push_back(rng.vector(n));
  }
  DotEngine engine(DotConfig{});
  const auto out = engine.run(us, vs);
  ASSERT_EQ(out.results.size(), us.size());
  for (std::size_t i = 0; i < us.size(); ++i) {
    EXPECT_NEAR(out.results[i], host::ref_dot(us[i], vs[i]), tol_for(us[i], vs[i]))
        << "pair " << i;
  }
}

TEST(DotEngine, CyclesNearIoLowerBoundWhenBandwidthMatched) {
  Rng rng(43);
  const std::size_t n = 4096;
  DotConfig cfg;  // k=2, 4 words/cycle: exactly the streaming rate
  DotEngine engine(cfg);
  const auto out = engine.run({rng.vector(n)}, {rng.vector(n)});
  const u64 lb = engine.io_lower_bound_cycles(n);
  EXPECT_GE(out.report.cycles, lb);
  // Overhead is the pipeline + reduction tail, a few hundred cycles.
  EXPECT_LT(out.report.cycles, lb + 600);
  // Sustained efficiency matches the >=80%-of-peak claim (Table 3).
  const double efficiency = static_cast<double>(lb) /
                            static_cast<double>(out.report.cycles);
  EXPECT_GT(efficiency, 0.80);
}

TEST(DotEngine, HalvingBandwidthDoublesTime) {
  Rng rng(44);
  const std::size_t n = 2048;
  const auto u = rng.vector(n);
  const auto v = rng.vector(n);

  DotConfig fast;
  fast.mem_words_per_cycle = 4.0;
  DotConfig slow = fast;
  slow.mem_words_per_cycle = 2.0;

  const auto rf = DotEngine(fast).run({u}, {v});
  const auto rs = DotEngine(slow).run({u}, {v});
  EXPECT_EQ(rf.results[0], rs.results[0]);  // numerics independent of timing
  const double ratio = static_cast<double>(rs.report.cycles) /
                       static_cast<double>(rf.report.cycles);
  EXPECT_NEAR(ratio, 2.0, 0.2);
}

TEST(DotEngine, FlopsAccounting) {
  Rng rng(45);
  DotEngine engine(DotConfig{});
  const auto out = engine.run({rng.vector(100)}, {rng.vector(100)});
  EXPECT_EQ(out.report.flops, 200u);
  EXPECT_EQ(out.report.sram_words, 200.0);
  EXPECT_GT(out.report.sustained_mflops(), 0.0);
}

TEST(DotEngine, MismatchedVectorsRejected) {
  DotEngine engine(DotConfig{});
  EXPECT_THROW(engine.run({{1.0, 2.0}}, {{1.0}}), ConfigError);
  EXPECT_THROW(engine.run({{}}, {{}}), ConfigError);
  EXPECT_THROW(engine.run({{1.0}}, {}), ConfigError);
}

TEST(DotEngine, DeterministicAcrossRuns) {
  Rng rng(46);
  const auto u = rng.vector(500);
  const auto v = rng.vector(500);
  DotEngine engine(DotConfig{});
  const auto r1 = engine.run({u}, {v});
  const auto r2 = engine.run({u}, {v});
  EXPECT_EQ(r1.results[0], r2.results[0]);
  EXPECT_EQ(r1.report.cycles, r2.report.cycles);
}

TEST(DotEngine, MeasuredCyclesMatchAnalyticModel) {
  // model/perf_model predicts stream + pipeline + reduction-tail cycles; the
  // cycle-accurate engine must land within the tail's slack.
  Rng rng(47);
  for (std::size_t n : {256ul, 1024ul, 4096ul}) {
    DotConfig cfg;
    cfg.k = 2;
    cfg.mem_words_per_cycle = 4.0;
    DotEngine engine(cfg);
    const auto out = engine.run({rng.vector(n)}, {rng.vector(n)});
    const u64 model = xd::model::dot_model_cycles(n, cfg.k, cfg.adder_stages,
                                                  cfg.multiplier_stages);
    EXPECT_GT(out.report.cycles, n / cfg.k);
    EXPECT_NEAR(static_cast<double>(out.report.cycles),
                static_cast<double>(model), 0.25 * static_cast<double>(model))
        << "n=" << n;
  }
}
