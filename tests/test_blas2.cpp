// Level 2 BLAS (GEMV) tests: both paper architectures, blocked variants,
// hazard conditions, and the near-peak-efficiency claim (Sec 4.2 / 4.4).
#include <gtest/gtest.h>

#include <cmath>

#include "blas2/blocking.hpp"
#include "blas2/mxv_col.hpp"
#include "blas2/mxv_tree.hpp"
#include "common/random.hpp"
#include "host/reference.hpp"

using namespace xd;
using blas2::MxvColConfig;
using blas2::MxvColEngine;
using blas2::MxvTreeConfig;
using blas2::MxvTreeEngine;

namespace {

void expect_close(const std::vector<double>& got, const std::vector<double>& want,
                  double scale = 1.0) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    const double tol = std::max(1e-12, std::fabs(want[i]) * 1e-12) * scale;
    EXPECT_NEAR(got[i], want[i], tol) << "element " << i;
  }
}

}  // namespace

struct GemvShape {
  std::size_t rows, cols;
};

class TreeShapes : public ::testing::TestWithParam<GemvShape> {};

TEST_P(TreeShapes, MatchesReference) {
  const auto [rows, cols] = GetParam();
  Rng rng(rows * 131 + cols);
  const auto a = rng.matrix(rows, cols);
  const auto x = rng.vector(cols);
  MxvTreeEngine engine(MxvTreeConfig{});
  const auto out = engine.run(a, rows, cols, x);
  expect_close(out.y, host::ref_gemv(a, rows, cols, x),
               static_cast<double>(cols));
}

INSTANTIATE_TEST_SUITE_P(Shapes, TreeShapes,
                         ::testing::Values(GemvShape{1, 1}, GemvShape{1, 64},
                                           GemvShape{64, 1}, GemvShape{17, 33},
                                           GemvShape{128, 128},
                                           GemvShape{64, 257},
                                           GemvShape{100, 100}));

class TreeLanes : public ::testing::TestWithParam<unsigned> {};

TEST_P(TreeLanes, LaneSweepCorrect) {
  const unsigned k = GetParam();
  Rng rng(500 + k);
  const std::size_t n = 96;
  const auto a = rng.matrix(n, n);
  const auto x = rng.vector(n);
  MxvTreeConfig cfg;
  cfg.k = k;
  cfg.mem_words_per_cycle = k;
  MxvTreeEngine engine(cfg);
  const auto out = engine.run(a, n, n, x);
  expect_close(out.y, host::ref_gemv(a, n, n, x), static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(Lanes, TreeLanes, ::testing::Values(1, 2, 4, 8, 16));

TEST(MxvTree, NearPeakEfficiency) {
  // Sec 4.4 / Table 3: the GEMV tree design sustains > 95% of the I/O peak.
  Rng rng(501);
  const std::size_t n = 512;
  const auto a = rng.matrix(n, n);
  const auto x = rng.vector(n);
  MxvTreeEngine engine(MxvTreeConfig{});
  const auto out = engine.run(a, n, n, x);
  const u64 lb = engine.io_lower_bound_cycles(n, n);
  const double efficiency =
      static_cast<double>(lb) / static_cast<double>(out.report.cycles);
  EXPECT_GT(efficiency, 0.95);
}

TEST(MxvTree, StallsWhenBandwidthBelowLanes) {
  Rng rng(502);
  const std::size_t n = 128;
  const auto a = rng.matrix(n, n);
  const auto x = rng.vector(n);
  MxvTreeConfig starved;
  starved.k = 4;
  starved.mem_words_per_cycle = 2.0;  // half the lanes' appetite
  const auto out = MxvTreeEngine(starved).run(a, n, n, x);
  expect_close(out.y, host::ref_gemv(a, n, n, x), static_cast<double>(n));
  // Time roughly doubles against the bandwidth-matched configuration.
  MxvTreeConfig matched;
  matched.k = 4;
  matched.mem_words_per_cycle = 4.0;
  const auto fast = MxvTreeEngine(matched).run(a, n, n, x);
  EXPECT_NEAR(static_cast<double>(out.report.cycles) /
                  static_cast<double>(fast.report.cycles),
              2.0, 0.25);
}

class ColShapes : public ::testing::TestWithParam<GemvShape> {};

TEST_P(ColShapes, MatchesReference) {
  const auto [rows, cols] = GetParam();
  Rng rng(rows * 77 + cols);
  const auto a = rng.matrix(rows, cols);
  const auto x = rng.vector(cols);
  MxvColEngine engine(MxvColConfig{});
  const auto out = engine.run(a, rows, cols, x);
  expect_close(out.y, host::ref_gemv(a, rows, cols, x),
               static_cast<double>(cols));
}

// All shapes here satisfy ceil(rows/k) >= 14 for k = 4.
INSTANTIATE_TEST_SUITE_P(Shapes, ColShapes,
                         ::testing::Values(GemvShape{56, 8}, GemvShape{64, 64},
                                           GemvShape{100, 33},
                                           GemvShape{128, 128},
                                           GemvShape{57, 200}));

TEST(MxvCol, HazardConditionEnforced) {
  // ceil(rows/k) < adder depth would re-read a y element mid-pipeline; the
  // engine must reject the configuration (Sec 4.2's n/k >= alpha condition).
  Rng rng(503);
  const std::size_t rows = 16, cols = 16;  // 16/4 = 4 < 14
  const auto a = rng.matrix(rows, cols);
  const auto x = rng.vector(cols);
  MxvColEngine engine(MxvColConfig{});
  EXPECT_THROW(engine.run(a, rows, cols, x), ConfigError);
}

TEST(MxvCol, MinimalLegalHeightWorks) {
  Rng rng(504);
  MxvColConfig cfg;
  cfg.k = 2;
  const std::size_t rows = 2 * fp::kAdderStages;  // exactly alpha groups
  const std::size_t cols = 32;
  const auto a = rng.matrix(rows, cols);
  const auto x = rng.vector(cols);
  const auto out = MxvColEngine(cfg).run(a, rows, cols, x);
  expect_close(out.y, host::ref_gemv(a, rows, cols, x),
               static_cast<double>(cols));
}

TEST(MxvCol, AgreesWithTreeArchitecture) {
  Rng rng(505);
  const std::size_t n = 128;
  const auto a = rng.matrix(n, n);
  const auto x = rng.vector(n);
  const auto yt = MxvTreeEngine(MxvTreeConfig{}).run(a, n, n, x);
  const auto yc = MxvColEngine(MxvColConfig{}).run(a, n, n, x);
  // Different accumulation orders: equal within rounding, not bitwise.
  expect_close(yt.y, yc.y, static_cast<double>(n));
}

TEST(BlockedGemv, TreePanelsMatchReference) {
  Rng rng(506);
  const std::size_t rows = 64, cols = 300;
  const auto a = rng.matrix(rows, cols);
  const auto x = rng.vector(cols);
  const auto out = blas2::run_blocked_gemv_tree(MxvTreeConfig{}, 128, a, rows,
                                                cols, x);
  expect_close(out.y, host::ref_gemv(a, rows, cols, x),
               static_cast<double>(cols));
  EXPECT_GT(out.report.cycles, 0u);
}

TEST(BlockedGemv, ColPanelsMatchReference) {
  Rng rng(507);
  const std::size_t rows = 300, cols = 64;
  const auto a = rng.matrix(rows, cols);
  const auto x = rng.vector(cols);
  MxvColConfig cfg;
  cfg.k = 2;
  const auto out = blas2::run_blocked_gemv_col(cfg, 100, a, rows, cols, x);
  expect_close(out.y, host::ref_gemv(a, rows, cols, x),
               static_cast<double>(cols));
}

TEST(BlockedGemv, SinglePanelEqualsUnblocked) {
  Rng rng(508);
  const std::size_t n = 64;
  const auto a = rng.matrix(n, n);
  const auto x = rng.vector(n);
  const auto blocked =
      blas2::run_blocked_gemv_tree(MxvTreeConfig{}, n, a, n, n, x);
  const auto plain = MxvTreeEngine(MxvTreeConfig{}).run(a, n, n, x);
  ASSERT_EQ(blocked.y.size(), plain.y.size());
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(blocked.y[i], plain.y[i]);
  EXPECT_EQ(blocked.report.cycles, plain.report.cycles);
}

TEST(BlockedGemv, MorePanelsCostMoreCycles) {
  Rng rng(509);
  const std::size_t n = 128;
  const auto a = rng.matrix(n, n);
  const auto x = rng.vector(n);
  const auto one = blas2::run_blocked_gemv_tree(MxvTreeConfig{}, n, a, n, n, x);
  const auto four =
      blas2::run_blocked_gemv_tree(MxvTreeConfig{}, n / 4, a, n, n, x);
  EXPECT_GT(four.report.cycles, one.report.cycles);
  // But the overhead is small: panels only add pipeline drains.
  EXPECT_LT(static_cast<double>(four.report.cycles),
            1.2 * static_cast<double>(one.report.cycles));
}

TEST(MxvEngines, InvalidInputsRejected) {
  MxvTreeEngine tree{MxvTreeConfig{}};
  EXPECT_THROW(tree.run({1.0}, 1, 2, {1.0, 2.0}), ConfigError);
  EXPECT_THROW(tree.run({}, 0, 0, {}), ConfigError);
  MxvTreeConfig bad;
  bad.k = 6;
  EXPECT_THROW(MxvTreeEngine{bad}, ConfigError);
}
