// End-to-end node-level GEMV tests: the full Table 4 pipeline (DMA staging
// through the RapidArray link, bank-striped streaming, y write-back) running
// against the real machine model.
#include <gtest/gtest.h>

#include "blas2/mxv_on_node.hpp"
#include "blas2/mxv_tree.hpp"
#include "common/random.hpp"
#include "host/reference.hpp"
#include "machine/node.hpp"

using namespace xd;
using blas2::NodeGemvConfig;
using blas2::NodeGemvEngine;

namespace {

machine::NodeConfig xd1_node(std::size_t dram_words = 2u << 20) {
  machine::NodeConfig cfg;
  cfg.clock_mhz = 164.0;
  cfg.dram_bytes_per_s = 1.3e9;  // the measured Table 4 staging rate
  cfg.dram_words = dram_words;
  return cfg;
}

}  // namespace

TEST(NodeGemv, SramResidentMatchesReference) {
  Rng rng(1);
  const std::size_t n = 128;
  const auto a = rng.matrix(n, n);
  const auto x = rng.vector(n);
  machine::ComputeNode node(xd1_node());
  NodeGemvEngine engine(node);
  const auto out = engine.run(a, n, n, x, /*from_dram=*/false);
  EXPECT_LT(host::max_abs_diff(out.y, host::ref_gemv(a, n, n, x)), 1e-10 * n);
  EXPECT_EQ(out.report.staging_cycles, 0u);
}

TEST(NodeGemv, BitIdenticalToChannelModelEngine) {
  // Same feed rate (one word per bank per cycle = 4/cycle) => identical
  // reduction-circuit timing => identical bits.
  Rng rng(2);
  const std::size_t n = 64;
  const auto a = rng.matrix(n, n);
  const auto x = rng.vector(n);

  machine::ComputeNode node(xd1_node());
  NodeGemvEngine node_engine(node);
  const auto yn = node_engine.run(a, n, n, x, false);

  blas2::MxvTreeConfig tc;  // k = 4, 4 words/cycle
  const auto yc = blas2::MxvTreeEngine(tc).run(a, n, n, x);
  EXPECT_EQ(yn.y, yc.y);
}

TEST(NodeGemv, StagingDominatesFromDram) {
  // The Table 4 split at test scale: staging ~ n^2 words at ~1 word/cycle vs
  // compute at n^2/4 cycles -> staging is ~80% of the total.
  Rng rng(3);
  const std::size_t n = 256;
  const auto a = rng.matrix(n, n);
  const auto x = rng.vector(n);
  machine::ComputeNode node(xd1_node());
  NodeGemvEngine engine(node);
  const auto out = engine.run(a, n, n, x, /*from_dram=*/true);
  EXPECT_LT(host::max_abs_diff(out.y, host::ref_gemv(a, n, n, x)), 1e-10 * n);

  const double frac = static_cast<double>(out.report.staging_cycles) /
                      static_cast<double>(out.report.cycles);
  EXPECT_GT(frac, 0.70);
  EXPECT_LT(frac, 0.85);
  // Achieved link bandwidth during staging ~ 1.3 GB/s.
  EXPECT_NEAR(node.dram_achieved_bytes_per_s() *
                  static_cast<double>(node.cycles()) /
                  static_cast<double>(out.report.staging_cycles),
              1.3e9, 0.15e9);
}

TEST(NodeGemv, Table4LatencyShapeAtFullScale) {
  // n = 1024, the exact Table 4 experiment: ~8 ms total, ~1.6 ms compute,
  // ~260 MFLOPS sustained at 164 MHz.
  Rng rng(4);
  const std::size_t n = 1024;
  const auto a = rng.matrix(n, n);
  const auto x = rng.vector(n);
  machine::ComputeNode node(xd1_node());
  NodeGemvEngine engine(node);
  const auto out = engine.run(a, n, n, x, /*from_dram=*/true);

  EXPECT_NEAR(out.report.seconds() * 1e3, 8.0, 0.4);             // total ms
  EXPECT_NEAR(static_cast<double>(out.report.compute_cycles) /
                  (164e3),                                       // ms
              1.6, 0.1);
  EXPECT_NEAR(out.report.sustained_mflops(), 262.0, 8.0);
}

TEST(NodeGemv, RejectsUnalignedOrOversized) {
  Rng rng(5);
  machine::ComputeNode node(xd1_node());
  NodeGemvEngine engine(node);
  // cols not a multiple of the bank count
  EXPECT_THROW(engine.run(rng.matrix(8, 10), 8, 10, rng.vector(10), false),
               ConfigError);
  // matrix larger than the four 4 MB banks
  const std::size_t big = 2048;
  machine::NodeConfig tiny = xd1_node();
  tiny.sram_bank_words = 1024;
  machine::ComputeNode small_node(tiny);
  NodeGemvEngine small_engine(small_node);
  EXPECT_THROW(
      small_engine.run(rng.matrix(big, 64), big, 64, rng.vector(64), false),
      ConfigError);
}

TEST(NodeGemv, HandshakeAddsBoundedOverhead) {
  Rng rng(6);
  const std::size_t n = 128;
  const auto a = rng.matrix(n, n);
  const auto x = rng.vector(n);

  machine::ComputeNode plain_node(xd1_node());
  const auto plain = NodeGemvEngine(plain_node).run(a, n, n, x, false);

  NodeGemvConfig hcfg;
  hcfg.with_handshake = true;
  machine::ComputeNode hs_node(xd1_node());
  const auto hs = NodeGemvEngine(hs_node, hcfg).run(a, n, n, x, false);

  EXPECT_EQ(plain.y, hs.y);  // control protocol never touches the data path
  EXPECT_GT(hs.report.cycles, plain.report.cycles);
  // Three register interactions plus one poll round: well under 1% here.
  EXPECT_LT(hs.report.cycles - plain.report.cycles, plain.report.cycles / 10);
}
