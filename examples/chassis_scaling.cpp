// Multi-FPGA GEMM scaling study (Sec 5.2 / 6.4): run the hierarchical design
// across 1..72 FPGAs, validating a small configuration cycle-accurately and
// projecting the paper's chassis / 12-chassis installations.
//
//   ./examples/chassis_scaling
#include <cstdio>

#include "blas3/mm_array.hpp"
#include "blas3/mm_hier.hpp"
#include "common/random.hpp"
#include "common/table.hpp"
#include "host/reference.hpp"
#include "model/projections.hpp"

using namespace xd;

int main() {
  Rng rng(64);

  // --- 1. cycle-accurate anchor: one FPGA, small n -----------------------
  const std::size_t n = 64;
  const auto a = rng.matrix(n, n);
  const auto b = rng.matrix(n, n);
  blas3::MmArrayConfig ac;
  ac.mem_words_per_cycle = 8.0;
  blas3::MmArrayEngine array(ac);
  const auto anchor = array.run(a, b, n);
  std::printf("Cycle-accurate anchor (1 FPGA, k=8, n=%zu):\n", n);
  std::printf("  cycles %llu vs model %llu, max |err| %.3e\n\n",
              static_cast<unsigned long long>(anchor.report.cycles),
              static_cast<unsigned long long>(array.model_cycles(n)),
              host::max_abs_diff(anchor.c, host::ref_gemm(a, b, n)));

  // --- 2. scale the validated model out across the installation ----------
  std::printf("Hierarchical GEMM across FPGAs (k=8, m=8, b=2048, n=8192):\n\n");
  TextTable t({"FPGAs (l)", "Chassis", "Latency (s)", "GFLOPS",
               "DRAM need", "met by 3.2 GB/s?"});
  for (unsigned l : {1u, 2u, 6u, 12u, 24u, 48u, 72u}) {
    blas3::MmHierConfig cfg;
    cfg.l = l;
    cfg.b = 2048;
    cfg.dram_words_per_cycle = 3.2e9 / (8.0 * cfg.clock_mhz * 1e6);
    cfg.link_words_per_cycle = 2.0e9 / (8.0 * cfg.clock_mhz * 1e6);
    blas3::MmHierEngine engine(cfg);
    const auto out = engine.project(8192);
    const double need_bps =
        out.required_dram_words_per_cycle * 8.0 * cfg.clock_mhz * 1e6;
    t.row(l, TextTable::num(l / 6.0, 2),
          TextTable::num(out.report.seconds(), 3),
          TextTable::num(out.report.sustained_gflops(), 1),
          TextTable::num(need_bps / 1e6, 1) + " MB/s",
          need_bps <= 3.2e9 ? "yes" : "NO");
  }
  std::printf("%s\n", t.render().c_str());

  std::printf("Paper checkpoints: 6 FPGAs (1 chassis) = 12.4 GFLOPS, "
              "72 FPGAs (12 chassis) = 148.3 GFLOPS, DRAM need 877.5 MB/s.\n");
  return 0;
}
