// Jacobi iterative solver on the simulated FPGA BLAS (the paper's Sec 7
// points to exactly this application [18]: an FPGA-based floating-point
// Jacobi solver built on the GEMV design).
//
// Solves A x = b for a diagonally dominant system using
//   x_{k+1} = D^{-1} (b - R x_k)
// where the R x_k products run on the simulated Level 2 GEMV engine. The
// example reports convergence and the aggregate simulated FPGA time, showing
// what the BLAS library costs/buys inside a real numerical loop.
//
//   ./examples/jacobi_solver [n] [max_iters]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/random.hpp"
#include "host/context.hpp"
#include "host/reference.hpp"

using namespace xd;

namespace {

double residual_norm(const std::vector<double>& a, std::size_t n,
                     const std::vector<double>& x, const std::vector<double>& b) {
  const auto ax = host::ref_gemv(a, n, n, x);
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) s += (ax[i] - b[i]) * (ax[i] - b[i]);
  return std::sqrt(s);
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 256;
  const int max_iters = argc > 2 ? std::atoi(argv[2]) : 50;

  Rng rng(31);
  // Diagonally dominant A ensures Jacobi converges.
  auto a = rng.matrix(n, n, -1.0, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    double off = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i) off += std::fabs(a[i * n + j]);
    }
    a[i * n + i] = off + 1.0;
  }
  const auto x_true = rng.vector(n);
  const auto b = host::ref_gemv(a, n, n, x_true);

  // R = A with a zeroed diagonal; D = diag(A).
  auto r = a;
  std::vector<double> diag(n);
  for (std::size_t i = 0; i < n; ++i) {
    diag[i] = a[i * n + i];
    r[i * n + i] = 0.0;
  }

  host::Context ctx;
  std::vector<double> x(n, 0.0);
  u64 fpga_cycles = 0;
  u64 fpga_flops = 0;
  double clock_mhz = 0.0;

  std::printf("Jacobi solve, n = %zu, GEMV on the simulated XD1 FPGA\n\n", n);
  std::printf("%6s  %14s\n", "iter", "||Ax-b||");
  int iters = 0;
  for (; iters < max_iters; ++iters) {
    // R x on the FPGA (Level 2 BLAS); the diagonal solve stays on the host,
    // exactly the processor/FPGA split the reconfigurable systems use.
    const auto rx = ctx.gemv(r, n, n, x);
    fpga_cycles += rx.report.cycles;
    fpga_flops += rx.report.flops;
    clock_mhz = rx.report.clock_mhz;
    for (std::size_t i = 0; i < n; ++i) x[i] = (b[i] - rx.y[i]) / diag[i];

    const double res = residual_norm(a, n, x, b);
    if (iters % 5 == 0 || res < 1e-10) std::printf("%6d  %14.6e\n", iters, res);
    if (res < 1e-10) break;
  }

  double err = 0.0;
  for (std::size_t i = 0; i < n; ++i) err = std::max(err, std::fabs(x[i] - x_true[i]));

  const double seconds = static_cast<double>(fpga_cycles) / (clock_mhz * 1e6);
  std::printf("\nconverged in %d iterations, max |x - x_true| = %.3e\n", iters,
              err);
  std::printf("simulated FPGA time: %.3f ms (%llu cycles at %.0f MHz), "
              "%.1f MFLOPS sustained across the solve\n",
              seconds * 1e3, static_cast<unsigned long long>(fpga_cycles),
              clock_mhz, static_cast<double>(fpga_flops) / seconds / 1e6);
  return 0;
}
