// Conjugate-gradient solver composed from the simulated FPGA BLAS.
//
// CG is the method the paper's Sec 7 names as the target for its iterative-
// solver building blocks ("Jacobi ... usually used as preconditioner for the
// more efficient methods like conjugate gradient"). Each iteration uses one
// GEMV (Level 2) and several dot products (Level 1) on the simulated XD1
// node — the exact composition pattern a downstream user of this library
// would write. Vector updates (axpy) stay on the host processor, matching
// the processor/FPGA split of the reconfigurable-system model.
//
//   ./examples/cg_solver [n] [max_iters]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/random.hpp"
#include "host/context.hpp"
#include "host/reference.hpp"

using namespace xd;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 192;
  const int max_iters = argc > 2 ? std::atoi(argv[2]) : 200;

  // SPD matrix: A = M^T M + n I.
  Rng rng(47);
  const auto m = rng.matrix(n, n, -1.0, 1.0);
  std::vector<double> a(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::size_t q = 0; q < n; ++q) s += m[q * n + i] * m[q * n + j];
      a[i * n + j] = s + (i == j ? static_cast<double>(n) : 0.0);
    }
  }
  const auto x_true = rng.vector(n);
  const auto b = host::ref_gemv(a, n, n, x_true);

  host::Context ctx;
  u64 fpga_cycles = 0, fpga_flops = 0;
  double clock_mhz = 164.0;

  auto fpga_gemv = [&](const std::vector<double>& v) {
    auto out = ctx.gemv(a, n, n, v);
    fpga_cycles += out.report.cycles;
    fpga_flops += out.report.flops;
    clock_mhz = out.report.clock_mhz;
    return out.y;
  };
  auto fpga_dot = [&](const std::vector<double>& u, const std::vector<double>& v) {
    auto out = ctx.dot(u, v);
    // Convert dot cycles (170 MHz design) into GEMV-clock cycles so the
    // aggregate time uses one clock domain.
    fpga_cycles += static_cast<u64>(static_cast<double>(out.report.cycles) *
                                    clock_mhz / out.report.clock_mhz);
    fpga_flops += out.report.flops;
    return out.value;
  };

  std::vector<double> x(n, 0.0);
  std::vector<double> r = b;  // residual (x0 = 0)
  std::vector<double> p = r;
  double rs_old = fpga_dot(r, r);

  std::printf("CG solve, n = %zu, GEMV + dot on the simulated XD1 FPGA\n\n", n);
  std::printf("%6s  %14s\n", "iter", "||r||");
  int iters = 0;
  for (; iters < max_iters; ++iters) {
    const auto ap = fpga_gemv(p);
    const double alpha = rs_old / fpga_dot(p, ap);
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
    }
    const double rs_new = fpga_dot(r, r);
    if (iters % 10 == 0 || std::sqrt(rs_new) < 1e-10) {
      std::printf("%6d  %14.6e\n", iters, std::sqrt(rs_new));
    }
    if (std::sqrt(rs_new) < 1e-10) break;
    const double beta = rs_new / rs_old;
    for (std::size_t i = 0; i < n; ++i) p[i] = r[i] + beta * p[i];
    rs_old = rs_new;
  }

  double err = 0.0;
  for (std::size_t i = 0; i < n; ++i) err = std::max(err, std::fabs(x[i] - x_true[i]));
  const double seconds = static_cast<double>(fpga_cycles) / (clock_mhz * 1e6);
  std::printf("\nconverged in %d iterations, max |x - x_true| = %.3e\n", iters,
              err);
  std::printf("simulated FPGA time: %.3f ms, %.1f MFLOPS sustained "
              "(GEMV dominates; dots add the reduction-circuit tail)\n",
              seconds * 1e3, static_cast<double>(fpga_flops) / seconds / 1e6);
  return 0;
}
