// Quickstart: the three BLAS operations through the public xdblas API.
//
// A Context models one Cray XD1 node (Xilinx XC2VP50 + 4 SRAM banks + DRAM
// over RapidArray) running the paper's designs: every call computes the real
// numerics through the simulated FPGA datapath and returns a performance
// report in the paper's terms (cycles, achievable clock, sustained MFLOPS,
// bandwidths).
//
//   ./examples/quickstart
#include <cstdio>

#include "common/random.hpp"
#include "host/context.hpp"
#include "host/reference.hpp"

using namespace xd;

namespace {

void print_report(const host::PerfReport& r) {
  std::printf("  design            : %s\n", r.design.c_str());
  std::printf("  cycles            : %llu (%.3f ms at %.0f MHz)\n",
              static_cast<unsigned long long>(r.cycles), r.seconds() * 1e3,
              r.clock_mhz);
  std::printf("  sustained         : %.1f MFLOPS (%.2f flops/cycle)\n",
              r.sustained_mflops(), r.flops_per_cycle());
  if (r.staging_cycles > 0) {
    std::printf("  staging (DRAM)    : %llu cycles (%.1f%% of total)\n",
                static_cast<unsigned long long>(r.staging_cycles),
                100.0 * static_cast<double>(r.staging_cycles) /
                    static_cast<double>(r.cycles));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  Rng rng(2005);
  host::Context ctx;  // one XD1 node, paper-default designs

  // ---- Level 1: dot product (k = 2 multipliers, reduction circuit) ----
  std::printf("Level 1: dot product, n = 4096\n");
  const auto u = rng.vector(4096);
  const auto v = rng.vector(4096);
  const auto d = ctx.dot(u, v);
  std::printf("  result            : %.12f (reference %.12f)\n", d.value,
              host::ref_dot(u, v));
  print_report(d.report);

  // ---- Level 2: GEMV (tree architecture, k = 4) ----
  std::printf("Level 2: y = A x, n = 512, A streamed from SRAM\n");
  const std::size_t n = 512;
  const auto a = rng.matrix(n, n);
  const auto x = rng.vector(n);
  const auto y = ctx.gemv(a, n, n, x);
  std::printf("  max |y - y_ref|   : %.3e\n",
              host::max_abs_diff(y.y, host::ref_gemv(a, n, n, x)));
  print_report(y.report);

  std::printf("Level 2 again, but A starts in processor DRAM\n");
  const auto y2 = ctx.gemv(a, n, n, x, host::Placement::Dram);
  print_report(y2.report);

  // ---- Level 3: GEMM (linear PE array + SRAM blocking) ----
  std::printf("Level 3: C = A B, n = 128 (k = 8 PEs, m = 8, b = 64)\n");
  host::ContextConfig cfg;
  cfg.mm_b = 64;
  host::Context ctx3(cfg);
  const std::size_t n3 = 128;
  const auto A = rng.matrix(n3, n3);
  const auto B = rng.matrix(n3, n3);
  const auto C = ctx3.gemm(A, B, n3);
  std::printf("  max |C - C_ref|   : %.3e\n",
              host::max_abs_diff(C.c, host::ref_gemm(A, B, n3)));
  print_report(C.report);

  std::printf("Done. See DESIGN.md for the architecture map and\n"
              "EXPERIMENTS.md for the full paper-vs-measured index.\n");
  return 0;
}
