// Design-space explorer: given an FPGA device, enumerate every GEMM and GEMV
// configuration that actually fits (slices via the calibrated area model,
// on-chip memory via the BRAM budget, hazard conditions) and print predicted
// performance and bandwidth needs — the paper's Secs 4.4/5.3 design
// reasoning, automated.
//
//   ./examples/design_explorer [XC2VP50|XC2VP100]
#include <cstdio>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "machine/area.hpp"
#include "machine/device.hpp"
#include "mem/bram.hpp"
#include "mem/hierarchy.hpp"
#include "model/perf_model.hpp"

using namespace xd;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "XC2VP50";
  const auto dev = machine::device_by_name(name);
  machine::AreaModel area;
  const auto xd1 = mem::cray_xd1();

  std::printf("Device %s: %u slices, %llu words of BRAM\n\n", dev.name.c_str(),
              dev.slices,
              static_cast<unsigned long long>(dev.bram_words()));

  // ---- GEMM array configurations ----------------------------------------
  std::printf("GEMM linear-array configurations (with XD1 interface):\n\n");
  TextTable g({"k (PEs)", "m", "Slices", "fits?", "BRAM words (2m^2)",
               "Clock MHz", "GFLOPS", "Need (words/cyc)", "SRAM need",
               "hazard ok (m^2/k>=8)"});
  const unsigned kmax = area.max_mm_pes(dev, /*with_xd1_interface=*/true);
  for (unsigned k : {1u, 2u, 4u, 8u, 10u, 12u, 16u}) {
    if (k > kmax && k > 8) continue;
    for (unsigned m : {8u, 16u, 32u, 64u, 128u}) {
      if (m % k != 0) continue;
      const auto d = area.mm_design_xd1(k);
      mem::BramBudget bram(dev);
      const bool bram_ok = bram.try_allocate("blocks", 2ull * m * m);
      const bool slice_ok = k <= kmax;
      if (!bram_ok || !slice_ok) continue;
      const bool hazard_ok = (static_cast<u64>(m) * m / k) >= 8;
      const double need = model::mm_required_words_per_cycle(k, m);
      g.row(k, m, d.slices, "yes", 2ull * m * m, d.clock_mhz,
            TextTable::num(2.0 * k * d.clock_mhz / 1e3, 2),
            TextTable::num(need, 3),
            TextTable::num(need * kWordBytes * d.clock_mhz * 1e6 / 1e9, 2) +
                " GB/s",
            hazard_ok ? "yes" : "NO");
    }
  }
  std::printf("%s\n", g.render().c_str());
  std::printf("Max PEs with XD1 glue: %u (paper: 8 on XC2VP50). The paper's "
              "k=m=8 point trades block size for simplicity; larger m cuts "
              "the bandwidth requirement as 3k/m.\n\n",
              kmax);

  // ---- GEMV configurations ----------------------------------------------
  std::printf("GEMV tree configurations (bandwidth-matched k):\n\n");
  TextTable v({"k", "Slices", "% device", "Stream need", "<= SRAM 12.8 GB/s?",
               "Peak MFLOPS", "Max on-chip x (words)"});
  for (unsigned k : {1u, 2u, 4u, 8u, 16u}) {
    if (k > 1 && !is_pow2(k)) continue;
    const auto d = area.mxv_tree_design(k);
    if (d.slices > dev.slices) continue;
    const double stream = k * kWordBytes * d.clock_mhz * 1e6;
    mem::BramBudget bram(dev);
    bram.allocate("reduction", 2ull * 14 * 14);
    v.row(k, d.slices,
          TextTable::num(100.0 * d.slices / dev.slices, 1) + "%",
          TextTable::num(stream / 1e9, 2) + " GB/s",
          stream <= xd1.level(mem::Level::B).bytes_per_s ? "yes" : "NO",
          TextTable::num(model::gemv_peak_flops(stream) / 1e6, 0),
          bram.free_words());
  }
  std::printf("%s\n", v.render().c_str());
  std::printf("The paper picks k=4: one word per SRAM bank per cycle; k=8 "
              "would need more banks than a blade provides.\n");
  return 0;
}
