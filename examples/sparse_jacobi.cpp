// Sparse iterative solve on the simulated FPGA: a 2-D Poisson problem
// (5-point stencil) solved with the library's sparse Jacobi solver running
// on the SpMXV engine — the full pipeline the paper's Sec 7 describes:
// CRS sparse matrix -> tree architecture + reduction circuit -> Jacobi.
//
//   ./examples/sparse_jacobi [grid]     (matrix dimension = grid * grid)
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "blas2/spmxv.hpp"
#include "common/random.hpp"
#include "host/reference.hpp"
#include "solver/jacobi.hpp"

using namespace xd;

namespace {

/// 5-point Laplacian on a grid x grid mesh, assembled directly in CRS.
blas2::CrsMatrix laplace2d(std::size_t grid) {
  const std::size_t n = grid * grid;
  blas2::CrsMatrix m;
  m.rows = m.cols = n;
  m.row_ptr.push_back(0);
  for (std::size_t r = 0; r < grid; ++r) {
    for (std::size_t c = 0; c < grid; ++c) {
      const std::size_t i = r * grid + c;
      auto push = [&](std::size_t j, double v) {
        m.values.push_back(v);
        m.col_idx.push_back(j);
      };
      if (r > 0) push(i - grid, -1.0);
      if (c > 0) push(i - 1, -1.0);
      push(i, 4.0 + 0.1);  // shifted to make Jacobi strictly convergent
      if (c + 1 < grid) push(i + 1, -1.0);
      if (r + 1 < grid) push(i + grid, -1.0);
      m.row_ptr.push_back(m.values.size());
    }
  }
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t grid = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 24;
  const std::size_t n = grid * grid;

  const auto a = laplace2d(grid);
  Rng rng(55);
  const auto x_true = rng.vector(n);
  const auto b = host::ref_gemv(a.to_dense(), n, n, x_true);

  std::printf("2-D Poisson, %zux%zu grid -> n = %zu, nnz = %zu "
              "(density %.2f%%)\n\n",
              grid, grid, n, a.nnz(), 100.0 * a.density());

  solver::SolveOptions opts;
  opts.max_iterations = 2000;
  opts.tolerance = 1e-8;
  const auto res = solver::jacobi_sparse(a, b, opts);

  double err = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    err = std::max(err, std::fabs(res.x[i] - x_true[i]));
  }
  std::printf("%s in %d iterations, residual %.3e, max |x - x_true| = %.3e\n",
              res.converged ? "converged" : "NOT converged", res.iterations,
              res.residual_norm, err);
  std::printf("simulated FPGA: %.3f ms across the solve, %.1f MFLOPS "
              "(2 flops per nonzero per sweep; row sets of size 3..5 exercise "
              "the arbitrary-size reduction circuit)\n",
              res.fpga_seconds() * 1e3, res.sustained_mflops());

  // Cost comparison against running the same sweeps densely.
  const double dense_cycles_per_sweep = static_cast<double>(n) * n / 4.0;
  const double sparse_cycles_per_sweep =
      static_cast<double>(res.fpga_cycles) / std::max(res.iterations, 1);
  std::printf("dense GEMV would cost ~%.0f cycles/sweep; SpMXV measured "
              "%.0f cycles/sweep (%.1fx)\n",
              dense_cycles_per_sweep, sparse_cycles_per_sweep,
              dense_cycles_per_sweep / sparse_cycles_per_sweep);
  return 0;
}
