// Dominant-eigenvalue computation by the power method, written against the
// CBLAS-style compatibility layer — the "numerical linear algebra
// applications ... eigenvalue problems" the paper's introduction motivates,
// running unchanged on the simulated reconfigurable system.
//
//   x_{k+1} = A x_k / ||A x_k||,  lambda ~ x^T A x (Rayleigh quotient)
//
// GEMV and the dot products execute on the simulated FPGA; normalization
// stays on the host processor.
//
//   ./examples/power_method [n] [iters]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/random.hpp"
#include "host/blas_compat.hpp"
#include "host/reference.hpp"

using namespace xd;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 128;
  const int iters = argc > 2 ? std::atoi(argv[2]) : 60;

  // Symmetric matrix with a planted dominant eigenpair:
  // A = lambda * v v^T + small symmetric noise.
  Rng rng(88);
  const double planted = 42.0;
  auto v = rng.vector(n);
  double vn = 0.0;
  for (double x : v) vn += x * x;
  vn = std::sqrt(vn);
  for (auto& x : v) x /= vn;
  std::vector<double> a(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double noise = rng.uniform(-0.05, 0.05);
      a[i * n + j] = planted * v[i] * v[j] + noise;
      a[j * n + i] = a[i * n + j];
    }
  }

  host::Context ctx;
  std::vector<double> x = rng.vector(n);
  std::vector<double> ax(n, 0.0);
  double lambda = 0.0;
  u64 fpga_cycles = 0;

  std::printf("Power method on the simulated XD1 (n = %zu)\n\n", n);
  std::printf("%6s  %14s  %12s\n", "iter", "lambda", "|d lambda|");
  for (int it = 0; it < iters; ++it) {
    host::PerfReport rep;
    host::compat_dgemv(ctx, host::Transpose::No, n, n, 1.0, a.data(), n,
                       x.data(), 1, 0.0, ax.data(), 1, &rep);
    fpga_cycles += rep.cycles;

    const double xax = host::compat_ddot(ctx, n, x.data(), 1, ax.data(), 1);
    const double xx = host::compat_ddot(ctx, n, x.data(), 1, x.data(), 1);
    const double next = xax / xx;
    const double delta = std::fabs(next - lambda);
    lambda = next;

    double norm = 0.0;
    for (double y : ax) norm += y * y;
    norm = std::sqrt(norm);
    for (std::size_t i = 0; i < n; ++i) x[i] = ax[i] / norm;

    if (it % 10 == 0 || delta < 1e-12) {
      std::printf("%6d  %14.9f  %12.3e\n", it, lambda, delta);
    }
    if (delta < 1e-12 && it > 1) break;
  }

  // Alignment with the planted eigenvector.
  double dot_v = 0.0;
  for (std::size_t i = 0; i < n; ++i) dot_v += x[i] * v[i];
  std::printf("\nlambda = %.9f (planted %.1f + noise shift), "
              "|<x, v>| = %.6f\n",
              lambda, planted, std::fabs(dot_v));
  std::printf("simulated FPGA GEMV time: %.3f ms across the run\n",
              static_cast<double>(fpga_cycles) / 164e3);
  return 0;
}
