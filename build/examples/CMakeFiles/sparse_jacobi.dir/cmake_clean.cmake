file(REMOVE_RECURSE
  "CMakeFiles/sparse_jacobi.dir/sparse_jacobi.cpp.o"
  "CMakeFiles/sparse_jacobi.dir/sparse_jacobi.cpp.o.d"
  "sparse_jacobi"
  "sparse_jacobi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_jacobi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
