# Empty compiler generated dependencies file for sparse_jacobi.
# This may be replaced when dependencies are built.
