file(REMOVE_RECURSE
  "CMakeFiles/chassis_scaling.dir/chassis_scaling.cpp.o"
  "CMakeFiles/chassis_scaling.dir/chassis_scaling.cpp.o.d"
  "chassis_scaling"
  "chassis_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chassis_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
