# Empty compiler generated dependencies file for chassis_scaling.
# This may be replaced when dependencies are built.
