# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_jacobi "/root/repo/build/examples/jacobi_solver" "64" "30")
set_tests_properties(example_jacobi PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cg "/root/repo/build/examples/cg_solver" "48" "100")
set_tests_properties(example_cg PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sparse_jacobi "/root/repo/build/examples/sparse_jacobi" "10")
set_tests_properties(example_sparse_jacobi PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_chassis_scaling "/root/repo/build/examples/chassis_scaling")
set_tests_properties(example_chassis_scaling PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_design_explorer "/root/repo/build/examples/design_explorer" "XC2VP100")
set_tests_properties(example_design_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_power_method "/root/repo/build/examples/power_method" "64" "40")
set_tests_properties(example_power_method PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
