# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_reduce "/root/repo/build/tools/xdblas_cli" "reduce" "--sets" "10" "--size" "20")
set_tests_properties(cli_reduce PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_dot "/root/repo/build/tools/xdblas_cli" "dot" "--n" "256")
set_tests_properties(cli_dot PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_gemv "/root/repo/build/tools/xdblas_cli" "gemv" "--n" "128")
set_tests_properties(cli_gemv PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_gemm "/root/repo/build/tools/xdblas_cli" "gemm" "--n" "32" "--b" "32")
set_tests_properties(cli_gemm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_spmxv "/root/repo/build/tools/xdblas_cli" "spmxv" "--n" "128" "--nnz-per-row" "4")
set_tests_properties(cli_spmxv PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_explore "/root/repo/build/tools/xdblas_cli" "explore")
set_tests_properties(cli_explore PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bad_command "/root/repo/build/tools/xdblas_cli" "frobnicate")
set_tests_properties(cli_bad_command PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
