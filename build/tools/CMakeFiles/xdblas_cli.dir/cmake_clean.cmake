file(REMOVE_RECURSE
  "CMakeFiles/xdblas_cli.dir/xdblas_cli.cpp.o"
  "CMakeFiles/xdblas_cli.dir/xdblas_cli.cpp.o.d"
  "xdblas_cli"
  "xdblas_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xdblas_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
