# Empty dependencies file for xdblas_cli.
# This may be replaced when dependencies are built.
