# Empty compiler generated dependencies file for test_mxv_on_node.
# This may be replaced when dependencies are built.
