file(REMOVE_RECURSE
  "CMakeFiles/test_mxv_on_node.dir/test_mxv_on_node.cpp.o"
  "CMakeFiles/test_mxv_on_node.dir/test_mxv_on_node.cpp.o.d"
  "test_mxv_on_node"
  "test_mxv_on_node.pdb"
  "test_mxv_on_node[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mxv_on_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
