# Empty dependencies file for test_spmxv.
# This may be replaced when dependencies are built.
