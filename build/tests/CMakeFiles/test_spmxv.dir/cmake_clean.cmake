file(REMOVE_RECURSE
  "CMakeFiles/test_spmxv.dir/test_spmxv.cpp.o"
  "CMakeFiles/test_spmxv.dir/test_spmxv.cpp.o.d"
  "test_spmxv"
  "test_spmxv.pdb"
  "test_spmxv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spmxv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
