file(REMOVE_RECURSE
  "CMakeFiles/test_fpu.dir/test_fpu.cpp.o"
  "CMakeFiles/test_fpu.dir/test_fpu.cpp.o.d"
  "test_fpu"
  "test_fpu.pdb"
  "test_fpu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
