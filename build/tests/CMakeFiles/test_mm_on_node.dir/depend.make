# Empty dependencies file for test_mm_on_node.
# This may be replaced when dependencies are built.
