file(REMOVE_RECURSE
  "CMakeFiles/test_mm_on_node.dir/test_mm_on_node.cpp.o"
  "CMakeFiles/test_mm_on_node.dir/test_mm_on_node.cpp.o.d"
  "test_mm_on_node"
  "test_mm_on_node.pdb"
  "test_mm_on_node[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mm_on_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
