file(REMOVE_RECURSE
  "CMakeFiles/test_mm_multi.dir/test_mm_multi.cpp.o"
  "CMakeFiles/test_mm_multi.dir/test_mm_multi.cpp.o.d"
  "test_mm_multi"
  "test_mm_multi.pdb"
  "test_mm_multi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mm_multi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
