# Empty dependencies file for test_mm_multi.
# This may be replaced when dependencies are built.
