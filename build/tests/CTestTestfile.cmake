# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_softfloat[1]_include.cmake")
include("/root/repo/build/tests/test_fpu[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_machine[1]_include.cmake")
include("/root/repo/build/tests/test_reduction[1]_include.cmake")
include("/root/repo/build/tests/test_blas1[1]_include.cmake")
include("/root/repo/build/tests/test_blas2[1]_include.cmake")
include("/root/repo/build/tests/test_blas3[1]_include.cmake")
include("/root/repo/build/tests/test_model[1]_include.cmake")
include("/root/repo/build/tests/test_host[1]_include.cmake")
include("/root/repo/build/tests/test_spmxv[1]_include.cmake")
include("/root/repo/build/tests/test_solver[1]_include.cmake")
include("/root/repo/build/tests/test_compat[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_mm_multi[1]_include.cmake")
include("/root/repo/build/tests/test_mxv_on_node[1]_include.cmake")
include("/root/repo/build/tests/test_mm_on_node[1]_include.cmake")
include("/root/repo/build/tests/test_umbrella[1]_include.cmake")
