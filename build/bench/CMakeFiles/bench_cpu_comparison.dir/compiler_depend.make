# Empty compiler generated dependencies file for bench_cpu_comparison.
# This may be replaced when dependencies are built.
