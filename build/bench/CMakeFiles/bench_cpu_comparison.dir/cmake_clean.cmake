file(REMOVE_RECURSE
  "CMakeFiles/bench_cpu_comparison.dir/bench_cpu_comparison.cpp.o"
  "CMakeFiles/bench_cpu_comparison.dir/bench_cpu_comparison.cpp.o.d"
  "bench_cpu_comparison"
  "bench_cpu_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cpu_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
