# Empty compiler generated dependencies file for bench_blocked_gemv.
# This may be replaced when dependencies are built.
