file(REMOVE_RECURSE
  "CMakeFiles/bench_blocked_gemv.dir/bench_blocked_gemv.cpp.o"
  "CMakeFiles/bench_blocked_gemv.dir/bench_blocked_gemv.cpp.o.d"
  "bench_blocked_gemv"
  "bench_blocked_gemv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_blocked_gemv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
