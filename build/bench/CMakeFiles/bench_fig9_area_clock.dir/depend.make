# Empty dependencies file for bench_fig9_area_clock.
# This may be replaced when dependencies are built.
