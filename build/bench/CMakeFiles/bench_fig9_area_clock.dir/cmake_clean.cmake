file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_area_clock.dir/bench_fig9_area_clock.cpp.o"
  "CMakeFiles/bench_fig9_area_clock.dir/bench_fig9_area_clock.cpp.o.d"
  "bench_fig9_area_clock"
  "bench_fig9_area_clock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_area_clock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
