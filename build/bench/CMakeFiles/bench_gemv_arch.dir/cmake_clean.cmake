file(REMOVE_RECURSE
  "CMakeFiles/bench_gemv_arch.dir/bench_gemv_arch.cpp.o"
  "CMakeFiles/bench_gemv_arch.dir/bench_gemv_arch.cpp.o.d"
  "bench_gemv_arch"
  "bench_gemv_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gemv_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
