# Empty compiler generated dependencies file for bench_gemv_arch.
# This may be replaced when dependencies are built.
