# Empty dependencies file for bench_table3_l1l2.
# This may be replaced when dependencies are built.
