# Empty dependencies file for bench_scoreboard.
# This may be replaced when dependencies are built.
