file(REMOVE_RECURSE
  "CMakeFiles/bench_scoreboard.dir/bench_scoreboard.cpp.o"
  "CMakeFiles/bench_scoreboard.dir/bench_scoreboard.cpp.o.d"
  "bench_scoreboard"
  "bench_scoreboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scoreboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
