# Empty dependencies file for bench_fig11_chassis_vp50.
# This may be replaced when dependencies are built.
