file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_chassis_vp50.dir/bench_fig11_chassis_vp50.cpp.o"
  "CMakeFiles/bench_fig11_chassis_vp50.dir/bench_fig11_chassis_vp50.cpp.o.d"
  "bench_fig11_chassis_vp50"
  "bench_fig11_chassis_vp50.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_chassis_vp50.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
