file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_units.dir/bench_table2_units.cpp.o"
  "CMakeFiles/bench_table2_units.dir/bench_table2_units.cpp.o.d"
  "bench_table2_units"
  "bench_table2_units.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
