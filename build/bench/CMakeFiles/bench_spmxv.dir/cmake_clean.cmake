file(REMOVE_RECURSE
  "CMakeFiles/bench_spmxv.dir/bench_spmxv.cpp.o"
  "CMakeFiles/bench_spmxv.dir/bench_spmxv.cpp.o.d"
  "bench_spmxv"
  "bench_spmxv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spmxv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
