# Empty dependencies file for bench_spmxv.
# This may be replaced when dependencies are built.
