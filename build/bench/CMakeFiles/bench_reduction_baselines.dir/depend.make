# Empty dependencies file for bench_reduction_baselines.
# This may be replaced when dependencies are built.
