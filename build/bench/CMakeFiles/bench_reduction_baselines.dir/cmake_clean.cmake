file(REMOVE_RECURSE
  "CMakeFiles/bench_reduction_baselines.dir/bench_reduction_baselines.cpp.o"
  "CMakeFiles/bench_reduction_baselines.dir/bench_reduction_baselines.cpp.o.d"
  "bench_reduction_baselines"
  "bench_reduction_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reduction_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
