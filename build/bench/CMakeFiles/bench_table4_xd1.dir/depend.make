# Empty dependencies file for bench_table4_xd1.
# This may be replaced when dependencies are built.
