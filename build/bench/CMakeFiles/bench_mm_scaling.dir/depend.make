# Empty dependencies file for bench_mm_scaling.
# This may be replaced when dependencies are built.
