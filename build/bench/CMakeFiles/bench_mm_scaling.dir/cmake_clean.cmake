file(REMOVE_RECURSE
  "CMakeFiles/bench_mm_scaling.dir/bench_mm_scaling.cpp.o"
  "CMakeFiles/bench_mm_scaling.dir/bench_mm_scaling.cpp.o.d"
  "bench_mm_scaling"
  "bench_mm_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mm_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
