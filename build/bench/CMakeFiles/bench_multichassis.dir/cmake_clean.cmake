file(REMOVE_RECURSE
  "CMakeFiles/bench_multichassis.dir/bench_multichassis.cpp.o"
  "CMakeFiles/bench_multichassis.dir/bench_multichassis.cpp.o.d"
  "bench_multichassis"
  "bench_multichassis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multichassis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
