# Empty compiler generated dependencies file for bench_multichassis.
# This may be replaced when dependencies are built.
