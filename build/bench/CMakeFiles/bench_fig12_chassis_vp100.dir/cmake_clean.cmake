file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_chassis_vp100.dir/bench_fig12_chassis_vp100.cpp.o"
  "CMakeFiles/bench_fig12_chassis_vp100.dir/bench_fig12_chassis_vp100.cpp.o.d"
  "bench_fig12_chassis_vp100"
  "bench_fig12_chassis_vp100.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_chassis_vp100.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
