file(REMOVE_RECURSE
  "libxdblas.a"
)
