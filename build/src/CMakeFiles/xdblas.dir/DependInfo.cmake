
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/blas1/dot_engine.cpp" "src/CMakeFiles/xdblas.dir/blas1/dot_engine.cpp.o" "gcc" "src/CMakeFiles/xdblas.dir/blas1/dot_engine.cpp.o.d"
  "/root/repo/src/blas2/blocking.cpp" "src/CMakeFiles/xdblas.dir/blas2/blocking.cpp.o" "gcc" "src/CMakeFiles/xdblas.dir/blas2/blocking.cpp.o.d"
  "/root/repo/src/blas2/mxv_col.cpp" "src/CMakeFiles/xdblas.dir/blas2/mxv_col.cpp.o" "gcc" "src/CMakeFiles/xdblas.dir/blas2/mxv_col.cpp.o.d"
  "/root/repo/src/blas2/mxv_on_node.cpp" "src/CMakeFiles/xdblas.dir/blas2/mxv_on_node.cpp.o" "gcc" "src/CMakeFiles/xdblas.dir/blas2/mxv_on_node.cpp.o.d"
  "/root/repo/src/blas2/mxv_tree.cpp" "src/CMakeFiles/xdblas.dir/blas2/mxv_tree.cpp.o" "gcc" "src/CMakeFiles/xdblas.dir/blas2/mxv_tree.cpp.o.d"
  "/root/repo/src/blas2/spmxv.cpp" "src/CMakeFiles/xdblas.dir/blas2/spmxv.cpp.o" "gcc" "src/CMakeFiles/xdblas.dir/blas2/spmxv.cpp.o.d"
  "/root/repo/src/blas3/mm_array.cpp" "src/CMakeFiles/xdblas.dir/blas3/mm_array.cpp.o" "gcc" "src/CMakeFiles/xdblas.dir/blas3/mm_array.cpp.o.d"
  "/root/repo/src/blas3/mm_hier.cpp" "src/CMakeFiles/xdblas.dir/blas3/mm_hier.cpp.o" "gcc" "src/CMakeFiles/xdblas.dir/blas3/mm_hier.cpp.o.d"
  "/root/repo/src/blas3/mm_multi.cpp" "src/CMakeFiles/xdblas.dir/blas3/mm_multi.cpp.o" "gcc" "src/CMakeFiles/xdblas.dir/blas3/mm_multi.cpp.o.d"
  "/root/repo/src/blas3/mm_on_node.cpp" "src/CMakeFiles/xdblas.dir/blas3/mm_on_node.cpp.o" "gcc" "src/CMakeFiles/xdblas.dir/blas3/mm_on_node.cpp.o.d"
  "/root/repo/src/blas3/pe.cpp" "src/CMakeFiles/xdblas.dir/blas3/pe.cpp.o" "gcc" "src/CMakeFiles/xdblas.dir/blas3/pe.cpp.o.d"
  "/root/repo/src/common/random.cpp" "src/CMakeFiles/xdblas.dir/common/random.cpp.o" "gcc" "src/CMakeFiles/xdblas.dir/common/random.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/CMakeFiles/xdblas.dir/common/stats.cpp.o" "gcc" "src/CMakeFiles/xdblas.dir/common/stats.cpp.o.d"
  "/root/repo/src/common/table.cpp" "src/CMakeFiles/xdblas.dir/common/table.cpp.o" "gcc" "src/CMakeFiles/xdblas.dir/common/table.cpp.o.d"
  "/root/repo/src/fp/fpu.cpp" "src/CMakeFiles/xdblas.dir/fp/fpu.cpp.o" "gcc" "src/CMakeFiles/xdblas.dir/fp/fpu.cpp.o.d"
  "/root/repo/src/fp/softfloat.cpp" "src/CMakeFiles/xdblas.dir/fp/softfloat.cpp.o" "gcc" "src/CMakeFiles/xdblas.dir/fp/softfloat.cpp.o.d"
  "/root/repo/src/host/blas_compat.cpp" "src/CMakeFiles/xdblas.dir/host/blas_compat.cpp.o" "gcc" "src/CMakeFiles/xdblas.dir/host/blas_compat.cpp.o.d"
  "/root/repo/src/host/context.cpp" "src/CMakeFiles/xdblas.dir/host/context.cpp.o" "gcc" "src/CMakeFiles/xdblas.dir/host/context.cpp.o.d"
  "/root/repo/src/host/reference.cpp" "src/CMakeFiles/xdblas.dir/host/reference.cpp.o" "gcc" "src/CMakeFiles/xdblas.dir/host/reference.cpp.o.d"
  "/root/repo/src/machine/area.cpp" "src/CMakeFiles/xdblas.dir/machine/area.cpp.o" "gcc" "src/CMakeFiles/xdblas.dir/machine/area.cpp.o.d"
  "/root/repo/src/machine/chassis.cpp" "src/CMakeFiles/xdblas.dir/machine/chassis.cpp.o" "gcc" "src/CMakeFiles/xdblas.dir/machine/chassis.cpp.o.d"
  "/root/repo/src/machine/device.cpp" "src/CMakeFiles/xdblas.dir/machine/device.cpp.o" "gcc" "src/CMakeFiles/xdblas.dir/machine/device.cpp.o.d"
  "/root/repo/src/machine/node.cpp" "src/CMakeFiles/xdblas.dir/machine/node.cpp.o" "gcc" "src/CMakeFiles/xdblas.dir/machine/node.cpp.o.d"
  "/root/repo/src/machine/status_regs.cpp" "src/CMakeFiles/xdblas.dir/machine/status_regs.cpp.o" "gcc" "src/CMakeFiles/xdblas.dir/machine/status_regs.cpp.o.d"
  "/root/repo/src/machine/system.cpp" "src/CMakeFiles/xdblas.dir/machine/system.cpp.o" "gcc" "src/CMakeFiles/xdblas.dir/machine/system.cpp.o.d"
  "/root/repo/src/mem/bram.cpp" "src/CMakeFiles/xdblas.dir/mem/bram.cpp.o" "gcc" "src/CMakeFiles/xdblas.dir/mem/bram.cpp.o.d"
  "/root/repo/src/mem/channel.cpp" "src/CMakeFiles/xdblas.dir/mem/channel.cpp.o" "gcc" "src/CMakeFiles/xdblas.dir/mem/channel.cpp.o.d"
  "/root/repo/src/mem/dma.cpp" "src/CMakeFiles/xdblas.dir/mem/dma.cpp.o" "gcc" "src/CMakeFiles/xdblas.dir/mem/dma.cpp.o.d"
  "/root/repo/src/mem/dram.cpp" "src/CMakeFiles/xdblas.dir/mem/dram.cpp.o" "gcc" "src/CMakeFiles/xdblas.dir/mem/dram.cpp.o.d"
  "/root/repo/src/mem/memory.cpp" "src/CMakeFiles/xdblas.dir/mem/memory.cpp.o" "gcc" "src/CMakeFiles/xdblas.dir/mem/memory.cpp.o.d"
  "/root/repo/src/mem/sram_bank.cpp" "src/CMakeFiles/xdblas.dir/mem/sram_bank.cpp.o" "gcc" "src/CMakeFiles/xdblas.dir/mem/sram_bank.cpp.o.d"
  "/root/repo/src/model/perf_model.cpp" "src/CMakeFiles/xdblas.dir/model/perf_model.cpp.o" "gcc" "src/CMakeFiles/xdblas.dir/model/perf_model.cpp.o.d"
  "/root/repo/src/model/projections.cpp" "src/CMakeFiles/xdblas.dir/model/projections.cpp.o" "gcc" "src/CMakeFiles/xdblas.dir/model/projections.cpp.o.d"
  "/root/repo/src/reduce/baselines.cpp" "src/CMakeFiles/xdblas.dir/reduce/baselines.cpp.o" "gcc" "src/CMakeFiles/xdblas.dir/reduce/baselines.cpp.o.d"
  "/root/repo/src/reduce/reduction_circuit.cpp" "src/CMakeFiles/xdblas.dir/reduce/reduction_circuit.cpp.o" "gcc" "src/CMakeFiles/xdblas.dir/reduce/reduction_circuit.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/CMakeFiles/xdblas.dir/sim/engine.cpp.o" "gcc" "src/CMakeFiles/xdblas.dir/sim/engine.cpp.o.d"
  "/root/repo/src/solver/cg.cpp" "src/CMakeFiles/xdblas.dir/solver/cg.cpp.o" "gcc" "src/CMakeFiles/xdblas.dir/solver/cg.cpp.o.d"
  "/root/repo/src/solver/jacobi.cpp" "src/CMakeFiles/xdblas.dir/solver/jacobi.cpp.o" "gcc" "src/CMakeFiles/xdblas.dir/solver/jacobi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
