# Empty dependencies file for xdblas.
# This may be replaced when dependencies are built.
