// Ablation: the proposed reduction circuit against the baseline designs the
// paper's Sec 2.3 surveys — adders used, buffer words, total cycles and
// stalls on identical input streams. This is the design-space table that
// motivates the paper's circuit: one adder AND full throughput AND bounded
// buffers.
#include <memory>
#include <optional>

#include "bench_util.hpp"
#include "common/random.hpp"
#include "fp/softfloat.hpp"
#include "reduce/baselines.hpp"
#include "reduce/reduction_circuit.hpp"

using namespace xd;

namespace {

struct Row {
  std::string name;
  unsigned adders;
  std::size_t buffer;
  u64 cycles;
  u64 stalls;
  double util;
};

Row run(reduce::ReductionCircuitBase& c, const std::vector<std::size_t>& sizes,
        u64 seed) {
  Rng rng(seed);
  std::size_t done = 0, si = 0, ei = 0;
  u64 cycles = 0;
  while (done < sizes.size()) {
    std::optional<reduce::Input> in;
    if (si < sizes.size()) {
      in = reduce::Input{fp::to_bits(rng.uniform(-1, 1)), ei + 1 == sizes[si]};
    }
    const bool consumed = c.cycle(in);
    ++cycles;
    if (in && consumed && ++ei == sizes[si]) {
      ei = 0;
      ++si;
    }
    if (c.take_result()) ++done;
  }
  return Row{c.name(), c.adders_used(), c.buffer_words(), cycles,
             c.stall_cycles(), c.adder_utilization()};
}

void compare(const std::string& title, const std::vector<std::size_t>& sizes,
             unsigned kogge_levels) {
  bench::heading(title);
  u64 total = 0;
  for (auto s : sizes) total += s;
  bench::note(cat(sizes.size(), " sets, ", total, " inputs\n"));

  std::vector<std::unique_ptr<reduce::ReductionCircuitBase>> circuits;
  circuits.push_back(std::make_unique<reduce::ReductionCircuit>());
  circuits.push_back(
      std::make_unique<reduce::ReductionCircuit>(fp::kAdderStages, true));
  circuits.push_back(std::make_unique<reduce::StallingAccumulator>());
  circuits.push_back(std::make_unique<reduce::KoggeTree>(kogge_levels));
  circuits.push_back(std::make_unique<reduce::NiHwangReducer>());
  circuits.push_back(std::make_unique<reduce::SingleAdderGreedy>());

  TextTable t({"Design", "Adders", "Buffer (words)", "Cycles",
               "Cycles/input", "Input stalls", "Adder util"});
  for (auto& c : circuits) {
    const Row r = run(*c, sizes, 11);
    t.row(r.name, r.adders, r.buffer, r.cycles,
          TextTable::num(static_cast<double>(r.cycles) / double(total), 2),
          r.stalls, bench::pct(r.util));
  }
  bench::print_table(t);
}

}  // namespace

int main() {
  // The GEMV workload: many sets of size n/k (512 here).
  compare("Workload A: 100 sets of 512 (GEMV rows, n=2048 k=4)",
          std::vector<std::size_t>(100, 512), 10);

  // Sets right at the pipeline depth.
  compare("Workload B: 400 sets of size alpha = 14",
          std::vector<std::size_t>(400, 14), 4);

  // Arbitrary mixed sizes (the generality claim).
  Rng rng(12);
  std::vector<std::size_t> mixed;
  for (int i = 0; i < 300; ++i) mixed.push_back(rng.uniform_int(1, 64));
  compare("Workload C: 300 sets of random size 1..64", mixed, 6);

  bench::note("Reading: the stalling accumulator pays ~alpha cycles/input; "
              "Kogge matches throughput but needs lg(s) adders; the greedy "
              "single-adder design matches throughput with an unbounded "
              "buffer (reported as observed peak); the proposed circuit "
              "holds 1 adder + fixed 2 alpha^2 buffer at ~1 cycle/input.");
  return 0;
}
