// Reproduces the Sec 6.3 CPU comparison: the paper places its 2.06-GFLOPS
// FPGA GEMM design next to contemporary CPUs running vendor dgemm
// (Opteron/ACML 4.1, Xeon/MKL 5.5, P4/MKL 5.0 GFLOPS). We measure a blocked
// dgemm on the build host and print it next to the simulated design and the
// paper's quoted numbers. Absolute host numbers differ two decades later;
// the shape to check is FPGA-within-small-factor-of-CPU.
#include "bench_util.hpp"
#include "blas3/mm_hier.hpp"
#include "host/reference.hpp"
#include "machine/area.hpp"
#include "model/perf_model.hpp"

using namespace xd;

int main() {
  const std::size_t n = 512;
  bench::heading("Sec 6.3: 64-bit dgemm, FPGA design vs CPUs (n = 512)");

  blas3::MmHierEngine engine{blas3::MmHierConfig{}};
  const auto fpga = engine.project(n);
  const double cpu_gflops = host::measure_cpu_gemm_gflops(n, 3);

  machine::AreaModel area;
  const double peak =
      model::mm_device_peak_flops(machine::xc2vp50(), area.cores());

  TextTable t({"Platform", "GFLOPS", "Source"});
  t.row("XC2VP50 FPGA design (k=8, 130 MHz)",
        TextTable::num(fpga.report.sustained_gflops(), 2),
        "this reproduction (model validated by cycle sim)");
  t.row("XC2VP50 device peak", TextTable::num(peak / 1e9, 2),
        "2 x 13 FP unit pairs x 170 MHz");
  t.row("2.6 GHz Opteron + ACML", "4.1", "paper");
  t.row("3.2 GHz Xeon + MKL", "5.5", "paper");
  t.row("3.0 GHz P4 + MKL", "5.0", "paper");
  t.row("build-host CPU, blocked dgemm (1 core)",
        TextTable::num(cpu_gflops, 2), "measured now");
  bench::print_table(t);

  bench::note(cat("Shape check (paper era): FPGA sustained / Opteron dgemm = ",
                  TextTable::num(fpga.report.sustained_gflops() / 4.1, 2),
                  " (paper: 2.06/4.1 = 0.50) - the 2005-era FPGA reaches about "
                  "half of a contemporary CPU on dgemm."));
  return 0;
}
