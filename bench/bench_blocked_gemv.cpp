// Ablation: blocked GEMV (Sec 4.2, last paragraph) — the cost of panelling
// when x exceeds the on-chip store. Sweeps the panel width for the tree
// architecture (column panels + partial-y accumulation through SRAM) and the
// panel height for the column architecture (row panels, no accumulation).
#include "bench_util.hpp"
#include "blas2/blocking.hpp"
#include "common/random.hpp"
#include "host/reference.hpp"

using namespace xd;

int main() {
  Rng rng(17);
  const std::size_t n = 1024;
  const auto a = rng.matrix(n, n);
  const auto x = rng.vector(n);
  const auto ref = host::ref_gemv(a, n, n, x);

  bench::heading("Blocked tree GEMV (k = 4): panel-width sweep at n = 1024");
  TextTable t({"Panel width b", "Panels", "Cycles", "Overhead vs unblocked",
               "SRAM words", "y-traffic words", "max |err|"});
  blas2::MxvTreeConfig cfg;
  u64 base_cycles = 0;
  for (std::size_t b : {1024ul, 512ul, 256ul, 128ul, 64ul, 32ul}) {
    const auto out = blas2::run_blocked_gemv_tree(cfg, b, a, n, n, x);
    if (b == 1024) base_cycles = out.report.cycles;
    const std::size_t panels = (n + b - 1) / b;
    t.row(b, panels, out.report.cycles,
          bench::pct(static_cast<double>(out.report.cycles) /
                         static_cast<double>(base_cycles) -
                     1.0),
          TextTable::num(out.report.sram_words, 0),
          TextTable::num(2.0 * static_cast<double>(n) * (panels - 1), 0),
          TextTable::num(host::max_abs_diff(out.y, ref), 3));
  }
  bench::print_table(t);
  bench::note("Each extra panel costs one pipeline drain plus a partial-y "
              "read/write pass through SRAM - a few percent even at 32-word "
              "panels, which is why the paper only blocks when x genuinely "
              "exceeds the BRAM.\n");

  bench::heading("Blocked column GEMV (k = 4): panel-height sweep");
  TextTable c({"Panel height", "Cycles", "max |err|"});
  blas2::MxvColConfig ccfg;
  for (std::size_t h : {1024ul, 512ul, 256ul, 128ul, 64ul}) {
    if ((h + ccfg.k - 1) / ccfg.k < fp::kAdderStages) continue;  // hazard
    const auto out = blas2::run_blocked_gemv_col(ccfg, h, a, n, n, x);
    c.row(h, out.report.cycles,
          TextTable::num(host::max_abs_diff(out.y, ref), 3));
  }
  bench::print_table(c);
  bench::note("Row panels need no cross-panel accumulation (each produces "
              "final y entries) but every panel re-streams the whole x; the "
              "hazard bound ceil(h/k) >= alpha caps how small panels may go.");
  return 0;
}
