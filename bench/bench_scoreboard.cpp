// Reproduction scoreboard: one compact PASS/FAIL check per paper claim,
// runnable in a few seconds. This is the "did the reproduction hold" summary;
// the per-table benches print the full detail. Exits nonzero on any FAIL.
#include <cmath>
#include <cstdio>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/random.hpp"
#include "machine/node.hpp"
#include "xdblas.hpp"

using namespace xd;

namespace {

struct Check {
  std::string claim;
  double expected;
  double measured;
  double rel_tol;
  bool pass() const {
    if (expected == 0.0) return measured == 0.0;
    return std::fabs(measured - expected) <= rel_tol * std::fabs(expected);
  }
};

std::vector<Check> checks;

void check(std::string claim, double expected, double measured,
           double rel_tol) {
  checks.push_back(Check{std::move(claim), expected, measured, rel_tol});
}

}  // namespace

int main() {
  Rng rng(2005);
  machine::AreaModel area;
  const auto vp50 = machine::xc2vp50();

  // --- Table 2 ------------------------------------------------------------
  check("T2: adder slices", 892, area.cores().adder_slices, 0);
  check("T2: multiplier slices", 835, area.cores().multiplier_slices, 0);
  check("T2: reduction circuit slices", 1658, area.reduction_circuit_slices(), 0);

  // --- Sec 4.3 reduction claims -------------------------------------------
  {
    reduce::ReductionCircuit c;
    const std::size_t sets = 100, s = 64;
    std::size_t done = 0, si = 0, ei = 0;
    u64 cycles = 0;
    while (done < sets) {
      std::optional<reduce::Input> in;
      if (si < sets) in = reduce::Input{fp::to_bits(rng.uniform(-1, 1)), ei + 1 == s};
      const bool consumed = c.cycle(in);
      ++cycles;
      if (in && consumed && ++ei == s) {
        ei = 0;
        ++si;
      }
      if (c.take_result()) ++done;
    }
    check("4.3: one adder", 1, c.adders_used(), 0);
    check("4.3: zero stalls (uniform s>=alpha)", 0, double(c.stats().stall_cycles), 0);
    check("4.3: peak buffer <= alpha^2 (196)", 196,
          double(c.stats().peak_buffer_words), 0);
    check("4.3: latency < sum+2a^2 (tail/392)", 1.0,
          double(cycles - sets * s) < 392.0 ? 1.0 : 0.0, 0);
  }

  // --- Table 3 ------------------------------------------------------------
  {
    host::Context ctx;
    const auto d = ctx.dot(rng.vector(2048), rng.vector(2048));
    check("T3: dot sustained >= 80% of peak (ratio/0.8)", 1.0,
          d.report.sustained_mflops() / 687.5 >= 0.80 ? 1.0 : 0.0, 0);
    const std::size_t n = 512;
    const auto g = ctx.gemv(rng.matrix(n, n), n, n, rng.vector(n));
    check("T3: gemv flops/cycle ~ 2k = 8", 8.0, g.report.flops_per_cycle(), 0.05);
  }

  // --- Table 4 GEMV (node level, n = 512 for speed) ------------------------
  {
    machine::NodeConfig nc;
    nc.clock_mhz = 164.0;
    nc.dram_bytes_per_s = 1.3e9;
    nc.dram_words = 1u << 20;
    machine::ComputeNode node(nc);
    blas2::NodeGemvEngine engine(node);
    const std::size_t n = 512;
    const auto out = engine.run(rng.matrix(n, n), n, n, rng.vector(n), true);
    const double staging_frac = double(out.report.staging_cycles) /
                                double(out.report.cycles);
    check("T4: gemv staging fraction ~ 0.8", 0.80, staging_frac, 0.05);
    check("T4: gemv sustained ~ 80% of 2bw peak", 0.806,
          out.report.sustained_mflops() * 1e6 / (2.0 * 1.3e9 / 8.0), 0.05);
  }

  // --- Table 4 GEMM (node level; sustained is size-invariant) --------------
  {
    machine::NodeConfig nc;
    nc.clock_mhz = 130.0;
    nc.dram_bytes_per_s = 3.2e9;
    nc.dram_words = 1u << 18;
    machine::ComputeNode node(nc);
    blas3::MmOnNodeConfig mc;
    mc.b = 256;
    blas3::MmOnNodeEngine engine(node, mc);
    const std::size_t n = 256;
    const auto out = engine.run(rng.matrix(n, n), rng.matrix(n, n), n);
    check("T4: gemm sustained GFLOPS", 2.06, out.report.sustained_gflops(), 0.03);
    const double sram_wpc =
        out.report.sram_words / double(out.report.compute_cycles);
    check("T4: gemm C' SRAM words/cycle", 2.0, sram_wpc, 0.01);
  }

  // --- Figure 9 -------------------------------------------------------------
  {
    const auto pts = model::figure9(area, vp50);
    check("F9: max PEs on XC2VP50", 10, double(pts.size()), 0);
    check("F9: 2.5 GFLOPS at 10 PEs", 2.5, pts.back().gflops, 0.01);
    check("F9: clock at 10 PEs (MHz)", 125, pts.back().clock_mhz, 0.01);
  }

  // --- Figures 11/12 --------------------------------------------------------
  {
    const auto p50 = model::project_chassis(area, vp50, 1600, 200.0, 6, 2048);
    const auto p100 =
        model::project_chassis(area, machine::xc2vp100(), 1600, 200.0, 6, 2048);
    check("F11: best-corner chassis GFLOPS > 27", 27.0, p50.gflops, 0.01);
    check("F12: VP100 ~ 50 GFLOPS", 50.4, p100.gflops, 0.02);
    check("F12: VP100/VP50 ~ 2x", 2.0, p100.gflops / p50.gflops, 0.1);
  }

  // --- Sec 6.4.2 -------------------------------------------------------------
  {
    const auto s = model::project_system(12, 8, 2048, 130.0, 2.06);
    check("6.4.2: 12-chassis GFLOPS", 148.3, s.gflops, 0.005);
    check("6.4.2: DRAM need (MB/s)", 877.5, s.dram_bytes_per_s / 1e6, 0.005);
    check("6.4.2: bandwidth met", 1.0, s.bandwidth_met ? 1.0 : 0.0, 0);
  }

  // --- Sec 6.3 ---------------------------------------------------------------
  check("6.3: FPGA/Opteron dgemm ratio ~ 0.5", 0.50, 2.06 / 4.1, 0.05);

  // --- Sec 5.1 models --------------------------------------------------------
  {
    blas3::MmArrayConfig mc;
    mc.k = 4;
    mc.m = 8;
    mc.adder_stages = 8;
    mc.mem_words_per_cycle = 8.0;
    blas3::MmArrayEngine engine(mc);
    const std::size_t n = 32;
    const auto out = engine.run(rng.matrix(n, n), rng.matrix(n, n), n);
    check("5.1: cycles ~ n^3/k", double(engine.model_cycles(n)),
          double(out.report.cycles), 0.01);
    check("5.1: I/O words = 2n^3/m + n^2", model::mm_io_words(n, 8),
          out.report.sram_words, 0.001);
  }

  // --- print ----------------------------------------------------------------
  bench::heading("Reproduction scoreboard");
  TextTable t({"Claim", "Expected", "Measured", "Status"});
  int failures = 0;
  for (const auto& c : checks) {
    t.row(c.claim, TextTable::num(c.expected, 3), TextTable::num(c.measured, 3),
          c.pass() ? "PASS" : "FAIL");
    if (!c.pass()) ++failures;
  }
  bench::print_table(t);
  std::printf("%zu checks, %d failures\n", checks.size(), failures);
  return failures == 0 ? 0 : 1;
}
