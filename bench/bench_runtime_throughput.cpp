// Acceptance benchmark for the plan/execute runtime: 8 independent GEMV
// jobs (n=512) run sequentially through Runtime::run, then concurrently
// through Runtime::submit on the shared worker pool. Reports the wall-clock
// speedup and checks that the concurrent results are bit-identical to the
// sequential ones — values AND per-job simulated cycle counts (the engines
// are deterministic and self-contained, so scheduling must not leak into
// the simulation).
//
// Exit status: 0 when the results match, 1 on any numeric or cycle
// mismatch. The speedup is printed but not gated — wall-clock depends on
// the host — so CI stays deterministic; run it interactively to see the
// >= 2x figure on any multi-core machine.
#include <chrono>
#include <cstdio>
#include <future>
#include <vector>

#include "common/random.hpp"
#include "common/thread_pool.hpp"
#include "host/runtime.hpp"

using namespace xd;

namespace {

constexpr std::size_t kJobs = 8;
constexpr std::size_t kN = 512;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  struct Job {
    std::vector<double> a;
    std::vector<double> x;
  };
  std::vector<Job> jobs;
  for (std::size_t j = 0; j < kJobs; ++j) {
    Rng rng(2005 + j);
    jobs.push_back({rng.matrix(kN, kN), rng.vector(kN)});
  }
  auto desc = [&](std::size_t j) {
    return host::OpDesc::gemv(jobs[j].a, kN, kN, jobs[j].x);
  };

  host::Runtime rt({});
  // Warm the plan cache and the pool outside the timed regions so both
  // paths pay the one-time costs before the comparison.
  (void)rt.run(desc(0));

  const auto t_seq = std::chrono::steady_clock::now();
  std::vector<host::Outcome> seq;
  for (std::size_t j = 0; j < kJobs; ++j) seq.push_back(rt.run(desc(j)));
  const double seq_s = seconds_since(t_seq);

  const auto t_con = std::chrono::steady_clock::now();
  std::vector<std::future<host::Outcome>> futs;
  for (std::size_t j = 0; j < kJobs; ++j) futs.push_back(rt.submit(desc(j)));
  std::vector<host::Outcome> con;
  for (auto& f : futs) con.push_back(f.get());
  const double con_s = seconds_since(t_con);

  int mismatches = 0;
  for (std::size_t j = 0; j < kJobs; ++j) {
    if (con[j].report.cycles != seq[j].report.cycles ||
        con[j].report.flops != seq[j].report.flops) {
      std::fprintf(stderr, "job %zu: cycle/flop mismatch (%llu vs %llu)\n", j,
                   static_cast<unsigned long long>(con[j].report.cycles),
                   static_cast<unsigned long long>(seq[j].report.cycles));
      ++mismatches;
    }
    if (con[j].values.size() != seq[j].values.size()) {
      std::fprintf(stderr, "job %zu: size mismatch\n", j);
      ++mismatches;
      continue;
    }
    for (std::size_t i = 0; i < con[j].values.size(); ++i) {
      if (con[j].values[i] != seq[j].values[i]) {  // bit-identical, not near
        std::fprintf(stderr, "job %zu: y[%zu] differs\n", j, i);
        ++mismatches;
        break;
      }
    }
  }

  const double speedup = con_s > 0 ? seq_s / con_s : 0.0;
  std::printf("runtime throughput: %zu gemv n=%zu jobs on %u workers\n", kJobs,
              kN, ThreadPool::shared().size());
  std::printf("  sequential : %8.1f ms\n", seq_s * 1e3);
  std::printf("  concurrent : %8.1f ms\n", con_s * 1e3);
  std::printf("  speedup    : %8.2fx\n", speedup);
  std::printf("  results    : %s\n",
              mismatches == 0 ? "bit-identical (values + cycles)"
                              : "MISMATCH");
  return mismatches == 0 ? 0 : 1;
}
