// google-benchmark microbenchmarks of the simulator substrate itself:
// softfloat op rates, pipelined-unit stepping, reduction-circuit cycle rate,
// and PE-array MACs/second — the numbers that bound how large an n the
// cycle-accurate experiments can afford.
#include <benchmark/benchmark.h>

#include <functional>
#include <thread>

#include "blas3/mm_array.hpp"
#include "common/parallel.hpp"
#include "common/random.hpp"
#include "fp/fpu.hpp"
#include "fp/softfloat.hpp"
#include "reduce/reduction_circuit.hpp"
#include "telemetry/session.hpp"

using namespace xd;

namespace {

std::vector<u64> random_bits(std::size_t n, u64 seed) {
  Rng rng(seed);
  std::vector<u64> v(n);
  for (auto& x : v) x = fp::to_bits(rng.uniform(-1e3, 1e3));
  return v;
}

void BM_SoftFloatAdd(benchmark::State& state) {
  const auto a = random_bits(4096, 1);
  const auto b = random_bits(4096, 2);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fp::add(a[i & 4095], b[i & 4095]));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SoftFloatAdd);

void BM_SoftFloatMul(benchmark::State& state) {
  const auto a = random_bits(4096, 3);
  const auto b = random_bits(4096, 4);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fp::mul(a[i & 4095], b[i & 4095]));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SoftFloatMul);

void BM_PipelinedAdderCycle(benchmark::State& state) {
  fp::PipelinedAdder add;
  const auto a = random_bits(4096, 5);
  std::size_t i = 0;
  for (auto _ : state) {
    add.issue(a[i & 4095], a[(i + 1) & 4095]);
    add.tick();
    benchmark::DoNotOptimize(add.take_output());
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PipelinedAdderCycle);

void BM_ReductionCircuitCycle(benchmark::State& state) {
  reduce::ReductionCircuit red;
  const auto a = random_bits(4096, 6);
  std::size_t i = 0;
  for (auto _ : state) {
    red.cycle(reduce::Input{a[i & 4095], (i & 63) == 63});
    benchmark::DoNotOptimize(red.take_result());
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReductionCircuitCycle);

void BM_MmArrayMacsPerSecond(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  const auto a = rng.matrix(n, n);
  const auto b = rng.matrix(n, n);
  blas3::MmArrayConfig cfg;
  cfg.mem_words_per_cycle = 8.0;
  blas3::MmArrayEngine engine(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(a, b, n));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n) * n * n);
}
BENCHMARK(BM_MmArrayMacsPerSecond)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

// Same run with a telemetry session attached: the registry is only touched
// once per run (publish-at-end), so this should track the bare benchmark
// within noise — a regression here means telemetry leaked into the hot loop.
void BM_MmArrayMacsPerSecondTelemetry(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  const auto a = rng.matrix(n, n);
  const auto b = rng.matrix(n, n);
  telemetry::Session session;
  blas3::MmArrayConfig cfg;
  cfg.mem_words_per_cycle = 8.0;
  cfg.telemetry = &session;
  blas3::MmArrayEngine engine(cfg);
  for (auto _ : state) {
    session.clear();
    benchmark::DoNotOptimize(engine.run(a, b, n));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n) * n * n);
}
BENCHMARK(BM_MmArrayMacsPerSecondTelemetry)
    ->Arg(32)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

// parallel_for before/after pair. The baseline replicates the previous
// implementation — spawn worker std::threads per call and join them — while
// BM_ParallelForPool is today's helper on the persistent shared pool. The
// gap is the per-call thread spawn + join cost the pool amortizes away.
void spawn_and_join_for(std::size_t begin, std::size_t end,
                        const std::function<void(std::size_t)>& fn,
                        unsigned workers) {
  const std::size_t count = end - begin;
  const std::size_t chunk = (count + workers - 1) / workers;
  std::vector<std::thread> threads;
  for (unsigned w = 0; w < workers; ++w) {
    const std::size_t lo = begin + w * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    threads.emplace_back([&fn, lo, hi] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    });
  }
  for (auto& t : threads) t.join();
}

void BM_ParallelForSpawn(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto a = random_bits(n, 8);
  std::vector<u64> out(n);
  for (auto _ : state) {
    spawn_and_join_for(
        0, n, [&](std::size_t i) { out[i] = fp::mul(a[i], a[i]); },
        default_workers());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_ParallelForSpawn)->Arg(1024)->Arg(16384);

void BM_ParallelForPool(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto a = random_bits(n, 8);
  std::vector<u64> out(n);
  for (auto _ : state) {
    parallel_for(0, n, [&](std::size_t i) { out[i] = fp::mul(a[i], a[i]); });
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_ParallelForPool)->Arg(1024)->Arg(16384);

}  // namespace

BENCHMARK_MAIN();
