// Extension bench ([32], Sec 7): sparse matrix-vector multiply on the
// tree architecture with the reduction circuit handling arbitrary row
// lengths. Reproduces the design's qualitative results: throughput tracks
// the nonzero stream (not the dense dimension), irregular structure costs
// lane underutilization but no stalls, and SpMXV beats dense GEMV as soon
// as density drops below ~k-elements-per-row economics.
#include "bench_util.hpp"
#include "blas2/mxv_tree.hpp"
#include "blas2/spmxv.hpp"
#include "common/random.hpp"
#include "host/reference.hpp"

using namespace xd;

int main() {
  Rng rng(21);
  const std::size_t n = 1024;

  bench::heading("SpMXV (k = 4): structure sweep at n = 1024");
  TextTable t({"Pattern", "nnz", "nnz/row", "Cycles", "MFLOPS @164MHz",
               "flops/cycle", "Lane util", "Stalls"});
  struct Case {
    std::string name;
    blas2::CrsMatrix m;
  };
  std::vector<Case> cases;
  cases.push_back({"tridiagonal", blas2::make_banded(n, 1, 31)});
  cases.push_back({"band hw=8", blas2::make_banded(n, 8, 32)});
  cases.push_back({"uniform 16/row", blas2::make_uniform_sparse(n, n, 16, 33)});
  cases.push_back({"uniform 64/row", blas2::make_uniform_sparse(n, n, 64, 34)});
  cases.push_back({"power-law <=128", blas2::make_power_law(n, n, 128, 35)});

  blas2::SpmxvConfig cfg;
  cfg.k = 4;
  cfg.mem_elements_per_cycle = 4.0;
  blas2::SpmxvEngine engine(cfg);
  const auto x = rng.vector(n);

  for (auto& c : cases) {
    const auto out = engine.run(c.m, x);
    const double ideal_cycles =
        static_cast<double>(c.m.nnz()) / cfg.k;  // all lanes busy
    t.row(c.name, c.m.nnz(),
          TextTable::num(static_cast<double>(c.m.nnz()) / n, 1),
          out.report.cycles,
          TextTable::num(out.report.sustained_mflops(), 0),
          TextTable::num(out.report.flops_per_cycle(), 2),
          bench::pct(ideal_cycles / static_cast<double>(out.report.cycles)),
          out.report.stall_cycles);
  }
  bench::print_table(t);
  bench::note("Lane utilization drops on short rows (last group zero-padded) "
              "- the irregular-structure cost the paper's SpMXV design "
              "absorbs without stalling, thanks to the arbitrary-set-size "
              "reduction circuit.\n");

  bench::heading("SpMXV vs dense GEMV on the same sparse operand (n = 1024)");
  blas2::MxvTreeEngine dense_engine{blas2::MxvTreeConfig{}};
  TextTable d({"nnz/row", "SpMXV cycles", "dense GEMV cycles", "speedup",
               "max |diff|"});
  for (std::size_t nnz : {4ul, 16ul, 64ul, 256ul}) {
    const auto m = blas2::make_uniform_sparse(n, n, nnz, 40 + nnz);
    const auto ys = engine.run(m, x);
    const auto yd = dense_engine.run(m.to_dense(), n, n, x);
    d.row(nnz, ys.report.cycles, yd.report.cycles,
          TextTable::num(static_cast<double>(yd.report.cycles) /
                             static_cast<double>(ys.report.cycles),
                         1),
          TextTable::num(host::max_abs_diff(ys.y, yd.y), 3));
  }
  bench::print_table(d);
  bench::note("Speedup ~ n / (2 nnz/row): the dense engine streams all n^2 "
              "words; SpMXV streams value+index per nonzero.");
  return 0;
}
