// Reproduces Sec 6.4: projected performance of the hierarchical GEMM on one
// chassis (12.4 GFLOPS) and a 12-chassis XD1 installation (148.3 GFLOPS),
// with the bandwidth-requirement checks the paper performs, plus a
// cycle-model scaling sweep over the number of FPGAs.
#include "bench_util.hpp"
#include "blas3/mm_hier.hpp"
#include "model/perf_model.hpp"
#include "model/projections.hpp"

using namespace xd;

int main() {
  bench::heading("Sec 6.4: chassis and multi-chassis projections (k=8, b=2048)");
  TextTable t({"Chassis", "FPGAs (l)", "GFLOPS", "Req. SRAM/FPGA", "Req. DRAM",
               "Req. inter-chassis", "Met by XD1"});
  for (unsigned chassis : {1u, 2u, 4u, 8u, 12u}) {
    const auto s = model::project_system(chassis, 8, 2048, 130.0, 2.06);
    t.row(chassis, s.total_fpgas, TextTable::num(s.gflops, 1),
          bench::gbs(s.sram_bytes_per_s), bench::gbs(s.dram_bytes_per_s),
          bench::gbs(s.interchassis_bytes_per_s),
          s.bandwidth_met ? "yes" : "NO");
  }
  bench::print_table(t);
  bench::note("Paper: 1 chassis = 2.06 x 6 = 12.4 GFLOPS (73.1 MB/s links); "
              "12 chassis = 148.3 GFLOPS, 877.5 MB/s DRAM/inter-chassis, all "
              "requirements met.\n");

  bench::heading("Cycle-model scaling: effective latency vs l (n = 16384)");
  TextTable s({"l (FPGAs)", "Compute cycles", "Speedup vs l=1",
               "Latency (s at 130 MHz)", "Stalls (I/O bound?)"});
  const std::size_t n = 16384;
  double base = 0.0;
  for (unsigned l : {1u, 2u, 4u, 8u, 16u, 32u, 72u}) {
    blas3::MmHierConfig cfg;
    cfg.l = l;
    cfg.b = 2048;
    cfg.dram_words_per_cycle = 3.2 * kGB / (kWordBytes * cfg.clock_mhz * 1e6);
    cfg.link_words_per_cycle = 2.0 * kGB / (kWordBytes * cfg.clock_mhz * 1e6);
    blas3::MmHierEngine engine(cfg);
    const auto out = engine.project(n);
    if (l == 1) base = static_cast<double>(out.report.cycles);
    s.row(l, out.report.cycles,
          TextTable::num(base / static_cast<double>(out.report.cycles), 2),
          TextTable::num(out.report.seconds(), 2),
          out.report.stall_cycles > 0 ? "I/O-limited" : "compute-bound");
  }
  bench::print_table(s);
  bench::note("Shape check: latency scales ~1/l through l = 72 because the "
              "3 k l / b words/cycle requirement stays far below the XD1 "
              "link budgets.");

  bench::heading("Why the hierarchy: naive long array vs Sec 5.2 design");
  TextTable w({"Design", "PEs", "Latency (n=8192)", "DRAM need (words/cyc)",
               "at 130 MHz", "fits 3.2 GB/s?"});
  for (unsigned l : {6u, 72u}) {
    for (const auto& pt : {model::gemm_naive_multi(8192, 8, l, 8),
                           model::gemm_hier_multi(8192, 8, l, 8, 2048)}) {
      const double bps = pt.words_per_cycle * kWordBytes * 130e6;
      w.row(pt.name, TextTable::num(pt.pes, 0),
            TextTable::num(pt.latency_cycles, 0),
            TextTable::num(pt.words_per_cycle, 3), bench::gbs(bps),
            bps <= 3.2e9 ? "yes" : "NO");
    }
  }
  bench::print_table(w);
  bench::note("The naive mapping leaves the SRAM level unused: its DRAM "
              "requirement grows as 3kl/m and breaks the XD1 budget at "
              "chassis scale - the Sec 5.2 hierarchy cuts it by b/m = 256x.");
  return 0;
}
