// Soft-vs-native FP backend comparison: runs each op kind's hot path under
// both arithmetic backends, verifies the results are bit-identical and the
// cycle counts equal (the backend must never change what the simulator
// computes, only how fast), and reports the wall-clock speedup.
//
// With XDBLAS_BENCH_JSON set, each row is also emitted as a JSONL object
// (event "backend_bench"); tools/bench_compare diffs those rows against
// BENCH_baseline.json.
#include <chrono>
#include <cstring>
#include <functional>

#include "bench_util.hpp"
#include "blas1/dot_engine.hpp"
#include "blas2/mxv_tree.hpp"
#include "blas2/spmxv.hpp"
#include "blas3/mm_array.hpp"
#include "blas3/mm_hier.hpp"
#include "common/random.hpp"
#include "fp/backend.hpp"
#include "fp/softfloat.hpp"
#include "telemetry/json.hpp"

using namespace xd;

namespace {

struct RunResult {
  std::vector<u64> bits;  ///< result values as bit patterns
  u64 cycles = 0;
};

struct Measurement {
  RunResult result;
  double best_ns = 0.0;
};

std::vector<u64> to_bits_vec(const std::vector<double>& v) {
  std::vector<u64> bits(v.size());
  std::memcpy(bits.data(), v.data(), v.size() * sizeof(double));
  return bits;
}

/// Best-of-`reps` wall-clock of `body` under the given backend.
Measurement measure(fp::BackendKind kind, int reps,
                    const std::function<RunResult()>& body) {
  fp::ScopedBackend scoped(kind);
  Measurement m;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    RunResult out = body();
    const auto stop = std::chrono::steady_clock::now();
    const double ns =
        std::chrono::duration<double, std::nano>(stop - start).count();
    if (r == 0 || ns < m.best_ns) m.best_ns = ns;
    m.result = std::move(out);
  }
  return m;
}

struct Case {
  std::string name;
  u64 flops;
  std::function<RunResult()> body;
};

void run_cases(const std::vector<Case>& cases, int reps) {
  TextTable t({"Op kind", "FP ops", "Cycles", "soft ms", "native ms",
               "Speedup", "Bit-identical"});
  for (const auto& c : cases) {
    const Measurement soft = measure(fp::BackendKind::Soft, reps, c.body);
    const Measurement nat = measure(fp::BackendKind::Native, reps, c.body);
    const bool bits_equal = soft.result.bits == nat.result.bits &&
                            soft.result.cycles == nat.result.cycles;
    const double speedup = soft.best_ns / nat.best_ns;
    t.row(c.name, c.flops, soft.result.cycles,
          TextTable::num(soft.best_ns / 1e6, 2),
          TextTable::num(nat.best_ns / 1e6, 2),
          TextTable::num(speedup, 1) + "x", bits_equal ? "yes" : "NO");
    telemetry::JsonWriter w;
    w.begin_object()
        .kv("event", "backend_bench")
        .kv("op", c.name)
        .kv("flops", c.flops)
        .kv("cycles", soft.result.cycles)
        .kv("soft_ns", soft.best_ns)
        .kv("native_ns", nat.best_ns)
        .kv("speedup", speedup)
        .kv("bits_equal", bits_equal)
        .end_object();
    bench::jsonl(w.str());
    if (!bits_equal) {
      std::fprintf(stderr, "FATAL: %s diverged between backends\n",
                   c.name.c_str());
      std::exit(1);
    }
  }
  bench::print_table(t);
}

}  // namespace

int main() {
  const auto& sel = fp::backend_selection();
  bench::heading("FP backend: soft vs native");
  bench::note(cat("host backend selection: requested=", sel.requested,
                  " active=", fp::backend_name(sel.backend->kind),
                  " conformance_cases=", sel.conformance.cases,
                  sel.fell_back ? " (FELL BACK to softfloat)" : ""));

  Rng rng(42);

  // Raw op-stream rates: the ceiling any engine speedup approaches as the
  // per-cycle simulation bookkeeping amortizes to zero.
  {
    const std::size_t n = 1 << 20;
    auto a = to_bits_vec(rng.vector(n, -1e3, 1e3));
    auto b = to_bits_vec(rng.vector(n, -1e3, 1e3));
    std::vector<Case> cases;
    cases.push_back(Case{"raw-add-1M", n, [a, b, n] {
                           const fp::Backend& be = fp::active_backend();
                           u64 acc = fp::kPosZero;
                           for (std::size_t i = 0; i < n; ++i) {
                             acc = be.add(acc, be.add(a[i], b[i]));
                           }
                           return RunResult{{acc}, 0};
                         }});
    cases.push_back(Case{"raw-mul-1M", n, [a, b, n] {
                           const fp::Backend& be = fp::active_backend();
                           u64 acc = fp::kPosZero;
                           for (std::size_t i = 0; i < n; ++i) {
                             acc = be.add(acc, be.mul(a[i], b[i]));
                           }
                           return RunResult{{acc}, 0};
                         }});
    run_cases(cases, 3);
  }

  // Cycle-accurate engines at their high-lane-count ("hot path") shapes:
  // every cycle feeds k multipliers, so the FP work dominates the per-cycle
  // simulation overhead that both backends pay equally.
  {
    std::vector<Case> cases;

    const std::size_t dot_n = 1 << 19;
    auto u = rng.vector(dot_n, -1e3, 1e3);
    auto v = rng.vector(dot_n, -1e3, 1e3);
    cases.push_back(Case{"dot-k8-512k", 2 * dot_n, [u, v] {
                           blas1::DotConfig cfg;
                           cfg.k = 8;
                           cfg.mem_words_per_cycle = 16.0;
                           blas1::DotEngine engine(cfg);
                           auto out = engine.run({u}, {v});
                           return RunResult{to_bits_vec(out.results),
                                            out.report.cycles};
                         }});

    const std::size_t gn = 512;
    auto ga = rng.matrix(gn, gn);
    auto gx = rng.vector(gn, -1e3, 1e3);
    cases.push_back(Case{"gemv-tree-k8-512", 2 * gn * gn, [ga, gx, gn] {
                           blas2::MxvTreeConfig cfg;
                           cfg.k = 8;
                           cfg.mem_words_per_cycle = 8.0;
                           blas2::MxvTreeEngine engine(cfg);
                           auto out = engine.run(ga, gn, gn, gx);
                           return RunResult{to_bits_vec(out.y),
                                            out.report.cycles};
                         }});

    blas2::CrsMatrix sp;
    {
      const std::size_t rows = 1024, cols = 1024;
      sp.rows = rows;
      sp.cols = cols;
      sp.row_ptr.push_back(0);
      for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = r % 16; c < cols; c += 16) {
          sp.values.push_back(rng.uniform(-1e3, 1e3));
          sp.col_idx.push_back(c);
        }
        sp.row_ptr.push_back(sp.values.size());
      }
    }
    auto sx = rng.vector(sp.cols, -1e3, 1e3);
    cases.push_back(Case{"spmxv-k8-1k", 2 * sp.values.size(), [sp, sx] {
                           blas2::SpmxvConfig cfg;
                           cfg.k = 8;
                           cfg.mem_elements_per_cycle = 8.0;
                           blas2::SpmxvEngine engine(cfg);
                           auto out = engine.run(sp, sx);
                           return RunResult{to_bits_vec(out.y),
                                            out.report.cycles};
                         }});

    const std::size_t an = 64;
    auto aa = rng.matrix(an, an);
    auto ab = rng.matrix(an, an);
    cases.push_back(Case{"gemm-array-k8-64", 2 * an * an * an, [aa, ab, an] {
                           blas3::MmArrayConfig cfg;
                           blas3::MmArrayEngine engine(cfg);
                           auto out = engine.run(aa, ab, an);
                           return RunResult{to_bits_vec(out.c),
                                            out.report.cycles};
                         }});

    const std::size_t hn = 256;
    auto ha = rng.matrix(hn, hn);
    auto hb = rng.matrix(hn, hn);
    cases.push_back(Case{"gemm-hier-256", 2 * hn * hn * hn, [ha, hb, hn] {
                           blas3::MmHierConfig cfg;
                           cfg.b = hn;
                           blas3::MmHierEngine engine(cfg);
                           auto out = engine.run(ha, hb, hn);
                           return RunResult{to_bits_vec(out.c),
                                            out.report.cycles};
                         }});

    run_cases(cases, 3);
  }

  bench::note(
      "Every row above computed bit-identical values and identical cycle "
      "counts under both backends; the speedup is pure wall-clock.");
  return 0;
}
