// Reproduces Table 2: characteristics of the 64-bit floating-point units and
// the reduction circuit — pipeline depths, slice counts and clock from the
// calibrated area model, plus live functional checks of the modeled units
// (bit-exactness rate and reduction-circuit throughput at those depths).
#include "bench_util.hpp"
#include "common/random.hpp"
#include "fp/fpu.hpp"
#include "fp/softfloat.hpp"
#include "machine/area.hpp"
#include "reduce/reduction_circuit.hpp"

using namespace xd;

int main() {
  machine::AreaModel area;
  const auto& cores = area.cores();

  bench::heading("Table 2: 64-bit FP units and reduction circuit");
  TextTable t({"Unit", "Pipeline stages", "Area (slices)", "Clock (MHz)"});
  t.row("Adder", cores.adder_stages, cores.adder_slices, cores.clock_mhz);
  t.row("Multiplier", cores.multiplier_stages, cores.multiplier_slices,
        cores.clock_mhz);
  t.row("Reduction circuit", std::string("-"), area.reduction_circuit_slices(),
        cores.clock_mhz);
  bench::print_table(t);
  bench::note("Paper: adder 14 stages / 892 slices, multiplier 11 / 835,");
  bench::note("reduction circuit 1658 slices, all at 170 MHz.\n");

  bench::heading("Functional check: bit-exact IEEE-754 against the host FPU");
  Rng rng(2);
  std::size_t add_match = 0, mul_match = 0;
  const std::size_t trials = 200000;
  for (std::size_t i = 0; i < trials; ++i) {
    const u64 a = rng.raw_bits();
    const u64 b = rng.raw_bits();
    volatile double x = fp::from_bits(a), y = fp::from_bits(b);
    volatile double s = x + y, p = x * y;
    add_match += fp::same_value(fp::add(a, b), fp::to_bits(s)) ? 1 : 0;
    mul_match += fp::same_value(fp::mul(a, b), fp::to_bits(p)) ? 1 : 0;
  }
  TextTable f({"Op", "Random bit-pattern trials", "Bit-exact"});
  f.row("add", trials, bench::pct(double(add_match) / double(trials)));
  f.row("mul", trials, bench::pct(double(mul_match) / double(trials)));
  bench::print_table(f);

  bench::heading("Reduction circuit at alpha = 14: throughput and buffers");
  reduce::ReductionCircuit red(cores.adder_stages);
  const std::size_t sets = 256, s = 512;
  std::size_t done = 0;
  u64 cycles = 0;
  std::size_t si = 0, ei = 0;
  while (done < sets) {
    std::optional<reduce::Input> in;
    if (si < sets) in = reduce::Input{fp::to_bits(rng.uniform(-1, 1)), ei + 1 == s};
    const bool consumed = red.cycle(in);
    ++cycles;
    if (consumed && ++ei == s) {
      ei = 0;
      ++si;
    }
    if (red.take_result()) ++done;
  }
  TextTable r({"Metric", "Value", "Paper claim"});
  r.row("FP adders", red.adders_used(), "1");
  r.row("Buffer capacity (words)", red.buffer_words(), "2 alpha^2 = 392");
  r.row("Peak buffer occupancy", red.stats().peak_buffer_words, "<= alpha^2 = 196");
  r.row("Input stalls", red.stats().stall_cycles, "0 (no stalling)");
  r.row("Cycles for 256 sets of 512",
        cat(cycles, " (inputs ", sets * s, " + tail ", cycles - sets * s, ")"),
        "< sum s_i + 2 alpha^2");
  bench::print_table(r);
  return 0;
}
