// Shared helpers for the experiment-reproduction benches. Each bench binary
// regenerates one table or figure from the paper and prints paper-reported
// values next to what this reproduction measures.
//
// Machine-readable output: set XDBLAS_BENCH_JSON to a file path ("-" for
// stdout) and every heading / note / table / report that goes through these
// helpers is also appended there as one JSON object per line (JSONL), so the
// perf-trajectory scripts can scrape benches without parsing aligned text.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/table.hpp"
#include "host/report.hpp"
#include "telemetry/export.hpp"
#include "telemetry/json.hpp"

namespace xd::bench {

inline std::FILE* jsonl_stream() {
  static std::FILE* f = [] {
    const char* path = std::getenv("XDBLAS_BENCH_JSON");
    if (!path || !*path) return static_cast<std::FILE*>(nullptr);
    if (std::string(path) == "-") return stdout;
    return std::fopen(path, "a");
  }();
  return f;
}

inline void jsonl(const std::string& line) {
  if (std::FILE* f = jsonl_stream()) {
    std::fputs(line.c_str(), f);
    std::fputc('\n', f);
    std::fflush(f);
  }
}

inline void heading(const std::string& title) {
  std::printf("\n=== %s ===\n\n", title.c_str());
  if (jsonl_stream()) {
    telemetry::JsonWriter w;
    w.begin_object().kv("event", "heading").kv("title", title).end_object();
    jsonl(w.str());
  }
}

inline void note(const std::string& text) {
  std::printf("%s\n", text.c_str());
  if (jsonl_stream()) {
    telemetry::JsonWriter w;
    w.begin_object().kv("event", "note").kv("text", text).end_object();
    jsonl(w.str());
  }
}

inline void print_table(const TextTable& t) {
  std::printf("%s\n", t.render().c_str());
  if (jsonl_stream()) {
    telemetry::JsonWriter w;
    w.begin_object().kv("event", "table");
    w.key("header").begin_array();
    for (const auto& h : t.header()) w.value(h);
    w.end_array();
    w.key("rows").begin_array();
    for (const auto& row : t.rows()) {
      w.begin_array();
      for (const auto& cell : row) w.value(cell);
      w.end_array();
    }
    w.end_array().end_object();
    jsonl(w.str());
  }
}

/// Emit one measured PerfReport as a JSONL row (no-op without the env var).
inline void report_row(const std::string& label, const host::PerfReport& r) {
  if (!jsonl_stream()) return;
  telemetry::JsonWriter w;
  w.begin_object().kv("event", "report").kv("label", label);
  w.key("report").raw(telemetry::report_to_json(r));
  w.end_object();
  jsonl(w.str());
}

/// "2.06 GB/s"-style formatting.
inline std::string gbs(double bytes_per_s) {
  if (bytes_per_s >= 1e9) return TextTable::num(bytes_per_s / 1e9, 2) + " GB/s";
  return TextTable::num(bytes_per_s / 1e6, 1) + " MB/s";
}

inline std::string mflops(double flops) {
  if (flops >= 1e9) return TextTable::num(flops / 1e9, 2) + " GFLOPS";
  return TextTable::num(flops / 1e6, 0) + " MFLOPS";
}

inline std::string pct(double fraction) {
  return TextTable::num(fraction * 100.0, 1) + "%";
}

}  // namespace xd::bench
