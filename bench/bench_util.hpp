// Shared helpers for the experiment-reproduction benches. Each bench binary
// regenerates one table or figure from the paper and prints paper-reported
// values next to what this reproduction measures.
#pragma once

#include <cstdio>
#include <string>

#include "common/table.hpp"

namespace xd::bench {

inline void heading(const std::string& title) {
  std::printf("\n=== %s ===\n\n", title.c_str());
}

inline void note(const std::string& text) { std::printf("%s\n", text.c_str()); }

inline void print_table(const TextTable& t) {
  std::printf("%s\n", t.render().c_str());
}

/// "2.06 GB/s"-style formatting.
inline std::string gbs(double bytes_per_s) {
  if (bytes_per_s >= 1e9) return TextTable::num(bytes_per_s / 1e9, 2) + " GB/s";
  return TextTable::num(bytes_per_s / 1e6, 1) + " MB/s";
}

inline std::string mflops(double flops) {
  if (flops >= 1e9) return TextTable::num(flops / 1e9, 2) + " GFLOPS";
  return TextTable::num(flops / 1e6, 0) + " MFLOPS";
}

inline std::string pct(double fraction) {
  return TextTable::num(fraction * 100.0, 1) + "%";
}

}  // namespace xd::bench
