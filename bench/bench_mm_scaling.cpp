// Ablation: GEMM design-space sweeps that back the Sec 5 analysis —
//  (a) measured cycles vs the n^3/k model across k and n (cycle-accurate),
//  (b) I/O traffic vs the Theta(n^3/m) Hong-Kung bound across m,
//  (c) the bandwidth crossover: sustained flops/cycle as the external
//      memory rate drops below the required 3k/m words/cycle.
#include <array>

#include "bench_util.hpp"
#include "blas3/mm_array.hpp"
#include "common/random.hpp"
#include "model/perf_model.hpp"

using namespace xd;

int main() {
  Rng rng(14);

  bench::heading("(a) Effective latency vs model n^3/k (cycle-accurate)");
  TextTable a({"k", "m", "n", "cycles", "n^3/k", "deviation", "stalls"});
  for (const auto& [k, m, n] : std::vector<std::array<unsigned, 3>>{
           {1, 8, 32}, {2, 8, 32}, {4, 8, 32}, {8, 8, 64}, {4, 16, 64},
           {8, 16, 64}, {8, 8, 96}}) {
    blas3::MmArrayConfig cfg;
    cfg.k = k;
    cfg.m = m;
    cfg.adder_stages = std::min<unsigned>(8, m * m / k);
    cfg.mem_words_per_cycle = 8.0;
    blas3::MmArrayEngine engine(cfg);
    const auto out = engine.run(rng.matrix(n, n), rng.matrix(n, n), n);
    const double model = static_cast<double>(engine.model_cycles(n));
    a.row(k, m, n, out.report.cycles, engine.model_cycles(n),
          bench::pct(static_cast<double>(out.report.cycles) / model - 1.0),
          out.report.stall_cycles);
  }
  bench::print_table(a);

  bench::heading("(b) External I/O words vs Theta(n^3/m) (n = 64)");
  TextTable b({"m", "measured words", "model 2n^3/m + n^2", "on-chip words 2m^2"});
  for (unsigned m : {4u, 8u, 16u, 32u}) {
    blas3::MmArrayConfig cfg;
    cfg.k = 4;
    cfg.m = m;
    cfg.adder_stages = std::min<unsigned>(8, m * m / 4);
    cfg.mem_words_per_cycle = 16.0;
    blas3::MmArrayEngine engine(cfg);
    const auto out = engine.run(rng.matrix(64, 64), rng.matrix(64, 64), 64);
    b.row(m, TextTable::num(out.report.sram_words, 0),
          TextTable::num(model::mm_io_words(64, m), 0), 2 * m * m);
  }
  bench::print_table(b);
  bench::note("Doubling the on-chip block edge m halves the external traffic "
              "- the Hong-Kung I/O lower bound shape.\n");

  bench::heading("(c) Bandwidth crossover (k = 8, m = 8: requirement 3 w/c)");
  TextTable c({"mem words/cycle", "cycles", "flops/cycle (16 ideal)",
               "stall fraction"});
  for (double rate : {8.0, 4.0, 3.0, 2.5, 2.0, 1.0}) {
    blas3::MmArrayConfig cfg;
    cfg.mem_words_per_cycle = rate;
    blas3::MmArrayEngine engine(cfg);
    const auto out = engine.run(rng.matrix(32, 32), rng.matrix(32, 32), 32);
    c.row(TextTable::num(rate, 1), out.report.cycles,
          TextTable::num(out.report.flops_per_cycle(), 2),
          bench::pct(static_cast<double>(out.report.stall_cycles) /
                     static_cast<double>(out.report.cycles)));
  }
  bench::print_table(c);
  bench::note("Above 3 words/cycle the design is compute-bound at 2k "
              "flops/cycle; below it, throughput degrades linearly with the "
              "available bandwidth - matching the Sec 5.1 requirement.");

  bench::heading("(d) Related-work design points (Sec 2.2), n = 1024");
  TextTable d({"Design", "PEs/MACs", "On-chip words", "Latency (cycles)",
               "Bandwidth (words/cyc)"});
  const std::size_t N = 1024;
  for (const auto& pt :
       {model::gemm_zhuo04(N), model::gemm_dou05(N, 8, 32),
        model::gemm_sc05(N, 8, 8), model::gemm_sc05(N, 8, 128)}) {
    d.row(pt.name, TextTable::num(pt.pes, 0),
          TextTable::num(pt.storage_words, 0),
          TextTable::num(pt.latency_cycles, 0),
          TextTable::num(pt.words_per_cycle, 3));
  }
  bench::print_table(d);
  bench::note("The [30] precursor is fastest but needs Theta(n^2) on-chip "
              "words (2M at n=1024 - far beyond any Virtex-II Pro); this "
              "paper's design holds storage at 2m^2 and trades latency "
              "n^3/k, with bandwidth falling as 3k/m.");
  return 0;
}
