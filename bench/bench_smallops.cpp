// Small-op executor throughput: ops/sec for 1e5+ tiny dot/gemv ops pushed
// through the three hot submission paths — Runtime::submit (single and
// multi-producer), Runtime::run_batch (same-shape runs), and the serve
// loopback (TCP daemon + shared Runtime). Host-side overhead, not compute,
// dominates at these sizes; this bench is the regression gate for the
// work-stealing pool, plan pinning, and the batch fast path.
//
// Hard gates (exit non-zero, immune to runner noise):
//   * every concurrent result is bit-identical — values AND cycles — to a
//     sequential single-threaded execution of the same descriptor;
//   * ThreadPool::submit's task machinery stays within its allocation
//     budget (the move-only wrapper removed the shared_ptr<packaged_task>
//     + std::function double allocation; a global operator-new counter
//     measures allocations/op directly).
//
// Wall-clock fields (ns_per_op) are compared against BENCH_smallops.json by
// tools/bench_compare with the usual perf threshold (warn-only in CI).
// XDBLAS_SMALLOPS_OPS scales the op count (default 100000).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/random.hpp"
#include "common/util.hpp"
#include "host/runtime.hpp"
#include "serve/proto.hpp"
#include "serve/server.hpp"
#include "telemetry/json.hpp"

// ---- global allocation counter ---------------------------------------------
// Counts every operator-new in the process; arms snapshot it around their
// timed region to report allocations/op. Relaxed is fine: the snapshots
// happen after all worker threads quiesced (futures consumed, pool idle).
namespace {
std::atomic<unsigned long long> g_allocs{0};
}

void* operator new(std::size_t sz) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(sz ? sz : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t sz) { return operator new(sz); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace xd;
using host::OpDesc;
using host::Outcome;
using host::Runtime;

struct Clock {
  std::chrono::steady_clock::time_point t0 = std::chrono::steady_clock::now();
  double ns() const {
    return std::chrono::duration<double, std::nano>(
               std::chrono::steady_clock::now() - t0)
        .count();
  }
};

/// One distinct tiny workload shape: caller-owned operands + the expected
/// (sequential) digest and cycle count every concurrent execution must hit.
struct TinyOp {
  std::vector<double> a, b, x;
  OpDesc desc;
  u64 fnv = 0;
  u64 cycles = 0;
};

/// K distinct tiny dots (n=32) and K distinct tiny GEMVs (16x16),
/// interleaved dot-first. Sequential expectations come from a fresh
/// single-threaded Runtime.
std::vector<TinyOp> make_tiny_ops(std::size_t k) {
  std::vector<TinyOp> ops(2 * k);
  for (std::size_t i = 0; i < k; ++i) {
    {
      TinyOp& t = ops[2 * i];
      Rng rng(1000 + i);
      t.a = rng.vector(32);
      t.b = rng.vector(32);
      t.desc = OpDesc::dot(t.a, t.b);
    }
    {
      TinyOp& t = ops[2 * i + 1];
      Rng rng(2000 + i);
      t.a = rng.matrix(16, 16);
      t.x = rng.vector(16);
      t.desc = OpDesc::gemv(t.a, 16, 16, t.x);
    }
  }
  Runtime seq({});
  for (auto& t : ops) {
    const Outcome out = seq.run(t.desc);
    t.fnv = serve::values_fnv(out.values);
    t.cycles = out.report.cycles;
  }
  return ops;
}

struct ArmResult {
  std::string op;
  std::size_t ops = 0;
  double wall_ns = 0;
  u64 cycles = 0;          ///< deterministic workload total (hard-gated)
  std::size_t mismatches = 0;
  double allocs_per_op = 0;
};

bool g_all_ok = true;

void emit(const ArmResult& r) {
  const double ns_per_op = r.ops ? r.wall_ns / static_cast<double>(r.ops) : 0;
  const double ops_per_sec = r.wall_ns > 0
                                 ? static_cast<double>(r.ops) * 1e9 / r.wall_ns
                                 : 0;
  const bool ok = r.mismatches == 0;
  if (!ok) g_all_ok = false;
  std::printf("%-22s %9zu ops  %8.0f ops/s  %7.0f ns/op  %5.1f allocs/op%s\n",
              r.op.c_str(), r.ops, ops_per_sec, ns_per_op, r.allocs_per_op,
              ok ? "" : "  [MISMATCH]");
  telemetry::JsonWriter w;
  w.begin_object();
  w.kv("event", std::string_view("smallops_bench"));
  w.kv("op", r.op);
  w.kv("ops", static_cast<u64>(r.ops));
  w.kv("ns_per_op", ns_per_op);
  w.kv("ops_per_sec", ops_per_sec);
  w.kv("cycles", r.cycles);
  w.kv("bits_equal", ok);
  w.kv("allocs_per_op", r.allocs_per_op);
  w.end_object();
  bench::jsonl(w.str());
}

/// Verify one outcome against its TinyOp expectation (values digest AND
/// cycles, the runtime determinism contract at wire strength).
bool matches(const TinyOp& t, const Outcome& out) {
  return serve::values_fnv(out.values) == t.fnv && out.report.cycles == t.cycles;
}

u64 workload_cycles(const std::vector<TinyOp>& tiny, std::size_t n_ops) {
  u64 c = 0;
  for (std::size_t i = 0; i < n_ops; ++i) c += tiny[i % tiny.size()].cycles;
  return c;
}

// ---- arm 1: single-producer submit -----------------------------------------
ArmResult arm_submit(const std::vector<TinyOp>& tiny, std::size_t n_ops,
                     const char* name, unsigned producers,
                     bool pinned = false) {
  Runtime rt({});
  ArmResult r;
  r.op = name;
  r.ops = n_ops;
  r.cycles = workload_cycles(tiny, n_ops);

  // Pinned mode: the plan for each shape is interned once up front and the
  // handle rides along with every submit — the serve-daemon usage pattern.
  std::vector<host::PlanHandle> handles(tiny.size());
  if (pinned) {
    for (std::size_t i = 0; i < tiny.size(); ++i) {
      handles[i] = rt.pin_plan(tiny[i].desc);
    }
  }

  std::atomic<std::size_t> mism{0};
  const unsigned long long a0 = g_allocs.load();
  Clock clk;
  std::vector<std::thread> threads;
  for (unsigned p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      // Windowed: bounded futures in flight per producer, no unbounded
      // outcome buildup.
      constexpr std::size_t kWindow = 2048;
      const std::size_t lo = p * n_ops / producers;
      const std::size_t hi = (p + 1) * n_ops / producers;
      std::vector<std::future<Outcome>> futs;
      futs.reserve(kWindow);
      std::size_t base = lo;
      for (std::size_t i = lo; i < hi; ++i) {
        const std::size_t s = i % tiny.size();
        futs.push_back(pinned ? rt.submit(tiny[s].desc, handles[s])
                              : rt.submit(tiny[s].desc));
        if (futs.size() == kWindow || i + 1 == hi) {
          for (std::size_t j = 0; j < futs.size(); ++j) {
            if (!matches(tiny[(base + j) % tiny.size()], futs[j].get())) {
              mism.fetch_add(1, std::memory_order_relaxed);
            }
          }
          base = i + 1;
          futs.clear();
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  r.wall_ns = clk.ns();
  r.allocs_per_op =
      static_cast<double>(g_allocs.load() - a0) / static_cast<double>(n_ops);
  r.mismatches = mism.load();
  return r;
}

// ---- arm 2: run_batch with same-shape runs ---------------------------------
ArmResult arm_batch(const std::vector<TinyOp>& tiny, std::size_t n_ops) {
  Runtime rt({});
  ArmResult r;
  r.op = "batch-tiny";
  r.ops = n_ops;

  // Same-PlanKey runs of 64: the layout the batch fast path exists for
  // (a serving queue naturally arrives shape-clustered).
  constexpr std::size_t kRun = 64;
  std::vector<const TinyOp*> order;
  order.reserve(n_ops);
  for (std::size_t i = 0; i < n_ops; ++i) {
    order.push_back(&tiny[(i / kRun) % tiny.size()]);
  }
  for (const TinyOp* t : order) r.cycles += t->cycles;

  const unsigned long long a0 = g_allocs.load();
  Clock clk;
  constexpr std::size_t kChunk = 8192;
  for (std::size_t lo = 0; lo < n_ops; lo += kChunk) {
    const std::size_t hi = std::min(n_ops, lo + kChunk);
    std::vector<OpDesc> descs;
    descs.reserve(hi - lo);
    for (std::size_t i = lo; i < hi; ++i) descs.push_back(order[i]->desc);
    const std::vector<Outcome> outs = rt.run_batch(descs);
    for (std::size_t i = lo; i < hi; ++i) {
      if (!matches(*order[i], outs[i - lo])) ++r.mismatches;
    }
  }
  r.wall_ns = clk.ns();
  r.allocs_per_op =
      static_cast<double>(g_allocs.load() - a0) / static_cast<double>(n_ops);
  return r;
}

// ---- arm 3: serve loopback -------------------------------------------------
ArmResult arm_serve(std::size_t n_ops, std::size_t conns) {
  ArmResult r;
  r.op = "serve-tiny";
  r.ops = n_ops;

  // Distinct tiny request lines; the server materializes operands from the
  // seed, so the sequential reference parses the same lines locally.
  std::vector<std::string> lines;
  for (std::size_t i = 0; i < 8; ++i) {
    lines.push_back(cat("dot --n 32 --seed ", 100 + i));
  }
  host::ContextConfig base_cfg;
  Runtime local(base_cfg);
  std::vector<u64> fnv(lines.size());
  std::vector<u64> cycles(lines.size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    serve::Request req;
    serve::parse_record(lines[i], i + 1, base_cfg, req);
    const Outcome out = local.run(req.desc);
    fnv[i] = serve::values_fnv(out.values);
    cycles[i] = out.report.cycles;
  }
  const std::size_t per_conn = n_ops / conns;
  for (std::size_t i = 0; i < conns * per_conn; ++i) {
    r.cycles += cycles[i % lines.size()];
  }
  r.ops = conns * per_conn;

  serve::ServerConfig scfg;
  scfg.max_inflight = 1 << 20;  // throughput arm: never shed
  serve::Server server(scfg);
  std::thread accept_thread([&] { server.serve(); });

  std::atomic<std::size_t> mism{0};
  std::atomic<std::size_t> answered{0};
  Clock clk;
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < conns; ++c) {
    threads.emplace_back([&] {
      try {
        Socket sock = tcp_connect("127.0.0.1", server.port());
        std::string payload;
        for (std::size_t i = 0; i < per_conn; ++i) {
          payload += lines[i % lines.size()];
          payload += '\n';
        }
        if (!sock.send_all(payload)) {
          mism.fetch_add(per_conn);
          return;
        }
        sock.shutdown_write();
        LineFramer framer(1 << 20);
        char buf[16384];
        std::string rec;
        bool truncated = false;
        std::size_t idx = 0;
        for (;;) {
          const long got = sock.recv_some(buf, sizeof buf);
          if (got <= 0) break;
          framer.feed(buf, static_cast<std::size_t>(got));
          while (framer.next(rec, truncated)) {
            const std::size_t i = idx++;
            answered.fetch_add(1, std::memory_order_relaxed);
            // Cheap wire-level check: the reply must carry the expected
            // values_fnv digest for its line index.
            char want[32];
            std::snprintf(want, sizeof want, "\"values_fnv\":\"%016llx\"",
                          static_cast<unsigned long long>(
                              fnv[i % lines.size()]));
            if (rec.find(want) == std::string::npos) {
              mism.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
        if (idx != per_conn) mism.fetch_add(per_conn - idx);
      } catch (const std::exception&) {
        mism.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  r.wall_ns = clk.ns();
  r.mismatches = mism.load();
  server.drain();
  accept_thread.join();
  return r;
}

// ---- arm 4: raw pool-task machinery (allocation budget) --------------------
ArmResult arm_pool_noop(std::size_t n_ops) {
  ThreadPool& pool = ThreadPool::shared();
  ArmResult r;
  r.op = "pool-submit-noop";
  r.ops = n_ops;
  r.cycles = 0;

  const unsigned long long a0 = g_allocs.load();
  Clock clk;
  constexpr std::size_t kWindow = 4096;
  std::vector<std::future<int>> futs;
  futs.reserve(kWindow);
  for (std::size_t i = 0; i < n_ops; ++i) {
    futs.push_back(pool.submit([] { return 1; }));
    if (futs.size() == kWindow || i + 1 == n_ops) {
      for (auto& f : futs) {
        if (f.get() != 1) ++r.mismatches;
      }
      futs.clear();
    }
  }
  r.wall_ns = clk.ns();
  r.allocs_per_op =
      static_cast<double>(g_allocs.load() - a0) / static_cast<double>(n_ops);
  return r;
}

}  // namespace

int main() {
  std::size_t n_ops = 100000;
  if (const char* env = std::getenv("XDBLAS_SMALLOPS_OPS")) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) n_ops = v;
  }

  bench::heading("Small-op executor throughput (tiny dot n=32 / gemv 16x16)");
  const auto tiny = make_tiny_ops(4);

  const ArmResult pool_noop = arm_pool_noop(n_ops);
  emit(pool_noop);
  emit(arm_submit(tiny, n_ops, "submit-tiny-1p", 1));
  emit(arm_submit(tiny, n_ops, "submit-tiny-4p", 4));
  emit(arm_submit(tiny, n_ops, "submit-tiny-pinned", 1, /*pinned=*/true));
  emit(arm_batch(tiny, n_ops));
  emit(arm_serve(std::max<std::size_t>(n_ops / 5, 1000), 4));

  // Allocation budget for the raw task machinery: the move-only wrapper
  // keeps pool.submit at (task shared-state + queue-growth) — comfortably
  // under 4 allocations/op. The old shared_ptr<packaged_task>-in-
  // std::function path measured ~5.
  if (pool_noop.allocs_per_op > 4.0) {
    std::fprintf(stderr,
                 "FAIL: pool.submit allocations/op %.2f exceeds budget 4.0\n",
                 pool_noop.allocs_per_op);
    return 1;
  }
  if (!g_all_ok) {
    std::fprintf(stderr, "FAIL: concurrent results diverged from sequential\n");
    return 1;
  }
  std::printf("\nall paths bit-identical to sequential; allocation budget ok\n");
  return 0;
}
