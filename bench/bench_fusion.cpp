// Fused vs unfused op-graph execution: runs the CG-step chain (A*p feeding
// the p·Ap dot) and the Jacobi batch sweep (S systems sharing one matrix)
// both as fused graph plans (Runtime::run_graph) and as the equivalent
// per-op sequence, verifies the fused run reproduces the per-op values bit
// for bit, and reports the DRAM staging cycles each plan pays plus the
// wall clock.
//
// Staging cycles are deterministic simulator output — the fused plan MUST
// pay strictly fewer on the DRAM-placed workloads, and the binary exits
// nonzero if it doesn't (the fusion-smoke CI job leans on this). Wall
// clock is informational: fusion saves simulated staging, not host time.
//
// With XDBLAS_BENCH_JSON set, each row is also emitted as a JSONL object
// (event "fusion_bench"); tools/bench_compare diffs those rows against
// BENCH_fusion.json.
#include <chrono>
#include <cstring>
#include <deque>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/random.hpp"
#include "host/context.hpp"
#include "host/graph.hpp"
#include "telemetry/json.hpp"

using namespace xd;

namespace {

bool bits_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

void feed(host::OpDesc& d, host::OperandSlot slot,
          const std::vector<double>* v) {
  switch (slot) {
    case host::OperandSlot::A: d.a = v; break;
    case host::OperandSlot::B: d.b = v; break;
    case host::OperandSlot::X: d.x = v; break;
  }
}

/// The per-op equivalent of a graph run: execute the nodes in index order
/// (the builders below list producers before consumers) with each edge-fed
/// slot pointed at the producer's just-computed result.
std::vector<host::Outcome> run_unfused(host::Runtime& rt,
                                       const host::GraphDesc& g) {
  std::vector<host::Outcome> outs;
  outs.reserve(g.nodes.size());
  for (std::size_t i = 0; i < g.nodes.size(); ++i) {
    host::OpDesc d = g.nodes[i].desc;
    for (const auto& e : g.edges) {
      if (e.to == i) feed(d, e.slot, &outs[e.from].values);
    }
    outs.push_back(rt.run(d));
  }
  return outs;
}

template <typename F>
double best_ns_of(int reps, F&& body) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    body();
    const auto stop = std::chrono::steady_clock::now();
    const double ns =
        std::chrono::duration<double, std::nano>(stop - start).count();
    if (r == 0 || ns < best) best = ns;
  }
  return best;
}

struct Workload {
  std::string name;
  bool expect_saving = false;  ///< DRAM-placed: fusion must save staging
  host::GraphDesc graph;
  std::deque<std::vector<double>> pool;  ///< stable operand storage
};

/// One CG iteration's FPGA chain: q = A*p from DRAM, then p·q with p
/// SRAM-resident and q forwarded on-chip instead of round-tripping.
Workload cg_step(Rng& rng, std::size_t n) {
  Workload w;
  w.name = cat("cg-step-", n, "-dram");
  w.expect_saving = true;
  const auto& a = w.pool.emplace_back(rng.matrix(n, n));
  const auto& p = w.pool.emplace_back(rng.vector(n));

  host::GraphNode ap;
  ap.name = "ap";
  ap.desc.kind = host::OpKind::Gemv;
  ap.desc.placement = host::Placement::Dram;
  ap.desc.rows = ap.desc.cols = n;
  ap.desc.a = &a;
  ap.desc.x = &p;
  w.graph.nodes.push_back(ap);

  host::GraphNode pap;
  pap.name = "pap";
  pap.desc.kind = host::OpKind::Dot;
  pap.desc.placement = host::Placement::Dram;
  pap.desc.cols = n;
  pap.desc.a = &p;  // shared with the gemv's x: staged once for the chain
  w.graph.nodes.push_back(pap);
  w.graph.edges.push_back({0, 1, host::OperandSlot::B});
  return w;
}

/// One Jacobi sweep over `systems` right-hand sides: every system multiplies
/// by the same DRAM-placed iteration matrix, which the graph plan stages
/// once instead of once per system.
Workload jacobi_sweep(Rng& rng, std::size_t n, std::size_t systems) {
  Workload w;
  w.name = cat("jacobi-sweep-", n, "x", systems, "-dram");
  w.expect_saving = true;
  const auto& a = w.pool.emplace_back(rng.matrix(n, n));
  for (std::size_t s = 0; s < systems; ++s) {
    host::GraphNode nd;
    nd.name = cat("sys", s);
    nd.desc.kind = host::OpKind::Gemv;
    nd.desc.placement = host::Placement::Dram;
    nd.desc.rows = nd.desc.cols = n;
    nd.desc.a = &a;
    nd.desc.x = &w.pool.emplace_back(rng.vector(n));
    w.graph.nodes.push_back(nd);
  }
  return w;
}

/// SRAM control: nothing is staged either way, so fusion must change
/// nothing — a zero row that keeps the bench honest about where the win
/// comes from.
Workload cg_step_sram(Rng& rng, std::size_t n) {
  Workload w = cg_step(rng, n);
  w.name = cat("cg-step-", n, "-sram");
  w.expect_saving = false;
  for (auto& nd : w.graph.nodes) nd.desc.placement = host::Placement::Sram;
  return w;
}

}  // namespace

int main() {
  bench::heading("Graph fusion: fused chains vs per-op execution");

  Rng rng(2005);
  // deque, not vector: growth must never relocate a Workload, or the node
  // descs' pointers into its operand pool would dangle.
  std::deque<Workload> workloads;
  workloads.push_back(cg_step(rng, 512));
  workloads.push_back(jacobi_sweep(rng, 256, 8));
  workloads.push_back(cg_step_sram(rng, 512));

  TextTable t({"Workload", "Nodes", "fused stage", "unfused stage", "saved",
               "fused ms", "unfused ms", "Bit-identical"});
  int rc = 0;
  for (auto& w : workloads) {
    host::Context fused_ctx;
    host::Context lone_ctx;
    const int reps = 3;

    host::GraphOutcome fused = fused_ctx.runtime().run_graph(w.graph);
    const double fused_ns = best_ns_of(
        reps, [&] { fused = fused_ctx.runtime().run_graph(w.graph); });

    std::vector<host::Outcome> lone = run_unfused(lone_ctx.runtime(), w.graph);
    const double unfused_ns =
        best_ns_of(reps, [&] { lone = run_unfused(lone_ctx.runtime(), w.graph); });

    bool equal = fused.nodes.size() == lone.size();
    for (std::size_t i = 0; equal && i < lone.size(); ++i) {
      equal = bits_equal(fused.nodes[i].values, lone[i].values) &&
              fused.nodes[i].report.cycles - fused.nodes[i].report.staging_cycles ==
                  lone[i].report.cycles - lone[i].report.staging_cycles;
    }

    // Aggregate staging in node 0's clock domain: what the fused plan paid
    // vs what the same DAG costs as isolated per-op plans.
    const u64 stage_fused = fused.report.staging_cycles;
    const u64 stage_unfused = stage_fused + fused.staging_saved_cycles;

    t.row(w.name, static_cast<u64>(w.graph.nodes.size()), stage_fused,
          stage_unfused, fused.staging_saved_cycles,
          TextTable::num(fused_ns / 1e6, 2), TextTable::num(unfused_ns / 1e6, 2),
          equal ? "yes" : "NO");

    telemetry::JsonWriter j;
    j.begin_object()
        .kv("event", "fusion_bench")
        .kv("op", w.name)
        .kv("nodes", static_cast<u64>(w.graph.nodes.size()))
        .kv("cycles", fused.report.cycles)
        .kv("staging_fused", stage_fused)
        .kv("staging_unfused", stage_unfused)
        .kv("staging_saved_cycles", fused.staging_saved_cycles)
        .kv("fused_edges", fused.fused_edges)
        .kv("shared_operands", fused.shared_operands)
        .kv("fused_ns", fused_ns)
        .kv("unfused_ns", unfused_ns)
        .kv("speedup", unfused_ns / fused_ns)
        .kv("bits_equal", equal)
        .end_object();
    bench::jsonl(j.str());

    if (!equal) {
      std::fprintf(stderr, "FATAL: %s fused run diverged from per-op run\n",
                   w.name.c_str());
      rc = 1;
    }
    if (w.expect_saving && fused.staging_saved_cycles == 0) {
      std::fprintf(stderr,
                   "FATAL: %s fused plan saved no staging cycles over the "
                   "per-op plans\n",
                   w.name.c_str());
      rc = 1;
    }
    if (!w.expect_saving && fused.staging_saved_cycles != 0) {
      std::fprintf(stderr,
                   "FATAL: %s is SRAM-resident but reported a staging "
                   "saving\n",
                   w.name.c_str());
      rc = 1;
    }
  }
  bench::print_table(t);
  bench::note(
      "Staging cycles are deterministic simulator output (aggregate clock "
      "domain); the DRAM rows must show a fused saving and every row must "
      "be bit-identical to per-op execution, or this binary exits nonzero.");
  return rc;
}
