// Sharded multi-FPGA execution (Sec 6.4 made runnable, host/shard.hpp):
// one GEMM / GEMV split across the FPGAs of a 3-chassis x 2-node system,
// single-device vs l in {1, 2, 3, 6}, with the scatter/gather transfer legs
// charged through the machine's RocketIO and RapidArray channels.
//
// Hard gates, enforced in-binary (the shard-smoke CI job leans on this
// binary's exit code):
//   * GEMM values must be bit-identical to the single-device run at every
//     l, and the channel-driven simulation must land on the analytic model
//     (ShardPlan::model_cycles) cycle-for-cycle.
//   * GEMV sharded runs must be rerun-deterministic bit for bit.
//   * l = 1 must cost exactly the single-device cycle count.
// Simulated cycle counts are deterministic, so tools/bench_compare treats
// any drift from BENCH_shard.json as a correctness failure; wall clock
// (run_ns) is the informational perf field.
#include <chrono>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/random.hpp"
#include "host/context.hpp"
#include "host/runtime.hpp"
#include "host/shard.hpp"
#include "telemetry/json.hpp"

using namespace xd;

namespace {

bool bits_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

machine::SystemConfig small_system() {
  machine::SystemConfig sys;
  sys.chassis_count = 3;
  sys.chassis.nodes = 2;
  return sys;
}

struct Row {
  std::string op;
  unsigned l = 1;
  u64 cycles = 0;
  u64 model_cycles = 0;
  u64 compute_cycles = 0;
  u64 staging_cycles = 0;
  double link_words = 0.0;
  double interchassis_words = 0.0;
  double speedup_vs_l1 = 0.0;  ///< deterministic: cycle ratio, not wall clock
  double run_ns = 0.0;
  bool bits_ok = false;
  bool model_ok = false;
};

}  // namespace

int main() {
  bench::heading("Sharded multi-FPGA execution: single device vs l FPGAs");

  host::ContextConfig cfg;
  host::Runtime rt(cfg);
  Rng rng(2005);

  const std::size_t n = 96;
  const auto ga = rng.matrix(n, n);
  const auto gb = rng.matrix(n, n);
  const std::size_t rows = 192, cols = 128;
  const auto va = rng.matrix(rows, cols);
  const auto vx = rng.vector(cols);

  const host::Outcome gemm_base = rt.run(host::OpDesc::gemm(ga, gb, n));
  const host::Outcome gemv_base =
      rt.run(host::OpDesc::gemv(va, rows, cols, vx));

  std::vector<Row> out;
  bool failed = false;
  u64 gemm_l1 = 0, gemv_l1 = 0;

  for (const bool gemm : {true, false}) {
    for (const unsigned l : {1u, 2u, 3u, 6u}) {
      const host::OpDesc desc =
          gemm ? host::OpDesc::gemm(ga, gb, n)
               : host::OpDesc::gemv(va, rows, cols, vx);
      host::ShardScheduler sched(rt, small_system());
      const auto start = std::chrono::steady_clock::now();
      const host::ShardOutcome so = sched.run(desc, l);
      const auto stop = std::chrono::steady_clock::now();

      Row r;
      r.op = cat(gemm ? "gemm-" : "gemv-", gemm ? n : rows, "-l", l);
      r.l = l;
      r.cycles = so.report.cycles;
      r.model_cycles = so.plan.model_cycles;
      r.compute_cycles = so.report.compute_cycles;
      r.staging_cycles = so.report.staging_cycles;
      r.link_words = so.link_words;
      r.interchassis_words = so.interchassis_words;
      r.run_ns =
          std::chrono::duration<double, std::nano>(stop - start).count();

      if (gemm) {
        // GEMM: bit-identity to the single device and model==sim, both
        // at every l (see host/shard.hpp's determinism contract).
        r.bits_ok = bits_equal(so.values, gemm_base.values);
        r.model_ok = so.report.cycles == so.plan.model_cycles;
      } else {
        // GEMV: the reduction circuit reassociates across row batches, so
        // the gate is rerun bit-identity (and l = 1 exactness below).
        host::ShardScheduler again(rt, small_system());
        const host::ShardOutcome rep = again.run(desc, l);
        r.bits_ok = bits_equal(so.values, rep.values) &&
                    rep.report.cycles == so.report.cycles;
        r.model_ok = true;  // GEMV's shard model is ranking-grade only
      }
      if (l == 1) {
        const u64 base = gemm ? gemm_base.report.cycles
                              : gemv_base.report.cycles;
        r.bits_ok = r.bits_ok && so.report.cycles == base;
        (gemm ? gemm_l1 : gemv_l1) = so.report.cycles;
      }
      r.speedup_vs_l1 = static_cast<double>(gemm ? gemm_l1 : gemv_l1) /
                        static_cast<double>(so.report.cycles);
      failed = failed || !r.bits_ok || !r.model_ok;
      out.push_back(r);
    }
  }

  TextTable t({"Workload", "l", "Cycles", "Model", "Compute", "Transfer",
               "Speedup", "Bits", "Model==Sim"});
  for (const Row& r : out) {
    t.add_row({r.op, std::to_string(r.l), std::to_string(r.cycles),
               std::to_string(r.model_cycles), std::to_string(r.compute_cycles),
               std::to_string(r.staging_cycles),
               TextTable::num(r.speedup_vs_l1, 2), r.bits_ok ? "yes" : "NO",
               r.model_ok ? "yes" : "NO"});
    if (bench::jsonl_stream()) {
      telemetry::JsonWriter w;
      w.begin_object()
          .kv("event", "shard_bench")
          .kv("op", r.op)
          .kv("l", r.l)
          .kv("cycles", r.cycles)
          .kv("model_cycles", r.model_cycles)
          .kv("compute_cycles", r.compute_cycles)
          .kv("staging_cycles", r.staging_cycles)
          .kv("link_words", r.link_words)
          .kv("interchassis_words", r.interchassis_words)
          .kv("speedup_vs_l1", r.speedup_vs_l1)
          .kv("run_ns", r.run_ns)
          .kv("bits_equal", r.bits_ok)
          .kv("model_matches", r.model_ok)
          .end_object();
      bench::jsonl(w.str());
    }
  }
  bench::print_table(t);
  bench::note(
      "Cycle counts, cycle speedups and link words are deterministic "
      "simulator output. GEMM rows must be bit-identical to the single "
      "device with the analytic model matching the simulation exactly; "
      "GEMV rows must be rerun-deterministic; l=1 must cost the "
      "single-device run. Any NO above makes this binary exit nonzero.");

  return failed ? 1 : 0;
}
