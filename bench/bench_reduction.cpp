// Reproduces the Sec 4.3 reduction-circuit claims across set-size regimes:
// one adder, two alpha^2 buffers, no stalls for the BLAS-shaped workloads,
// and total latency below sum(s_i) + 2 alpha^2 cycles.
#include <optional>

#include "bench_util.hpp"
#include "common/random.hpp"
#include "fp/softfloat.hpp"
#include "reduce/reduction_circuit.hpp"

using namespace xd;

namespace {

struct RunStats {
  u64 cycles = 0;
  u64 stalls = 0;
  std::size_t peak_buffer = 0;
  double utilization = 0.0;
};

RunStats run(unsigned alpha, const std::vector<std::size_t>& sizes) {
  Rng rng(9);
  reduce::ReductionCircuit c(alpha);
  RunStats st;
  std::size_t done = 0, si = 0, ei = 0;
  while (done < sizes.size()) {
    std::optional<reduce::Input> in;
    if (si < sizes.size()) {
      in = reduce::Input{fp::to_bits(rng.uniform(-1, 1)), ei + 1 == sizes[si]};
    }
    const bool consumed = c.cycle(in);
    ++st.cycles;
    if (in && consumed && ++ei == sizes[si]) {
      ei = 0;
      ++si;
    }
    if (c.take_result()) ++done;
  }
  st.stalls = c.stats().stall_cycles;
  st.peak_buffer = c.stats().peak_buffer_words;
  st.utilization = c.adder_utilization();
  return st;
}

}  // namespace

int main() {
  const unsigned alpha = fp::kAdderStages;
  const u64 alpha2 = static_cast<u64>(alpha) * alpha;

  bench::heading(cat("Reduction circuit (alpha = ", alpha,
                     "): uniform set-size sweep, 200 sets each"));
  TextTable t({"Set size s", "Inputs", "Cycles", "Overhead vs sum(s_i)",
               "Bound 2a^2", "Stalls", "Peak buf", "Buf bound a^2",
               "Adder util"});
  for (std::size_t s : {1ul, 4ul, 13ul, 14ul, 20ul, 50ul, 100ul, 512ul, 2048ul}) {
    const std::vector<std::size_t> sizes(200, s);
    const auto st = run(alpha, sizes);
    const u64 inputs = 200 * s;
    t.row(s, inputs, st.cycles, st.cycles - inputs, 2 * alpha2, st.stalls,
          st.peak_buffer, alpha2, bench::pct(st.utilization));
  }
  bench::print_table(t);

  bench::heading("Random set sizes (the arbitrary-size claim)");
  TextTable r({"Size range", "Sets", "Cycles", "sum(s_i)", "Stalls", "Peak buf"});
  Rng rng(10);
  for (auto [lo, hi] : std::vector<std::pair<std::size_t, std::size_t>>{
           {1, 10}, {1, 100}, {14, 50}, {100, 1000}}) {
    std::vector<std::size_t> sizes;
    u64 total = 0;
    for (int i = 0; i < 300; ++i) {
      sizes.push_back(rng.uniform_int(lo, hi));
      total += sizes.back();
    }
    const auto st = run(fp::kAdderStages, sizes);
    r.row(cat(lo, "-", hi), sizes.size(), st.cycles, total, st.stalls,
          st.peak_buffer);
  }
  bench::print_table(r);
  bench::note("Paper claims: 1 adder, buffers <= alpha^2 each, p sets in "
              "< sum(s_i) + 2 alpha^2 cycles, no stalls for the BLAS "
              "workloads (s >= alpha). Streams of many tiny sets can exceed "
              "the drain rate and stall the input - the trade-off the "
              "baselines bench quantifies.");
  return 0;
}
