// Reproduces Figure 9: area and achievable clock speed of the GEMM linear
// array on a single XC2VP50 as the number of PEs grows (1..10), and the
// resulting sustained GFLOPS (2.5 GFLOPS at 10 PEs / 125 MHz). Each row's
// throughput figure is cross-checked with a cycle-accurate run at a small n.
#include "bench_util.hpp"
#include "blas3/mm_array.hpp"
#include "common/random.hpp"
#include "machine/area.hpp"
#include "model/projections.hpp"

using namespace xd;

int main() {
  machine::AreaModel area;
  const auto vp50 = machine::xc2vp50();
  const auto points = model::figure9(area, vp50);

  Rng rng(5);
  bench::heading("Figure 9: GEMM design on one XC2VP50 vs number of PEs");
  TextTable t({"PEs (k)", "Slices", "% device", "Clock (MHz)",
               "GFLOPS (model)", "flops/cycle (sim)", "GFLOPS (sim)"});
  for (const auto& p : points) {
    // Cycle-accurate check: m = 16 keeps m % k == 0 for k in 1..10 except
    // k in {3,6,7,9,10}; use the smallest multiple of k >= 16 instead.
    unsigned m = 16;
    while (m % p.k != 0) ++m;
    const std::size_t n = 2 * m;
    blas3::MmArrayConfig cfg;
    cfg.k = p.k;
    cfg.m = m;
    cfg.adder_stages = std::min<unsigned>(8, m * m / p.k);
    cfg.mem_words_per_cycle = 8.0;
    cfg.clock_mhz = p.clock_mhz;
    blas3::MmArrayEngine engine(cfg);
    const auto out = engine.run(rng.matrix(n, n), rng.matrix(n, n), n);
    t.row(p.k, p.slices, bench::pct(double(p.slices) / vp50.slices),
          p.clock_mhz, TextTable::num(p.gflops, 2),
          TextTable::num(out.report.flops_per_cycle(), 2),
          TextTable::num(out.report.flops_per_cycle() * p.clock_mhz * 1e6 / 1e9,
                         2));
  }
  bench::print_table(t);
  bench::note("Paper: PE = 2158 slices at 155 MHz; at most 10 PEs; clock "
              "degrades to 125 MHz; max sustained 2.5 GFLOPS.");
  bench::note("Shape check: area linear in k, clock decreasing, GFLOPS "
              "sub-linear in k because of the routing-driven clock loss.");
  return 0;
}
