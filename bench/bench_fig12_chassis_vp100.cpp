// Reproduces Figure 12: the Figure 11 projection repeated with the larger
// Xilinx XC2VP100 (44096 slices) — about twice the PEs per FPGA and hence
// about twice the chassis GFLOPS (~50 GFLOPS at the best corner).
#include "bench_util.hpp"
#include "machine/area.hpp"
#include "model/projections.hpp"

using namespace xd;

int main() {
  machine::AreaModel area;
  const auto vp100 = machine::xc2vp100();
  const auto vp50 = machine::xc2vp50();

  bench::heading("Figure 12: projected chassis GFLOPS (XC2VP100, 6 FPGAs)");
  TextTable t({"PE slices", "160 MHz", "170 MHz", "180 MHz", "190 MHz",
               "200 MHz"});
  for (unsigned slices = 1600; slices <= 2000; slices += 100) {
    std::vector<std::string> row{std::to_string(slices)};
    for (unsigned clock = 160; clock <= 200; clock += 10) {
      const auto p = model::project_chassis(area, vp100, slices, clock, 6, 2048);
      row.push_back(TextTable::num(p.gflops, 1));
    }
    t.add_row(row);
  }
  bench::print_table(t);

  bench::heading("XC2VP100 vs XC2VP50 (same PE, best corner)");
  const auto p100 = model::project_chassis(area, vp100, 1600, 200.0, 6, 2048);
  const auto p50 = model::project_chassis(area, vp50, 1600, 200.0, 6, 2048);
  TextTable c({"Device", "PEs/FPGA", "Chassis GFLOPS", "Required SRAM",
               "Required DRAM"});
  c.row("XC2VP50", p50.pes_per_fpga, TextTable::num(p50.gflops, 1),
        bench::gbs(p50.sram_bytes_per_s), bench::gbs(p50.dram_bytes_per_s));
  c.row("XC2VP100", p100.pes_per_fpga, TextTable::num(p100.gflops, 1),
        bench::gbs(p100.sram_bytes_per_s), bench::gbs(p100.dram_bytes_per_s));
  bench::print_table(c);
  bench::note(cat("Ratio: ", TextTable::num(p100.gflops / p50.gflops, 2),
                  "x  (paper: 'about twice', ~50 GFLOPS best corner; "
                  "paper quotes 2.7 GB/s / 284.8 MB/s requirements, met by "
                  "XD1 either way)"));
  return 0;
}
