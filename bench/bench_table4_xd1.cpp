// Reproduces Table 4: Level 2 and Level 3 BLAS on a single FPGA in Cray XD1.
//
//  - GEMV (tree, k = 4): cycle-accurate at the paper's n = 1024, with the
//    DRAM->SRAM staging phase simulated at the measured 1.3 GB/s (the paper's
//    8.0 ms total / 1.6 ms compute split) and the SRAM-resident variant
//    (1.05 GFLOPS).
//  - GEMM (k = 8, m = 8, b = 512): full-scale node-level run at the paper's
//    n = 512 (C' through real SRAM ports, A/B/C across the RapidArray link),
//    plus a cycle-accurate PE-array cross-check at n = 256 and the
//    analytical model column.
#include "bench_util.hpp"
#include "blas2/mxv_on_node.hpp"
#include "blas3/mm_array.hpp"
#include "blas3/mm_hier.hpp"
#include "blas3/mm_on_node.hpp"
#include "common/random.hpp"
#include "host/context.hpp"
#include "host/reference.hpp"
#include "model/perf_model.hpp"

using namespace xd;

int main() {
  Rng rng(4);
  host::Context ctx;
  const auto vp50 = machine::xc2vp50();

  // ----------------------------------------------------------- Level 2 ----
  // The full node-level pipeline: DMA staging over the RapidArray link into
  // the four SRAM banks, bank-striped streaming, y write-back.
  const std::size_t n2 = 1024;
  const auto a2 = rng.matrix(n2, n2);
  const auto x2 = rng.vector(n2);
  machine::NodeConfig node_cfg;
  node_cfg.clock_mhz = 164.0;
  node_cfg.dram_bytes_per_s = 1.3e9;
  node_cfg.dram_words = 2u << 20;
  machine::ComputeNode node_dram(node_cfg);
  machine::ComputeNode node_sram(node_cfg);
  blas2::NodeGemvEngine eng_dram(node_dram);
  blas2::NodeGemvEngine eng_sram(node_sram);
  const auto from_dram = eng_dram.run(a2, n2, n2, x2, /*from_dram=*/true);
  const auto from_sram = eng_sram.run(a2, n2, n2, x2, /*from_dram=*/false);
  const auto ref2 = host::ref_gemv(a2, n2, n2, x2);
  const double err2 = host::max_abs_diff(from_dram.y, ref2);
  const auto gemv_area = ctx.gemv_design_area();

  const double gemv_dram_peak = model::gemv_peak_flops(1.3 * kGB);

  bench::heading("Table 4, Level 2: GEMV on one XD1 FPGA (n = 1024, k = 4)");
  TextTable t2({"Metric", "Measured", "Paper"});
  t2.row("Area (slices)", gemv_area.slices, "13772");
  t2.row("% of total area", bench::pct(gemv_area.fraction_of(vp50)), "58%");
  t2.row("Clock", cat(TextTable::num(gemv_area.clock_mhz, 0), " MHz"), "164 MHz");
  t2.row("SRAM bandwidth",
         bench::gbs(from_sram.report.sram_bytes_per_s()), "5.9 GB/s*");
  t2.row("DRAM bandwidth (staging)", bench::gbs(1.3 * kGB), "1.3 GB/s");
  t2.row("Total latency (from DRAM)",
         cat(TextTable::num(from_dram.report.seconds() * 1e3, 2), " ms"),
         "8.0 ms");
  t2.row("Compute latency",
         cat(TextTable::num(from_sram.report.seconds() * 1e3, 2), " ms"),
         "1.6 ms");
  t2.row("Sustained (from DRAM)",
         bench::mflops(from_dram.report.sustained_mflops() * 1e6), "262 MFLOPS");
  t2.row("% of DRAM-bound peak",
         bench::pct(from_dram.report.sustained_mflops() * 1e6 / gemv_dram_peak),
         "80.6%");
  t2.row("Sustained (from SRAM)",
         bench::mflops(from_sram.report.sustained_mflops() * 1e6),
         "1.05 GFLOPS");
  t2.row("Max |error| vs reference", TextTable::num(err2, 3), "-");
  bench::print_table(t2);
  bench::report_row("gemv-node-from-dram", from_dram.report);
  bench::report_row("gemv-node-from-sram", from_sram.report);
  bench::note("* the hardware moves a 9th parity byte per word; we model the "
              "64-bit payload (4 words/cycle at 164 MHz = 5.25 GB/s).\n");

  // ----------------------------------------------------------- Level 3 ----
  // Cycle-accurate PE array at n = 256.
  const std::size_t n3 = 256;
  const auto a3 = rng.matrix(n3, n3);
  const auto b3 = rng.matrix(n3, n3);
  blas3::MmArrayConfig mc;  // k = 8, m = 8, 130 MHz
  blas3::MmArrayEngine array(mc);
  const auto c3 = array.run(a3, b3, n3);
  const double err3 = host::max_abs_diff(c3.c, host::ref_gemm(a3, b3, n3));

  // Full-scale node-level run at the paper's n = b = 512: every C' word
  // through the SRAM bank ports, every A/B/C word across the RapidArray
  // link (numerics computed separately; see blas3/mm_on_node.hpp).
  machine::NodeConfig mm_node_cfg;
  mm_node_cfg.clock_mhz = 130.0;
  mm_node_cfg.dram_bytes_per_s = 3.2e9;
  mm_node_cfg.dram_words = 1u << 20;
  machine::ComputeNode mm_node(mm_node_cfg);
  blas3::MmOnNodeEngine node_mm(mm_node);  // k = 8, m = 8, b = 512
  const auto a512 = rng.matrix(512, 512);
  const auto b512 = rng.matrix(512, 512);
  const auto measured512 = node_mm.run(a512, b512, 512);
  const double err512 =
      host::max_abs_diff(measured512.c, host::ref_gemm(a512, b512, 512));

  // The analytical model for the same configuration (cross-check column).
  blas3::MmHierConfig hc;
  hc.dram_words_per_cycle =
      3.2 * kGB / (kWordBytes * hc.clock_mhz * 1e6);  // XD1 RapidArray
  blas3::MmHierEngine hier(hc);
  const auto m512 = hier.project(512);
  const double mm_peak = model::mm_device_peak_flops(vp50, machine::AreaModel{}.cores());
  const auto mm_area = ctx.gemm_design_area();

  bench::heading("Table 4, Level 3: GEMM on one XD1 FPGA (k = 8, m = 8, b = 512)");
  TextTable t3({"Metric", "Measured", "Paper"});
  t3.row("Area (slices)", mm_area.slices, "21029");
  t3.row("% of total area", bench::pct(mm_area.fraction_of(vp50)), "89%");
  t3.row("Clock", cat(TextTable::num(mm_area.clock_mhz, 0), " MHz"), "130 MHz");
  t3.row("SRAM bandwidth (C' stream)",
         bench::gbs(measured512.report.sram_words /
                    static_cast<double>(measured512.report.compute_cycles) *
                    kWordBytes * hc.clock_mhz * 1e6),
         "2.1 GB/s");
  t3.row("DRAM bandwidth",
         bench::gbs(measured512.report.dram_words /
                    static_cast<double>(measured512.report.cycles) *
                    kWordBytes * hc.clock_mhz * 1e6),
         "24.3-48.8 MB/s");
  t3.row("Total latency (n = 512)",
         cat(TextTable::num(measured512.report.seconds() * 1e3, 0), " ms (model ",
             TextTable::num(m512.report.seconds() * 1e3, 0), ")"),
         "131 ms");
  t3.row("Sustained",
         bench::mflops(measured512.report.sustained_gflops() * 1e9),
         "2.06 GFLOPS");
  t3.row("% of device peak (4.42 GFLOPS)",
         bench::pct(measured512.report.sustained_gflops() * 1e9 / mm_peak),
         "46.6%");
  t3.row("I/O fraction of latency",
         bench::pct(static_cast<double>(measured512.report.stall_cycles) /
                    static_cast<double>(measured512.report.cycles)),
         "0.7%");
  t3.row("Max |error| vs reference (n = 512)", TextTable::num(err512, 3), "-");
  bench::print_table(t3);
  bench::report_row("gemm-node-512", measured512.report);
  bench::report_row("gemm-array-256", c3.report);

  bench::heading("Cycle-accurate cross-check (PE array, n = 256)");
  TextTable cc({"Metric", "Value"});
  cc.row("Cycles measured", c3.report.cycles);
  cc.row("Model n^3/k", array.model_cycles(n3));
  cc.row("Deviation",
         bench::pct(static_cast<double>(c3.report.cycles) /
                        static_cast<double>(array.model_cycles(n3)) -
                    1.0));
  cc.row("Flops/cycle (2k = 16 ideal)",
         TextTable::num(c3.report.flops_per_cycle(), 3));
  cc.row("Stall cycles", c3.report.stall_cycles);
  cc.row("Max |error| vs reference", TextTable::num(err3, 3));
  bench::print_table(cc);
  return 0;
}
