// Reproduces Table 3: characteristics of the Level 1 (dot product, k=2) and
// Level 2 (GEMV tree, k=4) designs — area/clock from the calibrated model,
// sustained MFLOPS and %-of-peak measured on the cycle-accurate engines at
// the paper's n = 2048 (x resident on chip, A streaming from SRAM).
#include "bench_util.hpp"
#include "blas1/dot_engine.hpp"
#include "blas2/mxv_tree.hpp"
#include "common/random.hpp"
#include "machine/area.hpp"
#include "model/perf_model.hpp"

using namespace xd;

int main() {
  Rng rng(3);
  machine::AreaModel area;
  const auto vp50 = machine::xc2vp50();
  const std::size_t n = 2048;

  // ---- Level 1: dot product, k = 2, 5.5 GB/s at 170 MHz ----
  blas1::DotConfig dc;
  dc.k = 2;
  dc.clock_mhz = 170.0;
  const double dot_bw = 5.5 * kGB;
  dc.mem_words_per_cycle = dot_bw / (kWordBytes * dc.clock_mhz * 1e6);
  blas1::DotEngine dot(dc);
  const auto du = rng.vector(n);
  const auto dv = rng.vector(n);
  const auto dres = dot.run({du}, {dv});
  const double dot_peak = model::dot_peak_flops(dot_bw);
  const auto dot_area = area.dot_design(2);

  // ---- Level 2: GEMV tree, k = 4, ~5.6 GB/s at 170 MHz ----
  blas2::MxvTreeConfig mc;
  mc.k = 4;
  mc.clock_mhz = 170.0;
  mc.mem_words_per_cycle = 4.0;  // one word per SRAM bank per cycle
  const double gemv_bw = mc.mem_words_per_cycle * kWordBytes * mc.clock_mhz * 1e6;
  blas2::MxvTreeEngine gemv(mc);
  const auto a = rng.matrix(n, n);
  const auto x = rng.vector(n);
  const auto gres = gemv.run(a, n, n, x);
  const double gemv_peak = model::gemv_peak_flops(gemv_bw);
  const auto gemv_area = area.mxv_tree_design(4);

  bench::heading("Table 3: Level 1 & Level 2 BLAS designs (n = 2048)");
  TextTable t({"BLAS", "Level 1 (measured)", "Level 1 (paper)",
               "Level 2 (measured)", "Level 2 (paper)"});
  t.row("No. of multipliers k", 2, "2", 4, "4");
  t.row("Area (slices)", dot_area.slices, "5210", gemv_area.slices, "9669");
  t.row("% of total area", bench::pct(dot_area.fraction_of(vp50)), "22%",
        bench::pct(gemv_area.fraction_of(vp50)), "41%");
  t.row("Clock (MHz)", dot_area.clock_mhz, "170", gemv_area.clock_mhz, "170");
  t.row("Memory bandwidth", bench::gbs(dot_bw), "5.5 GB/s", bench::gbs(gemv_bw),
        "5.6 GB/s");
  t.row("Sustained MFLOPS",
        TextTable::num(dres.report.sustained_mflops(), 0), "557",
        TextTable::num(gres.report.sustained_mflops(), 0), "1355");
  t.row("% of peak",
        bench::pct(dres.report.sustained_mflops() * 1e6 / dot_peak), "80%",
        bench::pct(gres.report.sustained_mflops() * 1e6 / gemv_peak), "97%");
  bench::print_table(t);

  bench::note(cat("dot: ", dres.report.cycles, " cycles for ", 2 * n,
                  " streamed words (I/O lower bound ",
                  dot.io_lower_bound_cycles(n), ")"));
  bench::note(cat("gemv: ", gres.report.cycles, " cycles for ", n * n,
                  " streamed words (I/O lower bound ",
                  gemv.io_lower_bound_cycles(n, n), ")"));
  bench::note("Shape check: both designs are I/O bound; dot loses a constant "
              "reduction tail (>=80% of peak), GEMV amortizes it (>95%).");
  return 0;
}
