// Reproduces Figure 11: projected sustained GFLOPS of the hierarchical GEMM
// design on one XD1 chassis (6 FPGAs, XC2VP50, b = 2048) as a function of
// the PE's area (1600..2000 slices) and clock (160..200 MHz), with the 25%
// routing deduction the paper applies — plus the bandwidth-requirement check
// the paper performs for the smallest/fastest PE.
#include "bench_util.hpp"
#include "machine/area.hpp"
#include "mem/hierarchy.hpp"
#include "model/projections.hpp"

using namespace xd;

int main() {
  machine::AreaModel area;
  const auto dev = machine::xc2vp50();

  bench::heading("Figure 11: projected chassis GFLOPS (XC2VP50, 6 FPGAs)");
  TextTable t({"PE slices", "160 MHz", "170 MHz", "180 MHz", "190 MHz",
               "200 MHz"});
  for (unsigned slices = 1600; slices <= 2000; slices += 100) {
    std::vector<std::string> row{std::to_string(slices)};
    for (unsigned clock = 160; clock <= 200; clock += 10) {
      const auto p = model::project_chassis(area, dev, slices, clock, 6, 2048);
      row.push_back(TextTable::num(p.gflops, 1));
    }
    t.add_row(row);
  }
  bench::print_table(t);
  bench::note("Paper: 'When the PE occupies 1600 slices and runs at 200 MHz, "
              "one chassis can achieve more than 27 GFLOPS.'");

  const auto best = model::project_chassis(area, dev, 1600, 200.0, 6, 2048);
  const auto xd1 = mem::cray_xd1();
  bench::heading("Bandwidth requirements for the smallest/fastest PE");
  TextTable b({"Link", "Required", "Available (XD1)", "Met"});
  b.row("SRAM (per FPGA)", bench::gbs(best.sram_bytes_per_s),
        bench::gbs(xd1.level(mem::Level::B).bytes_per_s),
        best.sram_bytes_per_s <= xd1.level(mem::Level::B).bytes_per_s ? "yes"
                                                                      : "NO");
  b.row("DRAM (FPGA 0)", bench::gbs(best.dram_bytes_per_s),
        bench::gbs(xd1.level(mem::Level::C).bytes_per_s),
        best.dram_bytes_per_s <= xd1.level(mem::Level::C).bytes_per_s ? "yes"
                                                                      : "NO");
  bench::print_table(b);
  bench::note("Paper quotes 2.5 GB/s SRAM / 147.7 MB/s DRAM for this corner; "
              "our formulas give the same order and the same conclusion "
              "(requirements met). See EXPERIMENTS.md for the delta.");
  return 0;
}
