// Ablation: the two GEMV architectures of Sec 4.2 head-to-head — the
// row-major tree design (adder tree + reduction circuit) vs the column-major
// interleaved design (k adders, no reduction circuit) — across lane counts
// and matrix sizes, with the area cost of each from the calibrated model.
#include "bench_util.hpp"
#include "blas2/mxv_col.hpp"
#include "blas2/mxv_tree.hpp"
#include "common/random.hpp"
#include "host/reference.hpp"
#include "machine/area.hpp"

using namespace xd;

int main() {
  Rng rng(13);
  machine::AreaModel area;

  bench::heading("GEMV architectures: tree (row-major) vs column-major");
  TextTable t({"n", "k", "tree cycles", "col cycles", "tree flops/cyc",
               "col flops/cyc", "tree slices", "col slices", "max |diff|"});
  for (unsigned k : {2u, 4u, 8u}) {
    for (std::size_t n : {256ul, 512ul, 1024ul}) {
      const auto a = rng.matrix(n, n);
      const auto x = rng.vector(n);

      blas2::MxvTreeConfig tc;
      tc.k = k;
      tc.mem_words_per_cycle = k;
      const auto tr = blas2::MxvTreeEngine(tc).run(a, n, n, x);

      blas2::MxvColConfig cc;
      cc.k = k;
      cc.mem_words_per_cycle = k + 1.0;
      const auto cr = blas2::MxvColEngine(cc).run(a, n, n, x);

      t.row(n, k, tr.report.cycles, cr.report.cycles,
            TextTable::num(tr.report.flops_per_cycle(), 2),
            TextTable::num(cr.report.flops_per_cycle(), 2),
            area.mxv_tree_design(k).slices, area.mxv_col_design(k).slices,
            TextTable::num(host::max_abs_diff(tr.y, cr.y), 3));
    }
  }
  bench::print_table(t);
  bench::note("Reading: both sustain ~2k flops/cycle (I/O bound). The tree "
              "design pays the reduction circuit's area (1658 slices) but "
              "keeps one adder tree regardless of n and extends naturally to "
              "sparse matrices; the column design needs k adders and a "
              "hazard constraint n/k >= alpha (rejected configurations throw).");

  bench::heading("Column-design hazard envelope");
  TextTable h({"rows", "k", "ceil(rows/k)", "alpha", "legal"});
  for (std::size_t rows : {32ul, 56ul, 64ul, 128ul}) {
    for (unsigned k : {2u, 4u}) {
      const std::size_t groups = (rows + k - 1) / k;
      h.row(rows, k, groups, fp::kAdderStages,
            groups >= fp::kAdderStages ? "yes" : "no (ConfigError)");
    }
  }
  bench::print_table(h);
  return 0;
}
