// Telemetry overhead gate: submits the same batch of independent ops through
// the worker pool twice -- telemetry detached (cfg.telemetry = nullptr, the
// zero-cost path) and attached (live Session: metrics, spans, latency
// histograms, flight recorder) -- verifies the outcomes are bit-identical
// (values AND cycle counts; recording must never change what the simulator
// computes), and reports the wall-clock overhead of recording.
//
// The attached run must stay within the overhead budget: 10% by default,
// overridable via XDBLAS_OVERHEAD_BUDGET_PCT for noisy machines. Reps
// alternate between the two arms so thermal drift and background load hit
// both equally, and each arm keeps its own Runtime so plan caches stay warm
// after the first (untimed) warm-up rep.
//
// With XDBLAS_BENCH_JSON set, each row is also emitted as a JSONL object
// (event "overhead_bench"); tools/bench_compare diffs those rows against
// BENCH_telemetry.json.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <future>
#include <vector>

#include "bench_util.hpp"
#include "common/random.hpp"
#include "host/runtime.hpp"
#include "telemetry/json.hpp"
#include "telemetry/session.hpp"

using namespace xd;
using host::OpDesc;
using host::Outcome;
using host::Runtime;

namespace {

struct RunResult {
  std::vector<u64> bits;  ///< result values of every op, as bit patterns
  u64 cycles = 0;         ///< summed simulated cycles across the batch
};

/// Submit every desc concurrently, drain the futures in order.
RunResult submit_all(Runtime& rt, const std::vector<OpDesc>& descs) {
  std::vector<std::future<Outcome>> futs;
  futs.reserve(descs.size());
  for (const auto& d : descs) futs.push_back(rt.submit(d));
  RunResult r;
  for (auto& f : futs) {
    const Outcome out = f.get();
    const std::size_t at = r.bits.size();
    r.bits.resize(at + out.values.size());
    std::memcpy(r.bits.data() + at, out.values.data(),
                out.values.size() * sizeof(double));
    r.cycles += out.report.cycles;
  }
  return r;
}

struct Workload {
  std::string name;
  std::vector<OpDesc> descs;
  // Operand storage backing the descs. OpDesc keeps pointers to these
  // vector objects, so `keep` is reserved up front and never reallocates.
  std::vector<std::vector<double>> keep;
};

Workload gemv_batch(std::size_t jobs, std::size_t n) {
  Workload w;
  w.keep.reserve(2 * jobs);
  w.name = cat("submit-gemv-", n, "x", jobs);
  for (std::size_t j = 0; j < jobs; ++j) {
    Rng rng(900 + j);
    w.keep.push_back(rng.matrix(n, n));
    w.keep.push_back(rng.vector(n));
    const auto& a = w.keep[w.keep.size() - 2];
    const auto& x = w.keep.back();
    w.descs.push_back(OpDesc::gemv(a, n, n, x));
  }
  return w;
}

Workload dot_batch(std::size_t jobs, std::size_t n) {
  Workload w;
  w.keep.reserve(2 * jobs);
  w.name = cat("submit-dot-", n / 1024, "kx", jobs);
  for (std::size_t j = 0; j < jobs; ++j) {
    Rng rng(700 + j);
    w.keep.push_back(rng.vector(n));
    w.keep.push_back(rng.vector(n));
    const auto& u = w.keep[w.keep.size() - 2];
    const auto& v = w.keep.back();
    w.descs.push_back(OpDesc::dot(u, v));
  }
  return w;
}

Workload gemm_batch(std::size_t jobs, std::size_t n) {
  Workload w;
  w.keep.reserve(2 * jobs);
  w.name = cat("submit-gemm-", n, "x", jobs);
  for (std::size_t j = 0; j < jobs; ++j) {
    Rng rng(500 + j);
    w.keep.push_back(rng.matrix(n, n));
    w.keep.push_back(rng.matrix(n, n));
    const auto& a = w.keep[w.keep.size() - 2];
    const auto& b = w.keep.back();
    w.descs.push_back(OpDesc::gemm(a, b, n));
  }
  return w;
}

double overhead_budget_pct() {
  if (const char* env = std::getenv("XDBLAS_OVERHEAD_BUDGET_PCT")) {
    char* end = nullptr;
    const double v = std::strtod(env, &end);
    if (end != env && v > 0.0) return v;
  }
  return 10.0;
}

}  // namespace

int main() {
  const double budget = overhead_budget_pct();
  bench::heading("Telemetry overhead: attached vs detached submit()");
  bench::note(cat("overhead budget: ", TextTable::num(budget, 1),
                  "% (XDBLAS_OVERHEAD_BUDGET_PCT to override)"));

  std::vector<Workload> workloads;
  workloads.push_back(gemv_batch(8, 256));
  workloads.push_back(gemv_batch(48, 64));  // many small ops: per-op cost
  workloads.push_back(dot_batch(8, 1 << 16));
  workloads.push_back(gemm_batch(4, 128));

  constexpr int kReps = 7;
  TextTable t({"Workload", "Ops", "Cycles", "detached ms", "attached ms",
               "Overhead", "Bit-identical"});
  int failures = 0;

  for (const auto& w : workloads) {
    Runtime detached({});
    telemetry::Session tel;
    host::ContextConfig acfg;
    acfg.telemetry = &tel;
    Runtime attached(acfg);

    // Untimed warm-up: build both plan caches, fault in the pool. Also
    // sizes the per-rep pass count so every timed measurement covers at
    // least ~10ms of work — short batches are otherwise at the mercy of
    // scheduler noise, and the gate below must not flake on a busy host.
    const auto w0 = std::chrono::steady_clock::now();
    RunResult dres = submit_all(detached, w.descs);
    const auto w1 = std::chrono::steady_clock::now();
    tel.clear();
    RunResult ares = submit_all(attached, w.descs);
    const double warm_ns =
        std::chrono::duration<double, std::nano>(w1 - w0).count();
    const int passes =
        std::max(1, static_cast<int>(10e6 / std::max(warm_ns, 1.0)) + 1);

    // Each rep times the two arms back to back, so a host-noise burst hits
    // both and cancels in the per-rep ratio; the median ratio across reps
    // is then robust to the occasional rep where it does not. The absolute
    // ns fields still report best-of (the stable floor) for baselines.
    double detached_ns = 0.0, attached_ns = 0.0;
    std::vector<double> rep_overhead(kReps);
    for (int r = 0; r < kReps; ++r) {
      auto start = std::chrono::steady_clock::now();
      for (int p = 0; p < passes; ++p) dres = submit_all(detached, w.descs);
      auto mid = std::chrono::steady_clock::now();
      tel.clear();  // fresh session state per rep, same as a fresh run
      for (int p = 0; p < passes; ++p) ares = submit_all(attached, w.descs);
      auto stop = std::chrono::steady_clock::now();
      const double dns =
          std::chrono::duration<double, std::nano>(mid - start).count() /
          passes;
      const double ans =
          std::chrono::duration<double, std::nano>(stop - mid).count() /
          passes;
      if (r == 0 || dns < detached_ns) detached_ns = dns;
      if (r == 0 || ans < attached_ns) attached_ns = ans;
      rep_overhead[r] = 100.0 * (ans - dns) / dns;
    }

    const bool bits_equal =
        dres.bits == ares.bits && dres.cycles == ares.cycles;
    std::sort(rep_overhead.begin(), rep_overhead.end());
    const double overhead_pct = rep_overhead[kReps / 2];
    t.row(w.name, w.descs.size(), dres.cycles,
          TextTable::num(detached_ns / 1e6, 2),
          TextTable::num(attached_ns / 1e6, 2),
          TextTable::num(overhead_pct, 1) + "%", bits_equal ? "yes" : "NO");

    telemetry::JsonWriter jw;
    jw.begin_object()
        .kv("event", "overhead_bench")
        .kv("op", w.name)
        .kv("ops", static_cast<u64>(w.descs.size()))
        .kv("cycles", dres.cycles)
        .kv("detached_ns", detached_ns)
        .kv("attached_ns", attached_ns)
        .kv("overhead_pct", overhead_pct)
        .kv("bits_equal", bits_equal)
        .end_object();
    bench::jsonl(jw.str());

    if (!bits_equal) {
      std::fprintf(stderr, "FATAL: %s changed results when telemetry attached\n",
                   w.name.c_str());
      return 1;
    }
    if (overhead_pct > budget) {
      std::fprintf(stderr, "FAIL: %s telemetry overhead %.1f%% > budget %.1f%%\n",
                   w.name.c_str(), overhead_pct, budget);
      ++failures;
    }
  }

  bench::print_table(t);
  if (failures) {
    bench::note(cat(failures, " workload(s) over the overhead budget"));
    return 1;
  }
  bench::note(
      "Every workload computed bit-identical values and cycle counts with "
      "telemetry attached; the overhead above is pure recording cost.");
  return 0;
}
