// Reproduces Table 1: characteristics of memory for a single FPGA in
// reconfigurable systems (SRC MAPstation and Cray XD1), as encoded in the
// machine model, plus a live bandwidth check of the simulated levels.
#include "bench_util.hpp"
#include "machine/node.hpp"
#include "mem/hierarchy.hpp"

using namespace xd;

namespace {

void print_spec(const mem::HierarchySpec& spec) {
  TextTable t({"Level", "Memory", "Size", "Bandwidth"});
  const char* levels[] = {"A", "B", "C"};
  for (std::size_t i = 0; i < spec.levels.size(); ++i) {
    const auto& l = spec.levels[i];
    std::string size = l.bytes >= kGiB ? TextTable::num(l.bytes / kGiB, 1) + " GB"
                       : l.bytes >= kMiB ? TextTable::num(l.bytes / kMiB, 1) + " MB"
                                         : TextTable::num(l.bytes / kKiB, 0) + " KB";
    t.row(levels[i], l.name, size, bench::gbs(l.bytes_per_s));
  }
  bench::note(spec.system + ":");
  bench::print_table(t);
}

}  // namespace

int main() {
  bench::heading("Table 1: memory characteristics per FPGA");
  print_spec(mem::src_mapstation());
  print_spec(mem::cray_xd1());

  bench::heading("Live check: simulated XD1 node achieves the modeled rates");
  machine::NodeConfig cfg;
  cfg.clock_mhz = 164.0;
  machine::ComputeNode node(cfg);
  for (int cyc = 0; cyc < 10000; ++cyc) {
    node.tick();
    for (unsigned b = 0; b < node.sram_bank_count(); ++b) {
      node.sram(b).read(0);
      node.sram(b).write(1, 0);
    }
    while (node.dram().can_read()) node.dram().read(0);
  }
  TextTable t({"Level", "Modeled peak", "Simulated sustained"});
  t.row("B (SRAM, 4 banks r+w)",
        bench::gbs(8.0 * 2 * kWordBytes * 164e6 / 2),  // 4 banks x 2 ports
        bench::gbs(node.sram_achieved_bytes_per_s()));
  t.row("C (DRAM via RapidArray)", bench::gbs(cfg.dram_bytes_per_s),
        bench::gbs(node.dram_achieved_bytes_per_s()));
  bench::print_table(t);
  return 0;
}
