#include "reduce/reduction_circuit.hpp"

#include <algorithm>

#include "telemetry/metrics.hpp"

namespace xd::reduce {

// --- Row/Buffer helpers --------------------------------------------------

bool ReductionCircuit::Buffer::fully_drained() const {
  for (const auto& r : rows) {
    if (r.in_use) return false;  // a used row is only released by emission
  }
  return true;
}

std::size_t ReductionCircuit::Buffer::occupied_words() const {
  std::size_t n = 0;
  for (const auto& r : rows) n += r.occupied_count();
  return n;
}

// --- tags -----------------------------------------------------------------

u64 ReductionCircuit::make_tag(unsigned buf, unsigned row, unsigned slot) {
  return (static_cast<u64>(buf) << 32) | (static_cast<u64>(row) << 16) |
         static_cast<u64>(slot);
}

void ReductionCircuit::split_tag(u64 tag, unsigned& buf, unsigned& row,
                                 unsigned& slot) {
  buf = static_cast<unsigned>(tag >> 32);
  row = static_cast<unsigned>((tag >> 16) & 0xFFFF);
  slot = static_cast<unsigned>(tag & 0xFFFF);
}

// --- construction ----------------------------------------------------------

ReductionCircuit::ReductionCircuit(unsigned adder_stages, bool dedicated_drain_adder)
    : alpha_(adder_stages), adder_(adder_stages) {
  require(adder_stages >= 2, "reduction circuit assumes a pipelined adder (alpha >= 2)");
  if (dedicated_drain_adder) {
    drain_adder_ = std::make_unique<fp::PipelinedAdder>(adder_stages);
  }
  for (auto& b : bufs_) {
    b.rows.resize(alpha_);
    for (auto& r : b.rows) r.slots.resize(alpha_);
  }
}

double ReductionCircuit::adder_utilization() const {
  if (!drain_adder_) return adder_.utilization();
  return (adder_.utilization() + drain_adder_->utilization()) / 2.0;
}

// --- per-cycle operation -----------------------------------------------------

bool ReductionCircuit::cycle(std::optional<Input> in) {
  ++cycles_;
  adder_issued_ = false;

  adder_.tick();
  if (auto r = adder_.take_output()) handle_writeback(*r);
  if (drain_adder_) {
    drain_adder_->tick();
    if (auto r = drain_adder_->take_output()) handle_writeback(*r);
  }

  bool consumed = false;
  if (in.has_value()) {
    consumed = accept_input(*in);
    if (!consumed) {
      ++stats_.stall_cycles;
      if (trace_ && trace_->enabled()) {
        trace_->emit(cycles_, "reduction", "stall: Buf_red draining");
      }
    }
  } else if (!cur_row_open_ && bufs_[in_idx_].rows_used > 0) {
    // Stream pause / flush: if the previous batch has fully drained, rotate
    // the partially-filled Buf_in into the drain role so trailing sets finish
    // without waiting for the buffer to fill.
    try_swap();
  }

  issue_drain_if_free();
  scan_for_finals();

  stats_.peak_buffer_words =
      std::max({stats_.peak_buffer_words, bufs_[0].occupied_words(),
                bufs_[1].occupied_words()});
  stats_.peak_out_queue = std::max(stats_.peak_out_queue, out_queue_.size());
  return consumed;
}

void ReductionCircuit::handle_writeback(const fp::FpResult& r) {
  unsigned buf, row, slot;
  split_tag(r.tag, buf, row, slot);
  Row& target = bufs_[buf].rows[row];
  Slot& s = target.slots[slot];
  if (!s.inflight) {
    throw SimError("reduction circuit: write-back to a slot that is not in flight");
  }
  s.bits = r.bits;
  s.inflight = false;
  s.occupied = true;
  --target.inflight_n;
}

bool ReductionCircuit::try_swap() {
  Buffer& red = bufs_[1 - in_idx_];
  if (!red.fully_drained()) return false;
  // The outgoing Buf_in may still have fold write-backs in flight; they are
  // tagged with the physical buffer index and land correctly after the swap.
  if (trace_ && trace_->enabled()) {
    trace_->emit(cycles_, "reduction",
                 cat("swap: buffer ", in_idx_, " -> Buf_red (",
                     bufs_[in_idx_].rows_used, " rows)"));
  }
  in_idx_ = 1 - in_idx_;
  Buffer& fresh_in = bufs_[in_idx_];
  for (auto& row : fresh_in.rows) {
    row = Row{};
    row.slots.resize(alpha_);
  }
  fresh_in.rows_used = 0;
  drain_rr_ = 0;
  ++stats_.swaps;
  return true;
}

bool ReductionCircuit::accept_input(const Input& in) {
  Buffer* bin = &bufs_[in_idx_];
  if (!cur_row_open_) {
    if (bin->rows_used == alpha_) {
      if (!try_swap()) return false;  // stall: previous batch still draining
      bin = &bufs_[in_idx_];
    }
    cur_row_ = bin->rows_used++;
    Row& row = bin->rows[cur_row_];
    row.in_use = true;
    row.set_id = next_set_id_++;
    row.complete = false;
    row.direct_fill = 0;
    row.merge_ptr = 0;
    cur_row_open_ = true;
  }

  Row& row = bin->rows[cur_row_];
  if (row.direct_fill < alpha_) {
    // Direct write; the adder stays free for the drain path this cycle.
    Slot& s = row.slots[row.direct_fill++];
    s.bits = in.bits;
    s.occupied = true;
    s.inflight = false;
    ++row.occupied_n;
  } else {
    // Fold path: combine the new element with slot (merge_ptr mod alpha).
    // The slot was last targeted alpha inputs (= alpha cycles) ago, so its
    // write-back has completed; anything else is a genuine RAW hazard.
    Slot& s = row.slots[row.merge_ptr];
    if (s.inflight || !s.occupied) {
      throw SimError("reduction circuit: fold path read-after-write hazard");
    }
    adder_.issue(in.bits, s.bits, make_tag(in_idx_, cur_row_, row.merge_ptr));
    s.inflight = true;
    ++row.inflight_n;
    adder_issued_ = true;
    row.merge_ptr = (row.merge_ptr + 1) % alpha_;
  }
  if (in.last) {
    row.complete = true;
    cur_row_open_ = false;
  }
  ++stats_.inputs;
  return true;
}

void ReductionCircuit::issue_drain_if_free() {
  // In two-adder mode the drain path owns its adder and never contends with
  // the input fold path.
  if (!drain_adder_ && adder_issued_) return;
  fp::PipelinedAdder& drain = drain_adder_ ? *drain_adder_ : adder_;
  Buffer& red = bufs_[1 - in_idx_];
  for (unsigned probe = 0; probe < alpha_; ++probe) {
    const unsigned ri = (drain_rr_ + probe) % alpha_;
    Row& row = red.rows[ri];
    if (!row.in_use || row.available_count() < 2) continue;
    // Find two available values (occupied, not awaiting a write-back).
    int first = -1, second = -1;
    for (unsigned si = 0; si < alpha_; ++si) {
      const Slot& s = row.slots[si];
      if (s.occupied && !s.inflight) {
        if (first < 0) {
          first = static_cast<int>(si);
        } else {
          second = static_cast<int>(si);
          break;
        }
      }
    }
    // A row still filling via fold write-backs or down to its final value is
    // skipped; rows with pending elements of an incomplete set cannot exist
    // in Buf_red (a set spans exactly one row and rows move at swap).
    if (second < 0) continue;
    Slot& a = row.slots[static_cast<unsigned>(first)];
    Slot& b = row.slots[static_cast<unsigned>(second)];
    drain.issue(a.bits, b.bits, make_tag(1 - in_idx_, ri, static_cast<unsigned>(first)));
    a.inflight = true;  // result lands back in `first`
    b.occupied = false;
    ++row.inflight_n;
    --row.occupied_n;
    if (!drain_adder_) adder_issued_ = true;
    drain_rr_ = (ri + 1) % alpha_;
    return;
  }
}

void ReductionCircuit::scan_for_finals() {
  // One memory write port: emit at most one completed set per cycle.
  Buffer& red = bufs_[1 - in_idx_];
  for (auto& row : red.rows) {
    if (!row.in_use || !row.complete) continue;
    if (row.inflight_count() != 0 || row.occupied_count() != 1) continue;
    for (auto& s : row.slots) {
      if (s.occupied) {
        out_queue_.push_back(SetResult{row.set_id, s.bits});
        s.occupied = false;
        --row.occupied_n;
        break;
      }
    }
    row.in_use = false;
    ++stats_.sets_completed;
    if (trace_ && trace_->enabled()) {
      trace_->emit(cycles_, "reduction", cat("emit: set ", row.set_id));
    }
    return;
  }
}

std::optional<SetResult> ReductionCircuit::take_result() {
  if (out_queue_.empty()) return std::nullopt;
  SetResult r = out_queue_.front();
  out_queue_.erase(out_queue_.begin());
  return r;
}

void ReductionCircuit::publish(telemetry::MetricsRegistry& reg,
                               std::string_view prefix) const {
  reg.counter(cat(prefix, ".inputs")).add(stats_.inputs);
  reg.counter(cat(prefix, ".sets_completed")).add(stats_.sets_completed);
  reg.counter(cat(prefix, ".stall_cycles")).add(stats_.stall_cycles);
  reg.counter(cat(prefix, ".swaps")).add(stats_.swaps);
  reg.counter(cat(prefix, ".cycles")).add(cycles_);
  reg.gauge(cat(prefix, ".peak_buffer_words"))
      .set(static_cast<double>(stats_.peak_buffer_words));
  reg.gauge(cat(prefix, ".adder_utilization")).set(adder_utilization());
}

bool ReductionCircuit::busy() const {
  if (adder_.busy() || !out_queue_.empty()) return true;
  if (drain_adder_ && drain_adder_->busy()) return true;
  for (const auto& b : bufs_) {
    for (const auto& r : b.rows) {
      if (r.in_use) return true;
    }
  }
  return false;
}

}  // namespace xd::reduce
