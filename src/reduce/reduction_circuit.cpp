#include "reduce/reduction_circuit.hpp"

#include <algorithm>
#include <bit>

#include "telemetry/metrics.hpp"

namespace xd::reduce {

// --- Row helpers -----------------------------------------------------------

void ReductionCircuit::Row::reset() {
  set_id = 0;
  in_use = false;
  complete = false;
  direct_fill = 0;
  merge_ptr = 0;
  occupied_bits = 0;
  inflight_bits = 0;
  // `values` keeps its storage; stale words are unreachable once the bitmaps
  // are cleared.
}

void ReductionCircuit::Buffer::refresh(unsigned r) {
  const Row& row = rows[r];
  const u64 bit = u64{1} << r;
  const u64 avail = row.occupied_bits & ~row.inflight_bits;
  if (row.in_use && (avail & (avail - 1)) != 0) {
    drainable_rows |= bit;
  } else {
    drainable_rows &= ~bit;
  }
  if (row.in_use && row.complete && row.inflight_bits == 0 &&
      std::has_single_bit(row.occupied_bits)) {
    ready_rows |= bit;
  } else {
    ready_rows &= ~bit;
  }
}

// --- tags -----------------------------------------------------------------

u64 ReductionCircuit::make_tag(unsigned buf, unsigned row, unsigned slot) {
  return (static_cast<u64>(buf) << 32) | (static_cast<u64>(row) << 16) |
         static_cast<u64>(slot);
}

void ReductionCircuit::split_tag(u64 tag, unsigned& buf, unsigned& row,
                                 unsigned& slot) {
  buf = static_cast<unsigned>(tag >> 32);
  row = static_cast<unsigned>((tag >> 16) & 0xFFFF);
  slot = static_cast<unsigned>(tag & 0xFFFF);
}

// --- construction ----------------------------------------------------------

ReductionCircuit::ReductionCircuit(unsigned adder_stages, bool dedicated_drain_adder)
    : alpha_(adder_stages), adder_(adder_stages) {
  require(adder_stages >= 2, "reduction circuit assumes a pipelined adder (alpha >= 2)");
  require(adder_stages <= 64,
          "reduction circuit tracks row slots in 64-bit occupancy maps (alpha <= 64)");
  if (dedicated_drain_adder) {
    drain_adder_ = std::make_unique<fp::PipelinedAdder>(adder_stages);
  }
  for (auto& b : bufs_) {
    b.rows.resize(alpha_);
    for (auto& r : b.rows) r.values.resize(alpha_);
  }
}

void ReductionCircuit::reset_for_reuse() {
  adder_.reset();
  if (drain_adder_) drain_adder_->reset();
  for (auto& b : bufs_) {
    for (auto& r : b.rows) r.reset();
    b.rows_used = 0;
    b.rows_active = 0;
    b.words = 0;
    b.drainable_rows = 0;
    b.ready_rows = 0;
  }
  in_idx_ = 0;
  next_set_id_ = 0;
  cur_row_open_ = false;
  cur_row_ = 0;
  drain_rr_ = 0;
  adder_issued_ = false;
  cycles_ = 0;
  stats_ = ReductionStats{};
  out_queue_.clear();
  trace_ = nullptr;
}

double ReductionCircuit::adder_utilization() const {
  if (!drain_adder_) return adder_.utilization();
  return (adder_.utilization() + drain_adder_->utilization()) / 2.0;
}

// --- per-cycle operation -----------------------------------------------------

bool ReductionCircuit::cycle(std::optional<Input> in) {
  ++cycles_;
  adder_issued_ = false;

  adder_.tick();
  if (auto r = adder_.take_output()) handle_writeback(*r);
  if (drain_adder_) {
    drain_adder_->tick();
    if (auto r = drain_adder_->take_output()) handle_writeback(*r);
  }

  bool consumed = false;
  if (in.has_value()) {
    consumed = accept_input(*in);
    if (!consumed) {
      ++stats_.stall_cycles;
      if (trace_ && trace_->enabled()) {
        trace_->emit(cycles_, "reduction", "stall: Buf_red draining");
      }
    }
  } else if (!cur_row_open_ && bufs_[in_idx_].rows_used > 0) {
    // Stream pause / flush: if the previous batch has fully drained, rotate
    // the partially-filled Buf_in into the drain role so trailing sets finish
    // without waiting for the buffer to fill.
    try_swap();
  }

  issue_drain_if_free();
  scan_for_finals();

  stats_.peak_buffer_words =
      std::max({stats_.peak_buffer_words, bufs_[0].words, bufs_[1].words});
  stats_.peak_out_queue = std::max(stats_.peak_out_queue, out_queue_.size());
  return consumed;
}

void ReductionCircuit::handle_writeback(const fp::FpResult& r) {
  unsigned buf, row, slot;
  split_tag(r.tag, buf, row, slot);
  Row& target = bufs_[buf].rows[row];
  const u64 bit = u64{1} << slot;
  if (!(target.inflight_bits & bit)) {
    throw SimError("reduction circuit: write-back to a slot that is not in flight");
  }
  target.values[slot] = r.bits;
  target.inflight_bits &= ~bit;
  // The slot stayed occupied while the result was in flight.
  bufs_[buf].refresh(row);
}

bool ReductionCircuit::try_swap() {
  Buffer& red = bufs_[1 - in_idx_];
  if (!red.fully_drained()) return false;
  // The outgoing Buf_in may still have fold write-backs in flight; they are
  // tagged with the physical buffer index and land correctly after the swap.
  if (trace_ && trace_->enabled()) {
    trace_->emit(cycles_, "reduction",
                 cat("swap: buffer ", in_idx_, " -> Buf_red (",
                     bufs_[in_idx_].rows_used, " rows)"));
  }
  in_idx_ = 1 - in_idx_;
  Buffer& fresh_in = bufs_[in_idx_];
  for (auto& row : fresh_in.rows) row.reset();
  fresh_in.rows_used = 0;
  fresh_in.rows_active = 0;
  fresh_in.words = 0;
  fresh_in.drainable_rows = 0;
  fresh_in.ready_rows = 0;
  drain_rr_ = 0;
  ++stats_.swaps;
  return true;
}

bool ReductionCircuit::accept_input(const Input& in) {
  Buffer* bin = &bufs_[in_idx_];
  if (!cur_row_open_) {
    if (bin->rows_used == alpha_) {
      if (!try_swap()) return false;  // stall: previous batch still draining
      bin = &bufs_[in_idx_];
    }
    cur_row_ = bin->rows_used++;
    ++bin->rows_active;
    Row& row = bin->rows[cur_row_];
    row.in_use = true;
    row.set_id = next_set_id_++;
    row.complete = false;
    row.direct_fill = 0;
    row.merge_ptr = 0;
    cur_row_open_ = true;
  }

  Row& row = bin->rows[cur_row_];
  if (row.direct_fill < alpha_) {
    // Direct write; the adder stays free for the drain path this cycle.
    const unsigned slot = row.direct_fill++;
    row.values[slot] = in.bits;
    row.occupied_bits |= u64{1} << slot;
    ++bin->words;
  } else {
    // Fold path: combine the new element with slot (merge_ptr mod alpha).
    // The slot was last targeted alpha inputs (= alpha cycles) ago, so its
    // write-back has completed; anything else is a genuine RAW hazard.
    const u64 bit = u64{1} << row.merge_ptr;
    if ((row.inflight_bits & bit) || !(row.occupied_bits & bit)) {
      throw SimError("reduction circuit: fold path read-after-write hazard");
    }
    adder_.issue(in.bits, row.values[row.merge_ptr],
                 make_tag(in_idx_, cur_row_, row.merge_ptr));
    row.inflight_bits |= bit;
    adder_issued_ = true;
    if (++row.merge_ptr == alpha_) row.merge_ptr = 0;
  }
  if (in.last) {
    row.complete = true;
    cur_row_open_ = false;
  }
  bin->refresh(cur_row_);
  ++stats_.inputs;
  return true;
}

void ReductionCircuit::issue_drain_if_free() {
  // In two-adder mode the drain path owns its adder and never contends with
  // the input fold path.
  if (!drain_adder_ && adder_issued_) return;
  Buffer& red = bufs_[1 - in_idx_];
  // Rows with >= 2 available values, cyclic-first-match from drain_rr_ — the
  // same row the old round-robin probe loop would have picked. Rows still
  // filling via fold write-backs or down to their final value have their
  // drainable bit clear; rows with pending elements of an incomplete set
  // cannot exist in Buf_red (a set spans exactly one row, rows move at swap).
  if (red.drainable_rows == 0) return;
  fp::PipelinedAdder& drain = drain_adder_ ? *drain_adder_ : adder_;
  const u64 from_rr = red.drainable_rows >> drain_rr_;
  const unsigned ri = static_cast<unsigned>(
      from_rr != 0 ? drain_rr_ + std::countr_zero(from_rr)
                   : std::countr_zero(red.drainable_rows));
  Row& row = red.rows[ri];
  // The two lowest-index available values (occupied, not awaiting a
  // write-back) — the same pair the old slot scan used to pick.
  const u64 avail = row.occupied_bits & ~row.inflight_bits;
  const u64 rest = avail & (avail - 1);
  const unsigned first = static_cast<unsigned>(std::countr_zero(avail));
  const unsigned second = static_cast<unsigned>(std::countr_zero(rest));
  drain.issue(row.values[first], row.values[second],
              make_tag(1 - in_idx_, ri, first));
  row.inflight_bits |= u64{1} << first;  // result lands back in `first`
  row.occupied_bits &= ~(u64{1} << second);
  --red.words;
  red.refresh(ri);
  if (!drain_adder_) adder_issued_ = true;
  drain_rr_ = ri + 1 == alpha_ ? 0 : ri + 1;
}

void ReductionCircuit::scan_for_finals() {
  // One memory write port: emit at most one completed set per cycle — the
  // lowest-index ready row, as the old row scan emitted.
  Buffer& red = bufs_[1 - in_idx_];
  if (red.ready_rows == 0) return;
  const unsigned ri = static_cast<unsigned>(std::countr_zero(red.ready_rows));
  Row& row = red.rows[ri];
  const unsigned slot = static_cast<unsigned>(std::countr_zero(row.occupied_bits));
  out_queue_.push_back(SetResult{row.set_id, row.values[slot]});
  row.occupied_bits = 0;
  --red.words;
  row.in_use = false;
  --red.rows_active;
  red.refresh(ri);
  ++stats_.sets_completed;
  if (trace_ && trace_->enabled()) {
    trace_->emit(cycles_, "reduction", cat("emit: set ", row.set_id));
  }
}

std::optional<SetResult> ReductionCircuit::take_result() {
  if (out_queue_.empty()) return std::nullopt;
  SetResult r = out_queue_.front();
  out_queue_.pop_front();
  return r;
}

void ReductionCircuit::publish(telemetry::MetricsRegistry& reg,
                               std::string_view prefix) const {
  reg.counter(cat(prefix, ".inputs")).add(stats_.inputs);
  reg.counter(cat(prefix, ".sets_completed")).add(stats_.sets_completed);
  reg.counter(cat(prefix, ".stall_cycles")).add(stats_.stall_cycles);
  reg.counter(cat(prefix, ".swaps")).add(stats_.swaps);
  reg.counter(cat(prefix, ".cycles")).add(cycles_);
  reg.gauge(cat(prefix, ".peak_buffer_words"))
      .set(static_cast<double>(stats_.peak_buffer_words));
  reg.gauge(cat(prefix, ".adder_utilization")).set(adder_utilization());
}

bool ReductionCircuit::busy() const {
  if (adder_.busy() || !out_queue_.empty()) return true;
  if (drain_adder_ && drain_adder_->busy()) return true;
  return bufs_[0].rows_active != 0 || bufs_[1].rows_active != 0;
}

}  // namespace xd::reduce
