#include "reduce/baselines.hpp"

#include <algorithm>

namespace xd::reduce {

// ---------------------------------------------------------------- stalling --

StallingAccumulator::StallingAccumulator(unsigned adder_stages)
    : adder_(adder_stages) {}

bool StallingAccumulator::cycle(std::optional<Input> in) {
  ++cycles_;
  adder_.tick();
  if (auto r = adder_.take_output()) {
    acc_ = r->bits;
    inflight_ = false;
    if (inflight_last_) {
      out_.push_back(SetResult{cur_set_++, acc_});
      have_acc_ = false;
      inflight_last_ = false;
    } else {
      have_acc_ = true;
    }
  }

  bool consumed = false;
  if (in.has_value()) {
    if (inflight_) {
      ++stalls_;  // dependent addition: wait for the pipeline to drain
    } else if (!have_acc_) {
      if (in->last) {
        out_.push_back(SetResult{cur_set_++, in->bits});  // single-element set
      } else {
        acc_ = in->bits;
        have_acc_ = true;
      }
      consumed = true;
    } else {
      adder_.issue(acc_, in->bits);
      inflight_ = true;
      inflight_last_ = in->last;
      have_acc_ = false;  // accumulator invalid until write-back
      consumed = true;
    }
  }
  return consumed;
}

std::optional<SetResult> StallingAccumulator::take_result() {
  if (out_.empty()) return std::nullopt;
  SetResult r = out_.front();
  out_.erase(out_.begin());
  return r;
}

bool StallingAccumulator::busy() const {
  return inflight_ || have_acc_ || !out_.empty();
}

// ------------------------------------------------------------------- kogge --

KoggeTree::KoggeTree(unsigned levels, unsigned adder_stages)
    : levels_(levels), stages_(adder_stages) {
  require(levels >= 1, "Kogge tree needs at least one level");
  lvls_.reserve(levels);
  for (unsigned l = 0; l < levels; ++l) lvls_.emplace_back(adder_stages);
}

void KoggeTree::feed(unsigned level, u64 set_id, u64 bits) {
  if (level >= levels_) {
    // Virtual output stage: a correctly-sized tree delivers exactly one value
    // per set here.
    auto [it, inserted] = finals_.emplace(set_id, bits);
    if (!inserted) {
      throw ConfigError(
          cat("KoggeTree undersized: set ", set_id,
              " produced more than one value at the output (need more levels)"));
    }
    return;
  }
  lvls_[level].inbox.emplace_back(set_id, bits);
}

void KoggeTree::finish_set(unsigned level, u64 set_id) {
  if (level >= levels_) {
    auto it = finals_.find(set_id);
    if (it == finals_.end()) {
      throw SimError(cat("KoggeTree: set ", set_id, " finished with no value"));
    }
    out_.push_back(SetResult{set_id, it->second});
    finals_.erase(it);
    return;
  }
  lvls_[level].sets[set_id].upstream_done = true;
}

void KoggeTree::step_level(unsigned level) {
  Level& L = lvls_[level];
  bool issued = false;

  // Consume the inbox: hold the first value of a pair, fire the adder on the
  // second. One adder issue per level per cycle.
  std::size_t guard = L.inbox.size();
  while (!L.inbox.empty() && guard-- > 0) {
    auto [set_id, bits] = L.inbox.front();
    SetState& s = L.sets[set_id];
    if (s.hold.has_value()) {
      if (issued) break;  // adder already used this cycle; retry next cycle
      L.adder.issue(*s.hold, bits, set_id);
      s.hold.reset();
      ++s.inflight;
      issued = true;
    } else {
      s.hold = bits;
    }
    L.inbox.pop_front();
  }

  // Flush finished sets downward: when nothing of the set remains at this
  // level, pass the odd leftover (if any) and the done token to level + 1.
  for (auto it = L.sets.begin(); it != L.sets.end();) {
    SetState& s = it->second;
    bool inbox_has_set = false;
    for (const auto& [sid, b] : L.inbox) {
      (void)b;
      if (sid == it->first) {
        inbox_has_set = true;
        break;
      }
    }
    if (s.upstream_done && s.inflight == 0 && !inbox_has_set) {
      if (s.hold.has_value()) feed(level + 1, it->first, *s.hold);
      finish_set(level + 1, it->first);
      it = L.sets.erase(it);
    } else {
      ++it;
    }
  }
}

bool KoggeTree::cycle(std::optional<Input> in) {
  ++cycles_;
  // Write-backs first: adder results re-enter the next level's inbox.
  for (unsigned l = 0; l < levels_; ++l) {
    Level& L = lvls_[l];
    L.adder.tick();
    if (auto r = L.adder.take_output()) {
      --L.sets[r->tag].inflight;
      feed(l + 1, r->tag, r->bits);
    }
  }

  bool consumed = false;
  if (in.has_value()) {
    feed(0, next_set_id_, in->bits);
    if (in->last) finish_set(0, next_set_id_++);
    consumed = true;  // the tree never stalls the input
  }

  for (unsigned l = 0; l < levels_; ++l) step_level(l);

  std::size_t occupancy = finals_.size();
  for (const auto& L : lvls_) {
    occupancy += L.inbox.size();
    for (const auto& [sid, s] : L.sets) {
      (void)sid;
      occupancy += s.hold.has_value() ? 1 : 0;
    }
  }
  peak_buffer_ = std::max(peak_buffer_, occupancy);
  return consumed;
}

std::optional<SetResult> KoggeTree::take_result() {
  if (out_.empty()) return std::nullopt;
  SetResult r = out_.front();
  out_.erase(out_.begin());
  return r;
}

bool KoggeTree::busy() const {
  if (!out_.empty() || !finals_.empty()) return true;
  for (const auto& L : lvls_) {
    if (L.adder.busy() || !L.inbox.empty() || !L.sets.empty()) return true;
  }
  return false;
}

std::size_t KoggeTree::buffer_words() const { return peak_buffer_; }

double KoggeTree::adder_utilization() const {
  double sum = 0.0;
  for (const auto& L : lvls_) sum += L.adder.utilization();
  return lvls_.empty() ? 0.0 : sum / static_cast<double>(lvls_.size());
}

// ---------------------------------------------------------------- ni-hwang --

NiHwangReducer::NiHwangReducer(unsigned adder_stages) : adder_(adder_stages) {}

bool NiHwangReducer::cycle(std::optional<Input> in) {
  ++cycles_;
  adder_.tick();
  if (auto r = adder_.take_output()) {
    avail_.push_back(r->bits);
    --inflight_;
  }

  bool consumed = false;
  if (in.has_value()) {
    // A new set must wait for the previous one to drain completely.
    if (set_done_) {
      ++stalls_;
    } else {
      set_open_ = true;
      avail_.push_back(in->bits);
      if (in->last) {
        set_done_ = true;
        set_open_ = false;
      }
      consumed = true;
    }
  }

  // Fold one available pair per cycle.
  if (avail_.size() >= 2) {
    const u64 a = avail_.back();
    avail_.pop_back();
    const u64 b = avail_.back();
    avail_.pop_back();
    adder_.issue(a, b);
    ++inflight_;
  }

  // Set complete: exactly one value left and nothing in flight.
  if (set_done_ && inflight_ == 0 && avail_.size() == 1) {
    out_.push_back(SetResult{cur_set_++, avail_.front()});
    avail_.clear();
    set_done_ = false;
  }

  peak_buffer_ = std::max(peak_buffer_, avail_.size());
  return consumed;
}

std::optional<SetResult> NiHwangReducer::take_result() {
  if (out_.empty()) return std::nullopt;
  SetResult r = out_.front();
  out_.erase(out_.begin());
  return r;
}

bool NiHwangReducer::busy() const {
  return set_open_ || set_done_ || adder_.busy() || !avail_.empty() ||
         !out_.empty();
}

// ------------------------------------------------------------------ greedy --

SingleAdderGreedy::SingleAdderGreedy(unsigned adder_stages)
    : adder_(adder_stages) {}

bool SingleAdderGreedy::cycle(std::optional<Input> in) {
  ++cycles_;
  adder_.tick();
  if (auto r = adder_.take_output()) {
    SetState& s = sets_[r->tag];
    s.avail.push_back(r->bits);
    --s.inflight;
  }

  bool consumed = false;
  if (in.has_value()) {
    SetState& s = sets_[next_set_id_];
    s.avail.push_back(in->bits);
    if (in->last) {
      s.done = true;
      ++next_set_id_;
    }
    consumed = true;  // unbounded buffer: never stalls
  }

  // Issue one addition from the oldest set holding a pair of values.
  for (auto& [sid, s] : sets_) {
    if (s.avail.size() >= 2) {
      const u64 a = s.avail.back();
      s.avail.pop_back();
      const u64 b = s.avail.back();
      s.avail.pop_back();
      adder_.issue(a, b, sid);
      ++s.inflight;
      break;
    }
  }

  // Emit at most one finished set per cycle (single memory write port).
  for (auto it = sets_.begin(); it != sets_.end(); ++it) {
    SetState& s = it->second;
    if (s.done && s.inflight == 0 && s.avail.size() == 1) {
      out_.push_back(SetResult{it->first, s.avail.front()});
      sets_.erase(it);
      break;
    }
  }

  std::size_t occupancy = 0;
  for (const auto& [sid, s] : sets_) {
    (void)sid;
    occupancy += s.avail.size();
  }
  peak_buffer_ = std::max(peak_buffer_, occupancy);
  return consumed;
}

std::optional<SetResult> SingleAdderGreedy::take_result() {
  if (out_.empty()) return std::nullopt;
  SetResult r = out_.front();
  out_.erase(out_.begin());
  return r;
}

bool SingleAdderGreedy::busy() const {
  return adder_.busy() || !sets_.empty() || !out_.empty();
}

}  // namespace xd::reduce
