// Baseline reduction circuits for comparison against the proposed design
// (Sec 2.3 of the paper surveys exactly these approaches):
//
//  - StallingAccumulator: the naive solution — one pipelined adder, one
//    accumulator register, dependent additions wait for the pipeline to
//    drain. Cheap but ~alpha cycles per input.
//  - KoggeTree: Kogge's method [15] — lg(s) cascaded adders; one input per
//    cycle with no stalls, but adder count grows with the set size.
//  - SingleAdderGreedy: a fully-compacted-binary-tree style single-adder
//    reducer (cf. [28]): every pair of available partial values of a set is
//    eligible; one add issues per cycle from the oldest eligible set. One
//    input per cycle with (almost) no stalls, but the partial-value buffer
//    is unbounded and its peak occupancy is the interesting metric — for
//    many small sets it grows well past the proposed circuit's alpha^2.
//  - The two-adder variant of the proposed circuit lives in
//    ReductionCircuit(stages, /*dedicated_drain_adder=*/true) (cf. [19]).
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "fp/fpu.hpp"
#include "reduce/reduction_iface.hpp"

namespace xd::reduce {

/// Naive single-adder accumulator that stalls on every dependent addition.
class StallingAccumulator final : public ReductionCircuitBase {
 public:
  explicit StallingAccumulator(unsigned adder_stages = fp::kAdderStages);

  bool cycle(std::optional<Input> in) override;
  std::optional<SetResult> take_result() override;
  bool busy() const override;

  std::string name() const override { return "stalling-accumulator"; }
  unsigned adders_used() const override { return 1; }
  std::size_t buffer_words() const override { return 1; }
  u64 cycles() const override { return cycles_; }
  u64 stall_cycles() const override { return stalls_; }
  double adder_utilization() const override { return adder_.utilization(); }

 private:
  fp::PipelinedAdder adder_;
  bool have_acc_ = false;
  u64 acc_ = 0;
  bool inflight_ = false;
  bool inflight_last_ = false;
  u64 cur_set_ = 0;
  std::vector<SetResult> out_;
  u64 cycles_ = 0;
  u64 stalls_ = 0;
};

/// Kogge's cascaded-tree method: `levels` adders; level l pairs the stream
/// emerging from level l-1. Handles arbitrary set sizes by forwarding odd
/// leftovers to the next level when a set finishes at a level. The
/// configuration must satisfy 2^levels >= max set size, or the final level
/// emits more than one value per set (reported as a ConfigError).
class KoggeTree final : public ReductionCircuitBase {
 public:
  KoggeTree(unsigned levels, unsigned adder_stages = fp::kAdderStages);

  bool cycle(std::optional<Input> in) override;
  std::optional<SetResult> take_result() override;
  bool busy() const override;

  std::string name() const override { return "kogge-tree"; }
  unsigned adders_used() const override { return levels_; }
  std::size_t buffer_words() const override;
  u64 cycles() const override { return cycles_; }
  u64 stall_cycles() const override { return 0; }
  double adder_utilization() const override;

 private:
  // Per-level, per-set bookkeeping. A level receives values of a set, pairs
  // them, and forwards sums; when the set is done upstream and nothing is in
  // flight, a leftover held value (odd count) and the done token move down.
  struct SetState {
    std::optional<u64> hold;
    unsigned inflight = 0;
    bool upstream_done = false;
  };
  struct Level {
    fp::PipelinedAdder adder;
    std::map<u64, SetState> sets;
    std::deque<std::pair<u64, u64>> inbox;  // (set_id, bits)

    explicit Level(unsigned stages) : adder(stages) {}
  };

  void feed(unsigned level, u64 set_id, u64 bits);
  void finish_set(unsigned level, u64 set_id);
  void step_level(unsigned level);

  unsigned levels_;
  unsigned stages_;
  std::vector<Level> lvls_;
  std::map<u64, u64> finals_;  ///< per-set value waiting at the virtual output
  u64 next_set_id_ = 0;
  std::vector<SetResult> out_;
  u64 cycles_ = 0;
  std::size_t peak_buffer_ = 0;
};

/// Ni-Hwang-style single-adder vector reducer [21]: engineered for ONE input
/// vector at a time — pairs of available partials fold through the adder with
/// a small fixed buffer, but a new set may not begin until the previous set
/// has fully drained, so multi-set streams stall between sets (the exact
/// weakness the paper's Sec 2.3 calls out: "for multiple input vectors, the
/// method has to interleave the sets; otherwise, the buffer ... will
/// overflow" — we stall instead of overflowing).
class NiHwangReducer final : public ReductionCircuitBase {
 public:
  explicit NiHwangReducer(unsigned adder_stages = fp::kAdderStages);

  bool cycle(std::optional<Input> in) override;
  std::optional<SetResult> take_result() override;
  bool busy() const override;

  std::string name() const override { return "ni-hwang-single-set"; }
  unsigned adders_used() const override { return 1; }
  std::size_t buffer_words() const override { return peak_buffer_; }
  u64 cycles() const override { return cycles_; }
  u64 stall_cycles() const override { return stalls_; }
  double adder_utilization() const override { return adder_.utilization(); }

 private:
  fp::PipelinedAdder adder_;
  std::vector<u64> avail_;
  unsigned inflight_ = 0;
  bool set_open_ = false;   ///< currently accepting this set's elements
  bool set_done_ = false;   ///< last element seen, draining
  u64 cur_set_ = 0;
  std::vector<SetResult> out_;
  u64 cycles_ = 0;
  u64 stalls_ = 0;
  std::size_t peak_buffer_ = 0;
};

/// Single-adder, availability-driven reducer with an unbounded partial
/// buffer (fully-compacted-binary-tree style, cf. [28]).
class SingleAdderGreedy final : public ReductionCircuitBase {
 public:
  explicit SingleAdderGreedy(unsigned adder_stages = fp::kAdderStages);

  bool cycle(std::optional<Input> in) override;
  std::optional<SetResult> take_result() override;
  bool busy() const override;

  std::string name() const override { return "single-adder-greedy"; }
  unsigned adders_used() const override { return 1; }
  /// Reported as the observed peak (the design provides no a-priori bound).
  std::size_t buffer_words() const override { return peak_buffer_; }
  u64 cycles() const override { return cycles_; }
  u64 stall_cycles() const override { return 0; }
  double adder_utilization() const override { return adder_.utilization(); }

  std::size_t peak_buffer_words() const { return peak_buffer_; }

 private:
  struct SetState {
    std::vector<u64> avail;
    unsigned inflight = 0;
    bool done = false;
  };

  fp::PipelinedAdder adder_;
  std::map<u64, SetState> sets_;  // ordered: oldest set first
  u64 next_set_id_ = 0;
  std::vector<SetResult> out_;
  u64 cycles_ = 0;
  std::size_t peak_buffer_ = 0;
};

}  // namespace xd::reduce
