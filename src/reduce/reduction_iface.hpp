// Common interface for reduction circuits.
//
// A reduction circuit accepts one floating-point input per cycle, where the
// input stream is partitioned into sets (each input carries a last-of-set
// marker), and produces one sum per set. Implementations differ in adder
// count, buffer size, and stall behaviour — exactly the trade-off space the
// paper's Section 2.3/4.3 discusses. The proposed circuit
// (reduction_circuit.hpp) and the baselines (baselines.hpp) all implement
// this interface so benches can compare them head-to-head.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/util.hpp"

namespace xd::reduce {

/// One element of the input stream.
struct Input {
  u64 bits = 0;        ///< IEEE-754 binary64 pattern
  bool last = false;   ///< true on the final element of a set
};

/// A completed reduction.
struct SetResult {
  u64 set_id = 0;  ///< 0-based arrival index of the set
  u64 bits = 0;    ///< IEEE-754 binary64 sum
};

class ReductionCircuitBase {
 public:
  virtual ~ReductionCircuitBase() = default;

  /// Advance one clock cycle, optionally offering one input element.
  /// Returns true if the input was consumed; false means the circuit stalled
  /// this cycle and the caller must re-offer the same element next cycle.
  virtual bool cycle(std::optional<Input> in) = 0;

  /// At most one completed set per cycle (the single memory write port).
  virtual std::optional<SetResult> take_result() = 0;

  /// True while any reduction work is still in flight.
  virtual bool busy() const = 0;

  // --- characteristics for comparison benches ---
  virtual std::string name() const = 0;
  virtual unsigned adders_used() const = 0;       ///< FP adders in the design
  virtual std::size_t buffer_words() const = 0;   ///< total buffer capacity
  virtual u64 cycles() const = 0;
  virtual u64 stall_cycles() const = 0;           ///< cycles an input was refused
  virtual double adder_utilization() const = 0;   ///< issues / (adders * cycles)
};

}  // namespace xd::reduce
