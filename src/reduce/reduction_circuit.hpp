// The paper's proposed reduction circuit (Sec 4.3): ONE pipelined
// floating-point adder and two buffers of alpha^2 words each, reducing
// multiple sequentially-delivered input sets of arbitrary size.
//
// Architecture (Fig 6):
//  - alpha = adder pipeline depth. Each buffer is organized as alpha rows of
//    alpha slots; one row holds (partial sums of) one input set.
//  - Buf_in accepts the input stream. The first min(s_i, alpha) elements of a
//    set are written directly into its row (adder not needed); every further
//    element is folded into the row by the adder (new input + slot j, j
//    cycling mod alpha, result written back to slot j). Because slot j is
//    revisited exactly every alpha cycles, the write-back of the previous
//    fold has just completed: no read-after-write hazard, no stall.
//  - Buf_red holds the previous batch of alpha rows and is drained through
//    the same adder in the cycles the input path leaves it free (i.e. while
//    Buf_in is taking direct writes). Draining combines two available values
//    of a row per issue; issues from different rows interleave, which is the
//    paper's "read column by column" schedule. A row that reaches a single
//    value with its set complete emits that value as the set's sum.
//  - When Buf_in fills (alpha rows in use) and Buf_red has fully drained, the
//    two buffers swap roles. If Buf_red has not drained yet the input stream
//    must stall; the paper proves (in the unpublished report [29]) that for
//    the workloads of interest the drain always finishes in time, and this
//    implementation exposes stall_cycles() so tests can verify the claim
//    empirically (zero stalls for uniform set sizes >= alpha, and total
//    latency < sum(s_i) + 2*alpha^2).
//
// The numeric combination order is therefore NOT plain left-to-right
// summation; like the hardware, results are a correctly-rounded sum of a
// reassociated addition tree, so tests compare against tolerance, not bits.
#pragma once

#include <bit>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "common/stats.hpp"
#include "fp/fpu.hpp"
#include "reduce/reduction_iface.hpp"
#include "sim/trace.hpp"

namespace xd::telemetry {
class MetricsRegistry;
}

namespace xd::reduce {

struct ReductionStats {
  u64 inputs = 0;
  u64 sets_completed = 0;
  u64 stall_cycles = 0;
  u64 swaps = 0;
  std::size_t peak_buffer_words = 0;  ///< max simultaneously-occupied slots, one buffer
  std::size_t peak_out_queue = 0;
};

class ReductionCircuit final : public ReductionCircuitBase {
 public:
  /// `dedicated_drain_adder` instantiates a second adder for the Buf_red
  /// drain path (in the spirit of the two-adder designs of [19]); the
  /// proposed circuit shares one adder between the fold and drain paths.
  explicit ReductionCircuit(unsigned adder_stages = fp::kAdderStages,
                            bool dedicated_drain_adder = false);

  bool cycle(std::optional<Input> in) override;
  std::optional<SetResult> take_result() override;
  bool busy() const override;

  std::string name() const override {
    return drain_adder_ ? "two-adder-[19]-style" : "proposed-1adder";
  }
  unsigned adders_used() const override { return drain_adder_ ? 2 : 1; }
  std::size_t buffer_words() const override { return 2ull * alpha_ * alpha_; }
  u64 cycles() const override { return cycles_; }
  u64 stall_cycles() const override { return stats_.stall_cycles; }
  double adder_utilization() const override;

  unsigned alpha() const { return alpha_; }
  const ReductionStats& stats() const { return stats_; }

  /// Attach a trace sink; buffer swaps, input stalls and set completions are
  /// emitted (nullptr detaches). The trace must outlive the circuit's use.
  void attach_trace(sim::Trace* trace) { trace_ = trace; }

  /// Back to the just-constructed state, keeping every buffer's storage and
  /// detaching any trace. The recycled engine-scratch path reuses one
  /// circuit across ops: construction allocates ~2*alpha row buffers, which
  /// dominated the per-op cost of tiny operations.
  void reset_for_reuse();

  /// Snapshot the circuit's counters into `reg` under `<prefix>.`: inputs,
  /// sets_completed, stall_cycles, swaps, cycles (counters) and
  /// peak_buffer_words / adder_utilization (gauges).
  void publish(telemetry::MetricsRegistry& reg, std::string_view prefix) const;

 private:
  struct Row {
    u64 set_id = 0;
    bool in_use = false;
    bool complete = false;     ///< last element of the set has arrived
    unsigned direct_fill = 0;  ///< elements written without the adder
    unsigned merge_ptr = 0;    ///< next slot for the fold path (mod alpha)
    // Slot state as bitmaps (alpha <= 64): bit i of occupied_bits means slot
    // i holds a value, bit i of inflight_bits means an adder result will
    // overwrite it (inflight slots stay occupied). The per-cycle scheduling
    // finds candidate slots with popcount/countr_zero instead of scanning.
    u64 occupied_bits = 0;
    u64 inflight_bits = 0;
    std::vector<u64> values;  ///< alpha slot values

    unsigned occupied_count() const {
      return static_cast<unsigned>(std::popcount(occupied_bits));
    }
    unsigned inflight_count() const {
      return static_cast<unsigned>(std::popcount(inflight_bits));
    }
    unsigned available_count() const {
      return static_cast<unsigned>(std::popcount(occupied_bits & ~inflight_bits));
    }
    bool drained() const { return occupied_bits == 0 && inflight_bits == 0; }
    void reset();  ///< back to empty, keeping the slot storage
  };
  struct Buffer {
    std::vector<Row> rows;
    unsigned rows_used = 0;    ///< rows handed to input sets since the swap
    unsigned rows_active = 0;  ///< rows whose set has not been emitted yet
    std::size_t words = 0;     ///< currently-occupied slots across all rows
    // Per-row scheduling state, refreshed at every row mutation so the
    // per-cycle drain/emit decisions are bit scans instead of row loops:
    // bit r of drainable_rows = row r has >= 2 available values; bit r of
    // ready_rows = row r is down to its completed set's final value.
    u64 drainable_rows = 0;
    u64 ready_rows = 0;

    bool fully_drained() const { return rows_active == 0; }
    /// Recompute row r's drainable/ready bits from its current state.
    void refresh(unsigned r);
  };

  // Tag layout for adder operations: buffer index, row, slot.
  static u64 make_tag(unsigned buf, unsigned row, unsigned slot);
  static void split_tag(u64 tag, unsigned& buf, unsigned& row, unsigned& slot);

  void handle_writeback(const fp::FpResult& r);
  bool try_swap();
  bool accept_input(const Input& in);
  void issue_drain_if_free();
  void scan_for_finals();

  unsigned alpha_;
  fp::PipelinedAdder adder_;
  std::unique_ptr<fp::PipelinedAdder> drain_adder_;  ///< only in two-adder mode
  Buffer bufs_[2];
  unsigned in_idx_ = 0;   ///< which buffer is Buf_in
  u64 next_set_id_ = 0;
  bool cur_row_open_ = false;  ///< current set still filling a row
  unsigned cur_row_ = 0;
  unsigned drain_rr_ = 0;  ///< round-robin row cursor for the drain schedule
  bool adder_issued_ = false;
  u64 cycles_ = 0;
  ReductionStats stats_;
  std::deque<SetResult> out_queue_;
  sim::Trace* trace_ = nullptr;
};

}  // namespace xd::reduce
