// Level 2 BLAS, architecture 2 (Sec 4.2): column-major interleaved GEMV.
//
// k multiplier/adder pairs; lane p owns rows p, k+p, 2k+p, ... of y. Matrix A
// streams in column-major order, k elements (k distinct rows of one column)
// per cycle, each multiplied by the broadcast element x[j]. Each lane's adder
// accumulates into a local intermediate store of y; a given y element is
// touched once per column, i.e. every n/k cycles, so as long as
// n/k >= alpha (the adder depth) no read-after-write hazard occurs — the
// design needs NO reduction circuit. The engine enforces the n/k >= alpha
// requirement and detects any violated hazard at simulation time.
#pragma once

#include <vector>

#include "blas2/mxv_tree.hpp"  // MxvOutcome
#include "fp/fpu.hpp"

namespace xd::blas2 {

struct MxvColConfig {
  unsigned k = 4;  ///< multiplier/adder lane pairs
  unsigned adder_stages = fp::kAdderStages;
  unsigned multiplier_stages = fp::kMultiplierStages;
  double mem_words_per_cycle = 4.0;  ///< streaming rate for A
  double clock_mhz = 170.0;
  /// Optional telemetry sink (mem.gemv.* / fpu.gemv.* / blas2.gemv_col.*
  /// metrics plus a "compute" phase span).
  telemetry::Session* telemetry = nullptr;
};

class MxvColEngine {
 public:
  explicit MxvColEngine(const MxvColConfig& cfg);

  /// y = A x for row-major `a` of shape rows x cols (streamed column-major by
  /// the engine); requires ceil(rows/k) >= adder_stages (hazard freedom).
  MxvOutcome run(const std::vector<double>& a, std::size_t rows, std::size_t cols,
                 const std::vector<double>& x);

  const MxvColConfig& config() const { return cfg_; }

 private:
  MxvColConfig cfg_;
};

}  // namespace xd::blas2
