#include "blas2/mxv_col.hpp"

#include <algorithm>
#include <cstring>
#include <deque>

#include "fp/softfloat.hpp"
#include "mem/channel.hpp"
#include "telemetry/session.hpp"

namespace xd::blas2 {

MxvColEngine::MxvColEngine(const MxvColConfig& cfg) : cfg_(cfg) {
  require(cfg.k >= 1, "GEMV column engine needs k >= 1");
  require(cfg.mem_words_per_cycle > 0.0, "memory bandwidth must be positive");
}

MxvOutcome MxvColEngine::run(const std::vector<double>& a, std::size_t rows,
                             std::size_t cols, const std::vector<double>& x) {
  require(rows >= 1 && cols >= 1, "GEMV needs a non-empty matrix");
  require(a.size() == rows * cols, "GEMV: matrix size mismatch");
  require(x.size() == cols, "GEMV: x length mismatch");

  const unsigned k = cfg_.k;
  const std::size_t groups = ceil_div(rows, k);  // row-groups per column
  require(groups >= cfg_.adder_stages,
          cat("column-major GEMV needs ceil(rows/k) >= adder stages (",
              groups, " < ", cfg_.adder_stages,
              "): a y element would be re-read before its update completes"));

  mem::Channel channel(cfg_.mem_words_per_cycle, "mxvcol.mem",
                       std::max(cfg_.mem_words_per_cycle + 2.0,
                                static_cast<double>(k) + 1.0));

  // Per-lane datapath: one multiplier, one adder, one slice of y-intermediate
  // storage (entry c accumulates y[c*k + lane]).
  struct Lane {
    fp::PipelinedMultiplier mult;
    fp::PipelinedAdder adder;
    std::vector<u64> acc;
    std::vector<bool> inflight;
    Lane(unsigned ms, unsigned as, std::size_t groups)
        : mult(ms), adder(as), acc(groups, fp::kPosZero), inflight(groups, false) {}
  };
  std::vector<Lane> lanes;
  lanes.reserve(k);
  for (unsigned p = 0; p < k; ++p) {
    lanes.emplace_back(cfg_.multiplier_stages, cfg_.adder_stages, groups);
  }

  // Pre-convert the operands once; the feed loop below only moves bits.
  std::vector<u64> abits(a.size());
  std::memcpy(abits.data(), a.data(), a.size() * sizeof(double));
  std::vector<u64> xbits(cols);
  std::memcpy(xbits.data(), x.data(), cols * sizeof(double));

  std::size_t col = 0, group = 0;
  bool feeding = true;
  u64 streamed_words = 0;
  u64 cycle = 0;
  u64 stalls = 0;

  auto lanes_busy = [&] {
    for (const auto& l : lanes) {
      if (l.mult.busy() || l.adder.busy()) return true;
    }
    return false;
  };

  const u64 budget = 500'000'000;
  while (feeding || lanes_busy()) {
    ++cycle;
    if (cycle > budget) throw SimError("GEMV column engine wedged");
    channel.tick();

    // Advance datapaths: multiplier output feeds the accumulate add; adder
    // output retires into the y store.
    for (auto& l : lanes) {
      l.mult.tick();
      l.adder.tick();
      if (auto r = l.adder.take_output()) {
        l.acc[r->tag] = r->bits;
        l.inflight[r->tag] = false;
      }
      if (auto r = l.mult.take_output()) {
        const u64 c = r->tag;
        if (l.inflight[c]) {
          throw SimError("column-major GEMV: y-intermediate RAW hazard");
        }
        l.adder.issue(r->bits, l.acc[c], c);
        l.inflight[c] = true;
      }
    }

    // Feed one (column, row-group) step: k elements of A, plus the broadcast
    // x element when a new column starts.
    if (feeding) {
      std::size_t active = 0;
      for (unsigned p = 0; p < k; ++p) {
        if (group * k + p < rows) ++active;
      }
      const double words =
          static_cast<double>(active) + (group == 0 ? 1.0 : 0.0);  // + x[j]
      if (channel.can_transfer(words)) {
        channel.transfer(words);
        streamed_words += static_cast<u64>(words);
        const u64 xb = xbits[col];
        for (unsigned p = 0; p < k; ++p) {
          const std::size_t row = group * k + p;
          if (row >= rows) break;
          lanes[p].mult.issue(abits[row * cols + col], xb, group);
        }
        if (++group == groups) {
          group = 0;
          if (++col == cols) feeding = false;
        }
      } else {
        ++stalls;
      }
    }
  }

  MxvOutcome out;
  out.y.assign(rows, 0.0);
  for (std::size_t row = 0; row < rows; ++row) {
    out.y[row] = fp::from_bits(lanes[row % k].acc[row / k]);
  }

  out.report.design = cat("gemv-col k=", k);
  out.report.cycles = cycle;
  out.report.compute_cycles = cycle;
  out.report.flops = 2ull * rows * cols;
  out.report.stall_cycles = stalls;
  out.report.sram_words = static_cast<double>(streamed_words + rows);  // + y out
  out.report.clock_mhz = cfg_.clock_mhz;

  if (telemetry::Session* tel = cfg_.telemetry) {
    tel->phase("compute", cycle);
    channel.publish(tel->metrics(), "mem.gemv.sram");
    auto lane_util = tel->histogram("fpu.gemv.lane_utilization");
    for (const auto& l : lanes) {
      l.mult.publish(tel->metrics(), "fpu.gemv.mul");
      l.adder.publish(tel->metrics(), "fpu.gemv.add");
      lane_util.observe(l.mult.utilization());
    }
    tel->counter("blas2.gemv_col.runs").add(1);
    tel->counter("blas2.gemv_col.cycles").add(cycle);
    tel->counter("blas2.gemv_col.flops").add(out.report.flops);
    tel->counter("blas2.gemv_col.stall_cycles").add(stalls);
  }
  return out;
}

}  // namespace xd::blas2
