// Sparse matrix-vector multiply (SpMXV) on the tree-based architecture.
//
// The paper's concluding section describes this design ([32]): the GEMV tree
// architecture extended to matrices in Compressed Row Storage format, making
// *no assumption on the sparsity structure*. Each CRS row is one reduction
// set whose size is the row's nonzero count — arbitrary and irregular, which
// is precisely the capability the Sec 4.3 reduction circuit adds over
// power-of-two-only designs.
//
// Per cycle the engine streams k (value, column-index) pairs of the current
// row; each multiplier looks the column's x entry up in its on-chip copy of
// x and the adder tree + reduction circuit accumulate the row sum. Rows
// shorter than k leave lanes idle within their last group (zero-padded), the
// same underutilization the real design shows on very sparse rows.
#pragma once

#include <cstddef>
#include <vector>

#include "blas2/mxv_tree.hpp"  // MxvOutcome
#include "fp/fpu.hpp"

namespace xd::blas2 {

/// Compressed Row Storage (CRS / CSR) matrix.
struct CrsMatrix {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<std::size_t> row_ptr;  ///< rows + 1 offsets into values/col_idx
  std::vector<double> values;
  std::vector<std::size_t> col_idx;

  std::size_t nnz() const { return values.size(); }
  double density() const {
    return rows && cols ? static_cast<double>(nnz()) /
                              (static_cast<double>(rows) * cols)
                        : 0.0;
  }
  /// Validate structural invariants; throws ConfigError on violations.
  void validate() const;

  /// Build from a dense row-major matrix, dropping exact zeros.
  static CrsMatrix from_dense(const std::vector<double>& dense, std::size_t rows,
                              std::size_t cols);
  /// Dense row-major reconstruction (tests / small examples).
  std::vector<double> to_dense() const;
};

struct SpmxvConfig {
  unsigned k = 4;  ///< multipliers == nonzeros consumed per cycle
  unsigned adder_stages = fp::kAdderStages;
  unsigned multiplier_stages = fp::kMultiplierStages;
  /// Streaming rate for the CRS stream. A CRS element is a 64-bit value plus
  /// an index word; XD1's four banks deliver 4 words/cycle, so a paired
  /// stream sustains 2 elements/cycle — the default models value+index
  /// fetched together at one element per bank-pair.
  double mem_elements_per_cycle = 2.0;
  double clock_mhz = 164.0;
  /// Optional telemetry sink (mem.spmxv.* / fpu.spmxv.* / reduce.spmxv.* /
  /// blas2.spmxv.* metrics plus a "compute" phase span).
  telemetry::Session* telemetry = nullptr;
};

class SpmxvEngine {
 public:
  explicit SpmxvEngine(const SpmxvConfig& cfg);

  /// y = A x for CRS `a`; x resides in on-chip storage (size = a.cols words).
  MxvOutcome run(const CrsMatrix& a, const std::vector<double>& x);

  const SpmxvConfig& config() const { return cfg_; }

 private:
  SpmxvConfig cfg_;
};

// ---- sparse workload generators (deterministic; used by tests & benches) --

/// Uniform random pattern with `nnz_per_row` nonzeros per row.
CrsMatrix make_uniform_sparse(std::size_t rows, std::size_t cols,
                              std::size_t nnz_per_row, u64 seed);

/// Banded matrix with the given half-bandwidth (tridiagonal = 1).
CrsMatrix make_banded(std::size_t n, std::size_t half_bandwidth, u64 seed);

/// Highly irregular rows: row i has between 1 and `max_row` nonzeros drawn
/// from a heavy-tailed distribution (stresses the reduction circuit with
/// arbitrary set sizes).
CrsMatrix make_power_law(std::size_t rows, std::size_t cols, std::size_t max_row,
                         u64 seed);

}  // namespace xd::blas2
