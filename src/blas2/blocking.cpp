#include "blas2/blocking.hpp"

#include "fp/backend.hpp"
#include "fp/softfloat.hpp"

namespace xd::blas2 {

MxvOutcome run_blocked_gemv_tree(const MxvTreeConfig& cfg,
                                 std::size_t onchip_x_words,
                                 const std::vector<double>& a, std::size_t rows,
                                 std::size_t cols, const std::vector<double>& x) {
  require(onchip_x_words >= 1, "on-chip x storage must hold at least one word");
  require(a.size() == rows * cols && x.size() == cols, "blocked GEMV: size mismatch");

  MxvTreeEngine engine(cfg);
  MxvOutcome total;
  total.y.assign(rows, 0.0);
  bool first_panel = true;

  for (std::size_t j0 = 0; j0 < cols; j0 += onchip_x_words) {
    const std::size_t width = std::min(onchip_x_words, cols - j0);
    // Gather the column panel (this models reading the panel row-major from
    // SRAM, exactly the traffic the sub-run accounts).
    std::vector<double> panel(rows * width);
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < width; ++c) {
        panel[r * width + c] = a[r * cols + j0 + c];
      }
    }
    const std::vector<double> xpanel(x.begin() + static_cast<long>(j0),
                                     x.begin() + static_cast<long>(j0 + width));
    MxvOutcome part = engine.run(panel, rows, width, xpanel);

    // Fold the partial y into the running y with the accumulation adder.
    // The adds overlap the next panel's streaming; only the pipeline drain
    // (alpha cycles) is serial, and y traffic (read + write) hits SRAM.
    if (first_panel) {
      total.y = part.y;
      first_panel = false;
    } else {
      const fp::Backend& be = fp::active_backend();
      for (std::size_t r = 0; r < rows; ++r) {
        total.y[r] = fp::from_bits(
            be.add(fp::to_bits(total.y[r]), fp::to_bits(part.y[r])));
      }
      part.report.cycles += cfg.adder_stages;          // accumulation drain
      part.report.sram_words += 2.0 * static_cast<double>(rows);  // y r/w
    }

    total.report.cycles += part.report.cycles;
    total.report.stall_cycles += part.report.stall_cycles;
    total.report.sram_words += part.report.sram_words;
  }

  total.report.design = cat("gemv-tree-blocked k=", cfg.k, " b=", onchip_x_words);
  total.report.compute_cycles = total.report.cycles;
  total.report.flops = 2ull * rows * cols;
  total.report.clock_mhz = cfg.clock_mhz;
  return total;
}

MxvOutcome run_blocked_gemv_col(const MxvColConfig& cfg,
                                std::size_t onchip_y_words,
                                const std::vector<double>& a, std::size_t rows,
                                std::size_t cols, const std::vector<double>& x) {
  require(onchip_y_words >= 1, "on-chip y storage must hold at least one word");
  require(a.size() == rows * cols && x.size() == cols, "blocked GEMV: size mismatch");

  MxvColEngine engine(cfg);
  MxvOutcome total;
  total.y.assign(rows, 0.0);

  for (std::size_t i0 = 0; i0 < rows; i0 += onchip_y_words) {
    const std::size_t height = std::min(onchip_y_words, rows - i0);
    std::vector<double> panel(a.begin() + static_cast<long>(i0 * cols),
                              a.begin() + static_cast<long>((i0 + height) * cols));
    MxvOutcome part = engine.run(panel, height, cols, x);
    for (std::size_t r = 0; r < height; ++r) total.y[i0 + r] = part.y[r];

    total.report.cycles += part.report.cycles;
    total.report.stall_cycles += part.report.stall_cycles;
    total.report.sram_words += part.report.sram_words;
  }

  total.report.design = cat("gemv-col-blocked k=", cfg.k, " b=", onchip_y_words);
  total.report.compute_cycles = total.report.cycles;
  total.report.flops = 2ull * rows * cols;
  total.report.clock_mhz = cfg.clock_mhz;
  return total;
}

}  // namespace xd::blas2
