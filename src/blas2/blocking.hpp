// Blocked GEMV (Sec 4.2, final paragraph): when vector x (or the
// y-intermediate store) exceeds the FPGA's on-chip capacity, the operation
// proceeds block by block.
//
//  - Tree architecture: A is split into column panels whose width fits the
//    on-chip x storage; each panel produces a partial y that a dedicated
//    pipelined adder folds into the running y (reading/writing y in SRAM).
//  - Column architecture: A is split into row panels whose height fits the
//    y-intermediate storage; each panel directly produces a final y block
//    (no cross-panel accumulation needed).
#pragma once

#include <cstddef>
#include <vector>

#include "blas2/mxv_col.hpp"
#include "blas2/mxv_tree.hpp"

namespace xd::blas2 {

/// Blocked row-major tree GEMV. `onchip_x_words` bounds the panel width.
MxvOutcome run_blocked_gemv_tree(const MxvTreeConfig& cfg,
                                 std::size_t onchip_x_words,
                                 const std::vector<double>& a, std::size_t rows,
                                 std::size_t cols, const std::vector<double>& x);

/// Blocked column-major GEMV. `onchip_y_words` bounds the panel height
/// (each panel height must still satisfy ceil(height/k) >= adder stages).
MxvOutcome run_blocked_gemv_col(const MxvColConfig& cfg,
                                std::size_t onchip_y_words,
                                const std::vector<double>& a, std::size_t rows,
                                std::size_t cols, const std::vector<double>& x);

}  // namespace xd::blas2
