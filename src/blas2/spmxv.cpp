#include "blas2/spmxv.hpp"

#include <algorithm>
#include <cstring>
#include <optional>

#include "common/random.hpp"
#include "common/ring_fifo.hpp"
#include "fp/backend.hpp"
#include "fp/softfloat.hpp"
#include "mem/channel.hpp"
#include "reduce/reduction_circuit.hpp"
#include "telemetry/session.hpp"

namespace xd::blas2 {

void CrsMatrix::validate() const {
  require(row_ptr.size() == rows + 1, "CRS: row_ptr must have rows+1 entries");
  require(row_ptr.front() == 0 && row_ptr.back() == values.size(),
          "CRS: row_ptr must start at 0 and end at nnz");
  require(values.size() == col_idx.size(), "CRS: values/col_idx size mismatch");
  for (std::size_t i = 0; i < rows; ++i) {
    require(row_ptr[i] <= row_ptr[i + 1], "CRS: row_ptr must be non-decreasing");
  }
  for (std::size_t c : col_idx) {
    require(c < cols, "CRS: column index out of range");
  }
}

CrsMatrix CrsMatrix::from_dense(const std::vector<double>& dense,
                                std::size_t rows, std::size_t cols) {
  require(dense.size() == rows * cols, "CRS from_dense: size mismatch");
  CrsMatrix m;
  m.rows = rows;
  m.cols = cols;
  m.row_ptr.reserve(rows + 1);
  m.row_ptr.push_back(0);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      const double v = dense[i * cols + j];
      if (v != 0.0) {
        m.values.push_back(v);
        m.col_idx.push_back(j);
      }
    }
    m.row_ptr.push_back(m.values.size());
  }
  return m;
}

std::vector<double> CrsMatrix::to_dense() const {
  std::vector<double> d(rows * cols, 0.0);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t e = row_ptr[i]; e < row_ptr[i + 1]; ++e) {
      d[i * cols + col_idx[e]] = values[e];
    }
  }
  return d;
}

SpmxvEngine::SpmxvEngine(const SpmxvConfig& cfg) : cfg_(cfg) {
  require(cfg.k >= 1, "SpMXV engine needs k >= 1");
  require(cfg.k == 1 || is_pow2(cfg.k), "adder tree needs k to be a power of two");
  require(cfg.mem_elements_per_cycle > 0.0, "memory bandwidth must be positive");
}

MxvOutcome SpmxvEngine::run(const CrsMatrix& a, const std::vector<double>& x) {
  a.validate();
  require(x.size() == a.cols, "SpMXV: x length mismatch");
  require(a.rows >= 1, "SpMXV: empty matrix");

  const unsigned k = cfg_.k;
  mem::Channel channel(cfg_.mem_elements_per_cycle, "spmxv.mem",
                       std::max(cfg_.mem_elements_per_cycle + 2.0,
                                static_cast<double>(k)));
  fp::AdderTree tree(std::max(2u, k), cfg_.adder_stages);
  reduce::ReductionCircuit red(cfg_.adder_stages);
  if (cfg_.telemetry && cfg_.telemetry->trace().enabled()) {
    red.attach_trace(&cfg_.telemetry->trace());
  }

  // Pre-convert x and the CRS value array to bit patterns once, so the lane
  // loop is a pure gather-multiply (col_idx indexes xbits).
  std::vector<u64> xbits(a.cols);
  std::memcpy(xbits.data(), x.data(), a.cols * sizeof(double));
  std::vector<u64> vbits(a.values.size());
  std::memcpy(vbits.data(), a.values.data(), a.values.size() * sizeof(double));

  const fp::Backend& be = fp::active_backend();
  fp::MultiplierBank mults(std::max(2u, k), cfg_.multiplier_stages);
  constexpr std::size_t kRedFifoCap = 64;
  // Headroom beyond the issue gate: in-flight multiplier/tree groups still
  // land after the gate closes.
  RingFifo<std::pair<u64, bool>> red_fifo(
      kRedFifoCap + cfg_.multiplier_stages + tree.latency() + 2);

  MxvOutcome out;
  out.y.assign(a.rows, 0.0);

  std::size_t row = 0;
  std::size_t elem = a.row_ptr.empty() ? 0 : a.row_ptr[0];
  std::size_t rows_done = 0;
  u64 streamed_elements = 0;
  u64 cycle = 0;
  u64 stalls = 0;

  const u64 budget = 500'000'000;
  while (rows_done < a.rows) {
    ++cycle;
    if (cycle > budget) throw SimError("SpMXV engine wedged");
    channel.tick();

    if (auto g = mults.pop_ready(cycle)) {
      if (k == 1) {
        red_fifo.push({g->products[0], g->last});
      } else {
        tree.issue(g->products, g->last ? 1 : 0);
      }
    }

    if (k >= 2) {
      tree.tick();
      if (auto r = tree.take_output()) red_fifo.push({r->bits, r->tag != 0});
    }

    std::optional<reduce::Input> rin;
    if (!red_fifo.empty()) {
      rin = reduce::Input{red_fifo.front().first, red_fifo.front().second};
    }
    const bool consumed = red.cycle(rin);
    if (rin.has_value()) {
      if (consumed) {
        red_fifo.pop();
      } else {
        ++stalls;
      }
    }
    if (auto r = red.take_result()) {
      out.y.at(r->set_id) = fp::from_bits(r->bits);
      ++rows_done;
    }

    // Feed the next group of up to k nonzeros of the current row. An empty
    // row contributes a single zero element (hardware injects a bubble so
    // every row produces exactly one reduction set).
    if (row < a.rows && red_fifo.size() < kRedFifoCap) {
      const std::size_t row_end = a.row_ptr[row + 1];
      const std::size_t remaining = row_end - elem;
      const std::size_t lanes = std::max<std::size_t>(
          1, std::min<std::size_t>(k, remaining));
      const double elements = static_cast<double>(remaining == 0 ? 1 : lanes);
      if (channel.can_transfer(elements)) {
        channel.transfer(elements);
        streamed_elements += static_cast<u64>(elements);
        const std::size_t active = std::min<std::size_t>(k, remaining);
        const bool last = (elem + active == row_end);
        u64* products = mults.stage(cycle, last);
        for (std::size_t lane = 0; lane < active; ++lane) {
          products[lane] = be.mul(vbits[elem + lane], xbits[a.col_idx[elem + lane]]);
        }
        // Pad idle lanes (short tail group, or the placeholder group an
        // empty row injects) with +0 so the tree sums them away.
        std::fill(products + active, products + mults.width(), fp::kPosZero);
        elem += active;
        if (last) {
          ++row;
          if (row < a.rows) elem = a.row_ptr[row];
        }
      }
    }
  }

  out.report.design = cat("spmxv-tree k=", k);
  out.report.cycles = cycle;
  out.report.compute_cycles = cycle;
  out.report.flops = 2ull * a.nnz();
  out.report.stall_cycles = stalls + red.stats().stall_cycles;
  // Each CRS element is a value word + an index word; y streams out too.
  out.report.sram_words = 2.0 * static_cast<double>(streamed_elements) +
                          static_cast<double>(a.rows);
  out.report.clock_mhz = cfg_.clock_mhz;

  if (telemetry::Session* tel = cfg_.telemetry) {
    tel->phase("compute", cycle);
    channel.publish(tel->metrics(), "mem.spmxv.sram");
    if (k >= 2) tree.publish(tel->metrics(), "fpu.spmxv.addtree");
    red.publish(tel->metrics(), "reduce.spmxv");
    tel->counter("fpu.spmxv.mul.ops").add(a.nnz());
    tel->counter("blas2.spmxv.runs").add(1);
    tel->counter("blas2.spmxv.cycles").add(cycle);
    tel->counter("blas2.spmxv.flops").add(out.report.flops);
    tel->counter("blas2.spmxv.stall_cycles").add(out.report.stall_cycles);
    auto row_nnz = tel->histogram("blas2.spmxv.row_nnz");
    for (std::size_t i = 0; i < a.rows; ++i) {
      row_nnz.observe(static_cast<double>(a.row_ptr[i + 1] - a.row_ptr[i]));
    }
  }
  return out;
}

// ---- generators ------------------------------------------------------------

CrsMatrix make_uniform_sparse(std::size_t rows, std::size_t cols,
                              std::size_t nnz_per_row, u64 seed) {
  require(nnz_per_row <= cols, "nnz_per_row exceeds cols");
  Rng rng(seed);
  CrsMatrix m;
  m.rows = rows;
  m.cols = cols;
  m.row_ptr.push_back(0);
  std::vector<std::size_t> pick(cols);
  for (std::size_t j = 0; j < cols; ++j) pick[j] = j;
  for (std::size_t i = 0; i < rows; ++i) {
    // Partial Fisher-Yates for a sorted random column subset.
    for (std::size_t t = 0; t < nnz_per_row; ++t) {
      const std::size_t r = t + rng.uniform_int(0, cols - 1 - t);
      std::swap(pick[t], pick[r]);
    }
    std::sort(pick.begin(), pick.begin() + static_cast<long>(nnz_per_row));
    for (std::size_t t = 0; t < nnz_per_row; ++t) {
      m.values.push_back(rng.uniform(-1.0, 1.0));
      m.col_idx.push_back(pick[t]);
    }
    m.row_ptr.push_back(m.values.size());
  }
  return m;
}

CrsMatrix make_banded(std::size_t n, std::size_t half_bandwidth, u64 seed) {
  Rng rng(seed);
  CrsMatrix m;
  m.rows = n;
  m.cols = n;
  m.row_ptr.push_back(0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t lo = i >= half_bandwidth ? i - half_bandwidth : 0;
    const std::size_t hi = std::min(n - 1, i + half_bandwidth);
    for (std::size_t j = lo; j <= hi; ++j) {
      m.values.push_back(rng.uniform(-1.0, 1.0));
      m.col_idx.push_back(j);
    }
    m.row_ptr.push_back(m.values.size());
  }
  return m;
}

CrsMatrix make_power_law(std::size_t rows, std::size_t cols, std::size_t max_row,
                         u64 seed) {
  require(max_row >= 1 && max_row <= cols, "bad max_row");
  Rng rng(seed);
  CrsMatrix m;
  m.rows = rows;
  m.cols = cols;
  m.row_ptr.push_back(0);
  std::vector<std::size_t> pick(cols);
  for (std::size_t j = 0; j < cols; ++j) pick[j] = j;
  for (std::size_t i = 0; i < rows; ++i) {
    // Heavy tail: nnz ~ max_row / u, clamped to [1, max_row].
    const double u = std::max(rng.uniform(), 1.0 / static_cast<double>(max_row));
    const std::size_t nnz = std::max<std::size_t>(
        1, std::min<std::size_t>(max_row, static_cast<std::size_t>(1.0 / u)));
    // Sorted random column subset (partial Fisher-Yates, no duplicates).
    for (std::size_t t = 0; t < nnz; ++t) {
      const std::size_t r = t + rng.uniform_int(0, cols - 1 - t);
      std::swap(pick[t], pick[r]);
    }
    std::sort(pick.begin(), pick.begin() + static_cast<long>(nnz));
    for (std::size_t t = 0; t < nnz; ++t) {
      m.values.push_back(rng.uniform(-1.0, 1.0));
      m.col_idx.push_back(pick[t]);
    }
    m.row_ptr.push_back(m.values.size());
  }
  return m;
}

}  // namespace xd::blas2
