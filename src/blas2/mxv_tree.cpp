#include "blas2/mxv_tree.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <optional>

#include "common/ring_fifo.hpp"
#include "fp/backend.hpp"
#include "fp/softfloat.hpp"
#include "mem/channel.hpp"
#include "sim/scratch.hpp"
#include "telemetry/session.hpp"

namespace xd::blas2 {

namespace {
constexpr std::size_t kRedFifoCap = 64;
}

MxvTreeEngine::MxvTreeEngine(const MxvTreeConfig& cfg) : cfg_(cfg) {
  require(cfg.k >= 1, "GEMV tree engine needs k >= 1");
  require(cfg.k == 1 || is_pow2(cfg.k), "adder tree needs k to be a power of two");
  require(cfg.mem_words_per_cycle > 0.0, "memory bandwidth must be positive");
}

u64 MxvTreeEngine::io_lower_bound_cycles(std::size_t rows, std::size_t cols) const {
  return static_cast<u64>(std::ceil(static_cast<double>(rows) *
                                    static_cast<double>(cols) /
                                    cfg_.mem_words_per_cycle));
}

MxvOutcome MxvTreeEngine::run(const std::vector<double>& a, std::size_t rows,
                              std::size_t cols, const std::vector<double>& x) {
  require(rows >= 1 && cols >= 1, "GEMV needs a non-empty matrix");
  require(a.size() == rows * cols, "GEMV: matrix size mismatch");
  require(x.size() == cols, "GEMV: x length mismatch");

  const unsigned k = cfg_.k;
  mem::Channel channel(cfg_.mem_words_per_cycle, "mxv.mem",
                       std::max(cfg_.mem_words_per_cycle + 2.0,
                                static_cast<double>(k)));
  // Tree/circuit/bank scaffold from the per-thread scratch pool (reset, not
  // reconstructed). FIFO headroom beyond the issue gate: in-flight
  // multiplier/tree groups still land after the gate closes.
  const fp::Backend& be = fp::active_backend();
  const unsigned kk = std::max(2u, k);  // tree unused when k == 1
  sim::TreeScratchLease scratch(
      {kk, cfg_.adder_stages, cfg_.multiplier_stages,
       kRedFifoCap + cfg_.multiplier_stages +
           static_cast<std::size_t>(log2_floor(kk)) * cfg_.adder_stages + 2,
       &be});
  fp::AdderTree& tree = scratch->tree;
  reduce::ReductionCircuit& red = scratch->red;
  fp::MultiplierBank& mults = scratch->mults;
  RingFifo<std::pair<u64, bool>>& red_fifo = scratch->red_fifo;
  if (cfg_.telemetry && cfg_.telemetry->trace().enabled()) {
    red.attach_trace(&cfg_.telemetry->trace());
  }

  // Local x storage, lane-striped exactly as the paper describes; pre-convert
  // to bits once (preload phase, not streamed during compute). The A panel is
  // pre-converted the same way so the lane loop is a straight mul_n. Both
  // panels live in the scratch's reusable staging vectors.
  scratch->xbits.resize(cols);
  u64* const xbits = scratch->xbits.data();
  std::memcpy(xbits, x.data(), cols * sizeof(double));
  scratch->abits.resize(a.size());
  u64* const abits = scratch->abits.data();
  std::memcpy(abits, a.data(), a.size() * sizeof(double));

  MxvOutcome out;
  out.y.assign(rows, 0.0);

  std::size_t row = 0, col = 0;
  std::size_t rows_done = 0;
  u64 streamed_words = 0;
  u64 cycle = 0;
  u64 stalls = 0;

  const u64 budget = 200'000'000;
  while (rows_done < rows) {
    ++cycle;
    if (cycle > budget) throw SimError("GEMV tree engine wedged");
    channel.tick();

    if (auto g = mults.pop_ready(cycle)) {
      if (k == 1) {
        red_fifo.push({g->products[0], g->last});
      } else {
        tree.issue(g->products, g->last ? 1 : 0);
      }
    }

    if (k >= 2) {
      tree.tick();
      if (auto r = tree.take_output()) red_fifo.push({r->bits, r->tag != 0});
    }

    std::optional<reduce::Input> rin;
    if (!red_fifo.empty()) {
      rin = reduce::Input{red_fifo.front().first, red_fifo.front().second};
    }
    const bool consumed = red.cycle(rin);
    if (rin.has_value()) {
      if (consumed) {
        red_fifo.pop();
      } else {
        ++stalls;
      }
    }
    if (auto r = red.take_result()) {
      out.y.at(r->set_id) = fp::from_bits(r->bits);
      ++rows_done;
    }

    if (row < rows && red_fifo.size() < kRedFifoCap) {
      const std::size_t remaining = cols - col;
      const std::size_t lanes = std::min<std::size_t>(k, remaining);
      const double words = static_cast<double>(lanes);  // only A streams
      if (channel.can_transfer(words)) {
        channel.transfer(words);
        streamed_words += lanes;
        u64* products = mults.stage(cycle, col + lanes == cols);
        be.mul_n(abits + row * cols + col, xbits + col, products, lanes);
        std::fill(products + lanes, products + mults.width(), fp::kPosZero);
        col += lanes;
        if (col == cols) {
          col = 0;
          ++row;
        }
      }
    }
  }

  out.report.design = cat("gemv-tree k=", std::to_string(k));
  out.report.cycles = cycle;
  out.report.compute_cycles = cycle;
  out.report.flops = 2ull * rows * cols;
  out.report.stall_cycles = stalls + red.stats().stall_cycles;
  out.report.sram_words = static_cast<double>(streamed_words + rows);  // + y out
  out.report.clock_mhz = cfg_.clock_mhz;

  if (telemetry::Session* tel = cfg_.telemetry) {
    tel->phase("compute", cycle);
    channel.publish(tel->metrics(), "mem.gemv.sram");
    if (k >= 2) tree.publish(tel->metrics(), "fpu.gemv.addtree");
    red.publish(tel->metrics(), "reduce.gemv");
    tel->counter("fpu.gemv.mul.ops").add(static_cast<u64>(rows) * cols);
    tel->counter("blas2.gemv.runs").add(1);
    tel->counter("blas2.gemv.cycles").add(cycle);
    tel->counter("blas2.gemv.flops").add(out.report.flops);
    tel->counter("blas2.gemv.stall_cycles").add(out.report.stall_cycles);
    tel->histogram("blas2.gemv.row_words").observe(static_cast<double>(cols));
  }
  return out;
}

}  // namespace xd::blas2
