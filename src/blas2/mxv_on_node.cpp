#include "blas2/mxv_on_node.hpp"

#include <cstring>
#include <memory>
#include <optional>

#include "common/ring_fifo.hpp"
#include "fp/backend.hpp"
#include "fp/softfloat.hpp"
#include "machine/status_regs.hpp"
#include "reduce/reduction_circuit.hpp"
#include "telemetry/session.hpp"

namespace xd::blas2 {

NodeGemvEngine::NodeGemvEngine(machine::ComputeNode& node,
                               const NodeGemvConfig& cfg)
    : node_(node), cfg_(cfg) {
  require(is_pow2(node.sram_bank_count()),
          "node GEMV needs a power-of-two SRAM bank count for the adder tree");
}

MxvOutcome NodeGemvEngine::run(const std::vector<double>& a, std::size_t rows,
                               std::size_t cols, const std::vector<double>& x,
                               bool from_dram) {
  const unsigned k = node_.sram_bank_count();
  require(rows >= 1 && cols >= 1, "GEMV needs a non-empty matrix");
  require(a.size() == rows * cols && x.size() == cols, "GEMV: size mismatch");
  require(cols % k == 0,
          "node GEMV streams one word per bank per cycle: cols must be a "
          "multiple of the bank count (pad the matrix)");
  const std::size_t per_bank = rows * cols / k;
  require(per_bank <= node_.sram(0).storage().words(),
          "matrix does not fit the SRAM banks");

  u64 cycle = 0;
  u64 staging_cycles = 0;

  // Sec 6.2 control protocol: the host announces the problem size and the
  // init command before any data moves; completion is polled at the end.
  std::unique_ptr<machine::StatusRegisters> regs;
  if (cfg_.with_handshake) {
    regs = std::make_unique<machine::StatusRegisters>(
        node_, cfg_.handshake_round_trip_cycles);
    cycle += regs->host_write(machine::StatusRegisters::Reg::ProblemSize, rows);
    cycle += regs->host_write(machine::StatusRegisters::Reg::Command,
                              machine::StatusRegisters::kCmdInit);
    regs->fpga_write(machine::StatusRegisters::Reg::Status,
                     machine::StatusRegisters::kStatusBusy);
  }

  // --- Stage A (bank-blocked layout, prepared by the host processor in its
  // own DRAM) across the RapidArray link into the four banks. -------------
  if (from_dram) {
    require(per_bank * k <= node_.dram().storage().words(),
            "modeled DRAM slice too small for A (increase dram_words)");
    // Convert A to bit patterns once, then permute into the bank-blocked
    // layout (the permutation only moves words, it never re-converts).
    std::vector<u64> abits(rows * cols);
    std::memcpy(abits.data(), a.data(), rows * cols * sizeof(double));
    std::vector<u64> bankblock(per_bank * k);
    for (std::size_t e = 0; e < rows * cols; ++e) {
      bankblock[(e % k) * per_bank + e / k] = abits[e];
    }
    node_.dram().storage().load(0, bankblock);
    for (unsigned b = 0; b < k; ++b) {
      node_.dma().start(node_.dram().storage(), b * per_bank,
                        node_.sram(b).storage(), 0, per_bank);
      while (node_.dma().active()) {
        node_.tick();
        ++cycle;
      }
    }
    // The processor also loads x into the design's local storage (cols words
    // over the same link).
    double pending = static_cast<double>(cols);
    while (pending > 0.0) {
      node_.tick();
      ++cycle;
      while (pending > 0.0 && node_.dram().link().can_transfer(1.0)) {
        node_.dram().link().transfer(1.0);
        pending -= 1.0;
      }
    }
    staging_cycles = cycle;
  } else {
    // A already resides in the banks (host-side initialization).
    for (std::size_t e = 0; e < rows * cols; ++e) {
      node_.sram(e % k).storage().load(e / k, {fp::to_bits(a[e])});
    }
  }

  // --- Compute: one word per bank per cycle through the tree datapath. ----
  std::vector<u64> xbits(cols);
  std::memcpy(xbits.data(), x.data(), cols * sizeof(double));

  fp::AdderTree tree(k, cfg_.adder_stages);
  reduce::ReductionCircuit red(cfg_.adder_stages);
  if (cfg_.telemetry && cfg_.telemetry->trace().enabled()) {
    red.attach_trace(&cfg_.telemetry->trace());
  }
  const fp::Backend& be = fp::active_backend();
  fp::MultiplierBank mults(k, cfg_.multiplier_stages);
  constexpr std::size_t kRedFifoCap = 64;
  // Headroom beyond the issue gate: in-flight multiplier/tree groups still
  // land after the gate closes.
  RingFifo<std::pair<u64, bool>> red_fifo(
      kRedFifoCap + cfg_.multiplier_stages + tree.latency() + 2);

  MxvOutcome out;
  out.y.assign(rows, 0.0);
  std::size_t row = 0, col = 0, rows_done = 0;
  u64 stalls = 0;

  const u64 budget = cycle + 500'000'000;
  while (rows_done < rows) {
    node_.tick();
    ++cycle;
    if (cycle > budget) throw SimError("node GEMV wedged");

    if (auto g = mults.pop_ready(cycle)) {
      tree.issue(g->products, g->last ? 1 : 0);
    }
    tree.tick();
    if (auto r = tree.take_output()) red_fifo.push({r->bits, r->tag != 0});

    std::optional<reduce::Input> rin;
    if (!red_fifo.empty()) {
      rin = reduce::Input{red_fifo.front().first, red_fifo.front().second};
    }
    const bool consumed = red.cycle(rin);
    if (rin.has_value()) {
      if (consumed) {
        red_fifo.pop();
      } else {
        ++stalls;
      }
    }
    if (auto r = red.take_result()) {
      out.y.at(r->set_id) = fp::from_bits(r->bits);
      ++rows_done;
    }

    if (row < rows && red_fifo.size() < kRedFifoCap) {
      // One read port per bank per cycle: a full k-wide group every cycle.
      const std::size_t base = row * cols + col;
      u64* products = mults.stage(cycle, col + k == cols);
      for (unsigned lane = 0; lane < k; ++lane) {
        const std::size_t e = base + lane;
        const u64 bits = node_.sram(e % k).read(e / k);
        products[lane] = be.mul(bits, xbits[col + lane]);
      }
      std::fill(products + k, products + mults.width(), fp::kPosZero);
      col += k;
      if (col == cols) {
        col = 0;
        ++row;
      }
    }
  }

  // --- Write y back to DRAM over the link (from-DRAM protocol only). ------
  if (from_dram) {
    double pending = static_cast<double>(rows);
    while (pending > 0.0) {
      node_.tick();
      ++cycle;
      while (pending > 0.0 && node_.dram().link().can_transfer(1.0)) {
        node_.dram().link().transfer(1.0);
        pending -= 1.0;
      }
    }
  }

  if (regs) {
    // The design raises Done; the host's poll finds it on the next round trip.
    regs->fpga_write(machine::StatusRegisters::Reg::Status,
                     machine::StatusRegisters::kStatusDone);
    cycle += regs->host_poll_until(machine::StatusRegisters::kStatusDone,
                                   cfg_.handshake_poll_interval, 1'000'000);
  }

  out.report.design = cat("gemv-on-node k=", k);
  out.report.cycles = cycle;
  out.report.staging_cycles = staging_cycles;
  out.report.compute_cycles = cycle - staging_cycles;
  out.report.flops = 2ull * rows * cols;
  out.report.stall_cycles = stalls + red.stats().stall_cycles;
  out.report.sram_words = static_cast<double>(rows * cols);
  out.report.dram_words =
      from_dram ? static_cast<double>(rows * cols + cols + rows) : 0.0;
  out.report.clock_mhz = node_.clock_mhz();

  // Phases come from the measured boundary, not a formula: staging is the
  // DMA + x-load prefix, compute the rest (stream + write-back + handshake).
  if (telemetry::Session* tel = cfg_.telemetry) {
    if (staging_cycles > 0) tel->phase("staging", staging_cycles);
    tel->phase("compute", cycle - staging_cycles);
    for (unsigned bank = 0; bank < k; ++bank) {
      node_.sram(bank).publish(tel->metrics(), cat("mem.sram.bank", bank));
    }
    node_.dram().link().publish(tel->metrics(), "mem.dram.link");
    tree.publish(tel->metrics(), "fpu.gemv.addtree");
    red.publish(tel->metrics(), "reduce.gemv");
    tel->counter("fpu.gemv.mul.ops").add(static_cast<u64>(rows) * cols);
    tel->counter("blas2.gemv_node.runs").add(1);
    tel->counter("blas2.gemv_node.cycles").add(cycle);
    tel->counter("blas2.gemv_node.staging_cycles").add(staging_cycles);
    tel->counter("blas2.gemv_node.flops").add(out.report.flops);
    tel->counter("blas2.gemv_node.stall_cycles").add(out.report.stall_cycles);
  }
  return out;
}

}  // namespace xd::blas2
