// GEMV executed against a full simulated compute node (Sec 6.2's actual
// experiment, end to end): matrix A staged from the node's DRAM into its
// four SRAM banks by the DMA engine over the RapidArray link, then streamed
// one word per bank per cycle into the tree datapath, with y written back to
// DRAM afterwards. Unlike blas2::MxvTreeEngine (which throttles on an
// abstract bandwidth channel), every word here moves through the machine
// model's ports — bank read-port discipline, link credit and DMA occupancy
// are all exercised, and the Table 4 latency split (6.4 ms staging /
// 1.6 ms compute at n = 1024) emerges from the simulation rather than a
// formula.
#pragma once

#include <vector>

#include "blas2/mxv_tree.hpp"  // MxvOutcome
#include "fp/fpu.hpp"
#include "machine/node.hpp"

namespace xd::blas2 {

struct NodeGemvConfig {
  unsigned adder_stages = fp::kAdderStages;
  unsigned multiplier_stages = fp::kMultiplierStages;
  /// k is fixed to the node's SRAM bank count (one word per bank per cycle),
  /// exactly the paper's XD1 configuration.
  /// Simulate the Sec 6.2 processor<->FPGA handshake (problem size write,
  /// init command, completion poll) through the status registers; adds the
  /// RT-link round trips to the reported cycles.
  bool with_handshake = false;
  unsigned handshake_round_trip_cycles = 40;
  unsigned handshake_poll_interval = 200;
  /// Optional telemetry sink. Publishes per-bank mem.sram.bankN.* metrics,
  /// mem.dram.link.* / fpu.gemv.* / reduce.gemv.* / blas2.gemv_node.*, and
  /// records measured "staging" / "compute" phase spans (the Table 4 split).
  telemetry::Session* telemetry = nullptr;
};

class NodeGemvEngine {
 public:
  /// The engine drives `node` cycle by cycle; the node must be freshly
  /// constructed or otherwise idle.
  NodeGemvEngine(machine::ComputeNode& node, const NodeGemvConfig& cfg = {});

  /// y = A x. When `from_dram` is set, A is first staged DRAM -> SRAM and
  /// y is written back to DRAM at the end (the Table 4 protocol); otherwise
  /// A starts in the SRAM banks.
  MxvOutcome run(const std::vector<double>& a, std::size_t rows,
                 std::size_t cols, const std::vector<double>& x, bool from_dram);

 private:
  machine::ComputeNode& node_;
  NodeGemvConfig cfg_;
};

}  // namespace xd::blas2
