// Level 2 BLAS, architecture 1 (Sec 4.2): row-major tree-based GEMV.
//
// Matrix A streams in row-major order, k elements per cycle. Vector x lives
// in per-multiplier local storage (lane p holds x[p], x[k+p], ...), so the
// only streaming traffic is A itself: k words/cycle. Each row is one
// reduction set of ceil(n/k) adder-tree outputs; the reduction circuit
// accumulates rows into y. Hardware-wise this is the design the paper
// implements on XD1 (k = 4, one word from each of the four SRAM banks per
// cycle, Table 4).
#pragma once

#include <vector>

#include "fp/fpu.hpp"
#include "host/report.hpp"
#include "reduce/reduction_circuit.hpp"

namespace xd::telemetry {
class Session;
}

namespace xd::blas2 {

struct MxvTreeConfig {
  unsigned k = 4;  ///< multipliers == words of A consumed per cycle
  unsigned adder_stages = fp::kAdderStages;
  unsigned multiplier_stages = fp::kMultiplierStages;
  /// Streaming bandwidth for A in words/cycle (XD1: 4 banks -> 4.0).
  double mem_words_per_cycle = 4.0;
  double clock_mhz = 164.0;  ///< Table 4 post-P&R clock on XD1
  /// Optional telemetry sink (mem.gemv.* / fpu.gemv.* / reduce.gemv.* /
  /// blas2.gemv.* metrics plus a "compute" phase span).
  telemetry::Session* telemetry = nullptr;
};

struct MxvOutcome {
  std::vector<double> y;
  host::PerfReport report;
};

class MxvTreeEngine {
 public:
  explicit MxvTreeEngine(const MxvTreeConfig& cfg);

  /// y = A x for row-major `a` of shape rows x cols; x.size() == cols.
  /// Cycle-accurate; x is preloaded into on-chip storage (not streamed).
  MxvOutcome run(const std::vector<double>& a, std::size_t rows, std::size_t cols,
                 const std::vector<double>& x);

  const MxvTreeConfig& config() const { return cfg_; }

  /// I/O lower bound (Sec 4.4): rows*cols words at the configured rate.
  u64 io_lower_bound_cycles(std::size_t rows, std::size_t cols) const;

 private:
  MxvTreeConfig cfg_;
};

}  // namespace xd::blas2
