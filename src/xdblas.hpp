// Umbrella header: everything a library user needs.
//
//   #include "xdblas.hpp"
//   xd::host::Context ctx;
//   auto c = ctx.gemm(a, b, n);
//
// Finer-grained headers remain available for users who want a single engine
// (e.g. reduce/reduction_circuit.hpp for just the reduction circuit).
#pragma once

#include "blas1/dot_engine.hpp"
#include "blas2/blocking.hpp"
#include "blas2/mxv_col.hpp"
#include "blas2/mxv_on_node.hpp"
#include "blas2/mxv_tree.hpp"
#include "blas2/spmxv.hpp"
#include "blas3/mm_array.hpp"
#include "blas3/mm_hier.hpp"
#include "blas3/mm_multi.hpp"
#include "blas3/mm_on_node.hpp"
#include "common/parallel.hpp"
#include "common/thread_pool.hpp"
#include "host/blas_compat.hpp"
#include "host/context.hpp"
#include "host/graph.hpp"
#include "host/op.hpp"
#include "host/plan.hpp"
#include "host/reference.hpp"
#include "host/runtime.hpp"
#include "host/tuner.hpp"
#include "machine/system.hpp"
#include "model/perf_model.hpp"
#include "model/projections.hpp"
#include "reduce/baselines.hpp"
#include "reduce/reduction_circuit.hpp"
#include "solver/cg.hpp"
#include "solver/jacobi.hpp"
