// xdblas public API.
//
// A Context binds the BLAS engines to a machine description (device, clocks,
// memory bandwidths — by default one Cray XD1 node as measured in the paper)
// and exposes the three operations the library implements:
//
//   xd::host::Context ctx;                       // one XD1 node
//   auto d = ctx.dot(u, v);                       // Level 1
//   auto y = ctx.gemv(a, n, n, x);                // Level 2 (tree design)
//   auto c = ctx.gemm(a, b, n);                   // Level 3 (PE array + SRAM)
//
// Every call returns the numeric result together with a PerfReport (cycles,
// seconds at the design's post-P&R clock, sustained MFLOPS, achieved
// bandwidths) — the same columns the paper's Tables 3/4 report.
//
// Source placement matters for the I/O-bound operations: Placement::Sram
// streams operands from the FPGA's SRAM banks; Placement::Dram prepends the
// DRAM->SRAM staging phase over the RapidArray link, reproducing the
// 8.0 ms / 1.6 ms split of Table 4.
#pragma once

#include <cstddef>
#include <vector>

#include "blas1/dot_engine.hpp"
#include "blas2/mxv_col.hpp"
#include "blas2/mxv_tree.hpp"
#include "blas2/spmxv.hpp"
#include "blas3/mm_hier.hpp"
#include "blas3/mm_multi.hpp"
#include "machine/area.hpp"
#include "machine/device.hpp"
#include "mem/bram.hpp"
#include "mem/hierarchy.hpp"

namespace xd::host {

enum class Placement {
  Sram,  ///< operands already in the FPGA-attached SRAM banks
  Dram,  ///< operands start in processor DRAM (staging is simulated)
};

enum class GemvArch {
  Tree,    ///< row-major, adder tree + reduction circuit (Sec 4.2 arch 1)
  Column,  ///< column-major, interleaved accumulation (Sec 4.2 arch 2)
};

/// Machine/design parameters. Defaults describe one Cray XD1 node exactly as
/// the paper configures it (Tables 3 and 4).
struct ContextConfig {
  machine::FpgaDevice device = machine::xc2vp50();

  // Level 1 (dot): k = 2 multipliers at 170 MHz, 5.5 GB/s streaming.
  unsigned dot_k = 2;
  double dot_clock_mhz = 170.0;
  double dot_mem_bytes_per_s = 5.5 * kGB;

  // Level 2 (GEMV): k = 4 at 164 MHz, one word per SRAM bank per cycle.
  unsigned gemv_k = 4;
  double gemv_clock_mhz = 164.0;
  double gemv_sram_bytes_per_s = 5.9 * kGB;
  double gemv_dram_bytes_per_s = 1.3 * kGB;  ///< measured staging bandwidth

  // Level 3 (GEMM): k = 8 PEs, m = 8, b = 512, 130 MHz.
  unsigned mm_k = 8;
  unsigned mm_m = 8;
  std::size_t mm_b = 512;
  unsigned mm_l = 1;  ///< FPGAs (hierarchical design)
  double mm_clock_mhz = 130.0;
  double mm_dram_bytes_per_s = 3.2 * kGB;
  double mm_link_bytes_per_s = 2.0 * kGB;

  unsigned adder_stages = fp::kAdderStages;
  unsigned multiplier_stages = fp::kMultiplierStages;
  /// GEMM PE accumulation-adder depth (see blas3::MmArrayConfig): must
  /// satisfy m^2/k >= depth; the paper's k = m = 8 design implies <= 8.
  unsigned mm_adder_stages = 8;

  /// Optional telemetry sink, forwarded to every engine the context builds.
  /// Engines publish component metrics (mem.* / fpu.* / reduce.* / blas*.*)
  /// and record phase spans; for Placement::Dram the context records the
  /// "staging" span ahead of the engine's "compute" so the two tile the
  /// reported total. Null (the default) disables all recording.
  telemetry::Session* telemetry = nullptr;
};

struct DotCall {
  double value = 0.0;
  PerfReport report;
};

class Context {
 public:
  Context() : Context(ContextConfig{}) {}
  explicit Context(const ContextConfig& cfg);

  /// Level 1 BLAS: u . v.
  DotCall dot(const std::vector<double>& u, const std::vector<double>& v,
              Placement src = Placement::Sram) const;

  /// Batched dot products (one reduction set each, back to back).
  blas1::DotOutcome dot_batch(const std::vector<std::vector<double>>& us,
                              const std::vector<std::vector<double>>& vs) const;

  /// Level 2 BLAS: y = A x (row-major A, rows x cols).
  blas2::MxvOutcome gemv(const std::vector<double>& a, std::size_t rows,
                         std::size_t cols, const std::vector<double>& x,
                         Placement src = Placement::Sram,
                         GemvArch arch = GemvArch::Tree) const;

  /// Level 3 BLAS: C = A B (row-major, n x n). If n is not a multiple of the
  /// configured SRAM panel edge, the largest compatible edge is chosen
  /// automatically (see choose_panel_edge); n must still be a multiple of m.
  blas3::MmHierOutcome gemm(const std::vector<double>& a,
                            const std::vector<double>& b, std::size_t n) const;

  /// Largest SRAM panel edge <= mm_b that tiles the given n (throws
  /// ConfigError if none exists — use the compat layer's padding then).
  std::size_t choose_panel_edge(std::size_t n) const;

  /// Cycle-accurate single-FPGA GEMM (the Sec 5.1 array without SRAM
  /// blocking); n must be a multiple of m.
  blas3::MmOutcome gemm_array(const std::vector<double>& a,
                              const std::vector<double>& b, std::size_t n) const;

  /// Cycle-accurate multi-FPGA GEMM pipeline (block-event simulation of the
  /// Sec 5.2 chain across mm_l FPGAs); n must be a multiple of b.
  blas3::MmMultiOutcome gemm_multi(const std::vector<double>& a,
                                   const std::vector<double>& b,
                                   std::size_t n) const;

  /// Sparse matrix-vector multiply (CRS) on the tree architecture — the
  /// paper's SpMXV extension ([32], Sec 7). x must fit on chip.
  blas2::MxvOutcome spmxv(const blas2::CrsMatrix& a,
                          const std::vector<double>& x) const;

  /// GEMV with automatic fallback to the blocked variant (Sec 4.2, last
  /// paragraph) when x does not fit the device's on-chip memory alongside
  /// the design's buffers.
  blas2::MxvOutcome gemv_auto(const std::vector<double>& a, std::size_t rows,
                              std::size_t cols,
                              const std::vector<double>& x) const;

  /// BRAM floorplan of the GEMV design for a cols-wide x; throws ConfigError
  /// if the design cannot be built on the configured device.
  mem::BramBudget gemv_bram_plan(std::size_t cols) const;
  /// BRAM floorplan of the GEMM array (2 m^2 block stores + B registers).
  mem::BramBudget gemm_bram_plan() const;
  /// Words of x the GEMV design can keep on-chip next to its buffers.
  std::size_t gemv_onchip_x_capacity() const;

  const ContextConfig& config() const { return cfg_; }
  const machine::AreaModel& area_model() const { return area_; }

  /// Post-P&R characteristics of the configured designs (Tables 3 / 4).
  machine::DesignArea dot_design_area() const;
  machine::DesignArea gemv_design_area() const;
  machine::DesignArea gemm_design_area() const;

 private:
  double words_per_cycle(double bytes_per_s, double clock_mhz) const {
    return bytes_per_s / (kWordBytes * clock_mhz * 1e6);
  }

  ContextConfig cfg_;
  machine::AreaModel area_;
};

}  // namespace xd::host
