// xdblas public API.
//
// A Context binds the BLAS engines to a machine description (device, clocks,
// memory bandwidths — by default one Cray XD1 node as measured in the paper)
// and exposes the three operations the library implements:
//
//   xd::host::Context ctx;                       // one XD1 node
//   auto d = ctx.dot(u, v);                       // Level 1
//   auto y = ctx.gemv(a, n, n, x);                // Level 2 (tree design)
//   auto c = ctx.gemm(a, b, n);                   // Level 3 (PE array + SRAM)
//
// Every call returns the numeric result together with a PerfReport (cycles,
// seconds at the design's post-P&R clock, sustained MFLOPS, achieved
// bandwidths) — the same columns the paper's Tables 3/4 report.
//
// Source placement matters for the I/O-bound operations: Placement::Sram
// streams operands from the FPGA's SRAM banks; Placement::Dram prepends the
// DRAM->SRAM staging phase over the RapidArray link, reproducing the
// 8.0 ms / 1.6 ms split of Table 4.
//
// Context is a thin synchronous facade over host::Runtime: each call builds
// (or fetches from the plan cache) an immutable Plan, runs the engine on the
// calling thread, and converts the unified Outcome back to the per-op type.
// For batched / concurrent execution use runtime() directly:
//
//   auto fut = ctx.runtime().submit(host::OpDesc::gemv(a, n, n, x));
//   auto out = fut.get();                         // Outcome or exception
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "host/config.hpp"
#include "host/op.hpp"
#include "host/runtime.hpp"
#include "machine/area.hpp"
#include "mem/bram.hpp"
#include "mem/hierarchy.hpp"

namespace xd::host {

/// Deprecated alias: Context::dot now returns the op-layer DotResult;
/// DotCall is kept so pre-runtime code compiles unchanged.
using DotCall = DotResult;

class Context {
 public:
  Context() : Context(ContextConfig{}) {}
  explicit Context(const ContextConfig& cfg);

  /// Level 1 BLAS: u . v.
  DotResult dot(const std::vector<double>& u, const std::vector<double>& v,
                Placement src = Placement::Sram) const;

  /// Batched dot products (one reduction set each, back to back).
  blas1::DotOutcome dot_batch(const std::vector<std::vector<double>>& us,
                              const std::vector<std::vector<double>>& vs) const;

  /// Level 2 BLAS: y = A x (row-major A, rows x cols).
  blas2::MxvOutcome gemv(const std::vector<double>& a, std::size_t rows,
                         std::size_t cols, const std::vector<double>& x,
                         Placement src = Placement::Sram,
                         GemvArch arch = GemvArch::Tree) const;

  /// Level 3 BLAS: C = A B (row-major, n x n). If n is not a multiple of the
  /// configured SRAM panel edge, the largest compatible edge is chosen
  /// automatically (see choose_panel_edge); n must still be a multiple of m.
  blas3::MmHierOutcome gemm(const std::vector<double>& a,
                            const std::vector<double>& b, std::size_t n) const;

  /// Largest SRAM panel edge <= mm_b that tiles the given n (throws
  /// ConfigError if none exists — use the compat layer's padding then).
  std::size_t choose_panel_edge(std::size_t n) const;

  /// Cycle-accurate single-FPGA GEMM (the Sec 5.1 array without SRAM
  /// blocking); n must be a multiple of m.
  blas3::MmOutcome gemm_array(const std::vector<double>& a,
                              const std::vector<double>& b, std::size_t n) const;

  /// Cycle-accurate multi-FPGA GEMM pipeline (block-event simulation of the
  /// Sec 5.2 chain across mm_l FPGAs); n must be a multiple of b.
  blas3::MmMultiOutcome gemm_multi(const std::vector<double>& a,
                                   const std::vector<double>& b,
                                   std::size_t n) const;

  /// Sparse matrix-vector multiply (CRS) on the tree architecture — the
  /// paper's SpMXV extension ([32], Sec 7). x must fit on chip.
  blas2::MxvOutcome spmxv(const blas2::CrsMatrix& a,
                          const std::vector<double>& x) const;

  /// GEMV with automatic fallback to the blocked variant (Sec 4.2, last
  /// paragraph) when x does not fit the device's on-chip memory alongside
  /// the design's buffers.
  blas2::MxvOutcome gemv_auto(const std::vector<double>& a, std::size_t rows,
                              std::size_t cols,
                              const std::vector<double>& x) const;

  /// BRAM floorplan of the GEMV design for a cols-wide x; throws ConfigError
  /// if the design cannot be built on the configured device.
  mem::BramBudget gemv_bram_plan(std::size_t cols) const;
  /// BRAM floorplan of the GEMM array (2 m^2 block stores + B registers).
  mem::BramBudget gemm_bram_plan() const;
  /// Words of x the GEMV design can keep on-chip next to its buffers.
  std::size_t gemv_onchip_x_capacity() const;

  /// The plan/execute runtime behind this context: submit(OpDesc) for
  /// concurrent jobs, run_batch() for fan-out/wait, plan_cache() for the
  /// memoized plans. Shared worker pool, per-context plan cache.
  Runtime& runtime() const { return *runtime_; }

  const ContextConfig& config() const { return cfg_; }
  const machine::AreaModel& area_model() const { return area_; }

  /// Post-P&R characteristics of the configured designs (Tables 3 / 4).
  machine::DesignArea dot_design_area() const;
  machine::DesignArea gemv_design_area() const;
  machine::DesignArea gemm_design_area() const;

 private:
  ContextConfig cfg_;
  machine::AreaModel area_;
  std::unique_ptr<Runtime> runtime_;
};

}  // namespace xd::host
