#include "host/shard.hpp"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "fp/backend.hpp"

namespace xd::host {

namespace {

/// Channel carrying the hop between global chain positions p and p+1.
/// Within a chassis the two directions have their own RocketIO channel;
/// a hop crossing a chassis boundary uses the single inter-chassis link
/// for both directions (they contend, exactly like the projection's
/// shared RapidArray switch).
mem::Channel& hop_channel(machine::System& system, unsigned p, bool forward) {
  const unsigned nodes = system.config().chassis.nodes;
  const unsigned c = p / nodes;
  if ((p + 1) % nodes == 0) return system.chassis_link(c);
  machine::Chassis& ch = system.chassis(c);
  return forward ? ch.forward_link(p % nodes) : ch.backward_link(p % nodes);
}

using BusyMap = std::unordered_map<const mem::Channel*, u64>;

/// Drive one store-and-forward leg: tick the channel, moving whole words
/// greedily, until the panel has crossed AND the analytic duration
/// ceil(words / rate) has elapsed — so a leg's cost never depends on the
/// fractional credit a previous leg left behind, and the channel-driven
/// timing equals model::shard_leg_cycles exactly while the channel's word
/// and cycle counters record the real traffic. Legs on one channel are
/// serialized through `busy` (shards are laid out in ascending index
/// order, which makes the whole timeline deterministic).
u64 drive_leg(mem::Channel& ch, std::size_t words, u64 ready, BusyMap& busy) {
  const u64 start = std::max(ready, busy[&ch]);
  const u64 min_ticks =
      model::shard_leg_cycles(static_cast<double>(words), ch.rate());
  std::size_t moved = 0;
  u64 ticks = 0;
  while (moved < words || ticks < min_ticks) {
    ch.tick();
    ++ticks;
    while (moved < words && ch.can_transfer(1.0)) {
      ch.transfer(1.0);
      ++moved;
    }
  }
  const u64 end = start + ticks;
  busy[&ch] = end;
  return end;
}

/// The serialized scatter/compute/gather timeline over analytic leg costs —
/// the closed-form twin of the channel-driven loop in run(). Used for
/// ranking candidate l values (and for GEMM it is exactly
/// model::shard_gemm_model_cycles, which tests pin against the sim).
template <class ScatterWords, class GatherWords, class EngineCycles>
u64 analytic_timeline(unsigned l, unsigned nodes, double fwd_wpc,
                      double bwd_wpc, double xlink_wpc,
                      ScatterWords scatter_words, GatherWords gather_words,
                      EngineCycles engine_cycles) {
  std::vector<u64> busy(3 * static_cast<std::size_t>(l > 1 ? l - 1 : 1), 0);
  auto leg = [&](unsigned p, bool forward, double words, u64 ready) {
    const bool cross = (p + 1) % nodes == 0;
    const std::size_t key =
        3 * static_cast<std::size_t>(p) + (cross ? 2 : (forward ? 0 : 1));
    const double wpc = cross ? xlink_wpc : (forward ? fwd_wpc : bwd_wpc);
    const u64 end = std::max(busy[key], ready) +
                    model::shard_leg_cycles(words, wpc);
    busy[key] = end;
    return end;
  };
  std::vector<u64> done(l, 0);
  for (unsigned i = 0; i < l; ++i) {
    u64 t = 0;
    for (unsigned p = 0; p < i; ++p)
      t = leg(p, /*forward=*/true, scatter_words(i), t);
    done[i] = t + engine_cycles(i);
  }
  u64 total = done[0];
  for (unsigned i = 1; i < l; ++i) {
    u64 t = done[i];
    for (unsigned p = i; p-- > 0;)
      t = leg(p, /*forward=*/false, gather_words(i), t);
    total = std::max(total, t);
  }
  return total;
}

}  // namespace

struct ShardScheduler::EngineParams {
  double clock_mhz = 0.0;
  unsigned k = 1;
  // GEMM (hierarchical engine) only:
  unsigned engine_l = 1;
  std::size_t b = 512;
  double engine_wpc = 0.0;
};

ShardScheduler::ShardScheduler(Runtime& rt, machine::SystemConfig sys)
    : rt_(rt), sys_(std::move(sys)) {
  require(sys_.chassis_count >= 1, "shard: needs at least one chassis");
  require(sys_.chassis.nodes >= 1, "shard: needs at least one node");
}

ShardScheduler::EngineParams ShardScheduler::resolve_engine(
    const OpDesc& desc, std::size_t shard_rows) {
  // Resolve through the plan layer — the same cache, tuner policy and
  // engine derivation every other execution path uses, so the shard model
  // can never drift from what the runtime will actually run.
  PlanKey key;
  key.kind = desc.kind;
  key.placement = desc.placement;
  key.arch = desc.arch;
  key.backend = fp::active_backend().kind;
  key.tune = rt_.config().tune;
  if (desc.kind == OpKind::Gemm) {
    key.rows = shard_rows;  // row-panel form, even at l = 1
    key.n = desc.n;
  } else {
    key.rows = shard_rows;
    key.cols = desc.cols;
  }
  const std::shared_ptr<const Plan> plan =
      rt_.plan_cache().get_or_build(rt_.config(), key);

  EngineParams ep;
  if (const auto* hc = std::get_if<blas3::MmHierConfig>(&plan->engine)) {
    ep.clock_mhz = hc->clock_mhz;
    ep.k = hc->k;
    ep.engine_l = hc->l;
    ep.b = hc->b;
    ep.engine_wpc =
        std::min(hc->dram_words_per_cycle, hc->link_words_per_cycle);
  } else if (const auto* tc = std::get_if<blas2::MxvTreeConfig>(&plan->engine)) {
    ep.clock_mhz = tc->clock_mhz;
    ep.k = tc->k;
  } else if (const auto* cc = std::get_if<blas2::MxvColConfig>(&plan->engine)) {
    ep.clock_mhz = cc->clock_mhz;
    ep.k = cc->k;
  } else {
    require(false, "shard: plan resolved to an unshardable engine");
  }
  return ep;
}

u64 ShardScheduler::modeled_total(const OpDesc& desc, unsigned l,
                                  const EngineParams& ep) {
  const double clock_hz = ep.clock_mhz * 1e6;
  const double fwd =
      mem::Channel::words_per_cycle_for(sys_.chassis.link_bytes_per_s, clock_hz);
  const double xlink = mem::Channel::words_per_cycle_for(
      sys_.interchassis_bytes_per_s, clock_hz);

  if (desc.kind == OpKind::Gemm) {
    model::ShardGemmModel m;
    m.l = l;
    m.nodes_per_chassis = sys_.chassis.nodes;
    m.fwd_wpc = fwd;
    m.bwd_wpc = fwd;
    m.xlink_wpc = xlink;
    m.k = ep.k;
    m.engine_l = ep.engine_l;
    m.b = ep.b;
    m.engine_wpc = ep.engine_wpc;
    return model::shard_gemm_model_cycles(desc.n, m);
  }
  const double dc = static_cast<double>(desc.cols);
  return analytic_timeline(
      l, sys_.chassis.nodes, fwd, fwd, xlink,
      [&](unsigned i) {
        return static_cast<double>(model::shard_rows(desc.rows, l, i)) * dc +
               dc;
      },
      [&](unsigned i) {
        return static_cast<double>(model::shard_rows(desc.rows, l, i));
      },
      [&](unsigned i) {
        return model::gemv_model_cycles(model::shard_rows(desc.rows, l, i),
                                        desc.cols, ep.k);
      });
}

ShardPlan ShardScheduler::plan(const OpDesc& desc, unsigned forced_l) {
  desc.validate();
  require(desc.kind == OpKind::Gemm || desc.kind == OpKind::Gemv,
          "shard: only GEMM and GEMV can be sharded");
  require(desc.placement == Placement::Sram,
          "shard: sharded ops take Placement::Sram — the scatter legs are "
          "the staging");
  if (desc.kind == OpKind::Gemm) {
    require(desc.rows == 0, "shard: pass the square descriptor; the "
                            "scheduler derives the row panels");
  } else {
    require(desc.arch == GemvArch::Tree,
            "shard: sharded GEMV needs the tree architecture (the column "
            "design's rows/k hazard bound breaks under row splitting)");
  }

  const std::size_t rows = desc.kind == OpKind::Gemm ? desc.n : desc.rows;
  const unsigned total = sys_.chassis_count * sys_.chassis.nodes;
  const unsigned max_l =
      static_cast<unsigned>(std::min<std::size_t>(total, rows));
  require(max_l >= 1, "shard: nothing to split");
  require(forced_l <= max_l,
          cat("shard: l = ", forced_l, " exceeds ", max_l,
              " (min of machine FPGAs and rows)"));

  ShardPlan sp;
  sp.kind = desc.kind;
  sp.rows = rows;
  sp.n = desc.kind == OpKind::Gemm ? desc.n : desc.cols;

  // Joint choice of l and engine design: every candidate l re-resolves the
  // shard-0 panel through the plan layer (whose tuner picks the engine for
  // that panel shape) and is scored with the full scatter/compute/gather
  // timeline. Ties go to the smaller l — fewer FPGAs, same cycles.
  unsigned best_l = 1;
  u64 best_cycles = 0;
  EngineParams best_ep;
  for (unsigned l = 1; l <= max_l; ++l) {
    if (forced_l != 0 && l != forced_l) continue;
    const EngineParams ep = resolve_engine(desc, model::shard_rows(rows, l, 0));
    const u64 cycles = modeled_total(desc, l, ep);
    sp.candidates.push_back(ShardCandidate{l, cycles});
    if (sp.candidates.size() == 1 || cycles < best_cycles) {
      best_l = l;
      best_cycles = cycles;
      best_ep = ep;
    }
  }
  sp.l = best_l;
  sp.model_cycles = best_cycles;
  sp.clock_mhz = best_ep.clock_mhz;

  for (unsigned i = 0; i < sp.l; ++i) {
    ShardPiece piece;
    piece.index = i;
    piece.chassis = i / sys_.chassis.nodes;
    piece.node = i % sys_.chassis.nodes;
    piece.row0 = model::shard_row0(rows, sp.l, i);
    piece.rows = model::shard_rows(rows, sp.l, i);
    const EngineParams ep = resolve_engine(desc, piece.rows);
    piece.engine_cycles =
        desc.kind == OpKind::Gemm
            ? model::mm_hier_panel_cycles(piece.rows, desc.n, ep.k,
                                          ep.engine_l, ep.b, ep.engine_wpc)
            : model::gemv_model_cycles(piece.rows, desc.cols, ep.k);
    sp.pieces.push_back(piece);
  }
  return sp;
}

ShardOutcome ShardScheduler::run(const OpDesc& desc, unsigned forced_l) {
  ShardOutcome out;
  out.plan = plan(desc, forced_l);
  const unsigned l = out.plan.l;
  const std::size_t inner = desc.kind == OpKind::Gemm ? desc.n : desc.cols;

  // The machine, rebuilt at the engine clock so every link's words/cycle
  // and every engine cycle share one clock domain.
  machine::SystemConfig mcfg = sys_;
  mcfg.chassis.node.clock_mhz = out.plan.clock_mhz;
  machine::System system(mcfg);

  // Slice the operand rows each shard owns (contiguous in the row-major
  // operand). The slices must outlive the futures; they live here.
  std::vector<std::vector<double>> panels(l);
  std::vector<OpDesc> subs(l);
  for (unsigned i = 0; i < l; ++i) {
    const ShardPiece& p = out.plan.pieces[i];
    const double* base = desc.a->data() + p.row0 * inner;
    panels[i].assign(base, base + p.rows * inner);
    subs[i] = desc.kind == OpKind::Gemm
                  ? OpDesc::gemm_panel(panels[i], p.rows, *desc.b, desc.n)
                  : OpDesc::gemv(panels[i], p.rows, desc.cols, *desc.x,
                                 Placement::Sram, GemvArch::Tree);
  }

  // Scatter: shard i's operand panel (its A rows plus the shared operand —
  // B for GEMM, x for GEMV) walks hops 0..i-1, store-and-forward, shards
  // in ascending order.
  BusyMap busy;
  std::vector<u64> ready(l, 0);
  for (unsigned i = 1; i < l; ++i) {
    const std::size_t words =
        out.plan.pieces[i].rows * inner +
        (desc.kind == OpKind::Gemm ? desc.n * desc.n : desc.cols);
    u64 t = 0;
    for (unsigned p = 0; p < i; ++p)
      t = drive_leg(hop_channel(system, p, /*forward=*/true), words, t, busy);
    ready[i] = t;
  }

  // Execute every shard concurrently on the runtime's pool. Engines are
  // deterministic, so concurrent execution is bit-identical to sequential;
  // futures are consumed in ascending shard order.
  std::vector<std::future<Outcome>> futures;
  futures.reserve(l);
  for (unsigned i = 0; i < l; ++i) futures.push_back(rt_.submit(subs[i]));
  out.shards.reserve(l);
  for (unsigned i = 0; i < l; ++i) {
    out.shards.push_back(futures[i].get());
    out.plan.pieces[i].engine_cycles = out.shards[i].report.cycles;
    out.plan.pieces[i].scatter_ready = ready[i];
  }

  // Gather: each result panel walks back to node 0 over the backward links
  // (sharing the inter-chassis channels with the scatter), again in
  // ascending shard order.
  u64 makespan = ready[0] + out.plan.pieces[0].engine_cycles;
  out.plan.pieces[0].done = makespan;
  for (unsigned i = 1; i < l; ++i) {
    const std::size_t words =
        out.plan.pieces[i].rows * (desc.kind == OpKind::Gemm ? desc.n : 1);
    u64 t = ready[i] + out.plan.pieces[i].engine_cycles;
    for (unsigned p = i; p-- > 0;)
      t = drive_leg(hop_channel(system, p, /*forward=*/false), words, t, busy);
    out.plan.pieces[i].done = t;
    makespan = std::max(makespan, t);
  }

  // Reduce in fixed deterministic order: ascending shard index, which is
  // ascending row blocks — a pure concatenation, so the reduced values are
  // bit-identical to single-device execution by construction.
  out.values.reserve(out.plan.rows *
                     (desc.kind == OpKind::Gemm ? desc.n : 1));
  u64 flops = 0;
  u64 max_engine = 0;
  for (const Outcome& s : out.shards) {
    out.values.insert(out.values.end(), s.values.begin(), s.values.end());
    flops += s.report.flops;
    max_engine = std::max(max_engine, s.report.cycles);
  }

  out.report.design =
      cat("shard l=", l, " over ", system.chassis_count(), " chassis [",
          out.shards.front().report.design, "]");
  out.report.cycles = makespan;
  out.report.compute_cycles = max_engine;
  // The communication overhang beyond the slowest engine: scatter the
  // engines could not hide plus the serialized gather tail.
  out.report.staging_cycles = makespan - max_engine;
  out.report.flops = flops;
  out.report.clock_mhz = out.plan.clock_mhz;

  for (unsigned c = 0; c < system.chassis_count(); ++c) {
    machine::Chassis& ch = system.chassis(c);
    for (unsigned i = 0; i + 1 < ch.node_count(); ++i) {
      out.link_words += ch.forward_link(i).words_transferred();
      out.link_words += ch.backward_link(i).words_transferred();
    }
  }
  for (unsigned c = 0; c + 1 < system.chassis_count(); ++c)
    out.interchassis_words += system.chassis_link(c).words_transferred();
  return out;
}

}  // namespace xd::host
