#include "host/plan.hpp"

#include <cmath>

#include "host/tuner.hpp"
#include "telemetry/session.hpp"

namespace xd::host {

namespace {

/// Cycles to stage `words` across a link of `words_per_cycle` (DRAM<->SRAM
/// DMA; the FPGA design is idle during staging, per the Table 4 methodology).
u64 staging_cycles_for(double words, double wpc) {
  return static_cast<u64>(std::ceil(words / wpc));
}

/// Fixed BRAM overheads of the tree GEMV design besides the x store: the
/// two alpha^2 reduction buffers and the small staging FIFOs.
u64 gemv_buffer_words(unsigned adder_stages) {
  return 2ull * adder_stages * adder_stages + 128;
}

void hash_combine(std::size_t& seed, std::size_t v) {
  seed ^= v + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2);
}

blas2::MxvTreeConfig gemv_tree_config(const ContextConfig& cfg) {
  blas2::MxvTreeConfig tc;
  tc.k = cfg.gemv_k;
  tc.adder_stages = cfg.adder_stages;
  tc.multiplier_stages = cfg.multiplier_stages;
  tc.mem_words_per_cycle = static_cast<double>(cfg.gemv_k);  // 1 word/bank
  tc.clock_mhz = cfg.gemv_clock_mhz;
  return tc;
}

}  // namespace

std::size_t PlanKeyHash::operator()(const PlanKey& k) const {
  std::size_t seed = static_cast<std::size_t>(k.kind);
  hash_combine(seed, k.rows);
  hash_combine(seed, k.cols);
  hash_combine(seed, k.n);
  hash_combine(seed, k.batch);
  hash_combine(seed, static_cast<std::size_t>(k.placement));
  hash_combine(seed, static_cast<std::size_t>(k.arch));
  hash_combine(seed, static_cast<std::size_t>(k.backend));
  hash_combine(seed, static_cast<std::size_t>(k.tune));
  return seed;
}

std::size_t choose_panel_edge(const ContextConfig& cfg, std::size_t n) {
  // Largest SRAM panel edge <= the configured one that tiles both the m x m
  // on-chip blocks and the problem (and gives each FPGA a block column).
  const std::size_t min_b = static_cast<std::size_t>(cfg.mm_m) * cfg.mm_l;
  for (std::size_t b = std::min(cfg.mm_b, n); b >= min_b; b -= cfg.mm_m) {
    if (b % cfg.mm_m == 0 && n % b == 0) return b;
  }
  throw ConfigError(cat("no SRAM panel edge tiles n=", n, " with m=", cfg.mm_m,
                        ", l=", cfg.mm_l,
                        " (pad the matrices or use the compat layer)"));
}

mem::BramBudget gemv_bram_plan(const ContextConfig& cfg, std::size_t cols) {
  mem::BramBudget plan(cfg.device);
  plan.allocate("reduction buffers (2 alpha^2)",
                2ull * cfg.adder_stages * cfg.adder_stages);
  plan.allocate("staging FIFOs", 128);
  plan.allocate("x storage", cols);
  return plan;
}

mem::BramBudget gemm_bram_plan(const ContextConfig& cfg) {
  mem::BramBudget plan(cfg.device);
  plan.allocate("C' block store (m^2)", static_cast<u64>(cfg.mm_m) * cfg.mm_m);
  plan.allocate("C block store (m^2)", static_cast<u64>(cfg.mm_m) * cfg.mm_m);
  plan.allocate("B registers (2m)", 2ull * cfg.mm_m);
  return plan;
}

std::size_t gemv_onchip_x_capacity(const ContextConfig& cfg) {
  const u64 cap = cfg.device.bram_words();
  const u64 fixed = gemv_buffer_words(cfg.adder_stages);
  return cap > fixed ? static_cast<std::size_t>(cap - fixed) : 0;
}

Plan build_plan(const ContextConfig& cfg, const PlanKey& key) {
  if (key.tune != TunePolicy::Fixed) return build_tuned_plan(cfg, key);

  Plan plan;
  plan.key = key;

  switch (key.kind) {
    case OpKind::Dot:
    case OpKind::DotBatch: {
      blas1::DotConfig dc;
      dc.k = cfg.dot_k;
      dc.adder_stages = cfg.adder_stages;
      dc.multiplier_stages = cfg.multiplier_stages;
      dc.mem_words_per_cycle =
          words_per_cycle(cfg.dot_mem_bytes_per_s, cfg.dot_clock_mhz);
      dc.clock_mhz = cfg.dot_clock_mhz;
      plan.engine = dc;
      if (key.kind == OpKind::Dot && key.placement == Placement::Dram) {
        // The staging link is the same RapidArray DMA path the GEMV design
        // measures; cycles are counted at the dot design's clock.
        const double wpc =
            words_per_cycle(cfg.gemv_dram_bytes_per_s, cfg.dot_clock_mhz);
        plan.dram_words = static_cast<double>(2 * key.cols);
        plan.staging_cycles = staging_cycles_for(plan.dram_words, wpc);
      }
      break;
    }

    case OpKind::Gemv: {
      if (key.arch == GemvArch::Tree) {
        plan.engine = gemv_tree_config(cfg);
      } else {
        blas2::MxvColConfig cc;
        cc.k = cfg.gemv_k;
        cc.adder_stages = cfg.adder_stages;
        cc.multiplier_stages = cfg.multiplier_stages;
        cc.mem_words_per_cycle = static_cast<double>(cfg.gemv_k) + 1.0;
        cc.clock_mhz = cfg.gemv_clock_mhz;
        plan.engine = cc;
      }
      if (key.placement == Placement::Dram) {
        // Table 4: 6.4 of the 8.0 ms GEMV latency is this data movement.
        const double wpc =
            words_per_cycle(cfg.gemv_dram_bytes_per_s, cfg.gemv_clock_mhz);
        plan.dram_words = static_cast<double>(key.rows * key.cols + key.rows);
        plan.staging_cycles = staging_cycles_for(plan.dram_words, wpc);
      }
      break;
    }

    case OpKind::GemvAuto: {
      plan.onchip_capacity = gemv_onchip_x_capacity(cfg);
      require(plan.onchip_capacity > 0,
              "device has no on-chip memory left for x");
      plan.blocked_gemv = key.cols > plan.onchip_capacity;
      plan.engine = gemv_tree_config(cfg);
      break;
    }

    case OpKind::Spmxv: {
      plan.onchip_capacity = gemv_onchip_x_capacity(cfg);
      require(key.cols <= plan.onchip_capacity,
              "SpMXV: x does not fit the device's on-chip memory");
      blas2::SpmxvConfig sc;
      sc.k = cfg.gemv_k;
      sc.adder_stages = cfg.adder_stages;
      sc.multiplier_stages = cfg.multiplier_stages;
      // Value + index pairs: two SRAM banks feed one CRS element per cycle
      // pair.
      sc.mem_elements_per_cycle = static_cast<double>(cfg.gemv_k) / 2.0;
      sc.clock_mhz = cfg.gemv_clock_mhz;
      plan.engine = sc;
      break;
    }

    case OpKind::Gemm: {
      blas3::MmHierConfig hc;
      hc.l = cfg.mm_l;
      hc.k = cfg.mm_k;
      hc.m = cfg.mm_m;
      hc.b = key.n % cfg.mm_b == 0 ? cfg.mm_b : choose_panel_edge(cfg, key.n);
      hc.adder_stages = cfg.mm_adder_stages;
      hc.multiplier_stages = cfg.multiplier_stages;
      hc.clock_mhz = cfg.mm_clock_mhz;
      hc.dram_words_per_cycle =
          words_per_cycle(cfg.mm_dram_bytes_per_s, cfg.mm_clock_mhz);
      hc.link_words_per_cycle =
          words_per_cycle(cfg.mm_link_bytes_per_s, cfg.mm_clock_mhz);
      plan.panel_edge = hc.b;
      plan.engine = hc;
      break;
    }

    case OpKind::GemmArray: {
      blas3::MmArrayConfig mc;
      mc.k = cfg.mm_k;
      mc.m = cfg.mm_m;
      mc.adder_stages = cfg.mm_adder_stages;
      mc.multiplier_stages = cfg.multiplier_stages;
      mc.mem_words_per_cycle = 4.0;  // four SRAM banks feed the array
      mc.clock_mhz = cfg.mm_clock_mhz;
      plan.engine = mc;
      break;
    }

    case OpKind::GemmMulti: {
      blas3::MmMultiConfig mc;
      mc.l = cfg.mm_l;
      mc.k = cfg.mm_k;
      mc.m = cfg.mm_m;
      mc.b = cfg.mm_b;
      mc.clock_mhz = cfg.mm_clock_mhz;
      mc.dram_words_per_cycle =
          words_per_cycle(cfg.mm_dram_bytes_per_s, cfg.mm_clock_mhz);
      mc.link_words_per_cycle =
          words_per_cycle(cfg.mm_link_bytes_per_s, cfg.mm_clock_mhz);
      plan.panel_edge = mc.b;
      plan.engine = mc;
      break;
    }
  }
  return plan;
}

std::shared_ptr<const Plan> PlanCache::get_or_build(const ContextConfig& cfg,
                                                    const PlanKey& key) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = map_.find(key);
    if (it != map_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      lru_.splice(lru_.begin(), lru_, it->second.pos);  // refresh recency
      return it->second.plan;
    }
  }

  // Build outside the lock: plan construction can throw (ConfigError) and,
  // for GEMM, walks the panel-edge search — no reason to serialize that.
  auto plan = std::make_shared<const Plan>(build_plan(cfg, key));

  std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(key);
  if (it != map_.end()) {
    // Another thread built the same plan first; adopt theirs (plans for one
    // key are identical by construction).
    hits_.fetch_add(1, std::memory_order_relaxed);
    lru_.splice(lru_.begin(), lru_, it->second.pos);
    return it->second.plan;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (plan->tune.tuned) {
    tuned_plans_.fetch_add(1, std::memory_order_relaxed);
    tune_candidates_.fetch_add(plan->tune.candidates, std::memory_order_relaxed);
    tune_pruned_.fetch_add(plan->tune.pruned, std::memory_order_relaxed);
    tune_probes_.fetch_add(plan->tune.probed, std::memory_order_relaxed);
    tune_probe_cycles_.fetch_add(plan->tune.probe_cycles,
                                 std::memory_order_relaxed);
  }
  lru_.push_front(key);
  map_[key] = Entry{plan, lru_.begin()};
  while (map_.size() > capacity_) {
    map_.erase(lru_.back());
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  return plan;
}

std::size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

void PlanCache::publish(telemetry::Session& tel) const {
  tel.gauge("host.plan.hits").set(static_cast<double>(hits()));
  tel.gauge("host.plan.misses").set(static_cast<double>(misses()));
  tel.gauge("host.plan.evictions").set(static_cast<double>(evictions()));
  tel.gauge("host.plan.size").set(static_cast<double>(size()));
  tel.gauge("host.plan.capacity").set(static_cast<double>(capacity()));
  // Tuner activity (zero under TunePolicy::Fixed): how many plans went
  // through design selection, how much of the candidate space the area model
  // pruned, and what the probe runs cost in simulated cycles.
  const auto load = [](const std::atomic<u64>& a) {
    return static_cast<double>(a.load(std::memory_order_relaxed));
  };
  tel.gauge("host.tuner.plans").set(load(tuned_plans_));
  tel.gauge("host.tuner.candidates").set(load(tune_candidates_));
  tel.gauge("host.tuner.pruned_area").set(load(tune_pruned_));
  tel.gauge("host.tuner.probes").set(load(tune_probes_));
  tel.gauge("host.tuner.probe_cycles").set(load(tune_probe_cycles_));
}

}  // namespace xd::host
