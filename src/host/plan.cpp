#include "host/plan.hpp"

#include <array>
#include <cmath>

#include "host/tuner.hpp"
#include "telemetry/session.hpp"

namespace xd::host {

namespace {

/// Cycles to stage `words` across a link of `words_per_cycle` (DRAM<->SRAM
/// DMA; the FPGA design is idle during staging, per the Table 4 methodology).
u64 staging_cycles_for(double words, double wpc) {
  return static_cast<u64>(std::ceil(words / wpc));
}

/// Fixed BRAM overheads of the tree GEMV design besides the x store: the
/// two alpha^2 reduction buffers and the small staging FIFOs.
u64 gemv_buffer_words(unsigned adder_stages) {
  return 2ull * adder_stages * adder_stages + 128;
}

void hash_combine(std::size_t& seed, std::size_t v) {
  seed ^= v + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2);
}

blas2::MxvTreeConfig gemv_tree_config(const ContextConfig& cfg) {
  blas2::MxvTreeConfig tc;
  tc.k = cfg.gemv_k;
  tc.adder_stages = cfg.adder_stages;
  tc.multiplier_stages = cfg.multiplier_stages;
  tc.mem_words_per_cycle = static_cast<double>(cfg.gemv_k);  // 1 word/bank
  tc.clock_mhz = cfg.gemv_clock_mhz;
  return tc;
}

}  // namespace

std::size_t PlanKeyHash::operator()(const PlanKey& k) const {
  std::size_t seed = static_cast<std::size_t>(k.kind);
  hash_combine(seed, k.rows);
  hash_combine(seed, k.cols);
  hash_combine(seed, k.n);
  hash_combine(seed, k.batch);
  hash_combine(seed, static_cast<std::size_t>(k.placement));
  hash_combine(seed, static_cast<std::size_t>(k.arch));
  hash_combine(seed, static_cast<std::size_t>(k.backend));
  hash_combine(seed, static_cast<std::size_t>(k.tune));
  return seed;
}

std::size_t choose_panel_edge(const ContextConfig& cfg, std::size_t n) {
  // Largest SRAM panel edge <= the configured one that tiles both the m x m
  // on-chip blocks and the problem (and gives each FPGA a block column).
  const std::size_t min_b = static_cast<std::size_t>(cfg.mm_m) * cfg.mm_l;
  for (std::size_t b = std::min(cfg.mm_b, n); b >= min_b; b -= cfg.mm_m) {
    if (b % cfg.mm_m == 0 && n % b == 0) return b;
  }
  throw ConfigError(cat("no SRAM panel edge tiles n=", n, " with m=", cfg.mm_m,
                        ", l=", cfg.mm_l,
                        " (pad the matrices or use the compat layer)"));
}

mem::BramBudget gemv_bram_plan(const ContextConfig& cfg, std::size_t cols) {
  mem::BramBudget plan(cfg.device);
  plan.allocate("reduction buffers (2 alpha^2)",
                2ull * cfg.adder_stages * cfg.adder_stages);
  plan.allocate("staging FIFOs", 128);
  plan.allocate("x storage", cols);
  return plan;
}

mem::BramBudget gemm_bram_plan(const ContextConfig& cfg) {
  mem::BramBudget plan(cfg.device);
  plan.allocate("C' block store (m^2)", static_cast<u64>(cfg.mm_m) * cfg.mm_m);
  plan.allocate("C block store (m^2)", static_cast<u64>(cfg.mm_m) * cfg.mm_m);
  plan.allocate("B registers (2m)", 2ull * cfg.mm_m);
  return plan;
}

std::size_t gemv_onchip_x_capacity(const ContextConfig& cfg) {
  const u64 cap = cfg.device.bram_words();
  const u64 fixed = gemv_buffer_words(cfg.adder_stages);
  return cap > fixed ? static_cast<std::size_t>(cap - fixed) : 0;
}

Plan build_plan(const ContextConfig& cfg, const PlanKey& key) {
  if (key.tune != TunePolicy::Fixed) return build_tuned_plan(cfg, key);

  Plan plan;
  plan.key = key;

  switch (key.kind) {
    case OpKind::Dot:
    case OpKind::DotBatch: {
      blas1::DotConfig dc;
      dc.k = cfg.dot_k;
      dc.adder_stages = cfg.adder_stages;
      dc.multiplier_stages = cfg.multiplier_stages;
      dc.mem_words_per_cycle =
          words_per_cycle(cfg.dot_mem_bytes_per_s, cfg.dot_clock_mhz);
      dc.clock_mhz = cfg.dot_clock_mhz;
      plan.engine = dc;
      if (key.kind == OpKind::Dot && key.placement == Placement::Dram) {
        // The staging link is the same RapidArray DMA path the GEMV design
        // measures; cycles are counted at the dot design's clock.
        const double wpc =
            words_per_cycle(cfg.gemv_dram_bytes_per_s, cfg.dot_clock_mhz);
        plan.dram_words = static_cast<double>(2 * key.cols);
        plan.staging_cycles = staging_cycles_for(plan.dram_words, wpc);
      }
      break;
    }

    case OpKind::Gemv: {
      if (key.arch == GemvArch::Tree) {
        plan.engine = gemv_tree_config(cfg);
      } else {
        blas2::MxvColConfig cc;
        cc.k = cfg.gemv_k;
        cc.adder_stages = cfg.adder_stages;
        cc.multiplier_stages = cfg.multiplier_stages;
        cc.mem_words_per_cycle = static_cast<double>(cfg.gemv_k) + 1.0;
        cc.clock_mhz = cfg.gemv_clock_mhz;
        plan.engine = cc;
      }
      if (key.placement == Placement::Dram) {
        // Table 4: 6.4 of the 8.0 ms GEMV latency is this data movement.
        const double wpc =
            words_per_cycle(cfg.gemv_dram_bytes_per_s, cfg.gemv_clock_mhz);
        plan.dram_words = static_cast<double>(key.rows * key.cols + key.rows);
        plan.staging_cycles = staging_cycles_for(plan.dram_words, wpc);
      }
      break;
    }

    case OpKind::GemvAuto: {
      plan.onchip_capacity = gemv_onchip_x_capacity(cfg);
      require(plan.onchip_capacity > 0,
              "device has no on-chip memory left for x");
      plan.blocked_gemv = key.cols > plan.onchip_capacity;
      plan.engine = gemv_tree_config(cfg);
      break;
    }

    case OpKind::Spmxv: {
      plan.onchip_capacity = gemv_onchip_x_capacity(cfg);
      require(key.cols <= plan.onchip_capacity,
              "SpMXV: x does not fit the device's on-chip memory");
      blas2::SpmxvConfig sc;
      sc.k = cfg.gemv_k;
      sc.adder_stages = cfg.adder_stages;
      sc.multiplier_stages = cfg.multiplier_stages;
      // Value + index pairs: two SRAM banks feed one CRS element per cycle
      // pair.
      sc.mem_elements_per_cycle = static_cast<double>(cfg.gemv_k) / 2.0;
      sc.clock_mhz = cfg.gemv_clock_mhz;
      plan.engine = sc;
      break;
    }

    case OpKind::Gemm: {
      blas3::MmHierConfig hc;
      hc.l = cfg.mm_l;
      hc.k = cfg.mm_k;
      hc.m = cfg.mm_m;
      hc.b = key.n % cfg.mm_b == 0 ? cfg.mm_b : choose_panel_edge(cfg, key.n);
      hc.adder_stages = cfg.mm_adder_stages;
      hc.multiplier_stages = cfg.multiplier_stages;
      hc.clock_mhz = cfg.mm_clock_mhz;
      hc.dram_words_per_cycle =
          words_per_cycle(cfg.mm_dram_bytes_per_s, cfg.mm_clock_mhz);
      hc.link_words_per_cycle =
          words_per_cycle(cfg.mm_link_bytes_per_s, cfg.mm_clock_mhz);
      plan.panel_edge = hc.b;
      plan.engine = hc;
      break;
    }

    case OpKind::GemmArray: {
      blas3::MmArrayConfig mc;
      mc.k = cfg.mm_k;
      mc.m = cfg.mm_m;
      mc.adder_stages = cfg.mm_adder_stages;
      mc.multiplier_stages = cfg.multiplier_stages;
      mc.mem_words_per_cycle = 4.0;  // four SRAM banks feed the array
      mc.clock_mhz = cfg.mm_clock_mhz;
      plan.engine = mc;
      break;
    }

    case OpKind::GemmMulti: {
      blas3::MmMultiConfig mc;
      mc.l = cfg.mm_l;
      mc.k = cfg.mm_k;
      mc.m = cfg.mm_m;
      mc.b = cfg.mm_b;
      mc.clock_mhz = cfg.mm_clock_mhz;
      mc.dram_words_per_cycle =
          words_per_cycle(cfg.mm_dram_bytes_per_s, cfg.mm_clock_mhz);
      mc.link_words_per_cycle =
          words_per_cycle(cfg.mm_link_bytes_per_s, cfg.mm_clock_mhz);
      plan.panel_edge = mc.b;
      plan.engine = mc;
      break;
    }
  }
  return plan;
}

// ---- graph plans -----------------------------------------------------------

namespace {

/// Per-slot DRAM staging decomposition of one node, consistent with the
/// single-op totals build_plan derives: a Dram dot stages both operand
/// vectors (2*cols at the dot clock), a Dram gemv streams A and writes y
/// back (rows*cols + rows at the gemv clock) with x assumed SRAM-resident,
/// and every other kind stages nothing today.
struct StagedWords {
  double in[3] = {0.0, 0.0, 0.0};  ///< indexed by OperandSlot
  double out = 0.0;                ///< result writeback
  double wpc = 0.0;                ///< staging link words/cycle (node clock)
  double total() const { return in[0] + in[1] + in[2] + out; }
};

StagedWords staged_words_for(const ContextConfig& cfg, const OpDesc& d) {
  StagedWords w;
  if (d.placement != Placement::Dram) return w;
  switch (d.kind) {
    case OpKind::Dot:
      w.in[0] = static_cast<double>(d.cols);
      w.in[1] = static_cast<double>(d.cols);
      w.wpc = words_per_cycle(cfg.gemv_dram_bytes_per_s, cfg.dot_clock_mhz);
      break;
    case OpKind::Gemv:
      w.in[0] = static_cast<double>(d.rows) * static_cast<double>(d.cols);
      w.out = static_cast<double>(d.rows);
      w.wpc = words_per_cycle(cfg.gemv_dram_bytes_per_s, cfg.gemv_clock_mhz);
      break;
    default:
      break;  // no DRAM staging modeled for the other kinds
  }
  return w;
}

/// Resident words an operand slot pins when a chain retains it for reuse.
double slot_words(const OpDesc& d, OperandSlot s) {
  return static_cast<double>(op_slot_len(d, s));
}

}  // namespace

GraphPlan build_graph_plan(const ContextConfig& cfg, const GraphDesc& g) {
  g.validate();

  GraphPlan gp;
  gp.signature = g.signature();
  gp.order = g.topo_order();
  gp.node_plans.reserve(g.nodes.size());
  for (const auto& node : g.nodes)
    gp.node_plans.push_back(std::make_shared<const Plan>(
        build_plan(cfg, PlanKey::from(node.desc, cfg.tune))));

  const double capacity = static_cast<double>(cfg.sram_capacity_words);
  const double bank_words =
      capacity / static_cast<double>(cfg.sram_banks ? cfg.sram_banks : 1);

  // Chain partition, greedy in topological order. A chain is a set of
  // nodes executed back-to-back on the fabric with a shared SRAM resident
  // set: retained external operands (staged once for the whole chain) and
  // double-buffered forwarding banks for fused edges.
  struct ChainState {
    double resident = 0.0;
    std::unordered_map<const void*, double> retained;  ///< operand -> words
  };
  std::vector<ChainState> chains;
  gp.chain_of.assign(g.nodes.size(), -1);
  gp.edge_fused.assign(g.edges.size(), false);

  std::vector<StagedWords> words(g.nodes.size());
  for (std::size_t i = 0; i < g.nodes.size(); ++i)
    words[i] = staged_words_for(cfg, g.nodes[i].desc);
  // in_skipped[v][slot]: the staging of that operand is not paid (edge
  // forwarded it, or an earlier chain member staged the same vector).
  std::vector<std::array<bool, 3>> in_skipped(g.nodes.size(),
                                              {false, false, false});

  for (std::size_t v : gp.order) {
    const OpDesc& d = g.nodes[v].desc;

    // 1) Try to join a producer's chain across a fusable edge: the
    // intermediate must fit a double-buffered forwarding bank and the
    // chain's resident set must absorb it. First eligible edge (in edge
    // order) wins; determinism over optimality at this scale.
    int chain = -1;
    for (std::size_t ei = 0; ei < g.edges.size(); ++ei) {
      const GraphEdge& e = g.edges[ei];
      if (e.to != v) continue;
      const int cu = gp.chain_of[e.from];
      if (cu < 0) continue;
      const double w = static_cast<double>(op_output_len(g.nodes[e.from].desc));
      if (2.0 * w > bank_words) continue;  // fallback: DRAM staging
      if (chains[static_cast<std::size_t>(cu)].resident + 2.0 * w > capacity)
        continue;
      chain = cu;
      break;
    }

    // 2) Otherwise join a chain that already retains one of this node's
    // DRAM-staged external operands (the Jacobi sweep: many GEMVs sharing
    // one A matrix, no edges between them).
    if (chain < 0) {
      for (std::size_t ci = 0; ci < chains.size() && chain < 0; ++ci) {
        for (OperandSlot s :
             {OperandSlot::A, OperandSlot::B, OperandSlot::X}) {
          const auto* p = [&]() -> const std::vector<double>* {
            switch (s) {
              case OperandSlot::A: return d.a;
              case OperandSlot::B: return d.b;
              case OperandSlot::X: return d.x;
            }
            return nullptr;
          }();
          if (!p || words[v].in[static_cast<std::size_t>(s)] <= 0.0) continue;
          if (chains[ci].retained.count(p)) {
            chain = static_cast<int>(ci);
            break;
          }
        }
      }
    }

    if (chain < 0) {
      chains.emplace_back();
      chain = static_cast<int>(chains.size()) - 1;
    }
    ChainState& cs = chains[static_cast<std::size_t>(chain)];
    gp.chain_of[v] = chain;

    // Fuse every in-edge whose producer sits in this chain and whose
    // forwarding buffer fits; the rest fall back to DRAM staging.
    for (std::size_t ei = 0; ei < g.edges.size(); ++ei) {
      const GraphEdge& e = g.edges[ei];
      if (e.to != v || gp.chain_of[e.from] != chain) continue;
      const double w = static_cast<double>(op_output_len(g.nodes[e.from].desc));
      if (2.0 * w > bank_words || cs.resident + 2.0 * w > capacity) continue;
      gp.edge_fused[ei] = true;
      ++gp.fused_edges;
      cs.resident += 2.0 * w;
      in_skipped[v][static_cast<std::size_t>(e.slot)] = true;
    }

    // Retain this node's external vector operands for chain reuse when they
    // fit (a retained operand that a later member would have re-staged is
    // the shared-staging win; x-type operands are SRAM-resident by the
    // single-op model and retaining them lets e.g. a CG dot reuse p for
    // free). Operands that do not fit are streamed, not retained: no
    // sharing for them — that is the capacity-fallback path.
    for (OperandSlot s : {OperandSlot::A, OperandSlot::B, OperandSlot::X}) {
      const auto* p = [&]() -> const std::vector<double>* {
        switch (s) {
          case OperandSlot::A: return d.a;
          case OperandSlot::B: return d.b;
          case OperandSlot::X: return d.x;
        }
        return nullptr;
      }();
      if (!p || op_slot_len(d, s) == 0) continue;
      const auto it = cs.retained.find(p);
      if (it != cs.retained.end()) {
        if (words[v].in[static_cast<std::size_t>(s)] > 0.0 &&
            !in_skipped[v][static_cast<std::size_t>(s)]) {
          in_skipped[v][static_cast<std::size_t>(s)] = true;
          ++gp.shared_operands;
        }
        continue;
      }
      const double w = slot_words(d, s);
      if (cs.resident + w <= capacity) {
        cs.retained.emplace(p, w);
        cs.resident += w;
      }
    }
  }
  gp.chains = chains.size();

  // A non-kept result whose every consumer edge is fused never leaves the
  // fabric: its DRAM writeback is skipped. (keep=true results still pay
  // the writeback even when also forwarded — the host asked for them.)
  std::vector<bool> skip_out(g.nodes.size(), false);
  for (std::size_t i = 0; i < g.nodes.size(); ++i) {
    if (g.nodes[i].keep || words[i].out <= 0.0) continue;
    bool all_fused = true;
    for (std::size_t ei = 0; ei < g.edges.size(); ++ei)
      if (g.edges[ei].from == i && !gp.edge_fused[ei]) all_fused = false;
    skip_out[i] = all_fused;
  }

  // Per-node staging budgets. The unfused figure must reproduce the
  // single-op plan exactly (one ceil over the node's total words).
  gp.staging.resize(g.nodes.size());
  for (std::size_t i = 0; i < g.nodes.size(); ++i) {
    NodeStaging& st = gp.staging[i];
    const StagedWords& w = words[i];
    st.unfused_words = w.total();
    st.unfused_cycles =
        st.unfused_words > 0.0 ? staging_cycles_for(st.unfused_words, w.wpc) : 0;
    double fused = 0.0;
    for (std::size_t s = 0; s < 3; ++s)
      if (!in_skipped[i][s]) fused += w.in[s];
    if (!skip_out[i]) fused += w.out;
    st.fused_words = fused;
    st.fused_cycles = fused > 0.0 ? staging_cycles_for(fused, w.wpc) : 0;
    gp.staging_saved_cycles += st.unfused_cycles - st.fused_cycles;
    gp.staging_saved_words += st.unfused_words - st.fused_words;
  }
  return gp;
}

std::shared_ptr<const Plan> PlanCache::get_or_build(const ContextConfig& cfg,
                                                    const PlanKey& key) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!pinned_.empty()) {
      const auto pit = pinned_.find(key);
      if (pit != pinned_.end()) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return pit->second;
      }
    }
    const auto it = map_.find(key);
    if (it != map_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      lru_.splice(lru_.begin(), lru_, it->second.pos);  // refresh recency
      return it->second.plan;
    }
  }

  // Build outside the lock: plan construction can throw (ConfigError) and,
  // for GEMM, walks the panel-edge search — no reason to serialize that.
  auto plan = std::make_shared<const Plan>(build_plan(cfg, key));

  std::lock_guard<std::mutex> lock(mu_);
  if (!pinned_.empty()) {
    const auto pit = pinned_.find(key);
    if (pit != pinned_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return pit->second;
    }
  }
  const auto it = map_.find(key);
  if (it != map_.end()) {
    // Another thread built the same plan first; adopt theirs (plans for one
    // key are identical by construction).
    hits_.fetch_add(1, std::memory_order_relaxed);
    lru_.splice(lru_.begin(), lru_, it->second.pos);
    return it->second.plan;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (plan->tune.tuned) {
    tuned_plans_.fetch_add(1, std::memory_order_relaxed);
    tune_candidates_.fetch_add(plan->tune.candidates, std::memory_order_relaxed);
    tune_pruned_.fetch_add(plan->tune.pruned, std::memory_order_relaxed);
    tune_probes_.fetch_add(plan->tune.probed, std::memory_order_relaxed);
    tune_probe_cycles_.fetch_add(plan->tune.probe_cycles,
                                 std::memory_order_relaxed);
  }
  lru_.push_front(key);
  map_[key] = Entry{plan, lru_.begin()};
  while (map_.size() > capacity_) {
    map_.erase(lru_.back());
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  return plan;
}

std::shared_ptr<const Plan> PlanCache::pin(const ContextConfig& cfg,
                                           const PlanKey& key) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto pit = pinned_.find(key);
    if (pit != pinned_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return pit->second;
    }
    // Promote an existing LRU entry: the plan moves out of the eviction
    // order, freeing its LRU slot.
    const auto it = map_.find(key);
    if (it != map_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      auto plan = it->second.plan;
      lru_.erase(it->second.pos);
      map_.erase(it);
      pinned_.emplace(key, plan);
      return plan;
    }
  }

  auto plan = std::make_shared<const Plan>(build_plan(cfg, key));

  std::lock_guard<std::mutex> lock(mu_);
  const auto pit = pinned_.find(key);
  if (pit != pinned_.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return pit->second;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  const auto it = map_.find(key);
  if (it != map_.end()) {
    // Raced with a get_or_build miss: adopt the LRU's plan and promote it.
    auto existing = it->second.plan;
    lru_.erase(it->second.pos);
    map_.erase(it);
    pinned_.emplace(key, existing);
    return existing;
  }
  pinned_.emplace(key, plan);
  return plan;
}

std::shared_ptr<const GraphPlan> PlanCache::get_or_build_graph(
    const ContextConfig& cfg, const GraphDesc& g) {
  // Backend and tune policy key the entry for the same reasons they key
  // PlanKey; the signature covers everything structural about the graph.
  const std::string key =
      cat(static_cast<int>(fp::active_backend().kind), ':',
          static_cast<int>(cfg.tune), '|', g.signature());
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = graph_map_.find(key);
    if (it != graph_map_.end()) {
      graph_hits_.fetch_add(1, std::memory_order_relaxed);
      graph_lru_.splice(graph_lru_.begin(), graph_lru_, it->second.pos);
      return it->second.plan;
    }
  }

  auto plan = std::make_shared<const GraphPlan>(build_graph_plan(cfg, g));

  std::lock_guard<std::mutex> lock(mu_);
  const auto it = graph_map_.find(key);
  if (it != graph_map_.end()) {
    graph_hits_.fetch_add(1, std::memory_order_relaxed);
    graph_lru_.splice(graph_lru_.begin(), graph_lru_, it->second.pos);
    return it->second.plan;
  }
  graph_misses_.fetch_add(1, std::memory_order_relaxed);
  graph_lru_.push_front(key);
  graph_map_[key] = GraphEntry{plan, graph_lru_.begin()};
  while (graph_map_.size() > capacity_) {
    graph_map_.erase(graph_lru_.back());
    graph_lru_.pop_back();
    graph_evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  return plan;
}

std::size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

std::size_t PlanCache::pinned_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pinned_.size();
}

std::size_t PlanCache::graph_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return graph_map_.size();
}

void PlanCache::publish(telemetry::Session& tel) const {
  tel.gauge("host.plan.hits").set(static_cast<double>(hits()));
  tel.gauge("host.plan.misses").set(static_cast<double>(misses()));
  tel.gauge("host.plan.evictions").set(static_cast<double>(evictions()));
  tel.gauge("host.plan.size").set(static_cast<double>(size()));
  tel.gauge("host.plan.capacity").set(static_cast<double>(capacity()));
  tel.gauge("host.plan.pinned").set(static_cast<double>(pinned_count()));
  // Graph-plan entries are accounted separately: host.plan.{hits,misses}
  // stay a pure single-op hit-rate, undiluted by graph keys.
  tel.gauge("host.plan.graphs").set(static_cast<double>(graph_size()));
  tel.gauge("host.plan.graph_hits").set(static_cast<double>(graph_hits()));
  tel.gauge("host.plan.graph_misses").set(static_cast<double>(graph_misses()));
  tel.gauge("host.plan.graph_evictions")
      .set(static_cast<double>(graph_evictions()));
  // Tuner activity (zero under TunePolicy::Fixed): how many plans went
  // through design selection, how much of the candidate space the area model
  // pruned, and what the probe runs cost in simulated cycles.
  const auto load = [](const std::atomic<u64>& a) {
    return static_cast<double>(a.load(std::memory_order_relaxed));
  };
  tel.gauge("host.tuner.plans").set(load(tuned_plans_));
  tel.gauge("host.tuner.candidates").set(load(tune_candidates_));
  tel.gauge("host.tuner.pruned_area").set(load(tune_pruned_));
  tel.gauge("host.tuner.probes").set(load(tune_probes_));
  tel.gauge("host.tuner.probe_cycles").set(load(tune_probe_cycles_));
}

}  // namespace xd::host
