#include "host/op.hpp"

#include <limits>

namespace xd::host {

namespace {

/// rows * cols (or n * n) with an overflow check: a wrapped product can
/// equal a tiny operand's size and pass the naive equality test, after which
/// the engine indexes far past the operand's end.
std::size_t shape_product(std::size_t x, std::size_t y, const char* what) {
  if (y != 0 && x > std::numeric_limits<std::size_t>::max() / y) {
    require(false, cat(what, ": shape product overflows"));
  }
  return x * y;
}

}  // namespace

const char* op_kind_name(OpKind kind) {
  switch (kind) {
    case OpKind::Dot: return "dot";
    case OpKind::DotBatch: return "dot_batch";
    case OpKind::Gemv: return "gemv";
    case OpKind::GemvAuto: return "gemv_auto";
    case OpKind::Spmxv: return "spmxv";
    case OpKind::Gemm: return "gemm";
    case OpKind::GemmArray: return "gemm_array";
    case OpKind::GemmMulti: return "gemm_multi";
  }
  return "unknown";
}

const char* placement_name(Placement p) {
  return p == Placement::Dram ? "dram" : "sram";
}

const char* gemv_arch_name(GemvArch a) {
  return a == GemvArch::Column ? "col" : "tree";
}

bool op_kind_from_name(std::string_view name, OpKind& out) {
  for (const OpKind k :
       {OpKind::Dot, OpKind::DotBatch, OpKind::Gemv, OpKind::GemvAuto,
        OpKind::Spmxv, OpKind::Gemm, OpKind::GemmArray, OpKind::GemmMulti}) {
    if (name == op_kind_name(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

bool placement_from_name(std::string_view name, Placement& out) {
  if (name == "sram") {
    out = Placement::Sram;
    return true;
  }
  if (name == "dram") {
    out = Placement::Dram;
    return true;
  }
  return false;
}

bool gemv_arch_from_name(std::string_view name, GemvArch& out) {
  if (name == "tree") {
    out = GemvArch::Tree;
    return true;
  }
  if (name == "col") {
    out = GemvArch::Column;
    return true;
  }
  return false;
}

DotResult Outcome::as_dot() const {
  require(!values.empty(), "Outcome: no dot value");
  DotResult r;
  r.value = values.front();
  r.report = report;
  return r;
}

blas1::DotOutcome Outcome::as_dot_batch() && {
  blas1::DotOutcome o;
  o.results = std::move(values);
  o.report = std::move(report);
  return o;
}

blas2::MxvOutcome Outcome::as_mxv() && {
  blas2::MxvOutcome o;
  o.y = std::move(values);
  o.report = std::move(report);
  return o;
}

blas3::MmOutcome Outcome::as_mm() && {
  blas3::MmOutcome o;
  o.c = std::move(values);
  o.report = std::move(report);
  return o;
}

blas3::MmHierOutcome Outcome::as_mm_hier() && {
  blas3::MmHierOutcome o;
  o.c = std::move(values);
  o.report = std::move(report);
  o.required_dram_words_per_cycle = required_dram_words_per_cycle;
  o.required_link_words_per_cycle = required_link_words_per_cycle;
  o.required_sram_words_per_cycle = required_sram_words_per_cycle;
  o.sram_panel_words = sram_panel_words;
  return o;
}

blas3::MmMultiOutcome Outcome::as_mm_multi() && {
  blas3::MmMultiOutcome o;
  o.c = std::move(values);
  o.report = std::move(report);
  o.per_fpga = std::move(per_fpga);
  o.dram_words = dram_words;
  o.link_words = link_words;
  return o;
}

Outcome to_outcome(blas1::DotOutcome&& o, OpKind kind) {
  Outcome out;
  out.kind = kind;
  out.values = std::move(o.results);
  out.report = std::move(o.report);
  return out;
}

Outcome to_outcome(blas2::MxvOutcome&& o, OpKind kind) {
  Outcome out;
  out.kind = kind;
  out.values = std::move(o.y);
  out.report = std::move(o.report);
  return out;
}

Outcome to_outcome(blas3::MmOutcome&& o) {
  Outcome out;
  out.kind = OpKind::GemmArray;
  out.values = std::move(o.c);
  out.report = std::move(o.report);
  return out;
}

Outcome to_outcome(blas3::MmHierOutcome&& o) {
  Outcome out;
  out.kind = OpKind::Gemm;
  out.values = std::move(o.c);
  out.report = std::move(o.report);
  out.required_dram_words_per_cycle = o.required_dram_words_per_cycle;
  out.required_link_words_per_cycle = o.required_link_words_per_cycle;
  out.required_sram_words_per_cycle = o.required_sram_words_per_cycle;
  out.sram_panel_words = o.sram_panel_words;
  return out;
}

Outcome to_outcome(blas3::MmMultiOutcome&& o) {
  Outcome out;
  out.kind = OpKind::GemmMulti;
  out.values = std::move(o.c);
  out.report = std::move(o.report);
  out.per_fpga = std::move(o.per_fpga);
  out.dram_words = o.dram_words;
  out.link_words = o.link_words;
  return out;
}

OpDesc OpDesc::dot(const std::vector<double>& u, const std::vector<double>& v,
                   Placement src) {
  OpDesc d;
  d.kind = OpKind::Dot;
  d.placement = src;
  d.cols = u.size();
  d.a = &u;
  d.b = &v;
  return d;
}

OpDesc OpDesc::dot_batch(const std::vector<std::vector<double>>& us,
                         const std::vector<std::vector<double>>& vs) {
  OpDesc d;
  d.kind = OpKind::DotBatch;
  d.batch = us.size();
  d.us = &us;
  d.vs = &vs;
  return d;
}

OpDesc OpDesc::gemv(const std::vector<double>& a, std::size_t rows,
                    std::size_t cols, const std::vector<double>& x,
                    Placement src, GemvArch arch) {
  OpDesc d;
  d.kind = OpKind::Gemv;
  d.placement = src;
  d.arch = arch;
  d.rows = rows;
  d.cols = cols;
  d.a = &a;
  d.x = &x;
  return d;
}

OpDesc OpDesc::gemv_auto(const std::vector<double>& a, std::size_t rows,
                         std::size_t cols, const std::vector<double>& x) {
  OpDesc d = gemv(a, rows, cols, x);
  d.kind = OpKind::GemvAuto;
  return d;
}

OpDesc OpDesc::spmxv(const blas2::CrsMatrix& a, const std::vector<double>& x) {
  OpDesc d;
  d.kind = OpKind::Spmxv;
  d.rows = a.rows;
  d.cols = a.cols;
  d.sparse = &a;
  d.x = &x;
  return d;
}

OpDesc OpDesc::gemm(const std::vector<double>& a, const std::vector<double>& b,
                    std::size_t n) {
  OpDesc d;
  d.kind = OpKind::Gemm;
  d.n = n;
  d.a = &a;
  d.b = &b;
  return d;
}

OpDesc OpDesc::gemm_panel(const std::vector<double>& a, std::size_t rows,
                          const std::vector<double>& b, std::size_t n) {
  OpDesc d = gemm(a, b, n);
  d.rows = rows;
  return d;
}

OpDesc OpDesc::gemm_array(const std::vector<double>& a,
                          const std::vector<double>& b, std::size_t n) {
  OpDesc d = gemm(a, b, n);
  d.kind = OpKind::GemmArray;
  return d;
}

OpDesc OpDesc::gemm_multi(const std::vector<double>& a,
                          const std::vector<double>& b, std::size_t n) {
  OpDesc d = gemm(a, b, n);
  d.kind = OpKind::GemmMulti;
  return d;
}

void OpDesc::validate() const {
  switch (kind) {
    case OpKind::Dot:
      require(a && b, "dot: missing operands");
      require(a->size() == cols && b->size() == cols,
              "dot: operand sizes disagree with the descriptor");
      break;
    case OpKind::DotBatch:
      require(us && vs, "dot_batch: missing operands");
      require(us->size() == batch && vs->size() == batch,
              "dot_batch: batch size disagrees with the descriptor");
      break;
    case OpKind::Gemv:
    case OpKind::GemvAuto:
      require(a && x, "gemv: missing operands");
      require(a->size() == shape_product(rows, cols, "gemv"),
              "gemv: A size != rows * cols");
      require(x->size() == cols, "gemv: x size != cols");
      break;
    case OpKind::Spmxv:
      require(sparse && x, "spmxv: missing operands");
      sparse->validate();
      require(sparse->rows == rows && sparse->cols == cols,
              "spmxv: descriptor shape disagrees with the CRS matrix");
      require(x->size() == sparse->cols, "spmxv: x size != cols");
      break;
    case OpKind::Gemm:
    case OpKind::GemmArray:
    case OpKind::GemmMulti: {
      require(a && b, "gemm: missing operands");
      const std::size_t elems = shape_product(n, n, "gemm");
      require(b->size() == elems, "gemm: matrix size != n * n");
      if (rows == 0) {
        require(a->size() == elems, "gemm: matrix size != n * n");
      } else {
        // Row-panel form: only the hierarchical engine runs panels; the
        // cycle-accurate array/multi engines are square-only.
        require(kind == OpKind::Gemm,
                "gemm: row panels need the hierarchical engine");
        require(a->size() == shape_product(rows, n, "gemm panel"),
                "gemm: A size != rows * n");
      }
      break;
    }
  }
}

}  // namespace xd::host
