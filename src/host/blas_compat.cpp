#include "host/blas_compat.hpp"

#include <algorithm>
#include <vector>

namespace xd::host {

namespace {

/// Gather a strided BLAS vector into contiguous storage. Negative strides
/// walk backwards from the end, per BLAS convention.
std::vector<double> gather(std::size_t n, const double* x, int inc) {
  require(inc != 0, "BLAS stride must be nonzero");
  std::vector<double> v(n);
  const long step = inc;
  long idx = inc > 0 ? 0 : -static_cast<long>(n - 1) * step;
  for (std::size_t i = 0; i < n; ++i, idx += step) v[i] = x[idx];
  return v;
}

void scatter_axpby(std::size_t n, const std::vector<double>& src, double alpha,
                   double beta, double* y, int inc) {
  require(inc != 0, "BLAS stride must be nonzero");
  const long step = inc;
  long idx = inc > 0 ? 0 : -static_cast<long>(n - 1) * step;
  for (std::size_t i = 0; i < n; ++i, idx += step) {
    y[idx] = alpha * src[i] + beta * y[idx];
  }
}

/// Materialize op(A) as a dense row-major rows x cols matrix.
std::vector<double> materialize(Transpose trans, std::size_t rows,
                                std::size_t cols, const double* a,
                                std::size_t lda) {
  std::vector<double> m(rows * cols);
  if (trans == Transpose::No) {
    require(lda >= cols, "lda too small");
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t j = 0; j < cols; ++j) m[i * cols + j] = a[i * lda + j];
    }
  } else {
    require(lda >= rows, "lda too small");
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t j = 0; j < cols; ++j) m[i * cols + j] = a[j * lda + i];
    }
  }
  return m;
}

}  // namespace

double compat_ddot(const Context& ctx, std::size_t n, const double* x, int incx,
                   const double* y, int incy, PerfReport* report) {
  if (n == 0) return 0.0;
  const auto xv = gather(n, x, incx);
  const auto yv = gather(n, y, incy);
  const auto out = ctx.dot(xv, yv);
  if (report) *report = out.report;
  return out.value;
}

void compat_dgemv(const Context& ctx, Transpose trans, std::size_t m,
                  std::size_t n, double alpha, const double* a, std::size_t lda,
                  const double* x, int incx, double beta, double* y, int incy,
                  PerfReport* report) {
  const std::size_t rows = trans == Transpose::No ? m : n;
  const std::size_t cols = trans == Transpose::No ? n : m;
  if (rows == 0) return;
  if (alpha == 0.0 || cols == 0) {
    std::vector<double> zero(rows, 0.0);
    scatter_axpby(rows, zero, 0.0, beta, y, incy);
    return;
  }
  // op(A) materializes host-side; the streaming product runs on the FPGA.
  const auto op_a = materialize(trans, rows, cols, a, lda);
  const auto xv = gather(cols, x, incx);
  const auto out = ctx.gemv(op_a, rows, cols, xv);
  if (report) *report = out.report;
  scatter_axpby(rows, out.y, alpha, beta, y, incy);
}

void compat_dgemm(const Context& ctx, Transpose transa, Transpose transb,
                  std::size_t m, std::size_t n, std::size_t k, double alpha,
                  const double* a, std::size_t lda, const double* b,
                  std::size_t ldb, double beta, double* c, std::size_t ldc,
                  PerfReport* report) {
  require(ldc >= n || m == 0, "ldc too small");
  if (m == 0 || n == 0) return;
  if (alpha == 0.0 || k == 0) {
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < n; ++j) c[i * ldc + j] *= beta;
    }
    return;
  }

  // Pad to the smallest square multiple of the design's on-chip block edge
  // that holds op(A) (m x k) and op(B) (k x n); the hierarchical engine then
  // runs with SRAM panel edge = the padded size (l = 1 node).
  const auto& cfg = ctx.config();
  const std::size_t edge = std::max({m, n, k, static_cast<std::size_t>(cfg.mm_m)});
  const std::size_t N = ceil_div(edge, cfg.mm_m) * cfg.mm_m;

  const auto op_a = materialize(transa, m, k, a, lda);
  const auto op_b = materialize(transb, k, n, b, ldb);
  std::vector<double> pa(N * N, 0.0), pb(N * N, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    std::copy_n(&op_a[i * k], k, &pa[i * N]);
  }
  for (std::size_t i = 0; i < k; ++i) {
    std::copy_n(&op_b[i * n], n, &pb[i * N]);
  }

  ContextConfig padded_cfg = cfg;
  padded_cfg.mm_b = N;  // one SRAM panel covers the padded problem
  Context padded_ctx(padded_cfg);
  const auto out = padded_ctx.gemm(pa, pb, N);
  if (report) *report = out.report;

  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      c[i * ldc + j] = alpha * out.c[i * N + j] + beta * c[i * ldc + j];
    }
  }
}

double xd_ddot(std::size_t n, const double* x, int incx, const double* y,
               int incy) {
  return compat_ddot(Context{}, n, x, incx, y, incy);
}

void xd_dgemv(Transpose trans, std::size_t m, std::size_t n, double alpha,
              const double* a, std::size_t lda, const double* x, int incx,
              double beta, double* y, int incy) {
  compat_dgemv(Context{}, trans, m, n, alpha, a, lda, x, incx, beta, y, incy);
}

void xd_dgemm(Transpose transa, Transpose transb, std::size_t m, std::size_t n,
              std::size_t k, double alpha, const double* a, std::size_t lda,
              const double* b, std::size_t ldb, double beta, double* c,
              std::size_t ldc) {
  compat_dgemm(Context{}, transa, transb, m, n, k, alpha, a, lda, b, ldb, beta,
               c, ldc);
}

}  // namespace xd::host
