// CBLAS-style compatibility layer.
//
// Downstream code written against the standard BLAS signatures can run on
// the simulated reconfigurable system by linking these wrappers: strides,
// transposes and alpha/beta scaling are handled on the host (the processor
// side of the node), while the O(n^2)/O(n^3) kernels execute on the
// simulated FPGA engines. Shapes the hardware designs cannot take directly
// (non-square GEMM, n not a multiple of the block edge) are zero-padded,
// exactly how the paper proposes handling n > block multiples ("these blocks
// are read by the design consecutively").
//
// Pass a Context to target a specific machine configuration, or use the
// xd_* free functions for the default XD1 node. An optional PerfReport out
// parameter returns the simulated timing of the accelerated part.
#pragma once

#include <cstddef>

#include "host/context.hpp"

namespace xd::host {

enum class Transpose { No, Yes };

/// dot <- x . y with strides (incx/incy may be negative, BLAS semantics).
double compat_ddot(const Context& ctx, std::size_t n, const double* x, int incx,
                   const double* y, int incy, PerfReport* report = nullptr);

/// y <- alpha * op(A) x + beta * y, A row-major m x n, lda >= n.
void compat_dgemv(const Context& ctx, Transpose trans, std::size_t m,
                  std::size_t n, double alpha, const double* a, std::size_t lda,
                  const double* x, int incx, double beta, double* y, int incy,
                  PerfReport* report = nullptr);

/// C <- alpha * op(A) op(B) + beta * C, row-major, op(A) m x k, op(B) k x n,
/// C m x n. Internally padded to a square multiple of the GEMM block edge.
void compat_dgemm(const Context& ctx, Transpose transa, Transpose transb,
                  std::size_t m, std::size_t n, std::size_t k, double alpha,
                  const double* a, std::size_t lda, const double* b,
                  std::size_t ldb, double beta, double* c, std::size_t ldc,
                  PerfReport* report = nullptr);

// Default-context conveniences (one XD1 node).
double xd_ddot(std::size_t n, const double* x, int incx, const double* y,
               int incy);
void xd_dgemv(Transpose trans, std::size_t m, std::size_t n, double alpha,
              const double* a, std::size_t lda, const double* x, int incx,
              double beta, double* y, int incy);
void xd_dgemm(Transpose transa, Transpose transb, std::size_t m, std::size_t n,
              std::size_t k, double alpha, const double* a, std::size_t lda,
              const double* b, std::size_t ldb, double beta, double* c,
              std::size_t ldc);

}  // namespace xd::host
