// Software reference BLAS.
//
// Two roles:
//  1. Correctness oracle for the simulated FPGA engines (naive double-loop
//     implementations in plain double arithmetic).
//  2. The CPU comparator of Sec 6.3: the paper quotes ACML/MKL dgemm numbers
//     on Opteron/Xeon/P4; we provide a register- and cache-blocked dgemm and
//     a timing harness so bench_cpu_comparison can print measured host-CPU
//     GFLOPS next to the simulated FPGA design's GFLOPS.
#pragma once

#include <cstddef>
#include <vector>

namespace xd::host {

/// Naive reference implementations (row-major).
double ref_dot(const std::vector<double>& u, const std::vector<double>& v);
std::vector<double> ref_gemv(const std::vector<double>& a, std::size_t rows,
                             std::size_t cols, const std::vector<double>& x);
std::vector<double> ref_gemm(const std::vector<double>& a,
                             const std::vector<double>& b, std::size_t n);

/// Cache-blocked, ikj-ordered dgemm (the optimized CPU baseline).
/// `block` is the cache tile edge; 64 works well for L1-sized tiles.
std::vector<double> blocked_gemm(const std::vector<double>& a,
                                 const std::vector<double>& b, std::size_t n,
                                 std::size_t block = 64);

/// Maximum absolute elementwise difference.
double max_abs_diff(const std::vector<double>& x, const std::vector<double>& y);

/// Wall-clock GFLOPS of `blocked_gemm` on this machine for an n x n problem,
/// best of `reps` runs (Sec 6.3 comparator).
double measure_cpu_gemm_gflops(std::size_t n, int reps = 3,
                               std::size_t block = 64);

}  // namespace xd::host
