// Performance report attached to every simulated BLAS run.
//
// The simulator counts cycles and memory traffic; converting to seconds,
// MFLOPS and GB/s requires the design's achievable clock (from the area
// model). Reports carry both the raw counts and the derived figures so
// benches can print paper-style rows.
#pragma once

#include <string>

#include "common/util.hpp"

namespace xd::host {

struct PerfReport {
  std::string design;         ///< e.g. "dot k=2", "gemv-tree k=4", "mm k=8 m=8"
  u64 cycles = 0;             ///< total cycles of the run
  u64 compute_cycles = 0;     ///< cycles of the compute phase (excl. staging)
  u64 staging_cycles = 0;     ///< DRAM<->SRAM staging cycles (Table 4 split)
  u64 flops = 0;              ///< useful floating-point operations performed
  u64 stall_cycles = 0;       ///< cycles the datapath waited for memory/hazards
  double sram_words = 0.0;    ///< words moved to/from SRAM during compute
  double dram_words = 0.0;    ///< words moved across the DRAM link
  double clock_mhz = 0.0;     ///< achievable clock of the configured design

  double seconds() const {
    return clock_mhz > 0 ? static_cast<double>(cycles) / (clock_mhz * 1e6) : 0.0;
  }
  double sustained_mflops() const {
    const double s = seconds();
    return s > 0 ? static_cast<double>(flops) / s / 1e6 : 0.0;
  }
  double sustained_gflops() const { return sustained_mflops() / 1e3; }
  /// Achieved SRAM bandwidth during the compute phase, bytes/s.
  double sram_bytes_per_s() const {
    const u64 cc = compute_cycles ? compute_cycles : cycles;
    return cc ? sram_words * kWordBytes * clock_mhz * 1e6 / static_cast<double>(cc)
              : 0.0;
  }
  /// Achieved DRAM bandwidth averaged over the phase that used it.
  double dram_bytes_per_s() const {
    const u64 cc = cycles;
    return cc ? dram_words * kWordBytes * clock_mhz * 1e6 / static_cast<double>(cc)
              : 0.0;
  }
  double flops_per_cycle() const {
    return cycles ? static_cast<double>(flops) / static_cast<double>(cycles) : 0.0;
  }
};

}  // namespace xd::host
