// Plan layer: everything about an operation that depends only on
// (op kind, shapes, placement, architecture) and the machine configuration
// — not on the operand values — computed once and memoized.
//
// A Plan holds the fully derived engine configuration (clock, words/cycle,
// pipeline depths), the DRAM staging cost for Placement::Dram (the block
// that used to be duplicated across Context::dot and Context::gemv), the
// chosen SRAM panel edge for GEMM, and the GEMV on-chip capacity check.
// Building one runs all shape validation that does not need the operand
// data, so a cached hit skips validation, configuration and floorplanning
// entirely.
//
// PlanCache is a bounded, mutex-guarded LRU keyed by PlanKey; it is shared
// by the synchronous facade and the concurrent runtime, and publishes
// hit/miss/eviction counts as the host.plan.* gauges.
#pragma once

#include <atomic>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <variant>

#include "blas2/mxv_col.hpp"
#include "fp/backend.hpp"
#include "host/graph.hpp"
#include "host/op.hpp"
#include "mem/bram.hpp"

namespace xd::host {

/// The memoization key: every input of plan construction besides the
/// machine configuration (one cache belongs to one configuration). The
/// active fp backend is part of the key: timing never depends on it, but a
/// plan cached under one backend must not satisfy a lookup made under a
/// ScopedBackend override, or a backend-equivalence rerun would silently
/// reuse state from the other arm of the comparison.
struct PlanKey {
  OpKind kind = OpKind::Dot;
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::size_t n = 0;
  std::size_t batch = 0;
  Placement placement = Placement::Sram;
  GemvArch arch = GemvArch::Tree;
  fp::BackendKind backend = fp::BackendKind::Soft;
  /// The tune policy is part of the key: a tuned plan may resolve to a
  /// different engine family than the fixed one for the same descriptor, so
  /// a cache shared across policies (e.g. by tests or the fuzz harness
  /// flipping cfg.tune) must never satisfy one policy's lookup with the
  /// other's plan.
  TunePolicy tune = TunePolicy::Fixed;

  bool operator==(const PlanKey&) const = default;

  static PlanKey from(const OpDesc& desc, TunePolicy tune = TunePolicy::Fixed) {
    return PlanKey{desc.kind,  desc.rows,      desc.cols, desc.n,
                   desc.batch, desc.placement, desc.arch,
                   fp::active_backend().kind, tune};
  }
};

struct PlanKeyHash {
  std::size_t operator()(const PlanKey& k) const;
};

/// One engine configuration, whichever the op resolved to. Stored with a
/// null telemetry pointer; the runtime patches the session in on the copy
/// it hands to the engine.
using EngineConfig =
    std::variant<blas1::DotConfig, blas2::MxvTreeConfig, blas2::MxvColConfig,
                 blas2::SpmxvConfig, blas3::MmArrayConfig, blas3::MmHierConfig,
                 blas3::MmMultiConfig>;

/// What the tuner did while building a plan (host.tuner.* telemetry).
struct TuneSummary {
  bool tuned = false;        ///< plan built under Model/Probe policy
  u64 candidates = 0;        ///< designs enumerated
  u64 pruned = 0;            ///< rejected by area/BRAM/bank/hazard budgets
  u64 probed = 0;            ///< candidates validated by simulator probes
  u64 probe_cycles = 0;      ///< total simulated probe cycles
  std::string chosen;        ///< engine_signature() of the winner
};

struct Plan {
  PlanKey key;
  EngineConfig engine;
  u64 staging_cycles = 0;        ///< prepended for Placement::Dram
  double dram_words = 0.0;       ///< words staged across the DRAM link
  std::size_t panel_edge = 0;    ///< GEMM: chosen SRAM panel edge b
  std::size_t onchip_capacity = 0;  ///< GEMV: words of x that fit on chip
  bool blocked_gemv = false;     ///< GemvAuto resolved to the blocked variant
  TuneSummary tune;              ///< empty/default under TunePolicy::Fixed
};

// ---- configuration-derived helpers hoisted out of Context ------------------

/// Largest SRAM panel edge <= mm_b that tiles the given n (throws
/// ConfigError if none exists — use the compat layer's padding then).
std::size_t choose_panel_edge(const ContextConfig& cfg, std::size_t n);

/// BRAM floorplan of the GEMV design for a cols-wide x; throws ConfigError
/// if the design cannot be built on the configured device.
mem::BramBudget gemv_bram_plan(const ContextConfig& cfg, std::size_t cols);

/// BRAM floorplan of the GEMM array (2 m^2 block stores + B registers).
mem::BramBudget gemm_bram_plan(const ContextConfig& cfg);

/// Words of x the GEMV design can keep on-chip next to its buffers.
std::size_t gemv_onchip_x_capacity(const ContextConfig& cfg);

/// Build the immutable plan for one key. All validation and configuration
/// that the shapes allow happens here, once per distinct key.
Plan build_plan(const ContextConfig& cfg, const PlanKey& key);

// ---- graph plans -----------------------------------------------------------

/// Per-node staging budget inside a graph plan. `unfused_*` is exactly what
/// the node's single-op Plan would pay (per-op execution); `fused_*` is
/// what it pays inside its chain, after SRAM forwarding skipped edge-fed
/// operand stagings, chain-shared externals were staged once, and
/// non-kept, fully-forwarded results dropped their writeback. Cycles are in
/// the node's own staging clock domain (== its engine clock).
struct NodeStaging {
  u64 fused_cycles = 0;
  double fused_words = 0.0;
  u64 unfused_cycles = 0;
  double unfused_words = 0.0;
};

/// The planned execution of a GraphDesc: one single-op Plan per node (built
/// directly, NOT through the single-op LRU — graph planning must not evict
/// hot single-op entries or dilute their hit-rate telemetry), the
/// deterministic topological order, the chain partition, and the staging
/// deltas fusion buys. Value-independent: two graphs with equal
/// signature() get byte-identical plans.
struct GraphPlan {
  std::string signature;
  std::vector<std::shared_ptr<const Plan>> node_plans;  ///< per node index
  std::vector<std::size_t> order;    ///< topological execution order
  std::vector<NodeStaging> staging;  ///< per node index
  std::vector<bool> edge_fused;      ///< per edge: forwarded on-chip
  std::vector<int> chain_of;         ///< chain id per node index
  std::size_t chains = 0;
  u64 fused_edges = 0;
  u64 shared_operands = 0;  ///< external stagings skipped by chain sharing
  /// Per-op-minus-fused staging, summed across nodes; each node's term is
  /// in that node's own clock domain (the runtime normalizes when it
  /// aggregates into a GraphOutcome).
  u64 staging_saved_cycles = 0;
  double staging_saved_words = 0.0;
};

/// Partition the DAG into fusable chains and derive each node's fused
/// staging budget under the tuner's SRAM model (cfg.sram_banks /
/// cfg.sram_capacity_words): a forwarded intermediate needs a
/// double-buffered bank (2*words <= capacity/banks), a chain's resident
/// set (retained shared operands + live forwarding buffers) must fit total
/// capacity, and any edge that does not fit falls back to full DRAM
/// staging. Validates the graph; throws ConfigError.
GraphPlan build_graph_plan(const ContextConfig& cfg, const GraphDesc& g);

class PlanCache {
 public:
  explicit PlanCache(std::size_t capacity = 64)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Return the cached plan for `key`, building (and possibly evicting the
  /// least recently used entry) on a miss. Thread-safe.
  std::shared_ptr<const Plan> get_or_build(const ContextConfig& cfg,
                                           const PlanKey& key);

  /// Like get_or_build, but the entry is promoted out of the LRU into the
  /// pinned set: it can never be evicted and does not consume LRU capacity.
  /// Hot paths hold the returned pointer and skip the probe entirely;
  /// lookups that do go through get_or_build still find pinned entries
  /// first (counted as hits). Pinning the same key twice is idempotent.
  std::shared_ptr<const Plan> pin(const ContextConfig& cfg, const PlanKey& key);

  /// Return the cached graph plan for `g`, keyed by backend + tune policy +
  /// GraphDesc::signature(). Graph entries live in their own LRU with their
  /// own hit/miss/eviction counters and the same capacity budget, so graph
  /// traffic never evicts single-op plans or skews host.plan.{hits,misses}.
  std::shared_ptr<const GraphPlan> get_or_build_graph(const ContextConfig& cfg,
                                                      const GraphDesc& g);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const;        ///< LRU entries only (excludes pinned)
  std::size_t pinned_count() const;
  std::size_t graph_size() const;
  u64 hits() const { return hits_.load(std::memory_order_relaxed); }
  u64 misses() const { return misses_.load(std::memory_order_relaxed); }
  u64 evictions() const { return evictions_.load(std::memory_order_relaxed); }
  u64 graph_hits() const { return graph_hits_.load(std::memory_order_relaxed); }
  u64 graph_misses() const {
    return graph_misses_.load(std::memory_order_relaxed);
  }
  u64 graph_evictions() const {
    return graph_evictions_.load(std::memory_order_relaxed);
  }

  /// Set the host.plan.* gauges from the current counters (publish-at-end
  /// idiom; idempotent, unlike counter adds).
  void publish(telemetry::Session& tel) const;

 private:
  std::size_t capacity_;
  mutable std::mutex mu_;
  /// Front = most recently used; map entries point into the list.
  std::list<PlanKey> lru_;
  struct Entry {
    std::shared_ptr<const Plan> plan;
    std::list<PlanKey>::iterator pos;
  };
  std::unordered_map<PlanKey, Entry, PlanKeyHash> map_;
  /// Pinned plans: outside the LRU, never evicted, found before the LRU on
  /// lookup. Small by construction (one entry per explicitly pinned shape).
  std::unordered_map<PlanKey, std::shared_ptr<const Plan>, PlanKeyHash> pinned_;
  /// Graph plans: a separate LRU keyed by the graph cache key string.
  std::list<std::string> graph_lru_;
  struct GraphEntry {
    std::shared_ptr<const GraphPlan> plan;
    std::list<std::string>::iterator pos;
  };
  std::unordered_map<std::string, GraphEntry> graph_map_;
  std::atomic<u64> hits_{0};
  std::atomic<u64> misses_{0};
  std::atomic<u64> evictions_{0};
  std::atomic<u64> graph_hits_{0};
  std::atomic<u64> graph_misses_{0};
  std::atomic<u64> graph_evictions_{0};
  // Aggregated tuner activity across plan builds (host.tuner.* gauges).
  std::atomic<u64> tuned_plans_{0};
  std::atomic<u64> tune_candidates_{0};
  std::atomic<u64> tune_pruned_{0};
  std::atomic<u64> tune_probes_{0};
  std::atomic<u64> tune_probe_cycles_{0};
};

}  // namespace xd::host
