#include "host/runtime.hpp"

#include "blas2/blocking.hpp"
#include "telemetry/session.hpp"

namespace xd::host {

namespace {

/// Patch the execution session into a copy of the planned engine config.
template <typename Cfg>
Cfg with_telemetry(const Cfg& planned, telemetry::Session* tel) {
  Cfg cfg = planned;
  cfg.telemetry = tel;
  return cfg;
}

}  // namespace

Runtime::Runtime(const ContextConfig& cfg, ThreadPool* pool)
    : cfg_(cfg),
      pool_(pool ? pool : &ThreadPool::shared()),
      cache_(cfg.plan_cache_capacity) {}

Outcome Runtime::execute(const OpDesc& desc, telemetry::Session* tel) {
  desc.validate();
  const auto plan = cache_.get_or_build(cfg_, PlanKey::from(desc, cfg_.tune));

  // Staging happens (and is recorded) before the engine runs, so the
  // "staging" span precedes the engine's "compute" span on the timeline.
  if (plan->staging_cycles > 0 && tel) {
    tel->phase("staging", plan->staging_cycles);
    tel->gauge(cat("mem.dram.", op_kind_name(desc.kind), ".words"))
        .set(plan->dram_words);
  }

  Outcome out;
  switch (desc.kind) {
    case OpKind::Dot: {
      blas1::DotEngine engine(
          with_telemetry(std::get<blas1::DotConfig>(plan->engine), tel));
      out = to_outcome(engine.run({*desc.a}, {*desc.b}), OpKind::Dot);
      break;
    }
    case OpKind::DotBatch: {
      blas1::DotEngine engine(
          with_telemetry(std::get<blas1::DotConfig>(plan->engine), tel));
      out = to_outcome(engine.run(*desc.us, *desc.vs));
      break;
    }
    case OpKind::Gemv: {
      // Dispatch on what the plan resolved to, not on desc.arch: the tuner
      // may cross architectures (a tree descriptor can plan onto the
      // column design and vice versa).
      if (std::holds_alternative<blas2::MxvTreeConfig>(plan->engine)) {
        blas2::MxvTreeEngine engine(
            with_telemetry(std::get<blas2::MxvTreeConfig>(plan->engine), tel));
        out = to_outcome(engine.run(*desc.a, desc.rows, desc.cols, *desc.x));
      } else {
        blas2::MxvColEngine engine(
            with_telemetry(std::get<blas2::MxvColConfig>(plan->engine), tel));
        out = to_outcome(engine.run(*desc.a, desc.rows, desc.cols, *desc.x));
      }
      break;
    }
    case OpKind::GemvAuto: {
      const auto tc =
          with_telemetry(std::get<blas2::MxvTreeConfig>(plan->engine), tel);
      if (!plan->blocked_gemv) {
        blas2::MxvTreeEngine engine(tc);
        out = to_outcome(engine.run(*desc.a, desc.rows, desc.cols, *desc.x),
                         OpKind::GemvAuto);
      } else {
        out = to_outcome(
            blas2::run_blocked_gemv_tree(tc, plan->onchip_capacity, *desc.a,
                                         desc.rows, desc.cols, *desc.x),
            OpKind::GemvAuto);
      }
      break;
    }
    case OpKind::Spmxv: {
      blas2::SpmxvEngine engine(
          with_telemetry(std::get<blas2::SpmxvConfig>(plan->engine), tel));
      out = to_outcome(engine.run(*desc.sparse, *desc.x), OpKind::Spmxv);
      break;
    }
    case OpKind::Gemm:
    case OpKind::GemmArray:
    case OpKind::GemmMulti: {
      // Same cross-family dispatch: a tuned Gemm plan can resolve to the
      // cycle-accurate array or the multi-FPGA pipeline instead of the
      // hierarchical model.
      if (std::holds_alternative<blas3::MmArrayConfig>(plan->engine)) {
        blas3::MmArrayEngine engine(
            with_telemetry(std::get<blas3::MmArrayConfig>(plan->engine), tel));
        out = to_outcome(engine.run(*desc.a, *desc.b, desc.n));
      } else if (std::holds_alternative<blas3::MmMultiConfig>(plan->engine)) {
        blas3::MmMultiEngine engine(
            with_telemetry(std::get<blas3::MmMultiConfig>(plan->engine), tel));
        out = to_outcome(engine.run(*desc.a, *desc.b, desc.n));
      } else {
        blas3::MmHierEngine engine(
            with_telemetry(std::get<blas3::MmHierConfig>(plan->engine), tel));
        out = to_outcome(engine.run(*desc.a, *desc.b, desc.n));
      }
      break;
    }
  }
  // The Mm outcome adapters hardcode their usual kind; keep the caller's.
  out.kind = desc.kind;

  if (plan->staging_cycles > 0) {
    out.report.staging_cycles = plan->staging_cycles;
    out.report.cycles += plan->staging_cycles;
    out.report.dram_words = plan->dram_words;
  }
  return out;
}

Outcome Runtime::run(const OpDesc& desc) {
  try {
    Outcome out = execute(desc, cfg_.telemetry);
    completed_.fetch_add(1, std::memory_order_relaxed);
    if (cfg_.telemetry) publish(*cfg_.telemetry);
    return out;
  } catch (...) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    throw;
  }
}

std::future<Outcome> Runtime::submit(const OpDesc& desc) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  return pool_->submit([this, desc]() -> Outcome {
    try {
      // Telemetry detached: the session is not synchronized and concurrent
      // jobs would race on it (see the thread-safety contract above).
      Outcome out = execute(desc, nullptr);
      completed_.fetch_add(1, std::memory_order_relaxed);
      return out;
    } catch (...) {
      failed_.fetch_add(1, std::memory_order_relaxed);
      throw;
    }
  });
}

std::vector<Outcome> Runtime::run_batch(const std::vector<OpDesc>& descs) {
  std::vector<std::future<Outcome>> futures;
  futures.reserve(descs.size());
  for (const auto& d : descs) futures.push_back(submit(d));
  // Settle every job before surfacing the first failure, so no future is
  // abandoned with its operands possibly going out of scope at the caller.
  std::vector<Outcome> outs;
  outs.reserve(futures.size());
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      outs.push_back(f.get());
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  return outs;
}

RuntimeStats Runtime::stats() const {
  RuntimeStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  return s;
}

void Runtime::publish(telemetry::Session& tel) const {
  const RuntimeStats s = stats();
  tel.gauge("host.runtime.submitted").set(static_cast<double>(s.submitted));
  tel.gauge("host.runtime.completed").set(static_cast<double>(s.completed));
  tel.gauge("host.runtime.failed").set(static_cast<double>(s.failed));
  tel.gauge("host.runtime.workers").set(static_cast<double>(workers()));
  // Which arithmetic backend runs the engines, and the evidence behind the
  // choice: 'native' reflects the live dispatch table (including ScopedBackend
  // overrides), the other two describe the process-wide startup selection.
  const fp::BackendSelection& sel = fp::backend_selection();
  tel.gauge("fp.backend.native")
      .set(fp::active_backend().kind == fp::BackendKind::Native ? 1.0 : 0.0);
  tel.gauge("fp.backend.fell_back").set(sel.fell_back ? 1.0 : 0.0);
  tel.gauge("fp.backend.conformance_cases")
      .set(static_cast<double>(sel.conformance.cases));
  cache_.publish(tel);
}

}  // namespace xd::host
