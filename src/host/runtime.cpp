#include "host/runtime.hpp"

#include <chrono>

#include "blas2/blocking.hpp"
#include "telemetry/session.hpp"

namespace xd::host {

namespace {

/// Patch the execution session into a copy of the planned engine config.
template <typename Cfg>
Cfg with_telemetry(const Cfg& planned, telemetry::Session* tel) {
  Cfg cfg = planned;
  cfg.telemetry = tel;
  return cfg;
}

/// Monotonic wall-clock nanoseconds for TraceContext lifecycle stamps.
u64 now_ns() {
  return static_cast<u64>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now().time_since_epoch())
                              .count());
}

/// Process-wide op sequence: op ids stay unique and submission-ordered even
/// across Runtime instances (the CLI builds one Runtime per batch line, yet
/// their flight records must interleave coherently).
std::atomic<u64> g_op_seq{0};

/// First line of an exception message, for compact flight-recorder records.
std::string first_line(const char* what) {
  std::string s(what ? what : "");
  const auto nl = s.find('\n');
  return nl == std::string::npos ? s : s.substr(0, nl);
}

/// Everything a submitted op carries from the caller to the worker. Carved
/// from a recycled slab so the steady-state submit path allocates only the
/// packaged task's shared state: the submission lambda captures two
/// pointers and fits MoveFunc's inline storage.
struct OpState {
  OpDesc desc;
  std::shared_ptr<const Plan> pinned;  ///< null unless submitted via handle
  telemetry::Session* tel = nullptr;
  bool trace_on = false;
  u64 op_id = 0;
  u64 submit_ns = 0;
};

/// Per-worker slab of recycled OpStates with a mutex-guarded global
/// spillover. Acquire prefers the calling thread's local free list; a
/// worker releases into its own list and overflows into the global one,
/// which is where a dedicated submitter thread (serve daemon, benchmarks)
/// refills from — states circulate instead of being reallocated per op.
class OpSlab {
 public:
  static OpState* acquire() {
    auto& loc = local().states;
    if (!loc.empty()) {
      OpState* s = loc.back();
      loc.pop_back();
      return s;
    }
    {
      std::lock_guard<std::mutex> lock(mu());
      auto& g = global();
      if (!g.empty()) {
        OpState* s = g.back();
        g.pop_back();
        return s;
      }
    }
    return new OpState();
  }

  static void release(OpState* s) {
    // Drop the operand views and the plan reference now: the caller's
    // vectors (and a pinned plan's cache slot) must not be kept reachable
    // by an idle slab entry.
    s->desc = OpDesc{};
    s->pinned.reset();
    auto& loc = local().states;
    if (loc.size() < kLocalCap) {
      loc.push_back(s);
      return;
    }
    std::lock_guard<std::mutex> lock(mu());
    auto& g = global();
    if (g.size() < kGlobalCap) {
      g.push_back(s);
      return;
    }
    delete s;
  }

 private:
  static constexpr std::size_t kLocalCap = 32;
  static constexpr std::size_t kGlobalCap = 1024;
  struct Local {
    std::vector<OpState*> states;
    ~Local() {
      for (OpState* s : states) delete s;
    }
  };
  static Local& local() {
    static thread_local Local l;
    return l;
  }
  static std::mutex& mu() {
    static std::mutex m;
    return m;
  }
  static std::vector<OpState*>& global() {
    static std::vector<OpState*> g;
    return g;
  }
};

/// Returns the op state to the slab on every exit path of a worker lambda.
struct SlabReturn {
  OpState* st;
  ~SlabReturn() { OpSlab::release(st); }
};

}  // namespace

Runtime::Runtime(const ContextConfig& cfg, ThreadPool* pool)
    : cfg_(cfg),
      pool_(pool ? pool : &ThreadPool::shared()),
      cache_(cfg.plan_cache_capacity) {}

Outcome Runtime::execute(const OpDesc& desc, telemetry::Session* tel,
                         telemetry::TraceContext* tc, const Plan* pinned) {
  desc.validate();
  // A pinned plan short-circuits the cache probe, but only when it matches
  // the descriptor's key exactly — a ScopedBackend override or a handle
  // reused across shapes falls back to the normal lookup, so a pinned
  // execution is always bit-identical to an LRU-path one.
  const PlanKey key = PlanKey::from(desc, cfg_.tune);
  std::shared_ptr<const Plan> resolved;
  const Plan* plan = pinned;
  if (!plan || !(plan->key == key)) {
    resolved = cache_.get_or_build(cfg_, key);
    plan = resolved.get();
  }
  if (tc) tc->plan_ns = now_ns();

  // Staging happens (and is recorded) before the engine runs, so the
  // "staging" span precedes the engine's "compute" span on the timeline.
  if (plan->staging_cycles > 0 && tel) {
    tel->phase("staging", plan->staging_cycles);
    tel->gauge(cat("mem.dram.", op_kind_name(desc.kind), ".words"))
        .set(plan->dram_words);
  }

  if (tc) tc->exec_ns = now_ns();
  Outcome out = run_engine(*plan, desc, tel);

  if (plan->staging_cycles > 0) {
    out.report.staging_cycles = plan->staging_cycles;
    out.report.cycles += plan->staging_cycles;
    out.report.dram_words = plan->dram_words;
  }
  if (tc) tc->cycles = out.report.cycles;
  return out;
}

Outcome Runtime::run_engine(const Plan& plan, const OpDesc& desc,
                            telemetry::Session* tel) {
  Outcome out;
  switch (desc.kind) {
    case OpKind::Dot: {
      blas1::DotEngine engine(
          with_telemetry(std::get<blas1::DotConfig>(plan.engine), tel));
      // Single-pair overload: no per-op batch-vector wrap (two vector
      // copies per tiny op on the old path).
      out = to_outcome(engine.run_pair(*desc.a, *desc.b), OpKind::Dot);
      break;
    }
    case OpKind::DotBatch: {
      blas1::DotEngine engine(
          with_telemetry(std::get<blas1::DotConfig>(plan.engine), tel));
      out = to_outcome(engine.run(*desc.us, *desc.vs));
      break;
    }
    case OpKind::Gemv: {
      // Dispatch on what the plan resolved to, not on desc.arch: the tuner
      // may cross architectures (a tree descriptor can plan onto the
      // column design and vice versa).
      if (std::holds_alternative<blas2::MxvTreeConfig>(plan.engine)) {
        blas2::MxvTreeEngine engine(
            with_telemetry(std::get<blas2::MxvTreeConfig>(plan.engine), tel));
        out = to_outcome(engine.run(*desc.a, desc.rows, desc.cols, *desc.x));
      } else {
        blas2::MxvColEngine engine(
            with_telemetry(std::get<blas2::MxvColConfig>(plan.engine), tel));
        out = to_outcome(engine.run(*desc.a, desc.rows, desc.cols, *desc.x));
      }
      break;
    }
    case OpKind::GemvAuto: {
      const auto tc =
          with_telemetry(std::get<blas2::MxvTreeConfig>(plan.engine), tel);
      if (!plan.blocked_gemv) {
        blas2::MxvTreeEngine engine(tc);
        out = to_outcome(engine.run(*desc.a, desc.rows, desc.cols, *desc.x),
                         OpKind::GemvAuto);
      } else {
        out = to_outcome(
            blas2::run_blocked_gemv_tree(tc, plan.onchip_capacity, *desc.a,
                                         desc.rows, desc.cols, *desc.x),
            OpKind::GemvAuto);
      }
      break;
    }
    case OpKind::Spmxv: {
      blas2::SpmxvEngine engine(
          with_telemetry(std::get<blas2::SpmxvConfig>(plan.engine), tel));
      out = to_outcome(engine.run(*desc.sparse, *desc.x), OpKind::Spmxv);
      break;
    }
    case OpKind::Gemm:
    case OpKind::GemmArray:
    case OpKind::GemmMulti: {
      // Same cross-family dispatch: a tuned Gemm plan can resolve to the
      // cycle-accurate array or the multi-FPGA pipeline instead of the
      // hierarchical model.
      if (std::holds_alternative<blas3::MmArrayConfig>(plan.engine)) {
        blas3::MmArrayEngine engine(
            with_telemetry(std::get<blas3::MmArrayConfig>(plan.engine), tel));
        out = to_outcome(engine.run(*desc.a, *desc.b, desc.n));
      } else if (std::holds_alternative<blas3::MmMultiConfig>(plan.engine)) {
        blas3::MmMultiEngine engine(
            with_telemetry(std::get<blas3::MmMultiConfig>(plan.engine), tel));
        out = to_outcome(engine.run(*desc.a, *desc.b, desc.n));
      } else {
        blas3::MmHierEngine engine(
            with_telemetry(std::get<blas3::MmHierConfig>(plan.engine), tel));
        // rows != 0 marks the shard scheduler's row-panel form (validate()
        // guarantees it only reaches the hierarchical engine).
        out = desc.rows != 0
                  ? to_outcome(engine.run_panel(*desc.a, desc.rows, *desc.b,
                                                desc.n))
                  : to_outcome(engine.run(*desc.a, *desc.b, desc.n));
      }
      break;
    }
  }
  // The Mm outcome adapters hardcode their usual kind; keep the caller's.
  out.kind = desc.kind;
  return out;
}

GraphOutcome Runtime::execute_graph(const GraphDesc& g,
                                    telemetry::Session* tel,
                                    telemetry::TraceContext* tc) {
  g.validate();
  const auto plan = cache_.get_or_build_graph(cfg_, g);
  if (tc) tc->plan_ns = now_ns();
  if (tc) tc->exec_ns = now_ns();

  GraphOutcome go;
  go.nodes.resize(g.nodes.size());

  // Nodes run in the planned topological order; an edge-fed operand slot is
  // patched to the producer's already-computed value vector. Within a fused
  // chain that models SRAM forwarding; across chains it models the DRAM
  // round trip — either way the values are identical, only the staging
  // cycle accounting differs (the bit-identity invariant the fuzz harness
  // holds fused execution to).
  for (const std::size_t idx : plan->order) {
    OpDesc d = g.nodes[idx].desc;
    for (const auto& e : g.edges) {
      if (e.to != idx) continue;
      const std::vector<double>* src = &go.nodes[e.from].values;
      switch (e.slot) {
        case OperandSlot::A: d.a = src; break;
        case OperandSlot::B: d.b = src; break;
        case OperandSlot::X: d.x = src; break;
      }
    }
    d.validate();

    const NodeStaging& st = plan->staging[idx];
    if (st.fused_cycles > 0 && tel) {
      tel->phase("staging", st.fused_cycles);
      tel->gauge(cat("mem.dram.", op_kind_name(d.kind), ".words"))
          .set(st.fused_words);
    }
    Outcome out = run_engine(*plan->node_plans[idx], d, tel);
    if (st.fused_cycles > 0 || st.unfused_cycles > 0) {
      out.report.staging_cycles = st.fused_cycles;
      out.report.cycles += st.fused_cycles;
      out.report.dram_words = st.fused_words;
    }
    go.nodes[idx] = std::move(out);
  }

  // Aggregate report, normalized into node 0's clock domain the same way
  // solver::cg absorbs dot-clock cycles into the GEMV clock.
  const double ref_clock = go.nodes[0].report.clock_mhz;
  const auto normalize = [&](u64 cycles, double clock) -> u64 {
    if (clock <= 0.0 || ref_clock <= 0.0 || clock == ref_clock) return cycles;
    return static_cast<u64>(static_cast<double>(cycles) * ref_clock / clock);
  };
  go.report.design = cat("graph[", g.nodes.size(), " nodes]");
  go.report.clock_mhz = ref_clock;
  go.node_staging_saved.resize(go.nodes.size());
  for (std::size_t i = 0; i < go.nodes.size(); ++i) {
    const PerfReport& r = go.nodes[i].report;
    go.report.cycles += normalize(r.cycles, r.clock_mhz);
    go.report.compute_cycles += normalize(r.compute_cycles, r.clock_mhz);
    go.report.staging_cycles += normalize(r.staging_cycles, r.clock_mhz);
    go.report.stall_cycles += normalize(r.stall_cycles, r.clock_mhz);
    go.report.flops += r.flops;
    go.report.sram_words += r.sram_words;
    go.report.dram_words += r.dram_words;
    const NodeStaging& st = plan->staging[i];
    go.node_staging_saved[i] = st.unfused_cycles - st.fused_cycles;
    go.staging_saved_cycles +=
        normalize(st.unfused_cycles - st.fused_cycles, r.clock_mhz);
    go.staging_saved_words += st.unfused_words - st.fused_words;
  }
  go.fused_edges = plan->fused_edges;
  go.shared_operands = plan->shared_operands;
  if (tc) tc->cycles = go.report.cycles;
  return go;
}

void Runtime::observe_latency(telemetry::Session& tel,
                              const telemetry::TraceContext& tc) const {
  // Histograms are in microseconds: the sketch's log-linear buckets resolve
  // sub-microsecond detail poorly anyway, and us keeps exports readable.
  constexpr double kUs = 1e-3;
  tel.histogram("host.runtime.queue_wait")
      .observe(static_cast<double>(tc.queue_wait_ns()) * kUs);
  tel.histogram("host.runtime.exec")
      .observe(static_cast<double>(tc.complete_ns - tc.exec_ns) * kUs);
  tel.histogram("host.runtime.e2e")
      .observe(static_cast<double>(tc.e2e_ns()) * kUs);
}

Outcome Runtime::run(const OpDesc& desc) { return run_impl(desc, nullptr); }

Outcome Runtime::run(const OpDesc& desc, const PlanHandle& plan) {
  return run_impl(desc, plan.plan_.get());
}

PlanHandle Runtime::pin_plan(const OpDesc& desc) {
  desc.validate();
  return PlanHandle(cache_.pin(cfg_, PlanKey::from(desc, cfg_.tune)));
}

Outcome Runtime::run_impl(const OpDesc& desc, const Plan* pinned) {
  telemetry::Session* tel = cfg_.telemetry;
  if (!tel) {
    // No session: nothing to record, keep the path free of clock reads.
    try {
      Outcome out = execute(desc, nullptr, nullptr, pinned);
      completed_.fetch_add(1, std::memory_order_relaxed);
      return out;
    } catch (...) {
      failed_.fetch_add(1, std::memory_order_relaxed);
      throw;
    }
  }

  telemetry::TraceContext tc;
  tc.op_id = g_op_seq.fetch_add(1, std::memory_order_relaxed);
  tc.kind = op_kind_name(desc.kind);
  tc.lane = 0;
  tc.submit_ns = tc.dequeue_ns = now_ns();  // synchronous: no queue wait
  try {
    Outcome out;
    {
      // Hold the session lock for the whole op so the synchronous path
      // records directly (bit-identical to single-threaded telemetry) even
      // while pool workers are merging shards into the same session.
      // Engines only ever parallel_for with caller participation, so no
      // pool task is awaited while the lock is held.
      auto lock = tel->lock();
      out = execute(desc, tel, &tc, pinned);
      tc.complete_ns = now_ns();
      completed_.fetch_add(1, std::memory_order_relaxed);
      observe_latency(*tel, tc);
      publish(*tel);
    }
    tel->flight().record(tc);
    return out;
  } catch (const std::exception& e) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    tc.complete_ns = now_ns();
    tc.failed = true;
    tc.error = first_line(e.what());
    tel->flight().record(tc);
    throw;
  } catch (...) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    tc.complete_ns = now_ns();
    tc.failed = true;
    tel->flight().record(tc);
    throw;
  }
}

Outcome Runtime::async_op(const OpDesc& desc, const Plan* pinned,
                          telemetry::Session* tel, bool trace_on, u64 op_id,
                          u64 submit_ns) {
  queued_.fetch_sub(1, std::memory_order_relaxed);
  in_flight_.fetch_add(1, std::memory_order_relaxed);

  telemetry::TraceContext tc;
  tc.op_id = op_id;
  tc.kind = op_kind_name(desc.kind);
  const int worker = ThreadPool::current_worker_id();
  tc.lane = worker < 0 ? 0 : static_cast<unsigned>(worker) + 1;
  tc.submit_ns = submit_ns;
  tc.dequeue_ns = now_ns();

  try {
    Outcome out;
    if (!tel) {
      out = execute(desc, nullptr, nullptr, pinned);
      tc.complete_ns = now_ns();
      completed_.fetch_add(1, std::memory_order_relaxed);
      in_flight_.fetch_sub(1, std::memory_order_relaxed);
    } else {
      // Record into a thread-local shard session — no sharing, no lock —
      // then fold it into the shared session at completion. The shard is
      // reused across jobs on this worker; its small trace ring only
      // matters when the main session's tracing is enabled.
      static thread_local telemetry::Session shard(/*trace_capacity=*/512,
                                                   /*flight_capacity=*/1);
      shard.reset_for_reuse();
      shard.trace().set_enabled(trace_on);
      out = execute(desc, &shard, &tc, pinned);
      tc.complete_ns = now_ns();
      completed_.fetch_add(1, std::memory_order_relaxed);
      in_flight_.fetch_sub(1, std::memory_order_relaxed);
      {
        auto lock = tel->lock();
        tel->merge_unlocked(shard, tc.lane);
        observe_latency(*tel, tc);
        publish(*tel);
      }
      tel->flight().record(tc);
    }
    return out;
  } catch (const std::exception& e) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    if (tel) {
      // The shard may hold open spans / partial metrics from the aborted
      // op; it is discarded (cleared at the next job), never merged.
      tc.complete_ns = now_ns();
      tc.failed = true;
      tc.error = first_line(e.what());
      tel->flight().record(tc);
    }
    throw;
  } catch (...) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    if (tel) {
      tc.complete_ns = now_ns();
      tc.failed = true;
      tel->flight().record(tc);
    }
    throw;
  }
}

std::future<Outcome> Runtime::submit(const OpDesc& desc) {
  return submit_impl(desc, nullptr);
}

std::future<Outcome> Runtime::submit(const OpDesc& desc,
                                     const PlanHandle& plan) {
  return submit_impl(desc, plan.plan_);
}

std::future<Outcome> Runtime::submit_impl(const OpDesc& desc,
                                          std::shared_ptr<const Plan> pinned) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  queued_.fetch_add(1, std::memory_order_relaxed);

  // Everything the worker needs travels in a recycled slab state; the
  // lambda captures two pointers, so the whole task fits the pool's
  // single-allocation packaged task.
  OpState* st = OpSlab::acquire();
  st->desc = desc;
  st->pinned = std::move(pinned);
  st->tel = cfg_.telemetry;
  st->trace_on = st->tel && st->tel->trace().enabled();
  st->op_id = g_op_seq.fetch_add(1, std::memory_order_relaxed);
  st->submit_ns = now_ns();

  return pool_->submit([this, st]() -> Outcome {
    SlabReturn ret{st};
    return async_op(st->desc, st->pinned.get(), st->tel, st->trace_on,
                    st->op_id, st->submit_ns);
  });
}

std::vector<Outcome> Runtime::run_batch(const std::vector<OpDesc>& descs) {
  if (descs.empty()) return {};
  telemetry::Session* tel = cfg_.telemetry;
  const bool trace_on = tel && tel->trace().enabled();

  // Same-shape fast path: a run of consecutive descriptors with one
  // PlanKey is staged as a single pooled job that resolves the plan once
  // and executes the ops back to back. Each op keeps its own Outcome,
  // telemetry shard merge, trace context and flight-recorder entry, so the
  // results are indistinguishable from per-op submission. Runs are capped
  // so one huge uniform batch still spreads across workers.
  constexpr std::size_t kGroupCap = 64;
  struct Slice {
    std::vector<Outcome> outs;
    std::vector<std::exception_ptr> errs;  ///< parallel to outs; null = ok
  };
  std::vector<std::future<Slice>> futures;
  std::size_t i = 0;
  while (i < descs.size()) {
    const PlanKey key = PlanKey::from(descs[i], cfg_.tune);
    std::size_t j = i + 1;
    while (j < descs.size() && j - i < kGroupCap &&
           PlanKey::from(descs[j], cfg_.tune) == key) {
      ++j;
    }
    const std::size_t n = j - i;
    submitted_.fetch_add(n, std::memory_order_relaxed);
    queued_.fetch_add(n, std::memory_order_relaxed);
    std::vector<u64> ids(n);
    for (auto& id : ids) id = g_op_seq.fetch_add(1, std::memory_order_relaxed);
    const u64 submit_ns = now_ns();
    const OpDesc* first = descs.data() + i;
    futures.push_back(pool_->submit(
        [this, first, n, key, tel, trace_on, ids = std::move(ids),
         submit_ns]() -> Slice {
          Slice s;
          s.outs.resize(n);
          s.errs.assign(n, nullptr);
          // One plan resolution for the whole run. If the build fails (or a
          // backend override invalidates the key), each op falls back to its
          // own probe inside execute(), surfacing per-op exceptions exactly
          // as per-op submission would.
          std::shared_ptr<const Plan> plan;
          try {
            plan = cache_.get_or_build(cfg_, key);
          } catch (...) {
            plan = nullptr;
          }
          for (std::size_t t = 0; t < n; ++t) {
            try {
              s.outs[t] = async_op(first[t], plan.get(), tel, trace_on,
                                   ids[t], submit_ns);
            } catch (...) {
              s.errs[t] = std::current_exception();
            }
          }
          return s;
        }));
    i = j;
  }

  // Settle every job before surfacing the first failure, so no future is
  // abandoned with its operands possibly going out of scope at the caller.
  std::vector<Outcome> outs;
  outs.reserve(descs.size());
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      Slice s = f.get();
      for (std::size_t t = 0; t < s.outs.size(); ++t) {
        if (s.errs[t]) {
          if (!first_error) first_error = s.errs[t];
        } else {
          outs.push_back(std::move(s.outs[t]));
        }
      }
    } catch (...) {
      // A group job itself never throws, but a dying pool can drop it.
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  return outs;
}

GraphOutcome Runtime::run_graph(const GraphDesc& g) {
  telemetry::Session* tel = cfg_.telemetry;
  if (!tel) {
    try {
      GraphOutcome out = execute_graph(g, nullptr);
      completed_.fetch_add(1, std::memory_order_relaxed);
      return out;
    } catch (...) {
      failed_.fetch_add(1, std::memory_order_relaxed);
      throw;
    }
  }

  telemetry::TraceContext tc;
  tc.op_id = g_op_seq.fetch_add(1, std::memory_order_relaxed);
  tc.kind = "graph";
  tc.lane = 0;
  tc.submit_ns = tc.dequeue_ns = now_ns();
  try {
    GraphOutcome out;
    {
      auto lock = tel->lock();
      out = execute_graph(g, tel, &tc);
      tc.complete_ns = now_ns();
      completed_.fetch_add(1, std::memory_order_relaxed);
      observe_latency(*tel, tc);
      publish(*tel);
    }
    tel->flight().record(tc);
    return out;
  } catch (const std::exception& e) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    tc.complete_ns = now_ns();
    tc.failed = true;
    tc.error = first_line(e.what());
    tel->flight().record(tc);
    throw;
  } catch (...) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    tc.complete_ns = now_ns();
    tc.failed = true;
    tel->flight().record(tc);
    throw;
  }
}

std::future<GraphOutcome> Runtime::submit_graph(const GraphDesc& g) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  queued_.fetch_add(1, std::memory_order_relaxed);

  telemetry::Session* tel = cfg_.telemetry;
  const bool trace_on = tel && tel->trace().enabled();
  const u64 op_id = g_op_seq.fetch_add(1, std::memory_order_relaxed);
  const u64 submit_ns = now_ns();
  // No submit-side gauge write: the queue_depth gauge is refreshed by
  // publish() at every completion, and taking the session lock here
  // serialized producers against the workers' shard merges.

  return pool_->submit(
      [this, g, tel, trace_on, op_id, submit_ns]() -> GraphOutcome {
        queued_.fetch_sub(1, std::memory_order_relaxed);
        in_flight_.fetch_add(1, std::memory_order_relaxed);

        telemetry::TraceContext tc;
        tc.op_id = op_id;
        tc.kind = "graph";
        const int worker = ThreadPool::current_worker_id();
        tc.lane = worker < 0 ? 0 : static_cast<unsigned>(worker) + 1;
        tc.submit_ns = submit_ns;
        tc.dequeue_ns = now_ns();

        try {
          GraphOutcome out;
          if (!tel) {
            out = execute_graph(g, nullptr);
            tc.complete_ns = now_ns();
            completed_.fetch_add(1, std::memory_order_relaxed);
            in_flight_.fetch_sub(1, std::memory_order_relaxed);
          } else {
            static thread_local telemetry::Session shard(
                /*trace_capacity=*/512, /*flight_capacity=*/1);
            shard.reset_for_reuse();
            shard.trace().set_enabled(trace_on);
            out = execute_graph(g, &shard, &tc);
            tc.complete_ns = now_ns();
            completed_.fetch_add(1, std::memory_order_relaxed);
            in_flight_.fetch_sub(1, std::memory_order_relaxed);
            {
              auto lock = tel->lock();
              tel->merge_unlocked(shard, tc.lane);
              observe_latency(*tel, tc);
              publish(*tel);
            }
            tel->flight().record(tc);
          }
          return out;
        } catch (const std::exception& e) {
          failed_.fetch_add(1, std::memory_order_relaxed);
          in_flight_.fetch_sub(1, std::memory_order_relaxed);
          if (tel) {
            tc.complete_ns = now_ns();
            tc.failed = true;
            tc.error = first_line(e.what());
            tel->flight().record(tc);
          }
          throw;
        } catch (...) {
          failed_.fetch_add(1, std::memory_order_relaxed);
          in_flight_.fetch_sub(1, std::memory_order_relaxed);
          if (tel) {
            tc.complete_ns = now_ns();
            tc.failed = true;
            tel->flight().record(tc);
          }
          throw;
        }
      });
}

RuntimeStats Runtime::stats() const {
  RuntimeStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.queued = queued_.load(std::memory_order_relaxed);
  s.in_flight = in_flight_.load(std::memory_order_relaxed);
  return s;
}

void Runtime::publish(telemetry::Session& tel) const {
  const RuntimeStats s = stats();
  tel.gauge("host.runtime.submitted").set(static_cast<double>(s.submitted));
  tel.gauge("host.runtime.completed").set(static_cast<double>(s.completed));
  tel.gauge("host.runtime.failed").set(static_cast<double>(s.failed));
  tel.gauge("host.runtime.workers").set(static_cast<double>(workers()));
  tel.gauge("host.runtime.queue_depth").set(static_cast<double>(s.queued));
  tel.gauge("host.runtime.in_flight").set(static_cast<double>(s.in_flight));
  // Which arithmetic backend runs the engines, and the evidence behind the
  // choice: 'native' reflects the live dispatch table (including ScopedBackend
  // overrides), the other two describe the process-wide startup selection.
  const fp::BackendSelection& sel = fp::backend_selection();
  tel.gauge("fp.backend.native")
      .set(fp::active_backend().kind == fp::BackendKind::Native ? 1.0 : 0.0);
  tel.gauge("fp.backend.fell_back").set(sel.fell_back ? 1.0 : 0.0);
  tel.gauge("fp.backend.conformance_cases")
      .set(static_cast<double>(sel.conformance.cases));
  cache_.publish(tel);
}

}  // namespace xd::host
