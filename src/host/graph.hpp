// Op-graph layer: a small DAG of OpDescs with value dependencies.
//
// A GraphDesc generalizes the single-op descriptor to a handful of nodes
// (each an ordinary OpDesc) connected by edges that say "this node's result
// vector is that node's operand". The plan layer partitions the DAG into
// fusable chains whose intermediates stay SRAM-resident instead of
// round-tripping through DRAM (see plan.hpp / docs/runtime.md "Graph plans
// & fusion"); the runtime executes the nodes in topological order with
// producer results forwarded in place of the staged operands.
//
// An edge-fed operand slot leaves its pointer in the node's OpDesc null —
// the runtime patches in the producer's value vector before the engine
// runs. All other operands follow the usual OpDesc contract (caller-owned,
// alive until the GraphOutcome / future is consumed).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "host/op.hpp"

namespace xd::host {

/// Which operand of the consumer an edge feeds. Slots map onto the OpDesc
/// pointer fields: A -> desc.a, B -> desc.b, X -> desc.x.
enum class OperandSlot { A, B, X };

const char* operand_slot_name(OperandSlot slot);
bool operand_slot_from_name(std::string_view name, OperandSlot& out);

struct GraphNode {
  std::string name;   ///< optional label (CLI record form); "" = node index
  OpDesc desc;        ///< edge-fed slots may leave their pointer null
  /// The host needs this node's values after the graph completes. A kept
  /// DRAM-placed result still pays its writeback staging even when an edge
  /// also forwards it on-chip; a non-kept intermediate skips the writeback.
  bool keep = true;
};

struct GraphEdge {
  std::size_t from = 0;       ///< producer node index
  std::size_t to = 0;         ///< consumer node index
  OperandSlot slot = OperandSlot::A;
};

/// Element count of the value vector a node produces (1 for dot, rows for
/// gemv/spmxv, batch for dot-batch, n*n for the gemms).
std::size_t op_output_len(const OpDesc& desc);

/// Expected element count of an operand slot, or 0 if the op has no such
/// slot (e.g. X on a dot, A on a spmxv — the sparse matrix is not fusable).
std::size_t op_slot_len(const OpDesc& desc, OperandSlot slot);

/// A DAG of operations. Nodes are listed in any order; validate() checks
/// acyclicity and topo_order() yields a dependency-respecting execution
/// order (stable: among ready nodes, lowest index first — execution and
/// planning are deterministic).
struct GraphDesc {
  std::vector<GraphNode> nodes;
  std::vector<GraphEdge> edges;

  /// Structural validation, value-free: edge indices in range, no
  /// self-edges or duplicate (to, slot) pairs, the DAG property, every
  /// edge-fed slot exists on its consumer with a shape matching the
  /// producer's output length, every non-edge-fed operand present (each
  /// node's OpDesc::validate() with edge-fed slots exempted until the
  /// runtime patches them). Throws ConfigError.
  void validate() const;

  /// Topological order (throws ConfigError on a cycle).
  std::vector<std::size_t> topo_order() const;

  /// Value-independent structural signature: kinds, shapes, placements,
  /// archs, keep flags, edges, and the operand-sharing pattern (which slots
  /// alias the same external vector — sharing changes the plan, so it must
  /// key the cache). Two graphs with equal signatures plan identically.
  std::string signature() const;
};

/// Result of a graph run: one Outcome per node (same order as
/// GraphDesc::nodes, each report in its own clock domain), plus an
/// aggregate report normalized into node 0's clock domain the same way
/// solver::cg absorbs dot cycles into the GEMV clock.
struct GraphOutcome {
  std::vector<Outcome> nodes;
  PerfReport report;

  u64 fused_edges = 0;           ///< edges forwarded on-chip (not re-staged)
  u64 shared_operands = 0;       ///< chain-shared external stagings avoided
  u64 staging_saved_cycles = 0;  ///< vs per-op execution, aggregate clock
  double staging_saved_words = 0.0;
  /// Per node (GraphDesc order): staging cycles fusion saved that node vs
  /// its single-op plan, in the node's own clock domain.
  std::vector<u64> node_staging_saved;
};

}  // namespace xd::host
