// Sharded multi-FPGA execution (Sec 6.4 made runnable; docs/sharding.md).
//
// One large GEMM/GEMV is split into l row-panel sub-ops, mapped onto the
// FPGA chain of a machine::System (prefix placement: global nodes 0..l-1,
// walking each chassis's RocketIO chain and the inter-chassis RapidArray
// links in order), planned through the existing plan layer, executed
// concurrently on the shared work-stealing pool, and reduced in a fixed
// deterministic order. The scatter of operand panels to their nodes and the
// gather of result panels back to node 0 are explicit store-and-forward
// transfer legs charged through the machine's mem::Channels, so link word
// counters record real traffic and the reduced cycle count includes the
// communication the projections of model/projections.cpp only estimate.
//
// Determinism contract (pinned by tests/test_shard.cpp and the fuzz
// harness's Sharded invariant):
//   - Values, GEMM: bit-identical to single-device execution for every l.
//     The hierarchical engine accumulates each C element over the full
//     inner dimension in ascending index order, so a row panel computes
//     exactly the rows it would in the whole problem.
//   - Values, GEMV: bit-identical at l = 1 (the sub-op IS the original op)
//     and wherever the association order cannot change the bits (integer
//     operands). At l > 1 the Sec 3 reduction circuit pairs a row's chunk
//     sums in an order that depends on which other rows share Buf_red and
//     on fold-path adder contention, so splitting the row set reassociates
//     the sums: results agree with single-device execution to the same
//     magnitude-scaled tolerance the testing oracle uses, not bitwise.
//   - Reproducibility: for every kind, mode and l, rerunning a sharded op
//     yields bit-identical values and identical per-shard timelines.
//   - Cycles: the reduced count is a deterministic function of (shapes, l,
//     machine config) — identical across reruns and across concurrent /
//     sequential shard execution. At l = 1 it equals single-device
//     execution exactly (no transfer legs).
//   - Model: for GEMM the analytic timeline (model::shard_gemm_model_cycles)
//     reproduces the channel-driven simulation cycle-for-cycle under the
//     fixed tune policy — the PR-5 discipline extended to the multi-FPGA
//     level. GEMV engines carry pipeline-tail cycles the closed-form
//     gemv_model_cycles omits, so their shard model is ranking-grade, not
//     exact.
//
// Clock domains: the scheduler rebuilds its System with the node clock
// overridden to the op's engine clock, so link words/cycle and engine
// cycles share one domain (the same convention MmHierConfig uses for its
// own link rates).
#pragma once

#include <cstddef>
#include <vector>

#include "host/op.hpp"
#include "host/runtime.hpp"
#include "machine/system.hpp"
#include "model/perf_model.hpp"

namespace xd::host {

/// One shard: its placement on the chain and its slice of the timeline.
struct ShardPiece {
  unsigned index = 0;    ///< shard number == global chain position
  unsigned chassis = 0;  ///< chassis holding the node
  unsigned node = 0;     ///< node index within the chassis
  std::size_t row0 = 0;  ///< first row of the panel
  std::size_t rows = 0;  ///< rows in the panel
  u64 scatter_ready = 0; ///< cycle the operand panel has fully arrived
  u64 engine_cycles = 0; ///< planned/observed engine cycles for the panel
  u64 done = 0;          ///< cycle the result panel is back at node 0
};

/// One l the planner considered, with its modeled total cycles.
struct ShardCandidate {
  unsigned l = 1;
  u64 model_cycles = 0;
};

/// The placement/split decision for one descriptor. Like a host::Plan it is
/// value-independent: it depends only on shapes, the machine configuration
/// and the tune policy.
struct ShardPlan {
  OpKind kind = OpKind::Gemm;
  std::size_t rows = 0;  ///< rows being split (GEMM: n)
  std::size_t n = 0;     ///< GEMM edge / GEMV cols
  unsigned l = 1;        ///< chosen shard count
  double clock_mhz = 0.0;            ///< engine clock == System node clock
  std::vector<ShardPiece> pieces;    ///< l entries, ascending index
  std::vector<ShardCandidate> candidates;  ///< every l the tuner scored
  u64 model_cycles = 0;  ///< analytic total for the chosen l
};

/// A sharded run: the reduced result plus the per-shard evidence.
struct ShardOutcome {
  std::vector<double> values;  ///< reduced row-major C (or y), ascending rows
  PerfReport report;           ///< cycles = sharded makespan at node 0
  std::vector<Outcome> shards; ///< per-shard engine outcomes, ascending
  ShardPlan plan;              ///< with observed per-piece timeline filled in
  double link_words = 0.0;         ///< words moved over intra-chassis links
  double interchassis_words = 0.0; ///< words moved over inter-chassis links
};

/// Splits one GEMM/GEMV across the FPGAs of a machine::System. Supported
/// descriptors: square OpKind::Gemm and OpKind::Gemv with GemvArch::Tree
/// (the column architecture's rows/k >= adder-depth hazard bound breaks
/// under row splitting), both with Placement::Sram — for a sharded op the
/// scatter legs ARE the staging. Thread-compatible: one scheduler may be
/// used from one thread at a time; shard execution itself fans out on the
/// runtime's pool.
class ShardScheduler {
 public:
  /// `sys` describes the installation topology (chassis count, nodes per
  /// chassis, link bandwidths); its node clock is overridden per op.
  explicit ShardScheduler(Runtime& rt, machine::SystemConfig sys = {});

  /// Choose l (forced_l == 0: smallest modeled-fastest l among
  /// 1..min(total FPGAs, rows)) and lay out the shards. Engine cycles in
  /// the returned pieces are the analytic per-panel estimates.
  ShardPlan plan(const OpDesc& desc, unsigned forced_l = 0);

  /// Plan, scatter, execute concurrently, gather, reduce.
  ShardOutcome run(const OpDesc& desc, unsigned forced_l = 0);

  const machine::SystemConfig& system_config() const { return sys_; }
  Runtime& runtime() { return rt_; }

 private:
  struct EngineParams;  // resolved per-shard plan facts (clock, k, ...)

  EngineParams resolve_engine(const OpDesc& desc, std::size_t shard_rows);
  u64 modeled_total(const OpDesc& desc, unsigned l, const EngineParams& ep);

  Runtime& rt_;
  machine::SystemConfig sys_;
};

}  // namespace xd::host
