#include "host/graph.hpp"

#include <array>
#include <sstream>
#include <unordered_map>

#include "common/util.hpp"

namespace xd::host {

namespace {

void require(bool ok, const std::string& what) {
  if (!ok) throw ConfigError(what);
}

std::size_t checked_product(std::size_t x, std::size_t y, const char* what) {
  if (x != 0 && y > static_cast<std::size_t>(-1) / x)
    throw ConfigError(cat(what, ": shape product overflows size_t"));
  return x * y;
}

}  // namespace

const char* operand_slot_name(OperandSlot slot) {
  switch (slot) {
    case OperandSlot::A: return "a";
    case OperandSlot::B: return "b";
    case OperandSlot::X: return "x";
  }
  return "?";
}

bool operand_slot_from_name(std::string_view name, OperandSlot& out) {
  if (name == "a") { out = OperandSlot::A; return true; }
  if (name == "b") { out = OperandSlot::B; return true; }
  if (name == "x") { out = OperandSlot::X; return true; }
  return false;
}

std::size_t op_output_len(const OpDesc& desc) {
  switch (desc.kind) {
    case OpKind::Dot: return 1;
    case OpKind::DotBatch: return desc.batch;
    case OpKind::Gemv:
    case OpKind::GemvAuto:
    case OpKind::Spmxv: return desc.rows;
    case OpKind::Gemm:
    case OpKind::GemmArray:
    case OpKind::GemmMulti:
      return checked_product(desc.n, desc.n, "graph");
  }
  return 0;
}

std::size_t op_slot_len(const OpDesc& desc, OperandSlot slot) {
  switch (desc.kind) {
    case OpKind::Dot:
      return slot == OperandSlot::X ? 0 : desc.cols;
    case OpKind::DotBatch:
      return 0;  // nested operand lists are not edge-feedable
    case OpKind::Gemv:
    case OpKind::GemvAuto:
      if (slot == OperandSlot::A)
        return checked_product(desc.rows, desc.cols, "graph");
      return slot == OperandSlot::X ? desc.cols : 0;
    case OpKind::Spmxv:
      // The CRS matrix is structural, not a dense value vector: only x.
      return slot == OperandSlot::X ? desc.cols : 0;
    case OpKind::Gemm:
    case OpKind::GemmArray:
    case OpKind::GemmMulti:
      if (slot == OperandSlot::X) return 0;
      return checked_product(desc.n, desc.n, "graph");
  }
  return 0;
}

namespace {

/// The operand pointer a slot maps onto (null for an absent slot).
const std::vector<double>* slot_pointer(const OpDesc& desc, OperandSlot slot) {
  switch (slot) {
    case OperandSlot::A: return desc.a;
    case OperandSlot::B: return desc.b;
    case OperandSlot::X: return desc.x;
  }
  return nullptr;
}

}  // namespace

void GraphDesc::validate() const {
  require(!nodes.empty(), "graph: no nodes");

  // Which slots of which nodes are edge-fed, with duplicate detection.
  std::vector<std::array<bool, 3>> fed(nodes.size(), {false, false, false});
  for (const auto& e : edges) {
    require(e.from < nodes.size() && e.to < nodes.size(),
            "graph: edge references a node out of range");
    require(e.from != e.to, "graph: self-edge");
    auto& f = fed[e.to][static_cast<std::size_t>(e.slot)];
    require(!f, cat("graph: node ", e.to, " slot ", operand_slot_name(e.slot),
                    " fed by more than one edge"));
    f = true;

    const std::size_t want = op_slot_len(nodes[e.to].desc, e.slot);
    require(want != 0,
            cat("graph: ", op_kind_name(nodes[e.to].desc.kind),
                " node has no fusable operand slot '",
                operand_slot_name(e.slot), "'"));
    const std::size_t have = op_output_len(nodes[e.from].desc);
    require(have == want,
            cat("graph: edge ", e.from, " -> ", e.to, " slot ",
                operand_slot_name(e.slot), ": producer emits ", have,
                " values but the slot expects ", want));
  }

  // Acyclicity (throws on a cycle).
  (void)topo_order();

  // Per-node operand checks. A node with no incoming edges gets the full
  // OpDesc::validate(); an edge-fed node's remaining (external) slots must
  // at least be present — the runtime re-validates the patched descriptor
  // with the forwarded operands in place before the engine runs.
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const OpDesc& d = nodes[i].desc;
    const auto& f = fed[i];
    if (!f[0] && !f[1] && !f[2]) {
      d.validate();
      continue;
    }
    for (OperandSlot s : {OperandSlot::A, OperandSlot::B, OperandSlot::X}) {
      if (fed[i][static_cast<std::size_t>(s)]) continue;
      if (op_slot_len(d, s) == 0) continue;  // op has no such slot
      require(slot_pointer(d, s) != nullptr,
              cat("graph: node ", i, " (", op_kind_name(d.kind),
                  "): operand '", operand_slot_name(s),
                  "' is neither provided nor edge-fed"));
    }
    if (d.kind == OpKind::Spmxv) require(d.sparse, "spmxv: missing operands");
  }
}

std::vector<std::size_t> GraphDesc::topo_order() const {
  std::vector<std::size_t> indeg(nodes.size(), 0);
  for (const auto& e : edges) ++indeg[e.to];

  // Kahn's algorithm, lowest ready index first: planning and execution
  // order are deterministic functions of the graph alone.
  std::vector<std::size_t> order;
  order.reserve(nodes.size());
  std::vector<bool> done(nodes.size(), false);
  for (std::size_t step = 0; step < nodes.size(); ++step) {
    std::size_t pick = nodes.size();
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (!done[i] && indeg[i] == 0) { pick = i; break; }
    }
    if (pick == nodes.size()) throw ConfigError("graph: dependency cycle");
    done[pick] = true;
    order.push_back(pick);
    for (const auto& e : edges)
      if (e.from == pick) --indeg[e.to];
  }
  return order;
}

std::string GraphDesc::signature() const {
  // External operands that alias the same vector plan differently (a chain
  // stages a shared operand once), so the aliasing pattern is part of the
  // signature. Pointers are mapped to first-occurrence ordinals: the
  // signature depends on the sharing structure, never on addresses.
  std::unordered_map<const void*, int> ord;
  auto id = [&](const void* p) -> std::string {
    if (!p) return "-";
    auto [it, inserted] = ord.emplace(p, static_cast<int>(ord.size()));
    (void)inserted;
    return std::to_string(it->second);
  };

  std::ostringstream os;
  os << "g1;";
  for (const auto& node : nodes) {
    const OpDesc& d = node.desc;
    os << op_kind_name(d.kind) << ':' << placement_name(d.placement) << ':'
       << gemv_arch_name(d.arch) << ':' << d.rows << 'x' << d.cols << ':'
       << d.n << ':' << d.batch << ':' << (node.keep ? 'k' : 't') << ':'
       << id(d.a) << ',' << id(d.b) << ',' << id(d.x) << ',' << id(d.sparse)
       << ',' << id(d.us) << ',' << id(d.vs) << ';';
  }
  os << '|';
  for (const auto& e : edges)
    os << e.from << '>' << e.to << ':' << operand_slot_name(e.slot) << ';';
  return os.str();
}

}  // namespace xd::host
