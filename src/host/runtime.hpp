// Runtime layer: the plan/execute engine behind host::Context.
//
// A Runtime binds one machine configuration to the process-wide ThreadPool
// and a PlanCache. Operations arrive as OpDescs and leave as Outcomes:
//
//   host::Runtime rt(cfg);
//   auto fut = rt.submit(OpDesc::gemv(a, n, n, x));   // async, pooled
//   Outcome out = fut.get();                          // value or exception
//
// run() executes on the calling thread; submit() executes on the shared
// worker pool. Engine simulations are deterministic and self-contained, so
// N concurrent submits produce bit-identical values and cycle counts to N
// sequential runs — tests/test_runtime.cpp holds this invariant.
//
// Thread-safety contract: Runtime itself is thread-safe (the plan cache is
// mutex-guarded, the stats are atomic), and so is telemetry on a shared
// session. run() records directly into the session under its lock; a
// submitted job records into a thread-local shard session and folds it in
// at completion (Session::merge), so concurrent submits observe full
// spans and metrics — there is no detached mode. Recording never perturbs
// outcomes: telemetry is not part of the PlanKey and engines compute
// identically with or without it (the fuzz harness's telemetry-neutrality
// invariant covers both run() and submit()).
//
// Every operation also stamps a telemetry::TraceContext (per-op id +
// submit/dequeue/plan/exec/complete wall-clock edges) and deposits it in
// the session's flight recorder; queue-wait / exec / end-to-end latencies
// feed the host.runtime.* histograms with p50/p95/p99 exports.
//
// Operand vectors referenced by an OpDesc must stay alive until its future
// has been consumed.
#pragma once

#include <future>
#include <vector>

#include "common/thread_pool.hpp"
#include "host/plan.hpp"

namespace xd::telemetry {
struct TraceContext;
}

namespace xd::host {

/// An interned plan: shared, immutable, and exempt from plan-cache
/// eviction. Hot paths (the serve daemon, run_batch, iterative solvers)
/// resolve their shapes once via Runtime::pin_plan and hand the handle
/// back to run()/submit(), skipping the mutex-guarded LRU probe per op.
/// A handle is purely a fast path: if it does not match the descriptor's
/// key at execution time (different shape, or a ScopedBackend override
/// active), the runtime falls back to the normal cache lookup — outcomes
/// are always identical with or without the handle.
class PlanHandle {
 public:
  PlanHandle() = default;
  bool valid() const { return plan_ != nullptr; }
  const Plan& plan() const { return *plan_; }

 private:
  friend class Runtime;
  explicit PlanHandle(std::shared_ptr<const Plan> plan)
      : plan_(std::move(plan)) {}
  std::shared_ptr<const Plan> plan_;
};

struct RuntimeStats {
  u64 submitted = 0;  ///< jobs handed to submit()/run_batch()
  u64 completed = 0;  ///< jobs finished successfully (sync + async)
  u64 failed = 0;     ///< jobs that ended in an exception
  u64 queued = 0;     ///< submitted but not yet picked up by a worker
  u64 in_flight = 0;  ///< currently executing on a worker
};

class Runtime {
 public:
  /// `pool` defaults to the process-wide shared pool.
  explicit Runtime(const ContextConfig& cfg, ThreadPool* pool = nullptr);

  /// Execute on the calling thread, with telemetry recorded directly into
  /// the configuration's session under its lock (the synchronous Context
  /// facade path — lane 0 of the span timeline).
  Outcome run(const OpDesc& desc);

  /// Execute on the worker pool; the future carries the Outcome or the
  /// exception (ConfigError and friends) the job raised. Telemetry records
  /// into a thread-local shard and merges into the session at completion,
  /// on lane worker-id + 1.
  std::future<Outcome> submit(const OpDesc& desc);

  /// Build (or adopt) and pin the plan for `desc`'s shape: the entry moves
  /// out of the LRU eviction order into the pinned set, and the returned
  /// handle short-circuits the plan probe when passed to run()/submit().
  PlanHandle pin_plan(const OpDesc& desc);

  /// run()/submit() with a pinned plan: identical semantics and outcomes,
  /// minus the per-op plan-cache probe when the handle matches.
  Outcome run(const OpDesc& desc, const PlanHandle& plan);
  std::future<Outcome> submit(const OpDesc& desc, const PlanHandle& plan);

  /// Submit every descriptor, then wait for all of them in order. Throws
  /// the first failed job's exception after all jobs settled. Runs of
  /// consecutive descriptors with identical PlanKeys take a fast path: one
  /// pooled job stages the whole run under a single plan resolution (each
  /// op keeps its own Outcome, trace context and flight-recorder entry).
  std::vector<Outcome> run_batch(const std::vector<OpDesc>& descs);

  /// Execute an op DAG on the calling thread: plan the chain partition
  /// (cached by graph signature), then run the nodes in topological order
  /// with producer results forwarded into edge-fed operand slots and the
  /// fused staging budgets from the GraphPlan in place of the per-op ones.
  /// Node outcomes are bit-identical to per-op execution — fusion changes
  /// staging cycle accounting, never values or compute cycles.
  GraphOutcome run_graph(const GraphDesc& g);

  /// run_graph on the worker pool; one job executes the whole graph (fused
  /// chains are sequential by construction). Same telemetry shard/merge
  /// discipline as submit().
  std::future<GraphOutcome> submit_graph(const GraphDesc& g);

  PlanCache& plan_cache() { return cache_; }
  const PlanCache& plan_cache() const { return cache_; }
  RuntimeStats stats() const;
  const ContextConfig& config() const { return cfg_; }
  unsigned workers() const { return pool_->size(); }

  /// Set the host.runtime.* gauges (and the cache's host.plan.*) from the
  /// current counters. Called automatically at the end of every run() and
  /// every completed submit(). The caller must hold the session's lock or
  /// otherwise have exclusive access to it.
  void publish(telemetry::Session& tel) const;

 private:
  /// `pinned` (optional) bypasses the cache probe when its key matches the
  /// descriptor's; on mismatch the normal lookup runs.
  Outcome execute(const OpDesc& desc, telemetry::Session* tel,
                  telemetry::TraceContext* tc = nullptr,
                  const Plan* pinned = nullptr);
  Outcome run_impl(const OpDesc& desc, const Plan* pinned);
  std::future<Outcome> submit_impl(const OpDesc& desc,
                                   std::shared_ptr<const Plan> pinned);
  /// The worker-side body of an asynchronous op: stats, trace context,
  /// shard telemetry, execute, merge. Shared by submit() and the run_batch
  /// same-plan fast path.
  Outcome async_op(const OpDesc& desc, const Plan* pinned,
                   telemetry::Session* tel, bool trace_on, u64 op_id,
                   u64 submit_ns);
  Outcome run_engine(const Plan& plan, const OpDesc& desc,
                     telemetry::Session* tel);
  GraphOutcome execute_graph(const GraphDesc& g, telemetry::Session* tel,
                             telemetry::TraceContext* tc = nullptr);
  void observe_latency(telemetry::Session& tel,
                       const telemetry::TraceContext& tc) const;

  ContextConfig cfg_;
  ThreadPool* pool_;
  PlanCache cache_;
  std::atomic<u64> submitted_{0};
  std::atomic<u64> completed_{0};
  std::atomic<u64> failed_{0};
  std::atomic<u64> queued_{0};
  std::atomic<u64> in_flight_{0};
};

}  // namespace xd::host
