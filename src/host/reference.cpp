#include "host/reference.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/random.hpp"
#include "common/util.hpp"

namespace xd::host {

double ref_dot(const std::vector<double>& u, const std::vector<double>& v) {
  require(u.size() == v.size(), "ref_dot: length mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < u.size(); ++i) s += u[i] * v[i];
  return s;
}

std::vector<double> ref_gemv(const std::vector<double>& a, std::size_t rows,
                             std::size_t cols, const std::vector<double>& x) {
  require(a.size() == rows * cols && x.size() == cols, "ref_gemv: size mismatch");
  std::vector<double> y(rows, 0.0);
  for (std::size_t i = 0; i < rows; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < cols; ++j) s += a[i * cols + j] * x[j];
    y[i] = s;
  }
  return y;
}

std::vector<double> ref_gemm(const std::vector<double>& a,
                             const std::vector<double>& b, std::size_t n) {
  require(a.size() == n * n && b.size() == n * n, "ref_gemm: size mismatch");
  std::vector<double> c(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t q = 0; q < n; ++q) {
      const double aiq = a[i * n + q];
      for (std::size_t j = 0; j < n; ++j) c[i * n + j] += aiq * b[q * n + j];
    }
  }
  return c;
}

std::vector<double> blocked_gemm(const std::vector<double>& a,
                                 const std::vector<double>& b, std::size_t n,
                                 std::size_t block) {
  require(a.size() == n * n && b.size() == n * n, "blocked_gemm: size mismatch");
  require(block >= 1, "blocked_gemm: block must be positive");
  std::vector<double> c(n * n, 0.0);
  for (std::size_t ii = 0; ii < n; ii += block) {
    const std::size_t iend = std::min(ii + block, n);
    for (std::size_t qq = 0; qq < n; qq += block) {
      const std::size_t qend = std::min(qq + block, n);
      for (std::size_t jj = 0; jj < n; jj += block) {
        const std::size_t jend = std::min(jj + block, n);
        for (std::size_t i = ii; i < iend; ++i) {
          for (std::size_t q = qq; q < qend; ++q) {
            const double aiq = a[i * n + q];
            double* crow = &c[i * n];
            const double* brow = &b[q * n];
            for (std::size_t j = jj; j < jend; ++j) crow[j] += aiq * brow[j];
          }
        }
      }
    }
  }
  return c;
}

double max_abs_diff(const std::vector<double>& x, const std::vector<double>& y) {
  require(x.size() == y.size(), "max_abs_diff: length mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) m = std::max(m, std::fabs(x[i] - y[i]));
  return m;
}

double measure_cpu_gemm_gflops(std::size_t n, int reps, std::size_t block) {
  Rng rng(0xc9u);
  const auto a = rng.matrix(n, n);
  const auto b = rng.matrix(n, n);
  double best_s = 1e30;
  volatile double sink = 0.0;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto c = blocked_gemm(a, b, n, block);
    const auto t1 = std::chrono::steady_clock::now();
    sink = sink + c[n / 2];  // keep the optimizer honest
    best_s = std::min(best_s, std::chrono::duration<double>(t1 - t0).count());
  }
  const double flops = 2.0 * static_cast<double>(n) * n * n;
  return flops / best_s / 1e9;
}

}  // namespace xd::host
