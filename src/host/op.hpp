// Unified operation / outcome layer for the host runtime.
//
// Every operation the library implements is described by one OpDesc (op
// kind, shapes, placement, architecture choice, pointers to the operands)
// and produces one Outcome (result values + PerfReport + the op-specific
// extras). The six engines keep their native outcome structs — those are
// the per-op data — and are adapted into the unified type by the
// to_outcome() overloads; the thin as_*() accessors convert back, so the
// Context facade preserves today's return types exactly.
//
// OpDesc does not own its operands: the caller keeps the vectors alive
// until the operation's Outcome (or future) has been consumed. The
// factories below are the supported way to build descriptors.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "blas1/dot_engine.hpp"
#include "blas2/mxv_tree.hpp"
#include "blas2/spmxv.hpp"
#include "blas3/mm_array.hpp"
#include "blas3/mm_hier.hpp"
#include "blas3/mm_multi.hpp"
#include "host/config.hpp"

namespace xd::host {

enum class OpKind {
  Dot,        ///< u . v (Level 1)
  DotBatch,   ///< batched dot products, one reduction set each
  Gemv,       ///< y = A x (Level 2, tree or column arch)
  GemvAuto,   ///< GEMV with automatic blocked fallback
  Spmxv,      ///< sparse y = A x (CRS, tree arch)
  Gemm,       ///< C = A B, hierarchical SRAM-blocked design (Level 3)
  GemmArray,  ///< C = A B, cycle-accurate single-FPGA PE array
  GemmMulti,  ///< C = A B, cycle-accurate multi-FPGA pipeline
};

const char* op_kind_name(OpKind kind);
const char* placement_name(Placement p);
const char* gemv_arch_name(GemvArch a);

// Parse hooks for the serialized descriptor form (the fuzz corpus and any
// future wire format). Return false on an unknown name.
bool op_kind_from_name(std::string_view name, OpKind& out);
bool placement_from_name(std::string_view name, Placement& out);
bool gemv_arch_from_name(std::string_view name, GemvArch& out);

/// Result of a single dot product. (`DotCall` in context.hpp is the
/// deprecated alias kept for source compatibility.)
struct DotResult {
  double value = 0.0;
  PerfReport report;
};

/// The one outcome type every engine run is adapted into. `values` holds
/// the numeric payload (the dot results, y, or row-major C); op-specific
/// extras keep their engine-native meaning and are defaulted elsewhere.
struct Outcome {
  OpKind kind = OpKind::Dot;
  std::vector<double> values;
  PerfReport report;

  // GemmMulti extras (see blas3::MmMultiOutcome).
  std::vector<blas3::FpgaStats> per_fpga;
  double dram_words = 0.0;
  double link_words = 0.0;

  // Gemm (hierarchical) model extras (see blas3::MmHierOutcome).
  double required_dram_words_per_cycle = 0.0;
  double required_link_words_per_cycle = 0.0;
  double required_sram_words_per_cycle = 0.0;
  double sram_panel_words = 0.0;

  // Thin per-op accessors: today's return types, rebuilt from the unified
  // fields. The &&-qualified ones move the payload out.
  DotResult as_dot() const;
  blas1::DotOutcome as_dot_batch() &&;
  blas2::MxvOutcome as_mxv() &&;
  blas3::MmOutcome as_mm() &&;
  blas3::MmHierOutcome as_mm_hier() &&;
  blas3::MmMultiOutcome as_mm_multi() &&;
};

// Adapters: the engines' native outcomes -> the unified Outcome.
Outcome to_outcome(blas1::DotOutcome&& o, OpKind kind = OpKind::DotBatch);
Outcome to_outcome(blas2::MxvOutcome&& o, OpKind kind = OpKind::Gemv);
Outcome to_outcome(blas3::MmOutcome&& o);
Outcome to_outcome(blas3::MmHierOutcome&& o);
Outcome to_outcome(blas3::MmMultiOutcome&& o);

/// One operation, fully described. Build with the factories; shapes live
/// here (they key the plan cache), operands stay caller-owned.
struct OpDesc {
  OpKind kind = OpKind::Dot;
  Placement placement = Placement::Sram;
  GemvArch arch = GemvArch::Tree;
  std::size_t rows = 0;  ///< GEMV: rows of A; Gemm: panel rows (0 = square)
  std::size_t cols = 0;  ///< dot: n; GEMV: cols of A
  std::size_t n = 0;     ///< GEMM: matrix edge
  std::size_t batch = 0; ///< DotBatch: number of pairs

  const std::vector<double>* a = nullptr;  ///< matrix A (or dot operand u)
  const std::vector<double>* b = nullptr;  ///< matrix B (or dot operand v)
  const std::vector<double>* x = nullptr;  ///< vector operand
  const blas2::CrsMatrix* sparse = nullptr;
  const std::vector<std::vector<double>>* us = nullptr;
  const std::vector<std::vector<double>>* vs = nullptr;

  static OpDesc dot(const std::vector<double>& u, const std::vector<double>& v,
                    Placement src = Placement::Sram);
  static OpDesc dot_batch(const std::vector<std::vector<double>>& us,
                          const std::vector<std::vector<double>>& vs);
  static OpDesc gemv(const std::vector<double>& a, std::size_t rows,
                     std::size_t cols, const std::vector<double>& x,
                     Placement src = Placement::Sram,
                     GemvArch arch = GemvArch::Tree);
  static OpDesc gemv_auto(const std::vector<double>& a, std::size_t rows,
                          std::size_t cols, const std::vector<double>& x);
  static OpDesc spmxv(const blas2::CrsMatrix& a, const std::vector<double>& x);
  static OpDesc gemm(const std::vector<double>& a, const std::vector<double>& b,
                     std::size_t n);
  /// Row-panel GEMM: C = A B where A is rows x n and B is n x n. This is
  /// the sub-op shape the shard scheduler dispatches (hierarchical engine
  /// only); rows == 0 is reserved to mean "square" on a plain gemm().
  static OpDesc gemm_panel(const std::vector<double>& a, std::size_t rows,
                           const std::vector<double>& b, std::size_t n);
  static OpDesc gemm_array(const std::vector<double>& a,
                           const std::vector<double>& b, std::size_t n);
  static OpDesc gemm_multi(const std::vector<double>& a,
                           const std::vector<double>& b, std::size_t n);

  /// Check the operand pointers/sizes against the declared shapes; throws
  /// ConfigError on a mismatch, on a shape product that overflows size_t
  /// (a wrapped rows*cols could otherwise alias a tiny operand and send the
  /// engine out of bounds), or on a structurally invalid sparse matrix.
  /// Runs before any plan is built.
  void validate() const;
};

}  // namespace xd::host
