#include "host/context.hpp"

#include "blas2/blocking.hpp"
#include "telemetry/session.hpp"

#include <cmath>

namespace xd::host {

Context::Context(const ContextConfig& cfg) : cfg_(cfg) {}

namespace {

/// Cycles to stage `words` across a link of `words_per_cycle` (DRAM<->SRAM
/// DMA; the FPGA design is idle during staging, per the Table 4 methodology).
u64 staging_cycles(double words, double words_per_cycle) {
  return static_cast<u64>(std::ceil(words / words_per_cycle));
}

}  // namespace

DotCall Context::dot(const std::vector<double>& u, const std::vector<double>& v,
                     Placement src) const {
  // Staging happens (and is recorded) before the engine runs, so the
  // "staging" span precedes the engine's "compute" span on the timeline.
  u64 staging = 0;
  double dram_words = 0.0;
  if (src == Placement::Dram) {
    const double wpc = words_per_cycle(cfg_.gemv_dram_bytes_per_s, cfg_.dot_clock_mhz);
    dram_words = static_cast<double>(2 * u.size());
    staging = staging_cycles(dram_words, wpc);
    if (cfg_.telemetry) {
      cfg_.telemetry->phase("staging", staging);
      cfg_.telemetry->gauge("mem.dram.dot.words").set(dram_words);
    }
  }
  blas1::DotOutcome out = dot_batch({u}, {v});
  DotCall call;
  call.value = out.results.at(0);
  call.report = out.report;
  call.report.staging_cycles = staging;
  call.report.cycles += staging;
  call.report.dram_words = dram_words;
  return call;
}

blas1::DotOutcome Context::dot_batch(
    const std::vector<std::vector<double>>& us,
    const std::vector<std::vector<double>>& vs) const {
  blas1::DotConfig dc;
  dc.k = cfg_.dot_k;
  dc.adder_stages = cfg_.adder_stages;
  dc.multiplier_stages = cfg_.multiplier_stages;
  dc.mem_words_per_cycle = words_per_cycle(cfg_.dot_mem_bytes_per_s, cfg_.dot_clock_mhz);
  dc.clock_mhz = cfg_.dot_clock_mhz;
  dc.telemetry = cfg_.telemetry;
  blas1::DotEngine engine(dc);
  return engine.run(us, vs);
}

blas2::MxvOutcome Context::gemv(const std::vector<double>& a, std::size_t rows,
                                std::size_t cols, const std::vector<double>& x,
                                Placement src, GemvArch arch) const {
  // Record staging ahead of the engine run (Table 4: 6.4 of the 8.0 ms GEMV
  // latency is this data movement) so the spans tile the reported total.
  u64 staging = 0;
  double dram_words = 0.0;
  if (src == Placement::Dram) {
    const double wpc =
        words_per_cycle(cfg_.gemv_dram_bytes_per_s, cfg_.gemv_clock_mhz);
    dram_words = static_cast<double>(rows * cols + rows);
    staging = staging_cycles(dram_words, wpc);
    if (cfg_.telemetry) {
      cfg_.telemetry->phase("staging", staging);
      cfg_.telemetry->gauge("mem.dram.gemv.words").set(dram_words);
    }
  }

  blas2::MxvOutcome out;
  if (arch == GemvArch::Tree) {
    blas2::MxvTreeConfig tc;
    tc.k = cfg_.gemv_k;
    tc.adder_stages = cfg_.adder_stages;
    tc.multiplier_stages = cfg_.multiplier_stages;
    tc.mem_words_per_cycle = static_cast<double>(cfg_.gemv_k);  // 1 word/bank
    tc.clock_mhz = cfg_.gemv_clock_mhz;
    tc.telemetry = cfg_.telemetry;
    blas2::MxvTreeEngine engine(tc);
    out = engine.run(a, rows, cols, x);
  } else {
    blas2::MxvColConfig cc;
    cc.k = cfg_.gemv_k;
    cc.adder_stages = cfg_.adder_stages;
    cc.multiplier_stages = cfg_.multiplier_stages;
    cc.mem_words_per_cycle = static_cast<double>(cfg_.gemv_k) + 1.0;
    cc.clock_mhz = cfg_.gemv_clock_mhz;
    cc.telemetry = cfg_.telemetry;
    blas2::MxvColEngine engine(cc);
    out = engine.run(a, rows, cols, x);
  }

  out.report.staging_cycles = staging;
  out.report.cycles += staging;
  out.report.dram_words = dram_words;
  return out;
}

blas2::MxvOutcome Context::spmxv(const blas2::CrsMatrix& a,
                                 const std::vector<double>& x) const {
  require(a.cols <= gemv_onchip_x_capacity(),
          "SpMXV: x does not fit the device's on-chip memory");
  blas2::SpmxvConfig sc;
  sc.k = cfg_.gemv_k;
  sc.adder_stages = cfg_.adder_stages;
  sc.multiplier_stages = cfg_.multiplier_stages;
  // Value + index pairs: two SRAM banks feed one CRS element per cycle pair.
  sc.mem_elements_per_cycle = static_cast<double>(cfg_.gemv_k) / 2.0;
  sc.clock_mhz = cfg_.gemv_clock_mhz;
  sc.telemetry = cfg_.telemetry;
  blas2::SpmxvEngine engine(sc);
  return engine.run(a, x);
}

std::size_t Context::choose_panel_edge(std::size_t n) const {
  // Largest SRAM panel edge <= the configured one that tiles both the m x m
  // on-chip blocks and the problem (and gives each FPGA a block column).
  const std::size_t min_b = static_cast<std::size_t>(cfg_.mm_m) * cfg_.mm_l;
  for (std::size_t b = std::min(cfg_.mm_b, n); b >= min_b; b -= cfg_.mm_m) {
    if (b % cfg_.mm_m == 0 && n % b == 0) return b;
  }
  throw ConfigError(cat("no SRAM panel edge tiles n=", n, " with m=", cfg_.mm_m,
                        ", l=", cfg_.mm_l,
                        " (pad the matrices or use the compat layer)"));
}

blas3::MmHierOutcome Context::gemm(const std::vector<double>& a,
                                   const std::vector<double>& b,
                                   std::size_t n) const {
  blas3::MmHierConfig hc;
  hc.l = cfg_.mm_l;
  hc.k = cfg_.mm_k;
  hc.m = cfg_.mm_m;
  hc.b = n % cfg_.mm_b == 0 ? cfg_.mm_b : choose_panel_edge(n);
  hc.adder_stages = cfg_.mm_adder_stages;
  hc.multiplier_stages = cfg_.multiplier_stages;
  hc.clock_mhz = cfg_.mm_clock_mhz;
  hc.dram_words_per_cycle = words_per_cycle(cfg_.mm_dram_bytes_per_s, cfg_.mm_clock_mhz);
  hc.link_words_per_cycle = words_per_cycle(cfg_.mm_link_bytes_per_s, cfg_.mm_clock_mhz);
  hc.telemetry = cfg_.telemetry;
  blas3::MmHierEngine engine(hc);
  return engine.run(a, b, n);
}

blas3::MmOutcome Context::gemm_array(const std::vector<double>& a,
                                     const std::vector<double>& b,
                                     std::size_t n) const {
  blas3::MmArrayConfig mc;
  mc.k = cfg_.mm_k;
  mc.m = cfg_.mm_m;
  mc.adder_stages = cfg_.mm_adder_stages;
  mc.multiplier_stages = cfg_.multiplier_stages;
  mc.mem_words_per_cycle = 4.0;  // four SRAM banks feed the standalone array
  mc.clock_mhz = cfg_.mm_clock_mhz;
  mc.telemetry = cfg_.telemetry;
  blas3::MmArrayEngine engine(mc);
  return engine.run(a, b, n);
}

blas3::MmMultiOutcome Context::gemm_multi(const std::vector<double>& a,
                                          const std::vector<double>& b,
                                          std::size_t n) const {
  blas3::MmMultiConfig mc;
  mc.l = cfg_.mm_l;
  mc.k = cfg_.mm_k;
  mc.m = cfg_.mm_m;
  mc.b = cfg_.mm_b;
  mc.clock_mhz = cfg_.mm_clock_mhz;
  mc.dram_words_per_cycle = words_per_cycle(cfg_.mm_dram_bytes_per_s, cfg_.mm_clock_mhz);
  mc.link_words_per_cycle = words_per_cycle(cfg_.mm_link_bytes_per_s, cfg_.mm_clock_mhz);
  mc.telemetry = cfg_.telemetry;
  blas3::MmMultiEngine engine(mc);
  return engine.run(a, b, n);
}

namespace {
/// Fixed BRAM overheads of the tree GEMV design besides the x store: the
/// two alpha^2 reduction buffers and the small staging FIFOs.
u64 gemv_buffer_words(unsigned adder_stages) {
  return 2ull * adder_stages * adder_stages + 128;
}
}  // namespace

mem::BramBudget Context::gemv_bram_plan(std::size_t cols) const {
  mem::BramBudget plan(cfg_.device);
  plan.allocate("reduction buffers (2 alpha^2)",
                2ull * cfg_.adder_stages * cfg_.adder_stages);
  plan.allocate("staging FIFOs", 128);
  plan.allocate("x storage", cols);
  return plan;
}

mem::BramBudget Context::gemm_bram_plan() const {
  mem::BramBudget plan(cfg_.device);
  plan.allocate("C' block store (m^2)", static_cast<u64>(cfg_.mm_m) * cfg_.mm_m);
  plan.allocate("C block store (m^2)", static_cast<u64>(cfg_.mm_m) * cfg_.mm_m);
  plan.allocate("B registers (2m)", 2ull * cfg_.mm_m);
  return plan;
}

std::size_t Context::gemv_onchip_x_capacity() const {
  const u64 cap = cfg_.device.bram_words();
  const u64 fixed = gemv_buffer_words(cfg_.adder_stages);
  return cap > fixed ? static_cast<std::size_t>(cap - fixed) : 0;
}

blas2::MxvOutcome Context::gemv_auto(const std::vector<double>& a,
                                     std::size_t rows, std::size_t cols,
                                     const std::vector<double>& x) const {
  const std::size_t capacity = gemv_onchip_x_capacity();
  require(capacity > 0, "device has no on-chip memory left for x");
  if (cols <= capacity) return gemv(a, rows, cols, x);

  blas2::MxvTreeConfig tc;
  tc.k = cfg_.gemv_k;
  tc.adder_stages = cfg_.adder_stages;
  tc.multiplier_stages = cfg_.multiplier_stages;
  tc.mem_words_per_cycle = static_cast<double>(cfg_.gemv_k);
  tc.clock_mhz = cfg_.gemv_clock_mhz;
  tc.telemetry = cfg_.telemetry;
  return blas2::run_blocked_gemv_tree(tc, capacity, a, rows, cols, x);
}

machine::DesignArea Context::dot_design_area() const {
  return area_.dot_design(cfg_.dot_k);
}

machine::DesignArea Context::gemv_design_area() const {
  return area_.mxv_design_xd1(cfg_.gemv_k);
}

machine::DesignArea Context::gemm_design_area() const {
  return area_.mm_design_xd1(cfg_.mm_k);
}

}  // namespace xd::host
