#include "host/context.hpp"

#include "host/plan.hpp"

namespace xd::host {

Context::Context(const ContextConfig& cfg)
    : cfg_(cfg), runtime_(std::make_unique<Runtime>(cfg)) {}

DotResult Context::dot(const std::vector<double>& u,
                       const std::vector<double>& v, Placement src) const {
  return runtime_->run(OpDesc::dot(u, v, src)).as_dot();
}

blas1::DotOutcome Context::dot_batch(
    const std::vector<std::vector<double>>& us,
    const std::vector<std::vector<double>>& vs) const {
  return runtime_->run(OpDesc::dot_batch(us, vs)).as_dot_batch();
}

blas2::MxvOutcome Context::gemv(const std::vector<double>& a, std::size_t rows,
                                std::size_t cols, const std::vector<double>& x,
                                Placement src, GemvArch arch) const {
  return runtime_->run(OpDesc::gemv(a, rows, cols, x, src, arch)).as_mxv();
}

blas2::MxvOutcome Context::spmxv(const blas2::CrsMatrix& a,
                                 const std::vector<double>& x) const {
  return runtime_->run(OpDesc::spmxv(a, x)).as_mxv();
}

std::size_t Context::choose_panel_edge(std::size_t n) const {
  return host::choose_panel_edge(cfg_, n);
}

blas3::MmHierOutcome Context::gemm(const std::vector<double>& a,
                                   const std::vector<double>& b,
                                   std::size_t n) const {
  return runtime_->run(OpDesc::gemm(a, b, n)).as_mm_hier();
}

blas3::MmOutcome Context::gemm_array(const std::vector<double>& a,
                                     const std::vector<double>& b,
                                     std::size_t n) const {
  return runtime_->run(OpDesc::gemm_array(a, b, n)).as_mm();
}

blas3::MmMultiOutcome Context::gemm_multi(const std::vector<double>& a,
                                          const std::vector<double>& b,
                                          std::size_t n) const {
  return runtime_->run(OpDesc::gemm_multi(a, b, n)).as_mm_multi();
}

mem::BramBudget Context::gemv_bram_plan(std::size_t cols) const {
  return host::gemv_bram_plan(cfg_, cols);
}

mem::BramBudget Context::gemm_bram_plan() const {
  return host::gemm_bram_plan(cfg_);
}

std::size_t Context::gemv_onchip_x_capacity() const {
  return host::gemv_onchip_x_capacity(cfg_);
}

blas2::MxvOutcome Context::gemv_auto(const std::vector<double>& a,
                                     std::size_t rows, std::size_t cols,
                                     const std::vector<double>& x) const {
  return runtime_->run(OpDesc::gemv_auto(a, rows, cols, x)).as_mxv();
}

machine::DesignArea Context::dot_design_area() const {
  return area_.dot_design(cfg_.dot_k);
}

machine::DesignArea Context::gemv_design_area() const {
  return area_.mxv_design_xd1(cfg_.gemv_k);
}

machine::DesignArea Context::gemm_design_area() const {
  return area_.mm_design_xd1(cfg_.mm_k);
}

}  // namespace xd::host
