#include "host/tuner.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "blas1/dot_engine.hpp"
#include "blas2/mxv_col.hpp"
#include "blas2/mxv_tree.hpp"
#include "blas2/spmxv.hpp"
#include "blas3/mm_array.hpp"
#include "blas3/mm_hier.hpp"
#include "blas3/mm_multi.hpp"
#include "common/random.hpp"
#include "model/perf_model.hpp"

namespace xd::host {

namespace {

/// Cycle-accuracy preference for tie-breaks after latency and area: the
/// simulated engines (array, multi, the level-1/2 designs) rank ahead of the
/// analytic hierarchical model when the formulas cannot separate them.
unsigned family_preference(TuneFamily f) {
  switch (f) {
    case TuneFamily::MmHier: return 2;
    case TuneFamily::MmMulti: return 1;
    default: return 0;
  }
}

/// Pipeline/reduction drain after the streaming phase of the tree designs.
u64 tree_tail_cycles(unsigned k, unsigned adder_stages, unsigned mult_stages) {
  const u64 tree = static_cast<u64>(k > 1 ? log2_ceil(k) : 0) * adder_stages;
  const u64 reduction =
      static_cast<u64>(log2_ceil(adder_stages) + 1) * adder_stages;
  return mult_stages + tree + reduction;
}

/// Fixed BRAM words of the reduction-circuit designs (mirrors
/// gemv_bram_plan's non-x allocations).
u64 reduction_buffer_words(unsigned adder_stages) {
  return 2ull * adder_stages * adder_stages + 128;
}

void finish_candidate(TuneCandidate& c, const ContextConfig& cfg, u64 cycles) {
  c.model_cycles = cycles;
  c.model_seconds = static_cast<double>(cycles) / (c.area.clock_mhz * 1e6);
  if (c.area.slices > cfg.device.slices) {
    c.feasible = false;
    if (c.why_not.empty()) {
      c.why_not = cat(c.area.slices, " slices > device's ", cfg.device.slices);
    }
  }
  if (c.feasible && c.bram_words > cfg.device.bram_words()) {
    c.feasible = false;
    c.why_not = cat(c.bram_words, " BRAM words > device's ",
                    cfg.device.bram_words());
  }
}

/// Bandwidth throttle: scale the compute-bound latency when the design needs
/// more external words/cycle than the machine supplies (Sec 5's I/O-vs-
/// compute crossover).
u64 throttled(double cycles, double required, double available) {
  const double scale =
      available > 0.0 ? std::max(1.0, required / available) : 1.0;
  return static_cast<u64>(std::ceil(cycles * scale));
}

// ---- candidate enumeration per op family -----------------------------------

void add_dot(std::vector<TuneCandidate>& out, const ContextConfig& cfg,
             const machine::AreaModel& area, std::size_t n) {
  for (unsigned k : {1u, 2u, 4u, 8u, 16u, 32u}) {
    TuneCandidate c;
    c.family = TuneFamily::Dot;
    c.k = k;
    c.area = area.dot_design(k);
    c.bram_words = reduction_buffer_words(cfg.adder_stages);
    const double wpc = words_per_cycle(cfg.dot_mem_bytes_per_s,
                                       c.area.clock_mhz);
    c.required_words_per_cycle = 2.0 * k;  // both vectors stream, no reuse
    c.available_words_per_cycle = wpc;
    c.feasible = true;
    // Streaming is the max of the compute-bound n/k and the I/O-bound 2n/wpc
    // (dot is I/O bound the moment 2k exceeds the link rate, Table 3).
    const u64 stream = std::max(ceil_div(n, k),
                                static_cast<u64>(std::ceil(2.0 * n / wpc)));
    finish_candidate(
        c, cfg,
        stream + tree_tail_cycles(k, cfg.adder_stages, cfg.multiplier_stages));
    out.push_back(std::move(c));
  }
}

void add_gemv_tree(std::vector<TuneCandidate>& out, const ContextConfig& cfg,
                   const machine::AreaModel& area, std::size_t rows,
                   std::size_t cols, std::size_t resident_x_words) {
  for (unsigned k : {1u, 2u, 4u, 8u, 16u}) {
    TuneCandidate c;
    c.family = TuneFamily::GemvTree;
    c.k = k;
    c.area = area.mxv_design_xd1(k);
    // x sits next to the reduction buffers (Sec 4.2 arch 1). Callers with a
    // blocked-x fallback (GemvAuto) charge only the resident panel, not the
    // whole vector.
    c.bram_words = reduction_buffer_words(cfg.adder_stages) + resident_x_words;
    c.required_words_per_cycle = k;  // one word of A per lane per cycle
    c.available_words_per_cycle = std::min<double>(k, cfg.sram_banks);
    c.feasible = k <= cfg.sram_banks;
    if (!c.feasible) {
      c.why_not = cat("needs ", k, " SRAM banks, machine has ",
                      cfg.sram_banks);
    }
    const u64 stream = static_cast<u64>(rows) * ceil_div(cols, k);
    finish_candidate(
        c, cfg,
        stream + tree_tail_cycles(k, cfg.adder_stages, cfg.multiplier_stages));
    out.push_back(std::move(c));
  }
}

void add_gemv_col(std::vector<TuneCandidate>& out, const ContextConfig& cfg,
                  const machine::AreaModel& area, std::size_t rows,
                  std::size_t cols) {
  for (unsigned k : {1u, 2u, 3u, 4u, 6u, 8u}) {
    TuneCandidate c;
    c.family = TuneFamily::GemvCol;
    c.k = k;
    const machine::DesignArea standalone = area.mxv_col_design(k);
    c.area = machine::DesignArea{
        standalone.slices + area.xd1_interface_slices(), 164.0};
    // Interleaved accumulation needs y resident per lane, no reduction
    // circuit buffers.
    c.bram_words = rows + 128;
    c.required_words_per_cycle = k + 1.0;  // k of A plus the broadcast x
    c.available_words_per_cycle = cfg.sram_banks;
    c.feasible = true;
    if (k + 1 > cfg.sram_banks) {
      c.feasible = false;
      c.why_not = cat("needs ", k + 1, " SRAM banks, machine has ",
                      cfg.sram_banks);
    } else if (ceil_div(rows, k) < cfg.adder_stages) {
      c.feasible = false;
      c.why_not = cat("hazard: ceil(rows/k) = ", ceil_div(rows, k), " < ",
                      cfg.adder_stages, " adder stages");
    }
    const u64 stream = static_cast<u64>(cols) * ceil_div(rows, k);
    finish_candidate(c, cfg,
                     stream + cfg.multiplier_stages + cfg.adder_stages);
    out.push_back(std::move(c));
  }
}

void add_spmxv(std::vector<TuneCandidate>& out, const ContextConfig& cfg,
               const machine::AreaModel& area, std::size_t rows,
               std::size_t cols) {
  for (unsigned k : {1u, 2u, 4u, 8u}) {
    TuneCandidate c;
    c.family = TuneFamily::Spmxv;
    c.k = k;
    c.area = area.mxv_design_xd1(k);
    c.bram_words = reduction_buffer_words(cfg.adder_stages) + cols;
    // Value + index pairs: k/2 CRS elements per cycle occupy k banks.
    c.required_words_per_cycle = k;
    c.available_words_per_cycle = cfg.sram_banks;
    c.feasible = k <= cfg.sram_banks;
    if (!c.feasible) {
      c.why_not = cat("needs ", k, " SRAM banks, machine has ",
                      cfg.sram_banks);
    }
    // nnz is unknown at plan time; the dense element count is a uniform
    // scale factor across k, so the ranking is density-independent.
    const u64 elements = static_cast<u64>(rows) * std::max<std::size_t>(cols, 1);
    const u64 stream = ceil_div(2 * elements, k);
    finish_candidate(
        c, cfg,
        stream + tree_tail_cycles(k, cfg.adder_stages, cfg.multiplier_stages));
    out.push_back(std::move(c));
  }
}

/// Largest SRAM panel edge for (m, l): a multiple of m covering every FPGA
/// (b >= m*l), tiling n, with the two b x b panels fitting the SRAM level.
std::size_t tuned_panel_edge(const ContextConfig& cfg, std::size_t n,
                             unsigned m, unsigned l) {
  const std::size_t min_b = static_cast<std::size_t>(m) * l;
  std::size_t cap = static_cast<std::size_t>(
      std::sqrt(static_cast<double>(cfg.sram_capacity_words) / 2.0));
  cap = std::min(cap, n);
  for (std::size_t b = cap - cap % m; b >= min_b && b > 0; b -= m) {
    if (n % b == 0) return b;
  }
  return 0;
}

void add_gemm(std::vector<TuneCandidate>& out, const ContextConfig& cfg,
              const machine::AreaModel& area, std::size_t n, bool array_family,
              bool hier_family, bool multi_family, unsigned multi_min_l = 2) {
  const unsigned max_pes = area.max_mm_pes(cfg.device, true);
  const unsigned max_l = std::max(1u, cfg.mm_l);
  for (unsigned l = 1; l <= max_l; ++l) {
    for (unsigned k : {1u, 2u, 4u, 8u, 10u}) {
      // Block edges: the configured one plus power-of-two multiples of k,
      // deduplicated; m must be a multiple of k (PE stripe ownership).
      std::vector<unsigned> ms = {cfg.mm_m, k, 2 * k, 4 * k, 8 * k};
      std::sort(ms.begin(), ms.end());
      ms.erase(std::unique(ms.begin(), ms.end()), ms.end());
      for (unsigned m : ms) {
        if (m < k || m % k != 0) continue;
        struct FamilyPlan {
          TuneFamily family;
          std::size_t b;
        };
        std::vector<FamilyPlan> fams;
        if (array_family && l == 1) fams.push_back({TuneFamily::MmArray, 0});
        if (hier_family) {
          fams.push_back({TuneFamily::MmHier, tuned_panel_edge(cfg, n, m, l)});
        }
        if (multi_family && l >= multi_min_l) {
          fams.push_back({TuneFamily::MmMulti, tuned_panel_edge(cfg, n, m, l)});
        }
        for (const auto& fam : fams) {
          TuneCandidate c;
          c.family = fam.family;
          c.k = k;
          c.m = m;
          c.l = l;
          c.b = fam.b;
          c.area = area.mm_design_xd1(k);
          c.bram_words = 2ull * m * m + 2ull * m;
          c.feasible = true;
          if (k > max_pes) {
            c.feasible = false;
            c.why_not = cat("place & route fails beyond ", max_pes,
                            " PEs with the XD1 interface");
          } else if (static_cast<u64>(m) * m / k < cfg.mm_adder_stages) {
            c.feasible = false;
            c.why_not = cat("accumulation hazard: m^2/k = ",
                            static_cast<u64>(m) * m / k, " < ",
                            cfg.mm_adder_stages, " adder stages");
          } else if (n == 0) {
            c.feasible = false;
            c.why_not = "empty problem";
          }
          double latency = 0.0;
          if (c.family == TuneFamily::MmArray) {
            const auto point = model::gemm_sc05(n, k, m);
            latency = point.latency_cycles;
            c.required_words_per_cycle = point.words_per_cycle;
            c.available_words_per_cycle = cfg.sram_banks;
            if (c.feasible && n % m != 0) {
              c.feasible = false;
              c.why_not = cat("n = ", n, " is not a multiple of m = ", m);
            }
            // Sec 5.1 keeps all three matrices resident in SRAM; past that
            // the hierarchical design is the only option (the n = 2048
            // array-vs-hier decision).
            if (c.feasible && 3.0 * static_cast<double>(n) * n >
                                  static_cast<double>(cfg.sram_capacity_words)) {
              c.feasible = false;
              c.why_not = cat("3n^2 = ", 3 * n * n, " words exceed the ",
                              cfg.sram_capacity_words, "-word SRAM");
            }
          } else {
            if (c.feasible && c.b == 0) {
              c.feasible = false;
              c.why_not = cat("no SRAM panel edge tiles n = ", n,
                              " with m = ", m, ", l = ", l);
            }
            const auto point = model::gemm_hier_multi(
                n, k, l, m, c.b ? c.b : static_cast<std::size_t>(m) * l);
            latency = point.latency_cycles;
            c.required_words_per_cycle = point.words_per_cycle;
            c.available_words_per_cycle =
                words_per_cycle(cfg.mm_dram_bytes_per_s, c.area.clock_mhz);
          }
          finish_candidate(c, cfg,
                           throttled(latency, c.required_words_per_cycle,
                                     c.available_words_per_cycle));
          out.push_back(std::move(c));
        }
      }
    }
  }
}

// ---- probes ----------------------------------------------------------------

/// Deterministic operand values for probe runs; values never affect timing,
/// the fixed seed just keeps the whole tuner a pure function.
constexpr u64 kProbeSeed = 2005;

EngineConfig probe_config(const ContextConfig& cfg, const TuneCandidate& c,
                          std::size_t probe_b);

u64 run_probe(const ContextConfig& cfg, const TuneCandidate& c,
              std::size_t rows, std::size_t cols, std::size_t n,
              std::size_t probe_b) {
  Rng rng(kProbeSeed);
  const EngineConfig ec = probe_config(cfg, c, probe_b);
  switch (c.family) {
    case TuneFamily::Dot: {
      blas1::DotEngine engine(std::get<blas1::DotConfig>(ec));
      return engine.run({rng.vector(cols)}, {rng.vector(cols)}).report.cycles;
    }
    case TuneFamily::GemvTree: {
      blas2::MxvTreeEngine engine(std::get<blas2::MxvTreeConfig>(ec));
      return engine.run(rng.matrix(rows, cols), rows, cols, rng.vector(cols))
          .report.cycles;
    }
    case TuneFamily::GemvCol: {
      blas2::MxvColEngine engine(std::get<blas2::MxvColConfig>(ec));
      return engine.run(rng.matrix(rows, cols), rows, cols, rng.vector(cols))
          .report.cycles;
    }
    case TuneFamily::Spmxv: {
      blas2::SpmxvEngine engine(std::get<blas2::SpmxvConfig>(ec));
      const auto sparse = blas2::make_uniform_sparse(
          rows, cols, std::min<std::size_t>(cols, 8), 7);
      return engine.run(sparse, rng.vector(cols)).report.cycles;
    }
    case TuneFamily::MmArray: {
      blas3::MmArrayEngine engine(std::get<blas3::MmArrayConfig>(ec));
      return engine.run(rng.matrix(n, n), rng.matrix(n, n), n).report.cycles;
    }
    case TuneFamily::MmHier: {
      blas3::MmHierEngine engine(std::get<blas3::MmHierConfig>(ec));
      return engine.run(rng.matrix(n, n), rng.matrix(n, n), n).report.cycles;
    }
    case TuneFamily::MmMulti: {
      blas3::MmMultiEngine engine(std::get<blas3::MmMultiConfig>(ec));
      return engine.run(rng.matrix(n, n), rng.matrix(n, n), n).report.cycles;
    }
  }
  return 0;
}

/// Probe the top-N feasible candidates on one shrunken common shape and
/// return the winner among them. Every probed candidate sees the same
/// shape, so the comparison is fair; the shape preserves each candidate's
/// feasibility constraints (hazard rows, block divisibility).
void probe_top(TuneResult& tr, const ContextConfig& cfg, const PlanKey& key) {
  std::vector<std::size_t> top;
  for (std::size_t i = 0; i < tr.ranked.size() && top.size() < cfg.tune_probe_top;
       ++i) {
    if (tr.ranked[i].feasible) top.push_back(i);
  }
  if (top.size() < 2) return;  // nothing to separate

  // Common probe shape. GEMM candidates use a reduced panel edge b_p = m*l
  // and an edge n_p divisible by every probed candidate's m and b_p.
  std::size_t rows = std::min<std::size_t>(std::max<std::size_t>(key.rows, 1), 256);
  std::size_t cols = std::min<std::size_t>(std::max<std::size_t>(key.cols, 1), 256);
  if (key.kind == OpKind::Dot || key.kind == OpKind::DotBatch) {
    cols = std::min<std::size_t>(std::max<std::size_t>(key.cols, 1), 2048);
  }
  std::size_t lcm = 1;
  for (std::size_t i : top) {
    const TuneCandidate& c = tr.ranked[i];
    if (c.m == 0) continue;
    const std::size_t unit = static_cast<std::size_t>(c.m) *
                             (c.family == TuneFamily::MmArray ? 1 : c.l);
    lcm = std::lcm(lcm, unit);
  }
  if (lcm > 128) return;  // probe would not be short; keep the model ranking
  const std::size_t n = std::max<std::size_t>(lcm, lcm * (64 / lcm));

  for (std::size_t i : top) {
    TuneCandidate& c = tr.ranked[i];
    // A probe must not shrink below the column design's hazard bound.
    std::size_t probe_rows = rows;
    if (c.family == TuneFamily::GemvCol) {
      const std::size_t need =
          static_cast<std::size_t>(cfg.adder_stages - 1) * c.k + 1;
      probe_rows = std::min(std::max(rows, need), std::max<std::size_t>(key.rows, 1));
    }
    const std::size_t probe_b = static_cast<std::size_t>(c.m) * c.l;
    c.probe_cycles = run_probe(cfg, c, probe_rows, cols, n, probe_b);
    c.probe_seconds =
        static_cast<double>(c.probe_cycles) / (c.area.clock_mhz * 1e6);
    tr.probe_cycles += c.probe_cycles;
    ++tr.probed;
  }

  // Re-pick the winner from the probed subset with the same tie rules.
  double best = tr.ranked[top.front()].probe_seconds;
  for (std::size_t i : top) best = std::min(best, tr.ranked[i].probe_seconds);
  std::size_t win = top.front();
  for (std::size_t i : top) {
    const TuneCandidate& c = tr.ranked[i];
    if (c.probe_seconds > best * (1.0 + cfg.tune_tie_fraction)) continue;
    const TuneCandidate& w = tr.ranked[win];
    const bool w_in_band =
        w.probe_seconds <= best * (1.0 + cfg.tune_tie_fraction);
    if (!w_in_band || c.area.slices < w.area.slices ||
        (c.area.slices == w.area.slices &&
         family_preference(c.family) < family_preference(w.family))) {
      win = i;
    }
  }
  tr.ranked[static_cast<std::size_t>(tr.winner_index)].chosen = false;
  tr.winner_index = static_cast<int>(win);
  tr.ranked[win].chosen = true;
}

// ---- emitted engine configurations -----------------------------------------
// These mirror the fixed path's derivations exactly (ContextConfig clocks and
// bandwidths, candidate k/m/l/b), so a winner that matches the configured
// design yields a bit-identical plan.

blas1::DotConfig dot_config(const ContextConfig& cfg, unsigned k) {
  blas1::DotConfig dc;
  dc.k = k;
  dc.adder_stages = cfg.adder_stages;
  dc.multiplier_stages = cfg.multiplier_stages;
  dc.mem_words_per_cycle =
      words_per_cycle(cfg.dot_mem_bytes_per_s, cfg.dot_clock_mhz);
  dc.clock_mhz = cfg.dot_clock_mhz;
  return dc;
}

blas2::MxvTreeConfig tree_config(const ContextConfig& cfg, unsigned k) {
  blas2::MxvTreeConfig tc;
  tc.k = k;
  tc.adder_stages = cfg.adder_stages;
  tc.multiplier_stages = cfg.multiplier_stages;
  tc.mem_words_per_cycle = static_cast<double>(k);  // 1 word/bank
  tc.clock_mhz = cfg.gemv_clock_mhz;
  return tc;
}

blas2::MxvColConfig col_config(const ContextConfig& cfg, unsigned k) {
  blas2::MxvColConfig cc;
  cc.k = k;
  cc.adder_stages = cfg.adder_stages;
  cc.multiplier_stages = cfg.multiplier_stages;
  cc.mem_words_per_cycle = static_cast<double>(k) + 1.0;
  cc.clock_mhz = cfg.gemv_clock_mhz;
  return cc;
}

blas2::SpmxvConfig spmxv_config(const ContextConfig& cfg, unsigned k) {
  blas2::SpmxvConfig sc;
  sc.k = k;
  sc.adder_stages = cfg.adder_stages;
  sc.multiplier_stages = cfg.multiplier_stages;
  sc.mem_elements_per_cycle = static_cast<double>(k) / 2.0;
  sc.clock_mhz = cfg.gemv_clock_mhz;
  return sc;
}

blas3::MmArrayConfig array_config(const ContextConfig& cfg, unsigned k,
                                  unsigned m) {
  blas3::MmArrayConfig mc;
  mc.k = k;
  mc.m = m;
  mc.adder_stages = cfg.mm_adder_stages;
  mc.multiplier_stages = cfg.multiplier_stages;
  mc.mem_words_per_cycle = 4.0;  // four SRAM banks feed the array (fixed path)
  mc.clock_mhz = cfg.mm_clock_mhz;
  return mc;
}

blas3::MmHierConfig hier_config(const ContextConfig& cfg, unsigned k,
                                unsigned m, unsigned l, std::size_t b) {
  blas3::MmHierConfig hc;
  hc.l = l;
  hc.k = k;
  hc.m = m;
  hc.b = b;
  hc.adder_stages = cfg.mm_adder_stages;
  hc.multiplier_stages = cfg.multiplier_stages;
  hc.clock_mhz = cfg.mm_clock_mhz;
  hc.dram_words_per_cycle =
      words_per_cycle(cfg.mm_dram_bytes_per_s, cfg.mm_clock_mhz);
  hc.link_words_per_cycle =
      words_per_cycle(cfg.mm_link_bytes_per_s, cfg.mm_clock_mhz);
  return hc;
}

blas3::MmMultiConfig multi_config(const ContextConfig& cfg, unsigned k,
                                  unsigned m, unsigned l, std::size_t b) {
  blas3::MmMultiConfig mc;
  mc.l = l;
  mc.k = k;
  mc.m = m;
  mc.b = b;
  mc.clock_mhz = cfg.mm_clock_mhz;
  mc.dram_words_per_cycle =
      words_per_cycle(cfg.mm_dram_bytes_per_s, cfg.mm_clock_mhz);
  mc.link_words_per_cycle =
      words_per_cycle(cfg.mm_link_bytes_per_s, cfg.mm_clock_mhz);
  return mc;
}

EngineConfig winner_config(const ContextConfig& cfg, const TuneCandidate& c) {
  switch (c.family) {
    case TuneFamily::Dot: return dot_config(cfg, c.k);
    case TuneFamily::GemvTree: return tree_config(cfg, c.k);
    case TuneFamily::GemvCol: return col_config(cfg, c.k);
    case TuneFamily::Spmxv: return spmxv_config(cfg, c.k);
    case TuneFamily::MmArray: return array_config(cfg, c.k, c.m);
    case TuneFamily::MmHier: return hier_config(cfg, c.k, c.m, c.l, c.b);
    case TuneFamily::MmMulti: return multi_config(cfg, c.k, c.m, c.l, c.b);
  }
  return blas1::DotConfig{};
}

EngineConfig probe_config(const ContextConfig& cfg, const TuneCandidate& c,
                          std::size_t probe_b) {
  if (c.family == TuneFamily::MmHier) {
    return hier_config(cfg, c.k, c.m, c.l, probe_b);
  }
  if (c.family == TuneFamily::MmMulti) {
    return multi_config(cfg, c.k, c.m, c.l, probe_b);
  }
  return winner_config(cfg, c);
}

}  // namespace

const char* tune_family_name(TuneFamily f) {
  switch (f) {
    case TuneFamily::Dot: return "dot";
    case TuneFamily::GemvTree: return "gemv-tree";
    case TuneFamily::GemvCol: return "gemv-col";
    case TuneFamily::Spmxv: return "spmxv";
    case TuneFamily::MmArray: return "mm-array";
    case TuneFamily::MmHier: return "mm-hier";
    case TuneFamily::MmMulti: return "mm-multi";
  }
  return "unknown";
}

const char* tune_policy_name(TunePolicy p) {
  switch (p) {
    case TunePolicy::Fixed: return "fixed";
    case TunePolicy::Model: return "model";
    case TunePolicy::Probe: return "probe";
  }
  return "unknown";
}

bool tune_policy_from_name(std::string_view name, TunePolicy& out) {
  for (const TunePolicy p :
       {TunePolicy::Fixed, TunePolicy::Model, TunePolicy::Probe}) {
    if (name == tune_policy_name(p)) {
      out = p;
      return true;
    }
  }
  return false;
}

std::string TuneCandidate::name() const {
  std::string s = tune_family_name(family);
  if (l > 1 || family == TuneFamily::MmHier || family == TuneFamily::MmMulti) {
    s += cat(" l=", l);
  }
  s += cat(" k=", k);
  if (m > 0) s += cat(" m=", m);
  if (b > 0) s += cat(" b=", b);
  return s;
}

TuneResult tune_op(const ContextConfig& cfg, const PlanKey& key) {
  const machine::AreaModel area;
  TuneResult tr;
  tr.kind = key.kind;

  switch (key.kind) {
    case OpKind::Dot:
      add_dot(tr.ranked, cfg, area, key.cols);
      break;
    case OpKind::DotBatch:
      // Per-pair lengths are unknown at plan time; a nominal streaming
      // length ranks the candidates (the order is length-independent once
      // streaming dominates the drain tails).
      add_dot(tr.ranked, cfg, area, 4096);
      break;
    case OpKind::Gemv:
      // Both Sec 4.2 architectures compete; the descriptor's arch stays the
      // fixed-policy choice.
      add_gemv_tree(tr.ranked, cfg, area, key.rows, key.cols, key.cols);
      add_gemv_col(tr.ranked, cfg, area, key.rows, key.cols);
      break;
    case OpKind::GemvAuto:
      // The blocked-x fallback requires the tree design's reduction circuit.
      // When x exceeds the on-chip capacity the plan blocks it into resident
      // panels, so only the panel is charged to BRAM — a full-cols charge
      // would prune every design for exactly the shapes the fallback exists
      // to serve.
      add_gemv_tree(tr.ranked, cfg, area, key.rows, key.cols,
                    std::min(key.cols, gemv_onchip_x_capacity(cfg)));
      break;
    case OpKind::Spmxv:
      add_spmxv(tr.ranked, cfg, area, key.rows, key.cols);
      break;
    case OpKind::Gemm:
      // Row-panel keys (rows != 0, the shard scheduler's sub-ops) tune
      // within the hierarchical family only: the cycle-accurate array and
      // multi-FPGA engines are square-only.
      add_gemm(tr.ranked, cfg, area, key.n, key.rows == 0, true,
               key.rows == 0);
      break;
    case OpKind::GemmArray:
      // An explicit engine request: tune within the family only.
      add_gemm(tr.ranked, cfg, area, key.n, true, false, false);
      break;
    case OpKind::GemmMulti:
      // An explicit multi-FPGA request works at any l, including l = 1
      // (the fixed path builds that too).
      add_gemm(tr.ranked, cfg, area, key.n, false, false, true, 1);
      break;
  }

  tr.considered = tr.ranked.size();
  // Feasible candidates first, fastest first; area then cycle-accuracy
  // preference as deterministic secondary keys. Infeasible candidates sink
  // to the bottom in enumeration order (stable sort).
  std::stable_sort(tr.ranked.begin(), tr.ranked.end(),
                   [](const TuneCandidate& a, const TuneCandidate& b) {
                     if (a.feasible != b.feasible) return a.feasible;
                     if (!a.feasible) return false;
                     if (a.model_seconds != b.model_seconds) {
                       return a.model_seconds < b.model_seconds;
                     }
                     if (a.area.slices != b.area.slices) {
                       return a.area.slices < b.area.slices;
                     }
                     return family_preference(a.family) <
                            family_preference(b.family);
                   });
  for (const TuneCandidate& c : tr.ranked) {
    if (c.feasible) {
      ++tr.feasible;
    } else {
      ++tr.pruned;
    }
  }
  if (tr.feasible == 0) return tr;

  // Winner: fastest by the model, with near-ties (the paper's k = 2 dot vs
  // k = 4 case) resolved toward fewer slices, then cycle accuracy.
  const double best = tr.ranked.front().model_seconds;
  std::size_t win = 0;
  for (std::size_t i = 1; i < tr.feasible; ++i) {
    const TuneCandidate& c = tr.ranked[i];
    if (c.model_seconds > best * (1.0 + cfg.tune_tie_fraction)) break;
    const TuneCandidate& w = tr.ranked[win];
    if (c.area.slices < w.area.slices ||
        (c.area.slices == w.area.slices &&
         family_preference(c.family) < family_preference(w.family))) {
      win = i;
    }
  }
  tr.winner_index = static_cast<int>(win);
  tr.ranked[win].chosen = true;

  if (key.tune == TunePolicy::Probe) probe_top(tr, cfg, key);
  return tr;
}

Plan build_tuned_plan(const ContextConfig& cfg, const PlanKey& key) {
  TuneResult tr = tune_op(cfg, key);
  const TuneCandidate* win = tr.winner();
  if (!win) {
    std::string reasons;
    for (const TuneCandidate& c : tr.ranked) {
      reasons += cat("\n  ", c.name(), ": ", c.why_not);
    }
    throw ConfigError(cat("tuner: no feasible design for ",
                          op_kind_name(key.kind), reasons));
  }

  Plan plan;
  plan.key = key;
  plan.engine = winner_config(cfg, *win);
  plan.panel_edge = win->b;
  plan.tune.tuned = true;
  plan.tune.candidates = tr.considered;
  plan.tune.pruned = tr.pruned;
  plan.tune.probed = tr.probed;
  plan.tune.probe_cycles = tr.probe_cycles;
  plan.tune.chosen = engine_signature(plan.engine);

  // Staging, capacity and fallback decisions replicate the fixed path: the
  // DRAM link belongs to the machine, not the chosen design.
  switch (key.kind) {
    case OpKind::Dot:
      if (key.placement == Placement::Dram) {
        const double wpc =
            words_per_cycle(cfg.gemv_dram_bytes_per_s, cfg.dot_clock_mhz);
        plan.dram_words = static_cast<double>(2 * key.cols);
        plan.staging_cycles =
            static_cast<u64>(std::ceil(plan.dram_words / wpc));
      }
      break;
    case OpKind::Gemv:
      if (key.placement == Placement::Dram) {
        const double wpc =
            words_per_cycle(cfg.gemv_dram_bytes_per_s, cfg.gemv_clock_mhz);
        plan.dram_words = static_cast<double>(key.rows * key.cols + key.rows);
        plan.staging_cycles =
            static_cast<u64>(std::ceil(plan.dram_words / wpc));
      }
      break;
    case OpKind::GemvAuto:
      plan.onchip_capacity = gemv_onchip_x_capacity(cfg);
      require(plan.onchip_capacity > 0,
              "device has no on-chip memory left for x");
      plan.blocked_gemv = key.cols > plan.onchip_capacity;
      break;
    case OpKind::Spmxv:
      plan.onchip_capacity = gemv_onchip_x_capacity(cfg);
      require(key.cols <= plan.onchip_capacity,
              "SpMXV: x does not fit the device's on-chip memory");
      break;
    default:
      break;
  }
  return plan;
}

std::string engine_signature(const EngineConfig& engine) {
  struct Visitor {
    std::string operator()(const blas1::DotConfig& c) const {
      return cat("dot k=", c.k);
    }
    std::string operator()(const blas2::MxvTreeConfig& c) const {
      return cat("gemv-tree k=", c.k);
    }
    std::string operator()(const blas2::MxvColConfig& c) const {
      return cat("gemv-col k=", c.k);
    }
    std::string operator()(const blas2::SpmxvConfig& c) const {
      return cat("spmxv k=", c.k);
    }
    std::string operator()(const blas3::MmArrayConfig& c) const {
      return cat("mm-array k=", c.k, " m=", c.m);
    }
    std::string operator()(const blas3::MmHierConfig& c) const {
      return cat("mm-hier l=", c.l, " k=", c.k, " m=", c.m, " b=", c.b);
    }
    std::string operator()(const blas3::MmMultiConfig& c) const {
      return cat("mm-multi l=", c.l, " k=", c.k, " m=", c.m, " b=", c.b);
    }
  };
  return std::visit(Visitor{}, engine);
}

}  // namespace xd::host
