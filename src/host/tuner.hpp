// Design-space autotuner (the selection layer Tables 3/4 and Figs 9/11/12
// exist to motivate): given an op kind, shape, and machine configuration,
// enumerate the legal candidate designs (engine family x k x m x l x panel
// edge), prune them against the machine::AreaModel slice/BRAM/bank budgets,
// rank the survivors with the src/model analytic latency formulas, and emit
// the winner as the plan's engine configuration.
//
// Ranking uses each candidate's post-P&R clock from the area model; the
// emitted engine configuration keeps the ContextConfig clocks and bandwidth
// derivations of the fixed path, so a tuner that lands on the configured
// design produces a bit-identical plan (values AND cycles) to
// TunePolicy::Fixed — the property the fuzz harness pins.
//
// Near-ties (within cfg.tune_tie_fraction of the best modeled latency) are
// broken by slice count, then by a cycle-accuracy preference — reproducing
// the paper's own choice of the k = 2 dot design over the ~1% faster k = 4,
// and of the cycle-accurate array/multi engines over the analytic
// hierarchical model when the formulas agree.
//
// TunePolicy::Probe additionally reruns the top-N survivors through short
// deterministic simulator probes on a shrunken common shape and picks the
// winner from the probed subset.
#pragma once

#include <string>
#include <vector>

#include "host/plan.hpp"
#include "machine/area.hpp"

namespace xd::host {

/// Which engine family a candidate resolves to.
enum class TuneFamily {
  Dot,       ///< blas1::DotEngine
  GemvTree,  ///< blas2::MxvTreeEngine (Sec 4.2 arch 1)
  GemvCol,   ///< blas2::MxvColEngine (Sec 4.2 arch 2)
  Spmxv,     ///< blas2::SpmxvEngine
  MmArray,   ///< blas3::MmArrayEngine (Sec 5.1, operands resident in SRAM)
  MmHier,    ///< blas3::MmHierEngine (Sec 5.2, b x b SRAM panels)
  MmMulti,   ///< blas3::MmMultiEngine (Sec 5.2, block-event multi-FPGA)
};

const char* tune_family_name(TuneFamily f);

const char* tune_policy_name(TunePolicy p);
bool tune_policy_from_name(std::string_view name, TunePolicy& out);

struct TuneCandidate {
  TuneFamily family = TuneFamily::Dot;
  unsigned k = 1;      ///< lanes / PEs
  unsigned m = 0;      ///< GEMM on-chip block edge (0 for level 1/2)
  unsigned l = 1;      ///< FPGAs
  std::size_t b = 0;   ///< GEMM SRAM panel edge (0 for level 1/2)

  machine::DesignArea area;  ///< modeled slices + post-P&R clock
  u64 bram_words = 0;        ///< modeled on-chip storage requirement
  double required_words_per_cycle = 0.0;   ///< external bandwidth need
  double available_words_per_cycle = 0.0;  ///< what the machine can supply

  bool feasible = false;
  std::string why_not;  ///< empty when feasible

  u64 model_cycles = 0;      ///< analytic latency (bandwidth-throttled)
  double model_seconds = 0;  ///< at the area model's clock for this design
  u64 probe_cycles = 0;      ///< short-probe simulation (Probe policy only)
  double probe_seconds = 0;

  bool chosen = false;

  /// Human label, e.g. "mm-hier l=2 k=8 m=8 b=1024".
  std::string name() const;
};

struct TuneResult {
  OpKind kind = OpKind::Dot;
  /// Feasible candidates sorted fastest-first (model order), then the
  /// infeasible ones in enumeration order with their pruning reason.
  std::vector<TuneCandidate> ranked;
  std::size_t considered = 0;
  std::size_t feasible = 0;
  std::size_t pruned = 0;   ///< infeasible (area/BRAM/bank/hazard/capacity)
  std::size_t probed = 0;
  u64 probe_cycles = 0;     ///< total simulation cycles spent probing
  int winner_index = -1;

  const TuneCandidate* winner() const {
    return winner_index >= 0 ? &ranked[static_cast<std::size_t>(winner_index)]
                             : nullptr;
  }
};

/// Enumerate, prune, rank (and for TunePolicy::Probe, probe) the candidate
/// designs for one plan key. Pure function of (cfg, key): deterministic, no
/// shared state, so concurrent plan builds can tune independently.
TuneResult tune_op(const ContextConfig& cfg, const PlanKey& key);

/// Build a plan whose engine configuration is the tuner's winner. Called by
/// build_plan for keys with tune != TunePolicy::Fixed; throws ConfigError
/// when no candidate survives pruning.
Plan build_tuned_plan(const ContextConfig& cfg, const PlanKey& key);

/// The value-affecting parameters of an engine configuration as a short
/// string ("gemv-tree k=4", "mm-hier l=1 k=8 m=8 b=512"). Two plans with
/// equal signatures compute bit-identical values (and, with equal staging,
/// identical cycles) — the comparison key of the tuned-vs-fixed fuzz
/// invariant and of Plan::TuneSummary::chosen.
std::string engine_signature(const EngineConfig& engine);

}  // namespace xd::host
