// Machine/design configuration for the host layer.
//
// Split out of context.hpp so the op / plan / runtime tiers can consume the
// configuration without pulling in the Context facade: op.hpp needs
// Placement/GemvArch for OpDesc, plan.hpp derives engine configurations
// from ContextConfig, runtime.hpp executes against it, and context.hpp
// re-exports everything for existing users.
#pragma once

#include <cstddef>

#include "fp/fpu.hpp"
#include "machine/device.hpp"

namespace xd::telemetry {
class Session;
}

namespace xd::host {

enum class Placement {
  Sram,  ///< operands already in the FPGA-attached SRAM banks
  Dram,  ///< operands start in processor DRAM (staging is simulated)
};

enum class GemvArch {
  Tree,    ///< row-major, adder tree + reduction circuit (Sec 4.2 arch 1)
  Column,  ///< column-major, interleaved accumulation (Sec 4.2 arch 2)
};

/// How the plan layer picks the engine design for an op (see host/tuner.hpp).
enum class TunePolicy {
  Fixed,  ///< the configured design, exactly as before (default)
  Model,  ///< enumerate legal designs, rank with the Sec 4/5 analytic models
  Probe,  ///< Model, then validate the top-N candidates with short sim runs
};

/// Machine/design parameters. Defaults describe one Cray XD1 node exactly as
/// the paper configures it (Tables 3 and 4).
struct ContextConfig {
  machine::FpgaDevice device = machine::xc2vp50();

  // Level 1 (dot): k = 2 multipliers at 170 MHz, 5.5 GB/s streaming.
  unsigned dot_k = 2;
  double dot_clock_mhz = 170.0;
  double dot_mem_bytes_per_s = 5.5 * kGB;

  // Level 2 (GEMV): k = 4 at 164 MHz, one word per SRAM bank per cycle.
  unsigned gemv_k = 4;
  double gemv_clock_mhz = 164.0;
  double gemv_sram_bytes_per_s = 5.9 * kGB;
  double gemv_dram_bytes_per_s = 1.3 * kGB;  ///< measured staging bandwidth

  // Level 3 (GEMM): k = 8 PEs, m = 8, b = 512, 130 MHz.
  unsigned mm_k = 8;
  unsigned mm_m = 8;
  std::size_t mm_b = 512;
  unsigned mm_l = 1;  ///< FPGAs (hierarchical design)
  double mm_clock_mhz = 130.0;
  double mm_dram_bytes_per_s = 3.2 * kGB;
  double mm_link_bytes_per_s = 2.0 * kGB;

  unsigned adder_stages = fp::kAdderStages;
  unsigned multiplier_stages = fp::kMultiplierStages;
  /// GEMM PE accumulation-adder depth (see blas3::MmArrayConfig): must
  /// satisfy m^2/k >= depth; the paper's k = m = 8 design implies <= 8.
  unsigned mm_adder_stages = 8;

  /// Optional telemetry sink, forwarded to every engine the runtime builds.
  /// Engines publish component metrics (mem.* / fpu.* / reduce.* / blas*.*)
  /// and record phase spans; for Placement::Dram the runtime records the
  /// "staging" span ahead of the engine's "compute" so the two tile the
  /// reported total. Null (the default) disables all recording.
  ///
  /// Thread-safety: a session shared across threads is synchronized through
  /// Session::lock(). Synchronous calls (Context, Runtime::run) record
  /// directly under the lock on span lane 0; asynchronously submitted jobs
  /// record into thread-local shards merged in at completion on per-worker
  /// lanes, and every op lands a TraceContext in the session's flight
  /// recorder. Recording never changes outcomes (values, cycles, plans).
  /// See docs/runtime.md and docs/observability.md.
  telemetry::Session* telemetry = nullptr;

  /// Plans derived from this configuration are memoized per (op, shape,
  /// placement, arch) in a bounded LRU cache of this many entries.
  std::size_t plan_cache_capacity = 64;

  // ---- design autotuner (host/tuner.hpp) -----------------------------------
  /// Fixed keeps the configured design; Model ranks the legal candidates with
  /// the analytic area/perf models; Probe additionally reruns the best few
  /// through short simulator probes before committing.
  TunePolicy tune = TunePolicy::Fixed;
  /// SRAM banks the streaming designs can draw from (XD1: four QDR II banks,
  /// one word per bank per cycle). Bounds the tree GEMV at k banks and the
  /// column GEMV at k+1.
  unsigned sram_banks = 4;
  /// Total FPGA-attached SRAM in words (XD1: 4 x 4 MB = 2 Mi words). The
  /// tuner prunes the resident-operand GEMM array when 3 n^2 exceeds it and
  /// caps hierarchical panel edges at 2 b^2 <= capacity.
  std::size_t sram_capacity_words = 2ull * 1024 * 1024;
  /// How many top-ranked candidates TunePolicy::Probe validates in simulation.
  unsigned tune_probe_top = 3;
  /// Candidates whose modeled latency is within this fraction of the best are
  /// treated as ties and broken by area (then by cycle-accuracy preference) —
  /// the paper's own argument for k = 2 dot over marginally faster k = 4.
  double tune_tie_fraction = 0.02;
};

/// Words per cycle across a link of `bytes_per_s` at `clock_mhz`.
inline double words_per_cycle(double bytes_per_s, double clock_mhz) {
  return bytes_per_s / (kWordBytes * clock_mhz * 1e6);
}

}  // namespace xd::host
