#include "telemetry/metrics.hpp"

namespace xd::telemetry {

namespace {

const char* kind_name(MetricKind k) {
  switch (k) {
    case MetricKind::Counter: return "counter";
    case MetricKind::Gauge: return "gauge";
    case MetricKind::Histogram: return "histogram";
  }
  return "?";
}

bool valid_segment_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_' || c == '-';
}

}  // namespace

bool MetricsRegistry::valid_name(std::string_view name) {
  if (name.empty() || name.front() == '.' || name.back() == '.') return false;
  bool prev_dot = false;
  for (char c : name) {
    if (c == '.') {
      if (prev_dot) return false;
      prev_dot = true;
    } else if (valid_segment_char(c)) {
      prev_dot = false;
    } else {
      return false;
    }
  }
  return true;
}

Metric& MetricsRegistry::get(std::string_view name, MetricKind kind) {
  // Error messages are built only on the failure paths: this accessor is on
  // the recording hot path, and an eagerly evaluated cat() here used to
  // dominate the cost of every counter/gauge/histogram touch.
  if (!valid_name(name)) {
    throw ConfigError(
        cat("invalid metric name '", name,
            "' (want dot-separated lower-case segments of [a-z0-9_-])"));
  }
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    it = metrics_.emplace(std::string(name), Metric{}).first;
    it->second.kind = kind;
  } else if (it->second.kind != kind) {
    throw ConfigError(cat("metric '", name, "' already registered as ",
                          kind_name(it->second.kind), ", requested as ",
                          kind_name(kind)));
  }
  return it->second;
}

Counter MetricsRegistry::counter(std::string_view name) {
  return Counter(get(name, MetricKind::Counter));
}

Gauge MetricsRegistry::gauge(std::string_view name) {
  return Gauge(get(name, MetricKind::Gauge));
}

HistogramMetric MetricsRegistry::histogram(std::string_view name) {
  return HistogramMetric(get(name, MetricKind::Histogram));
}

double MetricsRegistry::percentile(const Metric& m, double q) {
  if (m.sketch.empty()) return 0.0;
  const double v = m.sketch.quantile(q);
  return std::min(std::max(v, m.dist.min()), m.dist.max());
}

double HistogramMetric::percentile(double q) const {
  return MetricsRegistry::percentile(*m_, q);
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  // Both maps are sorted, so a single co-iteration replaces a per-name
  // log-time find: the runtime merges a worker shard after every completed
  // op, and this walk is what keeps that merge cheap for small ops.
  auto mit = metrics_.begin();
  for (const auto& [name, theirs] : other.metrics_) {
    // Untouched entries carry no recordings — either freshly created or
    // left over in a reset_values() shard from an earlier op of a different
    // kind. Merging one would leak a stale gauge name (with value 0) into
    // this registry, so skip them entirely.
    if (!theirs.touched) continue;
    while (mit != metrics_.end() && mit->first < name) ++mit;
    if (mit == metrics_.end() || mit->first != name) {
      mit = metrics_.emplace_hint(mit, name, Metric{});
      mit->second.kind = theirs.kind;
    } else if (mit->second.kind != theirs.kind) {
      throw ConfigError(cat("metric '", name, "' already registered as ",
                            kind_name(mit->second.kind), ", merged as ",
                            kind_name(theirs.kind)));
    }
    Metric& mine = mit->second;
    mine.touched = true;
    switch (theirs.kind) {
      case MetricKind::Counter:
        mine.count += theirs.count;
        break;
      case MetricKind::Gauge:
        mine.value = theirs.value;
        break;
      case MetricKind::Histogram:
        mine.dist.merge(theirs.dist);
        mine.sketch.merge(theirs.sketch);
        break;
    }
  }
}

void MetricsRegistry::reset_values() {
  for (auto& [name, m] : metrics_) {
    m.touched = false;
    m.count = 0;
    m.value = 0.0;
    m.dist.reset();
    m.sketch.reset();
  }
}

bool MetricsRegistry::contains(std::string_view name) const {
  return metrics_.find(name) != metrics_.end();
}

const Metric* MetricsRegistry::find(std::string_view name) const {
  const auto it = metrics_.find(name);
  return it == metrics_.end() ? nullptr : &it->second;
}

std::vector<std::string> MetricsRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(metrics_.size());
  for (const auto& [name, metric] : metrics_) out.push_back(name);
  return out;
}

}  // namespace xd::telemetry
