#include "telemetry/metrics.hpp"

namespace xd::telemetry {

namespace {

const char* kind_name(MetricKind k) {
  switch (k) {
    case MetricKind::Counter: return "counter";
    case MetricKind::Gauge: return "gauge";
    case MetricKind::Histogram: return "histogram";
  }
  return "?";
}

bool valid_segment_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_' || c == '-';
}

}  // namespace

bool MetricsRegistry::valid_name(std::string_view name) {
  if (name.empty() || name.front() == '.' || name.back() == '.') return false;
  bool prev_dot = false;
  for (char c : name) {
    if (c == '.') {
      if (prev_dot) return false;
      prev_dot = true;
    } else if (valid_segment_char(c)) {
      prev_dot = false;
    } else {
      return false;
    }
  }
  return true;
}

Metric& MetricsRegistry::get(std::string_view name, MetricKind kind) {
  require(valid_name(name),
          cat("invalid metric name '", name,
              "' (want dot-separated lower-case segments of [a-z0-9_-])"));
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    it = metrics_.emplace(std::string(name), Metric{}).first;
    it->second.kind = kind;
  } else {
    require(it->second.kind == kind,
            cat("metric '", name, "' already registered as ",
                kind_name(it->second.kind), ", requested as ", kind_name(kind)));
  }
  return it->second;
}

Counter MetricsRegistry::counter(std::string_view name) {
  return Counter(get(name, MetricKind::Counter));
}

Gauge MetricsRegistry::gauge(std::string_view name) {
  return Gauge(get(name, MetricKind::Gauge));
}

HistogramMetric MetricsRegistry::histogram(std::string_view name) {
  return HistogramMetric(get(name, MetricKind::Histogram));
}

bool MetricsRegistry::contains(std::string_view name) const {
  return metrics_.find(name) != metrics_.end();
}

const Metric* MetricsRegistry::find(std::string_view name) const {
  const auto it = metrics_.find(name);
  return it == metrics_.end() ? nullptr : &it->second;
}

std::vector<std::string> MetricsRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(metrics_.size());
  for (const auto& [name, metric] : metrics_) out.push_back(name);
  return out;
}

}  // namespace xd::telemetry
