// The per-run telemetry bundle: one metrics registry, one span recorder, one
// shared event-trace sink and one flight recorder, handed to engines as a
// single nullable pointer. A null Session* is the disabled state — every
// instrumentation site is gated on it, so a run without telemetry does no
// telemetry work beyond one pointer test per site.
//
//   telemetry::Session tel;
//   host::ContextConfig cfg;
//   cfg.telemetry = &tel;
//   host::Context ctx(cfg);
//   ctx.gemm(a, b, n);
//   std::string m = telemetry::metrics_to_json(tel.metrics());   // export
//   std::string t = telemetry::chrome_trace_json(tel, clock_mhz);
//
// Concurrency: the registry/recorder/trace members are not individually
// thread-safe; a Session shared across threads is synchronized through
// lock(). The runtime's synchronous path holds the lock for the duration of
// an op and records directly; pool workers record into a thread-local shard
// Session (no lock, no sharing) and fold it in at op completion with
// merge(), so concurrent submits observe full telemetry instead of running
// detached. The flight recorder has its own leaf mutex and may be used
// with or without the Session lock held.
#pragma once

#include <mutex>

#include "sim/trace.hpp"
#include "telemetry/flight.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"

namespace xd::telemetry {

class Session {
 public:
  explicit Session(std::size_t trace_capacity = 4096,
                   std::size_t flight_capacity = 256)
      : trace_(trace_capacity), flight_(flight_capacity) {
    // Event tracing is opt-in even when metrics/spans are on: emit sites
    // build strings, which the enabled() fast path avoids.
    trace_.set_enabled(false);
  }

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  SpanRecorder& spans() { return spans_; }
  const SpanRecorder& spans() const { return spans_; }

  sim::Trace& trace() { return trace_; }
  const sim::Trace& trace() const { return trace_; }

  FlightRecorder& flight() { return flight_; }
  const FlightRecorder& flight() const { return flight_; }

  // Shorthands for the common registrations.
  Counter counter(std::string_view name) { return metrics_.counter(name); }
  Gauge gauge(std::string_view name) { return metrics_.gauge(name); }
  HistogramMetric histogram(std::string_view name) {
    return metrics_.histogram(name);
  }
  void phase(std::string_view name, u64 cycles) { spans_.phase(name, cycles); }

  /// Serializes recording and export on a shared Session. Writers that
  /// record directly (the runtime's synchronous path) and readers that
  /// export while jobs may still be in flight both take this.
  std::unique_lock<std::mutex> lock() { return std::unique_lock(mu_); }

  /// Fold a worker shard into this session under the lock: metrics merge
  /// (counters add, histograms combine, gauges last-write-wins), completed
  /// spans land on `lane`'s timeline, and retained trace events re-emit into
  /// the shared sink (only when this session's tracing is enabled).
  void merge(const Session& shard, unsigned lane) {
    auto l = lock();
    merge_unlocked(shard, lane);
  }

  /// merge() body for callers already holding lock().
  void merge_unlocked(const Session& shard, unsigned lane) {
    metrics_.merge_from(shard.metrics_);
    spans_.merge_from(shard.spans_, lane);
    if (trace_.enabled()) {
      shard.trace_.for_each([this](const sim::TraceEvent& e) {
        trace_.emit(e.cycle, e.source, e.what);
      });
    }
  }

  void clear() {
    metrics_.clear();
    spans_.clear();
    trace_.clear();
    flight_.clear();
  }

  /// Between-ops reset for reused shard sessions: like clear(), but metric
  /// map nodes stay allocated (values zeroed, touched flags dropped), so a
  /// worker recording dozens of metrics per op skips the map teardown and
  /// re-registration cost. merge() ignores the untouched leftovers.
  void reset_for_reuse() {
    metrics_.reset_values();
    spans_.clear();
    trace_.clear();
    flight_.clear();
  }

 private:
  std::mutex mu_;
  MetricsRegistry metrics_;
  SpanRecorder spans_;
  sim::Trace trace_;
  FlightRecorder flight_;
};

}  // namespace xd::telemetry
