// The per-run telemetry bundle: one metrics registry, one span recorder and
// one shared event-trace sink, handed to engines as a single nullable
// pointer. A null Session* is the disabled state — every instrumentation
// site is gated on it, so a run without telemetry does no telemetry work
// beyond one pointer test per site.
//
//   telemetry::Session tel;
//   host::ContextConfig cfg;
//   cfg.telemetry = &tel;
//   host::Context ctx(cfg);
//   ctx.gemm(a, b, n);
//   std::string m = telemetry::metrics_to_json(tel.metrics());   // export
//   std::string t = telemetry::chrome_trace_json(tel, clock_mhz);
#pragma once

#include "sim/trace.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"

namespace xd::telemetry {

class Session {
 public:
  explicit Session(std::size_t trace_capacity = 4096) : trace_(trace_capacity) {
    // Event tracing is opt-in even when metrics/spans are on: emit sites
    // build strings, which the enabled() fast path avoids.
    trace_.set_enabled(false);
  }

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  SpanRecorder& spans() { return spans_; }
  const SpanRecorder& spans() const { return spans_; }

  sim::Trace& trace() { return trace_; }
  const sim::Trace& trace() const { return trace_; }

  // Shorthands for the common registrations.
  Counter counter(std::string_view name) { return metrics_.counter(name); }
  Gauge gauge(std::string_view name) { return metrics_.gauge(name); }
  HistogramMetric histogram(std::string_view name) {
    return metrics_.histogram(name);
  }
  void phase(std::string_view name, u64 cycles) { spans_.phase(name, cycles); }

  void clear() {
    metrics_.clear();
    spans_.clear();
    trace_.clear();
  }

 private:
  MetricsRegistry metrics_;
  SpanRecorder spans_;
  sim::Trace trace_;
};

}  // namespace xd::telemetry
