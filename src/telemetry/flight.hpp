// Flight recorder: the last-N completed operations, kept for post-mortems.
//
// Hardware BLAS boards keep status registers you can read after a hang to
// see what the device was doing; the runtime's equivalent is this bounded
// ring of per-op trace contexts. Every operation the runtime executes —
// synchronous run() calls and pool-worker submit() jobs alike — stamps a
// TraceContext with wall-clock nanoseconds at each lifecycle edge and
// deposits it here on completion, success or failure. The ring is fixed
// capacity, so a long-running process retains the most recent window at
// constant memory, and a crash dump (xdblas_cli --flight-out, or the dump
// printed on ConfigError) shows the ops leading up to the failure.
//
// Thread safety: record() and snapshot() take a private mutex for a short
// critical section copying one record; the recorder is a lock-hierarchy
// leaf — no callback runs and no other lock is taken while it is held, so
// callers may record while holding the Session lock.
#pragma once

#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

#include "common/util.hpp"

namespace xd::telemetry {

/// Per-op lifecycle record threaded from Runtime::submit/run through plan
/// lookup and engine execution. Timestamps are std::chrono::steady_clock
/// nanoseconds (monotonic, comparable within a process; 0 = edge not
/// reached). Synchronous run() calls have dequeue_ns == submit_ns: they
/// never wait in a queue.
struct TraceContext {
  u64 op_id = 0;            ///< process-unique, monotonic submission order
  const char* kind = "?";   ///< op_kind_name() — static storage, never freed
  unsigned lane = 0;        ///< 0 = caller thread, worker w runs on lane w+1
  u64 submit_ns = 0;        ///< entered the runtime (submit()/run() call)
  u64 dequeue_ns = 0;       ///< a worker picked the job up
  u64 plan_ns = 0;          ///< plan resolved (cache hit or build)
  u64 exec_ns = 0;          ///< engine dispatch began
  u64 complete_ns = 0;      ///< outcome ready (or error thrown)
  u64 cycles = 0;           ///< simulated cycles from the op's report
  bool failed = false;
  std::string error;        ///< first line of the failure, empty on success

  u64 queue_wait_ns() const { return dequeue_ns - submit_ns; }
  u64 e2e_ns() const { return complete_ns - submit_ns; }
};

/// Fixed-capacity ring of completed TraceContexts. Oldest records are
/// overwritten once `capacity` ops have landed; total() and errors() keep
/// counting past the window so a snapshot reports how much history was
/// dropped.
class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = 256)
      : capacity_(capacity == 0 ? 1 : capacity) {
    ring_.reserve(capacity_);
  }

  void record(const TraceContext& tc);

  /// Retained records, oldest first.
  std::vector<TraceContext> snapshot() const;

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  u64 total() const;   ///< ops ever recorded (including overwritten)
  u64 errors() const;  ///< failed ops ever recorded
  void clear();

 private:
  mutable std::mutex mu_;
  std::size_t capacity_;
  std::vector<TraceContext> ring_;  ///< grows to capacity_, then circular
  std::size_t head_ = 0;            ///< index of the oldest record
  u64 total_ = 0;
  u64 errors_ = 0;
};

}  // namespace xd::telemetry
