#include "telemetry/span.hpp"

#include <algorithm>

namespace xd::telemetry {

void SpanRecorder::begin_at(std::string_view name, u64 cycle) {
  Span s;
  s.name = std::string(name);
  s.begin = cycle;
  s.depth = static_cast<unsigned>(open_.size());
  open_.push_back(std::move(s));
  set_cursor(cycle);
}

void SpanRecorder::end_at(u64 cycle) {
  if (open_.empty()) throw SimError("SpanRecorder::end with no open span");
  Span s = std::move(open_.back());
  open_.pop_back();
  if (cycle < s.begin) {
    throw SimError(cat("span '", s.name, "' ends at cycle ", cycle,
                       " before its begin ", s.begin));
  }
  s.end = cycle;
  done_.push_back(std::move(s));
  set_cursor(cycle);
}

void SpanRecorder::phase(std::string_view name, u64 cycles) {
  Span s;
  s.name = std::string(name);
  s.begin = cursor_;
  s.end = cursor_ + cycles;
  s.depth = static_cast<unsigned>(open_.size());
  cursor_ = s.end;
  done_.push_back(std::move(s));
}

std::vector<Span> SpanRecorder::spans() const {
  std::vector<Span> out = done_;
  std::stable_sort(out.begin(), out.end(), [](const Span& a, const Span& b) {
    return a.begin != b.begin ? a.begin < b.begin : a.depth < b.depth;
  });
  return out;
}

u64 SpanRecorder::total_cycles(std::string_view name) const {
  u64 total = 0;
  for (const auto& s : done_) {
    if (s.name == name) total += s.cycles();
  }
  return total;
}

void SpanRecorder::clear() {
  done_.clear();
  open_.clear();
  cursor_ = 0;
}

}  // namespace xd::telemetry
