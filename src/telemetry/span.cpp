#include "telemetry/span.hpp"

#include <algorithm>

namespace xd::telemetry {

void SpanRecorder::begin_at(std::string_view name, u64 cycle) {
  Span s;
  s.name = std::string(name);
  s.begin = cycle;
  s.depth = static_cast<unsigned>(open_.size());
  open_.push_back(std::move(s));
  set_cursor(cycle);
}

void SpanRecorder::end_at(u64 cycle) {
  if (open_.empty()) throw SimError("SpanRecorder::end with no open span");
  Span s = std::move(open_.back());
  open_.pop_back();
  if (cycle < s.begin) {
    throw SimError(cat("span '", s.name, "' ends at cycle ", cycle,
                       " before its begin ", s.begin));
  }
  s.end = cycle;
  done_.push_back(std::move(s));
  set_cursor(cycle);
}

void SpanRecorder::phase(std::string_view name, u64 cycles) {
  Span s;
  s.name = std::string(name);
  s.begin = cursor_;
  s.end = cursor_ + cycles;
  s.depth = static_cast<unsigned>(open_.size());
  cursor_ = s.end;
  done_.push_back(std::move(s));
}

void SpanRecorder::merge_from(const SpanRecorder& other, unsigned lane) {
  if (!other.open_.empty()) {
    throw SimError(cat("SpanRecorder::merge_from: source still has ",
                       other.open_.size(), " open span(s)"));
  }
  const u64 offset = lane_cursor(lane);
  for (const Span& s : other.done_) {
    Span merged = s;
    merged.begin = offset + s.begin;
    merged.end = offset + s.end;
    merged.lane = lane;
    done_.push_back(std::move(merged));
  }
  const u64 advanced = offset + other.cursor_;
  if (lane == 0) {
    set_cursor(advanced);
  } else {
    if (lane_cursors_.size() < lane) lane_cursors_.resize(lane, 0);
    u64& cur = lane_cursors_[lane - 1];
    cur = advanced < cur ? cur : advanced;
  }
}

u64 SpanRecorder::lane_cursor(unsigned lane) const {
  if (lane == 0) return cursor_;
  return lane <= lane_cursors_.size() ? lane_cursors_[lane - 1] : 0;
}

std::vector<Span> SpanRecorder::spans() const {
  std::vector<Span> out = done_;
  std::stable_sort(out.begin(), out.end(), [](const Span& a, const Span& b) {
    if (a.begin != b.begin) return a.begin < b.begin;
    if (a.lane != b.lane) return a.lane < b.lane;
    return a.depth < b.depth;
  });
  return out;
}

u64 SpanRecorder::total_cycles(std::string_view name) const {
  u64 total = 0;
  for (const auto& s : done_) {
    if (s.name == name) total += s.cycles();
  }
  return total;
}

void SpanRecorder::clear() {
  done_.clear();
  open_.clear();
  cursor_ = 0;
  lane_cursors_.clear();
}

}  // namespace xd::telemetry
