// Machine-readable serialization of the telemetry state.
//
// Three consumers, three formats:
//  - metrics_to_json / metrics_to_csv: the full registry for dashboards and
//    the perf-trajectory scripts (one row per metric).
//  - report_to_json: a PerfReport with its derived figures, sanitized so a
//    zero-clock or zero-cycle report exports finite numbers.
//  - chrome_trace_json: spans + trace events in the Chrome trace_event
//    format (JSON Object Format), loadable in chrome://tracing or Perfetto.
//    Span begin/end cycles are converted to microseconds through the design
//    clock; with no clock, one cycle maps to one microsecond.
#pragma once

#include <string>
#include <string_view>

#include "host/report.hpp"
#include "telemetry/session.hpp"

namespace xd::telemetry {

std::string metrics_to_json(const MetricsRegistry& reg);

/// Header "name,kind,count,value,mean,stddev,min,max,p50,p95,p99"; one line
/// per metric, fields quoted per RFC 4180 when they contain commas/quotes.
std::string metrics_to_csv(const MetricsRegistry& reg);

std::string report_to_json(const host::PerfReport& r);

/// Spans only (no trace events), as a JSON array of
/// {name, begin, end, depth, lane}.
std::string spans_to_json(const SpanRecorder& spans);

/// Chrome trace_event export: spans become complete ("X") events, retained
/// trace events become instant ("i") events. `clock_mhz <= 0` falls back to
/// 1 cycle == 1 us. `trace_filter` (when non-empty) keeps only trace events
/// whose source contains it; spans are always exported. Each recording lane
/// maps to its own tid (0 = caller thread, w+1 = pool worker w) with a
/// thread_name metadata event, so concurrent batches render as parallel
/// per-worker tracks in chrome://tracing or Perfetto.
std::string chrome_trace_json(const Session& session, double clock_mhz,
                              std::string_view trace_filter = {});

/// Flight-recorder dump: {capacity, total, errors, records: [...]}, records
/// oldest-first with per-op lifecycle timestamps (see TraceContext).
std::string flight_to_json(const FlightRecorder& flight);

}  // namespace xd::telemetry
