// Phase spans: named, nestable [begin, end) cycle intervals over a run.
//
// The paper's experiments decompose every latency into phases (Table 4's
// staging-vs-compute split); spans are how the simulator records that
// decomposition. Two recording styles share one timeline:
//
//   - begin()/end(): open/close a span at an explicit cycle (used by
//     sim::Engine and the cycle-loop engines, which know "now"). Opens nest:
//     a span begun while another is open becomes its child (depth + 1).
//   - phase(name, cycles): append a closed span of known length at the
//     cursor and advance it (used by the analytic engines and the host
//     layer, which derive phase lengths from traffic models).
//
// The cursor tracks the end of the timeline so sequentially recorded phases
// tile it without gaps; total_cycles(name) sums all spans of one name, which
// is what reports and the exporters aggregate.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/util.hpp"

namespace xd::telemetry {

struct Span {
  std::string name;
  u64 begin = 0;
  u64 end = 0;        ///< exclusive
  unsigned depth = 0; ///< nesting level (0 = top)
  /// Which execution lane recorded the span: 0 is the recorder's own
  /// timeline (the synchronous path); merged worker shards land on lane
  /// worker-id + 1. The Chrome exporter renders one track per lane, so a
  /// concurrent batch shows as parallel per-worker tracks.
  unsigned lane = 0;
  u64 cycles() const { return end - begin; }
};

class SpanRecorder {
 public:
  /// Open a span at the cursor (or an explicit cycle). Nested.
  void begin(std::string_view name) { begin_at(name, cursor_); }
  void begin_at(std::string_view name, u64 cycle);

  /// Close the innermost open span at the cursor (or an explicit cycle).
  /// Throws SimError when no span is open or `cycle` precedes its begin.
  void end() { end_at(cursor_); }
  void end_at(u64 cycle);

  /// Append a closed span of `cycles` at the cursor and advance it.
  void phase(std::string_view name, u64 cycles);

  /// Append every completed span of `other` onto `lane`'s timeline. Each
  /// incoming span keeps its shape but is offset by the lane's cursor, so
  /// successive merges tile the lane the way sequential phase() calls tile
  /// lane 0; the lane cursor then advances past the merged run. Lane 0 is
  /// this recorder's own timeline (merging there is equivalent to having
  /// recorded the spans directly). Throws SimError if `other` still has
  /// open spans — a shard must be fully closed before it is merged.
  void merge_from(const SpanRecorder& other, unsigned lane);

  /// End of the recorded timeline; phases append here.
  u64 cursor() const { return cursor_; }
  void set_cursor(u64 cycle) { cursor_ = cycle < cursor_ ? cursor_ : cycle; }

  /// End of a merge lane's timeline (lane 0 == cursor()).
  u64 lane_cursor(unsigned lane) const;

  unsigned open_depth() const { return static_cast<unsigned>(open_.size()); }

  /// Completed spans, ordered by (begin, depth) — timeline order.
  std::vector<Span> spans() const;

  /// Sum of cycles over completed spans named `name`.
  u64 total_cycles(std::string_view name) const;

  std::size_t completed() const { return done_.size(); }
  bool empty() const { return done_.empty() && open_.empty(); }
  void clear();

 private:
  std::vector<Span> done_;
  std::vector<Span> open_;  ///< stack of currently open spans
  u64 cursor_ = 0;
  std::vector<u64> lane_cursors_;  ///< per-lane merge cursors, lanes >= 1
};

/// RAII helper: opens a span on construction, closes it on destruction with
/// the cycle read from a caller-supplied reference (the engine's loop
/// counter). Null recorder → no-op.
class ScopedSpan {
 public:
  ScopedSpan(SpanRecorder* rec, std::string_view name, const u64& cycle_ref)
      : rec_(rec), cycle_(cycle_ref) {
    if (rec_) rec_->begin_at(name, cycle_ref);
  }
  ~ScopedSpan() {
    if (rec_) rec_->end_at(cycle_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  SpanRecorder* rec_;
  const u64& cycle_;
};

}  // namespace xd::telemetry
