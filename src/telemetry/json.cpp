#include "telemetry/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace xd::telemetry {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  if (v == static_cast<double>(static_cast<i64>(v)) && std::fabs(v) < 1e15) {
    return cat(static_cast<i64>(v));
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  // Trim to the shortest representation that round-trips.
  for (int prec = 1; prec < 17; ++prec) {
    char shorter[32];
    std::snprintf(shorter, sizeof shorter, "%.*g", prec, v);
    double back = 0.0;
    std::sscanf(shorter, "%lf", &back);
    if (back == v) return shorter;
  }
  return buf;
}

void JsonWriter::pre_value() {
  if (!stack_.empty() && stack_.back() == '{' && !have_key_) {
    throw SimError("JsonWriter: value inside object without key()");
  }
  if (need_comma_ && !have_key_) out_ += ',';
  have_key_ = false;
}

JsonWriter& JsonWriter::begin_object() {
  pre_value();
  out_ += '{';
  stack_.push_back('{');
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != '{') {
    throw SimError("JsonWriter: end_object without begin_object");
  }
  stack_.pop_back();
  out_ += '}';
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  pre_value();
  out_ += '[';
  stack_.push_back('[');
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != '[') {
    throw SimError("JsonWriter: end_array without begin_array");
  }
  stack_.pop_back();
  out_ += ']';
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (stack_.empty() || stack_.back() != '{') {
    throw SimError("JsonWriter: key() outside an object");
  }
  if (need_comma_) out_ += ',';
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
  need_comma_ = false;
  have_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  pre_value();
  out_ += '"';
  out_ += json_escape(s);
  out_ += '"';
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  pre_value();
  out_ += json_number(v);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(u64 v) {
  pre_value();
  out_ += cat(v);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(int v) {
  pre_value();
  out_ += cat(v);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  pre_value();
  out_ += v ? "true" : "false";
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json) {
  pre_value();
  out_ += json;
  need_comma_ = true;
  return *this;
}

std::string JsonWriter::str() const {
  if (!stack_.empty()) {
    throw SimError(cat("JsonWriter: ", stack_.size(), " unclosed container(s)"));
  }
  return out_;
}

// ---------------------------------------------------------------------------
// Validator: recursive descent over the RFC 8259 grammar.

namespace {

struct Parser {
  std::string_view t;
  std::size_t pos = 0;
  std::string err;
  static constexpr int kMaxDepth = 256;

  bool fail(const std::string& what) {
    if (err.empty()) err = cat(what, " at offset ", pos);
    return false;
  }
  void skip_ws() {
    while (pos < t.size() && (t[pos] == ' ' || t[pos] == '\t' || t[pos] == '\n' ||
                              t[pos] == '\r')) {
      ++pos;
    }
  }
  bool literal(std::string_view word) {
    if (t.substr(pos, word.size()) != word) return fail(cat("expected '", word, "'"));
    pos += word.size();
    return true;
  }

  bool string() {
    if (pos >= t.size() || t[pos] != '"') return fail("expected string");
    ++pos;
    while (pos < t.size()) {
      const unsigned char c = static_cast<unsigned char>(t[pos]);
      if (c == '"') {
        ++pos;
        return true;
      }
      if (c < 0x20) return fail("unescaped control character in string");
      if (c == '\\') {
        ++pos;
        if (pos >= t.size()) return fail("truncated escape");
        const char e = t[pos];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos + i >= t.size() || !std::isxdigit(static_cast<unsigned char>(t[pos + i]))) {
              return fail("bad \\u escape");
            }
          }
          pos += 4;
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                   e != 'n' && e != 'r' && e != 't') {
          return fail("bad escape character");
        }
      }
      ++pos;
    }
    return fail("unterminated string");
  }

  bool number() {
    const std::size_t start = pos;
    if (pos < t.size() && t[pos] == '-') ++pos;
    if (pos >= t.size() || !std::isdigit(static_cast<unsigned char>(t[pos]))) {
      pos = start;
      return fail("expected number");
    }
    if (t[pos] == '0') {
      ++pos;
    } else {
      while (pos < t.size() && std::isdigit(static_cast<unsigned char>(t[pos]))) ++pos;
    }
    if (pos < t.size() && t[pos] == '.') {
      ++pos;
      if (pos >= t.size() || !std::isdigit(static_cast<unsigned char>(t[pos]))) {
        return fail("expected digit after '.'");
      }
      while (pos < t.size() && std::isdigit(static_cast<unsigned char>(t[pos]))) ++pos;
    }
    if (pos < t.size() && (t[pos] == 'e' || t[pos] == 'E')) {
      ++pos;
      if (pos < t.size() && (t[pos] == '+' || t[pos] == '-')) ++pos;
      if (pos >= t.size() || !std::isdigit(static_cast<unsigned char>(t[pos]))) {
        return fail("expected exponent digits");
      }
      while (pos < t.size() && std::isdigit(static_cast<unsigned char>(t[pos]))) ++pos;
    }
    return true;
  }

  bool value(int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos >= t.size()) return fail("expected value");
    switch (t[pos]) {
      case '{': return object(depth);
      case '[': return array(depth);
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object(int depth) {
    ++pos;  // '{'
    skip_ws();
    if (pos < t.size() && t[pos] == '}') {
      ++pos;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (pos >= t.size() || t[pos] != ':') return fail("expected ':'");
      ++pos;
      if (!value(depth + 1)) return false;
      skip_ws();
      if (pos < t.size() && t[pos] == ',') {
        ++pos;
        continue;
      }
      if (pos < t.size() && t[pos] == '}') {
        ++pos;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool array(int depth) {
    ++pos;  // '['
    skip_ws();
    if (pos < t.size() && t[pos] == ']') {
      ++pos;
      return true;
    }
    while (true) {
      if (!value(depth + 1)) return false;
      skip_ws();
      if (pos < t.size() && t[pos] == ',') {
        ++pos;
        continue;
      }
      if (pos < t.size() && t[pos] == ']') {
        ++pos;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }
};

}  // namespace

bool json_validate(std::string_view text, std::string* error) {
  Parser p{text, 0, {}};
  bool ok = p.value(0);
  if (ok) {
    p.skip_ws();
    if (p.pos != p.t.size()) ok = p.fail("trailing characters");
  }
  if (!ok && error) *error = p.err;
  return ok;
}

}  // namespace xd::telemetry
