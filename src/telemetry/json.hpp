// Minimal JSON emission and validation for the telemetry exporters.
//
// The writer is a streaming builder with automatic comma/nesting handling;
// numbers are sanitized (NaN/inf serialize as 0) so a degenerate report —
// zero clock, zero cycles — can never produce an unparseable export. The
// validator is a full recursive-descent parse (RFC 8259 grammar, no object
// building) used by tests and the `json_validate` CLI check so exporter
// breakage fails tier-1.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/util.hpp"

namespace xd::telemetry {

/// Escape `s` for inclusion in a JSON string literal (no surrounding quotes).
std::string json_escape(std::string_view s);

/// Shortest round-trippable decimal for `v`; non-finite values become "0".
std::string json_number(double v);

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Key inside an object; must be followed by a value or container open.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(double v);
  JsonWriter& value(u64 v);
  JsonWriter& value(unsigned v) { return value(static_cast<u64>(v)); }
  JsonWriter& value(int v);
  JsonWriter& value(bool v);

  /// Splice a pre-serialized JSON value (e.g. another exporter's output)
  /// into the stream as one value. The caller vouches for its validity.
  JsonWriter& raw(std::string_view json);

  /// key() + value() in one call.
  template <typename T>
  JsonWriter& kv(std::string_view k, const T& v) {
    key(k);
    return value(v);
  }

  /// Finished document. Throws SimError if containers are still open.
  std::string str() const;

 private:
  void pre_value();

  std::string out_;
  std::vector<char> stack_;      ///< '{' or '['
  bool need_comma_ = false;
  bool have_key_ = false;
};

/// Validate that `text` is exactly one well-formed JSON document.
/// On failure returns false and, when `error` is non-null, a message with
/// the byte offset of the problem.
bool json_validate(std::string_view text, std::string* error = nullptr);

}  // namespace xd::telemetry
