#include "telemetry/flight.hpp"

namespace xd::telemetry {

void FlightRecorder::record(const TraceContext& tc) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(tc);
  } else {
    ring_[head_] = tc;
    head_ = (head_ + 1) % capacity_;
  }
  ++total_;
  if (tc.failed) ++errors_;
}

std::vector<TraceContext> FlightRecorder::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceContext> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::size_t FlightRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

u64 FlightRecorder::total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

u64 FlightRecorder::errors() const {
  std::lock_guard<std::mutex> lock(mu_);
  return errors_;
}

void FlightRecorder::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  head_ = 0;
  total_ = 0;
  errors_ = 0;
}

}  // namespace xd::telemetry
