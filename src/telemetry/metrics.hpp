// Library-wide metrics registry.
//
// Components of the simulated machine (SRAM banks, channels, FP units, the
// BLAS engines themselves) publish named performance counters into one
// registry per run, so a single export call yields the whole machine's
// accounting — the simulator's equivalent of the per-module counters FPGA
// BLAS designs expose for tuning.
//
// Names are hierarchical, dot-separated, lower-case:
//
//   mem.sram.bank0.stall_cycles     counter (monotonic count)
//   fpu.gemv.mul.utilization        gauge   (point-in-time double)
//   blas1.dot.vector_words          histogram (distribution of samples)
//
// Handles returned by counter()/gauge()/histogram() stay valid for the
// registry's lifetime (node-based storage); re-requesting a name returns the
// same metric, and requesting an existing name as a different kind throws
// ConfigError. Recording through a handle is a couple of arithmetic ops —
// but the intended pattern is cheaper still: components keep their own plain
// counters on the hot path and publish() a snapshot once per run, so a run
// with telemetry disabled does no registry work at all.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/stats.hpp"
#include "common/util.hpp"

namespace xd::telemetry {

enum class MetricKind { Counter, Gauge, Histogram };

/// The registry's storage record; handles below are typed views of it.
struct Metric {
  MetricKind kind = MetricKind::Counter;
  u64 count = 0;        ///< counter value
  double value = 0.0;   ///< gauge value
  RunningStats dist;    ///< histogram samples
};

/// Monotonically increasing count (events, cycles, words moved).
class Counter {
 public:
  explicit Counter(Metric& m) : m_(&m) {}
  void add(u64 delta = 1) { m_->count += delta; }
  u64 value() const { return m_->count; }

 private:
  Metric* m_;
};

/// Last-write-wins instantaneous value (utilization, rates, configuration).
class Gauge {
 public:
  explicit Gauge(Metric& m) : m_(&m) {}
  void set(double v) { m_->value = v; }
  double value() const { return m_->value; }

 private:
  Metric* m_;
};

/// Streaming distribution (count / mean / stddev / min / max / sum).
class HistogramMetric {
 public:
  explicit HistogramMetric(Metric& m) : m_(&m) {}
  void observe(double sample) { m_->dist.add(sample); }
  const RunningStats& stats() const { return m_->dist; }

 private:
  Metric* m_;
};

class MetricsRegistry {
 public:
  /// Get-or-create. Throws ConfigError on an invalid name (see valid_name)
  /// or when `name` already exists with a different kind.
  Counter counter(std::string_view name);
  Gauge gauge(std::string_view name);
  HistogramMetric histogram(std::string_view name);

  bool contains(std::string_view name) const;
  const Metric* find(std::string_view name) const;
  std::size_t size() const { return metrics_.size(); }
  bool empty() const { return metrics_.empty(); }
  void clear() { metrics_.clear(); }

  /// All registered names, sorted (map order).
  std::vector<std::string> names() const;

  /// Iterate (name, metric) in sorted name order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [name, metric] : metrics_) fn(name, metric);
  }

  /// Valid names are non-empty dot-separated segments of [a-z0-9_-];
  /// no leading/trailing/double dots.
  static bool valid_name(std::string_view name);

 private:
  Metric& get(std::string_view name, MetricKind kind);

  /// std::map: node-based, so Metric addresses are stable across inserts.
  std::map<std::string, Metric, std::less<>> metrics_;
};

}  // namespace xd::telemetry
