// Library-wide metrics registry.
//
// Components of the simulated machine (SRAM banks, channels, FP units, the
// BLAS engines themselves) publish named performance counters into one
// registry per run, so a single export call yields the whole machine's
// accounting — the simulator's equivalent of the per-module counters FPGA
// BLAS designs expose for tuning.
//
// Names are hierarchical, dot-separated, lower-case:
//
//   mem.sram.bank0.stall_cycles     counter (monotonic count)
//   fpu.gemv.mul.utilization        gauge   (point-in-time double)
//   blas1.dot.vector_words          histogram (distribution of samples)
//
// Handles returned by counter()/gauge()/histogram() stay valid for the
// registry's lifetime (node-based storage); re-requesting a name returns the
// same metric, and requesting an existing name as a different kind throws
// ConfigError. Recording through a handle is a couple of arithmetic ops —
// but the intended pattern is cheaper still: components keep their own plain
// counters on the hot path and publish() a snapshot once per run, so a run
// with telemetry disabled does no registry work at all.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/stats.hpp"
#include "common/util.hpp"

namespace xd::telemetry {

enum class MetricKind { Counter, Gauge, Histogram };

/// The registry's storage record; handles below are typed views of it.
struct Metric {
  MetricKind kind = MetricKind::Counter;
  bool touched = false;  ///< any recording since creation / reset_values()
  u64 count = 0;        ///< counter value
  double value = 0.0;   ///< gauge value
  RunningStats dist;    ///< histogram moments/extremes
  QuantileSketch sketch;  ///< histogram percentiles (p50/p95/p99 exports)
};

/// Monotonically increasing count (events, cycles, words moved).
class Counter {
 public:
  explicit Counter(Metric& m) : m_(&m) {}
  void add(u64 delta = 1) {
    m_->count += delta;
    m_->touched = true;
  }
  u64 value() const { return m_->count; }

 private:
  Metric* m_;
};

/// Last-write-wins instantaneous value (utilization, rates, configuration).
class Gauge {
 public:
  explicit Gauge(Metric& m) : m_(&m) {}
  void set(double v) {
    m_->value = v;
    m_->touched = true;
  }
  double value() const { return m_->value; }

 private:
  Metric* m_;
};

/// Streaming distribution (count / mean / stddev / min / max / sum, plus
/// percentiles through the bucketed quantile sketch).
class HistogramMetric {
 public:
  explicit HistogramMetric(Metric& m) : m_(&m) {}
  void observe(double sample) {
    m_->dist.add(sample);
    m_->sketch.add(sample);
    m_->touched = true;
  }
  const RunningStats& stats() const { return m_->dist; }
  /// Sketch quantile clamped to the exactly tracked [min, max], so constant
  /// distributions report their value exactly and no percentile ever leaves
  /// the observed range.
  double percentile(double q) const;

 private:
  Metric* m_;
};

class MetricsRegistry {
 public:
  /// Get-or-create. Throws ConfigError on an invalid name (see valid_name)
  /// or when `name` already exists with a different kind.
  Counter counter(std::string_view name);
  Gauge gauge(std::string_view name);
  HistogramMetric histogram(std::string_view name);

  bool contains(std::string_view name) const;
  const Metric* find(std::string_view name) const;
  std::size_t size() const { return metrics_.size(); }
  bool empty() const { return metrics_.empty(); }
  void clear() { metrics_.clear(); }

  /// Zero every metric's recorded values but keep the map nodes (names,
  /// kinds, handle addresses). Much cheaper than clear() + re-registration,
  /// so per-op shard sessions reuse their maps across ops; merge_from()
  /// skips entries untouched since the reset, so a stale gauge from an
  /// earlier op on the same shard never leaks into a later merge.
  void reset_values();

  /// All registered names, sorted (map order).
  std::vector<std::string> names() const;

  /// Iterate (name, metric) in sorted name order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [name, metric] : metrics_) fn(name, metric);
  }

  /// Merge another registry into this one: counters add, gauges take the
  /// other's value (last write wins), histograms combine their moments and
  /// sketches. Used by Session::merge to fold per-worker shards into the
  /// shared registry; histogram counts and sketch percentiles are exact
  /// under any merge order. Throws ConfigError when a name exists in both
  /// registries with different kinds.
  void merge_from(const MetricsRegistry& other);

  /// Valid names are non-empty dot-separated segments of [a-z0-9_-];
  /// no leading/trailing/double dots.
  static bool valid_name(std::string_view name);

  /// Clamped sketch quantile of a histogram metric (see
  /// HistogramMetric::percentile).
  static double percentile(const Metric& m, double q);

 private:
  Metric& get(std::string_view name, MetricKind kind);

  /// std::map: node-based, so Metric addresses are stable across inserts.
  std::map<std::string, Metric, std::less<>> metrics_;
};

}  // namespace xd::telemetry
