#include "telemetry/export.hpp"

#include "telemetry/json.hpp"

namespace xd::telemetry {

namespace {

const char* kind_str(MetricKind k) {
  switch (k) {
    case MetricKind::Counter: return "counter";
    case MetricKind::Gauge: return "gauge";
    case MetricKind::Histogram: return "histogram";
  }
  return "?";
}

}  // namespace

std::string metrics_to_json(const MetricsRegistry& reg) {
  JsonWriter w;
  w.begin_object();
  reg.for_each([&](const std::string& name, const Metric& m) {
    w.key(name).begin_object();
    w.kv("kind", kind_str(m.kind));
    switch (m.kind) {
      case MetricKind::Counter:
        w.kv("value", m.count);
        break;
      case MetricKind::Gauge:
        w.kv("value", m.value);
        break;
      case MetricKind::Histogram:
        w.kv("count", static_cast<u64>(m.dist.count()));
        w.kv("sum", m.dist.sum());
        w.kv("mean", m.dist.mean());
        w.kv("stddev", m.dist.stddev());
        w.kv("min", m.dist.min());
        w.kv("max", m.dist.max());
        break;
    }
    w.end_object();
  });
  w.end_object();
  return w.str();
}

std::string metrics_to_csv(const MetricsRegistry& reg) {
  std::string out = "name,kind,count,value,mean,stddev,min,max\n";
  reg.for_each([&](const std::string& name, const Metric& m) {
    out += name;
    out += ',';
    out += kind_str(m.kind);
    switch (m.kind) {
      case MetricKind::Counter:
        out += cat(",", m.count, ",", m.count, ",,,,");
        break;
      case MetricKind::Gauge:
        out += cat(",1,", json_number(m.value), ",,,,");
        break;
      case MetricKind::Histogram:
        out += cat(",", m.dist.count(), ",", json_number(m.dist.sum()), ",",
                   json_number(m.dist.mean()), ",", json_number(m.dist.stddev()),
                   ",", json_number(m.dist.min()), ",", json_number(m.dist.max()));
        break;
    }
    out += '\n';
  });
  return out;
}

std::string report_to_json(const host::PerfReport& r) {
  JsonWriter w;
  w.begin_object();
  w.kv("design", r.design);
  w.kv("cycles", r.cycles);
  w.kv("compute_cycles", r.compute_cycles);
  w.kv("staging_cycles", r.staging_cycles);
  w.kv("flops", r.flops);
  w.kv("stall_cycles", r.stall_cycles);
  w.kv("sram_words", r.sram_words);
  w.kv("dram_words", r.dram_words);
  w.kv("clock_mhz", r.clock_mhz);
  w.kv("seconds", r.seconds());
  w.kv("sustained_mflops", r.sustained_mflops());
  w.kv("flops_per_cycle", r.flops_per_cycle());
  w.kv("sram_bytes_per_s", r.sram_bytes_per_s());
  w.kv("dram_bytes_per_s", r.dram_bytes_per_s());
  w.end_object();
  return w.str();
}

std::string spans_to_json(const SpanRecorder& spans) {
  JsonWriter w;
  w.begin_array();
  for (const auto& s : spans.spans()) {
    w.begin_object();
    w.kv("name", s.name);
    w.kv("begin", s.begin);
    w.kv("end", s.end);
    w.kv("depth", s.depth);
    w.end_object();
  }
  w.end_array();
  return w.str();
}

std::string chrome_trace_json(const Session& session, double clock_mhz,
                              std::string_view trace_filter) {
  // Microseconds per cycle: trace_event timestamps are in us.
  const double us = clock_mhz > 0 ? 1.0 / clock_mhz : 1.0;

  JsonWriter w;
  w.begin_object();
  w.kv("displayTimeUnit", "ms");
  w.key("traceEvents").begin_array();

  // Process/thread naming metadata so the viewer shows meaningful lanes.
  w.begin_object();
  w.kv("name", "process_name").kv("ph", "M").kv("pid", 1).kv("tid", 0);
  w.key("args").begin_object().kv("name", "xdblas").end_object();
  w.end_object();

  for (const auto& s : session.spans().spans()) {
    w.begin_object();
    w.kv("name", s.name);
    w.kv("ph", "X");
    w.kv("pid", 1);
    // One lane per nesting depth keeps overlapping sibling phases visible.
    w.kv("tid", static_cast<u64>(s.depth + 1));
    w.kv("ts", static_cast<double>(s.begin) * us);
    w.kv("dur", static_cast<double>(s.cycles()) * us);
    w.key("args").begin_object();
    w.kv("begin_cycle", s.begin);
    w.kv("end_cycle", s.end);
    w.end_object();
    w.end_object();
  }

  session.trace().for_each([&](const sim::TraceEvent& e) {
    if (!trace_filter.empty() && e.source.find(trace_filter) == std::string::npos) {
      return;
    }
    w.begin_object();
    w.kv("name", e.what);
    w.kv("cat", e.source);
    w.kv("ph", "i");
    w.kv("s", "t");  // thread-scoped instant
    w.kv("pid", 1);
    w.kv("tid", 1);
    w.kv("ts", static_cast<double>(e.cycle) * us);
    w.key("args").begin_object();
    w.kv("cycle", e.cycle);
    w.kv("source", e.source);
    w.end_object();
    w.end_object();
  });

  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace xd::telemetry
