#include "telemetry/export.hpp"

#include <algorithm>
#include <vector>

#include "telemetry/json.hpp"

namespace xd::telemetry {

namespace {

const char* kind_str(MetricKind k) {
  switch (k) {
    case MetricKind::Counter: return "counter";
    case MetricKind::Gauge: return "gauge";
    case MetricKind::Histogram: return "histogram";
  }
  return "?";
}

/// RFC 4180 field quoting: wrap in double quotes when the value contains a
/// comma, quote, or newline, doubling any embedded quotes. Registry names
/// are restricted to [a-z0-9_.-] today, but the CSV stays well-formed even
/// if that ever loosens.
std::string csv_field(std::string_view v) {
  if (v.find_first_of(",\"\n\r") == std::string_view::npos) return std::string(v);
  std::string out = "\"";
  for (char c : v) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string metrics_to_json(const MetricsRegistry& reg) {
  JsonWriter w;
  w.begin_object();
  reg.for_each([&](const std::string& name, const Metric& m) {
    w.key(name).begin_object();
    w.kv("kind", kind_str(m.kind));
    switch (m.kind) {
      case MetricKind::Counter:
        w.kv("value", m.count);
        break;
      case MetricKind::Gauge:
        w.kv("value", m.value);
        break;
      case MetricKind::Histogram:
        w.kv("count", static_cast<u64>(m.dist.count()));
        w.kv("sum", m.dist.sum());
        w.kv("mean", m.dist.mean());
        w.kv("stddev", m.dist.stddev());
        w.kv("min", m.dist.min());
        w.kv("max", m.dist.max());
        w.kv("p50", MetricsRegistry::percentile(m, 0.50));
        w.kv("p95", MetricsRegistry::percentile(m, 0.95));
        w.kv("p99", MetricsRegistry::percentile(m, 0.99));
        break;
    }
    w.end_object();
  });
  w.end_object();
  return w.str();
}

std::string metrics_to_csv(const MetricsRegistry& reg) {
  std::string out = "name,kind,count,value,mean,stddev,min,max,p50,p95,p99\n";
  reg.for_each([&](const std::string& name, const Metric& m) {
    out += csv_field(name);
    out += ',';
    out += kind_str(m.kind);
    switch (m.kind) {
      case MetricKind::Counter:
        out += cat(",", m.count, ",", m.count, ",,,,,,,");
        break;
      case MetricKind::Gauge:
        out += cat(",1,", json_number(m.value), ",,,,,,,");
        break;
      case MetricKind::Histogram:
        out += cat(",", m.dist.count(), ",", json_number(m.dist.sum()), ",",
                   json_number(m.dist.mean()), ",", json_number(m.dist.stddev()),
                   ",", json_number(m.dist.min()), ",", json_number(m.dist.max()),
                   ",", json_number(MetricsRegistry::percentile(m, 0.50)),
                   ",", json_number(MetricsRegistry::percentile(m, 0.95)),
                   ",", json_number(MetricsRegistry::percentile(m, 0.99)));
        break;
    }
    out += '\n';
  });
  return out;
}

std::string report_to_json(const host::PerfReport& r) {
  JsonWriter w;
  w.begin_object();
  w.kv("design", r.design);
  w.kv("cycles", r.cycles);
  w.kv("compute_cycles", r.compute_cycles);
  w.kv("staging_cycles", r.staging_cycles);
  w.kv("flops", r.flops);
  w.kv("stall_cycles", r.stall_cycles);
  w.kv("sram_words", r.sram_words);
  w.kv("dram_words", r.dram_words);
  w.kv("clock_mhz", r.clock_mhz);
  w.kv("seconds", r.seconds());
  w.kv("sustained_mflops", r.sustained_mflops());
  w.kv("flops_per_cycle", r.flops_per_cycle());
  w.kv("sram_bytes_per_s", r.sram_bytes_per_s());
  w.kv("dram_bytes_per_s", r.dram_bytes_per_s());
  w.end_object();
  return w.str();
}

std::string spans_to_json(const SpanRecorder& spans) {
  JsonWriter w;
  w.begin_array();
  for (const auto& s : spans.spans()) {
    w.begin_object();
    w.kv("name", s.name);
    w.kv("begin", s.begin);
    w.kv("end", s.end);
    w.kv("depth", s.depth);
    w.kv("lane", s.lane);
    w.end_object();
  }
  w.end_array();
  return w.str();
}

std::string chrome_trace_json(const Session& session, double clock_mhz,
                              std::string_view trace_filter) {
  // Microseconds per cycle: trace_event timestamps are in us.
  const double us = clock_mhz > 0 ? 1.0 / clock_mhz : 1.0;

  JsonWriter w;
  w.begin_object();
  w.kv("displayTimeUnit", "ms");
  w.key("traceEvents").begin_array();

  // Process/thread naming metadata so the viewer shows meaningful lanes.
  w.begin_object();
  w.kv("name", "process_name").kv("ph", "M").kv("pid", 1).kv("tid", 0);
  w.key("args").begin_object().kv("name", "xdblas").end_object();
  w.end_object();

  const std::vector<Span> spans = session.spans().spans();

  // One viewer track per recording lane: lane 0 is the caller thread's
  // timeline, lane w+1 is pool worker w (merged shards from Runtime::submit).
  // A concurrent batch therefore renders as parallel per-worker tracks.
  std::vector<unsigned> lanes;
  for (const auto& s : spans) {
    if (std::find(lanes.begin(), lanes.end(), s.lane) == lanes.end()) {
      lanes.push_back(s.lane);
    }
  }
  std::sort(lanes.begin(), lanes.end());
  for (unsigned lane : lanes) {
    w.begin_object();
    w.kv("name", "thread_name").kv("ph", "M").kv("pid", 1);
    w.kv("tid", static_cast<u64>(lane));
    w.key("args").begin_object();
    w.kv("name", lane == 0 ? std::string("caller") : cat("worker ", lane - 1));
    w.end_object();
    w.end_object();
  }

  for (const auto& s : spans) {
    w.begin_object();
    w.kv("name", s.name);
    w.kv("ph", "X");
    w.kv("pid", 1);
    w.kv("tid", static_cast<u64>(s.lane));
    w.kv("ts", static_cast<double>(s.begin) * us);
    w.kv("dur", static_cast<double>(s.cycles()) * us);
    w.key("args").begin_object();
    w.kv("begin_cycle", s.begin);
    w.kv("end_cycle", s.end);
    w.kv("depth", s.depth);
    w.kv("lane", s.lane);
    w.end_object();
    w.end_object();
  }

  session.trace().for_each([&](const sim::TraceEvent& e) {
    if (!trace_filter.empty() && e.source.find(trace_filter) == std::string::npos) {
      return;
    }
    w.begin_object();
    w.kv("name", e.what);
    w.kv("cat", e.source);
    w.kv("ph", "i");
    w.kv("s", "t");  // thread-scoped instant
    w.kv("pid", 1);
    w.kv("tid", 0);  // the shared sink has no lane; pin to the caller track
    w.kv("ts", static_cast<double>(e.cycle) * us);
    w.key("args").begin_object();
    w.kv("cycle", e.cycle);
    w.kv("source", e.source);
    w.end_object();
    w.end_object();
  });

  w.end_array();
  w.end_object();
  return w.str();
}

std::string flight_to_json(const FlightRecorder& flight) {
  const std::vector<TraceContext> records = flight.snapshot();
  JsonWriter w;
  w.begin_object();
  w.kv("capacity", static_cast<u64>(flight.capacity()));
  w.kv("total", flight.total());
  w.kv("errors", flight.errors());
  w.key("records").begin_array();
  for (const auto& tc : records) {
    w.begin_object();
    w.kv("op_id", tc.op_id);
    w.kv("kind", tc.kind);
    w.kv("lane", tc.lane);
    w.kv("submit_ns", tc.submit_ns);
    w.kv("dequeue_ns", tc.dequeue_ns);
    w.kv("plan_ns", tc.plan_ns);
    w.kv("exec_ns", tc.exec_ns);
    w.kv("complete_ns", tc.complete_ns);
    w.kv("queue_wait_ns", tc.queue_wait_ns());
    w.kv("e2e_ns", tc.e2e_ns());
    w.kv("cycles", tc.cycles);
    w.kv("failed", tc.failed);
    w.kv("error", tc.error);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace xd::telemetry
