// Deterministic pseudo-random generators for workload construction.
//
// Every test and benchmark in this repository must be reproducible, so all
// random data flows through this seeded generator rather than std::random_device.
#pragma once

#include <cstdint>
#include <vector>

namespace xd {

/// xoshiro256** — small, fast, high-quality PRNG; seeded deterministically.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5005u);

  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] (inclusive).
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi);
  /// Standard normal via Box-Muller.
  double normal();
  /// Raw 64-bit pattern interpreted as double after masking to a finite value.
  /// Used for bit-pattern fuzzing of the softfloat units.
  std::uint64_t raw_bits();

  /// Vector of uniform values in [lo, hi).
  std::vector<double> vector(std::size_t n, double lo = -1.0, double hi = 1.0);
  /// Row-major n x m matrix of uniform values in [lo, hi).
  std::vector<double> matrix(std::size_t rows, std::size_t cols, double lo = -1.0,
                             double hi = 1.0);

 private:
  std::uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace xd
