// Small shared utilities for the xdblas simulator.
//
// Everything here is header-only and dependency-free; larger helpers live in
// their own translation units (stats.cpp, random.cpp, table.cpp).
#pragma once

#include <concepts>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace xd {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i64 = std::int64_t;

/// Thrown when a simulated design is configured inconsistently (e.g. a GEMM
/// block size that does not divide the problem size, or a buffer depth that
/// the target device cannot hold).
class ConfigError : public std::runtime_error {
 public:
  explicit ConfigError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when the simulation itself detects a violated hardware invariant
/// (a structural hazard, buffer overflow, etc.). These indicate bugs in a
/// design description, not user error.
class SimError : public std::logic_error {
 public:
  explicit SimError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
inline void format_into(std::ostringstream&) {}
template <typename T, typename... Rest>
void format_into(std::ostringstream& os, const T& v, const Rest&... rest) {
  os << v;
  format_into(os, rest...);
}
}  // namespace detail

/// Concatenate arbitrary streamable values into a std::string.
template <typename... Args>
std::string cat(const Args&... args) {
  std::ostringstream os;
  detail::format_into(os, args...);
  return os.str();
}

/// All-strings fast path: identical output, no ostringstream (whose
/// construction alone dominates short concatenations — this matters for
/// metric-name building on the telemetry publish path, which runs once per
/// op). A constrained template is more specialized than the unconstrained
/// one above, so string-only calls land here automatically.
template <typename... Args>
  requires(std::convertible_to<const Args&, std::string_view> && ...)
std::string cat(const Args&... args) {
  std::string out;
  out.reserve((std::string_view(args).size() + ... + 0));
  (out.append(std::string_view(args)), ...);
  return out;
}

/// Require a configuration predicate; throws ConfigError with context.
inline void require(bool ok, const std::string& msg) {
  if (!ok) throw ConfigError(msg);
}

/// Literal-message overload: no temporary std::string on the success path
/// (the string-reference overload materializes its message even when the
/// predicate holds, which showed up as one heap allocation per literal
/// require on the per-op hot paths).
inline void require(bool ok, const char* msg) {
  if (!ok) throw ConfigError(msg);
}

/// Ceiling division for non-negative integers.
constexpr u64 ceil_div(u64 a, u64 b) { return (a + b - 1) / b; }

/// True when x is a power of two (x > 0).
constexpr bool is_pow2(u64 x) { return x != 0 && (x & (x - 1)) == 0; }

/// Integer log2 floor; log2_floor(1) == 0. Precondition: x > 0.
constexpr u32 log2_floor(u64 x) {
  u32 r = 0;
  while (x >>= 1) ++r;
  return r;
}

/// Integer log2 ceiling; log2_ceil(1) == 0. Precondition: x > 0.
constexpr u32 log2_ceil(u64 x) {
  return is_pow2(x) ? log2_floor(x) : log2_floor(x) + 1;
}

/// Bytes-per-second pretty constant helpers (the paper quotes GB/s, MB/s).
constexpr double kKiB = 1024.0;
constexpr double kMiB = 1024.0 * 1024.0;
constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;
/// The paper uses decimal GB/s for bandwidths; keep both explicit.
constexpr double kMB = 1e6;
constexpr double kGB = 1e9;

/// Size of one matrix/vector word in the paper's designs (binary64).
constexpr unsigned kWordBytes = 8;

}  // namespace xd
