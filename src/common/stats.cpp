#include "common/stats.hpp"

#include <cmath>
#include <sstream>

#include "common/util.hpp"

namespace xd {

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& o) {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(o.n_);
  const double delta = o.mean_ - mean_;
  const double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += o.m2_ + delta * delta * na * nb / nt;
  n_ += o.n_;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

std::string RunningStats::summary() const {
  std::ostringstream os;
  os << "n=" << n_ << " mean=" << mean() << " sd=" << stddev() << " min=" << min()
     << " max=" << max();
  return os.str();
}

namespace {

/// Sub-buckets per power of two. 16 keeps the relative error under
/// 100%/(2*16) ~ 3.2% while the key space stays small enough for int.
constexpr int kSubBuckets = 16;
constexpr int kNegativeKey = std::numeric_limits<int>::min();
constexpr int kZeroKey = kNegativeKey + 1;

}  // namespace

int QuantileSketch::key_of(double x) {
  if (!(x > 0.0)) {
    // Negative, zero and NaN all fall through the x > 0 test; NaN counts as
    // zero so the sketch stays total without inventing an ordering for it.
    return x < 0.0 ? kNegativeKey : kZeroKey;
  }
  if (std::isinf(x)) x = std::numeric_limits<double>::max();
  int exp = 0;
  const double mant = std::frexp(x, &exp);  // mant in [0.5, 1)
  int sub = static_cast<int>((mant - 0.5) * 2.0 * kSubBuckets);
  if (sub >= kSubBuckets) sub = kSubBuckets - 1;  // guard rounding at 1.0
  if (sub < 0) sub = 0;
  // frexp exponents span roughly [-1073, 1025]; scaled by kSubBuckets this
  // stays far inside int range and above the two sentinel keys.
  return exp * kSubBuckets + sub;
}

double QuantileSketch::lower_edge(int key) {
  if (key == kNegativeKey) return -std::numeric_limits<double>::infinity();
  if (key == kZeroKey) return 0.0;
  // Floor-divide toward the exponent the key was built from (key may be
  // negative; C++ integer division truncates toward zero).
  int exp = key / kSubBuckets;
  int sub = key % kSubBuckets;
  if (sub < 0) {
    sub += kSubBuckets;
    --exp;
  }
  const double mant = 0.5 + static_cast<double>(sub) / (2.0 * kSubBuckets);
  return std::ldexp(mant, exp);
}

void QuantileSketch::add(double x) {
  const int key = key_of(x);
  const auto it = std::lower_bound(
      buckets_.begin(), buckets_.end(), key,
      [](const std::pair<int, std::uint64_t>& b, int k) { return b.first < k; });
  if (it != buckets_.end() && it->first == key) {
    ++it->second;
  } else {
    buckets_.insert(it, {key, 1});
  }
  ++n_;
}

void QuantileSketch::merge(const QuantileSketch& o) {
  if (o.n_ == 0) return;
  // Two sorted runs; merge into a fresh vector (both are small).
  std::vector<std::pair<int, std::uint64_t>> out;
  out.reserve(buckets_.size() + o.buckets_.size());
  std::size_t i = 0, j = 0;
  while (i < buckets_.size() || j < o.buckets_.size()) {
    if (j == o.buckets_.size() ||
        (i < buckets_.size() && buckets_[i].first < o.buckets_[j].first)) {
      out.push_back(buckets_[i++]);
    } else if (i == buckets_.size() || o.buckets_[j].first < buckets_[i].first) {
      out.push_back(o.buckets_[j++]);
    } else {
      out.push_back({buckets_[i].first, buckets_[i].second + o.buckets_[j].second});
      ++i;
      ++j;
    }
  }
  buckets_ = std::move(out);
  n_ += o.n_;
}

void QuantileSketch::reset() { *this = QuantileSketch{}; }

double QuantileSketch::quantile(double q) const {
  if (n_ == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(n_);
  std::uint64_t seen = 0;
  for (const auto& [key, count] : buckets_) {
    seen += count;
    if (static_cast<double>(seen) >= target) return lower_edge(key);
  }
  return lower_edge(buckets_.back().first);
}

Histogram::Histogram(std::size_t buckets) : counts_(buckets + 1, 0) {
  require(buckets >= 1, "Histogram needs at least one bucket");
}

void Histogram::add(std::size_t value) {
  const std::size_t bucket = std::min(value, counts_.size() - 1);
  ++counts_[bucket];
  ++total_;
  sum_ += static_cast<double>(value);
  max_ = std::max(max_, value);
}

std::size_t Histogram::quantile(double q) const {
  if (total_ == 0) return 0;
  const double target = q * static_cast<double>(total_);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    seen += counts_[b];
    if (static_cast<double>(seen) >= target) return b;
  }
  return counts_.size() - 1;
}

}  // namespace xd
