#include "common/stats.hpp"

#include <cmath>
#include <sstream>

#include "common/util.hpp"

namespace xd {

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& o) {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(o.n_);
  const double delta = o.mean_ - mean_;
  const double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += o.m2_ + delta * delta * na * nb / nt;
  n_ += o.n_;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

std::string RunningStats::summary() const {
  std::ostringstream os;
  os << "n=" << n_ << " mean=" << mean() << " sd=" << stddev() << " min=" << min()
     << " max=" << max();
  return os.str();
}

Histogram::Histogram(std::size_t buckets) : counts_(buckets + 1, 0) {
  require(buckets >= 1, "Histogram needs at least one bucket");
}

void Histogram::add(std::size_t value) {
  const std::size_t bucket = std::min(value, counts_.size() - 1);
  ++counts_[bucket];
  ++total_;
  sum_ += static_cast<double>(value);
  max_ = std::max(max_, value);
}

std::size_t Histogram::quantile(double q) const {
  if (total_ == 0) return 0;
  const double target = q * static_cast<double>(total_);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    seen += counts_[b];
    if (static_cast<double>(seen) >= target) return b;
  }
  return counts_.size() - 1;
}

}  // namespace xd
