#include "common/random.hpp"

#include <cmath>

namespace xd {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64 to expand the seed into the full state.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> [0,1)
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_int(std::uint64_t lo, std::uint64_t hi) {
  const std::uint64_t span = hi - lo + 1;
  if (span == 0) return next_u64();  // full range
  // Rejection-free modulo is fine for our workload-generation purposes.
  return lo + next_u64() % span;
}

double Rng::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  double u2 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

std::uint64_t Rng::raw_bits() { return next_u64(); }

std::vector<double> Rng::vector(std::size_t n, double lo, double hi) {
  std::vector<double> v(n);
  for (auto& x : v) x = uniform(lo, hi);
  return v;
}

std::vector<double> Rng::matrix(std::size_t rows, std::size_t cols, double lo,
                                double hi) {
  return vector(rows * cols, lo, hi);
}

}  // namespace xd
