// Fixed-capacity FIFO over a flat ring buffer.
//
// The per-cycle engine loops keep a small queue between the adder tree and
// the reduction circuit (bounded by construction: issue gates on full()).
// std::deque showed up in profiles — its segmented map churns on every
// wrap — so this is the minimal replacement: one allocation at construction,
// conditional-wrap indexing (no division), nothing else.
//
// Callers must gate push() on !full() and front()/pop() on !empty(); the
// class does not check in the hot path.
#pragma once

#include <cstddef>
#include <vector>

namespace xd {

template <typename T>
class RingFifo {
 public:
  explicit RingFifo(std::size_t capacity) : buf_(capacity) {}

  bool empty() const { return count_ == 0; }
  bool full() const { return count_ == buf_.size(); }
  std::size_t size() const { return count_; }
  std::size_t capacity() const { return buf_.size(); }

  const T& front() const { return buf_[head_]; }

  void push(const T& v) {
    std::size_t slot = head_ + count_;
    if (slot >= buf_.size()) slot -= buf_.size();
    buf_[slot] = v;
    ++count_;
  }

  void pop() {
    if (++head_ == buf_.size()) head_ = 0;
    --count_;
  }

  /// Forget all queued entries, keeping the buffer storage (the recycled
  /// engine-scratch path reuses one fifo across runs).
  void clear() {
    head_ = 0;
    count_ = 0;
  }

 private:
  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

}  // namespace xd
