// Minimal TCP socket + line-framing utilities for the serving layer.
//
// Everything the daemon and its clients need from the OS lives here: an
// RAII socket wrapper whose send path retries partial writes (and never
// raises SIGPIPE), loopback-friendly listen/accept/connect helpers, and an
// incremental newline framer that reassembles records from arbitrary recv
// chunk boundaries while bounding line length — a client that streams one
// record in 1-byte writes and a client that concatenates a thousand records
// into one write both frame identically.
//
// The framer is pure (bytes in, lines out) so the protocol tests can fuzz
// split-across-recv and oversized-line behavior without opening sockets;
// serve::Server feeds it straight from recv.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>

namespace xd {

/// Move-only RAII wrapper over a connected (or listening) socket fd.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();

  /// Send the whole buffer, retrying EINTR and partial writes. Returns
  /// false on any error (peer reset, shutdown). Uses MSG_NOSIGNAL so a
  /// dead peer surfaces as EPIPE, not a process-killing SIGPIPE.
  bool send_all(const void* data, std::size_t n);
  bool send_all(std::string_view s) { return send_all(s.data(), s.size()); }

  /// Receive up to `n` bytes: >0 bytes read, 0 on orderly shutdown / EOF,
  /// -1 on error. Retries EINTR.
  long recv_some(void* buf, std::size_t n);

  /// Bound every subsequent send: a send blocked longer than `ms` on a
  /// peer that stopped reading fails (send_all returns false) instead of
  /// blocking forever. No-op for ms <= 0. The server sets this on every
  /// accepted connection so drain() cannot hang on a non-reading client.
  void set_send_timeout_ms(int ms);

  /// Half-close helpers; safe to call from another thread to wake a
  /// blocked recv_some (the drain path) or signal EOF after a final flush.
  void shutdown_read();
  void shutdown_write();
  void shutdown_both();

 private:
  int fd_ = -1;
};

/// Listening socket bound to host:port (port 0 picks an ephemeral port;
/// `bound_port`, when non-null, receives the actual one). Throws SimError
/// on failure. SO_REUSEADDR is set so restarts do not trip TIME_WAIT.
Socket tcp_listen(const std::string& host, std::uint16_t port, int backlog,
                  std::uint16_t* bound_port = nullptr);

/// Accept one connection (blocking). Returns an invalid Socket when the
/// listener was shut down or closed (the accept loop's exit signal).
Socket tcp_accept(Socket& listener);

/// Connect to host:port (blocking). Throws SimError on failure.
Socket tcp_connect(const std::string& host, std::uint16_t port);

/// Incremental newline framer over arbitrary byte chunks. recv boundaries
/// never align with records, so the reader feeds whatever arrived and pops
/// complete lines; a trailing '\r' is stripped (CRLF clients work). Lines
/// longer than `max_line` are capped: the prefix is kept, the overflow is
/// discarded as it streams through (memory stays bounded), and the line is
/// surfaced with `truncated = true` so the caller can answer with an error
/// record instead of dying or buffering without bound.
class LineFramer {
 public:
  explicit LineFramer(std::size_t max_line) : max_line_(max_line) {}

  /// Append a chunk of received bytes.
  void feed(const char* data, std::size_t n);
  void feed(std::string_view s) { feed(s.data(), s.size()); }

  /// Pop the next complete line (terminator removed) into `line`; returns
  /// false when no full line is buffered yet. `truncated` reports whether
  /// the line exceeded max_line (its tail was discarded).
  bool next(std::string& line, bool& truncated);

  /// Bytes of the current partial line still buffered (nonzero at EOF
  /// means the peer sent an unterminated final record).
  std::size_t pending() const { return cur_.size(); }
  /// Whether that partial line was capped (unterminated-EOF handling).
  bool pending_truncated() const { return cur_truncated_; }

 private:
  struct Done {
    std::string text;
    bool truncated;
  };

  std::size_t max_line_;
  std::string cur_;          ///< current partial line, capped at max_line_
  bool cur_truncated_ = false;
  std::deque<Done> done_;    ///< completed lines awaiting next()
};

}  // namespace xd
