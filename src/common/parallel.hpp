// Minimal shared-memory parallel-for for the host side of the simulator.
//
// The softfloat "golden numerics" loops (O(n^3) independent dot products in
// the GEMM engines) are embarrassingly parallel; this helper fans a range
// across the process-wide ThreadPool with static chunking. Determinism is
// preserved: every index computes the same value regardless of the thread
// that runs it, and results land in caller-owned slots with no shared
// mutable state.
//
// The callable is a template parameter (not std::function), so the hot
// per-index call inlines; and workers come from ThreadPool::shared(), so a
// loop no longer pays a thread spawn + join per call
// (bench_sim_throughput's BM_ParallelFor* pair measures the difference).
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>

#include "common/thread_pool.hpp"

namespace xd {

/// Invoke fn(i) for i in [begin, end) across up to `workers` threads
/// (static contiguous chunks). fn must be safe to call concurrently for
/// distinct i. Exceptions thrown by fn terminate (document: workloads here
/// are noexcept arithmetic); workers = 1 runs inline.
///
/// The calling thread claims chunks alongside the pool workers, so the
/// helper is deadlock-free even when called from inside a pool task with
/// every worker busy — the caller simply runs the whole range itself.
template <typename Fn>
void parallel_for(std::size_t begin, std::size_t end, Fn&& fn,
                  unsigned workers = default_workers()) {
  const std::size_t count = end > begin ? end - begin : 0;
  if (count == 0) return;
  workers = static_cast<unsigned>(
      std::min<std::size_t>(workers == 0 ? 1 : workers, count));
  if (workers <= 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }

  // Same static chunking as ever: ceil(count / workers) indices per chunk.
  const std::size_t chunk = (count + workers - 1) / workers;
  const std::size_t nchunks = (count + chunk - 1) / chunk;

  // Chunk tickets live in shared state so pool workers and the caller can
  // claim them with one fetch_add; the state is heap-held (shared_ptr) so a
  // late-waking helper that claims nothing can still touch `next` safely
  // after the caller returned. fn itself is only reached through claimed
  // tickets, and the caller waits for every claimed ticket to finish.
  struct State {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex mu;
    std::condition_variable cv;
  };
  auto state = std::make_shared<State>();

  auto drain = [state, begin, end, chunk, nchunks, &fn] {
    for (;;) {
      const std::size_t c = state->next.fetch_add(1, std::memory_order_relaxed);
      if (c >= nchunks) return;
      const std::size_t lo = begin + c * chunk;
      const std::size_t hi = std::min(end, lo + chunk);
      for (std::size_t i = lo; i < hi; ++i) fn(i);
      if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 == nchunks) {
        std::lock_guard<std::mutex> lock(state->mu);
        state->cv.notify_all();
      }
    }
  };

  // Helpers may reference fn (a stack object), which is only valid until
  // this call returns — safe, because ticket claims after completion are
  // no-ops and the caller does not return before `done == nchunks`.
  ThreadPool& pool = ThreadPool::shared();
  const unsigned helpers = static_cast<unsigned>(
      std::min<std::size_t>(pool.size(), nchunks - 1));
  for (unsigned h = 0; h < helpers; ++h) pool.post(drain);

  drain();  // the caller participates — never blocks waiting for a worker

  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] {
    return state->done.load(std::memory_order_acquire) == nchunks;
  });
}

}  // namespace xd
