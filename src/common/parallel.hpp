// Minimal shared-memory parallel-for for the host side of the simulator.
//
// The softfloat "golden numerics" loops (O(n^3) independent dot products in
// the GEMM engines) are embarrassingly parallel; this helper fans a range
// across std::thread workers with static chunking. Determinism is preserved:
// every index computes the same value regardless of the thread that runs it,
// and results land in caller-owned slots with no shared mutable state.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace xd {

/// Number of workers to use by default (hardware concurrency, at least 1).
inline unsigned default_workers() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

/// Invoke fn(i) for i in [begin, end) across `workers` threads (static
/// contiguous chunks). fn must be safe to call concurrently for distinct i.
/// Exceptions thrown by fn terminate (document: workloads here are noexcept
/// arithmetic); workers = 1 runs inline.
inline void parallel_for(std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t)>& fn,
                         unsigned workers = default_workers()) {
  const std::size_t count = end > begin ? end - begin : 0;
  if (count == 0) return;
  workers = static_cast<unsigned>(
      std::min<std::size_t>(workers == 0 ? 1 : workers, count));
  if (workers <= 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(workers);
  const std::size_t chunk = (count + workers - 1) / workers;
  for (unsigned w = 0; w < workers; ++w) {
    const std::size_t lo = begin + static_cast<std::size_t>(w) * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    threads.emplace_back([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    });
  }
  for (auto& t : threads) t.join();
}

}  // namespace xd
