#include "common/table.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/util.hpp"

namespace xd {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  require(cells.size() == header_.size(),
          cat("TextTable row has ", cells.size(), " cells, expected ", header_.size()));
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int prec) {
  std::ostringstream os;
  if (v != 0.0 && (std::fabs(v) >= 1e6 || std::fabs(v) < 1e-3)) {
    os.setf(std::ios::scientific);
    os.precision(prec);
    os << v;
    return os.str();
  }
  os.setf(std::ios::fixed);
  os.precision(prec);
  os << v;
  std::string s = os.str();
  // Trim trailing zeros but keep at least one digit after the point.
  if (s.find('.') != std::string::npos) {
    while (s.size() > 1 && s.back() == '0') s.pop_back();
    if (s.back() == '.') s.pop_back();
  }
  return s;
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c) widths[c] = std::max(widths[c], r[c].size());

  auto emit_row = [&](std::ostringstream& os, const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c];
      os << std::string(widths[c] - cells[c].size(), ' ') << " |";
    }
    os << '\n';
  };

  std::ostringstream os;
  emit_row(os, header_);
  os << "|";
  for (std::size_t c = 0; c < header_.size(); ++c)
    os << std::string(widths[c] + 2, '-') << "|";
  os << '\n';
  for (const auto& r : rows_) emit_row(os, r);
  return os.str();
}

}  // namespace xd
