// Plain-text table rendering for benchmark output.
//
// Every bench binary reproduces a table or figure from the paper; this helper
// prints aligned rows in a form that is easy to diff against the paper.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace xd {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Add a row; it must have the same number of cells as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format any streamable values into a row.
  template <typename... Ts>
  void row(const Ts&... vs) {
    add_row({to_cell(vs)...});
  }

  std::string render() const;

  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  /// Format a double with `prec` significant decimals, trimming zeros.
  static std::string num(double v, int prec = 3);

 private:
  template <typename T>
  static std::string to_cell(const T& v);

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

template <typename T>
std::string TextTable::to_cell(const T& v) {
  if constexpr (std::is_convertible_v<T, std::string>) {
    return std::string(v);
  } else if constexpr (std::is_floating_point_v<T>) {
    return num(static_cast<double>(v));
  } else {
    return std::to_string(v);
  }
}

}  // namespace xd
