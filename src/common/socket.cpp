#include "common/socket.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "common/util.hpp"

namespace xd {

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Socket::send_all(const void* data, std::size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t sent = ::send(fd_, p, n, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (sent == 0) return false;
    p += sent;
    n -= static_cast<std::size_t>(sent);
  }
  return true;
}

long Socket::recv_some(void* buf, std::size_t n) {
  for (;;) {
    const ssize_t got = ::recv(fd_, buf, n, 0);
    if (got < 0 && errno == EINTR) continue;
    return static_cast<long>(got);
  }
}

void Socket::set_send_timeout_ms(int ms) {
  if (fd_ < 0 || ms <= 0) return;
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>(ms % 1000) * 1000;
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

void Socket::shutdown_read() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}
void Socket::shutdown_write() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}
void Socket::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

namespace {

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw SimError(cat("socket: bad IPv4 address '", host, "'"));
  }
  return addr;
}

}  // namespace

Socket tcp_listen(const std::string& host, std::uint16_t port, int backlog,
                  std::uint16_t* bound_port) {
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) {
    throw SimError(cat("socket: cannot create listener: ",
                       std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(s.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr = make_addr(host, port);
  if (::bind(s.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    throw SimError(cat("socket: cannot bind ", host, ":", port, ": ",
                       std::strerror(errno)));
  }
  if (::listen(s.fd(), backlog) != 0) {
    throw SimError(cat("socket: cannot listen on ", host, ":", port, ": ",
                       std::strerror(errno)));
  }
  if (bound_port) {
    sockaddr_in got{};
    socklen_t len = sizeof got;
    if (::getsockname(s.fd(), reinterpret_cast<sockaddr*>(&got), &len) != 0) {
      throw SimError(cat("socket: getsockname: ", std::strerror(errno)));
    }
    *bound_port = ntohs(got.sin_port);
  }
  return s;
}

Socket tcp_accept(Socket& listener) {
  for (;;) {
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) return Socket(fd);
    if (errno == EINTR) continue;
    // EBADF/EINVAL after the listener was closed or shut down: the accept
    // loop's normal exit. Everything else is also surfaced as "stop" — a
    // long-lived daemon should not die because one accept hiccuped, and the
    // caller can decide to re-listen.
    return Socket();
  }
}

Socket tcp_connect(const std::string& host, std::uint16_t port) {
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) {
    throw SimError(cat("socket: cannot create socket: ",
                       std::strerror(errno)));
  }
  sockaddr_in addr = make_addr(host, port);
  if (::connect(s.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0) {
    return s;
  }
  if (errno != EINTR) {
    throw SimError(cat("socket: cannot connect to ", host, ":", port, ": ",
                       std::strerror(errno)));
  }
  // A connect interrupted by a signal keeps going asynchronously (POSIX);
  // calling connect again would return EALREADY/EISCONN, not retry. Wait
  // for the socket to become writable and read the real outcome from
  // SO_ERROR instead.
  for (;;) {
    pollfd p{s.fd(), POLLOUT, 0};
    const int r = ::poll(&p, 1, -1);
    if (r > 0) break;
    if (r < 0 && errno == EINTR) continue;
    throw SimError(cat("socket: cannot connect to ", host, ":", port, ": ",
                       std::strerror(errno)));
  }
  int err = 0;
  socklen_t len = sizeof err;
  if (::getsockopt(s.fd(), SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
    err = errno;
  }
  if (err != 0 && err != EISCONN) {
    throw SimError(cat("socket: cannot connect to ", host, ":", port, ": ",
                       std::strerror(err)));
  }
  return s;
}

void LineFramer::feed(const char* data, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const char c = data[i];
    if (c == '\n') {
      if (!cur_.empty() && cur_.back() == '\r') cur_.pop_back();
      done_.push_back({std::move(cur_), cur_truncated_});
      cur_.clear();
      cur_truncated_ = false;
    } else if (cur_.size() < max_line_) {
      cur_.push_back(c);
    } else {
      cur_truncated_ = true;  // cap reached: drop the overflow byte
    }
  }
}

bool LineFramer::next(std::string& line, bool& truncated) {
  if (done_.empty()) return false;
  line = std::move(done_.front().text);
  truncated = done_.front().truncated;
  done_.pop_front();
  return true;
}

}  // namespace xd
