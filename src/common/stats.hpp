// Streaming statistics accumulators used by the cycle simulator to report
// utilization, occupancy and latency distributions.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace xd {

/// Welford-style streaming accumulator: count / mean / variance / min / max.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< population variance
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

  std::string summary() const;  ///< "n=... mean=... sd=... min=... max=..."

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Deterministic, mergeable streaming quantile estimator.
///
/// Positive samples land in log-linear buckets: 16 linear sub-buckets per
/// power of two, so a bucket spans at most ~3.2% of its value and
/// quantile() answers with that relative error. Storage is a sparse sorted
/// (bucket key -> count) vector, so memory scales with the number of
/// *distinct magnitudes* seen, not the sample count — bounded by ~2^16 keys
/// in the worst case, a handful in practice. add() and merge() are pure
/// integer bookkeeping: results are bit-identical for any interleaving of
/// the same multiset of samples, which is what lets concurrent telemetry
/// shards merge without perturbing exports.
///
/// Zero, negative and NaN samples collapse into two dedicated low buckets
/// (telemetry samples — cycle counts, latencies, sizes — are non-negative;
/// the sketch stays total anyway). quantile() reports a bucket's lower
/// edge, which is exact for short-mantissa values like integers and powers
/// of two; callers wanting hard bounds clamp to an exactly tracked
/// min/max (RunningStats keeps both).
class QuantileSketch {
 public:
  void add(double x);
  void merge(const QuantileSketch& other);
  void reset();

  std::uint64_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  /// Number of distinct occupied buckets (storage footprint).
  std::size_t buckets() const { return buckets_.size(); }

  /// Smallest bucket lower edge v such that at least a fraction `q` (0..1)
  /// of the samples are <= v. Returns 0 for an empty sketch; negative
  /// samples answer as -inf's bucket edge (clamp with a tracked min).
  double quantile(double q) const;

 private:
  static int key_of(double x);
  static double lower_edge(int key);

  /// Sorted by key; key orders buckets by sample value.
  std::vector<std::pair<int, std::uint64_t>> buckets_;
  std::uint64_t n_ = 0;
};

/// Fixed-bucket histogram for small non-negative integer samples
/// (e.g. buffer occupancy per cycle). Samples >= bucket count land in the
/// overflow bucket and are still counted in max().
class Histogram {
 public:
  /// Throws ConfigError for buckets == 0: a zero-bucket histogram has no
  /// valid bucket index, and add()'s overflow clamp (counts_.size() - 1)
  /// would quietly misfile every sample instead of surfacing the bad
  /// configuration.
  explicit Histogram(std::size_t buckets);

  void add(std::size_t value);
  std::size_t buckets() const { return counts_.size() - 1; }
  std::uint64_t count(std::size_t bucket) const { return counts_.at(bucket); }
  std::uint64_t overflow() const { return counts_.back(); }
  std::uint64_t total() const { return total_; }
  std::size_t max_value() const { return max_; }
  double mean() const { return total_ ? sum_ / static_cast<double>(total_) : 0.0; }

  /// Smallest value v such that at least `q` (0..1) of samples are <= v.
  std::size_t quantile(double q) const;

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
  std::size_t max_ = 0;
};

/// Busy/idle utilization counter for a hardware resource.
class Utilization {
 public:
  void tick(bool busy) {
    ++cycles_;
    if (busy) ++busy_;
  }
  std::uint64_t cycles() const { return cycles_; }
  std::uint64_t busy_cycles() const { return busy_; }
  double fraction() const {
    return cycles_ ? static_cast<double>(busy_) / static_cast<double>(cycles_) : 0.0;
  }
  void reset() { cycles_ = busy_ = 0; }

 private:
  std::uint64_t cycles_ = 0;
  std::uint64_t busy_ = 0;
};

}  // namespace xd
