// Persistent work-stealing worker pool shared by the whole process.
//
// The simulator's host side has two kinds of parallelism: data-parallel
// golden-numerics loops inside one engine run (parallel_for) and
// whole-operation concurrency across independent engine runs (the
// host::Runtime executor). Both share this pool, so thread creation happens
// once per process instead of once per loop.
//
// Design notes:
//  - Per-worker deques with work stealing, not one global FIFO: a worker
//    pushes and pops its own deque from the back (LIFO — the task most
//    likely to be cache-hot), and steals from other workers' fronts (FIFO —
//    the oldest task, the one least likely to be in anyone's cache). Each
//    deque has its own small mutex, so producers on different workers never
//    contend; the old single queue serialized every submit in the process.
//  - Off-pool producers (the main thread, serve connection readers) enqueue
//    round-robin across workers; pool workers enqueue to themselves, which
//    keeps nested parallel_for chunks local until someone idle steals them.
//  - Tasks are MoveFunc, a move-only type-erased callable with inline
//    storage: posting a small task allocates nothing, and submit() wraps
//    its callable in one std::packaged_task (a single allocation for the
//    future's shared state) instead of the old shared_ptr<packaged_task> +
//    std::function double allocation.
//  - submit() returns a std::future that carries the callable's value or
//    exception (std::packaged_task semantics) — the Runtime relies on this
//    to propagate ConfigError out of worker threads.
//  - Pool threads never block on other pool tasks. parallel_for keeps the
//    caller claiming chunks alongside the workers, so nesting a
//    parallel_for inside a pooled job cannot deadlock even when every
//    worker is busy.
//  - steals()/local_pops() expose the scheduler's behavior as counters; the
//    serve stats line reports them so the work-stealing path is observable
//    over the wire.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <new>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace xd {

/// Number of workers to use by default: the XDBLAS_WORKERS environment
/// variable when set to a positive integer, else hardware concurrency, at
/// least 1. A value that is not exactly a positive integer — "4abc", "-2",
/// "huge" — is rejected with a stderr warning (strtol's silent
/// trailing-garbage acceptance once made "4abc" run 4 workers); an empty
/// value counts as unset. The cap keeps a fat-fingered "40000" from
/// spawning a thread per request slot.
inline unsigned default_workers() {
  const unsigned hc = std::thread::hardware_concurrency();
  const unsigned fallback = hc == 0 ? 1 : hc;
  const char* env = std::getenv("XDBLAS_WORKERS");
  if (!env || !*env) return fallback;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  constexpr long kMaxWorkers = 4096;
  if (end == env || *end != '\0' || v <= 0 || v > kMaxWorkers) {
    std::fprintf(stderr,
                 "xdblas: ignoring XDBLAS_WORKERS=\"%s\" (want an integer in "
                 "[1, %ld]); using %u worker%s\n",
                 env, kMaxWorkers, fallback, fallback == 1 ? "" : "s");
    return fallback;
  }
  return static_cast<unsigned>(v);
}

/// Move-only type-erased `void()` callable with inline storage. Callables
/// up to kInline bytes (a captured pointer or two, a packaged_task handle,
/// a parallel_for drain closure) live in the object itself — constructing,
/// moving, and queueing one allocates nothing. Larger callables fall back
/// to one heap allocation. This is the pool's task type: the properties the
/// queue needs are exactly "movable, callable once, maybe empty".
class MoveFunc {
 public:
  static constexpr std::size_t kInline = 64;

  MoveFunc() = default;

  template <typename Fn,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<Fn>, MoveFunc>>>
  MoveFunc(Fn&& fn) {  // NOLINT(google-explicit-constructor)
    using D = std::decay_t<Fn>;
    static_assert(std::is_invocable_r_v<void, D&>,
                  "MoveFunc requires a void() callable");
    if constexpr (sizeof(D) <= kInline && alignof(D) <= alignof(Storage) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(&storage_)) D(std::forward<Fn>(fn));
      ops_ = &inline_ops<D>;
    } else {
      *reinterpret_cast<D**>(&storage_) = new D(std::forward<Fn>(fn));
      ops_ = &heap_ops<D>;
    }
  }

  MoveFunc(MoveFunc&& other) noexcept : ops_(other.ops_) {
    if (ops_) ops_->relocate(&storage_, &other.storage_);
    other.ops_ = nullptr;
  }

  MoveFunc& operator=(MoveFunc&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_) ops_->relocate(&storage_, &other.storage_);
      other.ops_ = nullptr;
    }
    return *this;
  }

  MoveFunc(const MoveFunc&) = delete;
  MoveFunc& operator=(const MoveFunc&) = delete;

  ~MoveFunc() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(&storage_); }

 private:
  using Storage = std::aligned_storage_t<kInline, alignof(std::max_align_t)>;

  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src);  ///< move into dst, destroy src
    void (*destroy)(void*);
  };

  template <typename D>
  static constexpr Ops inline_ops = {
      [](void* p) { (*static_cast<D*>(p))(); },
      [](void* dst, void* src) {
        D* s = static_cast<D*>(src);
        ::new (dst) D(std::move(*s));
        s->~D();
      },
      [](void* p) { static_cast<D*>(p)->~D(); },
  };

  template <typename D>
  static constexpr Ops heap_ops = {
      [](void* p) { (**static_cast<D**>(p))(); },
      [](void* dst, void* src) {
        *static_cast<D**>(dst) = *static_cast<D**>(src);
      },
      [](void* p) { delete *static_cast<D**>(p); },
  };

  void reset() {
    if (ops_) {
      ops_->destroy(&storage_);
      ops_ = nullptr;
    }
  }

  Storage storage_;
  const Ops* ops_ = nullptr;
};

class ThreadPool {
 public:
  explicit ThreadPool(unsigned workers = default_workers()) {
    if (workers == 0) workers = 1;
    workers_.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      workers_.push_back(std::make_unique<Worker>());
    }
    threads_.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      threads_.emplace_back([this, w] { worker_loop(static_cast<int>(w)); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains: every task already posted runs before the workers exit (tasks
  /// posted by still-running tasks included).
  ~ThreadPool() {
    stop_.store(true, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock(idle_mu_);
    }
    idle_cv_.notify_all();
    for (auto& t : threads_) t.join();
  }

  unsigned size() const { return static_cast<unsigned>(threads_.size()); }

  /// Enqueue a fire-and-forget task. Tasks must not throw (wrap with
  /// submit() when the result or exception matters). A pool worker posts to
  /// its own deque (LIFO-adjacent, stays cache-hot unless stolen); an
  /// off-pool thread distributes round-robin.
  template <typename Fn>
  void post(Fn&& fn) {
    enqueue(MoveFunc(std::forward<Fn>(fn)));
  }

  /// Enqueue a callable and get a future for its result; an exception
  /// thrown by the callable is rethrown from future::get(). One allocation:
  /// the packaged_task's shared state (which also holds the callable).
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<std::decay_t<Fn>>> {
    using R = std::invoke_result_t<std::decay_t<Fn>>;
    std::packaged_task<R()> task(std::forward<Fn>(fn));
    std::future<R> fut = task.get_future();
    enqueue(MoveFunc(std::move(task)));
    return fut;
  }

  /// The process-wide pool (default_workers() threads, created on first
  /// use). Engine loops and every host::Runtime share it by default.
  static ThreadPool& shared() {
    static ThreadPool pool;
    return pool;
  }

  /// Index of the pool worker running the calling thread, or -1 off-pool
  /// (the main thread, or a thread of another pool instance). Telemetry
  /// uses this to assign merged spans to stable per-worker lanes.
  static int current_worker_id() { return worker_id_; }

  using u64_counter = unsigned long long;

  /// Scheduler observability: tasks a worker popped from its own deque vs
  /// tasks it stole from another worker's. local_pops + steals = tasks
  /// executed. Exposed on the serve stats line as pool_local_pops /
  /// pool_steals.
  u64_counter steals() const { return steals_.load(std::memory_order_relaxed); }
  u64_counter local_pops() const {
    return local_pops_.load(std::memory_order_relaxed);
  }

 private:
  struct Worker {
    std::mutex mu;
    std::deque<MoveFunc> deq;  ///< back = local LIFO end, front = steal end
  };

  void enqueue(MoveFunc task) {
    const int self = worker_id_;
    std::size_t target;
    if (self >= 0 && pool_of_worker_ == this &&
        static_cast<std::size_t>(self) < workers_.size()) {
      target = static_cast<std::size_t>(self);
    } else {
      target = rr_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
    }
    {
      std::lock_guard<std::mutex> lock(workers_[target]->mu);
      workers_[target]->deq.push_back(std::move(task));
    }
    pending_.fetch_add(1, std::memory_order_release);
    // Lock/unlock before notify: a worker evaluates the idle predicate under
    // idle_mu_, so either it saw the new pending count, or it is already in
    // wait() and this notify reaches it — no lost wakeup.
    {
      std::lock_guard<std::mutex> lock(idle_mu_);
    }
    idle_cv_.notify_one();
  }

  bool pop_local(Worker& self, MoveFunc& out) {
    std::lock_guard<std::mutex> lock(self.mu);
    if (self.deq.empty()) return false;
    out = std::move(self.deq.back());
    self.deq.pop_back();
    return true;
  }

  bool steal(std::size_t self_idx, MoveFunc& out) {
    const std::size_t n = workers_.size();
    for (std::size_t i = 1; i < n; ++i) {
      Worker& victim = *workers_[(self_idx + i) % n];
      std::lock_guard<std::mutex> lock(victim.mu);
      if (victim.deq.empty()) continue;
      out = std::move(victim.deq.front());
      victim.deq.pop_front();
      return true;
    }
    return false;
  }

  void worker_loop(int id) {
    worker_id_ = id;
    pool_of_worker_ = this;
    Worker& self = *workers_[static_cast<std::size_t>(id)];
    for (;;) {
      MoveFunc task;
      if (pop_local(self, task)) {
        pending_.fetch_sub(1, std::memory_order_relaxed);
        local_pops_.fetch_add(1, std::memory_order_relaxed);
        task();
        continue;
      }
      if (steal(static_cast<std::size_t>(id), task)) {
        pending_.fetch_sub(1, std::memory_order_relaxed);
        steals_.fetch_add(1, std::memory_order_relaxed);
        task();
        continue;
      }
      std::unique_lock<std::mutex> lock(idle_mu_);
      idle_cv_.wait(lock, [this] {
        return stop_.load(std::memory_order_acquire) ||
               pending_.load(std::memory_order_acquire) != 0;
      });
      if (stop_.load(std::memory_order_acquire) &&
          pending_.load(std::memory_order_acquire) == 0) {
        return;  // stop requested and every queue drained
      }
    }
  }

  static inline thread_local int worker_id_ = -1;
  /// Which pool instance `worker_id_` belongs to: a worker of pool A
  /// posting to pool B must not treat A's index as one of B's deques.
  static inline thread_local ThreadPool* pool_of_worker_ = nullptr;

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  std::atomic<std::size_t> pending_{0};  ///< queued, not yet popped
  std::atomic<std::size_t> rr_{0};       ///< round-robin cursor, off-pool posts
  std::atomic<u64_counter> steals_{0};
  std::atomic<u64_counter> local_pops_{0};
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  std::atomic<bool> stop_{false};
};

}  // namespace xd
