// Persistent worker pool shared by the whole process.
//
// The simulator's host side has two kinds of parallelism: data-parallel
// golden-numerics loops inside one engine run (parallel_for) and
// whole-operation concurrency across independent engine runs (the
// host::Runtime executor). Both used to spawn-and-join std::threads per
// call; both now share this pool, so thread creation happens once per
// process instead of once per loop.
//
// Design notes:
//  - FIFO task queue under one mutex; tasks are type-erased only at the
//    submission boundary (cold, once per job/chunk batch), never per index.
//  - submit() returns a std::future that carries the callable's value or
//    exception (std::packaged_task semantics) — the Runtime relies on this
//    to propagate ConfigError out of worker threads.
//  - Pool threads never block on other pool tasks. parallel_for keeps the
//    caller claiming chunks alongside the workers, so nesting a
//    parallel_for inside a pooled job cannot deadlock even when every
//    worker is busy.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdlib>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace xd {

/// Number of workers to use by default: the XDBLAS_WORKERS environment
/// variable when set to a positive integer (useful to force interleaving on
/// small machines, or to pin the pool under a sanitizer), else hardware
/// concurrency, at least 1.
inline unsigned default_workers() {
  if (const char* env = std::getenv("XDBLAS_WORKERS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<unsigned>(v);
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

class ThreadPool {
 public:
  explicit ThreadPool(unsigned workers = default_workers()) {
    if (workers == 0) workers = 1;
    threads_.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      threads_.emplace_back([this, w] { worker_loop(static_cast<int>(w)); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& t : threads_) t.join();
  }

  unsigned size() const { return static_cast<unsigned>(threads_.size()); }

  /// Enqueue a fire-and-forget task. Tasks must not throw (wrap with
  /// submit() when the result or exception matters).
  void post(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back(std::move(task));
    }
    cv_.notify_one();
  }

  /// Enqueue a callable and get a future for its result; an exception
  /// thrown by the callable is rethrown from future::get().
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<std::decay_t<Fn>>> {
    using R = std::invoke_result_t<std::decay_t<Fn>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> fut = task->get_future();
    post([task] { (*task)(); });
    return fut;
  }

  /// The process-wide pool (default_workers() threads, created on first
  /// use). Engine loops and every host::Runtime share it by default.
  static ThreadPool& shared() {
    static ThreadPool pool;
    return pool;
  }

  /// Index of the pool worker running the calling thread, or -1 off-pool
  /// (the main thread, or a thread of another pool instance). Telemetry
  /// uses this to assign merged spans to stable per-worker lanes.
  static int current_worker_id() { return worker_id_; }

 private:
  void worker_loop(int id) {
    worker_id_ = id;
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stop_ set and drained
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
    }
  }

  static inline thread_local int worker_id_ = -1;

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace xd
