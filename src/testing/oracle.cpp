#include "testing/oracle.hpp"

#include <algorithm>
#include <cmath>

#include "fp/softfloat.hpp"

namespace xd::testing {

namespace {

/// acc starts at +0.0 so a lone -0.0 term still sums to +0.0, matching the
/// engines' zero-padded adder lanes under round-to-nearest-even.
struct Accum {
  u64 bits = fp::kPosZero;
  double mag = 0.0;

  void add_product(double a, double b) {
    const u64 p = fp::mul(fp::to_bits(a), fp::to_bits(b));
    bits = fp::add(bits, p);
    mag += std::fabs(a * b);
  }
};

}  // namespace

OracleVec oracle_dot(const std::vector<std::vector<double>>& us,
                     const std::vector<std::vector<double>>& vs) {
  OracleVec out;
  for (std::size_t p = 0; p < us.size(); ++p) {
    Accum acc;
    for (std::size_t i = 0; i < us[p].size(); ++i) {
      acc.add_product(us[p][i], vs[p][i]);
    }
    out.values.push_back(fp::from_bits(acc.bits));
    out.mag.push_back(acc.mag);
  }
  return out;
}

OracleVec oracle_gemv(const std::vector<double>& a, std::size_t rows,
                      std::size_t cols, const std::vector<double>& x) {
  OracleVec out;
  out.values.reserve(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    Accum acc;
    for (std::size_t c = 0; c < cols; ++c) {
      acc.add_product(a[r * cols + c], x[c]);
    }
    out.values.push_back(fp::from_bits(acc.bits));
    out.mag.push_back(acc.mag);
  }
  return out;
}

OracleVec oracle_spmxv(const blas2::CrsMatrix& a, const std::vector<double>& x) {
  OracleVec out;
  out.values.reserve(a.rows);
  for (std::size_t r = 0; r < a.rows; ++r) {
    Accum acc;
    for (std::size_t e = a.row_ptr[r]; e < a.row_ptr[r + 1]; ++e) {
      acc.add_product(a.values[e], x[a.col_idx[e]]);
    }
    out.values.push_back(fp::from_bits(acc.bits));
    out.mag.push_back(acc.mag);
  }
  return out;
}

OracleVec oracle_gemm(const std::vector<double>& a,
                      const std::vector<double>& b, std::size_t n) {
  OracleVec out;
  out.values.assign(n * n, 0.0);
  out.mag.assign(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      Accum acc;
      for (std::size_t k = 0; k < n; ++k) {
        acc.add_product(a[i * n + k], b[k * n + j]);
      }
      out.values[i * n + j] = fp::from_bits(acc.bits);
      out.mag[i * n + j] = acc.mag;
    }
  }
  return out;
}

double oracle_tolerance(double mag) { return std::max(1e-15, mag * 1e-12); }

}  // namespace xd::testing
