#include "testing/fuzz.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <initializer_list>

#include "fp/backend.hpp"
#include "fp/softfloat.hpp"
#include "host/context.hpp"
#include "host/shard.hpp"
#include "host/tuner.hpp"
#include "solver/cg.hpp"
#include "solver/jacobi.hpp"
#include "telemetry/export.hpp"
#include "telemetry/json.hpp"
#include "telemetry/session.hpp"
#include "testing/oracle.hpp"

namespace xd::testing {

namespace {

using host::Outcome;
using host::Runtime;

bool is_solver(FuzzKind k) {
  return k == FuzzKind::JacobiBatch || k == FuzzKind::Cg;
}

/// The backend-equivalence invariant needs a host whose native FPU passes
/// conformance; on one that does not (x87, FTZ, non-RNE), there is nothing
/// to cross-check and the invariant is skipped. Evaluated once.
bool native_is_conformant() {
  static const bool ok = fp::run_conformance(fp::native_backend()).passed;
  return ok;
}

/// The backend to cross-check the current run against.
fp::BackendKind other_backend() {
  return fp::active_backend().kind == fp::BackendKind::Soft
             ? fp::BackendKind::Native
             : fp::BackendKind::Soft;
}

bool bits_equal(double a, double b) {
  return fp::to_bits(a) == fp::to_bits(b);
}

/// Full bitwise comparison of two outcomes: values, cycle counts, flops,
/// stalls, staging. Returns an explanation of the first difference.
std::optional<std::string> outcome_diff(const Outcome& want,
                                        const Outcome& got) {
  if (want.values.size() != got.values.size()) {
    return cat("value count ", got.values.size(), " != ", want.values.size());
  }
  for (std::size_t i = 0; i < want.values.size(); ++i) {
    if (!bits_equal(want.values[i], got.values[i])) {
      return cat("values[", i, "] ", got.values[i], " != ", want.values[i],
                 " (bits 0x", std::hex, fp::to_bits(got.values[i]), " vs 0x",
                 fp::to_bits(want.values[i]), ")");
    }
  }
  if (want.report.cycles != got.report.cycles) {
    return cat("cycles ", got.report.cycles, " != ", want.report.cycles);
  }
  if (want.report.flops != got.report.flops) {
    return cat("flops ", got.report.flops, " != ", want.report.flops);
  }
  if (want.report.stall_cycles != got.report.stall_cycles) {
    return cat("stalls ", got.report.stall_cycles,
               " != ", want.report.stall_cycles);
  }
  if (want.report.staging_cycles != got.report.staging_cycles) {
    return cat("staging ", got.report.staging_cycles,
               " != ", want.report.staging_cycles);
  }
  return std::nullopt;
}

std::optional<CheckFailure> check_error_paths(const FuzzCase& fc,
                                              CaseData& data) {
  Runtime rt(fc.config());

  try {
    rt.run(data.desc);
    return CheckFailure{"error-path",
                        cat("run() accepted a malformed descriptor (",
                            sabotage_name(fc.sabotage), ")")};
  } catch (const ConfigError&) {
    // expected
  } catch (const std::exception& e) {
    return CheckFailure{"error-path",
                        cat("run() threw non-ConfigError: ", e.what())};
  }

  try {
    rt.submit(data.desc).get();
    return CheckFailure{"error-path",
                        cat("submit() future delivered an Outcome for a "
                            "malformed descriptor (",
                            sabotage_name(fc.sabotage), ")")};
  } catch (const ConfigError&) {
    // expected
  } catch (const std::exception& e) {
    return CheckFailure{"error-path",
                        cat("submit() threw non-ConfigError: ", e.what())};
  }

  const auto stats = rt.stats();
  if (stats.failed != 2 || stats.completed != 0) {
    return CheckFailure{"error-path",
                        cat("runtime stats after two failures: failed=",
                            stats.failed, " completed=", stats.completed)};
  }
  return std::nullopt;
}

OracleVec oracle_for(const FuzzCase& fc, const CaseData& data) {
  switch (fc.kind) {
    case FuzzKind::Dot:
      return oracle_dot({data.a}, {data.b});
    case FuzzKind::DotBatch:
      return oracle_dot(data.us, data.vs);
    case FuzzKind::Gemv:
    case FuzzKind::GemvAuto:
      return oracle_gemv(data.a, data.desc.rows, data.desc.cols, data.x);
    case FuzzKind::Spmxv:
      return oracle_spmxv(data.sparse, data.x);
    case FuzzKind::Gemm:
    case FuzzKind::GemmArray:
    case FuzzKind::GemmMulti:
      return oracle_gemm(data.a, data.b, data.desc.n);
    default:
      return {};
  }
}

std::optional<CheckFailure> check_oracle(const FuzzCase& fc,
                                         const CaseData& data,
                                         const Outcome& base) {
  const OracleVec want = oracle_for(fc, data);
  if (want.values.size() != base.values.size()) {
    return CheckFailure{"oracle", cat("result count ", base.values.size(),
                                      " != oracle's ", want.values.size())};
  }
  for (std::size_t i = 0; i < want.values.size(); ++i) {
    if (fc.mode == ValueMode::Exact) {
      if (!bits_equal(want.values[i], base.values[i])) {
        return CheckFailure{
            "oracle", cat("exact-mode values[", i, "]: engine ",
                          base.values[i], " != oracle ", want.values[i],
                          " (bits 0x", std::hex,
                          fp::to_bits(base.values[i]), " vs 0x",
                          fp::to_bits(want.values[i]), ")")};
      }
    } else {
      const double tol = oracle_tolerance(want.mag[i]);
      const double diff = std::fabs(base.values[i] - want.values[i]);
      if (!(diff <= tol)) {
        return CheckFailure{"oracle",
                            cat("values[", i, "]: engine ", base.values[i],
                                " vs oracle ", want.values[i], ", |diff| ",
                                diff, " > tol ", tol)};
      }
    }
  }
  return std::nullopt;
}

/// A same-configuration sibling with a strictly smaller problem, for the
/// cycles-monotone-in-size invariant. Only shapes whose timing is a
/// deterministic function of the shape qualify (not SpMXV's random
/// structure, not DotBatch's random pair lengths).
std::optional<FuzzCase> size_sibling(const FuzzCase& fc) {
  FuzzCase sib = fc;
  switch (fc.kind) {
    case FuzzKind::Dot:
      if (fc.cols < 2) return std::nullopt;
      sib.cols = fc.cols / 2;
      return sib;
    case FuzzKind::Gemv:
      if (fc.arch != host::GemvArch::Tree) return std::nullopt;
      if (fc.rows < 2) return std::nullopt;
      sib.rows = fc.rows / 2;
      return sib;
    case FuzzKind::Gemm:
    case FuzzKind::GemmArray:
    case FuzzKind::GemmMulti: {
      const host::ContextConfig cfg = fc.config();
      const std::size_t half = fc.n / 2;
      if (half == 0 || half % cfg.mm_m != 0) return std::nullopt;
      if (fc.kind == FuzzKind::GemmMulti && half % cfg.mm_b != 0) {
        return std::nullopt;
      }
      if (fc.kind == FuzzKind::Gemm && fc.mm_b && half % fc.mm_b != 0) {
        // Keep the panel edge valid by halving it alongside n when it was
        // pinned to n; otherwise let choose_panel_edge re-derive it.
        if (fc.mm_b == fc.n) {
          sib.mm_b = half;
        } else {
          return std::nullopt;
        }
      }
      sib.n = half;
      return sib;
    }
    default:
      return std::nullopt;
  }
}

u64 run_cycles(const FuzzCase& fc) {
  CaseData data;
  materialize(fc, data);
  Runtime rt(fc.config());
  return rt.run(data.desc).report.cycles;
}

std::optional<CheckFailure> check_op(const FuzzCase& fc, CaseData& data) {
  const host::ContextConfig cfg = fc.config();

  Runtime rt(cfg);
  const Outcome base = rt.run(data.desc);  // cold: plan-cache miss

  // Plan-cache hit must reproduce the cold miss exactly.
  const Outcome warm = rt.run(data.desc);
  if (rt.plan_cache().hits() == 0) {
    return CheckFailure{"plan-cache", "second run did not hit the plan cache"};
  }
  if (auto d = outcome_diff(base, warm)) {
    return CheckFailure{"plan-cache", cat("cache-hit rerun differs: ", *d)};
  }

  // A fresh runtime (fresh cache, same configuration) must reproduce it too.
  Runtime fresh(cfg);
  if (auto d = outcome_diff(base, fresh.run(data.desc))) {
    return CheckFailure{"determinism", cat("fresh runtime differs: ", *d)};
  }

  // submit() (worker pool, telemetry detached) == run().
  if (auto d = outcome_diff(base, rt.submit(data.desc).get())) {
    return CheckFailure{"concurrency", cat("submit() differs from run(): ", *d)};
  }

  // Pinned-plan fast path == LRU path, bit-identical including cycles and
  // stalls: a PlanHandle only skips the per-op cache probe, it must never
  // change what executes.
  {
    const host::PlanHandle pinned = rt.pin_plan(data.desc);
    if (auto d = outcome_diff(base, rt.run(data.desc, pinned))) {
      return CheckFailure{"pinned-plan", cat("pinned run() differs: ", *d)};
    }
    if (auto d = outcome_diff(base, rt.submit(data.desc, pinned).get())) {
      return CheckFailure{"pinned-plan", cat("pinned submit() differs: ", *d)};
    }
  }

  // Three concurrent copies == three sequential runs (they are all the same
  // deterministic simulation).
  const auto outs = rt.run_batch({data.desc, data.desc, data.desc});
  for (std::size_t i = 0; i < outs.size(); ++i) {
    if (auto d = outcome_diff(base, outs[i])) {
      return CheckFailure{"concurrency",
                          cat("run_batch()[", i, "] differs: ", *d)};
    }
  }

  // Backend equivalence: the exact same case, rerun with the other
  // arithmetic backend, must reproduce every value bit AND every cycle
  // count — the native fast path is an implementation detail, never an
  // observable one. This holds in every value mode, including Extreme
  // (NaN payloads, inf - inf, subnormals), because that is precisely where
  // the native pre-filters earn their keep.
  if (native_is_conformant()) {
    fp::ScopedBackend swap(other_backend());
    Runtime rt_other(cfg);
    if (auto d = outcome_diff(base, rt_other.run(data.desc))) {
      return CheckFailure{
          "backend-equivalence",
          cat(backend_name(fp::active_backend().kind), " backend differs: ", *d)};
    }
  }

  // Tuned-vs-fixed equivalence: rerunning the case under TunePolicy::Model
  // must pick a buildable design and never change what the op computes.
  // When the tuner lands on the same design as the fixed configuration
  // (equal engine signatures) the entire outcome — values, cycles, stalls,
  // staging — must be bit-identical. When it picks a different design, the
  // result shape must still match, the values must match bitwise in Exact
  // mode (integer-valued operands make every summation order exact), and
  // they must stay within the oracle tolerance in Uniform mode. Extreme
  // mode makes no cross-design value promise (NaN payloads and inf - inf
  // are association-sensitive), so only the shape is pinned there.
  {
    host::ContextConfig tuned_cfg = cfg;
    tuned_cfg.tune = host::TunePolicy::Model;
    try {
      const host::Plan fixed_plan =
          host::build_plan(cfg, host::PlanKey::from(data.desc));
      const host::Plan tuned_plan = host::build_plan(
          tuned_cfg, host::PlanKey::from(data.desc, host::TunePolicy::Model));
      Runtime rt_tuned(tuned_cfg);
      const Outcome tuned = rt_tuned.run(data.desc);
      const std::string fixed_sig = host::engine_signature(fixed_plan.engine);
      const std::string tuned_sig = host::engine_signature(tuned_plan.engine);
      if (fixed_sig == tuned_sig) {
        if (auto d = outcome_diff(base, tuned)) {
          return CheckFailure{"tuned-equivalence",
                              cat("same design (", tuned_sig,
                                  ") but tuned run differs: ", *d)};
        }
      } else {
        if (tuned.values.size() != base.values.size()) {
          return CheckFailure{
              "tuned-equivalence",
              cat("tuned design ", tuned_sig, " returned ",
                  tuned.values.size(), " values, fixed ", fixed_sig,
                  " returned ", base.values.size())};
        }
        if (fc.mode == ValueMode::Exact) {
          for (std::size_t i = 0; i < base.values.size(); ++i) {
            if (!bits_equal(base.values[i], tuned.values[i])) {
              return CheckFailure{
                  "tuned-equivalence",
                  cat("exact-mode values[", i, "]: tuned ", tuned_sig, " gave ",
                      tuned.values[i], ", fixed ", fixed_sig, " gave ",
                      base.values[i])};
            }
          }
        } else if (fc.mode == ValueMode::Uniform) {
          if (auto f = check_oracle(fc, data, tuned)) {
            return CheckFailure{"tuned-equivalence",
                                cat("tuned design ", tuned_sig,
                                    " misses the oracle: ", f->detail)};
          }
        }
      }
    } catch (const ConfigError& e) {
      return CheckFailure{
          "tuned-equivalence",
          cat("tuner found no buildable design for a case the fixed "
              "configuration accepts: ",
              e.what())};
    }
  }

  // Differential oracle.
  if (fc.mode != ValueMode::Extreme) {
    if (auto f = check_oracle(fc, data, base)) return f;
  }

  // A live telemetry session must not perturb numerics or timing, and every
  // exporter must emit valid JSON even for degenerate shapes.
  {
    telemetry::Session tel;
    tel.trace().set_enabled(true);
    host::ContextConfig tcfg = cfg;
    tcfg.telemetry = &tel;
    Runtime rt_tel(tcfg);
    const Outcome tout = rt_tel.run(data.desc);
    if (auto d = outcome_diff(base, tout)) {
      return CheckFailure{"telemetry", cat("live session changed the run: ", *d)};
    }
    const struct {
      const char* what;
      std::string text;
    } exports[] = {
        {"metrics", telemetry::metrics_to_json(tel.metrics())},
        {"spans", telemetry::spans_to_json(tel.spans())},
        {"trace", telemetry::chrome_trace_json(tel, tout.report.clock_mhz)},
        {"report", telemetry::report_to_json(tout.report)},
    };
    for (const auto& e : exports) {
      std::string err;
      if (!telemetry::json_validate(e.text, &err)) {
        return CheckFailure{"telemetry-json",
                            cat(e.what, " export is invalid JSON: ", err)};
      }
    }

    // Concurrent neutrality: worker-pool submission with the session
    // attached records through thread-local shards and the merge path, and
    // must still reproduce the detached run bit for bit — values, cycles,
    // stalls, everything.
    if (auto d = outcome_diff(base, rt_tel.submit(data.desc).get())) {
      return CheckFailure{
          "telemetry-concurrent",
          cat("attached submit() differs from detached run(): ", *d)};
    }
    const auto touts = rt_tel.run_batch({data.desc, data.desc});
    for (std::size_t i = 0; i < touts.size(); ++i) {
      if (auto d = outcome_diff(base, touts[i])) {
        return CheckFailure{
            "telemetry-concurrent",
            cat("attached run_batch()[", i, "] differs: ", *d)};
      }
    }
    // Those submissions also landed in the flight recorder; its export must
    // be strict JSON like every other sink.
    {
      std::string err;
      const std::string fj = telemetry::flight_to_json(tel.flight());
      if (!telemetry::json_validate(fj, &err)) {
        return CheckFailure{"telemetry-json",
                            cat("flight export is invalid JSON: ", err)};
      }
      if (tel.flight().total() < 3) {
        return CheckFailure{
            "telemetry-concurrent",
            cat("flight recorder saw ", tel.flight().total(),
                " completions, expected at least 3 (1 submit + 2 batch)")};
      }
    }
  }

  // Cycle count monotone in problem size.
  if (const auto sib = size_sibling(fc)) {
    const u64 small = run_cycles(*sib);
    if (small > base.report.cycles) {
      return CheckFailure{
          "size-monotone",
          cat("halved problem took ", small, " cycles > ", base.report.cycles,
              " (sibling: ", sib->to_line(), ")")};
    }
  }

  // Cycle count non-increasing in PE count, where the model guarantees it:
  // the tree GEMV streams k words/cycle (one per SRAM bank), so doubling k
  // doubles bandwidth and compute together. Guarded to streaming-dominated
  // shapes — for tiny matrices the constant pipeline/reduction tail
  // (~2*alpha^2 cycles) dominates and the model makes no promise.
  if (fc.kind == FuzzKind::Gemv && fc.arch == host::GemvArch::Tree) {
    const unsigned k = fc.gemv_k ? fc.gemv_k : 4;
    if (k <= 8 && fc.rows * fc.cols >= 8192) {
      FuzzCase wide = fc;
      wide.gemv_k = 2 * k;
      const u64 wide_cycles = run_cycles(wide);
      if (wide_cycles > base.report.cycles) {
        return CheckFailure{
            "pe-monotone",
            cat("k=", 2 * k, " took ", wide_cycles, " cycles > k=", k, "'s ",
                base.report.cycles, " on ", fc.rows, "x", fc.cols)};
      }
    }
  }

  return std::nullopt;
}

/// FuzzKind::Sharded invariant: the case's GEMM/GEMV re-run through the
/// ShardScheduler at l in {1, 2, 3, 6} (on a 3-chassis x 2-node system, so
/// l = 3 and l = 6 cross chassis boundaries).
///
/// Value comparison against the single-device run is scoped by what the
/// engine's association order guarantees (the same doctrine as the oracle,
/// see ValueMode in case.hpp):
///  - GEMM: bitwise in every mode. The hierarchical engine accumulates each
///    C element over the full inner dimension in ascending order, so a row
///    panel computes exactly the element it would in the whole problem.
///  - GEMV at l = 1: bitwise in every mode — the sub-op IS the original op.
///  - GEMV at l > 1: the Sec 3 reduction circuit pairs a row's partial
///    chunk sums in an order that depends on which other rows share
///    Buf_red and on fold-path adder contention, so splitting the row set
///    reassociates. Bitwise only in Exact mode (integer sums are
///    association-independent); Uniform compares against the naive oracle
///    with the magnitude-scaled tolerance; Extreme skips value comparison.
/// In every mode and at every l the sharded run itself must be
/// reproducible: rerunning yields bit-identical values AND identical
/// per-shard cycles/timelines. l = 1 must cost exactly the single-device
/// run (no transfer legs), and for GEMM the channel-driven simulation must
/// land on the analytic model cycle-for-cycle.
std::optional<CheckFailure> check_sharded(const FuzzCase& fc, CaseData& data) {
  Runtime rt(fc.config());
  const Outcome base = rt.run(data.desc);

  machine::SystemConfig sys;
  sys.chassis_count = 3;
  sys.chassis.nodes = 2;

  const bool is_gemm = fc.n > 0;
  const std::size_t rows = is_gemm ? fc.n : fc.rows;
  const OracleVec want =
      !is_gemm && fc.mode == ValueMode::Uniform
          ? oracle_gemv(data.a, data.desc.rows, data.desc.cols, data.x)
          : OracleVec{};
  for (const unsigned l : {1u, 2u, 3u, 6u}) {
    if (l > rows) continue;
    host::ShardScheduler sched(rt, sys);
    const host::ShardOutcome out = sched.run(data.desc, l);

    if (out.values.size() != base.values.size()) {
      return CheckFailure{"shard-identity",
                          cat("l=", l, ": ", out.values.size(),
                              " values != single-device ",
                              base.values.size())};
    }
    if (is_gemm || l == 1 || fc.mode == ValueMode::Exact) {
      for (std::size_t i = 0; i < base.values.size(); ++i) {
        if (!bits_equal(out.values[i], base.values[i])) {
          return CheckFailure{
              "shard-identity",
              cat("l=", l, " values[", i, "] ", out.values[i],
                  " != ", base.values[i], " (bits 0x", std::hex,
                  fp::to_bits(out.values[i]), " vs 0x",
                  fp::to_bits(base.values[i]), ")")};
        }
      }
    } else if (fc.mode == ValueMode::Uniform) {
      for (std::size_t i = 0; i < want.values.size(); ++i) {
        const double tol = oracle_tolerance(want.mag[i]);
        const double diff = std::fabs(out.values[i] - want.values[i]);
        if (!(diff <= tol)) {
          return CheckFailure{"shard-identity",
                              cat("l=", l, " values[", i, "]: sharded ",
                                  out.values[i], " vs oracle ",
                                  want.values[i], ", |diff| ", diff, " > tol ",
                                  tol)};
        }
      }
    }

    if (l == 1 && out.report.cycles != base.report.cycles) {
      return CheckFailure{"shard-l1",
                          cat("l=1 took ", out.report.cycles,
                              " cycles != single-device ",
                              base.report.cycles)};
    }
    if (fc.n > 0 && out.report.cycles != out.plan.model_cycles) {
      return CheckFailure{"shard-model",
                          cat("l=", l, " simulated ", out.report.cycles,
                              " cycles != modeled ", out.plan.model_cycles)};
    }

    // Rerun through a fresh scheduler: the reduced cycle count and every
    // per-shard timeline entry must be independent of pool scheduling.
    host::ShardScheduler again(rt, sys);
    const host::ShardOutcome rep = again.run(data.desc, l);
    if (rep.report.cycles != out.report.cycles) {
      return CheckFailure{"shard-determinism",
                          cat("l=", l, " rerun took ", rep.report.cycles,
                              " cycles != ", out.report.cycles)};
    }
    for (std::size_t i = 0; i < base.values.size(); ++i) {
      if (!bits_equal(rep.values[i], out.values[i])) {
        return CheckFailure{"shard-determinism",
                            cat("l=", l, " rerun values[", i, "] differ")};
      }
    }
    for (unsigned s = 0; s < l; ++s) {
      if (rep.plan.pieces[s].done != out.plan.pieces[s].done ||
          rep.shards[s].report.cycles != out.shards[s].report.cycles) {
        return CheckFailure{
            "shard-determinism",
            cat("l=", l, " shard ", s, " timeline differs across reruns")};
      }
    }
  }
  return std::nullopt;
}

std::optional<CheckFailure> check_solver(const FuzzCase& fc) {
  CaseData data;
  materialize(fc, data);
  host::Context ctx(fc.config());
  const solver::SolveOptions opts;

  if (fc.kind == FuzzKind::JacobiBatch) {
    const auto many = solver::jacobi_dense_batch(ctx, data.a, fc.n, data.rhs, opts);
    if (many.size() != data.rhs.size()) {
      return CheckFailure{"solver-batch", cat("batch returned ", many.size(),
                                              " results for ", data.rhs.size(),
                                              " systems")};
    }
    for (std::size_t i = 0; i < data.rhs.size(); ++i) {
      const auto one = solver::jacobi_dense(ctx, data.a, fc.n, data.rhs[i], opts);
      if (one.iterations != many[i].iterations ||
          one.fpga_cycles != many[i].fpga_cycles ||
          one.converged != many[i].converged) {
        return CheckFailure{
            "solver-batch",
            cat("system ", i, ": batch (iters=", many[i].iterations,
                ", cycles=", many[i].fpga_cycles, ") != single (iters=",
                one.iterations, ", cycles=", one.fpga_cycles, ")")};
      }
      for (std::size_t j = 0; j < fc.n; ++j) {
        if (!bits_equal(one.x[j], many[i].x[j])) {
          return CheckFailure{"solver-batch",
                              cat("system ", i, " x[", j, "]: batch ",
                                  many[i].x[j], " != single ", one.x[j])};
        }
      }
    }
    // Backend equivalence for the solver path: identical iterates, cycle
    // counts and solution bits under the other arithmetic backend.
    if (native_is_conformant()) {
      fp::ScopedBackend swap(other_backend());
      host::Context ctx2(fc.config());
      const auto many2 =
          solver::jacobi_dense_batch(ctx2, data.a, fc.n, data.rhs, opts);
      for (std::size_t i = 0; i < many.size(); ++i) {
        if (many2[i].iterations != many[i].iterations ||
            many2[i].fpga_cycles != many[i].fpga_cycles) {
          return CheckFailure{
              "backend-equivalence",
              cat("jacobi system ", i, ": other backend iters=",
                  many2[i].iterations, "/cycles=", many2[i].fpga_cycles,
                  " != ", many[i].iterations, "/", many[i].fpga_cycles)};
        }
        for (std::size_t j = 0; j < fc.n; ++j) {
          if (!bits_equal(many2[i].x[j], many[i].x[j])) {
            return CheckFailure{"backend-equivalence",
                                cat("jacobi system ", i, " x[", j,
                                    "] differs across backends")};
          }
        }
      }
    }
    return std::nullopt;
  }

  // CG: deterministic, converges on the generated SPD system, and its
  // reported residual agrees with an independent recomputation.
  const auto r1 = solver::cg_dense(ctx, data.a, fc.n, data.b, opts);
  const auto r2 = solver::cg_dense(ctx, data.a, fc.n, data.b, opts);
  if (r1.iterations != r2.iterations || r1.fpga_cycles != r2.fpga_cycles) {
    return CheckFailure{"solver-determinism",
                        cat("reruns differ: iters ", r1.iterations, "/",
                            r2.iterations, ", cycles ", r1.fpga_cycles, "/",
                            r2.fpga_cycles)};
  }
  for (std::size_t j = 0; j < fc.n; ++j) {
    if (!bits_equal(r1.x[j], r2.x[j])) {
      return CheckFailure{"solver-determinism",
                          cat("reruns differ at x[", j, "]")};
    }
  }
  if (native_is_conformant()) {
    fp::ScopedBackend swap(other_backend());
    host::Context ctx2(fc.config());
    const auto r3 = solver::cg_dense(ctx2, data.a, fc.n, data.b, opts);
    if (r3.iterations != r1.iterations || r3.fpga_cycles != r1.fpga_cycles) {
      return CheckFailure{"backend-equivalence",
                          cat("cg: other backend iters=", r3.iterations,
                              "/cycles=", r3.fpga_cycles, " != ",
                              r1.iterations, "/", r1.fpga_cycles)};
    }
    for (std::size_t j = 0; j < fc.n; ++j) {
      if (!bits_equal(r3.x[j], r1.x[j])) {
        return CheckFailure{
            "backend-equivalence",
            cat("cg x[", j, "] differs across backends")};
      }
    }
  }
  if (!r1.converged) {
    return CheckFailure{"solver-convergence",
                        cat("CG failed to converge on a diagonally dominant "
                            "SPD system (n=", fc.n, ", residual ",
                            r1.residual_norm, ")")};
  }
  double res2 = 0.0;
  for (std::size_t i = 0; i < fc.n; ++i) {
    double row = data.b[i];
    for (std::size_t j = 0; j < fc.n; ++j) {
      row -= data.a[i * fc.n + j] * r1.x[j];
    }
    res2 += row * row;
  }
  const double recomputed = std::sqrt(res2);
  if (recomputed > 1e-6) {
    return CheckFailure{"solver-residual",
                        cat("recomputed ||b - A x|| = ", recomputed,
                            " but solver reported ", r1.residual_norm)};
  }
  return std::nullopt;
}

/// Full comparison of two graph outcomes: every node outcome bitwise, plus
/// the aggregate report and the fusion accounting.
std::optional<std::string> graph_diff(const host::GraphOutcome& want,
                                      const host::GraphOutcome& got) {
  if (want.nodes.size() != got.nodes.size()) {
    return cat("node count ", got.nodes.size(), " != ", want.nodes.size());
  }
  for (std::size_t i = 0; i < want.nodes.size(); ++i) {
    if (auto d = outcome_diff(want.nodes[i], got.nodes[i])) {
      return cat("node ", i, ": ", *d);
    }
  }
  if (want.report.cycles != got.report.cycles) {
    return cat("aggregate cycles ", got.report.cycles,
               " != ", want.report.cycles);
  }
  if (want.fused_edges != got.fused_edges ||
      want.shared_operands != got.shared_operands ||
      want.staging_saved_cycles != got.staging_saved_cycles) {
    return cat("fusion accounting (edges/shared/saved) ", got.fused_edges, "/",
               got.shared_operands, "/", got.staging_saved_cycles, " != ",
               want.fused_edges, "/", want.shared_operands, "/",
               want.staging_saved_cycles);
  }
  return std::nullopt;
}

std::optional<CheckFailure> check_graph(const FuzzCase& fc, CaseData& data) {
  const host::ContextConfig cfg = fc.config();

  Runtime rt(cfg);
  const host::GraphOutcome base = rt.run_graph(data.graph);
  if (base.nodes.size() != data.graph.nodes.size()) {
    return CheckFailure{"graph-shape",
                        cat("run_graph returned ", base.nodes.size(),
                            " outcomes for ", data.graph.nodes.size(),
                            " nodes")};
  }

  // The core fusion contract: replaying every node as a stand-alone op —
  // with edge-fed slots resolved to the fused producer results — must
  // reproduce the fused values bit for bit and the engine compute cycle
  // for cycle; only the staging accounting may differ, and that difference
  // must be exactly the per-node savings the graph reported.
  Runtime single(cfg);
  for (std::size_t i = 0; i < data.graph.nodes.size(); ++i) {
    host::OpDesc d = data.graph.nodes[i].desc;
    for (const auto& e : data.graph.edges) {
      if (e.to != i) continue;
      const std::vector<double>* src = &base.nodes[e.from].values;
      switch (e.slot) {
        case host::OperandSlot::A: d.a = src; break;
        case host::OperandSlot::B: d.b = src; break;
        case host::OperandSlot::X: d.x = src; break;
      }
    }
    const Outcome lone = single.run(d);
    const Outcome& fused = base.nodes[i];
    if (lone.values.size() != fused.values.size()) {
      return CheckFailure{"graph-fused-values",
                          cat("node ", i, ": fused returned ",
                              fused.values.size(), " values, unfused ",
                              lone.values.size())};
    }
    for (std::size_t j = 0; j < lone.values.size(); ++j) {
      if (!bits_equal(lone.values[j], fused.values[j])) {
        return CheckFailure{
            "graph-fused-values",
            cat("node ", i, " values[", j, "]: fused ", fused.values[j],
                " != unfused ", lone.values[j], " (bits 0x", std::hex,
                fp::to_bits(fused.values[j]), " vs 0x",
                fp::to_bits(lone.values[j]), ")")};
      }
    }
    const u64 fused_compute = fused.report.cycles - fused.report.staging_cycles;
    const u64 lone_compute = lone.report.cycles - lone.report.staging_cycles;
    if (fused_compute != lone_compute ||
        fused.report.flops != lone.report.flops ||
        fused.report.stall_cycles != lone.report.stall_cycles) {
      return CheckFailure{
          "graph-fused-compute",
          cat("node ", i, ": fused compute/flops/stalls ", fused_compute, "/",
              fused.report.flops, "/", fused.report.stall_cycles,
              " != unfused ", lone_compute, "/", lone.report.flops, "/",
              lone.report.stall_cycles)};
    }
    if (lone.report.staging_cycles < fused.report.staging_cycles) {
      return CheckFailure{"graph-staging",
                          cat("node ", i, ": fused staging ",
                              fused.report.staging_cycles,
                              " exceeds unfused ", lone.report.staging_cycles)};
    }
    const u64 saved = lone.report.staging_cycles - fused.report.staging_cycles;
    if (saved != base.node_staging_saved[i]) {
      return CheckFailure{
          "graph-staging",
          cat("node ", i, ": actual staging gap ", saved,
              " != reported node_staging_saved ", base.node_staging_saved[i])};
    }
    if (fc.placement == host::Placement::Sram &&
        (fused.report.staging_cycles != 0 || saved != 0)) {
      return CheckFailure{"graph-staging",
                          cat("node ", i, ": SRAM placement staged ",
                              fused.report.staging_cycles, " cycles (saved ",
                              saved, ")")};
    }
  }

  // Graph-plan-cache hit must reproduce the cold miss exactly.
  const host::GraphOutcome warm = rt.run_graph(data.graph);
  if (rt.plan_cache().graph_hits() == 0) {
    return CheckFailure{"graph-plan-cache",
                        "second run did not hit the graph plan cache"};
  }
  if (auto d = graph_diff(base, warm)) {
    return CheckFailure{"graph-plan-cache", cat("cache-hit rerun differs: ", *d)};
  }

  // A fresh runtime must reproduce it, and submit_graph() == run_graph().
  Runtime fresh(cfg);
  if (auto d = graph_diff(base, fresh.run_graph(data.graph))) {
    return CheckFailure{"graph-determinism", cat("fresh runtime differs: ", *d)};
  }
  if (auto d = graph_diff(base, rt.submit_graph(data.graph).get())) {
    return CheckFailure{"graph-concurrency",
                        cat("submit_graph() differs from run_graph(): ", *d)};
  }

  // Backend equivalence: fused execution under the other arithmetic backend
  // is bit-identical — values AND cycles — for every node.
  if (native_is_conformant()) {
    fp::ScopedBackend swap(other_backend());
    Runtime rt_other(cfg);
    if (auto d = graph_diff(base, rt_other.run_graph(data.graph))) {
      return CheckFailure{
          "backend-equivalence",
          cat(backend_name(fp::active_backend().kind), " backend differs: ", *d)};
    }
  }

  // A live telemetry session must not perturb the graph run, and the
  // exporters must stay valid JSON with graph phases recorded.
  {
    telemetry::Session tel;
    host::ContextConfig tcfg = cfg;
    tcfg.telemetry = &tel;
    Runtime rt_tel(tcfg);
    if (auto d = graph_diff(base, rt_tel.run_graph(data.graph))) {
      return CheckFailure{"telemetry",
                          cat("live session changed the graph run: ", *d)};
    }
    if (auto d = graph_diff(base, rt_tel.submit_graph(data.graph).get())) {
      return CheckFailure{
          "telemetry-concurrent",
          cat("attached submit_graph() differs: ", *d)};
    }
    const struct {
      const char* what;
      std::string text;
    } exports[] = {
        {"metrics", telemetry::metrics_to_json(tel.metrics())},
        {"report", telemetry::report_to_json(base.report)},
    };
    for (const auto& e : exports) {
      std::string err;
      if (!telemetry::json_validate(e.text, &err)) {
        return CheckFailure{"telemetry-json",
                            cat(e.what, " export is invalid JSON: ", err)};
      }
    }
  }

  return std::nullopt;
}

// ---- generation ------------------------------------------------------------

u64 splitmix64(u64 x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::size_t pick_len(Rng& rng) {
  const u64 r = rng.uniform_int(1, 100);
  if (r <= 25) return static_cast<std::size_t>(rng.uniform_int(1, 4));
  if (r <= 45) return static_cast<std::size_t>(rng.uniform_int(12, 17));
  if (r <= 85) return static_cast<std::size_t>(rng.uniform_int(5, 256));
  if (r <= 95) return static_cast<std::size_t>(rng.uniform_int(257, 2048));
  return static_cast<std::size_t>(rng.uniform_int(2049, 8192));
}

ValueMode pick_mode(Rng& rng) {
  const u64 r = rng.uniform_int(1, 100);
  if (r <= 50) return ValueMode::Exact;
  if (r <= 85) return ValueMode::Uniform;
  return ValueMode::Extreme;
}

Sabotage pick_sabotage(Rng& rng, std::initializer_list<Sabotage> applicable) {
  const auto idx = rng.uniform_int(0, applicable.size() - 1);
  return applicable.begin()[idx];
}

}  // namespace

FuzzCase generate_case(u64 seed, u64 index) {
  Rng rng(splitmix64(seed ^ splitmix64(index)));
  FuzzCase fc;
  fc.vseed = rng.next_u64() | 1;

  const u64 kind_roll = rng.uniform_int(1, 100);
  if (kind_roll <= 16) fc.kind = FuzzKind::Dot;
  else if (kind_roll <= 24) fc.kind = FuzzKind::DotBatch;
  else if (kind_roll <= 42) fc.kind = FuzzKind::Gemv;
  else if (kind_roll <= 48) fc.kind = FuzzKind::GemvAuto;
  else if (kind_roll <= 62) fc.kind = FuzzKind::Spmxv;
  else if (kind_roll <= 72) fc.kind = FuzzKind::Gemm;
  else if (kind_roll <= 80) fc.kind = FuzzKind::GemmArray;
  else if (kind_roll <= 86) fc.kind = FuzzKind::GemmMulti;
  else if (kind_roll <= 92) fc.kind = FuzzKind::JacobiBatch;
  else if (kind_roll <= 95) fc.kind = FuzzKind::Graph;
  else if (kind_roll <= 98) fc.kind = FuzzKind::Sharded;
  else fc.kind = FuzzKind::Cg;

  fc.mode = is_solver(fc.kind) ? ValueMode::Uniform : pick_mode(rng);
  const bool sabotaged = !is_solver(fc.kind) && rng.uniform_int(1, 100) <= 12;

  switch (fc.kind) {
    case FuzzKind::Dot: {
      fc.cols = pick_len(rng);
      const unsigned ks[] = {0, 1, 4, 8};
      fc.dot_k = ks[rng.uniform_int(0, 3)];
      if (rng.uniform_int(1, 100) <= 30) fc.placement = host::Placement::Dram;
      if (sabotaged) {
        fc.sabotage =
            pick_sabotage(rng, {Sabotage::OperandLength, Sabotage::ZeroShape});
      }
      break;
    }
    case FuzzKind::DotBatch: {
      fc.batch = static_cast<std::size_t>(rng.uniform_int(1, 6));
      if (sabotaged) {
        fc.sabotage =
            pick_sabotage(rng, {Sabotage::OperandLength, Sabotage::ZeroShape});
      }
      break;
    }
    case FuzzKind::Gemv: {
      const unsigned ks[] = {0, 1, 2, 8};
      fc.gemv_k = ks[rng.uniform_int(0, 3)];
      const unsigned k_eff = fc.gemv_k ? fc.gemv_k : 4;
      fc.rows = static_cast<std::size_t>(rng.uniform_int(1, 192));
      fc.cols = static_cast<std::size_t>(rng.uniform_int(1, 128));
      if (rng.uniform_int(1, 100) <= 25) {
        // The column design re-reads each y intermediate every
        // ceil(rows/k) cycles; keep that above the adder depth.
        fc.arch = host::GemvArch::Column;
        fc.rows = std::max<std::size_t>(
            fc.rows, 14ull * k_eff + rng.uniform_int(0, 24));
      }
      if (rng.uniform_int(1, 100) <= 30) fc.placement = host::Placement::Dram;
      if (sabotaged) {
        fc.sabotage =
            pick_sabotage(rng, {Sabotage::OperandLength, Sabotage::ZeroShape,
                                Sabotage::OverflowShape});
      }
      break;
    }
    case FuzzKind::GemvAuto: {
      fc.rows = static_cast<std::size_t>(rng.uniform_int(1, 3));
      // ~20% of cases push x past the on-chip capacity (65016 words on the
      // default XC2VP50) to exercise the blocked fallback.
      fc.cols = rng.uniform_int(1, 100) <= 20
                    ? static_cast<std::size_t>(rng.uniform_int(65017, 68000))
                    : static_cast<std::size_t>(rng.uniform_int(8, 4096));
      if (sabotaged) {
        fc.sabotage =
            pick_sabotage(rng, {Sabotage::OperandLength, Sabotage::ZeroShape,
                                Sabotage::OverflowShape});
      }
      break;
    }
    case FuzzKind::Spmxv: {
      fc.rows = static_cast<std::size_t>(rng.uniform_int(1, 96));
      fc.cols = static_cast<std::size_t>(rng.uniform_int(1, 96));
      fc.nnz_per_row = static_cast<std::size_t>(
          rng.uniform_int(0, std::min<u64>(fc.cols, 8)));
      const unsigned ks[] = {0, 1, 2, 8};
      fc.gemv_k = ks[rng.uniform_int(0, 3)];
      if (sabotaged) {
        fc.sabotage =
            pick_sabotage(rng, {Sabotage::OperandLength, Sabotage::ZeroShape,
                                Sabotage::SparseStructure});
      }
      break;
    }
    case FuzzKind::Gemm:
    case FuzzKind::GemmArray:
    case FuzzKind::GemmMulti: {
      const unsigned ms[] = {2, 4, 8};
      unsigned m = ms[rng.uniform_int(0, 2)];
      unsigned l = 1;
      if (fc.kind == FuzzKind::GemmMulti) {
        m = rng.uniform_int(0, 1) ? 4 : 8;
        l = static_cast<unsigned>(rng.uniform_int(1, 3));
      }
      const unsigned kchoices[] = {1, m / 2, m};
      const unsigned k = std::max(1u, kchoices[rng.uniform_int(0, 2)]);
      fc.mm_m = m;
      fc.mm_k = k;
      fc.mm_l = l;
      if (fc.kind == FuzzKind::GemmMulti) {
        fc.mm_b = static_cast<std::size_t>(m) * l *
                  static_cast<std::size_t>(rng.uniform_int(1, 2));
        fc.n = fc.mm_b * static_cast<std::size_t>(rng.uniform_int(1, 2));
      } else {
        fc.n = static_cast<std::size_t>(m) *
               static_cast<std::size_t>(rng.uniform_int(1, 6));
        // Panel edge: the whole problem, or single m-blocks.
        fc.mm_b = rng.uniform_int(0, 1) ? fc.n : m;
      }
      if (sabotaged) {
        fc.sabotage = pick_sabotage(
            rng, {Sabotage::OperandLength, Sabotage::ZeroShape,
                  Sabotage::OverflowShape, Sabotage::Indivisible});
      }
      break;
    }
    case FuzzKind::JacobiBatch:
      fc.n = static_cast<std::size_t>(rng.uniform_int(4, 40));
      fc.batch = static_cast<std::size_t>(rng.uniform_int(2, 4));
      break;
    case FuzzKind::Cg:
      fc.n = static_cast<std::size_t>(rng.uniform_int(4, 32));
      break;
    case FuzzKind::Graph: {
      fc.n = static_cast<std::size_t>(rng.uniform_int(4, 96));
      fc.batch = static_cast<std::size_t>(rng.uniform_int(2, 4));
      const u64 form = rng.uniform_int(1, 100);
      if (form <= 50) fc.gform = GraphForm::Random;
      else if (form <= 80) fc.gform = GraphForm::CgStep;
      else fc.gform = GraphForm::JacobiSweep;
      // Fusion only has staging to recover under DRAM placement, so weight
      // it heavily; the Sram cases pin the zero-staging parity instead.
      if (rng.uniform_int(1, 100) <= 65) fc.placement = host::Placement::Dram;
      const unsigned gks[] = {0, 1, 2, 8};
      fc.gemv_k = gks[rng.uniform_int(0, 3)];
      const unsigned dks[] = {0, 1, 4, 8};
      fc.dot_k = dks[rng.uniform_int(0, 3)];
      // ~25%: shrink the SRAM so chain operands cannot stay resident and
      // the planner's per-edge DRAM-staging fallback triggers.
      if (rng.uniform_int(1, 100) <= 25) {
        fc.sram_cap = static_cast<std::size_t>(rng.uniform_int(8, 4 * fc.n));
      }
      break;
    }
    case FuzzKind::Sharded: {
      // Never sabotaged: the invariant is bit-identity of a well-formed op
      // across shard counts, not error handling. n > 0 selects GEMM.
      if (rng.uniform_int(0, 1)) {
        const unsigned ms[] = {2, 4, 8};
        const unsigned m = ms[rng.uniform_int(0, 2)];
        const unsigned kchoices[] = {1, m / 2, m};
        fc.mm_m = m;
        fc.mm_k = std::max(1u, kchoices[rng.uniform_int(0, 2)]);
        fc.n = static_cast<std::size_t>(m) *
               static_cast<std::size_t>(rng.uniform_int(2, 6));
        fc.mm_b = rng.uniform_int(0, 1) ? fc.n : m;
      } else {
        const unsigned ks[] = {0, 1, 2, 8};
        fc.gemv_k = ks[rng.uniform_int(0, 3)];
        fc.rows = static_cast<std::size_t>(rng.uniform_int(6, 192));
        fc.cols = static_cast<std::size_t>(rng.uniform_int(1, 128));
      }
      break;
    }
  }
  return fc;
}

std::optional<CheckFailure> check_case(const FuzzCase& fc) {
  try {
    if (is_solver(fc.kind)) return check_solver(fc);
    CaseData data;
    materialize(fc, data);
    if (fc.kind == FuzzKind::Graph) return check_graph(fc, data);
    if (fc.kind == FuzzKind::Sharded) return check_sharded(fc, data);
    if (fc.expect_error()) return check_error_paths(fc, data);
    return check_op(fc, data);
  } catch (const std::exception& e) {
    return CheckFailure{"unexpected-exception", e.what()};
  }
}

// ---- shrinking -------------------------------------------------------------

namespace {

/// Strictly decreasing under every adopted reduction, so the greedy descent
/// terminates.
u64 shrink_measure(const FuzzCase& fc) {
  u64 m = fc.rows + fc.cols + fc.n + fc.batch + fc.nnz_per_row;
  if (fc.placement != host::Placement::Sram) ++m;
  if (fc.arch != host::GemvArch::Tree) ++m;
  m += static_cast<u64>(fc.mode);
  m += (fc.dot_k ? 1 : 0) + (fc.gemv_k ? 1 : 0) + (fc.mm_k ? 1 : 0) +
       (fc.mm_m ? 1 : 0) + (fc.mm_b ? 1 : 0) + (fc.mm_l ? 1 : 0);
  if (fc.sram_cap) ++m;
  if (fc.vseed != 1) ++m;
  return m;
}

std::vector<FuzzCase> shrink_candidates(const FuzzCase& fc) {
  std::vector<FuzzCase> out;
  const auto push = [&](FuzzCase c) {
    if (shrink_measure(c) < shrink_measure(fc)) out.push_back(c);
  };

  for (std::size_t FuzzCase::*field :
       {&FuzzCase::rows, &FuzzCase::cols, &FuzzCase::n, &FuzzCase::batch,
        &FuzzCase::nnz_per_row}) {
    if (fc.*field > 1) {
      FuzzCase c = fc;
      c.*field = fc.*field / 2;
      if (field == &FuzzCase::n && fc.mm_b == fc.n) c.mm_b = c.n;
      push(c);
      c = fc;
      c.*field = 1;
      if (field == &FuzzCase::n && fc.mm_b == fc.n) c.mm_b = 1;
      push(c);
    }
  }
  if (fc.placement != host::Placement::Sram) {
    FuzzCase c = fc;
    c.placement = host::Placement::Sram;
    push(c);
  }
  if (fc.arch != host::GemvArch::Tree) {
    FuzzCase c = fc;
    c.arch = host::GemvArch::Tree;
    push(c);
  }
  if (fc.mode == ValueMode::Extreme) {
    FuzzCase c = fc;
    c.mode = ValueMode::Uniform;
    push(c);
    c.mode = ValueMode::Exact;
    push(c);
  } else if (fc.mode == ValueMode::Uniform) {
    FuzzCase c = fc;
    c.mode = ValueMode::Exact;
    push(c);
  }
  for (unsigned FuzzCase::*knob :
       {&FuzzCase::dot_k, &FuzzCase::gemv_k, &FuzzCase::mm_k, &FuzzCase::mm_m,
        &FuzzCase::mm_l}) {
    if (fc.*knob) {
      FuzzCase c = fc;
      c.*knob = 0;
      push(c);
    }
  }
  if (fc.mm_b) {
    FuzzCase c = fc;
    c.mm_b = 0;
    push(c);
  }
  if (fc.sram_cap) {
    FuzzCase c = fc;
    c.sram_cap = 0;
    push(c);
  }
  if (fc.vseed != 1) {
    FuzzCase c = fc;
    c.vseed = 1;
    push(c);
  }
  return out;
}

}  // namespace

ShrinkResult shrink_case(const FuzzCase& failing, const CheckFailure& failure) {
  ShrinkResult res{failing, failure, 0};
  // Adopt only candidates that fail the SAME invariant: a smaller case that
  // merely fails differently (e.g. became structurally invalid) is a new
  // artifact, not a smaller reproduction of this bug.
  bool progressed = true;
  while (progressed && res.steps < 200) {
    progressed = false;
    for (const FuzzCase& cand : shrink_candidates(res.minimal)) {
      const auto f = check_case(cand);
      if (f && f->invariant == res.failure.invariant) {
        res.minimal = cand;
        res.failure = *f;
        ++res.steps;
        progressed = true;
        break;
      }
    }
  }
  return res;
}

// ---- corpus ----------------------------------------------------------------

std::vector<FuzzCase> load_corpus(const std::string& path) {
  std::ifstream in(path);
  require(static_cast<bool>(in), cat("cannot open corpus file '", path, "'"));
  std::vector<FuzzCase> cases;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    try {
      cases.push_back(FuzzCase::from_line(line.substr(first)));
    } catch (const ConfigError& e) {
      throw ConfigError(cat(path, ":", line_no, ": ", e.what()));
    }
  }
  return cases;
}

void append_corpus(const std::string& path, const FuzzCase& fc,
                   const std::string& comment) {
  std::ofstream out(path, std::ios::app);
  require(static_cast<bool>(out), cat("cannot append to corpus '", path, "'"));
  if (!comment.empty()) out << "# " << comment << "\n";
  out << fc.to_line() << "\n";
}

// ---- drivers ---------------------------------------------------------------

namespace {

std::function<void(const std::string&)> default_log(
    const std::function<void(const std::string&)>& log) {
  if (log) return log;
  return [](const std::string& s) { std::printf("%s\n", s.c_str()); };
}

}  // namespace

FuzzSummary run_fuzz(const FuzzOptions& opts) {
  const auto log = default_log(opts.log);
  const auto start = std::chrono::steady_clock::now();
  FuzzSummary sum;

  for (u64 i = 0;; ++i) {
    if (opts.time_budget_ms) {
      const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                               std::chrono::steady_clock::now() - start)
                               .count();
      if (elapsed >= static_cast<long long>(opts.time_budget_ms)) break;
    } else if (i >= opts.ops) {
      break;
    }

    const FuzzCase fc = generate_case(opts.seed, i);
    if (opts.verbose) log(cat("case ", i, ": ", fc.to_line()));
    const auto fail = check_case(fc);
    ++sum.cases_run;
    if (!fail) continue;

    ++sum.failures;
    log(cat("FAIL [", fail->invariant, "] case ", i, ": ", fail->detail));
    log(cat("  original: ", fc.to_line()));
    const ShrinkResult shrunk = shrink_case(fc, *fail);
    log(cat("  shrunk (", shrunk.steps, " steps): ", shrunk.minimal.to_line()));
    log(cat("  shrunk failure: ", shrunk.failure.detail));
    sum.failure_lines.push_back(shrunk.minimal.to_line());
    if (!opts.corpus_out.empty()) {
      append_corpus(opts.corpus_out, shrunk.minimal,
                    cat("seed=", opts.seed, " case=", i, " [",
                        shrunk.failure.invariant, "] ", shrunk.failure.detail));
      log(cat("  appended to ", opts.corpus_out));
    }
    if (sum.failures >= opts.max_failures) {
      log(cat("stopping after ", sum.failures, " failures"));
      break;
    }
  }

  log(cat("fuzz: ", sum.cases_run, " cases, ", sum.failures,
          " failures (seed ", opts.seed, ")"));
  return sum;
}

FuzzSummary replay_corpus(const std::string& path,
                          std::function<void(const std::string&)> log) {
  const auto out = default_log(log);
  FuzzSummary sum;
  for (const FuzzCase& fc : load_corpus(path)) {
    const auto fail = check_case(fc);
    ++sum.cases_run;
    if (fail) {
      ++sum.failures;
      out(cat("FAIL [", fail->invariant, "] ", fc.to_line(), ": ",
              fail->detail));
      sum.failure_lines.push_back(fc.to_line());
    }
  }
  out(cat("replay: ", sum.cases_run, " cases, ", sum.failures, " failures (",
          path, ")"));
  return sum;
}

}  // namespace xd::testing
