// Differential-testing case layer: one FuzzCase fully describes one
// randomized scenario — what operation to run, at what shapes, on which
// machine configuration, with which operand values — as a pure value type
// that serializes to a single corpus line and replays deterministically.
//
// The split from the generator/checker (fuzz.hpp) matters: a corpus entry
// must replay years later without the generator that produced it, so the
// line format encodes everything (shapes, placement, arch, machine knobs,
// value mode, value seed, expected-failure marker) and materialize()
// rebuilds the operand data from the value seed alone.
#pragma once

#include <cstddef>
#include <deque>
#include <string>
#include <string_view>

#include "blas2/spmxv.hpp"
#include "common/random.hpp"
#include "host/graph.hpp"
#include "host/op.hpp"

namespace xd::testing {

/// Everything the fuzzer can exercise: the eight OpDesc kinds, the two
/// solver drivers (which run *through* the runtime but are checked with
/// solver-level invariants), fused op graphs (small DAGs over the fusable
/// kinds, checked fused-vs-unfused), and sharded multi-FPGA execution
/// (a GEMM or tree GEMV re-run through host::ShardScheduler at l in
/// {1, 2, 3, 6}, checked bit-identical to the single-device run).
enum class FuzzKind {
  Dot,
  DotBatch,
  Gemv,
  GemvAuto,
  Spmxv,
  Gemm,
  GemmArray,
  GemmMulti,
  JacobiBatch,
  Cg,
  Graph,
  Sharded,
};

const char* fuzz_kind_name(FuzzKind kind);
bool fuzz_kind_from_name(std::string_view name, FuzzKind& out);

/// Shape of a FuzzKind::Graph case. The two named forms mirror the fused
/// chains the solvers actually run (CG's GEMV->DOT step, Jacobi's shared-A
/// sweep); Random draws an arbitrary 2-4 node DAG over dot/gemv/spmxv with
/// edges from any length-n producer into any length-n slot.
enum class GraphForm { Random, CgStep, JacobiSweep };

const char* graph_form_name(GraphForm form);
bool graph_form_from_name(std::string_view name, GraphForm& out);

/// How operand values are drawn. The mode decides which oracle comparison
/// is sound (see docs/testing.md):
///  - Exact: nonzero integers in [-32, 32]. Every product and every partial
///    sum the engines can form is an exact integer far below 2^53, so *any*
///    association order yields identical bits — the naive softfloat oracle
///    is bit-exact by construction and the harness compares bitwise.
///  - Uniform: doubles in [-1, 1); the engines' reduction reassociates, so
///    the oracle comparison uses a magnitude-scaled tolerance.
///  - Extreme: subnormals, huge magnitudes, zeros, infinities and NaNs.
///    Associativity breaks down entirely (inf - inf, double rounding), so
///    only the value-independent invariants (determinism, concurrency,
///    plan-cache, telemetry, timing) are checked.
enum class ValueMode { Exact, Uniform, Extreme };

const char* value_mode_name(ValueMode mode);
bool value_mode_from_name(std::string_view name, ValueMode& out);

/// Ways an intentionally malformed case is broken. Every sabotage must
/// surface as ConfigError — through run() and through submit() futures —
/// never as a crash, hang, or SimError.
enum class Sabotage {
  None,
  OperandLength,   ///< an operand vector shorter than the declared shape
  ZeroShape,       ///< rows/cols/n/batch of zero
  OverflowShape,   ///< rows*cols (or n*n) wraps size_t
  SparseStructure, ///< corrupted CRS (row_ptr/col_idx inconsistencies)
  Indivisible,     ///< GEMM n incompatible with the configured m/b tiling
};

const char* sabotage_name(Sabotage s);
bool sabotage_from_name(std::string_view name, Sabotage& out);

struct FuzzCase {
  FuzzKind kind = FuzzKind::Dot;
  host::Placement placement = host::Placement::Sram;
  host::GemvArch arch = host::GemvArch::Tree;
  ValueMode mode = ValueMode::Exact;
  Sabotage sabotage = Sabotage::None;

  GraphForm gform = GraphForm::Random;  ///< FuzzKind::Graph chain shape

  std::size_t rows = 0;   ///< GEMV/SpMXV/solvers
  std::size_t cols = 0;   ///< dot length; GEMV/SpMXV cols
  std::size_t n = 0;      ///< GEMM edge; solver system size; Graph vector len
  std::size_t batch = 0;  ///< DotBatch pairs; JacobiBatch rhs; Graph nodes
  std::size_t nnz_per_row = 0;  ///< SpMXV target nonzeros per row

  u64 vseed = 1;  ///< seed for operand value/structure generation

  /// Override of ContextConfig::sram_capacity_words (0 keeps the default).
  /// Lets tiny graph cases exercise the planner's capacity-fallback path
  /// without multi-second shapes.
  std::size_t sram_cap = 0;

  // Machine-configuration overrides; 0 keeps the ContextConfig default.
  unsigned dot_k = 0;
  unsigned gemv_k = 0;
  unsigned mm_k = 0;
  unsigned mm_m = 0;
  std::size_t mm_b = 0;
  unsigned mm_l = 0;

  bool expect_error() const { return sabotage != Sabotage::None; }

  /// The machine configuration this case runs against. mm_adder_stages is
  /// clamped to the m^2/k accumulation-slot bound so every generated PE
  /// geometry is constructible.
  host::ContextConfig config() const;

  /// One corpus line: `xdfuzz1 kind=... [key=value ...]`. Defaulted fields
  /// are omitted; parse() accepts the keys in any order.
  std::string to_line() const;

  /// Parse a to_line() string; throws ConfigError with the offending token
  /// on malformed input.
  static FuzzCase from_line(const std::string& line);
};

/// Materialized operands for one case. OpDesc points into this struct's own
/// vectors, so the struct is pinned: no copies, no moves.
struct CaseData {
  std::vector<double> a, b, x;
  std::vector<std::vector<double>> us, vs;
  blas2::CrsMatrix sparse;
  std::vector<std::vector<double>> rhs;  ///< solver right-hand sides
  host::OpDesc desc;                     ///< unset for solver/graph kinds
  host::GraphDesc graph;                 ///< set for FuzzKind::Graph
  /// Graph operand storage: a deque keeps every vector's address stable as
  /// more operands are drawn, so node OpDescs can point into it.
  std::deque<std::vector<double>> pool;

  CaseData() = default;
  CaseData(const CaseData&) = delete;
  CaseData& operator=(const CaseData&) = delete;
};

/// Deterministically rebuild the operand data (and the OpDesc for op kinds)
/// from the case's value seed. Sabotaged cases produce the corrupted
/// operands their sabotage describes.
void materialize(const FuzzCase& fc, CaseData& data);

/// One value in the given mode (exposed for tests).
double draw_value(Rng& rng, ValueMode mode);

}  // namespace xd::testing
