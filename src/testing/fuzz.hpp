// Differential fuzz harness: seeded case generation, the metamorphic
// invariant checker, failure shrinking, and corpus replay.
//
// The checker runs each case through the full plan/execute runtime and
// verifies, in order:
//   oracle          engine values == naive softfloat oracle (bitwise in
//                   Exact mode, magnitude-scaled tolerance in Uniform mode)
//   plan-cache      a cache-hit rerun is bit-identical (values AND cycles)
//                   to the cold-miss run, and a fresh runtime reproduces it
//   concurrency     submit() and a 3-way run_batch() are bit-identical to
//                   the sequential run, including cycle counts
//   backend-equivalence  rerunning under the other fp backend (softfloat vs
//                   conformance-verified native FPU) is bit-identical —
//                   values AND cycle counts — for every op and solver kind;
//                   skipped only on hosts whose FPU fails conformance
//   telemetry       a run with a live Session produces identical numerics
//                   and all four exporters emit valid JSON
//   size-monotone   cycles do not decrease when the problem grows (checked
//                   by running a halved sibling of the same case)
//   pe-monotone     cycles do not increase when the GEMV PE count doubles
//                   (bandwidth scales with k on that design), guarded to
//                   streaming-dominated shapes where the model guarantees it
//   error-path      sabotaged cases throw ConfigError through run() AND
//                   through submit() futures — never a crash or SimError
//   solver          jacobi_dense_batch == per-rhs jacobi_dense bitwise;
//                   cg_dense is deterministic, converges, and its reported
//                   residual matches an independent recomputation
//   graph-fused-*   a fused DAG run (run_graph) reproduces per-node
//                   single-op execution bit for bit — values and engine
//                   compute cycles — with the staging gap exactly equal to
//                   the reported per-node savings; checked under both fp
//                   backends, through the graph plan cache, and through
//                   submit_graph()
//
// A failing case is shrunk to a minimal reproducing FuzzCase (greedy
// candidate descent on a strictly decreasing size measure) and appended to
// a corpus file that tools/xdblas_fuzz and tests/test_fuzz_replay.cpp
// replay as a golden-regression suite.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "testing/case.hpp"

namespace xd::testing {

struct CheckFailure {
  std::string invariant;  ///< which check tripped (e.g. "oracle", "plan-cache")
  std::string detail;     ///< human-readable specifics
};

/// Run every applicable invariant for one case. Returns std::nullopt when
/// all pass. Exceptions other than the expected ConfigError paths are
/// converted into failures (invariant "unexpected-exception").
std::optional<CheckFailure> check_case(const FuzzCase& fc);

/// Deterministic case for (master seed, index): the same pair always yields
/// the same FuzzCase, independent of any other index.
FuzzCase generate_case(u64 seed, u64 index);

/// Greedily minimize a failing case: repeatedly adopt any strictly smaller
/// candidate that still fails (any invariant). Returns the minimal case and
/// its failure.
struct ShrinkResult {
  FuzzCase minimal;
  CheckFailure failure;
  int steps = 0;  ///< adopted reductions
};
ShrinkResult shrink_case(const FuzzCase& failing, const CheckFailure& failure);

// ---- corpus ---------------------------------------------------------------

/// Parse a corpus file: '#' comments and blank lines skipped, one FuzzCase
/// per remaining line. Throws ConfigError (with line number) on bad input.
std::vector<FuzzCase> load_corpus(const std::string& path);

/// Append one case (with a provenance comment) to a corpus file.
void append_corpus(const std::string& path, const FuzzCase& fc,
                   const std::string& comment);

// ---- drivers --------------------------------------------------------------

struct FuzzOptions {
  u64 seed = 2005;
  u64 ops = 500;            ///< cases to generate (ignored if time_budget_ms)
  u64 time_budget_ms = 0;   ///< stop generating after this wall-clock budget
  std::string corpus_out;   ///< append shrunk failures here (empty: don't)
  u64 max_failures = 5;     ///< stop after this many distinct failures
  bool verbose = false;
  /// Progress/diagnostic sink (default: stdout via std::printf).
  std::function<void(const std::string&)> log;
};

struct FuzzSummary {
  u64 cases_run = 0;
  u64 failures = 0;
  std::vector<std::string> failure_lines;  ///< shrunk corpus lines
};

/// Generate-and-check loop. Deterministic for a fixed seed when
/// time_budget_ms is 0.
FuzzSummary run_fuzz(const FuzzOptions& opts);

/// Replay every case in a corpus file; returns the number of failures and
/// logs each one.
FuzzSummary replay_corpus(const std::string& path,
                          std::function<void(const std::string&)> log = {});

}  // namespace xd::testing
