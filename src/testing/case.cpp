#include "testing/case.hpp"

#include <algorithm>
#include <sstream>

#include "fp/softfloat.hpp"

namespace xd::testing {

namespace {

struct NamePair {
  const char* name;
  int value;
};

template <typename E, std::size_t N>
const char* name_of(const NamePair (&table)[N], E v) {
  for (const auto& p : table) {
    if (p.value == static_cast<int>(v)) return p.name;
  }
  return "unknown";
}

template <typename E, std::size_t N>
bool parse_name(const NamePair (&table)[N], std::string_view s, E& out) {
  for (const auto& p : table) {
    if (s == p.name) {
      out = static_cast<E>(p.value);
      return true;
    }
  }
  return false;
}

constexpr NamePair kKinds[] = {
    {"dot", static_cast<int>(FuzzKind::Dot)},
    {"dot_batch", static_cast<int>(FuzzKind::DotBatch)},
    {"gemv", static_cast<int>(FuzzKind::Gemv)},
    {"gemv_auto", static_cast<int>(FuzzKind::GemvAuto)},
    {"spmxv", static_cast<int>(FuzzKind::Spmxv)},
    {"gemm", static_cast<int>(FuzzKind::Gemm)},
    {"gemm_array", static_cast<int>(FuzzKind::GemmArray)},
    {"gemm_multi", static_cast<int>(FuzzKind::GemmMulti)},
    {"jacobi_batch", static_cast<int>(FuzzKind::JacobiBatch)},
    {"cg", static_cast<int>(FuzzKind::Cg)},
    {"graph", static_cast<int>(FuzzKind::Graph)},
    {"sharded", static_cast<int>(FuzzKind::Sharded)},
};

constexpr NamePair kGraphForms[] = {
    {"random", static_cast<int>(GraphForm::Random)},
    {"cg_step", static_cast<int>(GraphForm::CgStep)},
    {"jacobi_sweep", static_cast<int>(GraphForm::JacobiSweep)},
};

constexpr NamePair kModes[] = {
    {"exact", static_cast<int>(ValueMode::Exact)},
    {"uniform", static_cast<int>(ValueMode::Uniform)},
    {"extreme", static_cast<int>(ValueMode::Extreme)},
};

constexpr NamePair kSabotages[] = {
    {"none", static_cast<int>(Sabotage::None)},
    {"operand_length", static_cast<int>(Sabotage::OperandLength)},
    {"zero_shape", static_cast<int>(Sabotage::ZeroShape)},
    {"overflow_shape", static_cast<int>(Sabotage::OverflowShape)},
    {"sparse_structure", static_cast<int>(Sabotage::SparseStructure)},
    {"indivisible", static_cast<int>(Sabotage::Indivisible)},
};

}  // namespace

const char* fuzz_kind_name(FuzzKind kind) { return name_of(kKinds, kind); }
bool fuzz_kind_from_name(std::string_view name, FuzzKind& out) {
  return parse_name(kKinds, name, out);
}
const char* value_mode_name(ValueMode mode) { return name_of(kModes, mode); }
bool value_mode_from_name(std::string_view name, ValueMode& out) {
  return parse_name(kModes, name, out);
}
const char* sabotage_name(Sabotage s) { return name_of(kSabotages, s); }
bool sabotage_from_name(std::string_view name, Sabotage& out) {
  return parse_name(kSabotages, name, out);
}
const char* graph_form_name(GraphForm form) {
  return name_of(kGraphForms, form);
}
bool graph_form_from_name(std::string_view name, GraphForm& out) {
  return parse_name(kGraphForms, name, out);
}

host::ContextConfig FuzzCase::config() const {
  host::ContextConfig cfg;
  if (dot_k) cfg.dot_k = dot_k;
  if (gemv_k) cfg.gemv_k = gemv_k;
  if (mm_k) cfg.mm_k = mm_k;
  if (mm_m) cfg.mm_m = mm_m;
  if (mm_b) cfg.mm_b = mm_b;
  if (mm_l) cfg.mm_l = mm_l;
  // The PE array folds partial sums through m^2/k accumulation slots; the
  // accumulation adder cannot be deeper than that.
  if (cfg.mm_k >= 1) {
    const unsigned slots =
        std::max(1u, cfg.mm_m * cfg.mm_m / std::max(1u, cfg.mm_k));
    cfg.mm_adder_stages = std::min(cfg.mm_adder_stages, slots);
  }
  if (sram_cap) cfg.sram_capacity_words = sram_cap;
  return cfg;
}

std::string FuzzCase::to_line() const {
  std::ostringstream os;
  os << "xdfuzz1 kind=" << fuzz_kind_name(kind);
  if (placement != host::Placement::Sram) {
    os << " place=" << host::placement_name(placement);
  }
  if (arch != host::GemvArch::Tree) {
    os << " arch=" << host::gemv_arch_name(arch);
  }
  if (mode != ValueMode::Exact) os << " mode=" << value_mode_name(mode);
  if (sabotage != Sabotage::None) os << " err=" << sabotage_name(sabotage);
  if (gform != GraphForm::Random) os << " gform=" << graph_form_name(gform);
  if (rows) os << " rows=" << rows;
  if (cols) os << " cols=" << cols;
  if (n) os << " n=" << n;
  if (batch) os << " batch=" << batch;
  if (nnz_per_row) os << " nnz=" << nnz_per_row;
  if (sram_cap) os << " scap=" << sram_cap;
  os << " vseed=" << vseed;
  if (dot_k) os << " dot_k=" << dot_k;
  if (gemv_k) os << " gemv_k=" << gemv_k;
  if (mm_k) os << " mm_k=" << mm_k;
  if (mm_m) os << " mm_m=" << mm_m;
  if (mm_b) os << " mm_b=" << mm_b;
  if (mm_l) os << " mm_l=" << mm_l;
  return os.str();
}

FuzzCase FuzzCase::from_line(const std::string& line) {
  std::istringstream ss(line);
  std::string tok;
  require(static_cast<bool>(ss >> tok) && tok == "xdfuzz1",
          cat("fuzz case: expected 'xdfuzz1' header, got '", line, "'"));

  FuzzCase fc;
  bool have_kind = false;
  while (ss >> tok) {
    const auto eq = tok.find('=');
    require(eq != std::string::npos && eq > 0 && eq + 1 < tok.size(),
            cat("fuzz case: malformed token '", tok, "'"));
    const std::string key = tok.substr(0, eq);
    const std::string val = tok.substr(eq + 1);

    const auto as_u64 = [&]() -> u64 {
      std::size_t used = 0;
      u64 v = 0;
      try {
        v = std::stoull(val, &used);
      } catch (...) {
        used = 0;
      }
      require(used == val.size(),
              cat("fuzz case: '", key, "' expects an integer, got '", val, "'"));
      return v;
    };

    if (key == "kind") {
      require(fuzz_kind_from_name(val, fc.kind),
              cat("fuzz case: unknown kind '", val, "'"));
      have_kind = true;
    } else if (key == "place") {
      require(host::placement_from_name(val, fc.placement),
              cat("fuzz case: unknown placement '", val, "'"));
    } else if (key == "arch") {
      require(host::gemv_arch_from_name(val, fc.arch),
              cat("fuzz case: unknown arch '", val, "'"));
    } else if (key == "mode") {
      require(value_mode_from_name(val, fc.mode),
              cat("fuzz case: unknown mode '", val, "'"));
    } else if (key == "err") {
      require(sabotage_from_name(val, fc.sabotage),
              cat("fuzz case: unknown sabotage '", val, "'"));
    } else if (key == "gform") {
      require(graph_form_from_name(val, fc.gform),
              cat("fuzz case: unknown graph form '", val, "'"));
    } else if (key == "rows") {
      fc.rows = as_u64();
    } else if (key == "cols") {
      fc.cols = as_u64();
    } else if (key == "n") {
      fc.n = as_u64();
    } else if (key == "batch") {
      fc.batch = as_u64();
    } else if (key == "nnz") {
      fc.nnz_per_row = as_u64();
    } else if (key == "scap") {
      fc.sram_cap = as_u64();
    } else if (key == "vseed") {
      fc.vseed = as_u64();
    } else if (key == "dot_k") {
      fc.dot_k = static_cast<unsigned>(as_u64());
    } else if (key == "gemv_k") {
      fc.gemv_k = static_cast<unsigned>(as_u64());
    } else if (key == "mm_k") {
      fc.mm_k = static_cast<unsigned>(as_u64());
    } else if (key == "mm_m") {
      fc.mm_m = static_cast<unsigned>(as_u64());
    } else if (key == "mm_b") {
      fc.mm_b = as_u64();
    } else if (key == "mm_l") {
      fc.mm_l = static_cast<unsigned>(as_u64());
    } else {
      throw ConfigError(cat("fuzz case: unknown key '", key, "'"));
    }
  }
  require(have_kind, "fuzz case: missing kind=");
  return fc;
}

double draw_value(Rng& rng, ValueMode mode) {
  switch (mode) {
    case ValueMode::Exact: {
      // Nonzero integers: products of nonzero ints never produce -0.0, so
      // the engines' +0.0 lane padding cannot flip a result's zero sign
      // relative to the naive oracle.
      const double mag = static_cast<double>(rng.uniform_int(1, 32));
      return rng.uniform() < 0.5 ? -mag : mag;
    }
    case ValueMode::Uniform:
      return rng.uniform(-1.0, 1.0);
    case ValueMode::Extreme: {
      static const double kPool[] = {
          0.0,     -0.0,    5e-324,  -5e-324, 1e-300,  -1e-300,
          1e300,   -1e300,  1.0,     -1.0,    123.456, -123.456,
          1e16,    -1e16,   2.2250738585072014e-308,  // DBL_MIN
          -2.2250738585072014e-308,
      };
      const auto idx = rng.uniform_int(0, std::size(kPool) + 1);
      if (idx == std::size(kPool)) {
        return fp::from_bits(fp::kPosInf);
      }
      if (idx == std::size(kPool) + 1) {
        return fp::from_bits(fp::kDefaultNaN);
      }
      return kPool[idx];
    }
  }
  return 0.0;
}

namespace {

std::vector<double> draw_vector(Rng& rng, std::size_t n, ValueMode mode) {
  std::vector<double> v(n);
  for (auto& e : v) e = draw_value(rng, mode);
  return v;
}

/// CRS with ~nnz_per_row nonzeros per row (exact count per row, distinct
/// columns, ascending). nnz_per_row of 0 yields an all-empty-row matrix —
/// the engine must inject bubbles, one reduction set per row regardless.
blas2::CrsMatrix draw_sparse(Rng& rng, std::size_t rows, std::size_t cols,
                             std::size_t nnz_per_row, ValueMode mode) {
  blas2::CrsMatrix m;
  m.rows = rows;
  m.cols = cols;
  m.row_ptr.assign(rows + 1, 0);
  const std::size_t per_row = std::min(nnz_per_row, cols);
  std::vector<char> used(cols, 0);
  for (std::size_t r = 0; r < rows; ++r) {
    std::fill(used.begin(), used.end(), 0);
    std::size_t placed = 0;
    while (placed < per_row) {
      const auto c = static_cast<std::size_t>(rng.uniform_int(0, cols - 1));
      if (!used[c]) {
        used[c] = 1;
        ++placed;
      }
    }
    for (std::size_t c = 0; c < cols; ++c) {
      if (used[c]) {
        m.col_idx.push_back(c);
        m.values.push_back(draw_value(rng, mode));
      }
    }
    m.row_ptr[r + 1] = m.values.size();
  }
  return m;
}

/// Row-major diagonally dominant matrix (solver kinds): |a_ii| exceeds the
/// row's off-diagonal magnitude sum, so Jacobi converges and A is usable as
/// a CG operand once symmetrized by the caller.
std::vector<double> draw_diag_dominant(Rng& rng, std::size_t n, bool symmetric) {
  std::vector<double> a(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = symmetric ? i + 1 : 0; j < n; ++j) {
      if (i == j) continue;
      const double v = rng.uniform(-1.0, 1.0);
      a[i * n + j] = v;
      if (symmetric) a[j * n + i] = v;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    a[i * n + i] = static_cast<double>(n) + 1.0 + rng.uniform();
  }
  return a;
}

/// Build the DAG for a FuzzKind::Graph case. Operand vectors live in
/// data.pool (stable addresses), edge-fed slots stay null for the runtime
/// to patch, and edges always point from a lower to a higher node index so
/// GraphDesc order is itself topological.
void materialize_graph(const FuzzCase& fc, CaseData& data, Rng& rng) {
  using host::OpDesc;
  using host::OperandSlot;
  const std::size_t len = std::max<std::size_t>(1, fc.n);
  const auto vec = [&](std::size_t sz) -> const std::vector<double>* {
    data.pool.push_back(draw_vector(rng, sz, fc.mode));
    return &data.pool.back();
  };
  const auto gemv_desc = [&](const std::vector<double>* mat,
                             const std::vector<double>* x) {
    OpDesc d;
    d.kind = host::OpKind::Gemv;
    d.placement = fc.placement;
    d.rows = d.cols = len;
    d.a = mat;
    d.x = x;
    return d;
  };
  const auto dot_desc = [&](const std::vector<double>* u,
                            const std::vector<double>* v) {
    OpDesc d;
    d.kind = host::OpKind::Dot;
    d.placement = fc.placement;
    d.cols = len;
    d.a = u;
    d.b = v;
    return d;
  };

  switch (fc.gform) {
    case GraphForm::CgStep: {
      // GEMV -> DOT on slot B, with the GEMV's x shared as the dot's first
      // operand — exactly solver::cg's fused step chain.
      const auto* mat = vec(len * len);
      const auto* x = vec(len);
      data.graph.nodes.push_back({"ap", gemv_desc(mat, x), true});
      data.graph.nodes.push_back({"pap", dot_desc(x, nullptr), true});
      data.graph.edges.push_back({0, 1, OperandSlot::B});
      return;
    }
    case GraphForm::JacobiSweep: {
      // Edgeless GEMVs sharing one matrix — solver::jacobi's batch sweep.
      const auto* mat = vec(len * len);
      const std::size_t systems = std::max<std::size_t>(2, fc.batch);
      for (std::size_t s = 0; s < systems; ++s) {
        data.graph.nodes.push_back(
            {cat("sys", s), gemv_desc(mat, vec(len)), true});
      }
      return;
    }
    case GraphForm::Random:
      break;
  }

  // Random DAG over dot/gemv/spmxv. Only length-len producers (gemv,
  // spmxv) can feed edges — dot yields a scalar. Matrices are sometimes
  // shared between gemv nodes, vector slots sometimes edge-fed, keep flags
  // random: the planner must handle every mix.
  const std::size_t count =
      std::min<std::size_t>(4, std::max<std::size_t>(2, fc.batch));
  std::vector<std::size_t> producers;
  const std::vector<double>* shared_mat = nullptr;
  bool have_sparse = false;
  for (std::size_t i = 0; i < count; ++i) {
    // Feed the slot from an earlier producer about half the time one
    // exists; the slots of one node are distinct, so no duplicate
    // (to, slot) pair can arise.
    const auto edge_or = [&](OperandSlot slot) -> const std::vector<double>* {
      if (!producers.empty() && rng.uniform_int(0, 1) == 0) {
        const auto from = producers[rng.uniform_int(0, producers.size() - 1)];
        data.graph.edges.push_back({from, i, slot});
        return nullptr;
      }
      return vec(len);
    };
    const u64 roll = rng.uniform_int(1, 100);
    OpDesc d;
    if (roll <= 40) {
      d = dot_desc(edge_or(OperandSlot::A), edge_or(OperandSlot::B));
    } else if (roll <= 80) {
      const std::vector<double>* mat = shared_mat;
      if (!mat || rng.uniform_int(0, 1) == 0) {
        mat = vec(len * len);
        shared_mat = mat;
      }
      d = gemv_desc(mat, edge_or(OperandSlot::X));
      producers.push_back(i);
    } else {
      if (!have_sparse) {
        data.sparse = draw_sparse(rng, len, len, std::min<std::size_t>(len, 4),
                                  fc.mode);
        have_sparse = true;
      }
      d.kind = host::OpKind::Spmxv;
      d.rows = d.cols = len;
      d.sparse = &data.sparse;
      d.x = edge_or(OperandSlot::X);
      producers.push_back(i);
    }
    data.graph.nodes.push_back(
        {cat("n", i), d, rng.uniform_int(1, 100) <= 80});
  }
}

}  // namespace

void materialize(const FuzzCase& fc, CaseData& data) {
  Rng rng(fc.vseed);
  using host::OpDesc;

  // Sabotages that replace the whole shape story are applied first; the
  // remaining kinds materialize honestly and then corrupt one aspect.
  switch (fc.kind) {
    case FuzzKind::Dot: {
      std::size_t len = fc.cols;
      if (fc.sabotage == Sabotage::ZeroShape) len = 0;
      data.a = draw_vector(rng, len, fc.mode);
      data.b = draw_vector(rng, len, fc.mode);
      if (fc.sabotage == Sabotage::OperandLength && !data.b.empty()) {
        data.b.pop_back();
      }
      data.desc = OpDesc::dot(data.a, data.b, fc.placement);
      break;
    }
    case FuzzKind::DotBatch: {
      const std::size_t pairs = fc.sabotage == Sabotage::ZeroShape ? 0 : fc.batch;
      for (std::size_t p = 0; p < pairs; ++p) {
        const auto len = static_cast<std::size_t>(rng.uniform_int(1, 96));
        data.us.push_back(draw_vector(rng, len, fc.mode));
        data.vs.push_back(draw_vector(rng, len, fc.mode));
      }
      if (fc.sabotage == Sabotage::OperandLength && !data.vs.empty()) {
        data.vs.back().pop_back();
      }
      data.desc = OpDesc::dot_batch(data.us, data.vs);
      if (fc.sabotage == Sabotage::ZeroShape) {
        // A zero batch is well-formed but empty; sabotage declares one pair.
        data.desc.batch = 1;
      }
      break;
    }
    case FuzzKind::Gemv:
    case FuzzKind::GemvAuto: {
      std::size_t r = fc.rows, c = fc.cols;
      if (fc.sabotage == Sabotage::ZeroShape) r = 0;
      data.a = draw_vector(rng, r * c, fc.mode);
      data.x = draw_vector(rng, c, fc.mode);
      if (fc.sabotage == Sabotage::OperandLength && !data.x.empty()) {
        data.x.pop_back();
      }
      data.desc = fc.kind == FuzzKind::Gemv
                      ? OpDesc::gemv(data.a, r, c, data.x, fc.placement, fc.arch)
                      : OpDesc::gemv_auto(data.a, r, c, data.x);
      if (fc.sabotage == Sabotage::OverflowShape) {
        // rows * cols wraps size_t to 0 == a.size(): without the validate()
        // overflow check the engine would walk 2^63 rows of nothing.
        data.a.clear();
        data.x.assign(2, 1.0);
        data.desc.rows = std::size_t{1} << 63;
        data.desc.cols = 2;
      }
      break;
    }
    case FuzzKind::Spmxv: {
      data.sparse = draw_sparse(rng, std::max<std::size_t>(1, fc.rows),
                                std::max<std::size_t>(1, fc.cols),
                                fc.nnz_per_row, fc.mode);
      data.x = draw_vector(rng, data.sparse.cols, fc.mode);
      if (fc.sabotage == Sabotage::SparseStructure) {
        // Corrupt whichever structure exists: an out-of-range column if the
        // matrix has nonzeros, a short row_ptr otherwise.
        if (!data.sparse.col_idx.empty()) {
          data.sparse.col_idx.front() = data.sparse.cols + 7;
        } else {
          data.sparse.row_ptr.pop_back();
        }
      } else if (fc.sabotage == Sabotage::OperandLength && !data.x.empty()) {
        data.x.pop_back();
      } else if (fc.sabotage == Sabotage::ZeroShape) {
        data.sparse.rows = 0;
        data.sparse.row_ptr.assign(1, 0);
        data.sparse.values.clear();
        data.sparse.col_idx.clear();
      }
      data.desc = OpDesc::spmxv(data.sparse, data.x);
      break;
    }
    case FuzzKind::Gemm:
    case FuzzKind::GemmArray:
    case FuzzKind::GemmMulti: {
      std::size_t edge = fc.n;
      if (fc.sabotage == Sabotage::ZeroShape) edge = 0;
      if (fc.sabotage == Sabotage::Indivisible) edge = fc.n + 1;
      data.a = draw_vector(rng, edge * edge, fc.mode);
      data.b = draw_vector(rng, edge * edge, fc.mode);
      if (fc.sabotage == Sabotage::OperandLength && !data.b.empty()) {
        data.b.pop_back();
      }
      data.desc = fc.kind == FuzzKind::Gemm
                      ? OpDesc::gemm(data.a, data.b, edge)
                      : (fc.kind == FuzzKind::GemmArray
                             ? OpDesc::gemm_array(data.a, data.b, edge)
                             : OpDesc::gemm_multi(data.a, data.b, edge));
      if (fc.sabotage == Sabotage::OverflowShape) {
        data.a.clear();
        data.b.clear();
        data.desc.n = std::size_t{1} << 32;  // n*n wraps to 0 on 64-bit
      }
      break;
    }
    case FuzzKind::JacobiBatch: {
      data.a = draw_diag_dominant(rng, fc.n, /*symmetric=*/false);
      for (std::size_t i = 0; i < fc.batch; ++i) {
        data.rhs.push_back(draw_vector(rng, fc.n, ValueMode::Uniform));
      }
      break;
    }
    case FuzzKind::Cg: {
      data.a = draw_diag_dominant(rng, fc.n, /*symmetric=*/true);
      data.b = draw_vector(rng, fc.n, ValueMode::Uniform);
      break;
    }
    case FuzzKind::Graph: {
      materialize_graph(fc, data, rng);
      break;
    }
    case FuzzKind::Sharded: {
      // n > 0 selects a square hierarchical GEMM, otherwise a tree GEMV
      // (rows x cols). Never sabotaged; the shard checker re-runs the same
      // descriptor through the ShardScheduler at several l values.
      if (fc.n > 0) {
        data.a = draw_vector(rng, fc.n * fc.n, fc.mode);
        data.b = draw_vector(rng, fc.n * fc.n, fc.mode);
        data.desc = OpDesc::gemm(data.a, data.b, fc.n);
      } else {
        data.a = draw_vector(rng, fc.rows * fc.cols, fc.mode);
        data.x = draw_vector(rng, fc.cols, fc.mode);
        data.desc = OpDesc::gemv(data.a, fc.rows, fc.cols, data.x,
                                 host::Placement::Sram, host::GemvArch::Tree);
      }
      break;
    }
  }
}

}  // namespace xd::testing
