// Reference oracles for the differential harness: naive left-to-right
// evaluation of every operation on the softfloat cores themselves, plus the
// magnitude sums the tolerance-mode comparison scales by.
//
// Soundness argument (docs/testing.md): each engine computes a correctly
// rounded sum of a *reassociated* addition tree, so the oracle cannot match
// bitwise for arbitrary inputs. In ValueMode::Exact every operand is a
// nonzero small integer: products stay exact integers (|p| <= 1024) and any
// partial sum stays an exact integer far below 2^53, so every association
// order rounds to the same bits and the naive evaluation is bit-exact by
// construction. In ValueMode::Uniform the comparison is tolerance-based.
#pragma once

#include <cstddef>
#include <vector>

#include "blas2/spmxv.hpp"

namespace xd::testing {

/// Oracle values plus per-element magnitude sums (sum of |term| per output,
/// in plain double — only used to scale tolerances).
struct OracleVec {
  std::vector<double> values;
  std::vector<double> mag;
};

OracleVec oracle_dot(const std::vector<std::vector<double>>& us,
                     const std::vector<std::vector<double>>& vs);
OracleVec oracle_gemv(const std::vector<double>& a, std::size_t rows,
                      std::size_t cols, const std::vector<double>& x);
OracleVec oracle_spmxv(const blas2::CrsMatrix& a, const std::vector<double>& x);
OracleVec oracle_gemm(const std::vector<double>& a,
                      const std::vector<double>& b, std::size_t n);

/// Element tolerance for the Uniform-mode comparison: max(1e-15, mag*1e-12),
/// the same envelope the hand-written engine tests use.
double oracle_tolerance(double mag);

}  // namespace xd::testing
