#include "serve/proto.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <istream>
#include <map>
#include <set>
#include <sstream>

#include "common/random.hpp"
#include "telemetry/export.hpp"
#include "telemetry/json.hpp"

namespace xd::serve {

namespace {

/// Flags valid on any record line. The telemetry sinks are recognized (so
/// the diagnostic is precise) but rejected: they are per-process options of
/// the CLI, not per-line record fields.
const std::set<std::string> kCommonFlags = {"seed"};
const std::set<std::string> kPerProcessFlags = {
    "json", "metrics-out", "trace-out", "trace-filter", "flight-out"};
const std::set<std::string> kBoolFlags = {"from-dram"};

const std::map<std::string, std::set<std::string>> kOpFlags = {
    {"dot", {"n", "k", "bw-gbs", "from-dram"}},
    {"gemv", {"n", "k", "from-dram", "arch"}},
    {"gemm", {"n", "k", "m", "b", "l"}},
    {"spmxv", {"n", "nnz-per-row", "k"}},
    {"graph", {"from-dram"}},
};

/// Key/value view of one line's flags, with validated accessors that
/// report problems through an error string instead of throwing.
struct LineArgs {
  std::map<std::string, std::string> kv;
  std::string error;  ///< first problem seen; "" = clean so far

  bool flag(const std::string& name) const { return kv.count(name) > 0; }
  bool explicit_flag(const std::string& name) const { return flag(name); }

  long long integer(const std::string& name, long long dflt) {
    const auto it = kv.find(name);
    if (it == kv.end()) return dflt;
    errno = 0;
    char* end = nullptr;
    const long long v = std::strtoll(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0' || errno == ERANGE) {
      set_error(cat("--", name, " expects an integer, got '", it->second,
                    "'"));
      return dflt;
    }
    if (v < 0) {
      set_error(cat("--", name, " must be non-negative, got ", v));
      return dflt;
    }
    return v;
  }

  double num(const std::string& name, double dflt) {
    const auto it = kv.find(name);
    if (it == kv.end()) return dflt;
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0' || errno == ERANGE) {
      set_error(cat("--", name, " expects a number, got '", it->second, "'"));
      return dflt;
    }
    return v;
  }

  std::string str(const std::string& name, const std::string& dflt) const {
    const auto it = kv.find(name);
    return it == kv.end() ? dflt : it->second;
  }

  void set_error(const std::string& e) {
    if (error.empty()) error = e;
  }
};

/// Parse `--flag [value]` tokens against the allowed set; errors accumulate
/// in `la.error` (first one wins) so the caller emits one error record.
void parse_flags(const std::vector<std::string>& tokens,
                 const std::string& command,
                 const std::set<std::string>& allowed, LineArgs& la) {
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].rfind("--", 0) != 0) {
      la.set_error(cat("unexpected argument '", tokens[i], "'"));
      return;
    }
    const std::string key = tokens[i].substr(2);
    if (kPerProcessFlags.count(key)) {
      la.set_error(cat("'--", key, "' is per-process, not per-line"));
      return;
    }
    if (!kCommonFlags.count(key) && !allowed.count(key)) {
      la.set_error(cat("unknown flag '--", key, "' for '", command, "'"));
      return;
    }
    if (kBoolFlags.count(key)) {
      la.kv.insert_or_assign(key, "1");
    } else if (i + 1 < tokens.size() && tokens[i + 1].rfind("--", 0) != 0) {
      la.kv[key] = tokens[++i];
    } else {
      la.set_error(cat("flag '--", key, "' expects a value"));
      return;
    }
  }
}

/// Check one requested dimension against the per-line size limit; returns
/// an error message ("" when within bounds). Dimensions are bounded before
/// any product is formed, so n*n below never overflows.
std::string check_dim(const char* what, std::size_t v,
                      const ParseLimits& limits) {
  if (v <= limits.max_n) return "";
  return cat(what, " ", v, " exceeds the problem-size limit ", limits.max_n);
}

/// Account `add` more to-be-materialized doubles against the per-line
/// operand budget; returns an error message ("" when within bounds). Called
/// BEFORE the corresponding pool allocation, so an over-budget line never
/// allocates.
std::string charge_elems(std::size_t add, std::size_t& elems,
                         const ParseLimits& limits) {
  elems += add;
  if (elems <= limits.max_elems) return "";
  return cat("line would materialize ", elems,
             " doubles, exceeding the per-line operand limit ",
             limits.max_elems);
}

/// Parse one `graph` node spec (`name=kind[:key=val,...]`) into req.graph.
/// Operand keys valued `@name` become graph edges from the named earlier
/// node; absent operand keys are materialized from `rng`. `elems` is the
/// line's running operand budget. Returns an error message ("" on success).
std::string add_graph_node(const std::string& spec, host::Placement src,
                           Rng& rng, Request& req, const ParseLimits& limits,
                           std::size_t& elems) {
  const auto eq = spec.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 >= spec.size()) {
    return cat("node spec '", spec, "' is not name=kind[:key=val,...]");
  }
  const std::string name = spec.substr(0, eq);
  if (name.front() == '@' || name.find(':') != std::string::npos) {
    return cat("node name '", name, "' may not contain '@' or ':'");
  }
  for (const auto& nd : req.graph.nodes) {
    if (nd.name == name) return cat("duplicate node name '", name, "'");
  }

  std::string kind = spec.substr(eq + 1);
  std::map<std::string, std::string> kv;
  if (const auto colon = kind.find(':'); colon != std::string::npos) {
    std::istringstream opts(kind.substr(colon + 1));
    kind = kind.substr(0, colon);
    std::string item;
    while (std::getline(opts, item, ',')) {
      const auto e = item.find('=');
      if (e == std::string::npos || e == 0 || e + 1 >= item.size()) {
        return cat("node '", name, "': bad option '", item,
                   "' (want key=val)");
      }
      kv[item.substr(0, e)] = item.substr(e + 1);
    }
  }

  static const std::map<std::string, std::set<std::string>> kNodeKeys = {
      {"dot", {"n", "a", "b", "keep"}},
      {"gemv", {"n", "arch", "x", "keep"}},
      {"spmxv", {"n", "nnz", "x", "keep"}},
  };
  const auto keys = kNodeKeys.find(kind);
  if (keys == kNodeKeys.end()) {
    return cat("node '", name, "': graph nodes support dot/gemv/spmxv, got '",
               kind, "'");
  }
  for (const auto& [k, v] : kv) {
    if (!keys->second.count(k)) {
      return cat("node '", name, "': unknown key '", k, "' for ", kind);
    }
  }

  auto size_of = [&](const std::string& key, std::size_t dflt,
                     std::size_t& out) -> std::string {
    const auto it = kv.find(key);
    if (it == kv.end()) {
      out = dflt;
      return "";
    }
    errno = 0;
    char* end = nullptr;
    const long long v = std::strtoll(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0' || errno == ERANGE ||
        v <= 0) {
      return cat("node '", name, "': ", key,
                 " expects a positive integer, got '", it->second, "'");
    }
    out = static_cast<std::size_t>(v);
    return "";
  };

  host::GraphNode node;
  node.name = name;
  if (const auto it = kv.find("keep"); it != kv.end()) {
    if (it->second != "0" && it->second != "1") {
      return cat("node '", name, "': keep expects 0 or 1");
    }
    node.keep = it->second == "1";
  }

  // Resolve an operand key: `@name` feeds the named earlier node's result
  // through an edge (the pointer stays null for the runtime to patch),
  // anything else is rejected — operands are seeded, never literal.
  const std::size_t self = req.graph.nodes.size();
  auto operand = [&](const std::string& key, host::OperandSlot slot,
                     std::size_t len,
                     const std::vector<double>*& field) -> std::string {
    const auto it = kv.find(key);
    if (it == kv.end()) {
      field = &req.pool.emplace_back(rng.vector(len));
      return "";
    }
    if (it->second.empty() || it->second.front() != '@') {
      return cat("node '", name, "': ", key,
                 " expects '@node' (operands are seeded, not literal), got '",
                 it->second, "'");
    }
    const std::string ref = it->second.substr(1);
    for (std::size_t i = 0; i < self; ++i) {
      if (req.graph.nodes[i].name == ref) {
        req.graph.edges.push_back({i, self, slot});
        field = nullptr;
        return "";
      }
    }
    return cat("node '", name, "': unknown node '@", ref,
               "' (refs must name an earlier node on the line)");
  };

  host::OpDesc& d = node.desc;
  std::size_t n = 0;
  std::string err;
  if (!(err = size_of("n", 256, n)).empty()) return err;
  if (!(err = check_dim(cat("node '", name, "': n").c_str(), n, limits))
           .empty()) {
    return err;
  }
  if (kind == "dot") {
    if (!(err = charge_elems(2 * n, elems, limits)).empty()) return err;
    d.kind = host::OpKind::Dot;
    d.placement = src;
    d.cols = n;
    if (!(err = operand("a", host::OperandSlot::A, n, d.a)).empty()) return err;
    if (!(err = operand("b", host::OperandSlot::B, n, d.b)).empty()) return err;
  } else if (kind == "gemv") {
    const std::string arch = kv.count("arch") ? kv.at("arch") : "tree";
    if (arch != "tree" && arch != "col") {
      return cat("node '", name, "': arch expects tree or col, got '", arch,
                 "'");
    }
    if (!(err = charge_elems(n * n + n, elems, limits)).empty()) return err;
    d.kind = host::OpKind::Gemv;
    d.placement = src;
    d.arch = arch == "col" ? host::GemvArch::Column : host::GemvArch::Tree;
    d.rows = d.cols = n;
    d.a = &req.pool.emplace_back(rng.matrix(n, n));
    if (!(err = operand("x", host::OperandSlot::X, n, d.x)).empty()) return err;
  } else {  // spmxv
    std::size_t nnz = 0;
    if (!(err = size_of("nnz", 4, nnz)).empty()) return err;
    if (!(err = check_dim(cat("node '", name, "': nnz").c_str(), nnz, limits))
             .empty()) {
      return err;
    }
    if (!(err = charge_elems(n * nnz + n, elems, limits)).empty()) return err;
    d.kind = host::OpKind::Spmxv;
    d.rows = d.cols = n;
    d.sparse =
        &req.sparse_pool.emplace_back(blas2::make_uniform_sparse(n, n, nnz, 7));
    if (!(err = operand("x", host::OperandSlot::X, n, d.x)).empty()) return err;
  }
  req.graph.nodes.push_back(std::move(node));
  return "";
}

/// Note an engine-knob override: an explicit flag whose value differs from
/// what the line would have used without it. The CLI honors these with a
/// per-job Context; the server (one shared Runtime, one engine config per
/// process) sheds them with an explicit error record.
template <typename T>
void note_override(Request& req, const char* flag, T got, T dflt) {
  if (req.cfg_override || got == dflt) return;
  req.cfg_override = true;
  req.cfg_override_why =
      cat("--", flag, " ", got, " differs from the configured ", dflt,
          " (per-op engine config is a batch-mode feature; the server's "
          "engine knobs are fixed at startup)");
}

}  // namespace

bool is_record_line(std::string_view line) {
  for (const char c : line) {
    if (c == ' ' || c == '\t' || c == '\r') continue;
    return c != '#';
  }
  return false;  // blank
}

void parse_record(std::string_view text, std::size_t line_no,
                  const host::ContextConfig& base, Request& req,
                  const ParseLimits& limits) {
  req.line = line_no;
  req.cfg = base;
  std::size_t elems = 0;  // doubles this line wants to materialize

  std::istringstream ss{std::string(text)};
  std::vector<std::string> tokens;
  std::string tok;
  while (ss >> tok) tokens.push_back(tok);
  if (tokens.empty() || tokens.front().front() == '#') {
    req.parse_error = "not a record line";
    return;
  }

  req.command = tokens.front();
  const auto flags = kOpFlags.find(req.command);
  if (flags == kOpFlags.end()) {
    req.parse_error = cat("batch supports dot/gemv/gemm/spmxv/graph, got '",
                          req.command, "'");
    return;
  }
  req.is_graph = req.command == "graph";
  tokens.erase(tokens.begin());

  std::vector<std::string> specs;
  if (req.is_graph) {
    // Node specs (no leading --) come first; flags follow.
    std::size_t i = 0;
    while (i < tokens.size() && tokens[i].rfind("--", 0) != 0) {
      specs.push_back(tokens[i++]);
    }
    tokens.erase(tokens.begin(), tokens.begin() + static_cast<std::ptrdiff_t>(i));
  }

  LineArgs la;
  parse_flags(tokens, req.command, flags->second, la);
  if (!la.error.empty()) {
    req.parse_error = la.error;
    return;
  }

  req.seed = static_cast<u64>(la.integer("seed", 2005));
  if (!la.error.empty()) {
    req.parse_error = la.error;
    return;
  }
  Rng rng(req.seed);
  const auto src = la.flag("from-dram") ? host::Placement::Dram
                                        : host::Placement::Sram;

  if (req.is_graph) {
    if (specs.empty()) {
      req.parse_error = "graph needs at least one name=kind[:opts] node";
      return;
    }
    if (specs.size() > limits.max_graph_nodes) {
      req.parse_error = cat("graph has ", specs.size(),
                            " nodes, exceeding the per-line limit ",
                            limits.max_graph_nodes);
      return;
    }
    for (const auto& spec : specs) {
      req.parse_error = add_graph_node(spec, src, rng, req, limits, elems);
      if (!req.parse_error.empty()) return;
    }
    req.n = req.graph.nodes.size();
    return;
  }

  if (req.command == "dot") {
    req.n = static_cast<std::size_t>(la.integer("n", 4096));
    const auto k = static_cast<unsigned>(la.integer("k", base.dot_k));
    const double bw = la.num("bw-gbs", base.dot_mem_bytes_per_s / 1e9);
    if (!la.error.empty()) {
      req.parse_error = la.error;
      return;
    }
    req.parse_error = check_dim("--n", req.n, limits);
    if (req.parse_error.empty()) {
      req.parse_error = charge_elems(2 * req.n, elems, limits);
    }
    if (!req.parse_error.empty()) return;
    if (la.explicit_flag("k")) note_override(req, "k", k, base.dot_k);
    if (la.explicit_flag("bw-gbs")) {
      note_override(req, "bw-gbs", bw, base.dot_mem_bytes_per_s / 1e9);
    }
    req.cfg.dot_k = k;
    req.cfg.dot_mem_bytes_per_s = bw * 1e9;
    auto& a = req.pool.emplace_back(rng.vector(req.n));
    auto& b = req.pool.emplace_back(rng.vector(req.n));
    req.desc = host::OpDesc::dot(a, b, src);
  } else if (req.command == "gemv") {
    req.n = static_cast<std::size_t>(la.integer("n", 1024));
    const auto k = static_cast<unsigned>(la.integer("k", base.gemv_k));
    const std::string arch = la.str("arch", "tree");
    if (!la.error.empty()) {
      req.parse_error = la.error;
      return;
    }
    if (arch != "tree" && arch != "col") {
      req.parse_error = cat("--arch expects tree or col, got '", arch, "'");
      return;
    }
    req.parse_error = check_dim("--n", req.n, limits);
    if (req.parse_error.empty()) {
      req.parse_error = charge_elems(req.n * req.n + req.n, elems, limits);
    }
    if (!req.parse_error.empty()) return;
    if (la.explicit_flag("k")) note_override(req, "k", k, base.gemv_k);
    req.cfg.gemv_k = k;
    auto& a = req.pool.emplace_back(rng.matrix(req.n, req.n));
    auto& x = req.pool.emplace_back(rng.vector(req.n));
    req.desc = host::OpDesc::gemv(a, req.n, req.n, x, src,
                                  arch == "col" ? host::GemvArch::Column
                                                : host::GemvArch::Tree);
  } else if (req.command == "gemm") {
    req.n = static_cast<std::size_t>(la.integer("n", 256));
    const auto k = static_cast<unsigned>(la.integer("k", base.mm_k));
    const auto m = static_cast<unsigned>(la.integer("m", base.mm_m));
    // Default panel edge: the configured one, capped to the problem — the
    // plan layer derives the same edge from an uncapped mm_b, so this stays
    // a non-override (bit-identical either way).
    const auto b_dflt = static_cast<long long>(
        std::min<std::size_t>(base.mm_b, req.n));
    const auto b = static_cast<std::size_t>(la.integer("b", b_dflt));
    const auto l = static_cast<unsigned>(la.integer("l", base.mm_l));
    if (!la.error.empty()) {
      req.parse_error = la.error;
      return;
    }
    req.parse_error = check_dim("--n", req.n, limits);
    if (req.parse_error.empty()) {
      req.parse_error = charge_elems(2 * req.n * req.n, elems, limits);
    }
    if (!req.parse_error.empty()) return;
    if (la.explicit_flag("k")) note_override(req, "k", k, base.mm_k);
    if (la.explicit_flag("m")) note_override(req, "m", m, base.mm_m);
    if (la.explicit_flag("b")) {
      note_override(req, "b", b, static_cast<std::size_t>(b_dflt));
    }
    if (la.explicit_flag("l")) note_override(req, "l", l, base.mm_l);
    req.cfg.mm_k = k;
    req.cfg.mm_m = m;
    req.cfg.mm_b = b;
    req.cfg.mm_l = l;
    auto& a = req.pool.emplace_back(rng.matrix(req.n, req.n));
    auto& bb = req.pool.emplace_back(rng.matrix(req.n, req.n));
    req.desc = l > 1 ? host::OpDesc::gemm_multi(a, bb, req.n)
                     : host::OpDesc::gemm(a, bb, req.n);
  } else {  // spmxv
    req.n = static_cast<std::size_t>(la.integer("n", 1024));
    const auto nnz = static_cast<std::size_t>(la.integer("nnz-per-row", 16));
    const auto k = static_cast<unsigned>(la.integer("k", base.gemv_k));
    if (!la.error.empty()) {
      req.parse_error = la.error;
      return;
    }
    req.parse_error = check_dim("--n", req.n, limits);
    if (req.parse_error.empty()) {
      req.parse_error = check_dim("--nnz-per-row", nnz, limits);
    }
    if (req.parse_error.empty()) {
      req.parse_error = charge_elems(req.n * nnz + req.n, elems, limits);
    }
    if (!req.parse_error.empty()) return;
    if (la.explicit_flag("k")) note_override(req, "k", k, base.gemv_k);
    req.cfg.gemv_k = k;
    auto& m = req.sparse_pool.emplace_back(
        blas2::make_uniform_sparse(req.n, req.n, nnz, 7));
    auto& x = req.pool.emplace_back(rng.vector(req.n));
    req.desc = host::OpDesc::spmxv(m, x);
  }
}

bool read_bounded_line(std::istream& in, std::string& line, bool& truncated,
                       std::size_t max_line) {
  line.clear();
  truncated = false;
  using traits = std::istream::traits_type;
  traits::int_type c = in.get();
  if (traits::eq_int_type(c, traits::eof())) return false;
  for (; !traits::eq_int_type(c, traits::eof()); c = in.get()) {
    const char ch = traits::to_char_type(c);
    if (ch == '\n') break;
    if (line.size() < max_line) {
      line.push_back(ch);
    } else {
      truncated = true;
    }
  }
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return true;
}

std::string oversize_error(std::size_t max_line) {
  return cat("line exceeds ", max_line, " bytes (truncated; record dropped)");
}

u64 values_fnv(const std::vector<double>& values, u64 h) {
  for (const double v : values) {
    u64 bits;
    std::memcpy(&bits, &v, sizeof bits);
    for (unsigned i = 0; i < 8; ++i) {
      h ^= (bits >> (8 * i)) & 0xff;
      h *= 0x100000001b3ull;
    }
  }
  return h;
}

u64 values_fnv(const std::vector<double>& values) {
  return values_fnv(values, kFnvBasis);
}

namespace {

std::string fnv_hex(u64 h) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return std::string(buf);
}

void record_head(telemetry::JsonWriter& w, const Request& req) {
  w.begin_object();
  w.kv("op", req.command);
  w.kv("line", static_cast<u64>(req.line));
  w.kv("n", static_cast<u64>(req.n));
}

}  // namespace

std::string outcome_record(const Request& req, const host::Outcome& out) {
  telemetry::JsonWriter w;
  record_head(w, req);
  if (req.desc.kind == host::OpKind::Dot) w.kv("value", out.values.at(0));
  w.kv("values_fnv", fnv_hex(values_fnv(out.values)));
  w.key("report");
  w.raw(telemetry::report_to_json(out.report));
  w.end_object();
  return w.str();
}

std::string graph_record(const Request& req, const host::GraphOutcome& out) {
  // One record for the whole graph: a named result per node (each report in
  // its own clock domain) plus the fusion counters and the aggregate
  // report, mirroring host::GraphOutcome. The record-level values_fnv
  // digests every node's values in node order, so a client can assert
  // bit-identity of the whole graph with one comparison.
  telemetry::JsonWriter w;
  record_head(w, req);
  u64 all = kFnvBasis;
  w.key("nodes");
  w.begin_array();
  for (std::size_t i = 0; i < out.nodes.size(); ++i) {
    const auto& nd = req.graph.nodes[i];
    w.begin_object();
    w.kv("name", nd.name);
    w.kv("kind", host::op_kind_name(nd.desc.kind));
    if (nd.desc.kind == host::OpKind::Dot) {
      w.kv("value", out.nodes[i].values.at(0));
    }
    w.kv("values_fnv", fnv_hex(values_fnv(out.nodes[i].values)));
    all = values_fnv(out.nodes[i].values, all);
    w.kv("staging_saved_cycles", out.node_staging_saved[i]);
    w.key("report");
    w.raw(telemetry::report_to_json(out.nodes[i].report));
    w.end_object();
  }
  w.end_array();
  w.kv("fused_edges", out.fused_edges);
  w.kv("shared_operands", out.shared_operands);
  w.kv("staging_saved_cycles", out.staging_saved_cycles);
  w.kv("values_fnv", fnv_hex(all));
  w.key("report");
  w.raw(telemetry::report_to_json(out.report));
  w.end_object();
  return w.str();
}

std::string error_record(const Request& req, std::string_view message) {
  telemetry::JsonWriter w;
  record_head(w, req);
  w.kv("error", message);
  w.end_object();
  return w.str();
}

std::string overload_record(std::size_t line_no) {
  telemetry::JsonWriter w;
  w.begin_object();
  w.kv("line", static_cast<u64>(line_no));
  w.kv("error", std::string_view("overloaded"));
  w.end_object();
  return w.str();
}

}  // namespace xd::serve
