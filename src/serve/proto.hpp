// Batch-JSONL protocol codec shared by `xdblas_cli batch` and xdblas_serve.
//
// One record per line, newline-framed. A request line is exactly the batch
// op grammar the CLI has always spoken (docs/runtime.md, docs/serving.md):
//
//   dot   --n 4096 [--k 2] [--bw-gbs 5.5] [--from-dram] [--seed S]
//   gemv  --n 1024 [--k 4] [--arch tree|col] [--from-dram] [--seed S]
//   gemm  --n 256  [--k 8] [--m 8] [--b B] [--l 1] [--seed S]
//   spmxv --n 1024 [--nnz-per-row 16] [--k 4] [--seed S]
//   graph name=kind[:key=val,...] ... [--from-dram] [--seed S]
//
// '#' comments and blank lines carry no record and get no response. Every
// request line is answered by exactly one JSON object on one line: an
// outcome record ({"op":...,"line":...,...,"values_fnv":...,"report":{...}})
// or an error record ({"op":...,"line":...,"error":"..."}). Parsing never
// throws and never kills the stream: a malformed line becomes a Request
// with `parse_error` set, which both the CLI and the server turn into a
// per-line error record. Two bounds keep a hostile or broken client from
// ballooning host memory: line length is capped (kMaxLineBytes) on both
// transports — an oversized line is consumed, dropped, and answered with an
// error record — and the problem sizes a line may request are capped
// (ParseLimits) BEFORE any operand is materialized, so `gemv --n 1000000`
// (which would ask for ~8 TB of seeded operands) is a per-line error, not
// an allocation.
//
// Operands are always materialized host-side from the line's --seed (the
// wire carries shapes, never payloads), so a record is a few dozen bytes
// regardless of problem size, and any two endpoints that parse the same
// line build bit-identical operands.
#pragma once

#include <deque>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "host/graph.hpp"
#include "host/op.hpp"

namespace xd::serve {

/// Longest accepted request line, in bytes (terminator excluded). Shared by
/// the CLI batch reader and the server's socket framer so a file that works
/// locally works over the wire.
constexpr std::size_t kMaxLineBytes = 64 * 1024;

/// Per-line problem-size bounds, enforced by parse_record before any
/// operand is materialized. The wire carries shapes, not payloads, so these
/// — not kMaxLineBytes — are what bounds host memory per record: a few
/// protocol bytes can request O(n^2) doubles. Oversized shapes become
/// parse_error (a per-line error record on both transports), never an
/// allocation. The server exposes them as daemon flags; the CLI uses the
/// defaults, so a file that batches locally serves identically.
struct ParseLimits {
  /// Largest accepted dimension (--n, --nnz-per-row, node n=/nnz=).
  /// Checked first, and small enough that n*n cannot overflow size_t.
  std::size_t max_n = 1u << 22;
  /// Largest total operand footprint one line may materialize, in doubles
  /// across every pool the record seeds (gemv/gemm count n*n matrices,
  /// spmxv counts n*nnz stored values, graphs sum over nodes).
  std::size_t max_elems = 1u << 25;  // 32 Mi doubles = 256 MiB
  /// Most nodes one graph record may carry.
  std::size_t max_graph_nodes = 64;
};

/// One parsed request line: the descriptor plus the owned operand storage
/// its non-owning pointers reference (deques: element addresses are stable,
/// so a Request may be moved). Non-copyable — a copy would leave the
/// descriptor pointing into the original's pools.
struct Request {
  std::size_t line = 0;    ///< 1-based line number on the stream
  std::string command;     ///< first token ("dot", "graph", ...)
  std::size_t n = 0;       ///< problem size (node count for graphs)
  u64 seed = 2005;         ///< operand seed (--seed)
  bool is_graph = false;

  host::OpDesc desc;
  host::GraphDesc graph;

  /// The line's engine configuration: `base` (see parse_record) with the
  /// line's flags applied — exactly what the CLI builds a per-job Context
  /// from. The server executes on one shared Runtime instead, so it sheds
  /// lines whose explicit flags disagree with its configuration.
  host::ContextConfig cfg;
  bool cfg_override = false;      ///< an explicit flag changed an engine knob
  std::string cfg_override_why;   ///< which flag, for the error record

  /// Nonempty: the line failed to parse. Never submitted; both endpoints
  /// answer with error_record(*this, parse_error).
  std::string parse_error;

  std::deque<std::vector<double>> pool;        ///< owned operand vectors
  std::deque<blas2::CrsMatrix> sparse_pool;    ///< owned sparse operands

  Request() = default;
  Request(Request&&) = default;
  Request& operator=(Request&&) = default;
  Request(const Request&) = delete;
  Request& operator=(const Request&) = delete;
};

/// True when the line carries a record (not blank, not a '#' comment).
/// Lines that are not records get no response; both endpoints and the load
/// generator share this classifier so "one response per record line" is a
/// checkable invariant.
bool is_record_line(std::string_view line);

/// Parse one record line into `req`. `base` supplies the engine-config
/// defaults the line's flags override (the CLI passes a default
/// ContextConfig; the server passes its shared one); `limits` bounds the
/// problem sizes the line may request (checked before materialization).
/// Never throws; all failures land in req.parse_error.
void parse_record(std::string_view text, std::size_t line_no,
                  const host::ContextConfig& base, Request& req,
                  const ParseLimits& limits = {});

/// Bounded getline for the CLI batch reader: reads one '\n'-terminated line
/// (terminator removed, trailing '\r' stripped), capping the stored prefix
/// at `max_line` and discarding the overflow with `truncated = true`.
/// Returns false at EOF with nothing read.
bool read_bounded_line(std::istream& in, std::string& line, bool& truncated,
                       std::size_t max_line = kMaxLineBytes);

/// The error-record text for an oversized line (kept in one place so the
/// CLI, the server, and the tests agree on it).
std::string oversize_error(std::size_t max_line = kMaxLineBytes);

// ---- response records (one line of JSON each, no trailing newline) --------

/// FNV-1a 64 offset basis: the starting hash for values_fnv chains. A graph
/// record's record-level digest chains every node's values from this basis
/// in node order, so clients can recompute it (tools/xdblas_load does).
constexpr u64 kFnvBasis = 0xcbf29ce484222325ull;

/// FNV-1a 64 over the raw bit patterns of `values`, rendered as 16 hex
/// digits by the records below. Lets a client assert bit-identity of result
/// vectors that are too large to ship back.
u64 values_fnv(const std::vector<double>& values);
/// Continuation form for multi-vector digests (graph records).
u64 values_fnv(const std::vector<double>& values, u64 seed_hash);

std::string outcome_record(const Request& req, const host::Outcome& out);
std::string graph_record(const Request& req, const host::GraphOutcome& out);
std::string error_record(const Request& req, std::string_view message);
/// The admission-control shed record: {"line":N,"error":"overloaded"}.
std::string overload_record(std::size_t line_no);

}  // namespace xd::serve
