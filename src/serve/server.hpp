// xdblas serving layer: a TCP daemon multiplexing many client connections
// onto ONE shared host::Runtime + PlanCache (docs/serving.md).
//
//   serve::ServerConfig cfg;           // port 0 = pick an ephemeral port
//   serve::Server server(cfg);
//   std::thread t([&] { server.serve(); });   // accept loop
//   ... clients connect to server.port(), speak batch JSONL ...
//   server.drain();                    // stop accepting, finish, flush
//   t.join();
//
// Each connection gets a reader thread (recv -> LineFramer -> proto parse ->
// admission -> Runtime::submit) and a writer thread that consumes the
// connection's pending futures IN SUBMISSION ORDER and streams one response
// record per request line. The engine simulations are deterministic, so N
// clients hammering the shared Runtime get results bit-identical (values
// and cycles) to a sequential run — tests/test_serve.cpp soaks this.
//
// Admission control: at most `max_inflight` ops may be submitted and not
// yet answered, across all connections. Past the bound the server sheds
// with an explicit {"line":N,"error":"overloaded"} record and never stalls
// the reader. Independently, each connection's reply queue is bounded: a
// client that writes requests but never reads responses eventually stops
// being read from (TCP backpressure), so server memory stays bounded.
//
// Telemetry: the shared Runtime records into the server's Session
// (host.runtime.* latency histograms with p50/p95/p99, plan-cache and
// queue gauges), each connection folds its serve.conn.* counters into the
// same registry at close, and a client can send the control line `stats`
// to get a JSON snapshot (counters + latency percentiles) in-stream.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "common/socket.hpp"
#include "host/runtime.hpp"
#include "serve/proto.hpp"
#include "telemetry/session.hpp"

namespace xd::serve {

struct ServerConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;        ///< 0: bind an ephemeral port (see port())
  int backlog = 64;
  std::size_t max_inflight = 256;  ///< global admission bound; excess sheds
  std::size_t reply_queue = 64;    ///< per-connection pending-reply bound
  /// Per-line problem-size bounds (see serve::ParseLimits): a line whose
  /// shapes would materialize more than this is answered with an error
  /// record before anything is allocated.
  ParseLimits limits;
  /// SO_SNDTIMEO applied to every accepted connection, ms (0 disables). A
  /// peer that stops reading makes the writer's send fail within this
  /// bound instead of blocking forever, which keeps drain() finite.
  int send_timeout_ms = 10000;
  /// The server interns a PlanHandle for the first `pin_capacity` distinct
  /// op shapes it sees and resubmits through it, so a hot shape skips the
  /// per-op LRU probe and can never be evicted by cold-shape churn. Shapes
  /// past the bound use the normal plan cache. 0 disables pinning.
  std::size_t pin_capacity = 16;
  host::ContextConfig engine;      ///< the shared Runtime's configuration
};

/// Aggregate counters, readable at any time (and after drain()).
struct ServerCounters {
  u64 accepted = 0;    ///< connections accepted
  u64 lines = 0;       ///< record lines received
  u64 completed = 0;   ///< ops answered with an outcome record
  u64 errors = 0;      ///< ops answered with an error record (incl. parse)
  u64 shed = 0;        ///< ops shed by admission control ("overloaded")
};

class Server {
 public:
  /// Binds and listens immediately (throws SimError on failure); serving
  /// starts when serve() is called.
  explicit Server(const ServerConfig& cfg);
  ~Server();

  /// The bound port (the ephemeral one when cfg.port was 0).
  std::uint16_t port() const { return port_; }

  /// The listening socket's fd, for async-signal-safe shutdown from a
  /// signal handler (::shutdown() is a raw syscall): the daemon's SIGTERM
  /// handler shuts the listener down, serve() returns, and the main thread
  /// runs the ordinary drain() path outside signal context.
  int listener_fd() const { return listener_.fd(); }

  /// Accept loop; blocks the calling thread until drain() (or a fatal
  /// listener error). Connections are handled on their own threads.
  void serve();

  /// Graceful drain, callable from any thread (including concurrently with
  /// serve()): stop accepting, wake every connection's reader (out of recv
  /// and out of a full-reply-queue wait), let the writers finish all
  /// in-flight ops and flush their replies, join all connection threads.
  /// Guaranteed finite even against a peer that stopped reading: sends
  /// carry cfg.send_timeout_ms, so a stuck writer fails its send and
  /// consumes the rest of its queue without sending. Idempotent.
  void drain();

  ServerCounters counters() const;
  telemetry::Session& telemetry() { return session_; }
  host::Runtime& runtime() { return runtime_; }

  /// The `stats` control record: counters plus host.runtime.* latency
  /// percentiles (µs) from the shared registry, as one JSON line.
  std::string stats_record(std::size_t line_no);

 private:
  struct Pending;     // one queued response slot (in submission order)
  struct Connection;  // per-connection state (socket, threads, queue)

  void reader_main(Connection& conn);
  void writer_main(Connection& conn);
  bool admit();
  void handle_line(Connection& conn, std::string line, bool truncated);
  void enqueue(Connection& conn, std::unique_ptr<Pending> p);
  void reap_finished();
  void publish_gauges();
  host::PlanHandle pinned_for(const host::OpDesc& desc);

  ServerConfig cfg_;
  std::uint16_t port_ = 0;
  telemetry::Session session_;
  host::Runtime runtime_;
  Socket listener_;

  std::atomic<std::size_t> inflight_{0};
  std::atomic<u64> accepted_{0};
  std::atomic<u64> lines_{0};
  std::atomic<u64> completed_{0};
  std::atomic<u64> errors_{0};
  std::atomic<u64> shed_{0};
  std::atomic<bool> draining_{false};

  std::mutex conns_mu_;
  std::list<std::unique_ptr<Connection>> conns_;

  /// First-come interned plan handles, bounded by cfg_.pin_capacity.
  std::mutex pins_mu_;
  std::unordered_map<host::PlanKey, host::PlanHandle, host::PlanKeyHash> pins_;
};

}  // namespace xd::serve
